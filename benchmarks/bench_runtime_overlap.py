"""Runtime executors: serial vs pool wall time and measured comm overlap.

Runs the same small AMR DMR problem through the task-graph runtime under
the deterministic ``serial`` executor and the multiprocessing ``pool``
executor, and records wall time, the pool/serial speedup, and the
measured comm/compute overlap fraction the scheduler reports (the
real-schedule counterpart of Fig. 7's nowait/finish decomposition).

The measured speedup is hardware-dependent — on a single-core CI
container the pool adds fork/IPC overhead instead of parallelism — so
the recorded values are observations, not assertions; correctness of
both executors is asserted (pool matches serial to tight tolerance).
"""

import os
import time

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig

NCELLS = (96, 24) if FULL else (64, 16)
NSTEPS = 10 if FULL else 5


def _run(executor: str, workers=None):
    case = DoubleMachReflection(ncells=NCELLS, curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.0", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=workers,
    ))
    sim.initialize()
    t0 = time.perf_counter()
    sim.run(NSTEPS)
    wall = time.perf_counter() - t0
    state = {(lev, i): fab.whole().copy()
             for lev in range(sim.finest_level + 1)
             for i, fab in sim.state[lev]}
    report = sim.engine.total_report
    sim.close()
    return wall, state, report


def test_runtime_overlap_serial_vs_pool(benchmark):
    def build():
        serial = _run("serial")
        pool = _run("pool", workers=max(2, (os.cpu_count() or 2)))
        return serial, pool

    (s_wall, s_state, s_rep), (p_wall, p_state, p_rep) = \
        benchmark.pedantic(build, rounds=1, iterations=1)

    # correctness: pool must reproduce serial (same graph, same kernels)
    assert set(s_state) == set(p_state)
    err = max(float(np.abs(s_state[k] - p_state[k]).max()) for k in s_state)
    assert err < 1e-12

    speedup = s_wall / p_wall if p_wall > 0 else 0.0
    rows = [
        ("serial", f"{s_wall:.3f}", f"{s_rep.overlap_s:.4f}",
         f"{s_rep.overlap_frac:.1%}", f"{s_rep.idle_frac:.1%}", 1),
        ("pool", f"{p_wall:.3f}", f"{p_rep.overlap_s:.4f}",
         f"{p_rep.overlap_frac:.1%}", f"{p_rep.idle_frac:.1%}",
         p_rep.nworkers),
    ]
    table(f"Runtime executors — DMR {NCELLS}, {NSTEPS} steps "
          f"({os.cpu_count()} CPU core(s))",
          ("executor", "wall[s]", "overlap[s]", "overlap%", "idle%",
           "workers"), rows)
    print(f"  pool/serial speedup: {speedup:.2f}x "
          f"(hardware-limited on {os.cpu_count()} core(s))")

    # both rows carry the same schema (workers/speedup present on each)
    # so downstream tooling can group and compare without special-casing
    record("runtime_overlap", "executor=serial", s_wall, "s",
           overlap_s=s_rep.overlap_s, overlap_frac=s_rep.overlap_frac,
           workers=1, speedup=1.0)
    record("runtime_overlap", "executor=pool", p_wall, "s",
           overlap_s=p_rep.overlap_s, overlap_frac=p_rep.overlap_frac,
           workers=p_rep.nworkers, speedup=speedup)

    # the scheduler posts comm early on both executors: overlap is real
    assert s_rep.overlap_s > 0.0
    assert p_rep.overlap_s > 0.0
    # comm was actually split: both halves of FillBoundary show up
    assert s_rep.posted_comm_s > 0.0
    assert s_rep.finish_comm_s > 0.0
