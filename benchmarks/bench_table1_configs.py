"""Table I: the weak-scaling configurations and their derived loads.

Regenerates the paper's table (nodes, GPUs, equivalent grid points) and
adds the decomposition-derived columns: actual grid shape, active points
under three-level AMR, reduction vs equivalent, and per-GPU load against
the V100 budget.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.perfmodel.calibration import CAL
from repro.perfmodel.decomposition import (
    amr_reduction,
    dmr_band_hierarchy,
    dmr_grid_shape,
)
from repro.perfmodel.scaling import TABLE1


def test_table1_configurations(benchmark):
    entries = TABLE1 if FULL else TABLE1[:4]

    def build():
        rows = []
        for nodes, gpus, pts in entries:
            shape = dmr_grid_shape(pts)
            levels = dmr_band_hierarchy(pts, gpus, 6, amr=True)
            active = sum(l.num_pts() for l in levels)
            red = amr_reduction(levels)
            per_gpu = active / gpus
            rows.append((nodes, gpus, pts, shape, active, red, per_gpu))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table(
        "Table I — weak scaling configurations",
        ("nodes", "GPUs", "equiv pts", "grid shape", "active pts",
         "reduction", "pts/GPU"),
        [(n, g, f"{p:.2e}", f"{s[0]}x{s[1]}x{s[2]}", f"{a:.2e}",
          f"{r:.1%}", f"{pg:.1e}")
         for n, g, p, s, a, r, pg in rows],
    )
    print("  paper: 4-1024 nodes, 24-6144 GPUs, 1.64e8-4.19e10 equivalent "
          "points;\n  AMR reduces active points by 89-94%")
    for n, _g, _p, _s, _a, r, pg in rows:
        record("table1_configs", f"nodes={n}", r, "reduction", pts_per_gpu=pg)
    for n, g, p, s, a, r, pg in rows:
        assert g == 6 * n  # six GPUs per Summit node
        assert 0.85 < r < 0.95  # the paper's reduction band
        # grid shape honors the DMR 2:1 x:z constraint
        assert s[0] == 2 * s[2]
        # realized totals near the nominal equivalents
        assert 0.5 < (s[0] * s[1] * s[2]) / p < 2.0
