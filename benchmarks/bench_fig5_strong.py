"""Fig. 5 (left): strong scaling of CRoCCo 1.1 / 1.2 / 2.0 on Summit.

Paper: 1.27e9 grid points on 16-1024 nodes.  AMR (1.2 over 1.1) speeds up
4.6x at the lowest node count, degrading to a 1.1x slowdown at the
highest; GPU (2.0 over 1.2) speeds up 44x down to 6x; cumulatively 201x
down to 5.5x.  The GPU version stops improving around 128 nodes.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.perfmodel.scaling import (
    STRONG_POINTS,
    speedup_series,
    strong_scaling,
)

NODES = (16, 32, 64, 128, 256, 512, 1024) if FULL else (16, 64, 256, 1024)
POINTS = STRONG_POINTS if FULL else 2.0e8


def test_fig5_strong_scaling(benchmark):
    ss = benchmark.pedantic(
        lambda: strong_scaling(versions=("1.1", "1.2", "2.0"), nodes=NODES,
                               points=POINTS),
        rounds=1, iterations=1,
    )
    rows = []
    for k, n in enumerate(NODES):
        rows.append((n,) + tuple(
            f"{ss[v][k].time_per_iteration:.3f}" for v in ("1.1", "1.2", "2.0")
        ))
    table(f"Fig. 5 (left) — strong scaling, {POINTS:.3g} points",
          ("nodes", "1.1 [s]", "1.2 [s]", "2.0 [s]"), rows)

    amr = speedup_series(ss["1.1"], ss["1.2"])
    gpu = speedup_series(ss["1.2"], ss["2.0"])
    cum = speedup_series(ss["1.1"], ss["2.0"])
    print(f"  AMR speedup:        {[f'{s:.2f}x' for s in amr]}  "
          f"(paper: 4.6x -> 1.1x slowdown)")
    print(f"  GPU speedup:        {[f'{s:.1f}x' for s in gpu]}  "
          f"(paper: 44x -> 6x)")
    print(f"  cumulative speedup: {[f'{s:.1f}x' for s in cum]}  "
          f"(paper: 201x -> 5.5x)")

    for k, n in enumerate(NODES):
        record("fig5_strong", f"nodes={n}", cum[k], "x_cumulative_speedup",
               amr=amr[k], gpu=gpu[k])

    # -- shape assertions against the paper --------------------------------
    # CPU 1.1 strong-scales well across the whole range (at the reduced
    # default problem size it saturates earlier, once ranks outnumber
    # boxes — run REPRO_FULL=1 for the paper-scale check)
    t11 = [p.time_per_iteration for p in ss["1.1"]]
    assert t11 == sorted(t11, reverse=True)
    min_gain = 0.3 * (NODES[-1] / NODES[0]) if FULL else 4.0
    assert t11[0] / t11[-1] > min_gain
    # AMR wins at low node counts and loses its advantage at the highest
    assert amr[0] > 2.0
    assert amr[-1] < amr[0] / 2
    # GPU speedup is large at low node counts and shrinks with scale
    # (the dynamic range grows with problem size; full scale spans ~28x->5x)
    assert gpu[0] > 10.0
    assert gpu[-1] < gpu[0] / (3.0 if FULL else 1.5)
    assert gpu[0] == max(gpu)
    if FULL:
        # at paper scale the decline is monotone; reduced sizes show
        # box-quantization noise in the middle of the series
        assert gpu == sorted(gpu, reverse=True)
    # the GPU curve flattens: its last-doubling gain is small
    t20 = [p.time_per_iteration for p in ss["2.0"]]
    assert t20[-1] > 0.5 * t20[-2]
    # cumulative ordering matches the paper's bands
    assert cum[0] > 30.0
    assert 1.0 < cum[-1] < 30.0
