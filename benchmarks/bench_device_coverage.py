"""Device-launch coverage: fraction of per-step work the execution
backend's launch records account for.

The port is only as measurable as its accounting is complete (the paper's
per-kernel GPU profiles assume every phase of Algorithm 2 runs as a
recorded launch).  This benchmark runs a small v2.1 DMR under the device
target, derives the *analytic* core work per step (3 RK stages x (one
flux sweep per direction + one update) per active cell, plus the
ComputeDt reduction over every active cell) from the evolving grid
hierarchy, and compares it against what the launch records actually
captured::

    coverage = recorded / (recorded - recorded_core + analytic_core)

If every core kernel went through the launch seam, ``recorded_core``
equals ``analytic_core`` and coverage is 1.0 exactly; un-launched core
work shows up as a deficit.  The AMR-substrate phases (FillBoundary,
ParallelCopy, interpolation, AverageDown, tagging, BC fills) have no
closed-form point count, so they enter both numerator and denominator as
recorded — the assertion guards the *core* phases, and the per-step
phase checklist below guards that the substrate phases emit at all.
"""

import numpy as np

from benchmarks._record import record
from benchmarks.conftest import table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig

NSTAGES = 3
STEPS = 4

#: launch-name prefixes every v2.x step must emit (inviscid 2-D DMR)
STEP_PHASE_PREFIXES = ("WENOx", "WENOy", "Update", "FB_pack", "FB_unpack",
                       "Interp_", "AverageDown", "ComputeDt", "BC_fill")

#: kernel classes whose work the analytic model prices
CORE_CLASSES = ("flux", "update", "reduction")


def active_cells(sim):
    return sum(sim.box_arrays[lev].num_pts()
               for lev in range(sim.finest_level + 1))


def core_points(totals):
    return sum(totals.get(cls, {}).get("points", 0) for cls in CORE_CLASSES)


def total_points(totals):
    return sum(t.get("points", 0) for t in totals.values())


def test_device_launch_coverage():
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.1", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        backend_target="device"))
    sim.initialize()
    backend = sim.kernels.exec_backend
    devices = sim.devices
    dim = case.layout.dim
    # flux sweeps per cell per stage: one per direction (+1 if viscous)
    sweeps = dim + (1 if case.viscous is not None else 0)

    analytic_core = 0
    rows = []
    for step in range(STEPS):
        marks = [len(d.launches) for d in devices]
        before = backend.counters_snapshot()
        sim.step()
        # regrid happens at step start, so the post-step hierarchy is the
        # one this step's kernels actually swept
        cells = active_cells(sim)
        step_core = cells * (NSTAGES * (sweeps + 1) + 1)
        analytic_core += step_core
        new = [rec for d, m in zip(devices, marks) for rec in d.launches[m:]]
        names = [rec.name for rec in new]
        missing = [p for p in STEP_PHASE_PREFIXES
                   if not any(n.startswith(p) for n in names)]
        assert not missing, f"step {step}: phases with no launch: {missing}"
        after = backend.counters_snapshot()
        step_tot = {c: after[c]["points"] - before.get(c, {}).get("points", 0)
                    for c in after}
        rows.append((step, cells, len(new), step_core,
                     sum(v for c, v in step_tot.items()
                         if c in CORE_CLASSES)))

    totals = backend.class_totals()
    recorded = total_points(totals)
    rec_core = core_points(totals)
    coverage = recorded / (recorded - rec_core + analytic_core)
    sim.close()

    table("device launch coverage (v2.1 DMR, device target)",
          ("step", "cells", "launches", "core pts (analytic)",
           "core pts (recorded)"),
          rows)
    table("totals",
          ("recorded pts", "recorded core", "analytic core", "coverage"),
          [(recorded, rec_core, analytic_core, f"{coverage:.4f}")])
    record("device_coverage", "dmr_v2.1_serial", coverage, "fraction",
           recorded_points=recorded, analytic_core=analytic_core,
           launches=sum(t.get("launches", 0) for t in totals.values()))

    assert coverage >= 0.95, (
        f"launch records cover only {coverage:.1%} of per-step work")
    # the analytic model and the recorded core must agree closely: core
    # kernels sweep exactly the active cells
    assert np.isclose(rec_core, analytic_core, rtol=0.05), (
        f"recorded core {rec_core} vs analytic {analytic_core}")
