"""Figs. 1 and 2: the AMR hierarchy itself, functionally.

Fig. 1 shows a three-level block-structured AMR grid (coarsest level
active everywhere, finer overset patches).  Fig. 2 shows the DMR density
field computed with three-level curvilinear AMR.  This bench builds both
with the functional solver and checks their structural properties.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig


def run_dmr(nx=96, t_end=0.02, max_level=2):
    case = DoubleMachReflection(ncells=(nx, nx // 4), curvilinear=True)
    cfg = CroccoConfig(version="2.0", nranks=6, ranks_per_node=6,
                       max_level=max_level, max_grid_size=32,
                       blocking_factor=8, regrid_int=4)
    sim = Crocco(case, cfg)
    sim.initialize()
    while sim.time < t_end:
        sim.step()
    return sim


def test_fig1_fig2_dmr_amr_hierarchy(benchmark):
    nx = 128 if FULL else 96
    t_end = 0.05 if FULL else 0.02
    sim = benchmark.pedantic(lambda: run_dmr(nx, t_end), rounds=1, iterations=1)

    rows = []
    for lev in range(sim.finest_level + 1):
        ba = sim.box_arrays[lev]
        dom = sim.geoms[lev].domain
        rows.append((lev, len(ba), ba.num_pts(), dom.num_pts(),
                     f"{ba.num_pts() / dom.num_pts():.1%}"))
    table("Figs. 1-2 — three-level curvilinear AMR hierarchy on the DMR",
          ("level", "boxes", "active pts", "domain pts", "coverage"), rows)
    mn, mx = sim.min_max(0)
    print(f"  t = {sim.time:.4f} after {sim.step_count} steps; "
          f"density in [{mn:.2f}, {mx:.2f}]")
    print(f"  AMR savings: {sim.amr_savings():.1%} "
          f"(paper: 89-94% at production resolution)")
    record("fig1_fig2_amr", f"nx={nx}", sim.amr_savings(), "fraction",
           levels=sim.finest_level + 1, steps=sim.step_count)

    # Fig. 1 structure: coarsest level covers the whole domain, finer
    # levels are overset partial covers
    assert sim.finest_level == 2
    assert sim.box_arrays[0].num_pts() == sim.geoms[0].domain.num_pts()
    for lev in (1, 2):
        cov = sim.box_arrays[lev].num_pts() / sim.geoms[lev].domain.num_pts()
        assert 0.0 < cov < 0.9
    # proper nesting
    for b in sim.box_arrays[2]:
        assert sim.box_arrays[1].contains(b.coarsen(2))
    # Fig. 2 physics: the reflection amplifies density well beyond the
    # inviscid normal-shock jump of 8, with no vacuum and no NaN
    assert mx > 8.5
    assert mn > 1.0
    assert not any(sim.state[l].contains_nan()
                   for l in range(sim.finest_level + 1))
    # refinement concentrates near the shock system: the fine level's
    # boxes cluster in a band, not across the whole domain
    ba2 = sim.box_arrays[2]
    xspan = max(b.hi[0] for b in ba2) - min(b.lo[0] for b in ba2)
    assert ba2.num_pts() < 0.7 * sim.geoms[2].domain.num_pts()
