"""Ablations on the AMR grid parameters the paper hand-tunes.

- blocking factor (paper: 8, at least the numerics' ghost width) and
  max grid size (paper: 128): their effect on box counts and
  ghost-exchange volume;
- regrid frequency (paper: derived from the CFL condition so features
  cannot convect across fine/coarse interfaces between regrids);
- stored coordinates vs per-regrid file I/O (the paper's getCoords()
  optimization, Sec. III-C).
"""

import time

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.amr.amrcore import optimal_regrid_interval
from repro.amr.box import Box
from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.perfmodel.calibration import CAL, Calibration
from repro.perfmodel.decomposition import LatticeLevel


def test_ablation_blocking_and_grid_size(benchmark):
    """Surface/volume tradeoff: smaller boxes, more ghost traffic."""
    n = 256 if FULL else 128
    dom = Box((0, 0, 0), (n - 1, n - 1, n - 1))

    def build():
        rows = []
        for box in (8, 16, 32, 64):
            lev = LatticeLevel(0, dom, (box, box, box), nranks=64)
            vols = lev.fillboundary_volumes(5, 4, 6)
            rows.append((box, lev.num_boxes(),
                         vols.total_bytes / lev.num_pts()))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table("max-grid-size ablation (ghost bytes per cell per exchange)",
          ("box side", "boxes", "ghost B/cell"),
          [(b, nb, f"{g:.1f}") for b, nb, g in rows])
    ghost = [g for _b, _n, g in rows]
    for box, _nb, g in rows:
        record("ablation_grids", f"box={box}", g, "ghost_B/cell")
    # ghost traffic per cell falls as boxes grow (surface/volume)
    assert ghost == sorted(ghost, reverse=True)
    assert ghost[0] > 3 * ghost[-1]


def test_ablation_regrid_frequency(benchmark):
    """The paper's CFL-based regrid cadence, against over/under-regridding."""

    def build():
        rows = []
        for interval in (1, 2, 4, 8):
            case = SodShockTube(64)
            case.tag_threshold = 0.02
            sim = Crocco(case, CroccoConfig(version="1.2", max_level=1,
                                            max_grid_size=32,
                                            blocking_factor=8,
                                            regrid_int=interval))
            sim.initialize()
            t0 = time.perf_counter()
            sim.run(12)
            wall = time.perf_counter() - t0
            regrids = sim.profiler.calls("Regrid")
            rows.append((interval, regrids, wall, sim.amr_savings()))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table("regrid-frequency ablation (Sod, 12 steps)",
          ("interval", "regrids", "wall [s]", "savings"),
          [(i, r, f"{w:.2f}", f"{s:.1%}") for i, r, w, s in rows])
    rec = optimal_regrid_interval(min_patch_cells=8, cfl=0.5)
    print(f"  CFL-derived optimal interval for 8-cell patches at CFL 0.5: "
          f"{rec} steps")
    for interval, regrids_n, wall, _s in rows:
        record("ablation_regrid_freq", f"interval={interval}", wall, "s",
               regrids=regrids_n)
    # more frequent regridding -> more Regrid invocations
    regrids = [r for _i, r, _w, _s in rows]
    assert regrids == sorted(regrids, reverse=True)


def test_ablation_coords_file_io(benchmark):
    """Stored coordinates (getCoords) vs per-regrid binary file reads."""

    def run(source):
        case = SodShockTube(64)
        case.tag_threshold = 0.02
        sim = Crocco(case, CroccoConfig(version="1.2", max_level=1,
                                        max_grid_size=16, blocking_factor=8,
                                        regrid_int=1, coords_source=source))
        sim.initialize()
        t0 = time.perf_counter()
        sim.run(6)
        wall = time.perf_counter() - t0
        io_time = sim.profiler.total("getCoords_fileIO")
        sim.close()
        return wall, io_time

    def build():
        return {s: run(s) for s in ("stored", "file")}

    out = benchmark.pedantic(build, rounds=1, iterations=1)
    table("coordinate-source ablation (6 steps, regrid every step)",
          ("source", "wall [s]", "file I/O [s]"),
          [(s, f"{w:.3f}", f"{io:.3f}") for s, (w, io) in out.items()])
    print("  paper: the first implementation re-read coordinates from a "
          "binary file at\n  each regrid, adding noticeable overhead; "
          "getCoords() serves them from memory")
    for source, (wall, io_time) in out.items():
        record("ablation_coords_io", f"source={source}", wall, "s",
               file_io_s=io_time)
    assert out["stored"][1] == 0.0
    assert out["file"][1] > 0.0
