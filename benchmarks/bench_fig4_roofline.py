"""Fig. 4: hierarchical roofline of the WENOx kernel on a V100.

Paper's reported values: ~300 DP Gflop/s achieved (~4% of the 7.8 Tflop/s
peak), bandwidth-bound at L1, L2 and DRAM, 12.5% theoretical occupancy
from very high register usage.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import table
from repro.kernels.counts import BUDGETS, WENO_BUDGET
from repro.machine.gpu import V100Model
from repro.machine.roofline import hierarchical_roofline


def test_fig4_weno_roofline(benchmark):
    device = V100Model()
    rp = benchmark.pedantic(lambda: hierarchical_roofline(WENO_BUDGET, device),
                            rounds=1, iterations=1)
    rows = [
        (lvl, f"{rp.ai[lvl]:.3f}", f"{rp.ceilings[lvl] / 1e9:.0f}")
        for lvl in ("L1", "L2", "DRAM")
    ]
    table("Fig. 4 — WENOx hierarchical roofline (V100)",
          ("level", "AI [flop/B]", "ceiling [Gflop/s]"), rows)
    print(f"  achieved: {rp.achieved_flops_per_s / 1e9:.0f} Gflop/s "
          f"({rp.fraction_of_peak:.1%} of {rp.peak_flops / 1e12:.1f} Tflop/s peak)")
    print(f"  occupancy: {rp.occupancy:.1%}   bound: {rp.bound_level}")
    print("  paper: ~300 Gflop/s, ~4% of peak, bandwidth-bound, 12.5% occupancy")

    record("fig4_roofline", "WENOx_v100", rp.achieved_flops_per_s / 1e9,
           "Gflop/s", of_peak=rp.fraction_of_peak, bound=rp.bound_level)
    assert 250e9 < rp.achieved_flops_per_s < 400e9
    assert 0.03 < rp.fraction_of_peak < 0.05
    assert rp.occupancy == pytest.approx(0.125)
    assert rp.is_bandwidth_bound()


def test_fig4_all_kernels(benchmark):
    """The paper omits WENOy/z/Viscous rooflines as 'similar' — check that."""
    device = V100Model()

    def build():
        return {name: hierarchical_roofline(b, device)
                for name, b in BUDGETS.items()}

    points = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (name, f"{rp.achieved_flops_per_s / 1e9:.0f}",
         f"{rp.fraction_of_peak:.1%}", rp.bound_level, f"{rp.occupancy:.1%}")
        for name, rp in points.items()
    ]
    table("all kernels on the V100 roofline",
          ("kernel", "Gflop/s", "of peak", "bound", "occupancy"), rows)
    # WENO and Viscous land in the same regime (the paper's 'similar')
    w, v = points["WENO"], points["Viscous"]
    assert v.is_bandwidth_bound() and w.is_bandwidth_bound()
    assert abs(v.occupancy - w.occupancy) < 1e-12
    ratio = v.achieved_flops_per_s / w.achieved_flops_per_s
    assert 0.5 < ratio < 2.0
