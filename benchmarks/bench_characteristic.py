"""Ablation: component-wise vs characteristic-wise WENO reconstruction.

Production WENO-SYMBO practice (and CRoCCo's) reconstructs in local
characteristic variables at strong shocks.  This bench compares both
paths on the Mach-10 DMR: oscillation levels behind the incident shock
and overall robustness.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.numerics.fluxes import ConvectiveFlux
from repro.numerics.weno import WenoScheme


def run(characteristic: bool, ncells, t_end: float):
    case = DoubleMachReflection(ncells=ncells)
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    from dataclasses import replace

    sim.kernels.convective = replace(sim.kernels.convective,
                                     characteristic=characteristic)
    sim.initialize()
    while sim.time < t_end:
        sim.step()
    return sim, case


def post_shock_oscillation(sim, case) -> float:
    """RMS density deviation from the exact post-shock plateau, sampled in
    the undisturbed region between the inflow and the reflection zone."""
    devs = []
    for i, fab in sim.state[0]:
        coords = sim.coords[0].fab(i).valid()
        x, y = coords[0], coords[1]
        # upstream of the initial wall intercept and above the wall jet
        mask = (x < 0.12) & (y > 0.5)
        if mask.any():
            devs.append(fab.valid()[0][mask] - case.post.rho)
    all_dev = np.concatenate(devs)
    return float(np.sqrt(np.mean(all_dev**2)))


def test_characteristic_vs_componentwise_dmr(benchmark):
    ncells = (128, 32) if FULL else (96, 24)
    t_end = 0.03 if FULL else 0.02

    def build():
        out = {}
        for char in (False, True):
            sim, case = run(char, ncells, t_end)
            out["characteristic" if char else "componentwise"] = (
                post_shock_oscillation(sim, case),
                sim.min_max(0),
                sim.step_count,
            )
        return out

    res = benchmark.pedantic(build, rounds=1, iterations=1)
    table("DMR post-shock plateau noise (RMS density deviation)",
          ("reconstruction", "plateau RMS dev", "rho min", "rho max", "steps"),
          [(k, f"{osc:.2e}", f"{mm[0]:.3f}", f"{mm[1]:.2f}", s)
           for k, (osc, mm, s) in res.items()])
    for k, (osc, _mm, _s) in res.items():
        record("characteristic_dmr", f"reconstruction={k}", osc, "rms_dev")
    for k, (osc, (mn, mx), _s) in res.items():
        assert mn > 1.0, k
        assert 8.0 < mx < 25.0, k
        assert osc < 0.5, k
    # the characteristic projection keeps the plateau at least as clean
    assert res["characteristic"][0] < 2.0 * res["componentwise"][0]
