"""Fig. 6: decomposition of CRoCCo 2.1 runtime by profiled region.

Paper: over the weak-scaling series, FillPatch grows ~40% from 4 to 100
nodes and ~65% from 100 to 1024 nodes; Advance stays steady (the GPU
kernels weak-scale well); ComputeDt is consistently tiny; Regrid also
grows with node count.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.core.versions import get_version
from repro.perfmodel.calibration import CAL
from repro.perfmodel.decomposition import dmr_band_hierarchy
from repro.perfmodel.execution import simulate_iteration

NODES_PTS = ((4, 1.64e8), (16, 6.55e8), (100, 4.10e9), (1024, 4.19e10)) \
    if FULL else ((4, 2.0e7), (16, 8.0e7), (100, 5.0e8), (1024, 5.12e9))

REGIONS = ("Advance", "FillPatch", "ComputeDt", "AverageDown", "Regrid")


def test_fig6_region_decomposition(benchmark):
    v = get_version("2.1")

    def build():
        out = []
        for nodes, pts in NODES_PTS:
            nranks = CAL.spec.ranks_for(nodes, True)
            levels = dmr_band_hierarchy(pts, nranks, 6, True, CAL)
            out.append((nodes, simulate_iteration(v, levels, nodes, CAL)))
        return out

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (nodes,) + tuple(f"{bd.as_dict()[r]:.4f}" for r in REGIONS)
        + (f"{bd.total:.4f}",)
        for nodes, bd in series
    ]
    table("Fig. 6 — CRoCCo 2.1 runtime by region (weak scaling)",
          ("nodes",) + REGIONS + ("total",), rows)

    for nodes, bd in series:
        record("fig6_regions", f"nodes={nodes}", bd.fillpatch, "s",
               region="FillPatch", total=bd.total)

    fp = [bd.fillpatch for _n, bd in series]
    adv = [bd.advance for _n, bd in series]
    dt = [bd.computedt for _n, bd in series]
    print(f"  FillPatch growth 4->100 nodes: {fp[2] / fp[0] - 1:+.0%} "
          f"(paper ~+40%)")
    print(f"  FillPatch growth 100->1024:    {fp[3] / fp[2] - 1:+.0%} "
          f"(paper ~+65%)")

    # -- shape assertions ---------------------------------------------------
    assert fp[2] > fp[0]  # FillPatch grows toward 100 nodes
    assert fp[3] > fp[2]  # and keeps growing to 1024
    # Advance stays comparatively steady (weak scaling of the kernels)
    assert max(adv) / min(adv) < max(fp) / min(fp)
    # ComputeDt is a consistently small share
    for (nodes, bd), t in zip(series, dt):
        assert t < 0.1 * bd.total
    # Regrid grows with node count
    rg = [bd.regrid for _n, bd in series]
    assert rg[-1] > rg[0]
