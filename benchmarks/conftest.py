"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series next to the paper's reported values.
Set ``REPRO_FULL=1`` to run the full paper-scale parameter sweeps (several
minutes for the Summit-scale decompositions); the default sizes preserve
every qualitative shape at a fraction of the cost.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


def table(title, header, rows):
    """Print an aligned results table."""
    print(f"\n== {title} ==")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  " + "  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
