"""Fig. 3: per-kernel time vs problem size — Fortran CPU, C++ CPU, GPU.

Two parts:

- the Summit model table (POWER9 + V100), which reproduces the paper's
  quantitative claims: C++ ~1.2x slower than Fortran on CPU, GPU speedup
  rising from ~2.5x on the smallest size to ~15.8x on the largest;
- a real wall-clock benchmark of this package's own WENOx and Viscous
  kernels across the three backends (pytest-benchmark timings), verifying
  the functional port executes the same numerics in all of them.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import table
from repro.kernels.api import make_backend
from repro.kernels.counts import VISCOUS_BUDGET, WENO_BUDGET
from repro.machine.gpu import V100Model
from repro.machine.node import Power9Model
from repro.numerics.eos import IdealGasEOS
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux, constant_viscosity

SIZES = (4_000, 8_000, 20_000, 50_000, 100_000, 200_000)


def test_fig3_summit_model_table(benchmark):
    """The paper's kernel-time table on one POWER9 + one V100."""
    gpu = V100Model()
    cpu = Power9Model()

    def build():
        rows = []
        for n in SIZES:
            for name, budget in (("WENOx", WENO_BUDGET), ("Viscous", VISCOUS_BUDGET)):
                tf = cpu.kernel_time(budget, n, "fortran")
                tc = cpu.kernel_time(budget, n, "cpp")
                tg = gpu.kernel_time(budget, n)
                rows.append((name, n, tf, tc, tg, tc / tf, tc / tg))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table(
        "Fig. 3 — kernel time per iteration (model, 1 POWER9 + 1 V100)",
        ("kernel", "points", "fortran[s]", "cpp[s]", "gpu[s]", "cpp/f", "gpu speedup"),
        [(k, n, f"{tf:.2e}", f"{tc:.2e}", f"{tg:.2e}", f"{r1:.2f}", f"{r2:.1f}x")
         for k, n, tf, tc, tg, r1, r2 in rows],
    )
    speedups = [r[6] for r in rows if r[0] == "WENOx"]
    print(f"  paper: C++ ~1.2x slower than Fortran; GPU speedup 2.5x "
          f"(smallest, Viscous) to 15.8x (largest, WENOx)")
    print(f"  model: C++ 1.20x; GPU speedup {min(speedups):.1f}x to "
          f"{max(speedups):.1f}x over this size range")
    record("fig3_kernels", "weno_gpu_speedup_min", min(speedups), "x")
    record("fig3_kernels", "weno_gpu_speedup_max", max(speedups), "x")
    # shape assertions
    assert all(abs(r[5] - 1.2) < 1e-9 for r in rows)
    weno_speedups = [r[6] for r in rows if r[0] == "WENOx"]
    assert weno_speedups == sorted(weno_speedups)
    assert weno_speedups[0] < 5.0
    assert weno_speedups[-1] > 10.0


@pytest.mark.parametrize("backend", ["fortran", "cpp", "gpu"])
def test_fig3_functional_kernel_walltime(benchmark, backend):
    """Wall-clock of this package's own kernels per backend (n=64^2)."""
    lay = StateLayout(dim=2)
    eos = IdealGasEOS()
    ng = 4
    n = 64
    rng = np.random.default_rng(0)
    x = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    xx, yy = np.meshgrid(x, x, indexing="ij")
    rho = 1.0 + 0.2 * np.sin(2 * np.pi * xx)
    vel = np.stack([0.5 + 0.1 * np.cos(2 * np.pi * yy), np.zeros_like(xx)])
    u = eos.conservative(lay, rho, vel, np.ones_like(rho))
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    ks = make_backend(backend, lay, eos,
                      viscous=ViscousFlux(constant_viscosity(1e-3)))

    out = benchmark(lambda: ks.rhs(u, met, ng))
    record("fig3_functional_rhs", f"backend={backend}",
           benchmark.stats.stats.mean, "s", n=n)
    assert np.isfinite(out).all()
