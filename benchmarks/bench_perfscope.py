"""Perfscope attribution: decompose the serial-vs-pool gap, price itself.

Runs the small AMR DMR problem under the ``serial`` and 2-worker
``pool`` executors with the task-lifecycle perfscope enabled, and checks
the two properties that make the attribution trustworthy:

- **closure** — the six buckets (serialize + queue-wait + execute +
  result + merge + idle) must tile the pool run's lane capacity
  (makespan x lanes) to within 5%.  Idle is measured from per-lane
  timeline gaps, not computed as capacity-minus-busy, so this is a real
  cross-process clock-reconciliation check, not an identity;
- **cost** — perfscope's self-metered bookkeeping on the serial run must
  stay under 2% of wall time (an enabled-vs-disabled wall comparison is
  also recorded as an observation, but the self-meter is the assertion:
  A/B wall noise on a shared CI box easily exceeds the overhead itself).

The headline rows (critical-path seconds, realized parallelism, bucket
split, coverage, overhead fraction) go to BENCH_results.json so the
attribution trajectory is tracked like any other benchmark.
"""

import time

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig

NCELLS = (96, 24) if FULL else (64, 16)
NSTEPS = 10 if FULL else 5

#: acceptance thresholds (see the module docstring)
COVERAGE_TOL = 0.05
OVERHEAD_FRAC_MAX = 0.02


def _run(executor, workers=None, perfscope=True):
    case = DoubleMachReflection(ncells=NCELLS, curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.0", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=workers, perfscope=perfscope,
    ))
    sim.initialize()
    t0 = time.perf_counter()
    sim.run(NSTEPS)
    wall = time.perf_counter() - t0
    perf = sim.engine.perfscope.total
    sim.close()
    return wall, perf


def test_perfscope_attribution(benchmark):
    def build():
        serial = _run("serial")
        bare = _run("serial", perfscope=False)
        pool = _run("pool", workers=2)
        return serial, bare, pool

    (s_wall, s_perf), (bare_wall, bare_perf), (p_wall, p_perf) = \
        benchmark.pedantic(build, rounds=1, iterations=1)
    assert bare_perf is None  # disabled scope collects nothing

    rows = []
    for name, wall, perf in (("serial", s_wall, s_perf),
                             ("pool", p_wall, p_perf)):
        rows.append((name, f"{wall:.3f}", f"{perf.critical_path_s:.3f}",
                     f"{perf.realized_parallelism:.2f}",
                     f"{perf.coverage:.1%}", f"{perf.idle_s:.3f}",
                     f"{perf.queue_wait_s:.4f}", f"{perf.serialize_s:.4f}"))
    table(f"Perfscope attribution — DMR {NCELLS}, {NSTEPS} steps",
          ("executor", "wall[s]", "critpath[s]", "par", "coverage",
           "idle[s]", "wait[s]", "ser[s]"), rows)

    overhead_frac = s_perf.overhead_s / s_wall if s_wall > 0 else 0.0
    ab_delta = s_wall - bare_wall  # noisy observation, recorded not asserted
    print(f"  perfscope self-metered overhead: {s_perf.overhead_s * 1e3:.2f} "
          f"ms = {overhead_frac:.2%} of serial wall "
          f"(enabled-vs-disabled wall delta {ab_delta * 1e3:+.1f} ms)")
    print(f"  pool bucket closure: attributed {p_perf.attributed_s:.4f} "
          f"worker-s of {p_perf.capacity_s:.4f} capacity "
          f"({p_perf.coverage:.2%}), {p_perf.reconcile_errors} "
          f"reconcile error(s)")

    for name, perf in (("serial", s_perf), ("pool", p_perf)):
        cfg = f"executor={name}"
        record("perfscope_critical_path", cfg, perf.critical_path_s, "s",
               tasks=perf.tasks, stages=perf.stages)
        record("perfscope_parallelism", cfg, perf.realized_parallelism, "x",
               lanes=perf.nlanes)
        record("perfscope_coverage", cfg, perf.coverage, "fraction",
               reconcile_errors=perf.reconcile_errors,
               **{f"{b}_s": perf.bucket(b)
                  for b in ("serialize", "queue_wait", "execute", "result",
                            "merge", "idle")})
    # gated in seconds (lower is better); the wall fraction the acceptance
    # bound is stated in rides along as an extra column
    record("perfscope_overhead", "executor=serial", s_perf.overhead_s, "s",
           overhead_frac=overhead_frac, wall_s=s_wall, ab_delta_s=ab_delta)

    # closure: the six buckets tile the pool capacity within 5%
    assert p_perf.offloaded > 0
    assert abs(p_perf.coverage - 1.0) <= COVERAGE_TOL, (
        f"bucket sum {p_perf.attributed_s:.4f}s vs capacity "
        f"{p_perf.capacity_s:.4f}s ({p_perf.coverage:.2%})")
    assert p_perf.reconcile_errors == 0
    # cost: attribution must stay effectively free on the serial path
    assert overhead_frac <= OVERHEAD_FRAC_MAX, (
        f"perfscope overhead {overhead_frac:.2%} of serial wall")
    # sanity: the critical path can't exceed the work it bounds
    assert 0.0 < s_perf.critical_path_s <= s_perf.execute_s + 1e-9
    assert p_perf.realized_parallelism > 0.0
