"""The paper's stated future directions, implemented and measured.

Sec. VI-A: "Future directions for improving kernel performance include
reducing the number of division operations and experimenting with
mixed-precision."  Sec. III-C: a WENO-SYMBO conservative interpolation
scheme is in development.  This bench exercises both:

- mixed precision: float32 flux kernels on the simulated GPU — accuracy
  cost on the functional solver, throughput gain on the machine model;
- WENO interpolation at coarse/fine interfaces (already implemented in
  :mod:`repro.amr.interp_weno`), against the trilinear default.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.validation import compare_states
from repro.kernels.counts import WENO_BUDGET
from repro.machine.gpu import V100Model


def test_mixed_precision_model_throughput(benchmark):
    """A bandwidth-bound kernel roughly doubles throughput in fp32."""
    gpu = V100Model()

    def build():
        return [
            (n,
             gpu.kernel_time(WENO_BUDGET, n, "double"),
             gpu.kernel_time(WENO_BUDGET, n, "mixed"))
            for n in (20_000, 100_000, 500_000)
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table("mixed-precision WENO kernel time (V100 model)",
          ("points", "double [s]", "mixed [s]", "speedup"),
          [(n, f"{td:.2e}", f"{tm:.2e}", f"{td / tm:.2f}x")
           for n, td, tm in rows])
    for n, td, tm in rows:
        record("future_mixed_precision", f"points={n}", td / tm, "x")
    for n, td, tm in rows:
        sp = td / tm
        assert 1.3 < sp <= 2.1  # bandwidth-bound: approaches 2x
    with pytest.raises(ValueError):
        gpu.kernel_time(WENO_BUDGET, 100, "half")


def test_mixed_precision_functional_accuracy(benchmark):
    """fp32 kernels on Sod: solution stays close to double precision."""
    ncells = 128 if FULL else 64

    def run(precision):
        case = SodShockTube(ncells)
        sim = Crocco(case, CroccoConfig(version="2.0", max_grid_size=ncells))
        from dataclasses import replace

        sim.kernels = replace(sim.kernels, precision=precision)
        sim.initialize()
        while sim.time < 0.1:
            sim.step()
        return sim

    def build():
        return run("double"), run("mixed")

    dbl, mix = benchmark.pedantic(build, rounds=1, iterations=1)
    assert dbl.step_count == pytest.approx(mix.step_count, abs=2)
    diffs = compare_states(dbl, mix)
    table("mixed-precision accuracy on Sod (L2 vs double)",
          ("variable", "L2 difference"),
          [(v, f"{d:.2e}") for v, d in sorted(diffs.items())])
    # well above the fortran/C++ drift (1e-7-ish) but still small: the
    # fp32 truncation is visible yet does not corrupt the solution
    assert 1e-9 < max(diffs.values()) < 1e-2
    assert not mix.state[0].contains_nan()


def test_weno_interface_interpolation(benchmark):
    """The in-development WENO-SYMBO interface interpolation, in use."""
    from repro.cases.vortex import IsentropicVortex

    def run(interp):
        case = IsentropicVortex(ncells=32)
        case.tag_threshold = 0.01
        sim = Crocco(case, CroccoConfig(version="1.2", max_level=1,
                                        max_grid_size=32, blocking_factor=4,
                                        regrid_int=4, interpolator=interp))
        sim.initialize()
        while sim.time < 0.3:
            sim.step()
        errs = []
        for i, fab in sim.state[0]:
            exact = case.exact_solution(sim.coords[0].fab(i).valid(), sim.time)
            errs.append(np.abs(fab.valid()[0] - exact[0]).max())
        return max(errs)

    def build():
        return {i: run(i) for i in ("trilinear", "weno")}

    errs = benchmark.pedantic(build, rounds=1, iterations=1)
    table("interface-interpolation accuracy on the smooth vortex",
          ("interpolator", "max |rho err| at level 0"),
          [(i, f"{e:.2e}") for i, e in errs.items()])
    print("  paper: a WENO-SYMBO interpolation matching the numerics' "
          "dissipation and order\n  is expected to minimize the error "
          "introduced at fine/coarse interfaces")
    for i, e in errs.items():
        record("future_weno_interp", f"interp={i}", e, "max_abs_err")
    for e in errs.values():
        assert e < 0.05
