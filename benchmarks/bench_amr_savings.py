"""Sec. V-C: AMR reduces active grid points by 89-94% vs the equivalent
uniform grid, at matched finest-level resolution.

Checks both layers: the Summit-scale synthetic hierarchies used by the
performance model, and the functional solver's dynamically generated
hierarchies on the real DMR flow.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.perfmodel.decomposition import amr_reduction, dmr_band_hierarchy
from repro.perfmodel.scaling import TABLE1


def test_amr_savings_model_scale(benchmark):
    entries = TABLE1 if FULL else TABLE1[:4]

    def build():
        return [
            (nodes, amr_reduction(dmr_band_hierarchy(pts, gpus, 6, True)))
            for nodes, gpus, pts in entries
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table("AMR active-point reduction (Summit-scale hierarchies)",
          ("nodes", "reduction"), [(n, f"{r:.1%}") for n, r in rows])
    print("  paper: 89-94% reduction relative to the AMR-disabled solution")
    for n, r in rows:
        record("amr_savings_model", f"nodes={n}", r, "fraction")
    for _n, r in rows:
        assert 0.85 <= r <= 0.95


def test_amr_savings_functional(benchmark):
    """The real solver's dynamic hierarchy on the DMR flow."""
    from repro.cases.dmr import DoubleMachReflection
    from repro.core.crocco import Crocco, CroccoConfig

    def run():
        case = DoubleMachReflection(ncells=(128, 32))
        sim = Crocco(case, CroccoConfig(version="1.2", max_level=2,
                                        max_grid_size=32, blocking_factor=8,
                                        regrid_int=4))
        sim.initialize()
        for _ in range(4):
            sim.step()
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    savings = sim.amr_savings()
    print(f"\n  functional DMR hierarchy: {savings:.1%} of equivalent "
          f"uniform points saved")
    print(f"  active {sim.num_active_pts()} vs equivalent "
          f"{sim.equivalent_uniform_pts()}")
    record("amr_savings_functional", "dmr_128x32_lev2", savings, "fraction",
           active_pts=sim.num_active_pts())
    # at this coarse resolution the shock band is relatively wide, so the
    # saving is below the paper's production-scale 89-94% but substantial
    assert 0.5 < savings < 0.97
