"""Ablation: WENO variant (bandwidth-optimized symmetric vs alternatives).

The paper's numerics are bandwidth-optimized symmetric WENO (WENO-SYMBO,
Martin et al. 2006), chosen to resolve the smallest turbulent scales on a
reduced number of grid points.  This bench quantifies that design choice:
spectral resolving efficiency of the linear schemes and actual solution
error on the smooth-vortex problem, against the max-order symmetric
variant (symoo) and classic upwind WENO5-JS.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.vortex import IsentropicVortex
from repro.core.crocco import Crocco, CroccoConfig
from repro.numerics.weno import SYMBO_C0, SYMOO_C0, modified_wavenumber


def test_bandwidth_resolving_efficiency(benchmark):
    """The bandwidth-optimization tradeoff in the linear schemes.

    The optimized weights minimize the *integrated* dispersion error up to
    the cutoff wavenumber (resolving small scales on fewer points), at the
    cost of the tight low-k accuracy the max-order weights retain — the
    classic order-vs-bandwidth tradeoff of Martin et al. (2006).
    """

    def build():
        k = np.linspace(0.01, 2.0, 2000)
        out = {}
        for name, c0 in (("symbo", SYMBO_C0), ("symoo", SYMOO_C0)):
            kp = modified_wavenumber(c0, k)
            integ = float(np.trapezoid((kp - k) ** 2, k))
            ok = np.abs(kp - k) < 0.01 * k
            idx = np.argmin(ok) if not ok.all() else len(k) - 1
            out[name] = (integ, k[max(0, idx - 1)])
        return out

    res = benchmark.pedantic(build, rounds=1, iterations=1)
    table("linear-scheme dispersion characteristics (k up to 2 rad/cell)",
          ("scheme", "integrated error", "1% resolving limit [rad/cell]"),
          [(n, f"{e:.2e}", f"{lim:.3f}") for n, (e, lim) in res.items()])
    print("  symbo minimizes the integrated high-k error (its objective); "
          "symoo keeps\n  the tighter formal-order accuracy at low k — the "
          "order-vs-bandwidth tradeoff")
    for name, (integ, lim) in res.items():
        record("weno_dispersion", f"scheme={name}", integ, "integrated_err",
               resolving_limit=lim)
    # bandwidth optimization wins its own objective...
    assert res["symbo"][0] < res["symoo"][0]
    # ...while the max-order weights win the strict pointwise criterion
    assert res["symoo"][1] > res["symbo"][1]


def test_vortex_error_by_variant(benchmark):
    n = 64 if FULL else 32
    t_end = 1.0 if FULL else 0.5

    def run(variant):
        case = IsentropicVortex(ncells=n)
        sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=n,
                                        weno_variant=variant))
        sim.initialize()
        while sim.time < t_end:
            sim.step()
        errs = []
        for i, fab in sim.state[0]:
            exact = case.exact_solution(sim.coords[0].fab(i).valid(), sim.time)
            errs.append(np.abs(fab.valid()[0] - exact[0]).max())
        return max(errs)

    def build():
        return {v: run(v) for v in ("symbo", "symoo", "js5")}

    errs = benchmark.pedantic(build, rounds=1, iterations=1)
    table(f"vortex advection max density error (n={n}, t={t_end})",
          ("variant", "max |rho err|"),
          [(v, f"{e:.2e}") for v, e in errs.items()])
    for v, e in errs.items():
        record("weno_vortex_error", f"variant={v}", e, "max_abs_err")
    for v, e in errs.items():
        assert e < 0.05, v
