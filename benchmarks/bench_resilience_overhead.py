"""Resilience overhead: watchdog on vs off on a fault-free run.

The step watchdog snapshots the state hierarchy before every step and
scans it for NaN/Inf after — protection the production stack pays for on
every step, faulty or not.  This benchmark measures that cost on a
fault-free AMR DMR run (watchdog on vs off, same executor) and records
the overhead fraction to BENCH_results.json; the acceptance target is
single-digit-percent overhead.

Wall times on shared CI hardware are noisy, so the recorded overhead is
an observation; what is asserted is correctness — the guarded run must
reproduce the unguarded run bit for bit (the watchdog only reads state
on the fault-free path).
"""

import time

import numpy as np

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig

NCELLS = (96, 24) if FULL else (64, 16)
NSTEPS = 10 if FULL else 6


def _run(watchdog: bool):
    case = DoubleMachReflection(ncells=NCELLS, curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.0", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor="serial", watchdog=watchdog,
    ))
    sim.initialize()
    t0 = time.perf_counter()
    sim.run(NSTEPS)
    wall = time.perf_counter() - t0
    state = {(lev, i): fab.whole().copy()
             for lev in range(sim.finest_level + 1)
             for i, fab in sim.state[lev]}
    stats = sim.resilience.as_dict()
    sim.close()
    return wall, state, stats


def test_resilience_overhead(benchmark):
    def build():
        # interleave repeats so cache/thermal drift hits both variants
        on_walls, off_walls = [], []
        on = off = None
        for _ in range(3):
            w, on_state, on_stats = _run(watchdog=True)
            on_walls.append(w)
            on = (on_state, on_stats)
            w, off_state, _ = _run(watchdog=False)
            off_walls.append(w)
            off = off_state
        return min(on_walls), min(off_walls), on, off

    on_wall, off_wall, (on_state, on_stats), off_state = \
        benchmark.pedantic(build, rounds=1, iterations=1)

    # correctness: the watchdog is transparent on the fault-free path
    assert set(on_state) == set(off_state)
    for k in on_state:
        np.testing.assert_array_equal(on_state[k], off_state[k])
    assert on_stats["rollbacks"] == 0
    assert on_stats["step_retries"] == 0

    overhead = on_wall / off_wall - 1.0 if off_wall > 0 else 0.0
    table(f"Resilience watchdog overhead — DMR {NCELLS}, {NSTEPS} steps, "
          "fault-free (best of 3)",
          ("watchdog", "wall[s]", "overhead"),
          [("off", f"{off_wall:.3f}", "-"),
           ("on", f"{on_wall:.3f}", f"{overhead:+.1%}")])

    record("resilience_overhead", "watchdog=off", off_wall, "s",
           steps=NSTEPS)
    record("resilience_overhead", "watchdog=on", on_wall, "s",
           steps=NSTEPS, overhead_frac=overhead)
