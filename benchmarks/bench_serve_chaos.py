"""Service chaos benchmark: what recovery costs, in seconds.

Three phases, each recording gate-compatible rows to BENCH_results.json
(seconds regress when they rise, fractions when they fall — see
``tools/bench_gate.py``):

- **chaos throughput**: a batch of decks under a seeded service fault
  plan (worker kill + corrupted cache entry).  Every run must still
  complete exactly once; the wall time is the price of recovery.
- **crash recovery**: generation 1 is abandoned mid-run (records left
  ``running``, as ``kill -9`` would); the row is the wall time for a
  fresh registry + fleet to reconcile the orphans and finish the
  interrupted work from its autocheckpoints.
- **saturation survival**: a tiny admission window hammered by
  retrying clients; the row is the fraction of submissions that end
  ``done`` exactly once despite the 429 shedding (must stay 1.0).
"""

import multiprocessing
import threading
import time

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.serve.chaos import ServiceFaultInjector
from repro.serve.client import ServeClient
from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry
from repro.serve.server import make_server

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)

NRUNS = 12 if FULL else 8
WORKERS = 2
TASK_TIMEOUT_S = 8.0
TIMEOUT_S = 600

DECK = "crocco.case = sod\namr.n_cell = 32\nrun.steps = 4\n"
DECK_LONG = "crocco.case = sod\namr.n_cell = 32\nrun.steps = 400\n"


def _drain(reg, run_ids, timeout=TIMEOUT_S):
    t_end = time.monotonic() + timeout
    pending = set(run_ids)
    while pending and time.monotonic() < t_end:
        pending -= {rid for rid in pending
                    if reg.get(rid).state in ("done", "failed", "cancelled")}
        if pending:
            time.sleep(0.05)
    assert not pending, f"{len(pending)} runs never finished"


def test_serve_chaos_recovery(tmp_path):
    rows = []

    # -- phase 1: batch throughput under a seeded fault plan ---------------
    chaos = ServiceFaultInjector.from_plan(
        "seed=5 kill_worker@2:1 torn_record@3 corrupt_cache@4")
    reg = RunRegistry(tmp_path / "p1")
    fleet = WorkerFleet(reg, tmp_path / "p1" / "cache", workers=WORKERS,
                        task_timeout=TASK_TIMEOUT_S, chaos=chaos).start()
    t0 = time.monotonic()
    recs = [reg.submit(DECK) for _ in range(NRUNS)]
    try:
        _drain(reg, [r.id for r in recs])
    finally:
        fleet.stop()
    chaos_wall = time.monotonic() - t0
    states = [reg.get(r.id).state for r in recs]
    assert states.count("done") == NRUNS, (
        f"chaos batch lost runs: {states.count('done')}/{NRUNS}")
    # zero duplicates: one registry record per submission, each done once
    assert len({r.id for r in recs}) == NRUNS
    assert not chaos.pending(), "planned faults never fired"
    rows.append(("chaos batch wall [s]", f"{chaos_wall:.2f}"))
    record("serve_chaos", "chaos_wall", chaos_wall, "s",
           runs=NRUNS, workers=WORKERS,
           plan="kill_worker@2:1 torn_record@3 corrupt_cache@4",
           resumes=fleet.resumes, cache_evictions=fleet.cache_evictions)

    # -- phase 2: crash recovery wall (abandon -> reconcile -> resume) -----
    reg1 = RunRegistry(tmp_path / "p2")
    fleet1 = WorkerFleet(reg1, tmp_path / "p2" / "cache", workers=1,
                         task_timeout=TASK_TIMEOUT_S).start()
    victim = reg1.submit(DECK_LONG)
    short = [reg1.submit(DECK) for _ in range(2)]
    autochk = reg1.run_dir(victim.id) / "autochk"
    t_end = time.monotonic() + TIMEOUT_S
    while not (autochk.is_dir() and any(autochk.iterdir())):
        assert time.monotonic() < t_end, "victim never checkpointed"
        time.sleep(0.02)
    fleet1.stop(abandon=True)  # the crash: records left ``running``

    t0 = time.monotonic()
    reg2 = RunRegistry(tmp_path / "p2")  # restart: orphan reconciliation
    fleet2 = WorkerFleet(reg2, tmp_path / "p2" / "cache", workers=1,
                         task_timeout=TASK_TIMEOUT_S).start()
    try:
        _drain(reg2, [victim.id] + [r.id for r in short])
    finally:
        fleet2.stop()
    recovery_wall = time.monotonic() - t0
    assert reg2.orphans_requeued >= 1
    result = reg2.get(victim.id).result
    assert result["status"] == "done" and result["steps"] == 400
    replayed = int(result.get("replayed_steps", 0))
    assert replayed <= 1, f"resume replayed {replayed} steps"
    rows.append(("crash recovery wall [s]", f"{recovery_wall:.2f}"))
    rows.append(("replayed steps", str(replayed)))
    record("serve_chaos", "recovery_wall", recovery_wall, "s",
           orphans=reg2.orphans_requeued, replayed_steps=replayed,
           resumed=bool(result.get("resumed")))

    # -- phase 3: saturation survival (shed + retry, zero loss) ------------
    httpd = make_server(tmp_path / "p3", workers=1, executor="inline",
                        max_queue_depth=2)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]
    url = f"http://{host}:{port}"
    submissions = NRUNS
    accepted, errors = [], []

    def submitter(i):
        client = ServeClient(url, retries=10, backoff_base=0.05,
                             backoff_cap=0.5)
        try:
            accepted.append(client.submit(deck=DECK, label=f"sat{i}")["id"])
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    t0 = time.monotonic()
    threads = [threading.Thread(target=submitter, args=(i,))
               for i in range(submissions)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(TIMEOUT_S)
    try:
        assert not errors, f"submissions lost under saturation: {errors[:3]}"
        _drain(httpd.service.registry, accepted)
    finally:
        httpd.service.stop()
        httpd.shutdown()
        httpd.server_close()
    saturation_wall = time.monotonic() - t0
    unique_done = {rid for rid in accepted
                   if httpd.service.registry.get(rid).state == "done"}
    survival = len(unique_done) / submissions
    assert len(accepted) == len(set(accepted)) == submissions
    rows.append(("saturation survival", f"{survival:.1%}"))
    rows.append(("requests shed (429)", str(httpd.service.shed_requests)))
    rows.append(("saturation wall [s]", f"{saturation_wall:.2f}"))
    record("serve_chaos", "saturation_survival", survival, "fraction",
           submissions=submissions, shed=httpd.service.shed_requests,
           max_queue_depth=2)

    table(f"Service chaos — {NRUNS} decks, {WORKERS} workers",
          ("metric", "value"), rows)
