"""Fig. 7: decomposition of FillPatch into ParallelCopy / FillBoundary,
asynchronous (nowait) and completion (finish) parts, for CRoCCo 2.1.

Paper: ParallelCopy_finish is the component whose execution time rises as
node count goes up — the residual FillPatch bottleneck even after the
curvilinear interpolator swap.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.core.versions import get_version
from repro.perfmodel.calibration import CAL
from repro.perfmodel.decomposition import dmr_band_hierarchy
from repro.perfmodel.execution import fillpatch_split

NODES_PTS = ((4, 1.64e8), (16, 6.55e8), (100, 4.10e9), (1024, 4.19e10)) \
    if FULL else ((4, 2.0e7), (16, 8.0e7), (100, 5.0e8), (1024, 5.12e9))

PARTS = ("ParallelCopy_finish", "ParallelCopy_nowait",
         "FillBoundary_finish", "FillBoundary_nowait")


def test_fig7_fillpatch_decomposition(benchmark):
    v = get_version("2.1")

    def build():
        out = []
        for nodes, pts in NODES_PTS:
            nranks = CAL.spec.ranks_for(nodes, True)
            levels = dmr_band_hierarchy(pts, nranks, 6, True, CAL)
            out.append((nodes, fillpatch_split(v, levels, nodes, CAL)))
        return out

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (nodes,) + tuple(f"{split[p]:.5f}" for p in PARTS)
        for nodes, split in series
    ]
    table("Fig. 7 — FillPatch internals for CRoCCo 2.1 (weak scaling)",
          ("nodes",) + PARTS, rows)

    for nodes, split in series:
        record("fig7_fillpatch", f"nodes={nodes}",
               split["ParallelCopy_finish"], "s", part="ParallelCopy_finish")

    pcf = [s["ParallelCopy_finish"] for _n, s in series]
    print(f"  ParallelCopy_finish: {[f'{t * 1e3:.2f} ms' for t in pcf]}")
    print("  paper: ParallelCopy_finish increases in execution time as "
          "node count goes up")

    # -- shape assertions --------------------------------------------------
    # ParallelCopy_finish grows monotonically with node count
    assert pcf == sorted(pcf)
    assert pcf[-1] > 2 * pcf[0]
    # at the largest scale it dominates the posting (nowait) parts
    last = series[-1][1]
    assert last["ParallelCopy_finish"] > last["ParallelCopy_nowait"]
    # the custom interpolator (2.0) pays even more ParallelCopy than 2.1
    nodes, pts = NODES_PTS[-1]
    nranks = CAL.spec.ranks_for(nodes, True)
    levels = dmr_band_hierarchy(pts, nranks, 6, True, CAL)
    split20 = fillpatch_split(get_version("2.0"), levels, nodes, CAL)
    assert split20["ParallelCopy_finish"] > last["ParallelCopy_finish"]
