"""Sec. IV-A / IV-C: the porting-correctness L2 validation.

Paper: the L2-norm of the per-variable difference between the Fortran and
C++ kernels plateaued at ~1e-7 (within machine-precision accumulation),
and the GPU port showed *no* change in accuracy over the C++ CPU kernels.
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.validation import compare_states


def run(version, ncells, t_end):
    case = DoubleMachReflection(ncells=ncells)
    sim = Crocco(case, CroccoConfig(version=version, nranks=2,
                                    ranks_per_node=1, max_grid_size=64))
    sim.initialize()
    while sim.time < t_end:
        sim.step()
    return sim


def test_l2_validation_across_backends(benchmark):
    ncells = (128, 32) if FULL else (64, 16)
    t_end = 0.03 if FULL else 0.015

    def build():
        sims = {v: run(v, ncells, t_end) for v in ("1.0", "1.1", "2.0")}
        return (
            compare_states(sims["1.0"], sims["1.1"]),
            compare_states(sims["1.1"], sims["2.0"]),
            {v: s.step_count for v, s in sims.items()},
        )

    f_vs_c, c_vs_g, steps = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [(var, f"{f_vs_c[var]:.3e}", f"{c_vs_g[var]:.3e}")
            for var in sorted(f_vs_c)]
    table("porting validation — L2-norm of flow-variable differences",
          ("variable", "fortran vs C++", "C++ vs GPU"), rows)
    print(f"  steps: {steps}")
    print("  paper: fortran-vs-C++ plateaus at ~1e-7; GPU shows no change")

    record("l2_validation", "fortran_vs_cpp", max(f_vs_c.values()), "L2")
    record("l2_validation", "cpp_vs_gpu", max(c_vs_g.values()), "L2")
    # Fortran vs C++: small but nonzero (different accumulation order),
    # below the paper's 1e-7 acceptance threshold
    assert 0.0 < max(f_vs_c.values()) < 1e-7
    # GPU vs C++: bitwise identical
    assert max(c_vs_g.values()) == 0.0
