"""Ablation: DistributionMapping strategy (Sec. III-B).

The paper uses AMReX's default load balancer, a space-filling Z-Morton
curve, trusting its demonstrated scaling.  This bench quantifies that
choice on the DMR shock-band decomposition: load imbalance and off-node
ghost traffic under SFC, knapsack, and round-robin distributions.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.amr.distribution import DistributionMapping
from repro.perfmodel.calibration import CAL
from repro.perfmodel.decomposition import BoxLevel, dmr_grid_shape, shock_band_boxes
from repro.amr.box import Box

STRATEGIES = ("sfc", "knapsack", "roundrobin")


def test_load_balance_strategies(benchmark):
    pts = 2.0e9 if FULL else 1.0e8
    nranks = 96
    shape = dmr_grid_shape(pts)
    domain = Box((0, 0, 0), tuple(s - 1 for s in shape))
    ba = shock_band_boxes(domain, 0.1, CAL, 64)

    def build():
        rows = []
        for strat in STRATEGIES:
            dm = DistributionMapping.make(ba, nranks, strat)
            lev = BoxLevel(1, domain, ba, dm)
            vols = lev.fillboundary_volumes(5, 4, 6)
            loads = lev.per_rank_pts()
            imb = loads.max() / max(1.0, loads.mean())
            rows.append((strat, len(ba), f"{imb:.2f}",
                         f"{vols.off_node_recv.max() / 1e6:.2f}",
                         f"{vols.off_node_recv.sum() / 1e6:.1f}"))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table(f"load-balance ablation ({len(ba)} shock-band boxes, {nranks} ranks)",
          ("strategy", "boxes", "max/mean load", "max off-node MB/rank",
           "total off-node MB"), rows)
    print("  paper: AMReX's default Z-Morton SFC keeps spatially adjacent "
          "boxes on nearby\n  ranks, so most ghost traffic stays on-node")

    by = {r[0]: r for r in rows}
    for strat in STRATEGIES:
        record("load_balance", f"strategy={strat}", float(by[strat][4]),
               "off_node_MB", imbalance=float(by[strat][2]))
    # SFC's locality cuts off-node traffic vs round-robin
    sfc_off = float(by["sfc"][4])
    rr_off = float(by["roundrobin"][4])
    assert sfc_off < 0.8 * rr_off
    # knapsack balances at least as well as round-robin by weight
    assert float(by["knapsack"][2]) <= float(by["roundrobin"][2]) + 0.05
