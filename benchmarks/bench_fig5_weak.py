"""Fig. 5 (right): weak scaling over the Table I series.

Paper: versions 1.1 / 1.2 / 2.0 / 2.1 from 4 to 1024 nodes at ~4.1e7
equivalent points per node.  CPU versions stay nearly flat; the GPU
versions' time per iteration creeps up (communication-bound), with
version 2.0 reaching ~54% weak efficiency at 400 nodes and ~40% at 1024,
improved to ~70% at 400 by swapping in the trilinear interpolator (2.1).
"""

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.perfmodel.scaling import (
    TABLE1,
    speedup_series,
    weak_scaling,
    weak_scaling_efficiency,
)

TABLE = TABLE1 if FULL else tuple((n, g, p) for n, g, p in TABLE1
                                  if n in (4, 16, 100, 400, 1024))
VERSIONS = ("1.1", "1.2", "2.0", "2.1")


def test_fig5_weak_scaling(benchmark):
    ws = benchmark.pedantic(
        lambda: weak_scaling(versions=VERSIONS, table=TABLE),
        rounds=1, iterations=1,
    )
    rows = []
    for k, (n, _g, pts) in enumerate(TABLE):
        rows.append((n, f"{pts:.2e}") + tuple(
            f"{ws[v][k].time_per_iteration:.3f}" for v in VERSIONS
        ))
    table("Fig. 5 (right) — weak scaling (Table I)",
          ("nodes", "equiv pts") + tuple(f"{v} [s]" for v in VERSIONS), rows)

    eff20 = weak_scaling_efficiency(ws["2.0"])
    eff21 = weak_scaling_efficiency(ws["2.1"])
    print(f"  2.0 weak efficiency: {[f'{e:.0%}' for e in eff20]}  "
          f"(paper: ~54% @400, ~40% @1024)")
    print(f"  2.1 weak efficiency: {[f'{e:.0%}' for e in eff21]}  "
          f"(paper: ~70% @400)")

    for k, (n, _g, _pts) in enumerate(TABLE):
        record("fig5_weak", f"nodes={n}", eff21[k], "weak_efficiency",
               version="2.1", eff20=eff20[k])

    # -- shape assertions ---------------------------------------------------
    # CPU versions stay far flatter than the GPU versions
    def growth(v):
        t = [p.time_per_iteration for p in ws[v]]
        return t[-1] / t[0]

    assert growth("1.1") < growth("2.0")
    # GPU weak efficiency degrades with node count
    assert eff20[-1] < 0.75
    # 2.1 improves on 2.0 at every node count (less ParallelCopy)
    faster = [a.time_per_iteration >= b.time_per_iteration
              for a, b in zip(ws["2.0"], ws["2.1"])]
    assert all(faster)
    assert eff21[-1] > eff20[-1]
    # GPU runs are far faster than CPU runs throughout
    sp = speedup_series(ws["1.2"], ws["2.0"])
    assert min(sp) > 1.5
