"""Machine-readable benchmark results: append rows to BENCH_results.json.

Every ``bench_*.py`` records its headline numbers through :func:`record`
so the perf trajectory accumulates across runs in one flat file at the
repo root (override the path with ``REPRO_BENCH_OUT``).  Each row is::

    {"bench": "fig6_regions", "config": "nodes=100", "value": 1.23,
     "units": "s", "git_rev": "8b40ffc", "recorded_at": "...Z", ...extra}

Rows are appended (never rewritten), so successive benchmark runs form a
time series; downstream tooling can group by (bench, config).  Every row
is stamped with the repo revision it measured (``git_rev``) and an
ISO-8601 UTC timestamp (``recorded_at``) so the trajectory stays
interpretable after the fact.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

_ROOT = Path(__file__).resolve().parent.parent

_GIT_REV: Optional[str] = None


def git_rev() -> str:
    """The repo's short HEAD revision (cached; "unknown" outside git)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"], cwd=_ROOT,
                capture_output=True, text=True, timeout=10,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = "unknown"
    return _GIT_REV


def results_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUT",
                               _ROOT / "BENCH_results.json"))


def _load(path: Path) -> list:
    if not path.exists():
        return []
    try:
        rows = json.loads(path.read_text())
    except json.JSONDecodeError:
        return []
    return rows if isinstance(rows, list) else []


def record(bench: str, config: str, value: Union[int, float], units: str,
           **extra) -> dict:
    """Append one result row; returns the row written."""
    row = {"bench": bench, "config": config, "value": float(value),
           "units": units,
           "git_rev": git_rev(),
           "recorded_at": datetime.now(timezone.utc).isoformat(
               timespec="seconds").replace("+00:00", "Z")}
    for k, v in extra.items():
        row[k] = v
    path = results_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = _load(path)
    rows.append(row)
    path.write_text(json.dumps(rows, indent=1) + "\n")
    return row
