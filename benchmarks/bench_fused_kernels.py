"""Fused-target speedup and accuracy over the host target.

The ``fused`` execution target is the repo's first *optimizing* backend:
one wide WENO launch per right-hand side (shared primitives, transverse
pre-crop, interface-restricted combination), scratch served from a
shape-keyed cache, and an optional numba JIT.  This benchmark measures
the three claims that gate the target:

1. **WENO kernel-class speedup** >= 1.5x over ``host`` on the RK
   right-hand side (the DMR-shaped boxes the AMR hierarchy produces),
2. **drift bound**: fused-vs-host relative L2 difference <= 1e-7 after
   a multi-step DMR run — the paper's port-validation criterion
   (Sec. IV-A), recorded as matched decimal digits so the perf gate
   treats more digits as better,
3. **scratch steady state**: the cache hit rate approaches 1 once every
   box shape has been seen (Sec. IV-B's hoisted scratch allocation).

Rows land in BENCH_results.json as the ``fused_kernels`` series for
``tools/bench_gate.py``.
"""

import time

import numpy as np

from benchmarks._record import record
from benchmarks.conftest import table
from repro.backend import make_exec_backend
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.validation import flow_variables, l2_difference
from repro.kernels.api import make_backend
from repro.numerics.eos import IdealGasEOS
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.state import StateLayout

#: acceptance floor for the WENO kernel-class speedup
MIN_SPEEDUP = 1.5

#: the paper's L2 validation criterion
DRIFT_TOL = 1e-7

DMR_STEPS = 3


def _smooth_state(layout, ng, n):
    shape = (layout.ncons,) + tuple(n + 2 * ng for _ in range(layout.dim))
    grids = np.meshgrid(*[np.linspace(0.0, 1.0, s) for s in shape[1:]],
                        indexing="ij")
    u = np.empty(shape)
    u[0] = 1.0 + 0.2 * np.sin(2 * np.pi * grids[0])
    for i in range(layout.dim):
        u[1 + i] = 0.1 * np.cos(2 * np.pi * grids[i]) * u[0]
    u[layout.energy] = 2.5 + 0.5 * u[0]
    return u


def _time_rhs(ks, u, metrics, ng, iters):
    ks.rhs(u, metrics, ng)  # warm caches / scratch
    samples = []
    for _ in range(iters):
        t0 = time.perf_counter()
        ks.rhs(u, metrics, ng)
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def test_fused_weno_speedup():
    """host vs fused wall time of the full WENO right-hand side."""
    rows = []
    for dim, n, iters in ((2, 64, 20), (3, 24, 7)):
        layout = StateLayout(dim=dim, nspecies=1)
        eos = IdealGasEOS()
        metrics = CartesianMetrics([0.01] * dim)
        times = {}
        for target in ("host", "fused"):
            ks = make_backend("cpp", layout, eos,
                              exec_backend=make_exec_backend(target))
            u = _smooth_state(layout, ks.nghost, n)
            times[target] = _time_rhs(ks, u, metrics, ks.nghost, iters)
        speedup = times["host"] / times["fused"]
        rows.append((f"{dim}D {n}^{dim}", f"{times['host']*1e3:.2f}",
                     f"{times['fused']*1e3:.2f}", f"{speedup:.2f}x"))
        record("fused_kernels", f"weno_speedup_dim{dim}", speedup, "x",
               host_ms=times["host"] * 1e3, fused_ms=times["fused"] * 1e3)
        assert speedup >= MIN_SPEEDUP, (
            f"dim={dim}: fused only {speedup:.2f}x over host "
            f"(need >= {MIN_SPEEDUP}x)")
    table("fused WENO RHS: host vs fused",
          ("box", "host ms", "fused ms", "speedup"), rows)


def _run_dmr(target):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.1", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        backend_target=target))
    sim.initialize()
    sim.run(DMR_STEPS)
    return sim


def test_fused_dmr_drift_and_scratch():
    """Fused-vs-host drift on the DMR deck + scratch-cache steady state."""
    host = _run_dmr("host")
    fused = _run_dmr("fused")
    try:
        va, vb = flow_variables(host), flow_variables(fused)
        drift = 0.0
        for k in va:
            scale = float(np.sqrt(np.mean(va[k] ** 2))) or 1.0
            drift = max(drift, l2_difference(va[k], vb[k]) / scale)
        digits = float(-np.log10(max(drift, 1e-16)))
        scratch = fused.kernels.exec_backend.scratch.stats()
        table("fused DMR validation",
              ("rel L2 drift", "matched digits", "scratch hit rate",
               "scratch MiB"),
              [(f"{drift:.3e}", f"{digits:.1f}",
                f"{scratch['hit_rate']:.3f}",
                f"{scratch['bytes']/2**20:.2f}")])
        record("fused_kernels", "dmr_l2_drift_digits", digits, "digits",
               drift=drift, steps=DMR_STEPS)
        record("fused_kernels", "dmr_scratch_hit_rate",
               scratch["hit_rate"], "fraction",
               entries=scratch["entries"], bytes=scratch["bytes"])
        assert drift <= DRIFT_TOL, (
            f"fused drifted {drift:.3e} from host (tol {DRIFT_TOL})")
        # AMR repeats a small set of box shapes: after a few steps the
        # scratch allocator serves (nearly) everything from cache
        assert scratch["hit_rate"] > 0.9, scratch
    finally:
        host.close()
        fused.close()
