"""Ablation: coarse/fine interpolator choice (the 2.0 vs 2.1 swap, plus
the conservative and WENO interpolators).

The paper isolates the custom curvilinear interpolator's global
ParallelCopy by swapping in AMReX's trilinear interpolator (2.1), and
describes a WENO-SYMBO interpolator in development for conservation
across interfaces.  This bench compares all four on the functional
solver: communication volume, runtime, and solution quality.
"""

import numpy as np
import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig

INTERPS = ("curvilinear", "trilinear", "conservative", "weno")


def run(interp, nsteps):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(version="2.0", nranks=4, ranks_per_node=2,
                                    max_level=1, max_grid_size=32,
                                    regrid_int=4, interpolator=interp))
    sim.initialize()
    sim.comm.ledger.clear()
    sim.run(nsteps)
    return sim


def test_ablation_interpolator(benchmark):
    nsteps = 8 if FULL else 4

    def build():
        return {i: run(i, nsteps) for i in INTERPS}

    sims = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, sim in sims.items():
        led = sim.comm.ledger
        mn, mx = sim.min_max(0)
        rows.append((
            name,
            f"{led.total_bytes('parallelcopy') / 1e6:.2f}",
            f"{led.total_bytes('fillboundary') / 1e6:.2f}",
            f"{mn:.3f}", f"{mx:.2f}",
        ))
    table("interpolator ablation (DMR, 2-level AMR, per-run traffic)",
          ("interpolator", "ParallelCopy MB", "FillBoundary MB",
           "rho min", "rho max"), rows)
    print("  paper: the curvilinear interpolator's coordinate gather is the "
          "ParallelCopy bottleneck;\n  trilinear (2.1) removes it")

    pc = {n: sims[n].comm.ledger.total_bytes("parallelcopy") for n in INTERPS}
    for name in INTERPS:
        record("ablation_interp", f"interp={name}", pc[name] / 1e6, "MB",
               kind="parallelcopy")
    # the curvilinear interpolator moves far more ParallelCopy data
    assert pc["curvilinear"] > 3 * pc["trilinear"]
    assert pc["curvilinear"] > 3 * pc["conservative"]
    assert pc["curvilinear"] > 2 * pc["weno"]
    # every variant produces a sane shocked field
    for name, sim in sims.items():
        mn, mx = sim.min_max(0)
        assert mn > 1.0 and 8.0 < mx < 25.0, name
        assert not sim.state[0].contains_nan()
