"""Service load test: hundreds of small decks through the worker fleet.

Queues ``NRUNS`` one-step Sod decks (cycling over ``NCONFIGS`` distinct
grid sizes, so the cross-run cache sees each configuration repeatedly)
against a pool-backed :class:`~repro.serve.fleet.WorkerFleet` and
records the service's headline numbers to BENCH_results.json:

- sustained throughput (completed runs per minute),
- p50 / p99 submit-to-done latency under a fully loaded queue,
- the cross-run cache hit rate (must stay above 80% on repeated
  configurations — each distinct config misses once, every repeat
  hits).

All rows are gate-compatible with ``tools/bench_gate.py`` (latencies in
seconds regress when they grow; throughput and hit rate regress when
they shrink).
"""

import multiprocessing
import time

import pytest

from benchmarks._record import record
from benchmarks.conftest import FULL, table
from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)

NRUNS = 400 if FULL else 200
NCONFIGS = 4
WORKERS = 2
TIMEOUT_S = 900 if FULL else 600


def _deck(i: int) -> str:
    # a handful of distinct configs, cycled: the cache-hit path dominates
    # (multiples of the default blocking_factor=8)
    ncell = 16 + 8 * (i % NCONFIGS)
    return f"crocco.case = sod\namr.n_cell = {ncell}\nrun.steps = 1\n"


def _percentile(sorted_vals, q: float) -> float:
    if not sorted_vals:
        return float("nan")
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _drain(reg: RunRegistry, run_ids) -> None:
    t_end = time.monotonic() + TIMEOUT_S
    pending = set(run_ids)
    while pending and time.monotonic() < t_end:
        done = {rid for rid in pending
                if reg.get(rid).state in ("done", "failed", "cancelled")}
        pending -= done
        if pending:
            time.sleep(0.05)
    assert not pending, f"{len(pending)} runs never finished"


def test_serve_load(tmp_path, benchmark):
    reg = RunRegistry(tmp_path / "svc")
    fleet = WorkerFleet(reg, tmp_path / "svc" / "cache", workers=WORKERS,
                        task_timeout=120.0).start()

    def build():
        t0 = time.monotonic()
        recs = [reg.submit(_deck(i)) for i in range(NRUNS)]
        _drain(reg, [r.id for r in recs])
        wall = time.monotonic() - t0
        return recs, wall

    try:
        recs, wall = benchmark.pedantic(build, rounds=1, iterations=1)
    finally:
        fleet.stop()

    finals = [reg.get(r.id) for r in recs]
    states = [f.state for f in finals]
    assert states.count("done") == NRUNS, (
        f"not all runs completed: { {s: states.count(s) for s in set(states)} }")

    latencies = sorted(f.latency_s for f in finals)
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    runs_per_min = NRUNS / wall * 60.0
    hit_rate = fleet.cache_hit_rate()
    assert hit_rate is not None and hit_rate > 0.8, (
        f"cross-run cache hit rate {hit_rate} below 80% on repeated configs")

    table(f"Service load — {NRUNS} decks over {NCONFIGS} configs, "
          f"{WORKERS} workers",
          ("metric", "value"),
          [("wall [s]", f"{wall:.2f}"),
           ("throughput [runs/min]", f"{runs_per_min:.1f}"),
           ("latency p50 [s]", f"{p50:.3f}"),
           ("latency p99 [s]", f"{p99:.3f}"),
           ("cache hit rate", f"{hit_rate:.1%}")])

    common = dict(runs=NRUNS, configs=NCONFIGS, workers=WORKERS)
    record("serve_load", "throughput", runs_per_min, "runs/min", **common)
    record("serve_load", "latency_p50", p50, "s", **common)
    record("serve_load", "latency_p99", p99, "s", **common)
    record("serve_load", "cache_hit_rate", hit_rate, "fraction", **common)
