"""Crash-safe checkpointing: atomic publish, digests, corruption diagnosis."""

import json

import numpy as np
import pytest

from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.io.checkpoint import (CheckpointError, latest_checkpoint,
                                 load_checkpoint, save_checkpoint)
from repro.resilience.faults import InjectedCheckpointCrash


def make_sim(steps=2, **overrides):
    defaults = dict(version="1.1", max_grid_size=16, blocking_factor=8)
    defaults.update(overrides)
    sim = Crocco(SodShockTube(32), CroccoConfig(**defaults))
    sim.initialize()
    if steps:
        sim.run(steps)
    return sim


def fresh_sim():
    return Crocco(SodShockTube(32),
                  CroccoConfig(version="1.1", max_grid_size=16,
                               blocking_factor=8))


class TestCorruptionModes:
    """Every corruption mode raises CheckpointError with a diagnosis."""

    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope", fresh_sim())

    def test_missing_header(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        (ck / "Header").unlink()
        with pytest.raises(CheckpointError, match="no Header"):
            load_checkpoint(ck, fresh_sim())
        sim.close()

    def test_corrupt_header_json(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        (ck / "Header").write_text("{ not json")
        with pytest.raises(CheckpointError, match="bad JSON"):
            load_checkpoint(ck, fresh_sim())
        sim.close()

    def test_wrong_format_tag(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        meta = json.loads((ck / "Header").read_text())
        meta["format"] = "repro-checkpoint-0"
        (ck / "Header").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="format tag"):
            load_checkpoint(ck, fresh_sim())
        sim.close()

    def test_version_mismatch_is_value_error(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        other = Crocco(SodShockTube(32),
                       CroccoConfig(version="2.0", max_grid_size=16))
        with pytest.raises(ValueError, match="written by CRoCCo"):
            load_checkpoint(ck, other)
        sim.close()

    def test_level_count_mismatch(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        meta = json.loads((ck / "Header").read_text())
        meta["finest_level"] = 1  # claims two levels, records one
        (ck / "Header").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="inconsistent"):
            load_checkpoint(ck, fresh_sim())
        sim.close()

    def test_missing_level_file(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        (ck / "Level_0.npz").unlink()
        with pytest.raises(CheckpointError, match="missing Level_0"):
            load_checkpoint(ck, fresh_sim())
        sim.close()

    def test_truncated_level_file(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        data = (ck / "Level_0.npz").read_bytes()
        (ck / "Level_0.npz").write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="SHA-256"):
            load_checkpoint(ck, fresh_sim())
        sim.close()

    def test_driver_not_touched_on_corrupt_load(self, tmp_path):
        sim = make_sim()
        ck = save_checkpoint(tmp_path / "chk", sim)
        data = (ck / "Level_0.npz").read_bytes()
        (ck / "Level_0.npz").write_bytes(data[:-10])
        target = fresh_sim()
        with pytest.raises(CheckpointError):
            load_checkpoint(ck, target)
        # validation happens before any mutation: still uninitialized
        assert target.finest_level == -1
        sim.close()


class TestAtomicPublish:
    def test_overwrite_is_atomic_swap(self, tmp_path):
        sim = make_sim(steps=1)
        save_checkpoint(tmp_path / "chk", sim)
        sim.run(1)
        ck = save_checkpoint(tmp_path / "chk", sim)
        target = fresh_sim()
        load_checkpoint(ck, target)
        assert target.step_count == 2
        assert not (tmp_path / ".chk.partial").exists()
        assert not (tmp_path / ".chk.old").exists()
        sim.close()

    def test_kill_mid_save_preserves_previous(self, tmp_path):
        sim = make_sim(steps=1, faults_plan="kill_save@2 seed=1")
        ck = save_checkpoint(tmp_path / "chk", sim)  # save #1 untouched
        sim.run(1)
        with pytest.raises(InjectedCheckpointCrash):
            save_checkpoint(tmp_path / "chk", sim)  # save #2 killed
        # no partial debris, and the first checkpoint is intact
        assert not (tmp_path / ".chk.partial").exists()
        target = fresh_sim()
        load_checkpoint(ck, target)
        assert target.step_count == 1
        for i, fab in target.state[0]:
            assert np.isfinite(fab.whole()).all()
        sim.close()

    def test_roundtrip_into_used_driver(self, tmp_path):
        sim = make_sim(steps=2)
        ck = save_checkpoint(tmp_path / "chk", sim)
        ref = {i: fab.whole().copy() for i, fab in sim.state[0]}
        sim.run(2)  # diverge past the snapshot
        load_checkpoint(ck, sim)  # restore in place, hierarchy rebuilt
        assert sim.step_count == 2
        for i, arr in ref.items():
            np.testing.assert_array_equal(arr, sim.state[0].fab(i).whole())
        sim.close()


class TestLatest:
    def test_latest_skips_incomplete(self, tmp_path):
        sim = make_sim(steps=1)
        save_checkpoint(tmp_path / "chk_step000001", sim)
        sim.run(1)
        good = save_checkpoint(tmp_path / "chk_step000002", sim)
        # a later save that died before its Header landed
        broken = tmp_path / "chk_step000003"
        broken.mkdir()
        (broken / "Level_0.npz").write_bytes(b"partial")
        (tmp_path / ".chk_step000004.partial").mkdir()
        assert latest_checkpoint(tmp_path) == good
        sim.close()

    def test_latest_empty_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None
