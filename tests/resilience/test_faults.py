"""Fault-plan grammar, deterministic targeting, one-shot firing."""

import numpy as np
import pytest

from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.resilience.faults import (FaultInjector, InjectedCommDrop,
                                     InjectedTaskError, parse_plan)
from repro.runtime.graph import Task, TaskGraph


class TestPlanGrammar:
    def test_tokens(self):
        specs, seed = parse_plan(
            "seed=42 kill_worker@2.1 nan@3 slow@1:0.5 drop_comm@0:fb")
        assert seed == 42
        assert [(s.kind, s.step, s.stage, s.arg) for s in specs] == [
            ("kill_worker", 2, 1, None),
            ("nan", 3, 0, None),
            ("slow", 1, 0, "0.5"),
            ("drop_comm", 0, 0, "fb"),
        ]

    def test_semicolon_separated(self):
        specs, seed = parse_plan("kill_worker@1;nan@2;seed=9")
        assert len(specs) == 2
        assert seed == 9

    def test_bad_token(self):
        with pytest.raises(ValueError, match="bad fault token"):
            parse_plan("kill_worker@")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_plan("meteor_strike@3")

    def test_empty_plan_is_none(self):
        assert FaultInjector.from_config("") is None
        assert FaultInjector.from_config(None) is None
        assert FaultInjector.from_config("  ;  ") is None

    def test_explicit_seed_overrides_plan(self):
        inj = FaultInjector.from_config("nan@1 seed=3", seed=11)
        assert inj.seed == 11

    def test_token_round_trip(self):
        specs, _ = parse_plan("slow@2.1:1.5")
        assert specs[0].token() == "slow@2.1:1.5"


def fake_graph():
    g = TaskGraph()
    for tid, (name, kind, payload, channel) in enumerate([
        ("FB_nowait(L0)", "comm-post", None, ("fb", 0)),
        ("Box(L0,b0)", "compute", {"op": "rhs_update"}, None),
        ("Box(L0,b1)", "compute", {"op": "rhs_update"}, None),
        ("FB_finish(L0)", "comm-wait", None, ("fb", 0)),
    ]):
        g.tasks.append(Task(tid=tid, name=name, kind=kind,
                            fn=lambda: None, payload=payload,
                            channel=channel))
    return g


class TestInstrument:
    def test_kill_marks_one_payload_once(self):
        inj = FaultInjector.from_config("kill_worker@2.1 seed=5")
        g = fake_graph()
        inj.instrument(g, step=2, stage=1)
        marked = [t for t in g.tasks if t.payload
                  and t.payload.get("_fault") == ("kill",)]
        assert len(marked) == 1
        assert inj.fired_by_kind() == {"kill_worker": 1}
        # one-shot: a rebuilt graph for the retried step stays clean
        g2 = fake_graph()
        inj.instrument(g2, step=2, stage=1)
        assert not any(t.payload and "_fault" in t.payload
                       for t in g2.tasks)

    def test_wrong_step_or_stage_is_inert(self):
        inj = FaultInjector.from_config("kill_worker@2.1")
        g = fake_graph()
        inj.instrument(g, step=2, stage=0)
        inj.instrument(g, step=1, stage=1)
        assert not inj.fired
        assert len(inj.pending()) == 1

    def test_deterministic_target(self):
        targets = set()
        for _ in range(3):
            inj = FaultInjector.from_config("kill_worker@0 seed=7")
            g = fake_graph()
            inj.instrument(g, step=0, stage=0)
            targets.add(inj.fired[0]["target"])
        assert len(targets) == 1

    def test_drop_comm_targets_matching_channel(self):
        inj = FaultInjector.from_config("drop_comm@0:fb")
        g = fake_graph()
        inj.instrument(g, step=0, stage=0)
        assert inj.fired[0]["target"] == "FB_finish(L0)"
        with pytest.raises(InjectedCommDrop):
            g.tasks[3].fn()

    def test_task_error_wraps_inline_task(self):
        inj = FaultInjector.from_config("task_error@0:FB_finish")
        g = fake_graph()
        inj.instrument(g, step=0, stage=0)
        with pytest.raises(InjectedTaskError):
            g.tasks[3].fn()

    def test_slow_carries_duration(self):
        inj = FaultInjector.from_config("slow@0:0.25")
        g = fake_graph()
        inj.instrument(g, step=0, stage=0)
        marked = [t for t in g.tasks if t.payload and "_fault" in t.payload]
        assert marked[0].payload["_fault"] == ("slow", 0.25)


class TestNanSeeding:
    def test_corrupts_exactly_one_cell(self):
        case = SodShockTube(32)
        sim = Crocco(case, CroccoConfig(
            version="1.1", max_grid_size=16, blocking_factor=8,
            watchdog=False, faults_plan="nan@1 seed=3"))
        sim.initialize()
        sim.run(2)
        bad = sum(int(np.isnan(fab.whole()).sum())
                  for _i, fab in sim.state[0])
        assert bad == 1
        assert sim.faults.fired_by_kind() == {"nan": 1}
        sim.close()

    def test_deterministic_cell(self):
        cells = set()
        for _ in range(2):
            case = SodShockTube(32)
            sim = Crocco(case, CroccoConfig(
                version="1.1", max_grid_size=16, blocking_factor=8,
                watchdog=False, faults_plan="nan@0 seed=12"))
            sim.initialize()
            sim.run(1)
            cells.add(sim.faults.fired[0]["target"])
            sim.close()
        assert len(cells) == 1
