"""Supervised pool executor: worker death, retries, teardown guarantees."""

import multiprocessing

import numpy as np
import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.resilience.supervisor import SupervisedPoolExecutor
from repro.runtime.executors import (PoolExecutor, SerialExecutor,
                                     make_executor)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")


def run_dmr(steps=3, **overrides):
    defaults = dict(version="2.0", nranks=6, ranks_per_node=6, max_level=1,
                    max_grid_size=32, blocking_factor=8, regrid_int=2)
    defaults.update(overrides)
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(**defaults))
    sim.initialize()
    sim.run(steps)
    state = {(lev, i): fab.whole().copy()
             for lev in range(sim.finest_level + 1)
             for i, fab in sim.state[lev]}
    stats = sim.resilience.as_dict()
    sim.close()
    return state, stats


def assert_states_match(a, b, tol=1e-12):
    assert set(a) == set(b)
    for k in a:
        err = float(np.abs(a[k] - b[k]).max())
        assert err < tol, f"level/box {k}: max abs err {err}"


class TestConstruction:
    def test_make_executor_supervised(self):
        if not HAS_FORK:
            pytest.skip("needs fork start method")
        ex = make_executor("pool", workers=3,
                           supervision={"task_retries": 5})
        assert isinstance(ex, SupervisedPoolExecutor)
        assert isinstance(ex, PoolExecutor)  # drop-in for the scheduler
        assert ex.task_retries == 5
        ex.shutdown()

    def test_make_executor_bare(self):
        if not HAS_FORK:
            pytest.skip("needs fork start method")
        ex = make_executor("pool", workers=2)
        assert type(ex) is PoolExecutor
        ex.shutdown()

    def test_context_manager_tears_down(self):
        with make_executor("serial") as ex:
            assert isinstance(ex, SerialExecutor)
        if HAS_FORK:
            with make_executor("pool", workers=2) as ex:
                pass
            assert ex._pool is None

    def test_shutdown_idempotent(self):
        if not HAS_FORK:
            pytest.skip("needs fork start method")
        ex = make_executor("pool", workers=2,
                           supervision={"task_timeout": 1.0})
        ex.shutdown()
        ex.shutdown()


@needs_fork
class TestWorkerDeath:
    def test_killed_worker_recovered_bit_exact(self):
        ref, _ = run_dmr(executor="serial")
        state, stats = run_dmr(
            executor="pool", workers=2, task_timeout=0.75,
            faults_plan="kill_worker@1.1 seed=7")
        assert stats["pool_restarts"] >= 1
        assert stats["task_resubmits"] >= 1
        # a respawn taints the step: the watchdog rolled it back whole
        assert stats["step_retries"] >= 1
        assert stats["recovered_steps"] >= 1
        assert_states_match(ref, state)

    def test_stuck_worker_recovered(self):
        ref, _ = run_dmr(executor="serial", steps=2)
        state, stats = run_dmr(
            steps=2, executor="pool", workers=2, task_timeout=0.5,
            faults_plan="slow@1.0:30 seed=2")
        assert stats["pool_restarts"] >= 1
        assert_states_match(ref, state)


@needs_fork
class TestTaskFailure:
    def test_failed_task_retried_in_pool(self):
        ref, _ = run_dmr(executor="serial", steps=2)
        state, stats = run_dmr(
            steps=2, executor="pool", workers=2,
            faults_plan="task_error@1.0 seed=4")
        assert stats["task_retries"] >= 1
        assert_states_match(ref, state)

    def test_unsupervised_pool_still_works(self):
        ref, _ = run_dmr(executor="serial", steps=2)
        state, stats = run_dmr(steps=2, executor="pool", workers=2,
                               supervise=False)
        assert stats["pool_restarts"] == 0
        assert_states_match(ref, state)
