"""Chaos acceptance: worker kill + NaN + comm drop + kill-mid-checkpoint
in one pool-mode DMR run, which must complete, match the fault-free run
to < 1e-12, and account for every injected fault in the run report."""

import multiprocessing

import numpy as np
import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import format_report, resilience_totals

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: one of each headline fault class, all mid-run
CHAOS_PLAN = "kill_worker@1.1;nan@2;drop_comm@3.0:fb;kill_save@1;seed=7"


def run_dmr(steps=5, **overrides):
    defaults = dict(version="2.0", nranks=6, ranks_per_node=6, max_level=1,
                    max_grid_size=32, blocking_factor=8, regrid_int=2)
    defaults.update(overrides)
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(**defaults))
    sim.initialize()
    sim.run(steps)
    return sim


def grab_state(sim):
    return {(lev, i): fab.whole().copy()
            for lev in range(sim.finest_level + 1)
            for i, fab in sim.state[lev]}


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
class TestChaosRun:
    @pytest.fixture(scope="class")
    def chaos(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("chaos")
        clean = run_dmr(executor="serial")
        ref = grab_state(clean)
        clean.close()

        sim = run_dmr(
            executor="pool", workers=2, task_timeout=0.75,
            faults_plan=CHAOS_PLAN,
            autocheckpoint_every=2,
            autocheckpoint_dir=str(tmp / "auto"),
            metrics_out=str(tmp / "metrics.jsonl"),
        )
        state = grab_state(sim)
        fired = sim.faults.fired_by_kind()
        stats = sim.resilience.as_dict()
        last_good = sim.watchdog.last_good
        sim.close()
        records = MetricsRegistry.read_jsonl(tmp / "metrics.jsonl")
        return dict(ref=ref, state=state, fired=fired, stats=stats,
                    last_good=last_good, records=records, tmp=tmp)

    def test_every_fault_fired(self, chaos):
        assert chaos["fired"] == {"kill_worker": 1, "nan": 1,
                                  "drop_comm": 1, "kill_save": 1}

    def test_matches_fault_free(self, chaos):
        assert set(chaos["ref"]) == set(chaos["state"])
        for k in chaos["ref"]:
            err = float(np.abs(chaos["ref"][k] - chaos["state"][k]).max())
            assert err < 1e-12, f"level/box {k}: max abs err {err}"

    def test_recovery_actions_counted(self, chaos):
        s = chaos["stats"]
        assert s["pool_restarts"] >= 1       # kill_worker
        assert s["nan_detections"] == 1      # nan
        assert s["checkpoint_failures"] == 1  # kill_save hit autocheckpoint
        assert s["recovered_steps"] >= 3     # kill + nan + drop all retried
        assert s["dt_halvings"] == 0         # retries kept the original dt
        assert s["degraded_to_serial"] == 0

    def test_survived_kill_mid_save(self, chaos):
        # the first autocheckpoint (step 2) was killed; the second (step 4)
        # must have published and be loadable
        assert chaos["last_good"] is not None
        assert chaos["last_good"].name == "chk_step000004"
        from repro.io.checkpoint import load_checkpoint

        case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
        target = Crocco(case, CroccoConfig(
            version="2.0", nranks=6, ranks_per_node=6, max_level=1,
            max_grid_size=32, blocking_factor=8, regrid_int=2))
        load_checkpoint(chaos["last_good"], target)
        assert target.step_count == 4
        target.close()

    def test_report_accounts_for_faults(self, chaos):
        totals = resilience_totals(chaos["records"])
        assert totals["faults_injected"] == 4
        assert totals["injected.kill_worker"] == 1
        assert totals["injected.nan"] == 1
        assert totals["injected.drop_comm"] == 1
        assert totals["injected.kill_save"] == 1
        assert totals["pool_restarts"] == chaos["stats"]["pool_restarts"]
        text = format_report([], {}, chaos["records"])
        assert "-- resilience --" in text
        assert "faults injected      4" in text
        assert "run completed" in text
