"""Step watchdog: validation, rollback/retry, dt-halving, restore."""

import numpy as np
import pytest

from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.resilience.watchdog import UnrecoverableStepError


def make_sim(**overrides):
    defaults = dict(version="1.1", max_grid_size=16, blocking_factor=8)
    defaults.update(overrides)
    sim = Crocco(SodShockTube(32), CroccoConfig(**defaults))
    sim.initialize()
    return sim


def final_state(sim):
    return {i: fab.whole().copy() for i, fab in sim.state[0]}


class TestNanRecovery:
    def test_recovers_and_matches_fault_free(self):
        clean = make_sim(watchdog=False)
        clean.run(4)
        ref = final_state(clean)
        clean.close()

        sim = make_sim(faults_plan="nan@2 seed=3")
        sim.run(4)
        assert sim.resilience.get("nan_detections") == 1
        assert sim.resilience.get("rollbacks") == 1
        assert sim.resilience.get("recovered_steps") == 1
        assert sim.resilience.get("dt_halvings") == 0  # first retry same dt
        for i, arr in ref.items():
            np.testing.assert_array_equal(arr, sim.state[0].fab(i).whole())
        sim.close()

    def test_watchdog_off_lets_nan_through(self):
        sim = make_sim(watchdog=False, faults_plan="nan@1 seed=3")
        sim.run(2)
        assert any(np.isnan(fab.whole()).any() for _i, fab in sim.state[0])
        sim.close()


class TestInlineFaultRetry:
    def test_comm_drop_rolled_back(self):
        clean = make_sim(watchdog=False)
        clean.run(3)
        ref = final_state(clean)
        clean.close()

        sim = make_sim(faults_plan="drop_comm@1.1:fb seed=2")
        sim.run(3)
        assert sim.resilience.get("step_retries") == 1
        assert sim.resilience.get("recovered_steps") == 1
        for i, arr in ref.items():
            np.testing.assert_array_equal(arr, sim.state[0].fab(i).whole())
        sim.close()

    def test_inline_task_error_rolled_back(self):
        sim = make_sim(faults_plan="task_error@0:FB_finish seed=4")
        sim.run(2)
        assert sim.faults.fired_by_kind() == {"task_error": 1}
        assert sim.resilience.get("recovered_steps") == 1
        sim.close()


class TestEscalation:
    def test_persistent_failure_halves_dt_then_raises(self):
        # an impossible CFL margin makes every validation fail: the
        # watchdog retries same-dt once, then halves dt, then gives up
        sim = make_sim(cfl_margin=1e-12, max_step_retries=2)
        with pytest.raises(UnrecoverableStepError):
            sim.run(1)
        assert sim.resilience.get("rollbacks") == 3  # retries + final
        assert sim.resilience.get("dt_halvings") == 1
        assert sim.step_count == 0  # rolled back, never advanced
        sim.close()

    def test_non_retryable_errors_propagate(self):
        sim = make_sim()
        orig = sim._advance

        def boom(dt):
            raise ZeroDivisionError("a real bug")

        sim._advance = boom
        with pytest.raises(ZeroDivisionError):
            sim.step()
        sim._advance = orig
        assert sim.resilience.get("rollbacks") == 0
        sim.close()


class TestAutocheckpoint:
    def test_periodic_saves_and_pruning(self, tmp_path):
        sim = make_sim(autocheckpoint_every=1, autocheckpoint_keep=2,
                       autocheckpoint_dir=str(tmp_path / "auto"))
        sim.run(4)
        kept = sorted(p.name for p in (tmp_path / "auto").iterdir())
        assert kept == ["chk_step000003", "chk_step000004"]
        assert sim.resilience.get("autocheckpoints") == 4
        assert sim.watchdog.last_good.name == "chk_step000004"
        sim.close()

    def test_restore_from_last_good(self, tmp_path):
        # no step retries allowed: the injected NaN forces an immediate
        # restore from the last good autocheckpoint
        sim = make_sim(autocheckpoint_every=1, max_step_retries=0,
                       autocheckpoint_dir=str(tmp_path / "auto"),
                       faults_plan="nan@2 seed=5")
        sim.run(4)
        assert sim.resilience.get("restores") == 1
        assert sim.step_count >= 2  # resumed from step 2's checkpoint
        assert all(np.isfinite(fab.whole()).all()
                   for _i, fab in sim.state[0])
        sim.close()

    def test_exhausted_restores_raise(self):
        sim = make_sim(cfl_margin=1e-12, max_step_retries=0)
        with pytest.raises(UnrecoverableStepError):
            sim.run(1)
        sim.close()


class TestNoFaultOverheadPath:
    def test_watchdog_is_bitwise_transparent(self):
        guarded = make_sim()
        guarded.run(3)
        ref = final_state(guarded)
        t_g, n_g = guarded.time, guarded.step_count
        guarded.close()

        bare = make_sim(watchdog=False)
        bare.run(3)
        assert bare.time == t_g and bare.step_count == n_g
        for i, arr in ref.items():
            np.testing.assert_array_equal(arr, bare.state[0].fab(i).whole())
        assert guarded.resilience.as_dict()["rollbacks"] == 0
        bare.close()
