"""Tests for the MetricsRegistry instruments and JSONL serialization."""

import pytest

from repro.observability.metrics import MetricsRegistry


def test_counter_is_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("bytes")
    c.inc(10)
    c.inc()
    assert c.value == 11
    with pytest.raises(ValueError):
        c.inc(-1)
    # get-or-create returns the same instrument
    assert reg.counter("bytes") is c


def test_gauge_unset_omitted_from_snapshot():
    reg = MetricsRegistry()
    reg.gauge("dt")
    assert "dt" not in reg.snapshot()
    reg.gauge("dt").set(0.5)
    assert reg.snapshot()["dt"] == 0.5
    reg.gauge("dt").set(0.25)  # last write wins
    assert reg.snapshot()["dt"] == 0.25


def test_histogram_flattens_to_stats():
    reg = MetricsRegistry()
    h = reg.histogram("dt_hist")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["dt_hist.count"] == 3
    assert snap["dt_hist.sum"] == pytest.approx(6.0)
    assert snap["dt_hist.min"] == 1.0
    assert snap["dt_hist.max"] == 3.0
    assert snap["dt_hist.mean"] == pytest.approx(2.0)


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_sample_records_and_extra():
    reg = MetricsRegistry()
    reg.counter("n").inc(2)
    rec = reg.sample(step=1, time=0.5, extra={"custom": 7})
    assert rec["step"] == 1 and rec["time"] == 0.5
    assert rec["metrics"]["n"] == 2
    assert rec["metrics"]["custom"] == 7.0
    assert reg.records == [rec]


def test_jsonl_round_trip(tmp_path):
    reg = MetricsRegistry()
    for step in range(3):
        reg.counter("ledger.reduce.bytes").inc(100)
        reg.gauge("active_cells.lev0").set(1000 + step)
        reg.sample(step, step * 0.1)
    path = reg.write_jsonl(tmp_path / "sub" / "metrics.jsonl")
    records = MetricsRegistry.read_jsonl(path)
    assert len(records) == 3
    # counters are cumulative across samples; gauges track the last set
    assert [r["metrics"]["ledger.reduce.bytes"] for r in records] == \
        [100, 200, 300]
    assert records[-1]["metrics"]["active_cells.lev0"] == 1002


def test_read_jsonl_validates_schema(tmp_path):
    p = tmp_path / "bad.jsonl"
    p.write_text('{"step": 0, "time": 0.0}\n')
    with pytest.raises(ValueError):
        MetricsRegistry.read_jsonl(p)
