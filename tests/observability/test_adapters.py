"""Tests for the silo adapters: profiler, ledger and device listeners."""

import numpy as np
import pytest

from repro.kernels.device import GpuDevice
from repro.mpi.ledger import CommLedger
from repro.observability.adapters import (
    DeviceMetricsAdapter,
    LedgerMetricsAdapter,
    ProfilerTraceAdapter,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import GPU_STREAM, Tracer
from repro.profiling.tinyprofiler import TinyProfiler


def test_profiler_regions_become_nested_spans():
    tracer = Tracer()
    prof = TinyProfiler()
    prof.add_listener(ProfilerTraceAdapter(tracer, rank=0))
    with prof.region("FillPatch"):
        with prof.region("FillBoundary"):
            pass
    spans = {e["name"]: e for e in tracer.events()}
    assert set(spans) == {"FillPatch", "FillBoundary"}
    inner, outer = spans["FillBoundary"], spans["FillPatch"]
    assert inner["ts"] >= outer["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
    assert inner["args"]["path"] == "FillPatch/FillBoundary"
    # profiler accumulation is unchanged by the listener
    assert prof.calls("FillPatch") == 1
    assert "FillBoundary" in prof.breakdown("FillPatch")


def test_profiler_charges_become_charged_spans():
    tracer = Tracer()
    prof = TinyProfiler()
    prof.add_listener(ProfilerTraceAdapter(tracer, rank=0))
    with prof.charged_region("FillPatch"):
        prof.charge("ParallelCopy", 2.0)
        prof.charge("FillBoundary", 1.0)
    spans = {e["name"]: e for e in tracer.events()}
    assert spans["FillPatch"]["dur"] == pytest.approx(3.0e6)
    assert spans["ParallelCopy"]["dur"] == pytest.approx(2.0e6)
    # the tracer's charged layout matches the profiler's accounting
    assert prof.total("FillPatch") == pytest.approx(3.0)


def test_remove_listener_stops_forwarding():
    tracer = Tracer()
    prof = TinyProfiler()
    adapter = ProfilerTraceAdapter(tracer, rank=0)
    prof.add_listener(adapter)
    prof.charge("A", 1.0)
    prof.remove_listener(adapter)
    prof.charge("B", 1.0)
    assert {e["name"] for e in tracer.events()} == {"A"}


def test_ledger_adapter_counters_and_matrix():
    reg = MetricsRegistry()
    adapter = LedgerMetricsAdapter(reg, ranks_per_node=2)
    led = CommLedger()
    led.add_listener(adapter)
    led.record(0, 1, 100, "fillboundary")   # same node (ranks 0,1)
    led.record(0, 2, 50, "fillboundary")    # off node (node 0 -> node 1)
    led.record(3, 3, 10, "reduce")          # local: no on/off split
    snap = reg.snapshot()
    assert snap["ledger.fillboundary.bytes"] == 150
    assert snap["ledger.fillboundary.messages"] == 2
    assert snap["ledger.fillboundary.on_node_bytes"] == 100
    assert snap["ledger.fillboundary.off_node_bytes"] == 50
    assert snap["ledger.reduce.bytes"] == 10
    assert "ledger.reduce.on_node_bytes" not in snap
    m = adapter.comms_matrix()
    assert m[0][1] == 100 and m[0][2] == 50 and m[3][3] == 10
    assert len(m) == 4
    # explicit rank count pads the matrix
    assert len(adapter.comms_matrix(6)) == 6
    # ledger's own accounting is unchanged
    assert led.by_kind()["fillboundary"] == (2, 150)


def test_ledger_paused_suppresses_listener():
    reg = MetricsRegistry()
    led = CommLedger()
    led.add_listener(LedgerMetricsAdapter(reg))
    with led.paused():
        led.record(0, 1, 999, "reduce")
    assert reg.snapshot() == {}
    assert len(led) == 0


def test_device_adapter_counts_and_spans():
    reg = MetricsRegistry()
    tracer = Tracer()
    dev = GpuDevice()
    dev.add_listener(DeviceMetricsAdapter(reg, rank=0, tracer=tracer))
    dev.launch("WENOx", lambda: None, npoints=1000,
               flops_per_point=10.0, dram_bytes_per_point=8.0)
    dev.launch("WENOx", lambda: None, npoints=500,
               flops_per_point=10.0, dram_bytes_per_point=8.0)
    snap = reg.snapshot()
    assert snap["kernel.WENOx.launches"] == 2
    assert snap["kernel.WENOx.points"] == 1500
    assert snap["kernel.WENOx.flops"] == 15000
    assert snap["kernel.WENOx.dram_bytes"] == 12000
    assert snap["device.rank0.high_water_bytes"] == dev.high_water
    spans = [e for e in tracer.events() if e["ph"] == "X"]
    assert len(spans) == 2
    assert all(e["tid"] == GPU_STREAM and e["cat"] == "kernel" for e in spans)


def test_device_reduce_notifies_listener():
    reg = MetricsRegistry()
    dev = GpuDevice()
    dev.add_listener(DeviceMetricsAdapter(reg, rank=0))
    out = dev.reduce("ComputeDt", np.array([3.0, 1.0, 2.0]), op="min")
    assert out == 1.0
    assert reg.snapshot()["kernel.ComputeDt.launches"] == 1
