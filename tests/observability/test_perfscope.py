"""Tests for the perfscope task-lifecycle attribution layer.

Unit coverage of the span/trace machinery (reconciliation, clamping,
critical path, capacity tiling) on synthetic graphs, plus integration:
a real DMR run under both executors must produce an attribution whose
buckets tile the lane capacity, export ``perf.*`` gauges through the
recorder, and render a bottleneck section in the run report.
"""

import multiprocessing

import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.observability.perfscope import (
    PerfScope,
    StageTrace,
    StepPerf,
    attribute_stage,
    critical_path,
    kernel_class,
)
from repro.observability.perfscope.critpath import span_weight
from repro.observability.perfscope.lifecycle import box_of

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# -- synthetic graphs --------------------------------------------------------

class FakeTask:
    def __init__(self, tid, name, kind="compute", deps=()):
        self.tid = tid
        self.name = name
        self.kind = kind
        self.deps = tuple(deps)


class FakeGraph:
    def __init__(self, tasks):
        self.tasks = tasks


def chain_graph():
    """A -> B -> C plus an independent D."""
    return FakeGraph([
        FakeTask(0, "Box(L0,b0)"),
        FakeTask(1, "Box(L0,b1)", deps=(0,)),
        FakeTask(2, "AverageDown(L1->L0)", deps=(1,)),
        FakeTask(3, "FB_nowait(L0)", kind="comm-post"),
    ])


class TestNames:
    def test_kernel_class_strips_instance(self):
        assert kernel_class("Box(L1,b3)") == "Box"
        assert kernel_class("FB_nowait(L0)") == "FB_nowait"
        assert kernel_class("AverageDown(L1->L0)") == "AverageDown"

    def test_box_of(self):
        assert box_of("Box(L1,b3)") == (1, 3)
        assert box_of("Interp(L2,b11)") == (2, 11)
        assert box_of("FB_nowait(L0)") is None


class TestStageTrace:
    def test_inline_lifecycle(self):
        trace = StageTrace(chain_graph(), nlanes=1)
        trace.enqueued(0, 0.0)
        trace.ran_inline(0, 0.1, 0.5)
        trace.merged(0, 0.65)
        s = trace.spans[0]
        assert s.execute_s == pytest.approx(0.5)
        assert s.t_collected == pytest.approx(0.6)  # collected at finish
        assert s.merge_s == pytest.approx(0.05)
        assert s.queue_wait_s == 0.0  # inline tasks never queue
        assert s.result_s == 0.0

    def test_offloaded_reconciles_absolute_clocks(self):
        trace = StageTrace(chain_graph(), nlanes=2)
        t0 = trace.t0_abs
        lifecycle = {"sid": 0, "serialize_s": 0.01, "pickle_bytes": 512,
                     "t_dispatched": t0 + 0.10, "t_started": t0 + 0.15,
                     "t_finished": t0 + 0.40, "deserialize_s": 0.002}
        trace.offloaded_done(0, lane=1, dur=0.25, lifecycle=lifecycle,
                             t_collected=0.45)
        s = trace.spans[0]
        assert s.offloaded and s.lane == 1
        assert s.queue_wait_s == pytest.approx(0.05)
        assert s.execute_s == pytest.approx(0.25)
        assert s.result_s == pytest.approx(0.05)
        assert s.pickle_bytes == 512
        assert trace.reconcile_errors == 0

    def test_negative_queue_wait_clamped_and_counted(self):
        trace = StageTrace(chain_graph(), nlanes=2)
        t0 = trace.t0_abs
        lifecycle = {"t_dispatched": t0 + 0.20, "t_started": t0 + 0.10,
                     "t_finished": t0 + 0.30}
        trace.offloaded_done(0, lane=1, dur=0.2, lifecycle=lifecycle,
                             t_collected=0.35)
        s = trace.spans[0]
        assert trace.reconcile_errors == 1
        assert s.queue_wait_s == 0.0
        assert s.t_started == s.t_dispatched

    def test_sid_mismatch_counted_not_trusted(self):
        trace = StageTrace(chain_graph(), nlanes=2, sid_base=100)
        trace.offloaded_done(0, lane=1, dur=0.1,
                             lifecycle={"sid": 7}, t_collected=0.2)
        assert trace.reconcile_errors == 1

    def test_sid_base_offsets_deps(self):
        trace = StageTrace(chain_graph(), nlanes=1, sid_base=10)
        assert trace.sid(0) == 10
        assert trace.spans[1].deps == (10,)


class TestCriticalPath:
    def _trace(self, durations):
        trace = StageTrace(chain_graph(), nlanes=1)
        t = 0.0
        for tid, dur in enumerate(durations):
            trace.ran_inline(tid, t, dur)
            trace.merged(tid, t + dur)
            t += dur
        return trace

    def test_longest_chain_wins(self):
        # chain 0->1->2 totals 0.6; independent task 3 is 0.5
        trace = self._trace([0.1, 0.2, 0.3, 0.5])
        seconds, path = critical_path(trace)
        assert seconds == pytest.approx(0.6)
        assert [s.name for s in path] == [
            "Box(L0,b0)", "Box(L0,b1)", "AverageDown(L1->L0)"]

    def test_independent_task_can_dominate(self):
        trace = self._trace([0.1, 0.1, 0.1, 5.0])
        seconds, path = critical_path(trace)
        assert seconds == pytest.approx(5.0)
        assert [s.name for s in path] == ["FB_nowait(L0)"]

    def test_weight_includes_lifecycle(self):
        trace = StageTrace(chain_graph(), nlanes=2)
        t0 = trace.t0_abs
        trace.offloaded_done(0, lane=1, dur=0.2, lifecycle={
            "serialize_s": 0.01, "t_dispatched": t0 + 0.1,
            "t_started": t0 + 0.15, "t_finished": t0 + 0.35,
        }, t_collected=0.40)
        trace.merged(0, 0.42)
        s = trace.spans[0]
        # serialize + queue wait + execute + result + merge
        assert span_weight(s) == pytest.approx(
            0.01 + 0.05 + 0.20 + 0.05 + 0.02)


class TestAttribution:
    def test_serial_stage_tiles_capacity(self):
        trace = StageTrace(chain_graph(), nlanes=1)
        t = 0.0
        for tid in range(4):
            trace.ran_inline(tid, t, 0.2)
            trace.merged(tid, t + 0.25)  # 0.05 merge gap each
            t += 0.25
        trace.close(t)
        step = attribute_stage(trace)
        assert step.capacity_s == pytest.approx(1.0)
        assert step.execute_s == pytest.approx(0.8)
        assert step.merge_s == pytest.approx(0.2)
        assert step.idle_s == pytest.approx(0.0, abs=1e-12)
        assert step.coverage == pytest.approx(1.0)

    def test_worker_lane_idle_measured_from_gaps(self):
        trace = StageTrace(chain_graph(), nlanes=2)
        t0 = trace.t0_abs
        # one offloaded task busy [0.2, 0.6] on lane 1; makespan 1.0
        trace.offloaded_done(0, lane=1, dur=0.4, lifecycle={
            "t_dispatched": t0 + 0.2, "t_started": t0 + 0.2,
            "t_finished": t0 + 0.6,
        }, t_collected=0.6)
        trace.merged(0, 0.6)
        for tid in (1, 2, 3):  # driver busy the whole time
            trace.ran_inline(tid, (tid - 1) / 3, 1 / 3)
            trace.merged(tid, tid / 3)
        trace.close(1.0)
        step = attribute_stage(trace)
        # lane 1 idle = [0,0.2] + [0.6,1.0] = 0.6
        assert step.lane_idle[1] == pytest.approx(0.6)
        assert step.lane_idle[0] == pytest.approx(0.0, abs=1e-9)
        assert step.offloaded == 1

    def test_driver_gap_under_result_window_is_result_not_idle(self):
        graph = FakeGraph([FakeTask(0, "Box(L0,b0)")])
        trace = StageTrace(graph, nlanes=2)
        t0 = trace.t0_abs
        # worker finishes at 0.4 but the driver only collects at 0.7:
        # the driver's [0.4, 0.7] gap is result-wait, not idle
        trace.offloaded_done(0, lane=1, dur=0.4, lifecycle={
            "t_dispatched": t0 + 0.0, "t_started": t0 + 0.0,
            "t_finished": t0 + 0.4,
        }, t_collected=0.7)
        trace.merged(0, 0.7)
        trace.close(0.7)
        step = attribute_stage(trace)
        assert step.result_s >= 0.3 - 1e-9  # the measured driver gap
        assert step.lane_idle[0] < 0.7 - 0.3 + 1e-9

    def test_step_perf_merge_accumulates(self):
        a, b = StepPerf(), StepPerf()
        a.execute_s, a.capacity_s, a.stages = 1.0, 2.0, 1
        b.execute_s, b.capacity_s, b.stages = 0.5, 1.0, 2
        a.per_class["Box"] = {"count": 2, "execute_s": 1.0}
        b.per_class["Box"] = {"count": 1, "execute_s": 0.5}
        b.box_costs[(0, 1)] = 0.5
        a.merge(b)
        assert a.execute_s == pytest.approx(1.5)
        assert a.stages == 3
        assert a.per_class["Box"]["count"] == 3
        assert a.box_costs[(0, 1)] == pytest.approx(0.5)

    def test_as_gauges_flat_schema(self):
        step = StepPerf()
        step.capacity_s = step.execute_s = 1.0
        step.critical_path_s = 0.5
        step.lane_idle[1] = 0.25
        step.per_class["Box"] = {"count": 3, "execute_s": 1.0}
        step.cp_tasks = {"Box(L0,b0)": 0.5}
        step.box_costs[(1, 2)] = 0.75
        g = step.as_gauges()
        assert g["realized_parallelism"] == pytest.approx(2.0)
        assert g["lane.1.idle_s"] == pytest.approx(0.25)
        assert g["class.Box.count"] == 3
        assert g["cp.Box(L0,b0)"] == pytest.approx(0.5)
        assert g["box_cost.L1.b2"] == pytest.approx(0.75)


class TestPerfScope:
    def test_disabled_scope_collects_nothing(self):
        scope = PerfScope(enabled=False)
        scope.begin_step()
        assert scope.begin_stage(chain_graph(), 1) is None
        assert scope.finalize_step() is None
        assert scope.total is None

    def test_abort_drops_partial_step(self):
        scope = PerfScope()
        scope.begin_step()
        trace = scope.begin_stage(chain_graph(), 1)
        trace.ran_inline(0, 0.0, 1.0)
        scope.abort_step()
        scope.begin_step()
        step = scope.finalize_step()
        assert step.stages == 0 and step.tasks == 0

    def test_sids_unique_across_stages(self):
        scope = PerfScope()
        scope.begin_step()
        t1 = scope.begin_stage(chain_graph(), 1)
        t2 = scope.begin_stage(chain_graph(), 1)
        assert t2.sid(0) == t1.sid(3) + 1

    def test_overhead_self_metered(self):
        scope = PerfScope()
        scope.begin_step()
        scope.begin_stage(chain_graph(), 1)
        step = scope.finalize_step()
        assert step.overhead_s > 0.0
        assert step.overhead_s == scope.overhead_s


# -- integration -------------------------------------------------------------

def run_dmr(executor, workers=None, steps=2, **cfg):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.0", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=workers, **cfg))
    sim.initialize()
    sim.run(steps)
    return sim


class TestIntegration:
    def test_serial_run_attributes_full_capacity(self):
        sim = run_dmr("serial")
        perf = sim.engine.perfscope.total
        sim.close()
        assert perf.stages == 6  # 2 steps x 3 RK stages
        assert perf.offloaded == 0
        assert perf.reconcile_errors == 0
        assert abs(perf.coverage - 1.0) <= 0.05
        assert 0.0 < perf.critical_path_s <= perf.execute_s + 1e-9
        assert perf.box_costs  # per-box histogram populated

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_run_reconciles_worker_clocks(self):
        sim = run_dmr("pool", workers=2)
        perf = sim.engine.perfscope.total
        sim.close()
        assert perf.nlanes == 3
        assert perf.offloaded > 0
        assert perf.reconcile_errors == 0
        assert perf.serialize_s > 0.0
        assert perf.pickle_bytes > 0
        # the closure acceptance check: buckets tile lane capacity
        assert abs(perf.coverage - 1.0) <= 0.05
        # offloaded worker idle shows up on worker lanes
        assert set(perf.lane_idle) == {0, 1, 2}

    def test_config_disables_perfscope(self):
        sim = run_dmr("serial", perfscope=False, steps=1)
        assert sim.engine.perfscope.total is None
        assert sim.engine.last_step_perf is None
        sim.close()

    def test_recorded_run_exports_perf_gauges_and_report(self, tmp_path):
        from repro.observability.report import format_report, load_run

        case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
        sim = Crocco(case, CroccoConfig(
            version="2.0", nranks=6, ranks_per_node=6, max_level=1,
            max_grid_size=32, blocking_factor=8, regrid_int=2,
            executor="serial",
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.jsonl")))
        sim.initialize()
        sim.run(2)
        sim.close()
        events, other, records = load_run(str(tmp_path))
        m = records[-1]["metrics"]
        assert m["perf.critical_path_s"] > 0.0
        assert m["perf.realized_parallelism"] > 0.0
        assert abs(m["perf.coverage"] - 1.0) <= 0.05
        assert "perf.class.Box.execute_s" in m
        report = format_report(events, other, records)
        assert "-- bottleneck" in report
        assert "critical path" in report
        assert "per-box execute cost" in report

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_trace_carries_lifecycle_slices(self, tmp_path):
        import json

        from repro.observability.tracer import validate_chrome_trace

        case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
        sim = Crocco(case, CroccoConfig(
            version="2.0", nranks=6, ranks_per_node=6, max_level=1,
            max_grid_size=32, blocking_factor=8, regrid_int=2,
            executor="pool", workers=2,
            trace_out=str(tmp_path / "trace.json")))
        sim.initialize()
        sim.run(2)
        sim.close()
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("cat") == "lifecycle"}
        assert {"serialize", "wait", "collect"} <= names
