"""End-to-end: record a functional run and a simulated export, report both.

The acceptance path of the unified observability layer: a DMR run with
``trace_out`` / ``metrics_out`` set produces a valid Chrome trace whose
FillPatch spans nest ParallelCopy / FillBoundary children, a metrics JSONL
with per-step active cells per level and ledger bytes by kind, and a run
report consistent with ``TinyProfiler.breakdown("FillPatch")`` — while the
simulated-Summit weak-scaling driver emits the same schema with charged
time.
"""

import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import (
    format_report,
    load_run,
    split_of,
    summarize_spans,
)
from repro.observability.tracer import load_chrome_trace, validate_chrome_trace


@pytest.fixture(scope="module")
def recorded_run(tmp_path_factory):
    """A short recorded DMR run with two AMR levels."""
    run_dir = tmp_path_factory.mktemp("run")
    case = DoubleMachReflection(ncells=(32, 8))
    sim = Crocco(case, CroccoConfig(
        version="1.2", nranks=2, ranks_per_node=1, max_level=1,
        max_grid_size=16, blocking_factor=8, regrid_int=2,
        trace_out=str(run_dir / "trace.json"),
        metrics_out=str(run_dir / "metrics.jsonl"),
    ))
    sim.initialize()
    for _ in range(3):
        sim.step()
    fp_breakdown = dict(sim.profiler.breakdown("FillPatch"))
    sim.close()
    return run_dir, sim, fp_breakdown


def test_trace_is_valid_with_nested_fillpatch(recorded_run):
    run_dir, _sim, _bd = recorded_run
    import json
    doc = json.loads((run_dir / "trace.json").read_text())
    assert validate_chrome_trace(doc) == []
    events, other = load_chrome_trace(run_dir / "trace.json")
    assert other["mode"] == "wall"
    assert other["schema"] == "repro-trace-1"
    assert other["config"]["case"] == "dmr"
    # FillPatch spans nest ParallelCopy and FillBoundary children
    split = split_of(events, "FillPatch")
    assert "ParallelCopy" in split
    assert "FillBoundary" in split
    assert all(v > 0 for v in split.values())


def test_metrics_carry_cells_and_ledger_bytes(recorded_run):
    run_dir, sim, _bd = recorded_run
    records = MetricsRegistry.read_jsonl(run_dir / "metrics.jsonl")
    assert len(records) == 3
    for rec in records:
        m = rec["metrics"]
        assert m["active_cells.lev0"] > 0
        assert m["active_cells.lev1"] > 0
        assert m["active_cells.total"] == \
            m["active_cells.lev0"] + m["active_cells.lev1"]
        assert m["dt"] > 0
    final = records[-1]["metrics"]
    # ledger traffic by kind, cumulative, matching the ledger itself
    assert final["ledger.fillboundary.bytes"] == \
        sim.comm.ledger.total_bytes("fillboundary")
    assert final["ledger.parallelcopy.bytes"] > 0
    assert final["tagged_cells"] > 0


def test_report_matches_profiler_breakdown(recorded_run):
    run_dir, _sim, fp_breakdown = recorded_run
    events, other, records = load_run(str(run_dir))
    split = split_of(events, "FillPatch")
    # the trace-reconstructed FillPatch split agrees with TinyProfiler's
    for child in ("ParallelCopy", "FillBoundary"):
        assert split[child] == pytest.approx(fp_breakdown[child], rel=0.15,
                                             abs=2e-3)
    regions = summarize_spans(
        [e for e in events if e.get("cat") in ("region", "charged")]
    )
    assert regions["FillPatch"].exclusive >= -1e-9
    text = format_report(events, other, records)
    assert "hot regions" in text
    assert "FillPatch split" in text
    assert "comms matrix" in text
    assert "Advance" in text


def test_report_cli_exit_codes(recorded_run, tmp_path, capsys):
    from repro.observability.report import main

    run_dir, _sim, _bd = recorded_run
    assert main([str(run_dir)]) == 0
    capsys.readouterr()
    assert main([str(tmp_path / "nowhere")]) == 2


class TestReportDegradesGracefully:
    """Malformed run artifacts get a clear message, never a traceback."""

    def test_empty_metrics_file(self, tmp_path, capsys):
        from repro.observability.report import main

        (tmp_path / "metrics.jsonl").write_text("")
        assert main([str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_truncated_final_line_still_reports(self, recorded_run,
                                                tmp_path, capsys):
        from repro.observability.report import main

        run_dir, _sim, _bd = recorded_run
        intact = (run_dir / "metrics.jsonl").read_text()
        # a run killed mid-write leaves a half-serialized final record
        (tmp_path / "metrics.jsonl").write_text(
            intact + intact.splitlines()[0][: len(intact) // 8])
        assert main(["--metrics", str(tmp_path / "metrics.jsonl")]) == 0
        out, err = capsys.readouterr()
        assert "skipping malformed record" in err
        # every intact record still rendered
        assert f"{len(intact.splitlines())} timesteps" in out

    def test_record_missing_metrics_section_skipped(self, tmp_path, capsys):
        from repro.observability.report import main

        path = tmp_path / "metrics.jsonl"
        path.write_text(
            '{"step": 0, "time": 0.0, "metrics": {"dt": 1e-3}}\n'
            '{"step": 1, "time": 1e-3}\n')
        assert main(["--metrics", str(path)]) == 0
        out, err = capsys.readouterr()
        assert "skipping record missing 'metrics'" in err
        assert "1 timesteps" in out

    def test_fully_malformed_metrics(self, tmp_path, capsys):
        from repro.observability.report import main

        path = tmp_path / "metrics.jsonl"
        path.write_text("not json at all\n{{{\n")
        assert main(["--metrics", str(path)]) == 2
        err = capsys.readouterr().err
        assert "no usable events or metrics" in err
        assert "Traceback" not in err

    def test_malformed_trace_json(self, tmp_path, capsys):
        from repro.observability.report import main

        (tmp_path / "trace.json").write_text('{"traceEvents": [{"ph"')
        assert main([str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_strict_reader_still_raises(self, tmp_path):
        bad = tmp_path / "m.jsonl"
        bad.write_text('{"step": 0}\n')
        with pytest.raises(ValueError):
            MetricsRegistry.read_jsonl(bad)
        bad.write_text("nope\n")
        with pytest.raises(ValueError):
            MetricsRegistry.read_jsonl(bad)


def test_simulated_export_same_schema(tmp_path):
    from repro.perfmodel.trace_export import export_weak_scaling

    table = tuple((n, 6 * n, 5.0e6 * n) for n in (4, 16))
    paths = export_weak_scaling(tmp_path / "sim", version="2.1", table=table)
    events, other = load_chrome_trace(paths["trace"])
    assert other["mode"] == "charged"
    assert other["schema"] == "repro-trace-1"
    # same nested FillPatch split as the functional artifacts
    split = split_of(events, "FillPatch")
    assert "ParallelCopy" in split and "FillBoundary" in split
    records = MetricsRegistry.read_jsonl(paths["metrics"])
    assert len(records) == 2
    for rec, (nodes, _g, _p) in zip(records, table):
        assert rec["metrics"]["nodes"] == nodes
        assert rec["metrics"]["active_cells.lev0"] > 0
    # charged time accumulates across steps
    assert records[1]["time"] > records[0]["time"] > 0
    # the same report renderer handles the charged artifacts
    text = format_report(events, other, records)
    assert "charged time" in text
    assert "FillPatch" in text


class TestServiceRunDirectories:
    """``python -m repro.report`` on a serve-layer run directory."""

    def _record(self, state, **extra):
        rec = {"id": "r00042", "state": state, "priority": 0,
               "label": "svc-test", "reason": "", "result": None}
        rec.update(extra)
        return rec

    def test_done_service_run_renders_with_header(self, recorded_run,
                                                  tmp_path, capsys):
        import json
        import shutil

        from repro.observability.report import main

        run_dir, _sim, _bd = recorded_run
        svc = tmp_path / "r00042"
        svc.mkdir()
        for name in ("trace.json", "metrics.jsonl"):
            shutil.copy(run_dir / name, svc / name)
        (svc / "run.json").write_text(json.dumps(self._record(
            "done", latency_s=1.25,
            result={"status": "done", "case": "dmr", "steps": 3})))
        assert main([str(svc)]) == 0
        out = capsys.readouterr().out
        assert "service run r00042 [done]" in out
        assert "label=svc-test" in out
        assert "case=dmr" in out
        assert "hot regions" in out  # the normal report still follows

    def test_still_running_partial_stream_degrades(self, tmp_path, capsys):
        import json

        from repro.observability.report import main

        svc = tmp_path / "r00042"
        svc.mkdir()
        (svc / "run.json").write_text(json.dumps(self._record("running")))
        # the streaming writer was killed mid-line: no complete record yet
        (svc / "metrics.jsonl").write_text('{"step": 1, "ti')
        assert main([str(svc)]) == 2
        err = capsys.readouterr().err
        assert "still 'running'" in err
        assert "retry once the run has progressed" in err
        assert "Traceback" not in err

    def test_queued_run_without_artifacts(self, tmp_path, capsys):
        import json

        from repro.observability.report import main

        svc = tmp_path / "r00042"
        svc.mkdir()
        (svc / "run.json").write_text(json.dumps(self._record("queued")))
        assert main([str(svc)]) == 2
        err = capsys.readouterr().err
        assert "still 'queued'" in err
        assert "Traceback" not in err

    def test_torn_run_record_is_ignored(self, recorded_run, tmp_path,
                                        capsys):
        import shutil

        from repro.observability.report import main

        run_dir, _sim, _bd = recorded_run
        svc = tmp_path / "r00042"
        svc.mkdir()
        for name in ("trace.json", "metrics.jsonl"):
            shutil.copy(run_dir / name, svc / name)
        (svc / "run.json").write_text('{"id": "r000')  # torn mid-write
        assert main([str(svc)]) == 0  # reported as a plain run directory
        out = capsys.readouterr().out
        assert "service run" not in out
        assert "hot regions" in out
