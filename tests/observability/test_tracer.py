"""Tests for the Tracer: spans, charged clocks, Chrome-trace export."""

import json

import pytest

from repro.observability.tracer import (
    DRIVER_STREAM,
    GPU_STREAM,
    Tracer,
    load_chrome_trace,
    validate_chrome_trace,
)


def fake_clock():
    """A controllable monotonic clock."""
    state = {"t": 0.0}

    def clock():
        return state["t"]

    clock.advance = lambda dt: state.__setitem__("t", state["t"] + dt)
    return clock


def test_wall_span_nesting():
    clock = fake_clock()
    tr = Tracer(clock=clock)
    with tr.span("outer"):
        clock.advance(1.0)
        with tr.span("inner"):
            clock.advance(0.5)
        clock.advance(0.25)
    evs = tr.events()
    by_name = {e["name"]: e for e in evs}
    # inner closes first (stack order), outer covers it
    assert evs[0]["name"] == "inner"
    assert by_name["inner"]["dur"] == pytest.approx(0.5e6)
    assert by_name["outer"]["dur"] == pytest.approx(1.75e6)
    assert by_name["outer"]["ts"] <= by_name["inner"]["ts"]
    assert (by_name["inner"]["ts"] + by_name["inner"]["dur"]
            <= by_name["outer"]["ts"] + by_name["outer"]["dur"])


def test_end_without_open_span_raises():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        tr.end()
    # tracks are independent
    tr.begin("a", rank=1)
    with pytest.raises(RuntimeError):
        tr.end(rank=0)
    tr.end(rank=1)


def test_charge_advances_cursor_and_rejects_negative():
    tr = Tracer()
    tr.charge("A", 2.0)
    tr.charge("B", 3.0)
    assert tr.cursor_us() == pytest.approx(5.0e6)
    a, b = tr.events()
    assert a["ts"] == pytest.approx(0.0)
    assert b["ts"] == pytest.approx(2.0e6)
    assert b["dur"] == pytest.approx(3.0e6)
    with pytest.raises(ValueError):
        tr.charge("C", -1.0)


def test_charged_span_covers_children():
    tr = Tracer()
    with tr.charged_span("FillPatch"):
        tr.charge("FillBoundary", 1.0)
        tr.charge("ParallelCopy", 2.0)
    by_name = {e["name"]: e for e in tr.events()}
    parent = by_name["FillPatch"]
    assert parent["dur"] == pytest.approx(3.0e6)
    for child in ("FillBoundary", "ParallelCopy"):
        ev = by_name[child]
        assert ev["ts"] >= parent["ts"]
        assert ev["ts"] + ev["dur"] <= parent["ts"] + parent["dur"] + 1e-6


def test_end_charged_without_open_raises():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        tr.end_charged()


def test_tracks_are_independent():
    tr = Tracer()
    tr.charge("k", 1.0, rank=0, stream=GPU_STREAM)
    tr.charge("r", 5.0, rank=1, stream=DRIVER_STREAM)
    assert tr.cursor_us(0, GPU_STREAM) == pytest.approx(1.0e6)
    assert tr.cursor_us(1, DRIVER_STREAM) == pytest.approx(5.0e6)
    assert tr.cursor_us(0, DRIVER_STREAM) == 0.0


def test_chrome_doc_schema_and_metadata():
    tr = Tracer()
    tr.set_process_name(0, "rank 0")
    tr.set_thread_name(0, GPU_STREAM, "gpu stream")
    tr.charge("A", 1.0)
    tr.instant("regrid")
    tr.counter("cells", {"lev0": 100.0})
    doc = tr.to_chrome(other_data={"mode": "charged"})
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"] == {"mode": "charged"}
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "X", "i", "C"} <= phases
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {(e["name"], e["pid"], e["tid"]) for e in meta}
    assert ("process_name", 0, 0) in names
    assert ("thread_name", 0, GPU_STREAM) in names


def test_validate_catches_bad_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"events": []}) != []
    bad_x = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0.0, "pid": 0, "tid": 0},
    ]}
    assert any("dur" in p for p in validate_chrome_trace(bad_x))
    neg = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": -1.0, "dur": -2.0, "pid": 0, "tid": 0},
    ]}
    problems = validate_chrome_trace(neg)
    assert any("negative duration" in p for p in problems)
    assert any("negative timestamp" in p for p in problems)
    missing = {"traceEvents": [{"ph": "i", "ts": 0.0}]}
    assert any("missing field" in p for p in validate_chrome_trace(missing))


def test_write_and_load_round_trip(tmp_path):
    tr = Tracer()
    with tr.charged_span("outer"):
        tr.charge("inner", 0.5, args={"calls": 3})
    path = tr.write(tmp_path / "deep" / "trace.json",
                    other_data={"schema": "repro-trace-1"})
    events, other = load_chrome_trace(path)
    assert other["schema"] == "repro-trace-1"
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"outer", "inner"}
    inner = next(e for e in spans if e["name"] == "inner")
    assert inner["args"]["calls"] == 3


def test_load_rejects_invalid_trace(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    with pytest.raises(ValueError):
        load_chrome_trace(p)


def test_concurrent_emitters_produce_valid_trace():
    """Span nesting stays coherent when many threads emit concurrently.

    The runtime emits spans from the scheduler loop while adapters fire
    from callbacks; each emitter owns its own (rank, stream) track, the
    contract the Chrome trace format needs.  The resulting document must
    validate, keep every event on its emitter's track, and carry no
    negative durations — even under heavy interleaving.
    """
    import threading

    tr = Tracer()
    n_threads, n_spans = 6, 40
    barrier = threading.Barrier(n_threads)
    errors = []

    def emit(stream: int) -> None:
        try:
            barrier.wait()
            for i in range(n_spans):
                with tr.span(f"outer{i}", rank=0, stream=stream,
                             args={"stream": stream}):
                    with tr.span(f"inner{i}", rank=0, stream=stream):
                        pass
                tr.complete(f"direct{i}", tr.now_us(), 1.0,
                            rank=0, stream=stream, cat="lifecycle")
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=emit, args=(s,))
               for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []

    doc = tr.to_chrome()
    assert validate_chrome_trace(doc) == []
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    # every emitter's spans landed, on that emitter's own track
    assert len(spans) == n_threads * n_spans * 3
    for ev in spans:
        assert ev["pid"] == 0
        assert 0 <= ev["tid"] < n_threads
        assert ev["dur"] >= 0.0
        if "args" in ev and "stream" in ev["args"]:
            assert ev["args"]["stream"] == ev["tid"]
    # per-track nesting survived: each innerN sits inside its outerN
    by_track = {}
    for ev in spans:
        by_track.setdefault(ev["tid"], []).append(ev)
    for evs in by_track.values():
        outers = {e["name"][5:]: e for e in evs
                  if e["name"].startswith("outer")}
        for e in evs:
            if e["name"].startswith("inner"):
                outer = outers[e["name"][5:]]
                assert outer["ts"] <= e["ts"] + 1e-6
                assert (e["ts"] + e["dur"]
                        <= outer["ts"] + outer["dur"] + 1e-6)
