"""Tests for the Smagorinsky SGS model (LES mode)."""

import numpy as np
import pytest

from repro.numerics.eos import IdealGasEOS
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.sgs import LesViscousFlux, Smagorinsky
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux, constant_viscosity

EOS = IdealGasEOS()
LAY = StateLayout(dim=2)
NG = 4


def shear_state(n=32, ng=NG, amp=0.3):
    x = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    ntot = n + 2 * ng
    ux = amp * np.sin(2 * np.pi * x)[None, :] * np.ones((ntot, 1))
    vel = np.stack([ux, np.zeros_like(ux)])
    return EOS.conservative(LAY, np.ones((ntot, ntot)), vel,
                            np.full((ntot, ntot), 5.0))


def test_strain_magnitude_of_pure_shear():
    """u = (A sin(2 pi y), 0): |S| = |du/dy| = |2 pi A cos(2 pi y)|."""
    n = 64
    u = shear_state(n)
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    model = Smagorinsky()
    s = model.strain_magnitude(LAY, u, met)
    y = ((np.arange(-NG, n + NG) % n) + 0.5) / n
    expected = np.abs(0.3 * 2 * np.pi * np.cos(2 * np.pi * y))
    # interior cells only (edge stencils are lower order)
    assert np.allclose(s[NG + 2, NG + 2:-NG - 2],
                       expected[NG + 2:-NG - 2], rtol=2e-2, atol=1e-3)


def test_eddy_viscosity_zero_for_uniform_flow():
    n = 16
    shape = (n + 2 * NG, n + 2 * NG)
    u = EOS.conservative(LAY, np.ones(shape),
                         np.stack([np.full(shape, 1.0), np.full(shape, 2.0)]),
                         np.ones(shape))
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    mu_t = Smagorinsky().eddy_viscosity(LAY, u, met)
    assert np.abs(mu_t).max() < 1e-12


def test_eddy_viscosity_scales_with_filter_width():
    """mu_t ~ Delta^2 at fixed |S|: refine the grid, mu_t drops 4x."""
    model = Smagorinsky()
    vals = {}
    for n in (32, 64):
        u = shear_state(n)
        met = CartesianMetrics((1.0 / n, 1.0 / n))
        mu_t = model.eddy_viscosity(LAY, u, met)
        # peak value: |S|_max = 2 pi A on both grids, so mu_t_max ~ Delta^2
        vals[n] = float(mu_t[NG:-NG, NG:-NG].max())
    assert vals[32] / vals[64] == pytest.approx(4.0, rel=0.1)


def test_les_flux_more_dissipative_than_molecular():
    """The SGS closure adds dissipation to a sheared flow."""
    n = 32
    u = shear_state(n)
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    mol = ViscousFlux(constant_viscosity(1e-4))
    les = LesViscousFlux(constant_viscosity(1e-4))
    rhs_mol = mol.divergence(LAY, EOS, u, met, NG)
    rhs_les = les.divergence(LAY, EOS, u, met, NG)
    vel = LAY.velocity(u)[:, NG:-NG, NG:-NG]

    def ke_rate(rhs):
        return float((vel[0] * rhs[LAY.mom(0)] + vel[1] * rhs[LAY.mom(1)]).sum())

    assert ke_rate(rhs_les) < ke_rate(rhs_mol) < 0.0
    # mu_fn restored afterwards (no leakage of the effective viscosity)
    assert les.mu_fn(np.array([300.0]))[0] == pytest.approx(1e-4)


def test_les_flux_reduces_to_molecular_when_cs_zero():
    n = 32
    u = shear_state(n)
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    mol = ViscousFlux(constant_viscosity(1e-4))
    les = LesViscousFlux(constant_viscosity(1e-4), model=Smagorinsky(cs=0.0))
    assert np.allclose(mol.divergence(LAY, EOS, u, met, NG),
                       les.divergence(LAY, EOS, u, met, NG))


def test_max_ratio_clipping():
    """Extreme strain cannot push mu_t beyond max_ratio * mu."""
    n = 32
    u = shear_state(n, amp=100.0)  # violent shear
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    model = Smagorinsky(max_ratio=10.0)
    les = LesViscousFlux(constant_viscosity(1e-6), model=model)
    # run through divergence; the clipped effective viscosity is finite
    rhs = les.divergence(LAY, EOS, u, met, NG)
    assert np.isfinite(rhs).all()
    mu_t = model.eddy_viscosity(LAY, u, met)
    assert mu_t.max() > 10.0 * 1e-6  # unclipped value would exceed the cap
