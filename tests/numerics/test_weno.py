"""Tests for the WENO-SYMBO reconstruction machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.weno import (
    CANDIDATE_OFFSETS,
    SYMBO_C0,
    SYMOO_C0,
    WenoScheme,
    derive_symbo_c0,
    interface_coefficients,
    modified_wavenumber,
    reconstruct_minus,
    smoothness_matrix,
    symmetric_weights,
)


def test_interface_coefficients_match_classic_tables():
    """The derived reconstruction coefficients equal the standard WENO5 ones."""
    assert np.allclose(interface_coefficients((-2, -1, 0)), [2 / 6, -7 / 6, 11 / 6])
    assert np.allclose(interface_coefficients((-1, 0, 1)), [-1 / 6, 5 / 6, 2 / 6])
    assert np.allclose(interface_coefficients((0, 1, 2)), [2 / 6, 5 / 6, -1 / 6])
    assert np.allclose(interface_coefficients((1, 2, 3)), [11 / 6, -7 / 6, 2 / 6])


def test_smoothness_matrix_reproduces_jiang_shu():
    """beta for classic stencils must equal the textbook JS formulas."""
    rng = np.random.default_rng(0)
    for _ in range(10):
        v = rng.normal(size=3)
        # r=0: cells (i-2, i-1, i)
        m = smoothness_matrix((-2, -1, 0))
        beta = v @ m @ v
        expected = (13 / 12) * (v[0] - 2 * v[1] + v[2]) ** 2 + 0.25 * (
            v[0] - 4 * v[1] + 3 * v[2]
        ) ** 2
        assert np.isclose(beta, expected)
        # r=1: cells (i-1, i, i+1)
        m = smoothness_matrix((-1, 0, 1))
        beta = v @ m @ v
        expected = (13 / 12) * (v[0] - 2 * v[1] + v[2]) ** 2 + 0.25 * (v[0] - v[2]) ** 2
        assert np.isclose(beta, expected)
        # r=2: cells (i, i+1, i+2)
        m = smoothness_matrix((0, 1, 2))
        beta = v @ m @ v
        expected = (13 / 12) * (v[0] - 2 * v[1] + v[2]) ** 2 + 0.25 * (
            3 * v[0] - 4 * v[1] + v[2]
        ) ** 2
        assert np.isclose(beta, expected)


def test_downwind_smoothness_is_nonnegative_quadratic():
    m = smoothness_matrix((1, 2, 3))
    eig = np.linalg.eigvalsh(0.5 * (m + m.T))
    assert eig.min() >= -1e-12
    # constant fields are perfectly smooth
    v = np.ones(3)
    assert abs(v @ m @ v) < 1e-12


def test_symoo_weights_give_sixth_order_combination():
    """(1/20, 9/20, 9/20, 1/20) reproduce the central 6th-order interface value."""
    w = symmetric_weights(SYMOO_C0)
    comb = np.zeros(6)
    for wr, offs in zip(w, CANDIDATE_OFFSETS):
        for c, o in zip(interface_coefficients(offs), offs):
            comb[o + 2] += wr * c
    expected = np.array([1, -8, 37, 37, -8, 1]) / 60.0
    assert np.allclose(comb, expected)


def test_symmetric_weights_validation():
    with pytest.raises(ValueError):
        symmetric_weights(0.0)
    with pytest.raises(ValueError):
        symmetric_weights(0.5)


def test_modified_wavenumber_consistency_at_low_k():
    """k' ~ k for small k (the scheme is a consistent derivative)."""
    k = np.array([0.01, 0.05, 0.1])
    for c0 in (SYMOO_C0, SYMBO_C0, 0.1):
        kp = modified_wavenumber(c0, k)
        assert np.allclose(kp, k, rtol=1e-2)


def test_symbo_beats_symoo_at_high_wavenumbers():
    """Bandwidth optimization reduces the integrated dispersion error."""
    k = np.linspace(0.05, 2.0, 200)
    err_oo = np.trapezoid((modified_wavenumber(SYMOO_C0, k) - k) ** 2, k)
    err_bo = np.trapezoid((modified_wavenumber(SYMBO_C0, k) - k) ** 2, k)
    assert err_bo < err_oo


def test_derive_symbo_c0_stable_and_distinct():
    c0 = derive_symbo_c0()
    assert 0.0 < c0 < 0.5
    assert abs(c0 - SYMBO_C0) < 1e-12  # module constant derives from this
    assert abs(c0 - SYMOO_C0) > 1e-3  # genuinely different from max-order


def test_reconstruct_exact_on_smooth_quadratic():
    """All candidates are exact for quadratic cell averages -> exact output."""
    x = np.arange(30, dtype=float)
    # cell average of x^2 over [i-1/2, i+1/2] is i^2 + 1/12
    vbar = x**2 + 1.0 / 12.0
    for variant in ("symbo", "symoo", "js5"):
        rec = WenoScheme(variant=variant).reconstruct(vbar, axis=0)
        i = np.arange(2, 27)
        exact = (i + 0.5) ** 2
        assert np.allclose(rec, exact, rtol=1e-12), variant


def test_reconstruct_convergence_order_smooth():
    """symoo ~6th order, symbo >=4th, js5 ~5th on smooth data."""
    orders = {}
    for variant in ("symoo", "symbo", "js5"):
        errs = []
        for n in (40, 80):
            h = 2 * np.pi / n
            i = np.arange(-3, n + 3)
            # exact cell averages of sin(x)
            vbar = (np.cos(i * h) - np.cos((i + 1) * h)) / h
            rec = WenoScheme(variant=variant).reconstruct(vbar, axis=0)
            iface = np.arange(-1, n + 1)[: len(rec)] * h
            # reconstruct() starts at padded cell 2 -> interface (i=-1)+1/2 = 0
            iface = (np.arange(len(rec)) - 1 + 1) * h
            errs.append(np.abs(rec - np.sin(iface)).max())
        orders[variant] = np.log2(errs[0] / errs[1])
    assert orders["symoo"] > 4.5
    assert orders["symbo"] > 3.0
    assert orders["js5"] > 4.0


def test_reconstruct_eno_property_at_shock():
    """No large overshoot when reconstructing across a discontinuity."""
    v = np.zeros(40)
    v[20:] = 1.0
    for variant in ("symbo", "js5"):
        rec = WenoScheme(variant=variant).reconstruct(v, axis=0)
        assert rec.min() > -0.02
        assert rec.max() < 1.02


def test_downwind_cap_keeps_scheme_non_oscillatory():
    """With the downwind-weight cap, overshoot at a step stays negligible
    whether or not the relative-smoothness disable is active."""
    v = np.zeros(40)
    v[20:] = 1.0
    for limit in (5.0, 0.0):
        rec = WenoScheme(variant="symbo", downwind_limit=limit).reconstruct(v, axis=0)
        over = max(rec.max() - 1.0, -rec.min())
        assert over < 1e-4


def test_step_advection_stability():
    """400 RK3 steps of a step profile remain bounded (the central symmetric
    scheme without the downwind cap blows up on this problem)."""
    from repro.numerics.rk3 import advance

    scheme = WenoScheme(variant="symbo")
    n = 100
    u = np.where(np.arange(n) < n // 2, 1.0, 0.0).astype(float)

    def rhs(u):
        up = np.concatenate([u[-3:], u, u[:3]])  # periodic, a = 1, f+ = u
        f = scheme.reconstruct(up, 0)
        return -(f[1:] - f[:-1])

    for _ in range(400):
        u = advance(u, rhs, 0.4)
    # WENO is not TVD: a small persistent overshoot is expected, but the
    # uncapped central scheme reaches |u| ~ 70 on this problem
    assert u.min() > -0.05
    assert u.max() < 1.05
    assert np.isclose(u.mean(), 0.5)  # conservation


def test_reconstruct_minus_mirror_symmetry():
    """Minus reconstruction of v(x) equals plus reconstruction of v(-x)."""
    rng = np.random.default_rng(1)
    v = rng.normal(size=30)
    scheme = WenoScheme()
    plus_of_flipped = scheme.reconstruct(v[::-1].copy(), axis=0)[::-1]
    minus = reconstruct_minus(scheme, v, axis=0)
    assert np.allclose(minus, plus_of_flipped)


def test_reconstruct_minus_alignment():
    """Plus and minus reconstructions refer to the same interfaces."""
    x = np.arange(30, dtype=float)
    vbar = x**2 + 1.0 / 12.0  # smooth: both sides converge to the same value
    scheme = WenoScheme()
    p = scheme.reconstruct(vbar, axis=0)
    m = reconstruct_minus(scheme, vbar, axis=0)
    assert p.shape == m.shape
    assert np.allclose(p, m, rtol=1e-10)


def test_reconstruct_multidimensional_axis():
    rng = np.random.default_rng(2)
    v = rng.normal(size=(3, 20, 12))
    scheme = WenoScheme()
    rec1 = scheme.reconstruct(v, axis=1)
    assert rec1.shape == (3, 15, 12)
    rec2 = scheme.reconstruct(v, axis=2)
    assert rec2.shape == (3, 20, 7)
    # axis handling consistent with manual loop
    for c in range(3):
        for k in range(12):
            assert np.allclose(rec1[c, :, k], scheme.reconstruct(v[c, :, k], axis=0))


def test_too_few_cells():
    with pytest.raises(ValueError):
        WenoScheme().reconstruct(np.zeros(5), axis=0)


@settings(max_examples=20)
@given(st.floats(-5, 5), st.floats(-3, 3))
def test_constant_and_linear_exactness(a, b):
    i = np.arange(20, dtype=float)
    vbar = a + b * i
    rec = WenoScheme().reconstruct(vbar, axis=0)
    exact = a + b * (np.arange(2, 17) + 0.5)
    assert np.allclose(rec, exact, atol=1e-9 * (1 + abs(a) + abs(b)))
