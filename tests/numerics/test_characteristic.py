"""Tests for the characteristic-wise (Roe eigenvector) flux path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.characteristic import (
    left_right_eigenvectors,
    orthonormal_tangents,
    project,
    roe_average,
)
from repro.numerics.eos import IdealGasEOS
from repro.numerics.fluxes import ConvectiveFlux
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.state import StateLayout

EOS = IdealGasEOS()
NG = 4


def test_tangents_orthonormal_3d():
    rng = np.random.default_rng(0)
    n = rng.normal(size=(3, 20))
    n /= np.sqrt((n**2).sum(axis=0))[None]
    t1, t2 = orthonormal_tangents(n)
    for t in (t1, t2):
        assert np.allclose((t**2).sum(axis=0), 1.0)
        assert np.allclose((t * n).sum(axis=0), 0.0, atol=1e-12)
    assert np.allclose((t1 * t2).sum(axis=0), 0.0, atol=1e-12)


def test_tangents_2d_and_1d():
    n = np.array([[0.6], [0.8]])
    (t,) = orthonormal_tangents(n)
    assert np.allclose((t * n).sum(axis=0), 0.0)
    assert np.allclose((t**2).sum(axis=0), 1.0)
    assert orthonormal_tangents(np.array([[1.0]])) == ()


@settings(max_examples=25)
@given(
    st.floats(0.1, 10), st.floats(-3, 3), st.floats(-3, 3), st.floats(-3, 3),
    st.floats(0.1, 10),
)
def test_eigenvectors_inverse_3d(rho, u, v, w, p):
    lay = StateLayout(dim=3)
    cons = EOS.conservative(lay, np.array([rho]),
                            np.array([[u], [v], [w]]), np.array([p]))
    vel, H, a = roe_average(lay, EOS, cons, cons)
    n = np.array([[0.48], [0.6], [0.64]])
    L, R = left_right_eigenvectors(lay, EOS.gamma, vel, H, a, n)
    prod = np.einsum("ab...,bc...->ac...", L, R)[..., 0]
    assert np.allclose(prod, np.eye(5), atol=1e-10)


def test_eigenvectors_diagonalize_jacobian_1d():
    """L A R = diag(u-a, u, u+a) for the exact 1D Euler Jacobian."""
    lay = StateLayout(dim=1)
    g = EOS.gamma
    rho, u, p = 1.3, 0.7, 2.1
    cons = EOS.conservative(lay, np.array([rho]), np.array([[u]]),
                            np.array([p]))
    vel, H, a_roe = roe_average(lay, EOS, cons, cons)
    a = float(a_roe[0])
    n = np.array([[1.0]])
    L, R = left_right_eigenvectors(lay, g, vel, H, a_roe, n)
    L = L[..., 0]
    R = R[..., 0]
    E = float(cons[2, 0])
    # exact flux Jacobian dF/dU for 1D Euler
    A = np.array([
        [0.0, 1.0, 0.0],
        [0.5 * (g - 3) * u**2, (3 - g) * u, g - 1],
        [(g - 1) * u**3 - g * u * E / rho,
         g * E / rho - 1.5 * (g - 1) * u**2, g * u],
    ])
    lam = L @ A @ R
    expected = np.diag([u - a, u, u + a])
    assert np.allclose(lam, expected, atol=1e-9)


def test_roe_average_consistency():
    """Roe average of identical states returns that state's quantities."""
    lay = StateLayout(dim=2)
    cons = EOS.conservative(lay, np.array([2.0]), np.array([[1.0], [0.5]]),
                            np.array([3.0]))
    vel, H, a = roe_average(lay, EOS, cons, cons)
    assert np.allclose(vel[:, 0], [1.0, 0.5])
    p = 3.0
    rho = 2.0
    E = float(cons[3, 0])
    assert np.allclose(H[0], (E + p) / rho)
    assert np.allclose(a[0], np.sqrt(EOS.gamma * p / rho *
                                     (1 + 0)), rtol=1e-12)


def periodic_state(n, ng=NG):
    lay = StateLayout(dim=1)
    x = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    rho = 1.0 + 0.2 * np.sin(2 * np.pi * x)
    u = 0.3 + 0.1 * np.cos(2 * np.pi * x)
    p = 1.0 + 0.05 * np.sin(4 * np.pi * x)
    return lay, EOS.conservative(lay, rho, u[None], p)


def test_characteristic_matches_componentwise_smooth():
    """On smooth data the two paths agree to discretization accuracy."""
    n = 64
    lay, u = periodic_state(n)
    met = CartesianMetrics((1.0 / n,))
    comp = ConvectiveFlux(characteristic=False).divergence(lay, EOS, u, met, 0, NG)
    char = ConvectiveFlux(characteristic=True).divergence(lay, EOS, u, met, 0, NG)
    scale = np.abs(comp).max()
    assert np.allclose(comp, char, atol=2e-3 * scale)


def test_characteristic_conservation():
    n = 48
    lay, u = periodic_state(n)
    met = CartesianMetrics((1.0 / n,))
    dudt = ConvectiveFlux(characteristic=True).divergence(lay, EOS, u, met, 0, NG)
    assert np.abs(dudt.sum(axis=1)).max() < 1e-9 * n


def test_characteristic_freestream_2d():
    lay = StateLayout(dim=2)
    n = 16
    shape = (n + 2 * NG, n + 2 * NG)
    u = EOS.conservative(lay, np.ones(shape),
                         np.stack([np.full(shape, 0.4), np.full(shape, -0.2)]),
                         np.full(shape, 1.5))
    op = ConvectiveFlux(characteristic=True)
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    for d in range(2):
        dudt = op.divergence(lay, EOS, u, met, d, NG)
        assert np.abs(dudt).max() < 1e-11


def test_characteristic_rejects_multispecies():
    from repro.numerics.eos import MixtureEOS, Species

    mix = MixtureEOS([Species("A", 0.03, 700.0), Species("B", 0.02, 900.0)])
    lay = StateLayout(nspecies=2, dim=1)
    u = mix.conservative(lay, np.ones((2, 20)), np.zeros((1, 20)),
                         np.full(20, 300.0))
    op = ConvectiveFlux(characteristic=True)
    with pytest.raises(ValueError):
        op.divergence(lay, mix, u, CartesianMetrics((0.1,)), 0, NG)


def test_characteristic_sod_runs_clean():
    """Characteristic reconstruction handles the Sod problem without NaNs
    and with monotone-looking plateaus."""
    from repro.cases.riemann import PrimitiveState, sample

    n = 128
    ng = NG
    lay = StateLayout(dim=1)
    x = (np.arange(-ng, n + ng) + 0.5) / n
    rho = np.where(x < 0.5, 1.0, 0.125)
    p = np.where(x < 0.5, 1.0, 0.1)
    u = EOS.conservative(lay, rho, np.zeros((1, len(x))), p)
    op = ConvectiveFlux(characteristic=True)
    met = CartesianMetrics((1.0 / n,))
    from repro.numerics.rk3 import NSTAGES, rk3_stage

    du = np.zeros((3, n))
    dt = 1e-3
    t = 0.0
    while t < 0.1:
        for stage in range(NSTAGES):
            # transmissive BCs: clamp-extend ghosts
            u[:, :ng] = u[:, ng: ng + 1]
            u[:, -ng:] = u[:, -ng - 1: -ng]
            rhs = op.divergence(lay, EOS, u, met, 0, ng)
            rk3_stage(u[:, ng:-ng], du, rhs, dt, stage)
        t += dt
    assert np.isfinite(u).all()
    rho_num = u[0, ng:-ng]
    xi = ((np.arange(n) + 0.5) / n - 0.5) / t
    rho_ex, _, _ = sample(PrimitiveState(1.0, 0.0, 1.0),
                          PrimitiveState(0.125, 0.0, 0.1), xi)
    assert np.abs(rho_num - rho_ex).mean() < 0.02
