"""Tests for the convective flux divergence operator."""

import numpy as np
import pytest

from repro.numerics.eos import IdealGasEOS
from repro.numerics.fluxes import ConvectiveFlux, contravariant, curvilinear_flux, wave_speed
from repro.numerics.metrics import CartesianMetrics, CurvilinearMetrics
from repro.numerics.state import StateLayout
from repro.numerics.weno import WenoScheme

NG = 4
EOS = IdealGasEOS(gamma=1.4)


def periodic_state_1d(n, rho_fn, u_fn, p_fn, ng=NG):
    """1D conservative state with periodic ghost fill."""
    lay = StateLayout(dim=1)
    i = np.arange(-ng, n + ng)
    x = ((i % n) + 0.5) / n  # periodic wrap
    u = EOS.conservative(lay, rho_fn(x), u_fn(x)[None], p_fn(x))
    return lay, u


def test_contravariant_and_flux_cartesian_1d():
    lay = StateLayout(dim=1)
    n = 16
    rho = np.ones(n)
    vel = np.full((1, n), 2.0)
    p = np.ones(n)
    u = EOS.conservative(lay, rho, vel, p)
    m = CartesianMetrics((0.1,)).m(0)
    f = curvilinear_flux(lay, u, vel, p, np.broadcast_to(m, (1, n)))
    # J/dx = 1 -> flux = physical flux: rho u = 2, rho u^2 + p = 5
    assert np.allclose(f[0], 2.0)
    assert np.allclose(f[1], 5.0)
    E = EOS.total_energy(rho, vel, p)
    assert np.allclose(f[2], (E + p) * 2.0)


def test_wave_speed_cartesian():
    lay = StateLayout(dim=1)
    u = EOS.conservative(lay, np.array([1.0]), np.array([[3.0]]), np.array([1.0]))
    met = CartesianMetrics((0.5,))
    lam = wave_speed(lay.velocity(u), EOS.sound_speed(lay, u), met.m(0),
                     met.jacobian())
    a = np.sqrt(1.4)
    assert np.allclose(lam, (3.0 + a) / 0.5)


def test_uniform_state_zero_divergence():
    """Freestream preservation on a Cartesian grid."""
    lay = StateLayout(dim=2)
    n = 16
    shape = (n + 2 * NG, n + 2 * NG)
    rho = np.ones(shape)
    vel = np.stack([np.full(shape, 0.7), np.full(shape, -0.3)])
    p = np.full(shape, 2.0)
    u = EOS.conservative(lay, rho, vel, p)
    op = ConvectiveFlux()
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    for d in range(2):
        dudt = op.divergence(lay, EOS, u, met, d, NG)
        assert dudt.shape == (4, n, n)
        assert np.abs(dudt).max() < 1e-11


def test_entropy_wave_advection_accuracy():
    """rho varying, u and p constant: d(rho)/dt = -u d(rho)/dx exactly."""
    errs = []
    for n in (32, 64):
        lay, u = periodic_state_1d(
            n,
            rho_fn=lambda x: 1.0 + 0.2 * np.sin(2 * np.pi * x),
            u_fn=lambda x: np.full_like(x, 0.9),
            p_fn=lambda x: np.ones_like(x),
        )
        op = ConvectiveFlux()
        met = CartesianMetrics((1.0 / n,))
        dudt = op.divergence(lay, EOS, u, met, 0, NG)
        x = (np.arange(n) + 0.5) / n
        exact = -0.9 * 0.2 * 2 * np.pi * np.cos(2 * np.pi * x)
        errs.append(np.abs(dudt[0] - exact).max())
    order = np.log2(errs[0] / errs[1])
    assert order > 3.0  # symbo is 4th order


def test_conservation_periodic():
    """Total update sums to zero on a periodic domain (telescoping fluxes)."""
    n = 48
    lay, u = periodic_state_1d(
        n,
        rho_fn=lambda x: 1.0 + 0.3 * np.sin(2 * np.pi * x) ** 2,
        u_fn=lambda x: 0.5 + 0.2 * np.cos(2 * np.pi * x),
        p_fn=lambda x: 1.0 + 0.1 * np.sin(4 * np.pi * x),
    )
    op = ConvectiveFlux()
    met = CartesianMetrics((1.0 / n,))
    dudt = op.divergence(lay, EOS, u, met, 0, NG)
    # conservation: sum over cells of J * dU/dt telescopes to zero
    assert np.abs(dudt.sum(axis=1)).max() < 1e-10 * n


def test_curvilinear_freestream_preservation():
    """Uniform flow on a wavy curvilinear grid stays (nearly) uniform."""
    lay = StateLayout(dim=2)
    n = 24
    ntot = n + 2 * NG
    ii, jj = np.meshgrid(np.arange(ntot) + 0.5, np.arange(ntot) + 0.5,
                         indexing="ij")
    x = ii + 0.15 * np.sin(2 * np.pi * jj / ntot) * ntot / (2 * np.pi)
    y = jj + 0.15 * np.sin(2 * np.pi * ii / ntot) * ntot / (2 * np.pi)
    met = CurvilinearMetrics.from_coordinates(np.stack([x, y]))
    shape = (ntot, ntot)
    u = EOS.conservative(
        lay, np.ones(shape), np.stack([np.full(shape, 1.0), np.full(shape, 0.5)]),
        np.full(shape, 1.0),
    )
    op = ConvectiveFlux()
    total = np.zeros((4, n, n))
    for d in range(2):
        total += op.divergence(lay, EOS, u, met, d, NG)
    # the discrete GCL is not exactly satisfied, but residuals must be tiny
    # relative to flux magnitudes (|F| ~ |m| |u| ~ O(1) per unit cell)
    assert np.abs(total).max() < 5e-3


def test_divergence_requires_ghosts():
    lay = StateLayout(dim=1)
    u = np.ones((3, 10))
    with pytest.raises(ValueError):
        ConvectiveFlux().divergence(lay, EOS, u, CartesianMetrics((0.1,)), 0, 2)


def test_max_wave_speed_sum():
    lay = StateLayout(dim=2)
    shape = (8, 8)
    u = EOS.conservative(
        lay, np.ones(shape), np.stack([np.full(shape, 2.0), np.zeros(shape)]),
        np.ones(shape),
    )
    op = ConvectiveFlux()
    met = CartesianMetrics((0.5, 0.25))
    got = op.max_wave_speed_sum(lay, EOS, u, met)
    a = np.sqrt(1.4)
    assert got == pytest.approx((2.0 + a) / 0.5 + a / 0.25)


def test_js5_variant_runs():
    n = 32
    lay, u = periodic_state_1d(
        n,
        rho_fn=lambda x: 1.0 + 0.1 * np.sin(2 * np.pi * x),
        u_fn=lambda x: np.zeros_like(x),
        p_fn=lambda x: np.ones_like(x),
    )
    op = ConvectiveFlux(scheme=WenoScheme(variant="js5"))
    dudt = op.divergence(lay, EOS, u, CartesianMetrics((1.0 / n,)), 0, NG)
    assert dudt.shape == (3, n)
    assert np.isfinite(dudt).all()


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=25)
@given(st.floats(0.1, 5.0), st.floats(-2.0, 2.0), st.floats(0.1, 5.0))
def test_cartesian_flux_matches_analytic_euler(rho, uvel, p):
    """With identity metrics, Fhat/J equals the textbook Euler flux / dx."""
    lay = StateLayout(dim=1)
    u = EOS.conservative(lay, np.array([rho]), np.array([[uvel]]), np.array([p]))
    dx = 0.25
    met = CartesianMetrics((dx,))
    m = np.broadcast_to(met.m(0), (1, 1))
    from repro.numerics.fluxes import curvilinear_flux

    f = curvilinear_flux(lay, u, lay.velocity(u), EOS.pressure(lay, u), m)
    # J = dx, m = J/dx = 1: Fhat = physical flux
    E = float(u[2, 0])
    expected = np.array([
        rho * uvel,
        rho * uvel**2 + p,
        (E + p) * uvel,
    ])
    assert np.allclose(f[:, 0], expected, rtol=1e-12)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_fused_and_distributed_forms_agree_to_roundoff(seed):
    """The two split forms are the same mathematics: differences are O(ulp)."""
    rng = np.random.default_rng(seed)
    n = 32
    lay = StateLayout(dim=1)
    x = ((np.arange(-NG, n + NG) % n) + 0.5) / n
    rho = 1.0 + 0.3 * rng.random() * np.sin(2 * np.pi * x)
    vel = 0.5 * rng.random() * np.cos(2 * np.pi * x)
    p = 1.0 + 0.2 * rng.random() * np.sin(4 * np.pi * x)
    u = EOS.conservative(lay, rho, vel[None], p)
    met = CartesianMetrics((1.0 / n,))
    fused = ConvectiveFlux(split_form="fused").divergence(lay, EOS, u, met, 0, NG)
    dist = ConvectiveFlux(split_form="distributed").divergence(lay, EOS, u, met, 0, NG)
    scale = np.abs(fused).max() + 1.0
    assert np.allclose(fused, dist, atol=1e-10 * scale)


def test_unknown_split_form_rejected():
    lay = StateLayout(dim=1)
    u = EOS.conservative(lay, np.ones(12), np.zeros((1, 12)), np.ones(12))
    with pytest.raises(ValueError):
        ConvectiveFlux(split_form="simd").divergence(
            lay, EOS, u, CartesianMetrics((0.1,)), 0, 4
        )
