"""Tests for the state layout and equations of state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.eos import (
    IdealGasEOS,
    MixtureEOS,
    Species,
    power_law_viscosity,
    sutherland_viscosity,
)
from repro.numerics.state import StateLayout


def test_layout_indices_3d():
    lay = StateLayout(nspecies=1, dim=3)
    assert lay.ncons == 5
    assert lay.rho_s == slice(0, 1)
    assert lay.mom(0) == 1 and lay.mom(2) == 3
    assert lay.energy == 4


def test_layout_indices_multispecies_2d():
    lay = StateLayout(nspecies=3, dim=2)
    assert lay.ncons == 6
    assert lay.mom(1) == 4
    assert lay.energy == 5
    with pytest.raises(IndexError):
        lay.mom(2)


def test_layout_validation():
    with pytest.raises(ValueError):
        StateLayout(nspecies=0)
    with pytest.raises(ValueError):
        StateLayout(dim=4)


def test_layout_derived_quantities():
    lay = StateLayout(nspecies=2, dim=2)
    u = np.zeros((6, 4))
    u[0] = 0.3
    u[1] = 0.7
    u[2] = 2.0  # rho u = 2 -> u = 2
    u[3] = -1.0
    assert np.allclose(lay.density(u), 1.0)
    assert np.allclose(lay.velocity(u)[0], 2.0)
    assert np.allclose(lay.kinetic_energy(u), 0.5 * (4.0 + 1.0))
    assert np.allclose(lay.mass_fractions(u)[0], 0.3)


def test_ideal_gas_roundtrip():
    eos = IdealGasEOS(gamma=1.4)
    lay = StateLayout(dim=3)
    rho = np.array([1.0, 2.0])
    vel = np.array([[0.5, -1.0], [0.0, 2.0], [1.0, 0.0]])
    p = np.array([1.0, 5.0])
    u = eos.conservative(lay, rho, vel, p)
    r2, v2, p2 = eos.primitives(lay, u)
    assert np.allclose(r2, rho)
    assert np.allclose(v2, vel)
    assert np.allclose(p2, p)


def test_ideal_gas_sound_speed():
    eos = IdealGasEOS(gamma=1.4, gas_constant=1.0 / 1.4)
    lay = StateLayout(dim=1)
    u = eos.conservative(lay, np.array([1.0]), np.array([[0.0]]), np.array([1.0 / 1.4]))
    # p = rho a^2 / gamma with a = 1 for this normalization
    assert np.allclose(eos.sound_speed(lay, u), 1.0)
    assert np.allclose(eos.temperature(lay, u), 1.0)


def test_ideal_gas_validation():
    with pytest.raises(ValueError):
        IdealGasEOS(gamma=1.0)


def test_species_derived_properties():
    n2 = Species("N2", molar_mass=0.028, cv=743.0)
    assert n2.gas_constant == pytest.approx(8.31446261815324 / 0.028)
    assert n2.cp == pytest.approx(n2.cv + n2.gas_constant)
    assert 1.3 < n2.gamma < 1.45


def test_mixture_single_species_matches_ideal_gas():
    """A one-species mixture must reduce to the perfect-gas EOS."""
    R = 287.0
    gamma = 1.4
    cv = R / (gamma - 1.0)
    sp = Species("air", molar_mass=8.31446261815324 / R, cv=cv)
    mix = MixtureEOS([sp])
    ideal = IdealGasEOS(gamma=gamma, gas_constant=R)
    lay = StateLayout(nspecies=1, dim=2)
    rho = np.array([1.2, 0.5])
    vel = np.array([[10.0, -5.0], [3.0, 0.0]])
    T = np.array([300.0, 1200.0])
    u = mix.conservative(lay, rho[None], vel, T)
    assert np.allclose(mix.temperature(lay, u), T)
    assert np.allclose(mix.pressure(lay, u), rho * R * T)
    assert np.allclose(mix.sound_speed(lay, u), np.sqrt(gamma * R * T))
    assert np.allclose(ideal.pressure(lay, u), mix.pressure(lay, u))


def test_mixture_formation_enthalpy_roundtrip():
    """Eq. 2: formation heat shifts E but not T."""
    s1 = Species("A", molar_mass=0.03, cv=700.0, h_formation=5e6)
    s2 = Species("B", molar_mass=0.02, cv=1000.0, h_formation=-1e6)
    mix = MixtureEOS([s1, s2])
    lay = StateLayout(nspecies=2, dim=1)
    rho_s = np.array([[0.4], [0.6]])
    vel = np.array([[100.0]])
    T = np.array([800.0])
    u = mix.conservative(lay, rho_s, vel, T)
    assert np.allclose(mix.temperature(lay, u), T)
    expected_formation = 0.4 * 5e6 + 0.6 * (-1e6)
    assert np.allclose(mix.formation_energy(lay, u), expected_formation)


def test_mixture_gamma_between_species_gammas():
    s1 = Species("A", molar_mass=0.03, cv=700.0)
    s2 = Species("B", molar_mass=0.004, cv=3000.0)
    mix = MixtureEOS([s1, s2])
    lay = StateLayout(nspecies=2, dim=1)
    u = mix.conservative(lay, np.array([[0.5], [0.5]]), np.array([[0.0]]),
                         np.array([500.0]))
    g = float(mix.mixture_gamma(lay, u)[0])
    assert min(s1.gamma, s2.gamma) <= g <= max(s1.gamma, s2.gamma)


def test_mixture_layout_mismatch():
    mix = MixtureEOS([Species("A", 0.03, 700.0)])
    lay = StateLayout(nspecies=2, dim=1)
    with pytest.raises(ValueError):
        mix.temperature(lay, np.zeros((4, 3)))


def test_mixture_needs_species():
    with pytest.raises(ValueError):
        MixtureEOS([])


def test_sutherland_reference_point():
    assert sutherland_viscosity(np.array([273.15]))[0] == pytest.approx(1.716e-5)
    # viscosity grows with temperature
    assert sutherland_viscosity(np.array([1000.0]))[0] > 1.716e-5


def test_power_law_viscosity():
    mu = power_law_viscosity(np.array([400.0]), mu_ref=2.0e-5, T_ref=200.0,
                             exponent=0.5)
    assert mu[0] == pytest.approx(2.0e-5 * np.sqrt(2.0))


@settings(max_examples=30)
@given(
    st.floats(0.1, 10.0),
    st.floats(-3.0, 3.0),
    st.floats(0.1, 10.0),
)
def test_ideal_gas_roundtrip_property(rho, u_vel, p):
    eos = IdealGasEOS()
    lay = StateLayout(dim=1)
    cons = eos.conservative(lay, np.array([rho]), np.array([[u_vel]]), np.array([p]))
    r, v, pp = eos.primitives(lay, cons)
    assert np.isclose(r[0], rho)
    assert np.isclose(v[0, 0], u_vel)
    assert np.isclose(pp[0], p, rtol=1e-10, atol=1e-12)
    assert eos.sound_speed(lay, cons)[0] > 0
