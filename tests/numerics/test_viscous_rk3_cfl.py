"""Tests for viscous fluxes, RK3 integration, and ComputeDt."""

import numpy as np
import pytest

from repro.mpi.comm import Communicator, SerialComm
from repro.numerics.cfl import compute_dt, local_max_rate
from repro.numerics.eos import IdealGasEOS, MixtureEOS, Species
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.rk3 import NSTAGES, RK3_A, RK3_B, advance, rk3_stage
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux, constant_viscosity

NG = 4
EOS = IdealGasEOS(gamma=1.4)


def shear_layer_state(n, amp=0.1, ng=NG):
    """2D state with u_x = amp*sin(2 pi y), constant rho, p (periodic)."""
    lay = StateLayout(dim=2)
    ntot = n + 2 * ng
    jj = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    ux = amp * np.sin(2 * np.pi * jj)[None, :] * np.ones((ntot, 1))
    vel = np.stack([ux, np.zeros_like(ux)])
    rho = np.ones((ntot, ntot))
    p = np.full((ntot, ntot), 10.0)  # high p: nearly isothermal
    return lay, EOS.conservative(lay, rho, vel, p)


def test_viscous_shear_diffusion_accuracy():
    """mom_x RHS must converge to mu * d2(u)/dy2 at 4th order."""
    mu = 0.01
    errs = []
    for n in (16, 32):
        lay, u = shear_layer_state(n)
        op = ViscousFlux(constant_viscosity(mu), prandtl=0.72)
        met = CartesianMetrics((1.0 / n, 1.0 / n))
        rhs = op.divergence(lay, EOS, u, met, NG)
        y = (np.arange(n) + 0.5) / n
        exact = -mu * 0.1 * (2 * np.pi) ** 2 * np.sin(2 * np.pi * y)
        errs.append(np.abs(rhs[lay.mom(0)][0, :] - exact).max())
    assert np.log2(errs[0] / errs[1]) > 3.5


def test_viscous_uniform_state_zero():
    lay = StateLayout(dim=2)
    n = 12
    shape = (n + 2 * NG, n + 2 * NG)
    u = EOS.conservative(lay, np.ones(shape),
                         np.stack([np.full(shape, 1.0), np.full(shape, -2.0)]),
                         np.ones(shape))
    op = ViscousFlux(constant_viscosity(0.05))
    rhs = op.divergence(lay, EOS, u, CartesianMetrics((0.1, 0.1)), NG)
    assert np.abs(rhs).max() < 1e-12


def test_viscous_heat_conduction():
    """Temperature gradient drives energy diffusion: dE/dt = kappa T''."""
    lay = StateLayout(dim=1)
    n = 64
    ng = NG
    x = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    rho = np.ones_like(x)
    T = 1.0 + 0.1 * np.sin(2 * np.pi * x)
    p = rho * EOS.R * T
    u = EOS.conservative(lay, rho, np.zeros((1, len(x))), p)
    mu = 0.02
    Pr = 0.72
    op = ViscousFlux(constant_viscosity(mu), prandtl=Pr)
    rhs = op.divergence(lay, EOS, u, CartesianMetrics((1.0 / n,)), ng)
    kappa = mu * EOS.cp / Pr
    xs = (np.arange(n) + 0.5) / n
    exact = -kappa * 0.1 * (2 * np.pi) ** 2 * np.sin(2 * np.pi * xs)
    assert np.allclose(rhs[lay.energy], exact, rtol=2e-2, atol=1e-5)


def test_viscous_dissipation_reduces_kinetic_energy():
    lay, u = shear_layer_state(32)
    op = ViscousFlux(constant_viscosity(0.05))
    rhs = op.divergence(lay, EOS, u, CartesianMetrics((1.0 / 32, 1.0 / 32)), NG)
    vel = lay.velocity(u)[:, NG:-NG, NG:-NG]
    # d(KE)/dt contribution of momentum RHS: u_i * rhs_mom_i summed < 0
    ke_rate = (vel[0] * rhs[lay.mom(0)] + vel[1] * rhs[lay.mom(1)]).sum()
    assert ke_rate < 0


def test_viscous_species_diffusion_conserves_mass():
    """Fickian fluxes of a 2-species mixture sum to ~zero net species change."""
    sp = [Species("A", 0.028, 743.0), Species("B", 0.032, 650.0)]
    mix = MixtureEOS(sp)
    lay = StateLayout(nspecies=2, dim=1)
    n = 32
    ng = NG
    x = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    ya = 0.5 + 0.3 * np.sin(2 * np.pi * x)
    rho = np.ones_like(x)
    rho_s = np.stack([rho * ya, rho * (1 - ya)])
    u = mix.conservative(lay, rho_s, np.zeros((1, len(x))), np.full_like(x, 300.0))
    op = ViscousFlux(constant_viscosity(1e-3), include_species_diffusion=True)
    rhs = op.divergence(lay, mix, u, CartesianMetrics((1.0 / n,)), ng)
    # each species flux is periodic -> integral of its divergence ~ 0
    assert abs(rhs[0].sum()) < 1e-10
    assert abs(rhs[1].sum()) < 1e-10
    # but pointwise the species diffuse
    assert np.abs(rhs[0]).max() > 0


def test_viscous_requires_ghosts():
    lay = StateLayout(dim=1)
    op = ViscousFlux(constant_viscosity(0.1))
    with pytest.raises(ValueError):
        op.divergence(lay, EOS, np.ones((3, 10)), CartesianMetrics((0.1,)), 2)


# -- RK3 ----------------------------------------------------------------------


def test_rk3_coefficients():
    assert RK3_A == (0.0, -5.0 / 9.0, -153.0 / 128.0)
    assert RK3_B == (1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0)
    assert NSTAGES == 3


def test_rk3_exact_for_linear_rhs_in_t():
    """du/dt = c integrates exactly."""
    u0 = np.array([1.0])
    out = advance(u0, lambda u: np.array([2.5]), dt=0.3)
    assert np.allclose(out, 1.0 + 2.5 * 0.3)


def test_rk3_third_order_convergence():
    """du/dt = -u: global error order ~3."""
    errs = []
    for nsteps in (16, 32):
        dt = 1.0 / nsteps
        u = np.array([1.0])
        for _ in range(nsteps):
            u = advance(u, lambda v: -v, dt)
        errs.append(abs(u[0] - np.exp(-1.0)))
    assert 2.7 < np.log2(errs[0] / errs[1]) < 3.3


def test_rk3_stage_in_place():
    u = np.ones(4)
    du = np.zeros(4)
    rhs = np.full(4, 2.0)
    rk3_stage(u, du, rhs, 0.1, 0)
    assert np.allclose(du, 0.2)
    assert np.allclose(u, 1.0 + 0.2 / 3.0)
    with pytest.raises(ValueError):
        rk3_stage(u, du, rhs, 0.1, 3)


def test_rk3_linear_stability_at_cfl_limit():
    """Advection eigenvalue on the imaginary axis: stable for |lam dt| < ~1.7."""
    lam = 1j * 1.5
    amp = 1.0 + 0.0j
    # amplification factor of RK3 for dy/dt = lam y
    z = lam
    g = 1 + z + z**2 / 2 + z**3 / 6
    assert abs(g) <= 1.0 + 1e-9


# -- ComputeDt --------------------------------------------------------------


def test_local_max_rate():
    lay = StateLayout(dim=1)
    u = EOS.conservative(lay, np.array([1.0, 1.0]), np.array([[0.0, 2.0]]),
                         np.array([1.0, 1.0]))
    met = CartesianMetrics((0.1,))
    rate = local_max_rate(lay, EOS, u, met)
    a = np.sqrt(1.4)
    assert rate == pytest.approx((2.0 + a) / 0.1)


def test_compute_dt_global_min():
    comm = Communicator(4, ranks_per_node=2)
    dt = compute_dt([10.0, 40.0, 20.0, 5.0], cfl=0.8, comm=comm)
    assert dt == pytest.approx(0.8 / 40.0)
    # traffic from the reduce tree was recorded
    assert comm.ledger.count("reduce") > 0


def test_compute_dt_idle_ranks_and_cap():
    comm = SerialComm()
    assert compute_dt([4.0], cfl=1.0, comm=comm, dt_max=0.1) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        compute_dt([0.0], cfl=1.0, comm=comm)
    with pytest.raises(ValueError):
        compute_dt([1.0], cfl=-1.0, comm=comm)
