"""Tests for central stencils and curvilinear metrics."""

import numpy as np
import pytest

from repro.numerics.metrics import (
    CartesianMetrics,
    CurvilinearMetrics,
    derivative_same_shape,
)
from repro.numerics.stencils import central_derivative, stencil_radius


def test_stencil_radius():
    assert stencil_radius(2) == 1
    assert stencil_radius(4) == 2
    assert stencil_radius(6) == 3
    assert stencil_radius(4, derivative=2) == 2


def test_central_derivative_polynomial_exactness():
    x = np.linspace(0, 1, 33)
    h = x[1] - x[0]
    # 4th-order stencil is exact on quartics for d/dx
    v = x**4 - 2 * x**2 + 3
    d = central_derivative(v, axis=0, spacing=h, order=4)
    expected = 4 * x[2:-2] ** 3 - 4 * x[2:-2]
    assert np.allclose(d, expected, atol=1e-10)


def test_central_derivative_order_of_accuracy():
    errs = []
    for n in (32, 64):
        x = (np.arange(n) + 0.5) / n
        v = np.sin(2 * np.pi * x)
        d = central_derivative(v, axis=0, spacing=1.0 / n, order=4)
        exact = 2 * np.pi * np.cos(2 * np.pi * x[2:-2])
        errs.append(np.abs(d - exact).max())
    assert np.log2(errs[0] / errs[1]) > 3.7


def test_central_second_derivative():
    x = np.linspace(0, 1, 41)
    h = x[1] - x[0]
    v = x**3
    d2 = central_derivative(v, axis=0, spacing=h, order=4, derivative=2)
    assert np.allclose(d2, 6 * x[2:-2], atol=1e-9)


def test_central_derivative_axis_handling():
    rng = np.random.default_rng(0)
    v = rng.normal(size=(5, 20))
    d = central_derivative(v, axis=1, order=4)
    assert d.shape == (5, 16)


def test_central_derivative_errors():
    with pytest.raises(ValueError):
        central_derivative(np.zeros(3), axis=0, order=4)
    with pytest.raises(ValueError):
        central_derivative(np.zeros(10), axis=0, order=8)


def test_derivative_same_shape_matches_interior():
    x = np.linspace(0, 1, 30)
    v = np.sin(3 * x)
    d_full = derivative_same_shape(v, axis=0, order=4)
    d_int = central_derivative(v, axis=0, order=4)
    assert d_full.shape == v.shape
    assert np.allclose(d_full[2:-2], d_int)


def test_derivative_same_shape_edges_reasonable():
    x = np.linspace(0, 1, 30)
    h = x[1] - x[0]
    v = x**2
    d = derivative_same_shape(v, axis=0, order=4) / h
    assert np.allclose(d, 2 * x, atol=1e-8)  # exact for quadratics even one-sided


def test_cartesian_metrics():
    m = CartesianMetrics((0.5, 0.25, 2.0))
    assert m.jacobian().flat[0] == pytest.approx(0.25)
    mx = m.m(0)
    assert mx[0].flat[0] == pytest.approx(0.25 / 0.5)
    assert mx[1].flat[0] == 0.0
    with pytest.raises(ValueError):
        CartesianMetrics((1.0, 0.0))


def test_curvilinear_affine_mapping_exact():
    """x = A xi + b gives constant first metrics equal to A and J = det(A)."""
    A = np.array([[2.0, 0.5], [0.0, 1.5]])
    n = 12
    ii, jj = np.meshgrid(np.arange(n) + 0.5, np.arange(n) + 0.5, indexing="ij")
    coords = np.stack([A[0, 0] * ii + A[0, 1] * jj, A[1, 0] * ii + A[1, 1] * jj])
    met = CurvilinearMetrics.from_coordinates(coords)
    assert np.allclose(met.jacobian(), np.linalg.det(A))
    assert np.allclose(met.first[0, 0], A[0, 0])
    assert np.allclose(met.first[0, 1], A[0, 1])
    # m_d = J * row d of A^{-1}
    Ainv = np.linalg.inv(A)
    for d in range(2):
        for j in range(2):
            assert np.allclose(met.m(d)[j], np.linalg.det(A) * Ainv[d, j])
    # second derivatives vanish for affine maps
    assert np.allclose(met.second, 0.0, atol=1e-10)


def test_curvilinear_component_count_3d():
    """The paper's 27 stored components: 9 first + 18 second derivatives."""
    n = 8
    g = np.meshgrid(*[np.arange(n) + 0.5] * 3, indexing="ij")
    coords = np.stack([g[0] * 1.0, g[1] * 1.0, g[2] * 1.0])
    met = CurvilinearMetrics.from_coordinates(coords)
    assert met.ncomp_stored == 27
    assert met.pack().shape == (27, n, n, n)


def test_curvilinear_stretched_grid_metrics():
    """Smoothly stretched 1D-like grid: J matches analytic dx/dxi."""
    n = 64
    i = np.arange(n) + 0.5
    j = np.arange(8) + 0.5
    ii, jj = np.meshgrid(i, j, indexing="ij")
    # x = sinh(alpha i / n) scaled; y uniform
    alpha = 2.0
    x = np.sinh(alpha * ii / n) / np.sinh(alpha)
    y = jj / 8.0
    met = CurvilinearMetrics.from_coordinates(np.stack([x, y]))
    dxdi_exact = (alpha / n) * np.cosh(alpha * ii / n) / np.sinh(alpha)
    # interior cells only (edges are lower order)
    sl = (slice(4, -4), slice(2, -2))
    assert np.allclose(met.first[0, 0][sl], dxdi_exact[sl], rtol=1e-5)
    assert np.allclose(met.jacobian()[sl], dxdi_exact[sl] / 8.0, rtol=1e-5)


def test_curvilinear_gcl_residual_small():
    n = 32
    ii, jj = np.meshgrid(np.arange(n) + 0.5, np.arange(n) + 0.5, indexing="ij")
    x = ii + 0.1 * np.sin(2 * np.pi * jj / n) * n / (2 * np.pi)
    y = jj + 0.1 * np.sin(2 * np.pi * ii / n) * n / (2 * np.pi)
    met = CurvilinearMetrics.from_coordinates(np.stack([x, y]))
    res = met.gcl_residual()
    interior = (slice(None), slice(4, -4), slice(4, -4))
    # metric identities hold to discretization error
    assert np.abs(res[interior]).max() < 1e-3


def test_curvilinear_rejects_folded_grid():
    n = 8
    ii, jj = np.meshgrid(np.arange(n, 0, -1) + 0.5, np.arange(n) + 0.5,
                         indexing="ij")
    with pytest.raises(ValueError):
        CurvilinearMetrics.from_coordinates(np.stack([ii * 1.0, jj * 1.0]))


def test_curvilinear_shape_validation():
    with pytest.raises(ValueError):
        CurvilinearMetrics.from_coordinates(np.zeros((2, 5)))


def test_grid_quality_uniform_grid():
    from repro.numerics.metrics import grid_quality

    n = 16
    g = np.meshgrid(np.arange(n) + 0.5, (np.arange(n) + 0.5) * 2.0,
                    indexing="ij")
    met = CurvilinearMetrics.from_coordinates(np.stack(g).astype(float))
    q = grid_quality(met)
    assert q["max_skewness"] == pytest.approx(0.0, abs=1e-12)
    assert q["max_stretching"] == pytest.approx(0.0, abs=1e-10)
    assert q["max_aspect_ratio"] == pytest.approx(2.0)
    assert q["jacobian_ratio"] == pytest.approx(1.0)


def test_grid_quality_detects_stretching_and_skew():
    from repro.cases.grids import compression_ramp_mapping, tanh_cluster_mapping
    from repro.numerics.metrics import grid_quality

    n = 32
    s = np.stack(np.meshgrid((np.arange(n) + 0.5) / n,
                             (np.arange(n) + 0.5) / n, indexing="ij"))
    # wall clustering: strong stretching, no skew
    met1 = CurvilinearMetrics.from_coordinates(
        tanh_cluster_mapping((1.0, 1.0), beta=3.0)(s))
    q1 = grid_quality(met1)
    assert q1["max_stretching"] > 0.05
    assert q1["max_skewness"] < 0.01
    # ramp shear: skewed grid lines
    met2 = CurvilinearMetrics.from_coordinates(
        compression_ramp_mapping((2.0, 1.0), angle_deg=30.0)(s))
    q2 = grid_quality(met2)
    assert q2["max_skewness"] > 0.2
