"""Tests for scalar transport and the one-equation k-SGS model."""

import numpy as np
import pytest

from repro.cases.base import Case
from repro.numerics.eos import IdealGasEOS
from repro.numerics.fluxes import ConvectiveFlux
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.sgs import KEquationSGS, KEquationViscousFlux
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux, constant_viscosity

NG = 4
EOS = IdealGasEOS()


def test_layout_with_scalars():
    lay = StateLayout(nspecies=1, dim=2, nscalars=2)
    assert lay.ncons == 6
    assert lay.energy == 3
    assert lay.scalar(0) == 4
    assert lay.scalar(1) == 5
    assert lay.scalar_slice == slice(4, 6)
    with pytest.raises(IndexError):
        lay.scalar(2)
    with pytest.raises(ValueError):
        StateLayout(nscalars=-1)


def test_conservative_packs_scalars():
    lay = StateLayout(dim=1, nscalars=1)
    u = EOS.conservative(lay, np.array([2.0]), np.array([[1.0]]),
                         np.array([1.0]), scalars=np.array([[0.5]]))
    assert u[lay.scalar(0), 0] == pytest.approx(1.0)  # rho * s
    # no scalars given -> zero
    u0 = EOS.conservative(lay, np.array([2.0]), np.array([[1.0]]),
                          np.array([1.0]))
    assert u0[lay.scalar(0), 0] == 0.0
    # pressure/temperature ignore the scalar slot
    assert EOS.pressure(lay, u)[0] == pytest.approx(1.0)


def test_scalar_advects_with_flow():
    """A passive scalar obeys d(rho s)/dt = -d(rho s u)/dx."""
    lay = StateLayout(dim=1, nscalars=1)
    n = 64
    x = ((np.arange(-NG, n + NG) % n) + 0.5) / n
    rho = np.ones_like(x)
    vel = np.full_like(x, 0.8)
    p = np.ones_like(x)
    s = 1.0 + 0.3 * np.sin(2 * np.pi * x)
    u = EOS.conservative(lay, rho, vel[None], p, scalars=s[None])
    op = ConvectiveFlux()
    dudt = op.divergence(lay, EOS, u, CartesianMetrics((1.0 / n,)), 0, NG)
    xs = (np.arange(n) + 0.5) / n
    exact = -0.8 * 0.3 * 2 * np.pi * np.cos(2 * np.pi * xs)
    assert np.allclose(dudt[lay.scalar(0)], exact, atol=2e-3)
    # scalar does not feed back on the flow (passive)
    assert np.abs(dudt[lay.mom(0)]).max() < 1e-10


def test_scalar_diffusion():
    """Scalar gradient diffusion: d(rho s)/dt = rho D s''."""
    lay = StateLayout(dim=1, nscalars=1)
    n = 64
    x = ((np.arange(-NG, n + NG) % n) + 0.5) / n
    s = 0.1 * np.sin(2 * np.pi * x)
    u = EOS.conservative(lay, np.ones_like(x), np.zeros((1, len(x))),
                         np.ones_like(x), scalars=s[None])
    mu, sc = 0.01, 0.7
    op = ViscousFlux(constant_viscosity(mu), scalar_schmidt=sc)
    rhs = op.divergence(lay, EOS, u, CartesianMetrics((1.0 / n,)), NG)
    xs = (np.arange(n) + 0.5) / n
    exact = -(mu / sc) * 0.1 * (2 * np.pi) ** 2 * np.sin(2 * np.pi * xs)
    assert np.allclose(rhs[lay.scalar(0)], exact, rtol=2e-2, atol=1e-6)


def uniform_k_state(n, k0, shear=0.0, ng=NG):
    lay = StateLayout(dim=2, nscalars=1)
    ntot = n + 2 * ng
    y = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    ux = shear * y[None, :] * np.ones((ntot, 1))
    vel = np.stack([ux, np.zeros_like(ux)])
    shape = (ntot, ntot)
    u = EOS.conservative(lay, np.ones(shape), vel, np.full(shape, 5.0),
                         scalars=np.full((1,) + shape, k0))
    return lay, u


def test_k_equation_pure_decay():
    """No strain: d(rho k)/dt = -C_e rho k^(3/2) / Delta exactly."""
    n = 16
    lay, u = uniform_k_state(n, k0=0.4)
    model = KEquationSGS()
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    src = model.source(lay, u, met)
    delta = (1.0 / n**2) ** 0.5
    expected = -model.c_e * 1.0 * 0.4**1.5 / delta
    interior = src[lay.scalar(0)][NG:-NG, NG:-NG]
    assert np.allclose(interior, expected, rtol=1e-10)
    # only the k slot is sourced
    assert np.abs(src[: lay.scalar(0)]).max() == 0.0


def test_k_equation_production_from_shear():
    """With resolved shear, production = mu_t |S|^2 raises k."""
    n = 32
    shear = 3.0
    lay, u = uniform_k_state(n, k0=0.01, shear=shear)
    model = KEquationSGS()
    met = CartesianMetrics((1.0 / n, 1.0 / n))
    src = model.source(lay, u, met)
    delta = 1.0 / n
    mu_t = model.c_k * 1.0 * np.sqrt(0.01) * delta
    production = mu_t * shear**2
    dissipation = model.c_e * 0.01**1.5 / delta
    interior = src[lay.scalar(0)][NG + 2:-NG - 2, NG + 2:-NG - 2]
    assert np.allclose(interior, production - dissipation, rtol=5e-2)
    # the production part is strictly positive: removing the shear leaves
    # pure decay, and the difference equals mu_t |S|^2
    lay0, u0 = uniform_k_state(n, k0=0.01, shear=0.0)
    src0 = KEquationSGS().source(lay0, u0, met)
    prod_measured = (src - src0)[lay.scalar(0)][NG + 2:-NG - 2, NG + 2:-NG - 2]
    assert np.allclose(prod_measured, production, rtol=5e-2)
    assert prod_measured.min() > 0


def test_k_equation_eddy_viscosity_and_floor():
    lay, u = uniform_k_state(8, k0=0.25)
    model = KEquationSGS()
    met = CartesianMetrics((1.0 / 8, 1.0 / 8))
    mu_t = model.eddy_viscosity(lay, u, met)
    assert np.allclose(mu_t, model.c_k * 1.0 * 0.5 * (1.0 / 8))
    # negative transported k is floored to zero
    u[lay.scalar(0)] = -1.0
    assert model.k_sgs(lay, u).max() == 0.0
    assert model.eddy_viscosity(lay, u, met).max() == 0.0


def test_k_equation_requires_scalar_slot():
    lay = StateLayout(dim=2)
    u = EOS.conservative(lay, np.ones((8, 8)), np.zeros((2, 8, 8)),
                         np.ones((8, 8)))
    with pytest.raises(ValueError):
        KEquationSGS().source(lay, u, CartesianMetrics((0.1, 0.1)))


class _LesShearCase(Case):
    """Minimal LES case: periodic shear layer with the k equation."""

    name = "les-shear"
    domain_cells = (32, 32)
    prob_extent = (1.0, 1.0)
    periodic = (True, True)
    cfl = 0.4

    def __init__(self):
        super().__init__()
        self.layout = StateLayout(nspecies=1, dim=2, nscalars=1)
        self.model = KEquationSGS()

    def make_viscous(self):
        return KEquationViscousFlux(constant_viscosity(2e-4))

    def initial_condition(self, coords, time=0.0):
        x, y = coords
        shape = x.shape
        vel = np.stack([0.5 * np.tanh((y - 0.5) * 20.0), np.zeros(shape)])
        k0 = np.full((1,) + shape, 1e-3)
        return self.eos.conservative(self.layout, np.ones(shape), vel,
                                     np.full(shape, 5.0), scalars=k0)

    def source(self, u, coords, time, metrics=None):
        return self.model.source(self.layout, u, metrics)


def test_les_shear_layer_end_to_end():
    """Driver-level LES run: k grows in the shear layer and stays bounded."""
    from repro.core.crocco import Crocco, CroccoConfig

    case = _LesShearCase()
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32))
    sim.initialize()
    lay = case.layout
    k_init = max(fab.valid()[lay.scalar(0)].max() for _, fab in sim.state[0])
    sim.run(25)
    fab = sim.state[0].fab(0)
    u = fab.valid()
    k = u[lay.scalar(0)] / lay.density(u)
    assert np.isfinite(u).all()
    assert k.max() > k_init  # production active at the shear interface
    assert k.max() < 0.5  # bounded well below the resolved KE scale
    # k concentrates at the layer (y ~ 0.5) relative to the freestream,
    # where it only decays
    j_layer = 16
    assert k[:, j_layer].mean() > 1.3 * k[:, 2].mean()
