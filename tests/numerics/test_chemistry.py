"""Tests for the Arrhenius chemistry source and the reacting case."""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.numerics.chemistry import ArrheniusReaction, ignition_delay_estimate
from repro.numerics.eos import MixtureEOS, Species
from repro.numerics.state import StateLayout


def make_mix(q=1.5e6):
    return MixtureEOS([
        Species("A", 0.029, 718.0, h_formation=q),
        Species("B", 0.029, 718.0, h_formation=0.0),
    ])


LAY = StateLayout(nspecies=2, dim=1)


def test_rate_constant_arrhenius_form():
    rx = ArrheniusReaction(pre_exponential=2.0, temp_exponent=1.0,
                           activation_temperature=1000.0)
    T = np.array([500.0])
    expected = 2.0 * 500.0 * np.exp(-2.0)
    assert rx.rate_constant(T)[0] == pytest.approx(expected)


def test_source_conserves_mass_and_energy():
    mix = make_mix()
    rx = ArrheniusReaction()
    u = mix.conservative(LAY, np.array([[0.7], [0.3]]), np.array([[10.0]]),
                         np.array([1500.0]))
    w = rx.source(LAY, mix, u)
    # total mass production is zero; momentum and energy sources are zero
    assert w[0, 0] + w[1, 0] == pytest.approx(0.0, abs=1e-18)
    assert w[2, 0] == 0.0
    assert w[3, 0] == 0.0
    # reactant is consumed
    assert w[0, 0] < 0


def test_source_validation():
    mix = make_mix()
    rx = ArrheniusReaction(reactant=0, product=5)
    u = mix.conservative(LAY, np.ones((2, 4)), np.zeros((1, 4)),
                         np.full(4, 300.0))
    with pytest.raises(ValueError):
        rx.source(LAY, mix, u)
    with pytest.raises(ValueError):
        ArrheniusReaction().source(StateLayout(nspecies=1, dim=1), mix, u)


def test_heat_release():
    mix = make_mix(q=2.0e6)
    assert ArrheniusReaction().heat_release(mix) == pytest.approx(2.0e6)


def test_constant_volume_ignition_matches_ode():
    """0D constant-volume ignition: RK3 + source vs scipy's ODE solution."""
    mix = make_mix(q=1.0e6)
    rx = ArrheniusReaction(pre_exponential=1e3, activation_temperature=3000.0)
    rho = 1.0
    T0 = 1200.0
    u = mix.conservative(LAY, np.array([[rho], [0.0]]), np.zeros((1, 1)),
                         np.array([T0]))
    E0 = float(u[3, 0])

    # integrate with the solver's own RK3
    from repro.numerics.rk3 import advance

    t_end = 3 * ignition_delay_estimate(rx, T0)
    nsteps = 400
    dt = t_end / nsteps
    state = u.copy()
    for _ in range(nsteps):
        state = advance(state, lambda s: rx.source(LAY, mix, s), dt)

    # reference: d(rho_A)/dt = -k(T(rho_A)) rho_A with T from fixed E
    cv = 718.0

    def T_of(rho_a):
        return (E0 - rho_a * 1.0e6) / (rho * cv)

    def rhs(t, y):
        return [-rx.rate_constant(np.asarray(T_of(y[0]))) * y[0]]

    sol = solve_ivp(rhs, (0, t_end), [rho], rtol=1e-10, atol=1e-12)
    assert state[0, 0] == pytest.approx(sol.y[0, -1], rel=1e-4)
    # temperature rose by the heat release of the burned fraction
    T_end = float(mix.temperature(LAY, state)[0])
    burned = 1.0 - state[0, 0] / rho
    assert T_end == pytest.approx(T0 + burned * 1.0e6 / cv, rel=1e-10)
    # energy is exactly conserved (source only exchanges formation energy)
    assert float(state[3, 0]) == pytest.approx(E0, rel=1e-14)


def test_ignition_front_case_burns_and_conserves():
    from repro.cases.reacting import IgnitionFront
    from repro.core.crocco import Crocco, CroccoConfig

    case = IgnitionFront(ncells=64)
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    sim.initialize()
    u0 = sim.state[0].fab(0).valid().copy()
    burned0 = case.burned_fraction(u0)
    mass0 = sim.total_mass()
    for _ in range(30):
        sim.step()
    u1 = sim.state[0].fab(0).valid()
    burned1 = case.burned_fraction(u1)
    # the hot spot ignites the mixture
    assert burned1 > burned0 + 1e-4
    # species mass exchange conserves total mass
    assert sim.total_mass() == pytest.approx(mass0, rel=1e-6)
    # temperature peak exceeds the initial hot spot (heat release)
    T = case.eos.temperature(case.layout, u1)
    assert T.max() > case.T_spot
    assert np.isfinite(u1).all()


def test_ignition_delay_estimate():
    rx = ArrheniusReaction(pre_exponential=100.0, activation_temperature=0.0)
    assert ignition_delay_estimate(rx, 300.0) == pytest.approx(0.01)
