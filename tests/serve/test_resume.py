"""Checkpoint-resume dispatch: a re-dispatched run continues, bitwise.

The tentpole contract: a run lost to a dead worker (or drained by a
stopping service) resumes from its last valid autocheckpoint with at
most one replayed step, and its final artifacts are bitwise identical
to an uninterrupted serial pass.
"""

import json
import multiprocessing
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry
from repro.serve.worker import AUTOCHK_DIR, find_resume_point

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)


def deck(steps=4, chk="chk"):
    return (f"crocco.case = sod\namr.n_cell = 32\nrun.steps = {steps}\n"
            f"run.checkpoint = {chk}\n")


def wait_terminal(reg, run_ids, timeout=120.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        states = {rid: reg.get(rid).state for rid in run_ids}
        if all(s in ("done", "failed", "cancelled") for s in states.values()):
            return states
        time.sleep(0.05)
    raise AssertionError(f"runs never finished: {states}")


def checkpoint_arrays(chk_dir):
    base = chk_dir
    header = json.loads((base / "Header").read_text())
    out = {}
    for lev in range(header["finest_level"] + 1):
        with np.load(base / f"Level_{lev}.npz") as data:
            for name in sorted(data.files):
                out[(lev, name)] = data[name].copy()
    return header, out


def reference_checkpoint(tmp_path, steps=4):
    """The same deck through the CLI serial path (the parity oracle)."""
    chk = tmp_path / "ref_chk"
    deck_path = tmp_path / "ref_deck.inputs"
    deck_path.write_text(deck(steps=steps, chk=str(chk)))
    assert cli_main([str(deck_path), "--executor", "serial"]) == 0
    return checkpoint_arrays(chk)


# -- find_resume_point mechanics -------------------------------------------

def test_find_resume_point_empty_is_cold_start(tmp_path):
    assert find_resume_point(tmp_path) is None


def test_find_resume_point_evicts_torn_header(tmp_path):
    """A corrupt newest checkpoint falls back to the previous good one."""
    from repro.cases.shocktube import SodShockTube
    from repro.core.crocco import Crocco, CroccoConfig
    from repro.io.checkpoint import save_checkpoint
    from repro.serve.chaos import corrupt_checkpoint

    sim = Crocco(SodShockTube(16), CroccoConfig(version="1.1",
                                                max_grid_size=16))
    sim.initialize()
    base = tmp_path / AUTOCHK_DIR
    save_checkpoint(base / "chk_step000000", sim)
    sim.step()
    save_checkpoint(base / "chk_step000001", sim)
    torn = corrupt_checkpoint(base)
    assert torn is not None and "chk_step000001" in torn
    ck, step, replayed = find_resume_point(tmp_path)
    assert ck.name == "chk_step000000" and step == 0
    assert not (base / "chk_step000001").exists()  # evicted, not skipped
    # all checkpoints torn -> cold start
    corrupt_checkpoint(base)
    assert find_resume_point(tmp_path) is None


# -- killed worker: resume with <= 1 replayed step, bitwise artifacts ------

def test_killed_worker_resumes_bitwise_with_bounded_replay(tmp_path):
    ref_header, ref = reference_checkpoint(tmp_path)

    reg = RunRegistry(tmp_path / "svc")
    fleet = WorkerFleet(reg, tmp_path / "svc" / "cache", workers=1,
                        task_timeout=6.0, task_retries=1).start()
    try:
        # the worker hard-exits at the step-2 boundary; the supervisor
        # re-dispatches and the run must RESUME, not restart
        fleet.fault_next = ("kill_step", 2)
        rec = reg.submit(deck())
        states = wait_terminal(reg, [rec.id])
        assert states[rec.id] == "done"
        back = reg.get(rec.id)
        assert back.attempts >= 2, "the kill never forced a re-dispatch"
        result = back.result
        assert result["resumed"] is True
        assert result["resume_step"] >= 1
        assert result["replayed_steps"] <= 1, (
            "resume replayed more than one step")
        # recovery accounting reached the fleet and the recorder gauges
        assert fleet.resumes == 1
        assert fleet.replayed_steps <= 1
        metrics = (reg.run_dir(rec.id) / "metrics.jsonl").read_text()
        last = json.loads(metrics.splitlines()[-1])
        assert last["metrics"].get("resilience.serve_resumes") == 1.0

        hdr, arrays = checkpoint_arrays(reg.run_dir(rec.id) / "chk")
        assert hdr["step"] == ref_header["step"]
        assert hdr["time"] == ref_header["time"]
        assert arrays.keys() == ref.keys()
        for key in ref:
            assert arrays[key].tobytes() == ref[key].tobytes(), (
                f"resumed state diverged at level/box {key}")
        # terminal runs drop their resume scratch
        assert not (reg.run_dir(rec.id) / AUTOCHK_DIR).exists()
    finally:
        fleet.stop()


# -- graceful drain: suspend to checkpoint, resume in the next generation --

def test_drain_suspends_to_checkpoint_and_next_fleet_resumes(tmp_path):
    ref_header, ref = reference_checkpoint(tmp_path, steps=40)

    reg = RunRegistry(tmp_path / "svc")
    fleet = WorkerFleet(reg, tmp_path / "svc" / "cache", workers=1,
                        task_timeout=120.0).start()
    rec = reg.submit(deck(steps=40))
    t_end = time.monotonic() + 60
    while time.monotonic() < t_end:
        if ((reg.get(rec.id).state == "running"
             and (reg.run_dir(rec.id) / "metrics.jsonl").exists())):
            break
        time.sleep(0.02)
    assert reg.get(rec.id).state == "running"

    assert fleet.drain(grace_s=30.0), "drain never emptied the lanes"
    fleet.stop()
    back = reg.get(rec.id)
    assert back.state == "queued", "drained run must be requeued, not dead"
    assert back.requeues == 1
    assert "drained to checkpoint" in back.reason
    assert (reg.run_dir(rec.id) / AUTOCHK_DIR).exists()
    assert fleet.suspended_runs == 1

    # next generation (fresh fleet over the same registry) resumes it
    fleet2 = WorkerFleet(reg, tmp_path / "svc" / "cache", workers=1,
                         task_timeout=120.0).start()
    try:
        states = wait_terminal(reg, [rec.id])
        assert states[rec.id] == "done"
        result = reg.get(rec.id).result
        assert result["resumed"] is True
        assert result["replayed_steps"] <= 1
        assert result["steps"] == 40
        hdr, arrays = checkpoint_arrays(reg.run_dir(rec.id) / "chk")
        assert hdr["step"] == ref_header["step"]
        for key in ref:
            assert arrays[key].tobytes() == ref[key].tobytes(), (
                f"drained+resumed state diverged at {key}")
    finally:
        fleet2.stop()


def test_stop_requeues_inflight_abandon_leaves_orphans(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    fleet = WorkerFleet(reg, tmp_path / "svc" / "cache", workers=1,
                        task_timeout=120.0).start()
    rec = reg.submit(deck(steps=2000))
    t_end = time.monotonic() + 60
    while reg.get(rec.id).state != "running" and time.monotonic() < t_end:
        time.sleep(0.02)
    assert reg.get(rec.id).state == "running"
    # abandon=True is the harness's kill -9: the record stays "running"
    fleet.stop(abandon=True)
    assert reg.get(rec.id).state == "running"
    # ... which is exactly what restart reconciliation picks up
    reg2 = RunRegistry(tmp_path / "svc")
    assert reg2.get(rec.id).state == "queued"
    assert reg2.orphans_requeued == 1
