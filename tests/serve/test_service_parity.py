"""A service-submitted run is bitwise identical to the CLI serial path."""

import multiprocessing

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)


def _deck(chk: str) -> str:
    # an AMR curvilinear case, so the cached coords/metrics/interp paths
    # are all exercised on the service side
    return ("crocco.case = dmr\ncrocco.curvilinear = true\n"
            "amr.n_cell = 48 16\namr.max_level = 1\n"
            "run.steps = 4\n"
            f"run.checkpoint = {chk}\n")


def _level_arrays(chk_dir):
    import json
    from pathlib import Path

    base = Path(chk_dir)
    header = json.loads((base / "Header").read_text())
    out = {}
    for lev in range(header["finest_level"] + 1):
        with np.load(base / f"Level_{lev}.npz") as data:
            for name in sorted(data.files):
                out[(lev, name)] = data[name].copy()
    return header, out


def test_service_run_bitwise_matches_cli_serial(tmp_path):
    # reference: the same deck through the CLI serial path
    cli_chk = tmp_path / "cli_chk"
    deck_path = tmp_path / "deck.inputs"
    deck_path.write_text(_deck(str(cli_chk)))
    assert cli_main([str(deck_path), "--executor", "serial"]) == 0

    # candidate: submitted through the service, executed by the fleet
    reg = RunRegistry(tmp_path / "svc")
    fleet = WorkerFleet(reg, tmp_path / "svc" / "cache", workers=2,
                        task_timeout=180.0).start()
    try:
        # run it TWICE so the second run exercises the cache-hit path —
        # parity must hold for cached metrics too
        recs = [reg.submit(_deck("chk")) for _ in range(2)]
        import time

        t_end = time.monotonic() + 240
        while time.monotonic() < t_end:
            states = [reg.get(r.id).state for r in recs]
            if all(s in ("done", "failed", "cancelled") for s in states):
                break
            time.sleep(0.1)
        assert states == ["done", "done"], [reg.get(r.id).reason
                                           for r in recs]
        hit_run = max(recs, key=lambda r: reg.get(r.id).result[
            "cache_hit_rate"] or 0.0)
        assert reg.get(hit_run.id).result["cache_hit_rate"] > 0

        ref_header, ref = _level_arrays(cli_chk)
        for rec in recs:
            hdr, arrays = _level_arrays(reg.run_dir(rec.id) / "chk")
            assert hdr["step"] == ref_header["step"]
            assert hdr["time"] == ref_header["time"]  # exact float equality
            assert arrays.keys() == ref.keys()
            for key in ref:
                assert arrays[key].tobytes() == ref[key].tobytes(), (
                    f"state diverged at level/box {key} for {rec.id}")
    finally:
        fleet.stop()
