"""Cross-run immutable cache: keys, hit/miss accounting, bit-exactness."""

import numpy as np
import pytest

from repro.cases.ramp import CompressionRamp
from repro.cases.shocktube import SodShockTube
from repro.numerics.metrics import CurvilinearMetrics
from repro.serve.cache import CaseCache, case_config_hash, object_signature


@pytest.fixture
def cache(tmp_path):
    return CaseCache(tmp_path / "cache")


def test_case_config_hash_stable_and_parameter_sensitive():
    a = case_config_hash(CompressionRamp(ncells=(32, 16), mach=3.0))
    b = case_config_hash(CompressionRamp(ncells=(32, 16), mach=3.0))
    c = case_config_hash(CompressionRamp(ncells=(32, 16), mach=3.5))
    d = case_config_hash(SodShockTube(ncells=32))
    assert a == b
    assert a != c  # a constructor parameter changes the key
    assert a != d  # a different case class changes the key


def test_object_signature_skips_private_and_arrays():
    class Thing:
        scale = 2.0

        def __init__(self):
            self.n = 4
            self._secret = 9
            self.arr = np.zeros(3)

    sig = object_signature(Thing())
    assert sig["n"] == 4 and sig["scale"] == 2.0
    assert "_secret" not in sig and "arr" not in sig
    assert sig["__class__"].endswith("Thing")


def test_get_or_compute_counts_hits_and_misses(cache):
    calls = []

    def compute():
        calls.append(1)
        return {"x": np.arange(5.0)}

    first = cache.get_or_compute("eos", "k" * 64, compute)
    again = cache.get_or_compute("eos", "k" * 64, compute)
    assert len(calls) == 1  # second lookup served from disk
    np.testing.assert_array_equal(first["x"], again["x"])
    assert cache.counters()["eos"] == {"hits": 1, "misses": 1}
    assert cache.hit_rate() == 0.5


def test_torn_entry_treated_as_miss(cache):
    key = "t" * 64
    cache.get_or_compute("interp", key, lambda: {"w": np.ones(2)})
    path = cache._path("interp", key)
    path.write_bytes(b"not a zip at all")
    out = cache.get_or_compute("interp", key, lambda: {"w": np.ones(2)})
    np.testing.assert_array_equal(out["w"], np.ones(2))
    assert cache.misses["interp"] == 2  # the torn entry did not count as a hit


def test_curvilinear_metrics_roundtrip_bitwise(cache):
    case = CompressionRamp(ncells=(24, 12))
    geom = case.geometry0()
    coords = case.coordinates(geom, geom.domain)
    fresh = CurvilinearMetrics.from_coordinates(coords)
    miss = cache.curvilinear_metrics(coords)   # computes + stores
    hit = cache.curvilinear_metrics(coords)    # loads from disk
    assert cache.counters()["metrics"] == {"hits": 1, "misses": 1}
    for a, b in ((miss.first, hit.first), (miss.second, hit.second)):
        assert a.tobytes() == b.tobytes()
    # and the cached object matches a from-scratch computation bit for bit
    assert hit.first.tobytes() == fresh.first.tobytes()
    assert hit.second.tobytes() == fresh.second.tobytes()
    assert hit.jacobian().tobytes() == fresh.jacobian().tobytes()


def test_coordinates_cached_per_region(cache):
    case = SodShockTube(ncells=64)
    geom = case.geometry0()
    first = cache.coordinates(case, geom, geom.domain)
    second = cache.coordinates(case, geom, geom.domain)
    assert first.tobytes() == second.tobytes()
    assert cache.counters()["coords"] == {"hits": 1, "misses": 1}
    direct = case.coordinates(geom, geom.domain)
    assert first.tobytes() == direct.tobytes()


def test_eos_table_and_warm(cache):
    case = SodShockTube(ncells=32)
    table = cache.eos_table(case.eos, case.layout, n=8)
    assert table["p"].shape == (8, 8)
    assert np.all(np.isfinite(table["p"]))
    assert np.all(table["a"] > 0)
    assert cache.eos_table(case.eos, case.layout, n=16)["p"].shape == (16, 16)
    cache.warm(case, "trilinear")
    cache.warm(case, "trilinear")
    counters = cache.counters()
    # the second warm re-used both entries the first one populated
    assert counters["eos"]["hits"] == 1
    assert counters["interp"]["hits"] == 1
    assert counters["interp"]["misses"] == 1


def test_interp_weights_weno_has_stencil_table(cache):
    lin = cache.interp_weights("trilinear")
    weno = cache.interp_weights("weno")
    assert "frac" in lin and "weno_left" not in lin
    assert "weno_left" in weno
    assert np.all((weno["frac"] >= 0) & (weno["frac"] <= 1))
