"""Run registry: states, priorities, persistence, cancellation."""

import json

import pytest

from repro.serve.registry import RUN_STATES, RunRegistry

DECK = "crocco.case = sod\nrun.steps = 2\n"


@pytest.fixture
def reg(tmp_path):
    return RunRegistry(tmp_path / "svc")


def test_submit_persists_deck_and_record(reg):
    rec = reg.submit(DECK, priority=3, label="hello")
    d = reg.run_dir(rec.id)
    assert (d / "deck.inputs").read_text() == DECK
    on_disk = json.loads((d / "run.json").read_text())
    assert on_disk["state"] == "queued"
    assert on_disk["priority"] == 3
    assert on_disk["label"] == "hello"
    assert rec.state in RUN_STATES


def test_claim_order_priority_then_fifo(reg):
    low1 = reg.submit(DECK, priority=0)
    high = reg.submit(DECK, priority=5)
    low2 = reg.submit(DECK, priority=0)
    order = [reg.claim_next().id for _ in range(3)]
    assert order == [high.id, low1.id, low2.id]
    assert reg.claim_next() is None
    assert reg.counts()["running"] == 3


def test_finish_is_terminal_and_idempotent(reg):
    rec = reg.submit(DECK)
    reg.claim_next()
    done = reg.finish(rec.id, "done", worker=2, result={"steps": 2})
    assert done.state == "done" and done.latency_s is not None
    # a late duplicate completion cannot overwrite the terminal state
    again = reg.finish(rec.id, "failed", reason="late duplicate")
    assert again.state == "done"
    with pytest.raises(ValueError):
        reg.finish(rec.id, "running")


def test_cancel_queued_vs_running(reg):
    queued = reg.submit(DECK)
    running = reg.submit(DECK, priority=9)
    reg.claim_next()  # claims the high-priority one
    assert reg.cancel(queued.id) == "cancelled"
    assert reg.get(queued.id).state == "cancelled"
    assert reg.cancel(running.id) == "cancelling"
    assert (reg.run_dir(running.id) / "CANCEL").exists()
    assert reg.get(running.id).state == "running"  # until the worker stops
    assert reg.cancel("r99999") is None


def test_restart_requeues_orphaned_running_runs(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK)
    reg.claim_next()
    assert reg.get(rec.id).state == "running"
    # a stale drain flag must not re-suspend the resumed run immediately
    (reg.run_dir(rec.id) / "DRAIN").touch()
    # a fresh registry over the same root = service restarted mid-run:
    # the orphan goes back to resumable work, it is NOT failed
    reg2 = RunRegistry(tmp_path / "svc")
    back = reg2.get(rec.id)
    assert back.state == "queued"
    assert "orphaned" in back.reason and "requeued" in back.reason
    assert back.requeues == 1
    assert back.started_at is None
    assert not (reg2.run_dir(rec.id) / "DRAIN").exists()
    assert reg2.orphans_requeued == 1
    # the requeued orphan is claimable again (resume path)
    claimed = reg2.claim_next()
    assert claimed.id == rec.id and claimed.attempts == 2
    # sequence numbering continues past reloaded runs
    newer = reg2.submit(DECK)
    assert newer.id > rec.id


def test_restart_salvages_torn_queued_record(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK)
    (reg.run_dir(rec.id) / "run.json").write_text('{"id": "r000')  # torn
    reg2 = RunRegistry(tmp_path / "svc")
    back = reg2.get(rec.id)
    # the deck survives, so the run is rebuilt and still executes
    assert back is not None and back.state == "queued"
    assert "salvaged" in back.reason
    assert reg2.torn_records_salvaged == 1
    assert reg2.claim_next().id == rec.id


def test_restart_salvages_torn_terminal_record_without_rerun(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK)
    reg.claim_next()
    reg.finish(rec.id, "done", result={"status": "done", "steps": 2})
    # the worker's result.json is the ground truth salvage reads
    (reg.run_dir(rec.id) / "result.json").write_text(
        '{"status": "done", "steps": 2}')
    (reg.run_dir(rec.id) / "run.json").write_text('{"state": "don')  # torn
    reg2 = RunRegistry(tmp_path / "svc")
    back = reg2.get(rec.id)
    # result.json proves completion: salvaged terminal, NOT re-executed
    assert back.state == "done"
    assert back.result["steps"] == 2
    assert reg2.claim_next() is None


def test_restart_skips_record_with_nothing_to_salvage(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK)
    (reg.run_dir(rec.id) / "deck.inputs").unlink()
    (reg.run_dir(rec.id) / "run.json").write_text('{"id": "r000')  # torn
    reg2 = RunRegistry(tmp_path / "svc")
    assert reg2.get(rec.id) is None  # skipped, not crashed
    assert reg2.torn_records_skipped == 1


def test_idempotency_key_dedupes_submissions(reg):
    a = reg.submit(DECK, idempotency_key="k-1", label="first")
    b = reg.submit(DECK, idempotency_key="k-1", label="retry")
    assert b.id == a.id and b.label == "first"
    assert reg.deduped_submissions == 1
    other = reg.submit(DECK, idempotency_key="k-2")
    assert other.id != a.id
    assert reg.counts()["queued"] == 2


def test_idempotency_index_survives_restart(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK, idempotency_key="k-restart")
    reg2 = RunRegistry(tmp_path / "svc")
    assert reg2.submit(DECK, idempotency_key="k-restart").id == rec.id
    assert reg2.deduped_submissions == 1


def test_requeue_promotes_running_back_to_queued(reg):
    rec = reg.submit(DECK)
    reg.claim_next()
    (reg.run_dir(rec.id) / "DRAIN").touch()
    back = reg.requeue(rec.id, reason="drained")
    assert back.state == "queued" and back.requeues == 1
    assert back.started_at is None
    assert not (reg.run_dir(rec.id) / "DRAIN").exists()
    # terminal records are left untouched
    reg.claim_next()
    reg.finish(rec.id, "done")
    assert reg.requeue(rec.id).state == "done"


def test_request_drain_flags_only_running_runs(reg):
    queued = reg.submit(DECK)
    assert reg.request_drain(queued.id) is False
    reg.claim_next()
    assert reg.request_drain(queued.id) is True
    assert (reg.run_dir(queued.id) / "DRAIN").exists()
    # claiming after a requeue clears the stale flag
    reg.requeue(queued.id)
    (reg.run_dir(queued.id) / "DRAIN").touch()
    reg.claim_next()
    assert not (reg.run_dir(queued.id) / "DRAIN").exists()


def test_claim_cancel_race_is_exactly_once(reg):
    """Threads hammering claim_next vs cancel never double-claim a run."""
    import threading

    recs = [reg.submit(DECK) for _ in range(40)]
    claimed, errors = [], []

    def claimer():
        try:
            while True:
                rec = reg.claim_next()
                if rec is None:
                    if reg.counts()["queued"] == 0:
                        return
                    continue
                claimed.append(rec.id)
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    def canceller():
        try:
            for rec in recs:
                reg.cancel(rec.id)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = ([threading.Thread(target=claimer) for _ in range(4)]
               + [threading.Thread(target=canceller)])
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    assert not errors
    # every run was claimed at most once, and each ended either claimed
    # (running, possibly with a CANCEL flag pending) or cancelled-before-
    # start — never both, never neither, never lost
    assert len(claimed) == len(set(claimed))
    counts = reg.counts()
    assert counts["running"] == len(claimed)
    assert counts["running"] + counts["cancelled"] == len(recs)
    for rid in claimed:
        assert reg.get(rid).state == "running"


def test_read_result_absent_and_torn(reg):
    rec = reg.submit(DECK)
    assert reg.read_result(rec.id) is None
    (reg.run_dir(rec.id) / "result.json").write_text("{oops")
    assert reg.read_result(rec.id) is None
    (reg.run_dir(rec.id) / "result.json").write_text('{"status": "done"}')
    assert reg.read_result(rec.id) == {"status": "done"}
