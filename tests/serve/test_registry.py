"""Run registry: states, priorities, persistence, cancellation."""

import json

import pytest

from repro.serve.registry import RUN_STATES, RunRegistry

DECK = "crocco.case = sod\nrun.steps = 2\n"


@pytest.fixture
def reg(tmp_path):
    return RunRegistry(tmp_path / "svc")


def test_submit_persists_deck_and_record(reg):
    rec = reg.submit(DECK, priority=3, label="hello")
    d = reg.run_dir(rec.id)
    assert (d / "deck.inputs").read_text() == DECK
    on_disk = json.loads((d / "run.json").read_text())
    assert on_disk["state"] == "queued"
    assert on_disk["priority"] == 3
    assert on_disk["label"] == "hello"
    assert rec.state in RUN_STATES


def test_claim_order_priority_then_fifo(reg):
    low1 = reg.submit(DECK, priority=0)
    high = reg.submit(DECK, priority=5)
    low2 = reg.submit(DECK, priority=0)
    order = [reg.claim_next().id for _ in range(3)]
    assert order == [high.id, low1.id, low2.id]
    assert reg.claim_next() is None
    assert reg.counts()["running"] == 3


def test_finish_is_terminal_and_idempotent(reg):
    rec = reg.submit(DECK)
    reg.claim_next()
    done = reg.finish(rec.id, "done", worker=2, result={"steps": 2})
    assert done.state == "done" and done.latency_s is not None
    # a late duplicate completion cannot overwrite the terminal state
    again = reg.finish(rec.id, "failed", reason="late duplicate")
    assert again.state == "done"
    with pytest.raises(ValueError):
        reg.finish(rec.id, "running")


def test_cancel_queued_vs_running(reg):
    queued = reg.submit(DECK)
    running = reg.submit(DECK, priority=9)
    reg.claim_next()  # claims the high-priority one
    assert reg.cancel(queued.id) == "cancelled"
    assert reg.get(queued.id).state == "cancelled"
    assert reg.cancel(running.id) == "cancelling"
    assert (reg.run_dir(running.id) / "CANCEL").exists()
    assert reg.get(running.id).state == "running"  # until the worker stops
    assert reg.cancel("r99999") is None


def test_restart_marks_orphaned_running_runs_failed(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK)
    reg.claim_next()
    assert reg.get(rec.id).state == "running"
    # a fresh registry over the same root = service restarted mid-run
    reg2 = RunRegistry(tmp_path / "svc")
    back = reg2.get(rec.id)
    assert back.state == "failed"
    assert "orphaned" in back.reason
    # sequence numbering continues past reloaded runs
    newer = reg2.submit(DECK)
    assert newer.id > rec.id


def test_restart_skips_torn_record(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(DECK)
    (reg.run_dir(rec.id) / "run.json").write_text('{"id": "r000')  # torn
    reg2 = RunRegistry(tmp_path / "svc")
    assert reg2.get(rec.id) is None  # skipped, not crashed


def test_read_result_absent_and_torn(reg):
    rec = reg.submit(DECK)
    assert reg.read_result(rec.id) is None
    (reg.run_dir(rec.id) / "result.json").write_text("{oops")
    assert reg.read_result(rec.id) is None
    (reg.run_dir(rec.id) / "result.json").write_text('{"status": "done"}')
    assert reg.read_result(rec.id) == {"status": "done"}
