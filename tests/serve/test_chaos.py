"""Service-level chaos acceptance: the PR 3 chaos test, one level up.

Under a seeded plan that kills a worker mid-run, kills the "server"
(fleet abandoned with records left ``running``), tears a registry
record and corrupts a shared cache entry, a restarted service must
complete every submitted run exactly once, resumed runs must replay at
most one step, and every final checkpoint must be bitwise identical to
a fault-free serial pass.  Under saturation the server sheds with 429s
and idempotent client retries never duplicate runs.
"""

import json
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.serve.chaos import (ChaosProxy, ServiceFaultInjector,
                               corrupt_cache_entry, tear_record)
from repro.serve.client import ServeClient, ServeError, backoff_delays
from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry
from repro.serve.server import make_server

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)


def deck(steps=3, chk="chk"):
    return (f"crocco.case = sod\namr.n_cell = 32\nrun.steps = {steps}\n"
            f"run.checkpoint = {chk}\n")


def checkpoint_arrays(chk_dir):
    header = json.loads((chk_dir / "Header").read_text())
    out = {}
    for lev in range(header["finest_level"] + 1):
        with np.load(chk_dir / f"Level_{lev}.npz") as data:
            for name in sorted(data.files):
                out[(lev, name)] = data[name].copy()
    return header, out


def wait_terminal(reg, run_ids, timeout=180.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        states = {rid: reg.get(rid).state for rid in run_ids}
        if all(s in ("done", "failed", "cancelled") for s in states.values()):
            return states
        time.sleep(0.05)
    raise AssertionError(f"runs never finished: {states}")


# -- the plan grammar, extended to the service ------------------------------

def test_service_plan_grammar_parses_and_rejects():
    from repro.resilience.faults import parse_plan

    from repro.serve.chaos import SERVICE_KINDS

    specs, seed = parse_plan(
        "seed=7 kill_worker@2:1 kill_server@3 torn_record@1 "
        "corrupt_cache@4 delay_http@2:0.1 truncate_http@5:0.3",
        kinds=SERVICE_KINDS)
    assert seed == 7 and len(specs) == 6
    assert specs[0].kind == "kill_worker" and specs[0].arg == "1"
    # service kinds are NOT valid in solver plans and vice versa
    with pytest.raises(ValueError):
        parse_plan("kill_server@1")  # solver vocabulary
    with pytest.raises(ValueError):
        parse_plan("nan@1", kinds=SERVICE_KINDS)


def test_injector_fires_each_fault_exactly_once(tmp_path):
    inj = ServiceFaultInjector.from_plan(
        "seed=1 kill_worker@2:3 kill_server@2 delay_http@1:0.2")
    assert inj.fault_for_dispatch(1, "r1") is None
    assert inj.fault_for_dispatch(2, "r2") == ("kill_step", 3)
    assert inj.server_kill_due() is True
    assert inj.server_kill_due() is False  # latched once
    # spent specs never re-fire
    assert inj.fault_for_dispatch(2, "r2") is None
    assert inj.http_action(1) == ("delay", 0.2)
    assert inj.http_action(1) is None
    assert inj.fired_by_kind() == {"kill_worker": 1, "kill_server": 1,
                                   "delay_http": 1}
    assert not inj.pending()


# -- the chaos acceptance test ---------------------------------------------

@needs_fork
def test_chaos_acceptance_exactly_once_bitwise(tmp_path):
    """Worker kill + server kill + torn record + corrupt cache, one plan."""
    # long enough that the harness's kill_server poll (50 ms) lands while
    # dispatch 3 is still mid-run — a 6-step sod run finishes (and heals
    # its torn record on finish) faster than the poll can notice
    steps = 120
    # fault-free serial reference for bitwise comparison
    ref_chk = tmp_path / "ref_chk"
    deck_path = tmp_path / "ref.inputs"
    deck_path.write_text(deck(steps=steps, chk=str(ref_chk)))
    assert cli_main([str(deck_path), "--executor", "serial"]) == 0
    ref_header, ref = checkpoint_arrays(ref_chk)

    root = tmp_path / "svc"
    reg = RunRegistry(root)
    # seeded plan, one lane so dispatch order is submission order:
    # dispatch 1 loses its worker at the step-1 boundary (resumes from
    # its autocheckpoint); dispatch 2 finds a corrupted cache entry
    # (evict + recompute); at dispatch 3 the run's registry record is
    # torn AND the server dies mid-load — generation 2 must salvage the
    # torn record and finish everything
    chaos = ServiceFaultInjector.from_plan(
        "seed=11 kill_worker@1:1 corrupt_cache@2 torn_record@3 "
        "kill_server@3")
    fleet = WorkerFleet(reg, root / "cache", workers=1, task_timeout=8.0,
                        task_retries=1, chaos=chaos).start()
    recs = [reg.submit(deck(steps=steps), label=f"run{i}")
            for i in range(4)]
    ids = [r.id for r in recs]

    # generation 1 runs until the plan wants the server dead
    t_end = time.monotonic() + 180
    while not chaos.server_kill_due():
        assert time.monotonic() < t_end, "kill_server never came due"
        time.sleep(0.05)
    fleet.stop(abandon=True)  # kill -9: records left as they were

    interrupted = [rid for rid in ids if reg.get(rid).state == "running"]
    fired = chaos.fired_by_kind()
    assert fired.get("kill_worker") == 1
    assert fired.get("corrupt_cache") == 1
    assert fired.get("torn_record") == 1
    assert not chaos.pending(), [s.token() for s in chaos.pending()]
    # the corrupted entry was evicted and recomputed, never served
    assert fleet.cache_evictions >= 1

    # generation 2: fresh registry + fleet over the same root
    reg2 = RunRegistry(root)
    # the mid-flight run's record was torn, so it comes back through
    # salvage (requeued from the run directory's ground truth); any
    # intact running record would come back through orphan requeue
    assert reg2.torn_records_salvaged + reg2.orphans_requeued >= 1
    assert reg2.torn_records_skipped == 0
    fleet2 = WorkerFleet(reg2, root / "cache", workers=1, task_timeout=8.0,
                         task_retries=1, chaos=chaos).start()
    try:
        states = wait_terminal(reg2, ids)
        assert set(states.values()) == {"done"}, states

        resumed = 0
        for rid in ids:
            result = reg2.get(rid).result
            # exactly once: every run completed, with its own deck's
            # step count — a re-run or cross-bleed would show here
            assert result["status"] == "done"
            assert result["steps"] == steps, (
                f"{rid} ran the wrong step count")
            if result.get("resumed"):
                resumed += 1
                assert result["replayed_steps"] <= 1, (
                    f"{rid} replayed {result['replayed_steps']} steps")
            # bitwise identity of the final checkpoint vs the serial pass
            hdr, arrays = checkpoint_arrays(reg2.run_dir(rid) / "chk")
            assert hdr["step"] == ref_header["step"]
            assert hdr["time"] == ref_header["time"]
            assert arrays.keys() == ref.keys()
            for key in ref:
                assert arrays[key].tobytes() == ref[key].tobytes(), (
                    f"{rid} diverged at level/box {key}")

        # the killed worker's run provably took the resume path
        assert resumed >= 1
        assert len(interrupted) <= 1  # one lane: at most one mid-flight
    finally:
        fleet2.stop()


# -- saturation: shedding, Retry-After, idempotent retries -----------------

def test_saturation_sheds_with_429_and_idempotent_retries(tmp_path):
    httpd = make_server(tmp_path / "svc", workers=1, executor="inline",
                        max_queue_depth=1)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    service = httpd.service
    # freeze consumption (NOT admission): the pump must not drain the
    # queue while we probe the shedding path, so stub out claims
    real_claim = service.registry.claim_next
    service.registry.claim_next = lambda: None
    try:
        host, port = httpd.server_address[:2]
        url = f"http://{host}:{port}"
        raw = ServeClient(url, retries=0)

        first = raw.submit(deck=deck())  # fills the queue (depth 1)
        with pytest.raises(ServeError) as exc_info:
            raw.submit(deck=deck())  # over the limit: must be shed
        exc = exc_info.value
        assert exc.status == 429 and exc.retryable
        assert exc.retry_after is not None and exc.retry_after >= 1.0
        assert service.shed_requests == 1
        health = raw.healthz()
        assert health["status"] == "overloaded" and health["ok"] is False

        # an idempotent retry of an ALREADY-ACCEPTED submission bypasses
        # shedding (it adds no depth) and returns the same run — this is
        # what makes "retry on torn response" safe under saturation
        again = raw.submit(deck=deck(),
                           idempotency_key=first["idempotency_key"])
        assert again["id"] == first["id"]
        assert service.registry.deduped_submissions == 1
        stats = raw.stats()
        assert stats["service"]["shed_requests"] == 1
        assert stats["service"]["deduped_submissions"] == 1

        # a retrying client rides the 429 out once capacity returns
        retrier = ServeClient(url, retries=8, backoff_base=0.05,
                              backoff_cap=0.2)
        service.registry.claim_next = real_claim  # resume consumption
        rec = retrier.submit(deck=deck())
        assert rec["id"] != first["id"]
        done = retrier.wait(rec["id"], timeout=120)
        assert done["state"] == "done"
        assert retrier.retry_count >= 1, "the client never had to back off"
        # no duplicates from all the retrying: exactly two runs ever
        # existed (the shed request created none, the idempotent retry
        # deduped onto the first)
        runs = retrier.list()
        assert {r["id"] for r in runs} == {first["id"], rec["id"]}
    finally:
        service.stop()
        httpd.shutdown()
        httpd.server_close()


def test_draining_server_refuses_with_503(tmp_path):
    httpd = make_server(tmp_path / "svc", workers=1, executor="inline")
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = httpd.server_address[:2]
        client = ServeClient(f"http://{host}:{port}", retries=0)
        httpd.service.drain(grace_s=1.0)
        with pytest.raises(ServeError) as exc_info:
            client.submit(deck=deck())
        assert exc_info.value.status == 503
        assert client.healthz()["status"] == "draining"
    finally:
        httpd.service.stop()
        httpd.shutdown()
        httpd.server_close()


# -- the chaos proxy: delayed and truncated HTTP ---------------------------

def test_chaos_proxy_truncation_is_retried_transparently(tmp_path):
    httpd = make_server(tmp_path / "svc", workers=1, executor="inline")
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]
    inj = ServiceFaultInjector.from_plan(
        "seed=3 truncate_http@2:0.3 delay_http@3:0.05")
    proxy = ChaosProxy(f"http://{host}:{port}", inj).start()
    try:
        client = ServeClient(proxy.url, retries=6, backoff_base=0.02,
                             backoff_cap=0.1)
        rec = client.submit(deck=deck())  # request 1: clean
        # request 2 truncated mid-body -> retryable transport error ->
        # request 3 delayed -> succeeds; wait() absorbs all of it
        done = client.wait(rec["id"], timeout=120)
        assert done["state"] == "done"
        assert inj.fired_by_kind().get("truncate_http") == 1
        assert inj.fired_by_kind().get("delay_http") == 1
        # the truncation did not duplicate or lose the run
        assert len(client.list()) == 1
    finally:
        proxy.stop()
        httpd.service.stop()
        httpd.shutdown()
        httpd.server_close()


# -- torn-artifact helpers used directly -----------------------------------

def test_tear_record_and_corrupt_cache_helpers(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    rec = reg.submit(deck())
    torn = tear_record(reg, rec.id)
    assert torn is not None
    with pytest.raises(ValueError):
        json.loads((reg.run_dir(rec.id) / "run.json").read_text())
    assert tear_record(reg, "r99999") is None

    cache = tmp_path / "cache"
    assert corrupt_cache_entry(cache) is None  # empty cache: no-op
    (cache / "coords").mkdir(parents=True)
    entry = cache / "coords" / "aaa.npz"
    entry.write_bytes(b"PK\x03\x04 real-ish bytes")
    hit = corrupt_cache_entry(cache, kind="coords")
    assert hit == str(entry)
    assert b"chaos" in entry.read_bytes()


# -- client backoff unit behavior ------------------------------------------

def test_backoff_delays_are_capped_and_jittered():
    import random

    delays = backoff_delays(base=0.1, cap=0.4, rng=random.Random(1))
    seq = [next(delays) for _ in range(8)]
    assert all(0.0 <= d <= 0.4 for d in seq)
    # the *bound* grows then saturates; with full jitter the samples
    # vary rather than repeating a fixed interval
    assert len(set(seq)) > 1


def test_serve_error_retryable_classification():
    assert ServeError(429, "shed").retryable
    assert ServeError(503, "draining").retryable
    assert ServeError(0, "connection refused").retryable
    assert not ServeError(400, "bad deck").retryable
    assert not ServeError(404, "no run").retryable
