"""HTTP surface: submit/status/metrics/cancel/stats over a real socket."""

import multiprocessing
import threading

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import make_server, read_metrics_tail

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)

DECK = "crocco.case = sod\namr.n_cell = 48\nrun.steps = 3\n"


@pytest.fixture
def service(tmp_path):
    httpd = make_server(tmp_path / "svc", port=0, workers=2,
                        task_timeout=120.0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    client = ServeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    yield client, httpd
    httpd.service.stop()
    httpd.shutdown()
    httpd.server_close()


def test_submit_poll_metrics_roundtrip(service):
    client, httpd = service
    health = client.healthz()
    assert health["ok"] is True and health["status"] == "ok"
    rec = client.submit(deck=DECK, label="e2e")
    assert rec["state"] == "queued" and rec["id"].startswith("r")
    done = client.wait(rec["id"], timeout=120)
    assert done["state"] == "done"
    assert done["result"]["steps"] == 3
    # live-progress block carries the observability gauges
    assert done["progress"]["step"] == 3
    assert any(k.startswith(("perf.", "runtime."))
               for k in done["progress"]["gauges"])
    m = client.metrics(rec["id"])
    assert len(m["records"]) == 3
    assert client.metrics(rec["id"], tail=1)["records"][0]["step"] == 3
    runs = client.list(state="done")
    assert any(r["id"] == rec["id"] for r in runs)


def test_submit_via_keys_mapping(service):
    client, _ = service
    rec = client.submit(keys={"crocco.case": "sod", "amr.n_cell": 48,
                              "run.steps": 2})
    done = client.wait(rec["id"], timeout=120)
    assert done["state"] == "done"
    assert done["result"]["case"] == "sod"


def test_bad_submissions_are_400(service):
    client, _ = service
    with pytest.raises(ServeError) as err:
        client.submit()  # neither deck nor keys
    assert err.value.status == 400
    with pytest.raises(ServeError) as err:
        client.submit(deck="this is not a deck line")
    assert err.value.status == 400  # rejected at submission, not run time


def test_unknown_run_is_404(service):
    client, _ = service
    with pytest.raises(ServeError) as err:
        client.status("r99999")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        client.cancel("r99999")
    assert err.value.status == 404


def test_cancel_queued_run_via_http(service):
    client, httpd = service
    # saturate both lanes, then queue one more and cancel it
    busy = [client.submit(deck="crocco.case = sod\namr.n_cell = 64\n"
                          "run.steps = 400\n") for _ in range(2)]
    queued = client.submit(deck=DECK)
    out = client.cancel(queued["id"])
    assert out["state"] in ("cancelled", "cancelling")
    for b in busy:
        client.cancel(b["id"])
    done = client.wait(queued["id"], timeout=60)
    assert done["state"] == "cancelled"


def test_stats_reports_fleet_and_cache(service):
    client, _ = service
    a = client.submit(deck=DECK)
    b = client.submit(deck=DECK)
    client.wait(a["id"], timeout=120)
    client.wait(b["id"], timeout=120)
    stats = client.stats()
    assert stats["runs"]["done"] == 2
    fleet = stats["fleet"]
    assert fleet["workers"] == 2
    assert fleet["completed_runs"] == 2
    assert fleet["cache_hit_rate"] is not None


def test_read_metrics_tail_tolerates_partial_line(tmp_path):
    p = tmp_path / "metrics.jsonl"
    p.write_text('{"step": 1, "time": 0.1, "metrics": {"dt": 1e-3}}\n'
                 '{"step": 2, "time"')  # truncated mid-write
    records = read_metrics_tail(p)
    assert [r["step"] for r in records] == [1]
    assert read_metrics_tail(tmp_path / "absent.jsonl") == []
