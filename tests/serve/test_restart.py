"""Restart reconciliation across REAL server processes.

Two drills, each spanning two generations of ``python -m repro.serve``
over one registry directory:

- **crash**: the first server (and its whole process group, i.e. the
  pool workers too) is SIGKILLed mid-run.  The second generation must
  requeue the orphaned ``running`` record, resume it from its
  autocheckpoint, and finish every submitted run exactly once.
- **drain**: the first server gets SIGTERM, checkpoints its in-flight
  run, requeues it and exits within the grace window; the second
  generation resumes the drained run to completion.
"""

import json
import multiprocessing
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="server fleet pool needs the fork start method",
)

REPO = Path(__file__).resolve().parents[2]
DECK_LONG = ("crocco.case = sod\namr.n_cell = 32\nrun.steps = 400\n"
             "run.checkpoint = chk\n")
DECK_SHORT = ("crocco.case = sod\namr.n_cell = 32\nrun.steps = 2\n"
              "run.checkpoint = chk\n")


def start_server(root, timeout=60.0):
    """Launch ``python -m repro.serve`` in its own process group.

    Returns ``(proc, url)``; the ephemeral port is parsed from the
    banner line.  ``start_new_session`` puts the server AND its forked
    pool workers in one killable process group — ``kill -9`` on the
    group is the whole-node-died simulation (killing just the parent
    would leave orphan workers finishing runs behind the test's back).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--root", str(root),
         "--port", "0", "--workers", "1", "--drain-grace", "30"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, start_new_session=True)
    t_end = time.monotonic() + timeout
    banner = ""
    while time.monotonic() < t_end:
        banner = proc.stdout.readline()
        if "listening on" in banner:
            break
        if proc.poll() is not None:
            raise AssertionError(
                f"server died on startup: {banner}{proc.stdout.read()}")
    match = re.search(r"http://[\d.]+:\d+", banner)
    assert match, f"no listen banner within {timeout}s: {banner!r}"
    return proc, match.group(0)


def kill_group(proc):
    """SIGKILL the server's whole process group (server + workers)."""
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=10)


def wait_running_with_checkpoint(root, run_id, timeout=90.0):
    """Block until the run is mid-flight with >= 1 autocheckpoint saved.

    A checkpoint counts only once its Header is published — a bare
    ``.partial`` directory is an in-progress save that a kill would
    legitimately leave unresumable.
    """
    autochk = Path(root) / "runs" / run_id / "autochk"
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        if autochk.is_dir() and any(
                (p / "Header").exists() for p in autochk.iterdir()):
            return
        time.sleep(0.05)
    raise AssertionError(f"{run_id} never saved an autocheckpoint")


def read_record(root, run_id):
    return json.loads(
        (Path(root) / "runs" / run_id / "run.json").read_text())


def test_sigkill_mid_run_next_generation_resumes_exactly_once(tmp_path):
    root = tmp_path / "svc"
    proc, url = start_server(root)
    try:
        client = ServeClient(url, retries=3)
        short = client.submit(deck=DECK_SHORT)
        assert client.wait(short["id"], timeout=90)["state"] == "done"
        long = client.submit(deck=DECK_LONG)
        wait_running_with_checkpoint(root, long["id"])
    finally:
        kill_group(proc)  # the node dies: no drain, no cleanup

    # on disk: the short run is terminal, the long one a running orphan
    assert read_record(root, short["id"])["state"] == "done"
    assert read_record(root, long["id"])["state"] == "running"

    proc2, url2 = start_server(root)
    try:
        client2 = ServeClient(url2, retries=3)
        done = client2.wait(long["id"], timeout=180)
        assert done["state"] == "done"
        # the orphan was requeued (attempt 2), resumed from its
        # checkpoint (bounded replay), and ran to its full step count
        assert done["attempts"] >= 2
        assert done["requeues"] >= 1
        result = done["result"]
        assert result["steps"] == 400
        assert result["resumed"] is True
        assert result["replayed_steps"] <= 1
        # the finished run was NOT re-executed by the restart
        again = client2.status(short["id"])
        assert again["state"] == "done" and again["attempts"] == 1
        # recovery accounting is visible at the service surface
        service = client2.stats()["service"]
        assert service["orphans_requeued"] == 1
        assert service["resumes"] >= 1
        assert service["replayed_steps"] <= 1
    finally:
        proc2.send_signal(signal.SIGTERM)
        out, _ = proc2.communicate(timeout=60)
        assert "stopped" in out


def test_sigterm_drains_to_checkpoint_and_restart_resumes(tmp_path):
    root = tmp_path / "svc"
    proc, url = start_server(root)
    client = ServeClient(url, retries=3)
    try:
        rec = client.submit(deck=DECK_LONG)
        wait_running_with_checkpoint(root, rec["id"])
    finally:
        proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=90)
    assert "draining" in out and "stopped" in out

    # graceful exit: the run was suspended to a checkpoint and requeued
    on_disk = read_record(root, rec["id"])
    assert on_disk["state"] == "queued"
    assert on_disk["requeues"] >= 1
    assert "drain" in on_disk["reason"]
    autochk = Path(root) / "runs" / rec["id"] / "autochk"
    assert autochk.is_dir() and any(autochk.iterdir())

    proc2, url2 = start_server(root)
    try:
        client2 = ServeClient(url2, retries=3)
        done = client2.wait(rec["id"], timeout=180)
        assert done["state"] == "done"
        result = done["result"]
        assert result["steps"] == 400
        assert result["resumed"] is True
        assert result["resume_step"] >= 1
        assert result["replayed_steps"] <= 1
        # a drained run is a requeue, not an orphan: reconciliation at
        # startup found nothing to repair
        assert client2.stats()["service"]["orphans_requeued"] == 0
    finally:
        proc2.send_signal(signal.SIGTERM)
        proc2.communicate(timeout=60)
