"""The shared worker fleet: scheduling, budgets, failure recovery.

Covers the resilience satellite: a worker dying mid-run with other runs
queued (no cross-run state bleed, registry stays consistent), a
saturated fleet draining its queue, and degradation to inline execution
when the pool is beyond saving.
"""

import multiprocessing
import time

import pytest

from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet pool needs the fork start method",
)


def deck(steps=2, ncell=32):
    return (f"crocco.case = sod\namr.n_cell = {ncell}\n"
            f"run.steps = {steps}\n")


def wait_terminal(reg, run_ids, timeout=90.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        states = {rid: reg.get(rid).state for rid in run_ids}
        if all(s in ("done", "failed", "cancelled") for s in states.values()):
            return states
        time.sleep(0.05)
    raise AssertionError(f"runs never finished: {states}")


@pytest.fixture
def svc(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    made = []

    def build(**kw):
        kw.setdefault("workers", 2)
        kw.setdefault("task_timeout", 120.0)
        fleet = WorkerFleet(reg, tmp_path / "svc" / "cache", **kw).start()
        made.append(fleet)
        return reg, fleet

    yield build
    for fleet in made:
        fleet.stop()


def test_saturated_fleet_drains_queue_without_bleed(svc):
    reg, fleet = svc(workers=1)  # every run queues behind one lane
    recs = [reg.submit(deck(steps=s), label=f"s{s}") for s in (2, 3, 4)]
    states = wait_terminal(reg, [r.id for r in recs])
    assert set(states.values()) == {"done"}
    # no cross-run bleed: each run's result reflects its own deck
    for rec, steps in zip(recs, (2, 3, 4)):
        result = reg.get(rec.id).result
        assert result["steps"] == steps, f"{rec.id} ran the wrong deck"
        assert result["status"] == "done"
    assert fleet.snapshot()["completed_runs"] == 3


def test_priority_order_on_single_lane(svc):
    reg, fleet = svc(workers=1)
    # the first run occupies the lane; of the rest, highest priority wins
    first = reg.submit(deck(steps=2))
    low = reg.submit(deck(steps=2), priority=0)
    high = reg.submit(deck(steps=2), priority=7)
    wait_terminal(reg, [first.id, low.id, high.id])
    t_high = reg.get(high.id).started_at
    t_low = reg.get(low.id).started_at
    assert t_high <= t_low, "high-priority run started after low-priority"


def test_worker_death_midrun_with_queue(svc):
    """A killed worker's run is re-dispatched; queued runs still finish."""
    reg, fleet = svc(workers=1, task_timeout=4.0, task_retries=1)
    fleet.fault_next = ("kill",)  # next dispatched run dies mid-flight
    victim = reg.submit(deck(steps=2), label="victim")
    bystander = reg.submit(deck(steps=3), label="bystander")
    states = wait_terminal(reg, [victim.id, bystander.id], timeout=120.0)
    assert states == {victim.id: "done", bystander.id: "done"}
    # the victim really did take the recovery path
    assert fleet.stats.get("pool_restarts") >= 1
    assert reg.get(victim.id).result["steps"] == 2
    assert reg.get(bystander.id).result["steps"] == 3
    assert reg.counts()["running"] == 0  # registry fully reconciled


def test_degrades_to_inline_when_pool_unrecoverable(svc):
    """Past the restart budget the fleet runs inline instead of dropping."""
    reg, fleet = svc(workers=1, task_timeout=3.0, task_retries=0,
                     max_pool_restarts=0)
    fleet.fault_next = ("kill",)
    first = reg.submit(deck(steps=2))
    later = reg.submit(deck(steps=2))
    states = wait_terminal(reg, [first.id, later.id], timeout=120.0)
    assert states[first.id] == "done"  # finished inline after the respawn
    assert states[later.id] == "done"
    assert fleet.degraded
    assert fleet.stats.get("degraded_to_serial") == 1


def test_sim_failure_is_a_result_not_a_retry(svc):
    reg, fleet = svc(workers=1)
    bad = reg.submit("crocco.case = nosuchcase\nrun.steps = 1\n")
    ok = reg.submit(deck(steps=2))
    states = wait_terminal(reg, [bad.id, ok.id])
    assert states[bad.id] == "failed"
    assert "nosuchcase" in reg.get(bad.id).reason
    assert states[ok.id] == "done"
    # a deck failure is a result, not a worker death: no pool restarts
    assert fleet.stats.get("pool_restarts") == 0


def test_step_budget_cancels_through_watchdog(svc):
    reg, fleet = svc(workers=1)
    rec = reg.submit(deck(steps=50), max_steps=3)
    states = wait_terminal(reg, [rec.id])
    assert states[rec.id] == "cancelled"
    back = reg.get(rec.id)
    assert "budget" in back.reason
    assert back.result["steps"] == 3  # stopped exactly at the budget


def test_cancel_flag_stops_running_run(svc):
    reg, fleet = svc(workers=1)
    rec = reg.submit(deck(steps=2000, ncell=64))
    t_end = time.monotonic() + 60
    while reg.get(rec.id).state != "running" and time.monotonic() < t_end:
        time.sleep(0.02)
    assert reg.get(rec.id).state == "running"
    time.sleep(0.3)  # let it take a few steps first
    reg.cancel(rec.id)
    states = wait_terminal(reg, [rec.id], timeout=60.0)
    assert states[rec.id] == "cancelled"
    assert reg.get(rec.id).reason == "cancelled by request"


def test_inline_fleet_executes_without_a_pool(tmp_path):
    reg = RunRegistry(tmp_path / "svc")
    fleet = WorkerFleet(reg, tmp_path / "svc" / "cache",
                        executor="inline").start()
    try:
        recs = [reg.submit(deck(steps=2)) for _ in range(2)]
        states = wait_terminal(reg, [r.id for r in recs])
        assert set(states.values()) == {"done"}
        # the second run hit the cache the first one populated
        assert fleet.cache_hit_rate() is not None
        assert fleet.cache_hit_rate() > 0
    finally:
        fleet.stop()


def test_cross_run_cache_shared_across_worker_processes(svc):
    reg, fleet = svc(workers=1)
    a = reg.submit(deck(steps=2))
    b = reg.submit(deck(steps=2))
    wait_terminal(reg, [a.id, b.id])
    # second identical config must be served from the shared cache
    rb = reg.get(b.id).result
    assert rb["cache_hit_rate"] == 1.0
    assert fleet.cache_hit_rate() is not None and fleet.cache_hit_rate() >= 0.5
