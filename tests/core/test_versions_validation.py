"""Tests for the version matrix and L2 validation helpers."""

import numpy as np
import pytest

from repro.core.validation import l2_difference
from repro.core.versions import VERSIONS, get_version


def test_version_matrix_matches_paper():
    assert get_version("1.0").backend == "fortran"
    assert not get_version("1.0").amr
    assert get_version("1.1").backend == "cpp"
    assert not get_version("1.1").amr
    assert get_version("1.2").backend == "cpp"
    assert get_version("1.2").amr
    assert get_version("2.0").backend == "gpu"
    assert get_version("2.0").interpolator == "curvilinear"
    assert get_version("2.1").backend == "gpu"
    assert get_version("2.1").interpolator == "trilinear"


def test_parallelcopy_flag():
    """Only the AMR versions with the custom interpolator do the global copy."""
    assert not get_version("1.1").uses_global_parallelcopy
    assert get_version("1.2").uses_global_parallelcopy
    assert get_version("2.0").uses_global_parallelcopy
    assert not get_version("2.1").uses_global_parallelcopy


def test_unknown_version():
    with pytest.raises(KeyError):
        get_version("3.0")


def test_gpu_flag():
    assert not VERSIONS["1.2"].on_gpu
    assert VERSIONS["2.0"].on_gpu


def test_l2_difference():
    a = np.zeros(100)
    b = np.full(100, 3.0)
    assert l2_difference(a, b) == pytest.approx(3.0)
    assert l2_difference(a, a) == 0.0
    with pytest.raises(ValueError):
        l2_difference(np.zeros(3), np.zeros(4))


def test_error_norms_and_observed_order():
    from repro.cases.vortex import IsentropicVortex
    from repro.core.crocco import Crocco, CroccoConfig
    from repro.core.validation import error_norms, observed_order

    errs = []
    for n in (16, 32):
        case = IsentropicVortex(ncells=n)
        sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32))
        sim.initialize()
        while sim.time < 0.3:
            sim.step()
        norms = error_norms(sim)
        assert set(norms) == {"rho", "T", "u0", "u1"}
        for v in norms.values():
            assert v["L1"] <= v["L2"] <= v["Linf"]
        errs.append(norms["rho"]["L2"])
    orders = observed_order(errs)
    assert len(orders) == 1
    assert orders[0] > 2.0  # high-order scheme on smooth data

    with pytest.raises(ValueError):
        observed_order([1.0])
    with pytest.raises(ValueError):
        observed_order([1.0, -1.0])


def test_error_norms_requires_exact_solution():
    from repro.cases.dmr import DoubleMachReflection
    from repro.core.crocco import Crocco, CroccoConfig
    from repro.core.validation import error_norms

    case = DoubleMachReflection(ncells=(32, 8))
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32))
    sim.initialize()
    sim.step()  # exact_solution returns None after t > 0? it's defined at any t
    # DMR has no exact_solution override beyond the base's None
    with pytest.raises(ValueError):
        error_norms(sim)
