"""Integration tests for the CRoCCo driver."""

import numpy as np
import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.cases.shocktube import SodShockTube
from repro.cases.vortex import IsentropicVortex
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.validation import compare_states


def run_sod(version="1.1", t_end=0.1, **kw):
    case = SodShockTube(ncells=64)
    sim = Crocco(case, CroccoConfig(version=version, nranks=1, max_grid_size=64,
                                    **kw))
    sim.initialize()
    while sim.time < t_end:
        sim.step()
    return case, sim


def test_sod_matches_exact_riemann():
    case, sim = run_sod(t_end=0.15)
    fab = sim.state[0].fab(0)
    coords = sim.coords[0].fab(0).valid()
    exact = case.exact_solution(coords, sim.time)
    err = np.abs(fab.valid()[0] - exact[0])
    assert err.mean() < 0.02  # 64 cells: shock/contact smeared over a few
    # plateaus hit the exact star states
    x = coords[0]
    star_right = (x > 0.66) & (x < 0.73)  # between contact (0.64) and shock (0.76)
    assert np.abs(fab.valid()[0][star_right] - 0.26557).max() < 0.02


def test_sod_mass_conservation_until_outflow():
    case, sim = run_sod(t_end=0.1)
    # waves have not reached the boundaries: total mass is conserved
    # not bit-exact: after enough steps the numerical domain of dependence
    # reaches the open boundaries and tiny fluxes cross them
    assert sim.total_mass() == pytest.approx(0.5625, rel=1e-6)


def test_fixed_dt_and_history():
    case = SodShockTube(32)
    sim = Crocco(case, CroccoConfig(version="1.1", fixed_dt=1e-4, max_grid_size=32))
    sim.initialize()
    sim.run(3)
    assert sim.dt_history == [1e-4] * 3
    assert sim.time == pytest.approx(3e-4)


def test_profiler_regions_recorded():
    case, sim = run_sod(t_end=0.01)
    top = sim.profiler.top_level()
    for name in ("Init", "ComputeDt", "Advance"):
        assert name in top
    assert sim.profiler.calls("FillPatch") >= 3 * sim.step_count
    assert sim.profiler.calls("BC_Fill") >= 3 * sim.step_count


def test_fortran_vs_cpp_l2_plateau():
    """Sec. IV-A: the translation drift stays at machine-precision levels."""
    case_f, sim_f = run_sod("1.0", t_end=0.05)
    case_c, sim_c = run_sod("1.1", t_end=0.05)
    assert sim_f.step_count == sim_c.step_count
    diffs = compare_states(sim_f, sim_c)
    # small but (generically) nonzero: different accumulation order
    for var, d in diffs.items():
        assert d < 1e-7, (var, d)
    assert max(diffs.values()) > 0.0


def test_gpu_bitwise_matches_cpp():
    """Sec. IV-C: no change in accuracy when running on (simulated) GPUs."""
    _, sim_c = run_sod("1.1", t_end=0.02)
    case = SodShockTube(ncells=64)
    sim_g = Crocco(case, CroccoConfig(version="2.0", nranks=1, max_grid_size=64))
    sim_g.initialize()
    while sim_g.time < 0.02:
        sim_g.step()
    diffs = compare_states(sim_c, sim_g)
    assert max(diffs.values()) == 0.0


def test_dmr_stability_and_reflection():
    case = DoubleMachReflection(ncells=(64, 16))
    sim = Crocco(case, CroccoConfig(version="1.1", nranks=2, ranks_per_node=1,
                                    max_grid_size=32))
    sim.initialize()
    while sim.time < 0.02:
        sim.step()
    mn, mx = sim.min_max(0)
    assert mn > 1.0  # no vacuum
    assert mx > 8.5  # reflection amplifies density beyond the inflow jump
    assert not sim.state[0].contains_nan()


def test_dmr_amr_refines_the_shock():
    case = DoubleMachReflection(ncells=(64, 16))
    sim = Crocco(case, CroccoConfig(version="1.2", nranks=2, ranks_per_node=1,
                                    max_level=1, max_grid_size=32,
                                    blocking_factor=8, regrid_int=2))
    sim.initialize()
    assert sim.finest_level == 1
    savings = sim.amr_savings()
    assert 0.3 < savings < 1.0
    # run a little and confirm the fine level tracks the moving shock
    ba_before = sim.box_arrays[1]
    while sim.time < 0.015:
        sim.step()
    assert not sim.state[0].contains_nan()
    assert sim.box_arrays[1] != ba_before  # regrid followed the shock


def test_curvilinear_matches_cartesian_dmr_coarsely():
    """The stretched-grid curvilinear solution approximates the Cartesian one."""
    t_end = 0.01
    sims = {}
    for curv in (False, True):
        case = DoubleMachReflection(ncells=(64, 16), curvilinear=curv)
        sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
        sim.initialize()
        while sim.time < t_end:
            sim.step()
        sims[curv] = sim
    # compare density range (fields live on different grids)
    for curv, sim in sims.items():
        mn, mx = sim.min_max(0)
        assert mn > 1.0
        assert 8.0 < mx < 25.0


def test_version20_has_global_parallelcopy_21_does_not():
    """The 2.0 vs 2.1 ablation: coordinate gathers dominate ParallelCopy."""
    traffic = {}
    for version in ("2.0", "2.1"):
        case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
        sim = Crocco(case, CroccoConfig(version=version, nranks=2,
                                        ranks_per_node=1, max_level=1,
                                        max_grid_size=32, regrid_int=4))
        sim.initialize()
        sim.comm.ledger.clear()
        sim.step()
        traffic[version] = sim.comm.ledger.total_bytes("parallelcopy")
    assert traffic["2.0"] > 3 * traffic["2.1"]


def test_gpu_device_accounting_in_driver():
    # driver-side launch accounting: offloaded pool tasks keep their
    # launch records in the worker process, so pin the serial executor
    case = SodShockTube(32)
    sim = Crocco(case, CroccoConfig(version="2.0", max_grid_size=32,
                                    executor="serial"))
    sim.initialize()
    assert sim.kernels.device.bytes_in_use > 0  # level state resident
    sim.run(2)
    names = set(sim.kernels.device.launches_by_kernel())
    assert {"WENOx", "Update", "ComputeDt"} <= names


def test_coords_file_ablation_runs():
    case = SodShockTube(32)
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32,
                                    coords_source="file"))
    sim.initialize()
    sim.run(1)
    assert sim.profiler.total("getCoords_fileIO") > 0.0
    sim.close()


def test_invalid_config_rejected():
    case = SodShockTube(32)
    with pytest.raises(ValueError):
        Crocco(case, CroccoConfig(coords_source="network"))
    with pytest.raises(ValueError):
        Crocco(case, CroccoConfig(interpolator="spectral"))
    with pytest.raises(KeyError):
        Crocco(case, CroccoConfig(version="9.9"))


def test_vortex_amr_preserves_accuracy():
    """AMR on a smooth vortex: solution stays close to the uniform run."""
    t_end = 0.2
    case = IsentropicVortex(ncells=32)
    uni = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32))
    uni.initialize()
    while uni.time < t_end:
        uni.step()
    case2 = IsentropicVortex(ncells=32)
    case2.tag_threshold = 0.01
    amr = Crocco(case2, CroccoConfig(version="1.2", max_level=1,
                                     max_grid_size=32, blocking_factor=4,
                                     regrid_int=4, interpolator="conservative"))
    amr.initialize()
    assert amr.finest_level == 1
    while amr.time < t_end:
        amr.step()
    # both should track the exact solution
    for sim, c in ((uni, case), (amr, case2)):
        errs = []
        for i, fab in sim.state[0]:
            coords = sim.coords[0].fab(i).valid()
            exact = c.exact_solution(coords, sim.time)
            errs.append(np.abs(fab.valid()[0] - exact[0]).max())
        assert max(errs) < 0.05


def test_per_rank_gpu_devices():
    """Summit runs one rank per GPU: each rank gets its own device arena."""
    case = SodShockTube(64)
    sim = Crocco(case, CroccoConfig(version="2.0", nranks=2, ranks_per_node=2,
                                    max_grid_size=32))
    sim.initialize()
    report = sim.gpu_memory_report()
    assert len(report) == 2
    # both ranks own one 32-cell box: identical residency
    assert report[0][1] == report[1][1] > 0
    sim.run(1)
    # kernel launches land on the owning rank's device
    assert len(sim.devices[0].launches) > 0
    assert len(sim.devices[1].launches) > 0


def test_cpu_backend_has_no_devices():
    sim = Crocco(SodShockTube(32), CroccoConfig(version="1.1", max_grid_size=32))
    assert sim.devices is None
    assert sim.gpu_memory_report() is None


def test_device_memory_freed_on_level_clear():
    from repro.cases.dmr import DoubleMachReflection

    case = DoubleMachReflection(ncells=(64, 16))
    sim = Crocco(case, CroccoConfig(version="2.0", nranks=2, ranks_per_node=2,
                                    max_level=1, max_grid_size=32,
                                    regrid_int=1))
    sim.initialize()
    used_before = sum(d.bytes_in_use for d in sim.devices)
    assert used_before > 0
    # force the fine level away (no tags)
    import numpy as np

    sim.error_est = lambda lev: np.empty((0, 2), dtype=np.int64)
    sim.regrid()
    used_after = sum(d.bytes_in_use for d in sim.devices)
    assert sim.finest_level == 0
    assert used_after < used_before


def test_mixed_precision_driver_run():
    """The paper's mixed-precision future-work mode runs end to end."""
    from dataclasses import replace

    case = SodShockTube(64)
    sim = Crocco(case, CroccoConfig(version="2.0", max_grid_size=64))
    sim.kernels = replace(sim.kernels, precision="mixed")
    sim.initialize()
    sim.run(5)
    assert not sim.state[0].contains_nan()
    with pytest.raises(ValueError):
        replace(sim.kernels, precision="half")
    with pytest.raises(ValueError):
        Crocco(case, CroccoConfig(version="1.1", max_grid_size=64)) and \
            replace(Crocco(case, CroccoConfig(version="1.1",
                                              max_grid_size=64)).kernels,
                    precision="mixed")


def test_dmr_3d_runs_with_periodic_spanwise():
    """The paper solves the DMR in 3D with a spanwise-homogeneous z
    direction; a short 3D run must stay spanwise-uniform and stable."""
    case = DoubleMachReflection(ncells=(32, 8, 8))
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32))
    sim.initialize()
    sim.run(3)
    assert not sim.state[0].contains_nan()
    for i, fab in sim.state[0]:
        v = fab.valid()
        # spanwise homogeneity is preserved exactly (no z-variation in IC
        # or BCs, periodic z)
        assert np.allclose(v[..., 0], v[..., -1])
    mn, mx = sim.min_max(0)
    assert mn > 1.0 and mx > 7.0


def test_momentum_tagging_config():
    case = DoubleMachReflection(ncells=(64, 16))
    sim = Crocco(case, CroccoConfig(version="1.2", max_level=1,
                                    max_grid_size=32, tagging="momentum"))
    sim.initialize()
    assert sim.finest_level == 1  # momentum gradients also find the shock


def test_auto_regrid_interval():
    """regrid_int="auto" derives the cadence from the CFL condition."""
    case = DoubleMachReflection(ncells=(64, 16))
    sim = Crocco(case, CroccoConfig(version="1.2", max_level=1,
                                    max_grid_size=32, regrid_int="auto"))
    sim.initialize()
    interval = sim.regrid_interval()
    # smallest fine patch is >= blocking_factor=8 cells: interval >= (4-1)/0.5
    assert interval >= 3
    regrids_before = sim.profiler.calls("Regrid")
    sim.run(interval + 1)
    assert sim.profiler.calls("Regrid") >= regrids_before + 1
    # fixed interval still honored
    sim2 = Crocco(DoubleMachReflection(ncells=(64, 16)),
                  CroccoConfig(version="1.2", max_level=1, max_grid_size=32,
                               regrid_int=3))
    assert sim2.regrid_interval() == 3
