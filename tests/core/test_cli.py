"""Tests for the command-line driver."""

import numpy as np
import pytest

from repro.cli import build_case, main
from repro.io.inputs import InputDeck
from repro.io.plotfile import read_plotfile_header


def write_deck(tmp_path, text):
    p = tmp_path / "inputs"
    p.write_text(text)
    return str(p)


def test_build_case_variants():
    assert build_case(InputDeck.parse("crocco.case = sod\namr.n_cell = 64")).name == "sod"
    assert build_case(InputDeck.parse("crocco.case = vortex")).name == "vortex"
    dmr = build_case(InputDeck.parse(
        "crocco.case = dmr\namr.n_cell = 64 16\ncrocco.curvilinear = true"))
    assert dmr.name == "dmr" and dmr.curvilinear
    assert build_case(InputDeck.parse("crocco.case = ignition")).name == "ignition"
    with pytest.raises(SystemExit):
        build_case(InputDeck.parse("crocco.case = warp"))


def test_cli_runs_sod_and_writes_plotfile(tmp_path, capsys):
    deck = write_deck(tmp_path, """
crocco.case = sod
crocco.version = 1.1
amr.n_cell = 64
amr.max_grid_size = 64
run.steps = 3
run.report_every = 1
""")
    out_dir = tmp_path / "plt"
    rc = main([deck, "--plotfile", str(out_dir), "--profile"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "step     3" in text
    assert "TinyProfiler" in text
    assert "CommLedger summary" in text
    header = read_plotfile_header(out_dir)
    assert header["step"] == 3


def test_cli_profile_off_by_default(tmp_path, capsys):
    deck = write_deck(tmp_path, """
crocco.case = sod
crocco.version = 1.1
amr.n_cell = 32
amr.max_grid_size = 32
run.steps = 1
run.report_every = 0
""")
    assert main([deck]) == 0
    text = capsys.readouterr().out
    assert "TinyProfiler" not in text


def test_cli_record_and_report_round_trip(tmp_path, capsys):
    deck = write_deck(tmp_path, """
crocco.case = sod
crocco.version = 1.1
amr.n_cell = 32
amr.max_grid_size = 32
run.steps = 2
run.report_every = 0
""")
    run_dir = tmp_path / "run"
    assert main([deck, "--record", str(run_dir)]) == 0
    assert (run_dir / "trace.json").exists()
    assert (run_dir / "metrics.jsonl").exists()
    capsys.readouterr()

    from repro.observability.report import main as report_main

    assert report_main([str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "hot regions" in out
    assert "Advance" in out


def test_cli_time_target(tmp_path, capsys):
    deck = write_deck(tmp_path, """
crocco.case = sod
crocco.version = 1.1
amr.n_cell = 32
amr.max_grid_size = 32
run.time = 1e-3
run.report_every = 0
""")
    rc = main([deck])
    assert rc == 0
    out = capsys.readouterr().out
    # the final progress line reports a time at/just past the target
    import re

    times = [float(m) for m in re.findall(r"t = ([0-9.e+-]+) ", out)]
    assert times and times[-1] >= 1e-3


def test_cli_step_override(tmp_path, capsys):
    deck = write_deck(tmp_path, """
crocco.case = vortex
crocco.version = 2.1
amr.n_cell = 32
amr.max_grid_size = 32
run.steps = 50
""")
    rc = main([deck, "--steps", "2"])
    assert rc == 0
    assert "step     2" in capsys.readouterr().out


def test_cli_checkpoint_restart_cycle(tmp_path, capsys):
    chk = tmp_path / "chk"
    deck1 = write_deck(tmp_path, f"""
crocco.case = sod
crocco.version = 1.1
amr.n_cell = 32
amr.max_grid_size = 32
run.steps = 2
run.report_every = 0
run.checkpoint = {chk}
""")
    assert main([deck1]) == 0
    deck2 = write_deck(tmp_path, f"""
crocco.case = sod
crocco.version = 1.1
amr.n_cell = 32
amr.max_grid_size = 32
run.steps = 4
run.report_every = 0
run.restart = {chk}
""")
    assert main([deck2]) == 0
    out = capsys.readouterr().out
    assert "restarted from" in out
    assert "step     4" in out


class TestConfigValidation:
    """Bad runtime configuration exits 2 with a message, not a traceback."""

    DECK = """
crocco.case = sod
amr.n_cell = 32
run.steps = 1
"""

    def test_nonnumeric_repro_workers_env(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        assert main([write_deck(tmp_path, self.DECK)]) == 2
        err = capsys.readouterr().err
        assert "REPRO_WORKERS must be an integer" in err
        assert "Traceback" not in err

    def test_zero_workers_in_deck(self, tmp_path, capsys):
        deck = write_deck(tmp_path, self.DECK + "runtime.workers = 0\n")
        assert main([deck]) == 2
        err = capsys.readouterr().err
        assert "workers must be >= 1" in err

    def test_unknown_executor_in_deck(self, tmp_path, capsys):
        deck = write_deck(tmp_path, self.DECK + "runtime.executor = turbo\n")
        assert main([deck]) == 2
        err = capsys.readouterr().err
        assert "unknown executor 'turbo'" in err
        assert "serial" in err  # the message lists the valid options
