"""Tests for diagnostics (incl. shock-speed validation) and safeguards."""

import math

import numpy as np
import pytest

from repro.cases.dmr import DoubleMachReflection, SHOCK_ANGLE_DEG, SHOCK_MACH
from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.diagnostics import (
    DiagnosticsLog,
    measure_shock_speed,
    shock_position,
)
from repro.core.safeguards import PositivityGuard, attach_guard
from repro.numerics.eos import IdealGasEOS
from repro.numerics.state import StateLayout


def test_diagnostics_time_series():
    case = SodShockTube(64)
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    sim.initialize()
    log = DiagnosticsLog(sim)
    log.sample()
    for _ in range(5):
        sim.step()
        log.sample()
    assert len(log.records) == 6
    # mass conserved to high precision in the interior-dominated phase
    assert log.drift("mass") < 1e-9
    assert log.drift("energy") < 1e-9
    # the expansion/compression changes pressure extrema
    assert log.series("p_min")[-1] < 1.0
    assert log.records[0].rho_max == pytest.approx(1.0)


def test_dmr_incident_shock_speed_matches_theory():
    """The shock trace moves at M / sin(beta): the paper's Sec. V-B physics."""
    case = DoubleMachReflection(ncells=(128, 32))
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    sim.initialize()
    sim.run(5)  # let startup transients clear
    speed = measure_shock_speed(sim, nsteps=25, y_frac=0.9)
    expected = SHOCK_MACH / math.sin(math.radians(SHOCK_ANGLE_DEG))
    assert speed == pytest.approx(expected, rel=0.08)


def test_shock_position_initial():
    case = DoubleMachReflection(ncells=(128, 32))
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    sim.initialize()
    x = shock_position(sim, y_frac=0.5)
    assert x == pytest.approx(float(case.shock_x(np.array(0.5), 0.0)), abs=0.1)


def test_positivity_guard_noop_on_healthy_state():
    lay = StateLayout(dim=1)
    eos = IdealGasEOS()
    u = eos.conservative(lay, np.ones(16), np.zeros((1, 16)), np.ones(16))
    g = PositivityGuard()
    assert g.apply(lay, eos, u) == 0
    assert g.total_interventions == 0


def test_positivity_guard_repairs_bad_cells():
    lay = StateLayout(dim=1)
    eos = IdealGasEOS()
    u = eos.conservative(lay, np.ones(16), np.full((1, 16), 2.0), np.ones(16))
    u[0, 3] = -1.0  # negative density
    u[2, 7] = 0.0  # energy below kinetic -> negative internal energy
    g = PositivityGuard()
    touched = g.apply(lay, eos, u, step=4)
    assert touched == 2
    assert g.interventions == {4: 2}
    rho = lay.density(u)
    assert rho.min() >= g.rho_floor
    e_int = u[lay.energy] - lay.kinetic_energy(u)
    assert e_int.min() >= g.e_int_floor * (1 - 1e-12)
    # momentum killed in the floored-density cell
    assert u[1, 3] == 0.0


def test_attach_guard_to_driver():
    case = DoubleMachReflection(ncells=(64, 16))
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    sim.initialize()
    guard = attach_guard(sim)
    sim.run(3)
    # the DMR at this resolution is healthy: no interventions expected
    assert guard.total_interventions == 0
    assert not sim.state[0].contains_nan()
