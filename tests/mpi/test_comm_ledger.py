"""Tests for the simulated communicator and message ledger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.comm import Communicator, SerialComm
from repro.mpi.ledger import CommLedger, Message


def test_message_local_flag():
    assert Message(2, 2, 100, "fillboundary").local
    assert not Message(1, 2, 100, "fillboundary").local


def test_ledger_record_and_query():
    led = CommLedger(ranks_per_node=2)
    led.record(0, 1, 100, "fillboundary")
    led.record(0, 2, 50, "parallelcopy")
    led.record(3, 3, 10, "fillboundary")
    assert len(led) == 3
    assert led.total_bytes() == 160
    assert led.total_bytes("fillboundary") == 110
    assert led.total_bytes("fillboundary", remote_only=True) == 100
    assert led.count("parallelcopy") == 1


def test_ledger_kind_validation():
    led = CommLedger()
    with pytest.raises(ValueError):
        led.record(0, 1, 10, "bogus")
    with pytest.raises(ValueError):
        led.record(0, 1, -1, "reduce")


def test_on_node_off_node_split():
    led = CommLedger(ranks_per_node=2)
    led.record(0, 1, 100, "fillboundary")  # same node (0,1 -> node 0)
    led.record(0, 2, 70, "fillboundary")  # cross node (node 0 -> node 1)
    led.record(1, 1, 5, "fillboundary")  # self
    assert led.on_node_bytes() == 100
    assert led.off_node_bytes() == 70


def test_per_rank_bytes():
    led = CommLedger()
    led.record(0, 1, 100, "fillboundary")
    led.record(0, 2, 50, "fillboundary")
    led.record(2, 0, 25, "fillboundary")
    send = led.per_rank_bytes(3, direction="send")
    recv = led.per_rank_bytes(3, direction="recv")
    assert send == [150, 0, 25]
    assert recv == [25, 100, 50]


def test_by_kind():
    led = CommLedger()
    led.record(0, 1, 100, "reduce")
    led.record(0, 1, 100, "reduce")
    led.record(0, 1, 7, "regrid")
    assert led.by_kind() == {"reduce": (2, 200), "regrid": (1, 7)}


def test_disable_enable():
    led = CommLedger()
    with led.paused():
        led.record(0, 1, 100, "reduce")
    assert len(led) == 0


def test_paused_restores_prior_state():
    led = CommLedger()
    with led.paused():
        assert not led.enabled
        with led.paused():  # nesting keeps the outer pause
            pass
        assert not led.enabled
    assert led.enabled
    led.record(0, 1, 100, "reduce")
    assert len(led) == 1
    # an already-disabled ledger stays disabled after the block
    led.enabled = False
    with led.paused():
        pass
    assert not led.enabled


def test_paused_restores_on_exception():
    led = CommLedger()
    with pytest.raises(RuntimeError):
        with led.paused():
            raise RuntimeError("boom")
    assert led.enabled


def test_clear_by_kind():
    led = CommLedger()
    led.record(0, 1, 100, "reduce")
    led.record(0, 1, 50, "regrid")
    led.record(1, 2, 25, "reduce")
    led.clear(kind="reduce")
    assert led.by_kind() == {"regrid": (1, 50)}
    with pytest.raises(ValueError):
        led.clear(kind="warp")
    led.clear()
    assert len(led) == 0


def test_comm_validation():
    with pytest.raises(ValueError):
        Communicator(0)
    comm = Communicator(4, ranks_per_node=2)
    with pytest.raises(ValueError):
        comm.send_bytes(0, 4, 10, "reduce")
    assert comm.nnodes == 2


def test_serial_comm():
    c = SerialComm()
    assert c.nranks == 1
    assert c.reduce_min([5.0]) == 5.0
    assert len(c.ledger) == 0  # single rank: no messages in a tree of one


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=33))
def test_tree_reduce_correctness(values):
    comm = Communicator(len(values), ranks_per_node=6)
    assert comm.reduce_min(values) == min(values)
    assert comm.reduce_max(values) == max(values)
    assert comm.reduce_sum(values) == pytest.approx(sum(values), rel=1e-12, abs=1e-9)


def test_tree_reduce_message_count():
    comm = Communicator(8, ranks_per_node=2)
    comm.reduce_min([1.0] * 8)
    # reduce: 4+2+1 = 7 messages; broadcast: 7 more
    assert len(comm.ledger) == 14


def test_reduce_wrong_length():
    comm = Communicator(4)
    with pytest.raises(ValueError):
        comm.reduce_min([1.0, 2.0])


def test_barrier_rounds():
    assert Communicator(1).barrier_rounds() == 1
    assert Communicator(8).barrier_rounds() == 3
    assert Communicator(1024).barrier_rounds() == 10
