"""Tests for the iteration simulator and scaling drivers (small sizes)."""

import numpy as np
import pytest

from repro.perfmodel.calibration import CAL
from repro.perfmodel.decomposition import dmr_band_hierarchy
from repro.perfmodel.execution import IterationBreakdown, simulate_iteration
from repro.perfmodel.scaling import (
    TABLE1,
    speedup_series,
    strong_scaling,
    weak_scaling,
    weak_scaling_efficiency,
)

SMALL = 2.0e7  # small enough for fast tests


def sim(version, nodes, points=SMALL, amr=None):
    from repro.core.versions import get_version

    v = get_version(version)
    nranks = CAL.spec.ranks_for(nodes, v.on_gpu)
    rpn = CAL.spec.ranks_per_node(v.on_gpu)
    levels = dmr_band_hierarchy(points, nranks, rpn, v.amr, CAL)
    return simulate_iteration(v, levels, nodes, CAL)


def test_breakdown_structure():
    bd = sim("2.1", 4)
    d = bd.as_dict()
    assert d["total"] == pytest.approx(bd.total)
    assert bd.fillpatch == bd.fillboundary + bd.parallelcopy
    assert bd.total > 0
    for key in ("Advance", "FillPatch", "ComputeDt", "Regrid", "AverageDown"):
        assert d[key] >= 0


def test_non_amr_has_no_amr_regions():
    bd = sim("1.1", 4)
    assert bd.parallelcopy == 0.0
    assert bd.regrid == 0.0
    assert bd.averagedown == 0.0
    assert bd.advance > 0
    assert bd.fillboundary > 0


def test_amr_faster_than_uniform_on_cpu_small_nodes():
    """Fig. 5: at low node counts AMR wins on CPU despite overheads."""
    t_uni = sim("1.1", 4).total
    t_amr = sim("1.2", 4).total
    speedup = t_uni / t_amr
    assert 2.0 < speedup < 9.0  # paper: 4.6x at the lowest node count


def test_gpu_much_faster_than_cpu_amr():
    t_cpu = sim("1.2", 4).total
    t_gpu = sim("2.0", 4).total
    assert t_cpu / t_gpu > 8.0  # paper: up to 44x


def test_20_slower_than_21():
    """The curvilinear interpolator's extra ParallelCopy costs time."""
    b20 = sim("2.0", 16)
    b21 = sim("2.1", 16)
    assert b20.parallelcopy > b21.parallelcopy
    assert b20.total > b21.total


def test_fillpatch_grows_with_nodes_weak_scaling():
    """Fig. 6: FillPatch share rises across the weak-scaling series."""
    per_node = 4.1e7
    fp = []
    adv = []
    for nodes in (4, 16, 64):
        bd = sim("2.1", nodes, points=per_node * nodes)
        fp.append(bd.fillpatch)
        adv.append(bd.advance)
    assert fp[-1] > fp[0]  # communication grows
    # compute stays roughly flat (weak scaling)
    assert abs(adv[-1] - adv[0]) / adv[0] < 0.6


def test_parallelcopy_grows_with_ranks():
    """Fig. 7: the ParallelCopy part is what grows."""
    per_node = 4.1e7
    pc = [sim("2.1", n, points=per_node * n).parallelcopy for n in (4, 16, 64)]
    assert pc[0] < pc[1] < pc[2]


def test_gpu_memory_flag():
    # tiny node count with a large problem: too many points per GPU
    bd = sim("2.0", 1, points=5e8)
    assert bd.exceeds_gpu_memory


def test_table1_matches_paper():
    assert TABLE1[0] == (4, 24, 1.64e8)
    assert TABLE1[-1] == (1024, 6144, 4.19e10)
    for nodes, gpus, _pts in TABLE1:
        assert gpus == 6 * nodes
    # near-linear problem-size-per-node across the series
    per_node = [pts / n for n, _g, pts in TABLE1]
    assert max(per_node) / min(per_node) < 1.05


def test_strong_scaling_series_shapes():
    ss = strong_scaling(versions=("1.1", "2.0"), nodes=(4, 16),
                        points=SMALL)
    t11 = [p.time_per_iteration for p in ss["1.1"]]
    assert t11[1] < t11[0]  # CPU strong-scales at these sizes
    assert all(p.nranks == p.nodes * 44 for p in ss["1.1"])
    assert all(p.nranks == p.nodes * 6 for p in ss["2.0"])
    sp = speedup_series(ss["1.1"], ss["2.0"])
    assert all(s > 1 for s in sp)


def test_weak_scaling_efficiency_drops():
    table = tuple((n, 6 * n, 5e6 * n) for n in (4, 16, 64))
    ws = weak_scaling(versions=("2.1",), table=table)
    eff = weak_scaling_efficiency(ws["2.1"])
    assert eff[0] == pytest.approx(1.0)
    assert eff[-1] < 1.0  # efficiency loss at scale
    assert all(e > 0.05 for e in eff)


def test_speedup_series_validation():
    ss = strong_scaling(versions=("1.1",), nodes=(4,), points=SMALL)
    with pytest.raises(ValueError):
        speedup_series(ss["1.1"], [])


def test_amr_reduction_reported():
    ss = strong_scaling(versions=("1.2",), nodes=(4,), points=SMALL)
    p = ss["1.2"][0]
    assert 0.8 < p.amr_reduction < 0.95
    assert p.active_points < p.equiv_points


def test_fillpatch_split_structure():
    """Fig. 7: the four-way FillPatch split sums and grows correctly."""
    from repro.perfmodel.execution import fillpatch_split
    from repro.core.versions import get_version

    v21 = get_version("2.1")
    splits = []
    for nodes in (4, 64):
        nranks = CAL.spec.ranks_for(nodes, True)
        levels = dmr_band_hierarchy(5e6 * nodes, nranks, 6, True, CAL)
        splits.append(fillpatch_split(v21, levels, nodes, CAL))
    for s in splits:
        assert set(s) == {"FillBoundary_nowait", "FillBoundary_finish",
                          "ParallelCopy_nowait", "ParallelCopy_finish"}
        assert all(t >= 0 for t in s.values())
    # the finish (completion/metadata) part grows with scale
    assert splits[1]["ParallelCopy_finish"] > splits[0]["ParallelCopy_finish"]
    # 2.0 pays more ParallelCopy than 2.1 at the same decomposition
    v20 = get_version("2.0")
    nranks = CAL.spec.ranks_for(64, True)
    levels = dmr_band_hierarchy(5e6 * 64, nranks, 6, True, CAL)
    s20 = fillpatch_split(v20, levels, 64, CAL)
    s21 = fillpatch_split(v21, levels, 64, CAL)
    assert s20["ParallelCopy_finish"] > s21["ParallelCopy_finish"]


def test_simulated_iteration_includes_amr_software_tax():
    """The AMR versions pay CPU-side software overhead beyond raw kernels."""
    from repro.core.versions import get_version

    nranks = CAL.spec.ranks_for(4, False)
    levels_uni = dmr_band_hierarchy(SMALL, nranks, 44, False, CAL)
    levels_amr = dmr_band_hierarchy(SMALL, nranks, 44, True, CAL)
    bd_uni = simulate_iteration("1.1", levels_uni, 4, CAL)
    bd_amr = simulate_iteration("1.2", levels_amr, 4, CAL)
    # per active point, the AMR version's Advance is costlier
    uni_rate = bd_uni.advance / levels_uni[0].num_pts()
    amr_rate = bd_amr.advance / sum(l.num_pts() for l in levels_amr)
    assert amr_rate > uni_rate
