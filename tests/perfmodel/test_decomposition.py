"""Tests for Summit-scale decomposition metadata."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.perfmodel.calibration import CAL, Calibration
from repro.perfmodel.decomposition import (
    BoxLevel,
    HierarchySpec,
    LatticeLevel,
    active_points,
    amr_reduction,
    auto_max_grid_size,
    build_hierarchy,
    dmr_band_hierarchy,
    dmr_grid_shape,
    lattice_box_size,
    shock_band_boxes,
)


def test_dmr_grid_shape_properties():
    shape = dmr_grid_shape(1.64e8)
    nx, ny, nz = shape
    assert nx == 2 * nz  # the 2:1 x:z constraint
    assert all(n % 32 == 0 for n in shape)
    total = nx * ny * nz
    assert 0.5 < total / 1.64e8 < 2.0  # near the target
    with pytest.raises(ValueError):
        dmr_grid_shape(-1)


def test_auto_max_grid_size():
    cal = CAL
    # plenty of points: capped at the paper's 128
    assert auto_max_grid_size(1e10, 64, cal) == 128
    # few points per rank: shrinks in blocking-factor units
    ms = auto_max_grid_size(64**3, 64, cal)
    assert ms == 16
    assert auto_max_grid_size(100, 64, cal) == 8  # floor at blocking factor
    with pytest.raises(ValueError):
        auto_max_grid_size(0, 4, cal)


def test_lattice_box_size_divisors():
    assert lattice_box_size(128, 40, 8) == 32
    assert lattice_box_size(96, 50, 8) == 48
    assert lattice_box_size(64, 128, 8) == 64
    with pytest.raises(ValueError):
        lattice_box_size(65, 32, 8)


def make_lattice(n=64, box=16, nranks=8):
    dom = Box((0, 0, 0), (n - 1, n - 1, n - 1))
    return LatticeLevel(0, dom, (box, box, box), nranks)


def test_lattice_level_accounting():
    lev = make_lattice()
    assert lev.num_boxes() == 64
    assert lev.num_pts() == 64**3
    loads = lev.per_rank_pts()
    assert loads.sum() == 64**3
    assert loads.min() > 0  # SFC spreads over all ranks
    pts, ranks = lev.box_pts_and_ranks()
    assert len(pts) == 64
    assert np.all(pts == 16**3)


def test_lattice_indivisible_rejected():
    with pytest.raises(ValueError):
        LatticeLevel(0, Box((0, 0, 0), (63, 63, 63)), (15, 16, 16), 4)


def test_lattice_fillboundary_exact_volumes():
    """Cross-check the vectorized lattice volumes against the generic path."""
    from repro.amr.boxarray import BoxArray
    from repro.amr.distribution import DistributionMapping

    n, box, nranks, ng, ncomp = 32, 8, 4, 2, 5
    lat = LatticeLevel(0, Box((0, 0, 0), (n - 1,) * 3), (box,) * 3, nranks)
    vol_lat = lat.fillboundary_volumes(ncomp, ng, 2)

    ba = BoxArray.from_domain(Box((0, 0, 0), (n - 1,) * 3), box, 8)
    # identical SFC assignment is not guaranteed; compare totals only
    dm = DistributionMapping.make(ba, nranks, "sfc")
    gen = BoxLevel(0, Box((0, 0, 0), (n - 1,) * 3), ba, dm)
    vol_gen = gen.fillboundary_volumes(ncomp, ng, 2)
    assert vol_lat.total_bytes == pytest.approx(vol_gen.total_bytes)


def test_fillboundary_volume_cache():
    lev = make_lattice()
    a = lev.fillboundary_volumes_cached(5, 4, 2)
    b = lev.fillboundary_volumes_cached(5, 4, 2)
    assert a is b
    c = lev.fillboundary_volumes_cached(5, 2, 2)
    assert c is not a


def test_shock_band_boxes_geometry():
    cal = CAL
    dom = Box((0, 0, 0), (255, 127, 63))
    ba = shock_band_boxes(dom, 0.1, cal, 32)
    assert len(ba) > 0
    assert ba.is_disjoint()
    covered = ba.num_pts() / dom.num_pts()
    assert 0.05 < covered < 0.35  # near the requested fraction
    for b in ba:
        assert dom.contains(b)
        assert max(b.size()) <= 32
    # the union spans the full z extent (spanwise-uniform shock)
    assert min(b.lo[2] for b in ba) == 0
    assert max(b.hi[2] for b in ba) == 63
    # the band follows the shock: mean x of boxes increases with y
    lo_y = [b for b in ba if b.lo[1] == 0]
    hi_y = [b for b in ba if b.hi[1] == 127]
    assert min(b.lo[0] for b in hi_y) >= min(b.lo[0] for b in lo_y)


def test_build_hierarchy_uniform():
    spec = HierarchySpec((128, 64, 64), nranks=16, ranks_per_node=4, amr=False)
    levels = build_hierarchy(spec)
    assert len(levels) == 1
    assert levels[0].num_pts() == 128 * 64 * 64


def test_build_hierarchy_amr_reduction_in_paper_range():
    levels = dmr_band_hierarchy(2e8, nranks=96, ranks_per_node=6, amr=True)
    assert len(levels) == 3
    red = amr_reduction(levels)
    assert 0.85 < red < 0.95  # the paper quotes 89-94%
    # level domains refine by 2
    for a, b in zip(levels, levels[1:]):
        assert b.domain.size()[0] == 2 * a.domain.size()[0]


def test_hierarchy_ranks_get_work():
    levels = dmr_band_hierarchy(2e8, nranks=96, ranks_per_node=6, amr=True)
    # the finest (largest) level feeds every rank
    assert levels[-1].per_rank_pts().min() > 0


def test_active_points_consistency():
    levels = dmr_band_hierarchy(1e8, nranks=24, ranks_per_node=6, amr=True)
    assert active_points(levels) == sum(l.num_pts() for l in levels)


def test_modeled_volumes_match_functional_ledger():
    """Layer cross-validation: the perfmodel's box-exact FillBoundary
    volumes equal the traffic a real MultiFab exchange records."""
    from repro.amr.boxarray import BoxArray
    from repro.amr.distribution import DistributionMapping
    from repro.amr.multifab import MultiFab
    from repro.mpi.comm import Communicator

    dom = Box((0, 0, 0), (31, 31, 31))
    ba = BoxArray.from_domain(dom, 16, 8)
    nranks, rpn, ncomp, ng = 4, 2, 5, 4
    dm = DistributionMapping.make(ba, nranks, "sfc")
    lev = BoxLevel(0, dom, ba, dm)
    vols = lev.fillboundary_volumes(ncomp, ng, rpn)

    comm = Communicator(nranks, ranks_per_node=rpn)
    mf = MultiFab(ba, dm, ncomp, ng, comm)
    comm.ledger.clear()
    mf.fill_boundary()
    led = comm.ledger
    # total moved bytes agree exactly (both are box-intersection geometry)
    assert led.total_bytes("fillboundary") == vols.total_bytes
    # off-node split agrees
    assert led.off_node_bytes("fillboundary") == pytest.approx(
        vols.off_node_recv.sum())
    assert led.on_node_bytes("fillboundary") == pytest.approx(
        vols.on_node_recv.sum())


def test_lattice_volumes_match_functional_ledger():
    """Same cross-check for the vectorized lattice path."""
    from repro.amr.boxarray import BoxArray
    from repro.amr.distribution import DistributionMapping
    from repro.amr.multifab import MultiFab
    from repro.mpi.comm import Communicator

    dom = Box((0, 0, 0), (31, 31, 31))
    lat = LatticeLevel(0, dom, (16, 16, 16), 4)
    vols = lat.fillboundary_volumes(5, 4, 2)

    ba = BoxArray.from_domain(dom, 16, 8)
    dm = DistributionMapping.make(ba, 4, "sfc")
    comm = Communicator(4, ranks_per_node=2)
    mf = MultiFab(ba, dm, 5, 4, comm)
    comm.ledger.clear()
    mf.fill_boundary()
    assert comm.ledger.total_bytes("fillboundary") == pytest.approx(
        vols.total_bytes)
