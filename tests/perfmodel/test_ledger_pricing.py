"""Tests for pricing recorded (functional-run) traffic on the network model."""

import numpy as np
import pytest

from repro.mpi.ledger import CommLedger
from repro.perfmodel.ledger_pricing import price_ledger


def test_empty_ledger():
    priced = price_ledger(CommLedger(), nranks=4, nodes=2)
    assert priced.total == 0.0
    assert all(v == 0.0 for v in priced.seconds.values())


def test_validation_of_inputs():
    with pytest.raises(ValueError):
        price_ledger(CommLedger(), nranks=0, nodes=1)
    with pytest.raises(ValueError):
        price_ledger(CommLedger(), nranks=4, nodes=0)


def test_p2p_pricing_scales_with_busiest_rank():
    led = CommLedger(ranks_per_node=2)
    # rank 1 receives 10 MB off-node; others idle
    led.record(2, 1, 10_000_000, "fillboundary")
    t1 = price_ledger(led, nranks=4, nodes=2).seconds["fillboundary"]
    led.record(2, 1, 10_000_000, "fillboundary")
    t2 = price_ledger(led, nranks=4, nodes=2).seconds["fillboundary"]
    assert t2 > t1 * 1.5  # doubling the busiest rank's volume ~doubles time


def test_local_messages_are_free_moves():
    led = CommLedger()
    led.record(3, 3, 1_000_000, "fillboundary")  # self-copy
    priced = price_ledger(led, nranks=4, nodes=2)
    assert priced.off_node_bytes["fillboundary"] == 0
    assert priced.on_node_bytes["fillboundary"] == 0


def test_parallelcopy_pays_metadata():
    led = CommLedger()
    led.record(0, 1, 8, "parallelcopy")
    led2 = CommLedger()
    led2.record(0, 1, 8, "fillboundary")
    pc = price_ledger(led, nranks=6144, nodes=1024).seconds["parallelcopy"]
    fb = price_ledger(led2, nranks=6144, nodes=1024).seconds["fillboundary"]
    assert pc > fb + 1e-3  # the global handshake term dominates tiny volumes


def test_functional_run_priceable_end_to_end():
    """Price a real DMR run's ledger at its own rank/node counts."""
    from repro.cases.dmr import DoubleMachReflection
    from repro.core.crocco import Crocco, CroccoConfig

    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(version="2.0", nranks=4, ranks_per_node=2,
                                    max_level=1, max_grid_size=32,
                                    regrid_int=4))
    sim.initialize()
    sim.comm.ledger.clear()
    sim.step()
    priced = price_ledger(sim.comm.ledger, nranks=4, nodes=2)
    assert priced.total > 0
    # the curvilinear interpolator's coordinate gathers dominate
    assert priced.seconds["parallelcopy"] > 0
    assert priced.messages["fillboundary"] > 0
    assert priced.off_node_bytes["fillboundary"] > 0


# -- device-timing bridge -----------------------------------------------------


def test_summarize_device_prices_launches():
    from repro.kernels.device import GpuDevice
    from repro.machine.gpu import V100Model
    from repro.perfmodel.device_timing import summarize_device

    dev = GpuDevice()
    dev.launch("WENOx", lambda: None, 50_000, 600, 400)
    dev.launch("WENOx", lambda: None, 50_000, 600, 400)
    dev.launch("Update", lambda: None, 50_000, 20, 120)
    t = summarize_device(dev)
    assert set(t.seconds) == {"WENOx", "Update"}
    assert t.launches == {"WENOx": 2, "Update": 1}
    m = V100Model()
    from repro.kernels.counts import WENO_BUDGET

    assert t.seconds["WENOx"] == pytest.approx(
        2 * m.kernel_time(WENO_BUDGET, 50_000))
    assert t.total == pytest.approx(sum(t.seconds.values()))


def test_fleet_summary_from_functional_run():
    from repro.cases.shocktube import SodShockTube
    from repro.core.crocco import Crocco, CroccoConfig
    from repro.perfmodel.device_timing import (
        busiest_device_seconds,
        summarize_fleet,
    )

    # prices driver-side launch records; pool workers keep theirs local
    sim = Crocco(SodShockTube(64),
                 CroccoConfig(version="2.0", nranks=2, ranks_per_node=2,
                              max_grid_size=32, executor="serial"))
    sim.initialize()
    sim.run(2)
    fleet = summarize_fleet(sim.devices)
    assert len(fleet) == 2
    for timing in fleet.values():
        assert "WENOx" in timing.seconds
        assert timing.total > 0
    assert busiest_device_seconds(sim.devices) == pytest.approx(
        max(t.total for t in fleet.values()))
    assert busiest_device_seconds([]) == 0.0
