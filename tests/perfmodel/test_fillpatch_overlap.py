"""Model vs runtime: the nowait/finish decomposition agrees in shape.

Two halves of the same claim, cross-checked:

1. The performance model's :func:`nowait_finish_fractions` (derived from
   the Fig. 7 FillPatch split) predicts the *finish* share — the part
   the runtime can hide behind interior compute — grows monotonically
   with node count.
2. The task-graph runtime *measures* overlap on real schedules with the
   same shape: a 2-level AMR run (which has concurrent comm windows and
   runnable coarse-level compute) shows strictly more overlap than a
   single-level serial run, whose measured overlap is exactly zero.
"""

import numpy as np

from repro.core.versions import get_version
from repro.perfmodel.calibration import CAL
from repro.perfmodel.decomposition import dmr_band_hierarchy
from repro.perfmodel.execution import nowait_finish_fractions

NODE_COUNTS = (4, 16, 64, 256)


def fractions(version, nodes, weak_points=5e6):
    v = get_version(version)
    nranks = CAL.spec.ranks_for(nodes, v.on_gpu)
    rpn = CAL.spec.ranks_per_node(v.on_gpu)
    levels = dmr_band_hierarchy(weak_points * nodes, nranks, rpn, v.amr, CAL)
    return nowait_finish_fractions(v, levels, nodes, CAL)


class TestModelShape:
    def test_fractions_are_a_partition(self):
        for nodes in NODE_COUNTS:
            f = fractions("2.1", nodes)
            assert f["nowait_s"] > 0 and f["finish_s"] > 0
            assert abs(f["nowait_frac"] + f["finish_frac"] - 1.0) < 1e-12
            assert f["nowait_s"] + f["finish_s"] > 0

    def test_finish_share_monotone_at_fixed_decomposition(self):
        """Fig. 7 trend: completion cost grows with scale.  At a fixed
        level decomposition the only node-dependent term is the
        completion (latency/metadata) side, so the share is strictly
        monotone."""
        v = get_version("2.1")
        nranks = CAL.spec.ranks_for(NODE_COUNTS[0], v.on_gpu)
        rpn = CAL.spec.ranks_per_node(v.on_gpu)
        levels = dmr_band_hierarchy(5e6 * NODE_COUNTS[0], nranks, rpn,
                                    v.amr, CAL)
        fracs = [nowait_finish_fractions(v, levels, n, CAL)["finish_frac"]
                 for n in NODE_COUNTS]
        assert all(b > a for a, b in zip(fracs, fracs[1:])), fracs

    def test_finish_share_trend_under_weak_scaling(self):
        """Re-decomposing per node count adds discrete box-count noise,
        but the endpoint trend survives: 256 nodes pay a larger finish
        share than 4."""
        lo = fractions("2.1", NODE_COUNTS[0])["finish_frac"]
        hi = fractions("2.1", NODE_COUNTS[-1])["finish_frac"]
        assert hi > lo

    def test_finish_seconds_monotone_in_nodes(self):
        secs = [fractions("2.1", n)["finish_s"] for n in NODE_COUNTS]
        assert all(b > a for a, b in zip(secs, secs[1:])), secs


class TestMeasuredShape:
    """The runtime's measured overlap reproduces the model's shape:
    more concurrent comm/compute structure => more measured overlap."""

    def _run(self, max_level):
        from repro.cases.dmr import DoubleMachReflection
        from repro.core.crocco import Crocco, CroccoConfig

        case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
        sim = Crocco(case, CroccoConfig(
            version="2.0", nranks=6, ranks_per_node=6, max_level=max_level,
            max_grid_size=32, blocking_factor=8, regrid_int=2,
            executor="serial",
        ))
        sim.initialize()
        sim.run(2)
        rep = sim.engine.total_report
        sim.close()
        return rep

    def test_overlap_grows_with_level_count(self):
        single = self._run(max_level=0)
        two = self._run(max_level=1)
        # single-level serial: nothing runnable inside the lone comm window
        assert single.overlap_s == 0.0
        # 2-level: coarse compute hides inside the fine level's windows
        assert two.overlap_s > 0.0
        assert two.overlap_frac > single.overlap_frac

    def test_split_halves_both_measured(self):
        rep = self._run(max_level=1)
        assert rep.posted_comm_s > 0.0
        assert rep.finish_comm_s > 0.0
        # measured decomposition mirrors the model's two-part split
        total = rep.posted_comm_s + rep.finish_comm_s
        measured_finish_frac = rep.finish_comm_s / total
        assert 0.0 < measured_finish_frac < 1.0
