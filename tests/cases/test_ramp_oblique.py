"""Tests for oblique-shock theory and the curvilinear compression ramp."""

import math

import numpy as np
import pytest

from repro.cases.oblique import ObliqueShock, beta_from_theta, theta_from_beta
from repro.cases.ramp import CompressionRamp
from repro.core.crocco import Crocco, CroccoConfig


def test_beta_for_textbook_case():
    """M=3, theta=15 deg: beta ~ 32.24 deg (NACA 1135 charts)."""
    beta = beta_from_theta(math.radians(15.0), 3.0)
    assert math.degrees(beta) == pytest.approx(32.24, abs=0.05)


def test_theta_beta_roundtrip():
    for mach in (1.5, 2.5, 5.0):
        for theta_deg in (2.0, 8.0, 15.0):
            try:
                beta = beta_from_theta(math.radians(theta_deg), mach)
            except ValueError:
                continue  # detached at this Mach
            back = theta_from_beta(beta, mach)
            assert math.degrees(back) == pytest.approx(theta_deg, abs=1e-8)


def test_detachment_raises():
    with pytest.raises(ValueError):
        beta_from_theta(math.radians(35.0), 2.0)  # theta_max(M=2) ~ 23 deg
    with pytest.raises(ValueError):
        beta_from_theta(math.radians(10.0), 0.8)  # subsonic
    with pytest.raises(ValueError):
        beta_from_theta(-0.1, 3.0)


def test_oblique_jump_ratios_m3_15deg():
    s = ObliqueShock(mach1=3.0, theta=math.radians(15.0))
    assert s.pressure_ratio == pytest.approx(2.822, abs=0.01)
    assert s.density_ratio == pytest.approx(2.032, abs=0.01)
    assert s.mach2 == pytest.approx(2.255, abs=0.01)
    assert s.mach2 < s.mach1


def test_weak_vs_strong_branch():
    theta = math.radians(10.0)
    bw = beta_from_theta(theta, 3.0, weak=True)
    bs = beta_from_theta(theta, 3.0, weak=False)
    assert bw < bs


def test_normal_shock_limit():
    """beta -> 90 deg recovers the normal-shock pressure ratio."""
    g = 1.4
    m = 4.0
    p_normal = (2 * g * m**2 - (g - 1)) / (g + 1)
    # near-maximal deflection approaches the strong/normal limit
    theta = theta_from_beta(math.radians(89.99), m)
    s = ObliqueShock(mach1=m, theta=theta, gamma=g)
    beta = beta_from_theta(theta, m, weak=False)
    mn1 = m * math.sin(beta)
    p_strong = (2 * g * mn1**2 - (g - 1)) / (g + 1)
    assert p_strong == pytest.approx(p_normal, rel=1e-3)


def test_ramp_case_setup():
    case = CompressionRamp(ncells=(48, 24), mach=3.0, angle_deg=15.0)
    t = case.theory()
    assert t["beta_deg"] == pytest.approx(32.24, abs=0.05)
    assert case.curvilinear
    geom = case.geometry0()
    coords = case.coordinates(geom, geom.domain)
    # the first grid line rises along the ramp (cell centers sit half a
    # cell above the wall itself)
    wall_y = coords[1][:, 0]
    assert wall_y[-1] - wall_y[0] > 0.2
    assert wall_y[0] < 0.05


def test_ramp_wall_bc_reflects_about_tangent():
    """On the inclined wall, the ghost momentum mirrors about the tangent."""
    case = CompressionRamp(ncells=(48, 24))
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=48))
    sim.initialize()
    sim._bc_fill(0)
    mf = sim.state[0]
    lay = case.layout
    for i, fab in mf:
        if fab.box.lo[1] != 0:
            continue
        coords = sim.coords[0].fab(i)
        # pick a column on the ramp (x > corner)
        cols = np.nonzero(coords.whole()[0][:, sim.ng] > 1.2)[0]
        if len(cols) == 0:
            continue
        c = int(cols[len(cols) // 2])
        g = sim.ng - 1  # first ghost row below the wall
        m = sim.ng      # first interior row
        mom_g = fab.whole()[lay.mom_slice, c, g]
        mom_i = fab.whole()[lay.mom_slice, c, m]
        # tangential reflection preserves |momentum|
        assert np.linalg.norm(mom_g) == pytest.approx(np.linalg.norm(mom_i))
        # and the normal component flips: (m_g + m_i) is tangent-aligned
        x = coords.whole()[0][:, m]
        y = coords.whole()[1][:, m]
        t = np.array([np.gradient(x)[c], np.gradient(y)[c]])
        t /= np.linalg.norm(t)
        s = mom_g + mom_i
        cross = s[0] * t[1] - s[1] * t[0]
        assert abs(cross) < 1e-8 * (np.linalg.norm(s) + 1.0)


def test_ramp_wall_pressure_approaches_oblique_theory():
    """After a flow-through time the ramp pressure matches theta-beta-M."""
    case = CompressionRamp(ncells=(64, 32), mach=3.0, angle_deg=15.0)
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64))
    sim.initialize()
    for _ in range(220):
        sim.step()
    lay = case.layout
    samples = []
    for i, fab in sim.state[0]:
        coords = sim.coords[0].fab(i).valid()
        p = case.eos.pressure(lay, fab.valid())
        mask = (coords[0][:, 1] > 1.3) & (coords[0][:, 1] < 1.8)
        if fab.box.lo[1] == 0 and mask.any():
            samples.append(p[:, 1][mask])
    pw = float(np.concatenate(samples).mean())
    assert pw == pytest.approx(case.shock.pressure_ratio, rel=0.15)
    assert not sim.state[0].contains_nan()
