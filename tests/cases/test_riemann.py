"""Tests for the exact Riemann solver and shock-jump relations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cases.riemann import (
    PrimitiveState,
    normal_shock_jump,
    sample,
    star_state,
)

SOD_L = PrimitiveState(1.0, 0.0, 1.0)
SOD_R = PrimitiveState(0.125, 0.0, 0.1)


def test_sod_star_state_reference_values():
    """Toro's book gives p* = 0.30313, u* = 0.92745 for the Sod problem."""
    p, u = star_state(SOD_L, SOD_R)
    assert p == pytest.approx(0.30313, abs=2e-5)
    assert u == pytest.approx(0.92745, abs=2e-5)


def test_sod_sampling_regions():
    xi = np.array([-2.0, -0.5, 0.5, 1.0, 2.5])
    rho, u, p = sample(SOD_L, SOD_R, xi)
    # far left: undisturbed left state
    assert rho[0] == pytest.approx(1.0)
    # far right: undisturbed right state
    assert rho[-1] == pytest.approx(0.125)
    # between contact (u*=0.927) and shock (s~1.75): right star density
    assert p[3] == pytest.approx(0.30313, abs=1e-4)
    assert rho[3] == pytest.approx(0.26557, abs=1e-4)
    # between rarefaction tail and contact: left star density
    assert rho[2] == pytest.approx(0.42632, abs=1e-4)


def test_sampling_is_continuous_across_rarefaction():
    xi = np.linspace(-1.5, 0.0, 200)
    rho, u, p = sample(SOD_L, SOD_R, xi)
    assert np.abs(np.diff(rho)).max() < 0.02  # no jumps inside the fan


def test_vacuum_detection():
    left = PrimitiveState(1.0, -10.0, 0.01)
    right = PrimitiveState(1.0, 10.0, 0.01)
    with pytest.raises(ValueError):
        star_state(left, right)


def test_symmetric_problem_zero_contact_speed():
    s = PrimitiveState(1.0, 0.0, 1.0)
    p, u = star_state(s, s)
    assert u == pytest.approx(0.0, abs=1e-12)
    assert p == pytest.approx(1.0)


def test_normal_shock_mach10_dmr_values():
    """The DMR post-shock state: rho=8, p=116.5, u=8.25 for M=10, rho1=1.4."""
    pre = PrimitiveState(rho=1.4, u=0.0, p=1.0)  # a1 = 1
    post = normal_shock_jump(10.0, pre, gamma=1.4)
    assert post.rho == pytest.approx(8.0, rel=1e-3)
    assert post.p == pytest.approx(116.5, rel=1e-3)
    assert post.u == pytest.approx(8.25, rel=1e-3)


def test_normal_shock_strong_limit():
    """rho2/rho1 -> (g+1)/(g-1) = 6 as M -> inf."""
    pre = PrimitiveState(1.0, 0.0, 1.0)
    post = normal_shock_jump(100.0, pre)
    assert post.rho == pytest.approx(6.0, rel=1e-3)


def test_normal_shock_requires_supersonic():
    with pytest.raises(ValueError):
        normal_shock_jump(0.9, PrimitiveState(1.0, 0.0, 1.0))


@settings(max_examples=25, deadline=None)
@given(
    st.floats(0.1, 5.0), st.floats(-1.0, 1.0), st.floats(0.1, 5.0),
    st.floats(0.1, 5.0), st.floats(-1.0, 1.0), st.floats(0.1, 5.0),
)
def test_star_state_satisfies_jump_consistency(rl, ul, pl, rr, ur, pr):
    """p* > 0 and the pressure function residual vanishes at the root."""
    from repro.cases.riemann import _pressure_function

    left = PrimitiveState(rl, ul, pl)
    right = PrimitiveState(rr, ur, pr)
    try:
        ps, us = star_state(left, right)
    except ValueError:
        return  # vacuum-generating input: correctly rejected
    assert ps > 0
    fl, _ = _pressure_function(ps, left, 1.4)
    fr, _ = _pressure_function(ps, right, 1.4)
    assert abs(fl + fr + (right.u - left.u)) < 1e-7


def test_rankine_hugoniot_mass_momentum_energy():
    """The Mach-10 jump satisfies the RH relations in the shock frame."""
    g = 1.4
    pre = PrimitiveState(1.4, 0.0, 1.0)
    post = normal_shock_jump(10.0, pre, g)
    ws = 10.0  # shock speed (a1 = 1, pre at rest)
    # shock-frame velocities
    v1 = ws - pre.u
    v2 = ws - post.u
    assert pre.rho * v1 == pytest.approx(post.rho * v2, rel=1e-12)  # mass
    assert pre.p + pre.rho * v1**2 == pytest.approx(
        post.p + post.rho * v2**2, rel=1e-12
    )  # momentum
    h1 = g / (g - 1) * pre.p / pre.rho + 0.5 * v1**2
    h2 = g / (g - 1) * post.p / post.rho + 0.5 * v2**2
    assert h1 == pytest.approx(h2, rel=1e-12)  # enthalpy
