"""Tests for the case definitions and grid mappings."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.cases.dmr import DoubleMachReflection, X0
from repro.cases.grids import (
    compression_ramp_mapping,
    stretched_mapping,
    tanh_cluster_mapping,
)
from repro.cases.shocktube import SodShockTube
from repro.cases.vortex import IsentropicVortex


def test_sod_initial_condition():
    case = SodShockTube(64)
    coords = np.array([[0.2, 0.8]])
    u = case.initial_condition(coords)
    assert u[0, 0] == 1.0  # left density
    assert u[0, 1] == 0.125
    assert u.shape == (3, 2)


def test_sod_exact_at_t0():
    case = SodShockTube(64)
    coords = case.coordinates(case.geometry0(), case.geometry0().domain)
    assert np.allclose(case.exact_solution(coords, 0.0),
                       case.initial_condition(coords))


def test_vortex_ic_periodic_consistency():
    case = IsentropicVortex(32)
    geom = case.geometry0()
    coords = case.coordinates(geom, geom.domain)
    u = case.initial_condition(coords)
    # far from the vortex core the state is the freestream
    corner = u[:, 0, 0]
    rho = corner[0]
    assert rho == pytest.approx(1.0, abs=1e-6)
    assert corner[1] / rho == pytest.approx(case.u0, abs=1e-6)


def test_vortex_exact_advection_identity():
    """Advancing the exact solution by a full period returns the IC."""
    case = IsentropicVortex(32, u0=1.0, v0=0.0)
    geom = case.geometry0()
    coords = case.coordinates(geom, geom.domain)
    ic = case.initial_condition(coords)
    period = case.prob_extent[0] / case.u0
    assert np.allclose(case.exact_solution(coords, period), ic, atol=1e-12)


def test_dmr_post_shock_state():
    case = DoubleMachReflection((64, 16))
    assert case.post.rho == pytest.approx(8.0, rel=1e-3)
    assert case.post.p == pytest.approx(116.5, rel=1e-3)
    assert case.post_vel[0] == pytest.approx(8.25 * np.sin(np.radians(60)), rel=1e-3)
    assert case.post_vel[1] == pytest.approx(-8.25 * np.cos(np.radians(60)), rel=1e-3)


def test_dmr_initial_shock_geometry():
    case = DoubleMachReflection((64, 16))
    # on the wall the shock starts at x0 = 1/6
    assert case.shock_x(np.array(0.0), 0.0) == pytest.approx(X0)
    # the shock leans right with height at 60 degrees
    assert case.shock_x(np.array(1.0), 0.0) == pytest.approx(X0 + 1 / np.tan(np.radians(60)))
    # and moves right in time at speed 10/sin(60)
    assert case.shock_x(np.array(0.0), 0.1) == pytest.approx(X0 + 10 / np.sin(np.radians(60)) * 0.1)


def test_dmr_ic_separates_states():
    case = DoubleMachReflection((64, 16))
    geom = case.geometry0()
    coords = case.coordinates(geom, geom.domain)
    u = case.initial_condition(coords)
    rho = u[0]
    assert rho.min() == pytest.approx(1.4)
    assert rho.max() == pytest.approx(8.0, rel=1e-3)
    # left side post-shock, right side pre-shock
    assert rho[0, 0] == pytest.approx(8.0, rel=1e-3)
    assert rho[-1, 0] == pytest.approx(1.4)


def test_dmr_3d_has_periodic_z():
    case = DoubleMachReflection((32, 8, 4))
    assert case.dim == 3
    assert case.periodic == (False, False, True)
    geom = case.geometry0()
    coords = case.coordinates(geom, geom.domain)
    u = case.initial_condition(coords)
    assert u.shape[0] == 5
    # spanwise homogeneous IC
    assert np.allclose(u[:, :, :, 0], u[:, :, :, 2])


def test_dmr_curvilinear_mapping_fixes_boundaries():
    case = DoubleMachReflection((64, 16), curvilinear=True)
    s = np.stack(np.meshgrid(np.linspace(0, 1, 9), np.linspace(0, 1, 9),
                             indexing="ij"))
    x = case.mapping(s)
    assert np.allclose(x[0][0, :], 0.0)
    assert np.allclose(x[0][-1, :], 4.0)
    assert np.allclose(x[1][:, 0], 0.0)
    assert np.allclose(x[1][:, -1], 1.0)
    # genuinely non-uniform inside
    interior = x[0][1:-1, 0]
    uniform = np.linspace(0, 4, 9)[1:-1]
    assert not np.allclose(interior, uniform)


def test_dmr_wall_bc_reflects():
    case = DoubleMachReflection((64, 16))
    geom = case.geometry0()
    ng = 2
    box = Box((48, 0), (63, 15))  # touches the wall, x > X0
    fab = FArrayBox(box, case.layout.ncons, ng)
    cfab = FArrayBox(box, 2, ng)
    cfab.whole()[...] = case.coordinates(geom, fab.grown_box())
    u0 = case.initial_condition(cfab.whole())
    fab.whole()[...] = u0
    case.bc_fill(fab, geom, 0.0, cfab)
    # ghost below wall mirrors interior with flipped y-momentum
    interior = fab.view(Box((50, 0), (50, 1)))
    ghost = fab.view(Box((50, -2), (50, -1)))
    assert ghost[0, 0, 1] == interior[0, 0, 0]  # density mirrored
    assert ghost[2, 0, 1] == -interior[2, 0, 0]  # y-momentum flipped
    assert ghost[1, 0, 1] == interior[1, 0, 0]  # x-momentum kept


def test_dmr_rejects_bad_dim():
    with pytest.raises(ValueError):
        DoubleMachReflection((64,))


def test_stretched_mapping_monotone_and_fixed_ends():
    m = stretched_mapping((2.0, 1.0), amplitude=0.3)
    s = np.stack(np.meshgrid(np.linspace(0, 1, 33), np.linspace(0, 1, 5),
                             indexing="ij"))
    x = m(s)
    assert x[0].min() == pytest.approx(0.0, abs=1e-12)
    assert x[0].max() == pytest.approx(2.0, abs=1e-12)
    assert np.all(np.diff(x[0][:, 0]) > 0)
    with pytest.raises(ValueError):
        stretched_mapping((1.0,), amplitude=1.5)


def test_tanh_cluster_mapping_clusters_at_wall():
    m = tanh_cluster_mapping((1.0, 1.0), beta=3.0, axis=1)
    s = np.stack(np.meshgrid(np.array([0.5]), np.linspace(0, 1, 41),
                             indexing="ij"))
    y = m(s)[1][0]
    dy = np.diff(y)
    assert dy[0] < dy[-1]  # finer spacing at the wall end
    assert np.all(dy > 0)
    assert y[0] == pytest.approx(0.0, abs=1e-12)
    assert y[-1] == pytest.approx(1.0, abs=1e-12)
    with pytest.raises(ValueError):
        tanh_cluster_mapping((1.0, 1.0), beta=-1.0)


def test_compression_ramp_mapping():
    m = compression_ramp_mapping((2.0, 1.0), angle_deg=30.0, corner=0.5,
                                 smoothing=0.02)
    s = np.stack(np.meshgrid(np.linspace(0, 1, 41), np.linspace(0, 1, 9),
                             indexing="ij"))
    x = m(s)
    # wall (j=0): flat before the corner, ramping after
    wall_y = x[1][:, 0]
    assert np.allclose(wall_y[:10], 0.0, atol=1e-3)
    assert wall_y[-1] > 0.3  # risen along the 30-degree ramp
    # top boundary stays flat
    assert np.allclose(x[1][:, -1], 1.0)
    # mapping is not folded
    assert np.all(np.diff(x[0][:, 0]) > 0)
