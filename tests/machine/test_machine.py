"""Tests for the Summit machine models."""

import numpy as np
import pytest

from repro.kernels.counts import (
    UPDATE_BUDGET,
    VISCOUS_BUDGET,
    WENO_BUDGET,
)
from repro.machine.gpu import V100Model
from repro.machine.network import FatTreeModel
from repro.machine.node import Power9Model
from repro.machine.roofline import hierarchical_roofline, roofline_from_launches
from repro.machine.summit import SUMMIT


def test_summit_spec():
    assert SUMMIT.gpus_per_node == 6
    assert SUMMIT.cores_per_node == 44
    assert SUMMIT.ranks_for(16, on_gpu=True) == 96
    assert SUMMIT.ranks_for(16, on_gpu=False) == 704
    with pytest.raises(ValueError):
        SUMMIT.ranks_for(0, True)


def test_v100_occupancy_matches_paper():
    """255 registers/thread -> exactly the 12.5% the paper reports."""
    v = V100Model()
    assert v.theoretical_occupancy(255) == pytest.approx(0.125)
    assert v.theoretical_occupancy(32) == 1.0
    assert v.theoretical_occupancy(128) == 0.25
    with pytest.raises(ValueError):
        v.theoretical_occupancy(0)


def test_v100_weno_roofline_matches_paper():
    """Fig. 4: ~300 DP Gflop/s, ~4% of peak, bandwidth-bound."""
    rp = hierarchical_roofline(WENO_BUDGET)
    assert 250e9 < rp.achieved_flops_per_s < 400e9
    assert 0.03 < rp.fraction_of_peak < 0.05
    assert rp.is_bandwidth_bound()
    assert rp.occupancy == pytest.approx(0.125)
    # hierarchical AI ordering: L1 < L2 < DRAM intensity
    assert rp.ai["L1"] < rp.ai["L2"] < rp.ai["DRAM"]


def test_update_kernel_not_occupancy_limited():
    """The trivial saxpy kernel has low register pressure, higher ceiling."""
    v = V100Model()
    assert v.achieved_flops(UPDATE_BUDGET) != v.achieved_flops(WENO_BUDGET)
    occ_update = v.theoretical_occupancy(UPDATE_BUDGET.registers_per_thread)
    assert occ_update > 0.125


def test_gpu_kernel_time_scaling():
    """Fig. 3 shape: GPU efficiency grows with problem size."""
    v = V100Model()
    p9 = Power9Model()
    speedups = []
    for n in (8_000, 50_000, 200_000):
        t_gpu = v.kernel_time(WENO_BUDGET, n)
        t_cpu = p9.kernel_time(WENO_BUDGET, n, "cpp")
        speedups.append(t_cpu / t_gpu)
    assert speedups[0] < speedups[1] < speedups[2]
    assert 1.5 < speedups[0] < 5.0  # small-problem speedup ~2.5x
    assert 10.0 < speedups[2] < 18.0  # large-problem speedup ~15.8x


def test_cpp_slowdown():
    """Sec. VI-A: C++ kernels ~1.2x slower than Fortran on POWER9."""
    p9 = Power9Model()
    tf = p9.kernel_time(WENO_BUDGET, 100_000, "fortran")
    tc = p9.kernel_time(WENO_BUDGET, 100_000, "cpp")
    assert tc / tf == pytest.approx(1.2)
    with pytest.raises(ValueError):
        p9.kernel_time(WENO_BUDGET, 10, "rust")


def test_cpu_per_core():
    p9 = Power9Model()
    t_all = p9.kernel_time(WENO_BUDGET, 22_000)
    t_one = p9.per_core_time(WENO_BUDGET, 1_000)
    assert t_one == pytest.approx(t_all)
    with pytest.raises(ValueError):
        p9.kernel_time(WENO_BUDGET, 10, cores=23)


def test_gpu_utilization_monotone():
    v = V100Model()
    u = [v.utilization(n) for n in (0, 1_000, 50_000, 1_000_000)]
    assert u[0] == 0.0
    assert all(a < b for a, b in zip(u, u[1:]))
    assert u[-1] > 0.9


def test_network_p2p_contention_grows():
    net = FatTreeModel()
    assert net.p2p_effective_bw(4) > net.p2p_effective_bw(1024)
    assert net.global_effective_bw(4) > net.global_effective_bw(1024)
    # global contention is the stronger effect
    ratio_g = net.global_effective_bw(4) / net.global_effective_bw(1024)
    ratio_p = net.p2p_effective_bw(4) / net.p2p_effective_bw(1024)
    assert ratio_g > ratio_p


def test_network_p2p_time_components():
    net = FatTreeModel()
    t = net.p2p_time(1e6, 1e6, 10, nodes=16)
    assert t > 0
    # more off-node volume -> more time
    assert net.p2p_time(2e6, 1e6, 10, 16) > t
    # more nodes -> more contention -> more time
    assert net.p2p_time(1e6, 1e6, 10, 1024) > t


def test_reduction_and_barrier_log_scaling():
    net = FatTreeModel()
    t64 = net.reduction_time(64)
    t4096 = net.reduction_time(4096)
    assert t4096 == pytest.approx(2.0 * t64, rel=0.01)  # 6 vs 12 tree levels
    assert net.barrier_time(1024) > net.barrier_time(4)


def test_roofline_from_launches():
    from repro.kernels.device import GpuDevice

    dev = GpuDevice()
    dev.launch("WENOx", lambda: None, 100_000,
               WENO_BUDGET.flops_per_point,
               WENO_BUDGET.dram_bytes_per_point,
               WENO_BUDGET.l2_amplification,
               WENO_BUDGET.l1_amplification)
    v = V100Model()
    wall = v.kernel_time(WENO_BUDGET, 100_000)
    rp = roofline_from_launches(dev, "WENOx", wall)
    assert rp.kernel == "WENOx"
    assert 0.01 < rp.fraction_of_peak < 0.06
    assert rp.ai["DRAM"] == pytest.approx(WENO_BUDGET.flops_per_point
                                          / WENO_BUDGET.dram_bytes_per_point)
    with pytest.raises(ValueError):
        roofline_from_launches(dev, "WENOx", 0.0)
