"""Tests for the simulated GPU device."""

import numpy as np
import pytest

from repro.kernels.device import (
    DeviceMemoryError,
    GpuDevice,
    V100_MEMORY_BYTES,
)


def test_default_is_v100_capacity():
    dev = GpuDevice()
    assert dev.memory_bytes == V100_MEMORY_BYTES == 16 * 1024**3


def test_alloc_free_accounting():
    dev = GpuDevice(memory_bytes=1000)
    a = dev.alloc((10,))  # 80 bytes
    assert dev.bytes_in_use == 80
    b = dev.alloc((5,))
    assert dev.bytes_in_use == 120
    a.free()
    assert dev.bytes_in_use == 40
    a.free()  # idempotent
    assert dev.bytes_in_use == 40
    b.free()
    assert dev.bytes_in_use == 0
    assert dev.high_water == 120


def test_capacity_enforced():
    dev = GpuDevice(memory_bytes=100)
    dev.alloc((10,))
    with pytest.raises(DeviceMemoryError):
        dev.alloc((10,))


def test_context_manager_frees():
    dev = GpuDevice(memory_bytes=1000)
    with dev.alloc((10,)) as scratch:
        assert dev.bytes_in_use == 80
        scratch.data[...] = 1.0
    assert dev.bytes_in_use == 0


def test_upload_copies():
    dev = GpuDevice()
    host = np.arange(5.0)
    d = dev.upload(host)
    host[0] = 99.0
    assert d.data[0] == 0.0


def test_launch_records_and_returns():
    dev = GpuDevice()
    out = dev.launch("WENOx", lambda: np.ones(3), npoints=1000,
                     flops_per_point=600, dram_bytes_per_point=400)
    assert np.all(out == 1.0)
    rec = dev.launches[0]
    assert rec.name == "WENOx"
    assert rec.flops == 600000
    assert rec.dram_bytes == 400000
    assert rec.l2_bytes == 640000
    assert rec.l1_bytes == 1600000


def test_reduce():
    dev = GpuDevice()
    assert dev.reduce("ComputeDt", np.array([3.0, 1.0, 2.0]), "min") == 1.0
    assert dev.reduce("ComputeDt", np.array([3.0, 1.0]), "max") == 3.0
    assert dev.reduce("ComputeDt", np.array([3.0, 1.0]), "sum") == 4.0
    with pytest.raises(ValueError):
        dev.reduce("ComputeDt", np.array([1.0]), "prod")
    assert len(dev.launches) == 3


def test_totals_and_by_kernel():
    dev = GpuDevice()
    dev.launch("A", lambda: None, 10, 2, 4)
    dev.launch("A", lambda: None, 10, 2, 4)
    dev.launch("B", lambda: None, 5, 1, 1)
    assert set(dev.launches_by_kernel()) == {"A", "B"}
    tot = dev.totals("A")
    assert tot.flops == 40
    assert dev.totals().npoints == 25
    dev.reset()
    assert dev.launches == []


def test_double_free_detection():
    dev = GpuDevice(memory_bytes=1000)
    dev._allocate(100)
    dev._release(100)
    with pytest.raises(RuntimeError):
        dev._release(100)
