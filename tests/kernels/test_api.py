"""Tests for the kernel backend API (fortran/cpp/gpu)."""

import numpy as np
import pytest

from repro.kernels.api import BACKENDS, KernelSet, make_backend
from repro.kernels.device import DeviceMemoryError, GpuDevice
from repro.numerics.eos import IdealGasEOS
from repro.numerics.metrics import CartesianMetrics
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux, constant_viscosity

NG = 4
EOS = IdealGasEOS()
LAY = StateLayout(dim=2)


def smooth_state(n=24, ng=NG, seed=0):
    rng = np.random.default_rng(seed)
    ntot = n + 2 * ng
    x = ((np.arange(-ng, n + ng) % n) + 0.5) / n
    xx, yy = np.meshgrid(x, x, indexing="ij")
    rho = 1.0 + 0.2 * np.sin(2 * np.pi * xx) * np.cos(2 * np.pi * yy)
    vel = np.stack([0.3 + 0.1 * np.sin(2 * np.pi * yy),
                    -0.2 + 0.1 * np.cos(2 * np.pi * xx)])
    p = 1.0 + 0.1 * np.cos(2 * np.pi * xx)
    return EOS.conservative(LAY, rho, vel, p)


def test_make_backend_validation():
    with pytest.raises(ValueError):
        make_backend("cuda", LAY, EOS)


def test_gpu_backend_gets_default_device():
    ks = make_backend("gpu", LAY, EOS)
    assert ks.device is not None
    assert ks.on_gpu


def test_rhs_shapes_all_backends():
    u = smooth_state()
    met = CartesianMetrics((1.0 / 24, 1.0 / 24))
    for b in BACKENDS:
        ks = make_backend(b, LAY, EOS,
                          viscous=ViscousFlux(constant_viscosity(1e-3)))
        rhs = ks.rhs(u.copy(), met, NG)
        assert rhs.shape == (4, 24, 24)
        assert np.isfinite(rhs).all()


def test_fortran_cpp_drift_small_but_generally_nonzero():
    """Backends agree to near machine precision but not bit-exactly."""
    u = smooth_state()
    met = CartesianMetrics((1.0 / 24, 1.0 / 24))
    rf = make_backend("fortran", LAY, EOS).rhs(u.copy(), met, NG)
    rc = make_backend("cpp", LAY, EOS).rhs(u.copy(), met, NG)
    diff = np.abs(rf - rc)
    scale = np.abs(rf).max()
    assert diff.max() < 1e-10 * max(scale, 1.0)  # tiny
    assert diff.max() > 0.0  # but real: different accumulation order


def test_gpu_matches_cpp_exactly():
    """The paper reports no accuracy change moving C++ kernels to GPU."""
    u = smooth_state()
    met = CartesianMetrics((1.0 / 24, 1.0 / 24))
    rc = make_backend("cpp", LAY, EOS).rhs(u.copy(), met, NG)
    rg = make_backend("gpu", LAY, EOS).rhs(u.copy(), met, NG)
    assert np.array_equal(rc, rg)


def test_gpu_launch_records():
    u = smooth_state()
    met = CartesianMetrics((1.0 / 24, 1.0 / 24))
    ks = make_backend("gpu", LAY, EOS,
                      viscous=ViscousFlux(constant_viscosity(1e-3)))
    ks.rhs(u.copy(), met, NG)
    kernels = ks.device.launches_by_kernel()
    assert set(kernels) == {"WENOx", "WENOy", "Viscous"}
    assert kernels["WENOx"][0].npoints == 24 * 24


def test_gpu_scratch_freed_after_rhs():
    u = smooth_state()
    met = CartesianMetrics((1.0 / 24, 1.0 / 24))
    ks = make_backend("gpu", LAY, EOS)
    ks.rhs(u.copy(), met, NG)
    assert ks.device.bytes_in_use == 0
    assert ks.device.high_water > 0


def test_gpu_memory_limit_on_big_patch():
    dev = GpuDevice(memory_bytes=10_000)
    ks = make_backend("gpu", LAY, EOS, device=dev)
    u = smooth_state(n=32)
    met = CartesianMetrics((1.0 / 32, 1.0 / 32))
    with pytest.raises(DeviceMemoryError):
        ks.rhs(u, met, NG)


def test_update_kernel_all_backends():
    for b in BACKENDS:
        ks = make_backend(b, LAY, EOS)
        u = np.ones((4, 8, 8))
        du = np.zeros_like(u)
        rhs = np.full_like(u, 3.0)
        ks.update(u, du, rhs, dt=0.1, stage=0)
        assert np.allclose(u, 1.0 + 0.3 / 3.0)
        if b == "gpu":
            assert ks.device.launches[-1].name == "Update"


def test_max_rate_matches_across_backends():
    u = smooth_state()
    met = CartesianMetrics((1.0 / 24, 1.0 / 24))
    rates = {b: make_backend(b, LAY, EOS).max_rate(u, met) for b in BACKENDS}
    assert rates["fortran"] == pytest.approx(rates["cpp"])
    assert rates["cpp"] == pytest.approx(rates["gpu"])
    ks = make_backend("gpu", LAY, EOS)
    ks.max_rate(u, met)
    assert ks.device.launches[-1].name == "ComputeDt"


def test_register_state_residency():
    ks = make_backend("gpu", LAY, EOS)
    h = ks.register_state(1024)
    assert ks.device.bytes_in_use == 1024
    h.free()
    assert ks.device.bytes_in_use == 0
    assert make_backend("cpp", LAY, EOS).register_state(1024) is None


def test_nghost_accounts_for_operators():
    ks = make_backend("cpp", LAY, EOS)
    assert ks.nghost == 4  # weno: 3 + 1
    ks2 = make_backend("cpp", LAY, EOS,
                       viscous=ViscousFlux(constant_viscosity(1e-3)))
    assert ks2.nghost == 4  # viscous 4th order needs 4
