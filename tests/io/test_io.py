"""Tests for input decks, plotfiles, and checkpoint/restart."""

import numpy as np
import pytest

from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.inputs import InputDeck
from repro.io.plotfile import (
    read_level,
    read_plotfile_header,
    uniform_slab,
    write_plotfile,
)

DECK = """
# CRoCCo input deck
crocco.version = 2.0
crocco.cfl = 0.4
amr.n_cell = 256 64 32
amr.max_level = 2
amr.blocking_factor = 8
amr.max_grid_size = 128   # the paper's hand-tuned value
mpi.nranks = 12
mpi.ranks_per_node = 6
amr.tagging = momentum
"""


def test_deck_parsing():
    deck = InputDeck.parse(DECK)
    assert deck.get_str("crocco.version") == "2.0"
    assert deck.get_float("crocco.cfl") == 0.4
    assert deck.get_ints("amr.n_cell") == [256, 64, 32]
    assert deck.get_int("amr.max_grid_size") == 128  # comment stripped
    assert deck.get_int("missing.key", 7) == 7
    assert "crocco.version" in deck


def test_deck_bool_parsing():
    deck = InputDeck.parse("a.flag = true\nb.flag = 0\n")
    assert deck.get_bool("a.flag") is True
    assert deck.get_bool("b.flag") is False
    assert deck.get_bool("c.flag", True) is True
    with pytest.raises(ValueError):
        InputDeck.parse("x = maybe").get_bool("x")


def test_deck_malformed():
    with pytest.raises(ValueError):
        InputDeck.parse("just a line without equals")
    with pytest.raises(ValueError):
        InputDeck.parse("key =    # empty value")


def test_deck_to_crocco_config():
    cfg = InputDeck.parse(DECK).to_crocco_config()
    assert cfg.version == "2.0"
    assert cfg.cfl == 0.4
    assert cfg.max_level == 2
    assert cfg.nranks == 12
    assert cfg.tagging == "momentum"
    deck = InputDeck.parse(DECK)
    assert deck.domain_cells() == [256, 64, 32]


def run_small(version="1.1", steps=2):
    case = SodShockTube(32)
    sim = Crocco(case, CroccoConfig(version=version, max_grid_size=16,
                                    blocking_factor=8))
    sim.initialize()
    sim.run(steps)
    return case, sim


def test_plotfile_roundtrip(tmp_path):
    case, sim = run_small()
    pf = write_plotfile(tmp_path / "plt00002", sim)
    header = read_plotfile_header(pf)
    assert header["step"] == 2
    assert header["ncomp"] == 3
    assert header["varnames"] == ["rho_0", "mom_0", "energy"]
    fabs = read_level(pf, 0)
    assert len(fabs) == 2  # 32 cells / 16 per box
    assert fabs[0].shape == (3, 16)
    np.testing.assert_array_equal(fabs[0], sim.state[0].fab(0).valid())


def test_uniform_slab(tmp_path):
    case, sim = run_small()
    pf = write_plotfile(tmp_path / "plt2", sim)
    slab = uniform_slab(pf, level=0, comp=0)
    assert slab.shape == (32,)
    assert not np.isnan(slab).any()
    assert slab[0] == pytest.approx(1.0)  # left density


def test_plotfile_varname_validation(tmp_path):
    case, sim = run_small()
    with pytest.raises(ValueError):
        write_plotfile(tmp_path / "bad", sim, varnames=["rho"])


def test_checkpoint_restart_bit_exact(tmp_path):
    case, sim = run_small(steps=3)
    ck = save_checkpoint(tmp_path / "chk00003", sim)
    # continue the original
    sim.run(2)

    # restore into a fresh driver and continue identically
    case2 = SodShockTube(32)
    sim2 = Crocco(case2, CroccoConfig(version="1.1", max_grid_size=16,
                                      blocking_factor=8))
    load_checkpoint(ck, sim2)
    assert sim2.step_count == 3
    sim2.run(2)
    assert sim2.step_count == sim.step_count
    assert sim2.time == pytest.approx(sim.time)
    for i, fab in sim.state[0]:
        np.testing.assert_array_equal(fab.valid(), sim2.state[0].fab(i).valid())


def test_checkpoint_version_mismatch(tmp_path):
    case, sim = run_small()
    ck = save_checkpoint(tmp_path / "chk", sim)
    other = Crocco(SodShockTube(32), CroccoConfig(version="2.0",
                                                  max_grid_size=16))
    with pytest.raises(ValueError):
        load_checkpoint(ck, other)
