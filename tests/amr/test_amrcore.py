"""Tests for the AmrCore level hierarchy and regridding."""

import numpy as np
import pytest

from repro.amr.amrcore import AmrConfig, AmrCore, optimal_regrid_interval
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.geometry import Geometry
from repro.mpi.comm import Communicator


class TrackingAmr(AmrCore):
    """AmrCore with a movable square feature driving refinement."""

    def __init__(self, geom0, config, comm=None, feature_center=(16, 16),
                 feature_half=3):
        super().__init__(geom0, config, comm)
        self.feature_center = list(feature_center)
        self.feature_half = feature_half
        self.events = []

    def _feature_tags(self, lev):
        r = self.amr_config.ref_ratio ** lev
        cx, cy = (c * r for c in self.feature_center)
        h = self.feature_half * r
        dom = self.geoms[lev].domain
        pts = [
            (i, j)
            for i in range(max(dom.lo[0], cx - h), min(dom.hi[0], cx + h) + 1)
            for j in range(max(dom.lo[1], cy - h), min(dom.hi[1], cy + h) + 1)
        ]
        return np.array(pts, dtype=np.int64)

    def error_est(self, lev):
        return self._feature_tags(lev)

    def make_new_level_from_scratch(self, lev, ba, dm):
        self.events.append(("scratch", lev))

    def make_new_level_from_coarse(self, lev, ba, dm):
        self.events.append(("from_coarse", lev))

    def remake_level(self, lev, ba, dm):
        self.events.append(("remake", lev))

    def clear_level(self, lev):
        self.events.append(("clear", lev))


def make_amr(max_level=2, nranks=2, **kw):
    geom0 = Geometry(Box((0, 0), (63, 63)), (0.0, 0.0), (1.0, 1.0))
    cfg = AmrConfig(max_level=max_level, blocking_factor=8, max_grid_size=32,
                    n_error_buf=1)
    comm = Communicator(nranks, ranks_per_node=1)
    return TrackingAmr(geom0, cfg, comm, **kw)


def test_config_validation():
    with pytest.raises(ValueError):
        AmrConfig(max_level=-1)
    with pytest.raises(ValueError):
        AmrConfig(max_grid_size=100, blocking_factor=8)
    with pytest.raises(ValueError):
        AmrConfig(ref_ratio=1)


def test_init_from_scratch_builds_hierarchy():
    amr = make_amr()
    amr.init_from_scratch()
    assert amr.finest_level == 2
    assert ("scratch", 0) in amr.events
    assert ("from_coarse", 1) in amr.events
    assert ("from_coarse", 2) in amr.events
    # geometries refine by 2 each level
    assert amr.geoms[1].domain.size()[0] == 128
    assert amr.geoms[2].domain.size()[0] == 256


def test_fine_levels_cover_feature():
    amr = make_amr()
    amr.init_from_scratch()
    ba1 = amr.box_arrays[1]
    # the feature at level-0 (13..19)^2 refines to level-1 (26..39)^2
    assert ba1.contains(Box((26, 26), (39, 39)))
    # level 1 grids are far smaller than the full refined domain
    assert ba1.num_pts() < amr.geoms[1].domain.num_pts() // 4


def test_proper_nesting():
    amr = make_amr()
    amr.init_from_scratch()
    ba1 = amr.box_arrays[1]
    ba2 = amr.box_arrays[2]
    # every level-2 box, coarsened to level 1, must be covered by level 1
    for b in ba2:
        assert ba1.contains(b.coarsen(2))


def test_regrid_noop_when_unchanged():
    amr = make_amr()
    amr.init_from_scratch()
    amr.events.clear()
    changed = amr.regrid()
    assert not changed
    assert amr.events == []


def test_regrid_tracks_moving_feature():
    amr = make_amr()
    amr.init_from_scratch()
    old_ba1 = amr.box_arrays[1]
    amr.feature_center = [40, 40]
    changed = amr.regrid()
    assert changed
    assert amr.box_arrays[1] != old_ba1
    assert ("remake", 1) in amr.events
    assert amr.box_arrays[1].contains(Box((74, 74), (86, 86)))


def test_regrid_drops_levels_when_tags_vanish():
    amr = make_amr()
    amr.init_from_scratch()

    amr.error_est = lambda lev: np.empty((0, 2), dtype=np.int64)
    changed = amr.regrid()
    assert changed
    assert amr.finest_level == 0
    assert ("clear", 2) in amr.events
    assert ("clear", 1) in amr.events


def test_regrid_records_metadata_traffic():
    amr = make_amr(nranks=4)
    amr.init_from_scratch()
    amr.comm.ledger.clear()
    amr.feature_center = [44, 20]
    amr.regrid()
    assert amr.comm.ledger.total_bytes("regrid") > 0


def test_amr_savings_in_paper_range():
    """A localized feature yields large point savings vs uniform fine grid."""
    amr = make_amr()
    amr.init_from_scratch()
    savings = amr.amr_savings()
    assert 0.5 < savings < 1.0


def test_num_active_pts():
    amr = make_amr(max_level=0)
    amr.init_from_scratch()
    assert amr.num_active_pts() == 64 * 64
    assert amr.amr_savings() == 0.0


def test_optimal_regrid_interval():
    # 16-cell patches, CFL 0.8: feature crosses half width in ~8.75 steps
    assert optimal_regrid_interval(16, 0.8, n_error_buf=1) == 8
    assert optimal_regrid_interval(4, 1.0) == 1
    with pytest.raises(ValueError):
        optimal_regrid_interval(8, 0.0)
