"""Tests for error tagging and Berger-Rigoutsos clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.cluster import buffer_tags, cluster_tags
from repro.amr.distribution import DistributionMapping
from repro.amr.multifab import MultiFab
from repro.amr.tagging import (
    tag_density_gradient,
    tag_momentum_gradient,
    tag_value_threshold,
    tagged_cells,
    undivided_gradient_magnitude,
)
from repro.mpi.comm import SerialComm


def make_mf(field_fn, ncomp=1, ngrow=1):
    domain = Box((0, 0), (31, 31))
    ba = BoxArray.from_domain(domain, 16, 8)
    mf = MultiFab(ba, DistributionMapping.make(ba, 1), ncomp, ngrow, SerialComm())
    # initialize the whole grown region (plays the role of BC_Fill at the
    # physical boundary), then exchange interior ghosts
    for i, fab in mf:
        b = fab.grown_box()
        ii = np.arange(b.lo[0], b.hi[0] + 1)[:, None]
        jj = np.arange(b.lo[1], b.hi[1] + 1)[None, :]
        for c in range(ncomp):
            fab.view(b)[c] = field_fn(ii, jj, c)
    mf.fill_boundary()
    return mf, domain


def test_gradient_magnitude_of_step():
    arr = np.zeros((8, 8))
    arr[4:, :] = 1.0
    g = undivided_gradient_magnitude(arr)
    assert np.all(g[3:5, :] == 1.0)
    assert np.all(g[:3, :] == 0.0)
    assert np.all(g[5:, :] == 0.0)


def test_gradient_magnitude_smooth_linear():
    arr = np.outer(np.arange(8.0), np.ones(8))
    g = undivided_gradient_magnitude(arr)
    assert np.allclose(g, 1.0)


def test_tag_density_gradient_finds_shock():
    mf, domain = make_mf(lambda i, j, c: np.where(i >= 16, 10.0, 1.0))
    tags = tag_density_gradient(mf, 0, 0.5)
    cells = tagged_cells(mf, tags)
    assert len(cells) > 0
    assert set(cells[:, 0].tolist()) <= {15, 16}


def test_tag_momentum_gradient_multi_component():
    mf, _ = make_mf(lambda i, j, c: np.where(j >= 16, float(c), 0.0), ncomp=3)
    tags = tag_momentum_gradient(mf, (1, 2), 0.5)
    cells = tagged_cells(mf, tags)
    assert set(cells[:, 1].tolist()) <= {15, 16}


def test_tag_value_threshold():
    mf, _ = make_mf(lambda i, j, c: np.where((i == 3) & (j == 3), 5.0, 0.0))
    tags = tag_value_threshold(mf, 0, 1.0)
    cells = tagged_cells(mf, tags)
    assert cells.tolist() == [[3, 3]]


def test_no_tags_empty_array():
    mf, _ = make_mf(lambda i, j, c: np.zeros_like(i, dtype=float))
    tags = tag_value_threshold(mf, 0, 1.0)
    assert tagged_cells(mf, tags).shape == (0, 2)


def test_buffer_tags_grows_and_clips():
    domain = Box((0, 0), (31, 31))
    tags = np.array([[0, 0], [16, 16]])
    out = buffer_tags(tags, 2, domain)
    assert [0, 0] in out.tolist()
    assert [-1, 0] not in out.tolist()  # clipped at domain edge
    assert [18, 18] in out.tolist()
    # corner tag buffered: 3x3 region (clipped), center: 5x5
    assert len(out) == 9 + 25


def test_cluster_covers_all_tags():
    domain = Box((0, 0), (63, 63))
    rng = np.random.default_rng(3)
    tags = rng.integers(10, 50, size=(200, 2))
    ba = cluster_tags(tags, domain, blocking_factor=4, max_grid_size=32)
    for t in tags:
        assert ba.contains(Box(tuple(t), tuple(t))), f"tag {t} uncovered"


def test_cluster_respects_constraints():
    domain = Box((0, 0), (63, 63))
    rng = np.random.default_rng(5)
    tags = rng.integers(0, 64, size=(100, 2))
    ba = cluster_tags(tags, domain, blocking_factor=8, max_grid_size=16)
    assert ba.is_disjoint()
    for b in ba:
        assert max(b.size()) <= 16
        assert domain.contains(b)


def test_cluster_separates_distant_clusters():
    domain = Box((0, 0), (127, 127))
    a = np.array([[i, j] for i in range(4, 10) for j in range(4, 10)])
    b = np.array([[i, j] for i in range(100, 106) for j in range(100, 106)])
    tags = np.concatenate([a, b])
    ba = cluster_tags(tags, domain, blocking_factor=4, max_grid_size=64)
    # two well-separated clusters should not be covered by one huge box
    assert ba.num_pts() < domain.num_pts() // 4


def test_cluster_empty():
    ba = cluster_tags(np.empty((0, 2), dtype=int), Box((0, 0), (31, 31)))
    assert len(ba) == 0


def test_cluster_single_tag_aligned():
    domain = Box((0, 0), (31, 31))
    ba = cluster_tags(np.array([[13, 22]]), domain, blocking_factor=8,
                      max_grid_size=32)
    assert len(ba) == 1
    b = ba[0]
    assert b.contains(Box((13, 22), (13, 22)))
    for d in range(2):
        assert b.lo[d] % 8 == 0
        assert b.size()[d] % 8 == 0


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                min_size=1, max_size=80, unique=True))
def test_cluster_property_all_tags_covered_disjoint(tag_list):
    domain = Box((0, 0), (63, 63))
    tags = np.array(tag_list)
    ba = cluster_tags(tags, domain, blocking_factor=4, max_grid_size=32)
    assert ba.is_disjoint()
    for t in tags:
        assert ba.contains(Box(tuple(t), tuple(t)))
