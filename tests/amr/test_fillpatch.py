"""Tests for FillPatch single-level, two-level and coarse-patch fills."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.fillpatch import (
    fill_coarse_patch,
    fill_patch_single_level,
    fill_patch_two_levels,
)
from repro.amr.geometry import Geometry
from repro.amr.interp_curvilinear import CurvilinearInterp
from repro.amr.interpolate import TrilinearInterp
from repro.amr.multifab import MultiFab
from repro.mpi.comm import Communicator


def linear(mf, coeffs, scale=1.0):
    """Fill valid regions with an affine function of cell centers (index space)."""
    for i, fab in mf:
        b = fab.box
        grids = np.meshgrid(
            *[(np.arange(b.lo[d], b.hi[d] + 1) + 0.5) * scale for d in range(b.dim)],
            indexing="ij",
        )
        fab.valid()[0] = 1.0 + sum(c * g for c, g in zip(coeffs, grids))


def setup_two_levels(ngrow=2, nranks=2):
    comm = Communicator(nranks, ranks_per_node=1)
    dom_c = Box((0, 0), (31, 31))
    geom_c = Geometry(dom_c, (0.0, 0.0), (1.0, 1.0))
    geom_f = geom_c.refine(2)
    ba_c = BoxArray.from_domain(dom_c, 16, 8)
    ba_f = BoxArray([Box((16, 16), (47, 47))])  # covers coarse (8,8)-(23,23)
    crse = MultiFab(ba_c, DistributionMapping.make(ba_c, nranks), 1, ngrow, comm)
    fine = MultiFab(ba_f, DistributionMapping.make(ba_f, nranks), 1, ngrow, comm)
    return crse, fine, geom_c, geom_f


def test_single_level_with_bc():
    comm = Communicator(2, ranks_per_node=1)
    dom = Box((0, 0), (15, 15))
    geom = Geometry(dom, (0.0, 0.0), (1.0, 1.0))
    ba = BoxArray.from_domain(dom, 8, 8)
    mf = MultiFab(ba, DistributionMapping.make(ba, 2), 1, 1, comm)
    mf.set_val(-1.0)
    linear(mf, (1.0, 0.0))

    calls = []

    def bc(fab, g, t):
        calls.append(fab.box)

    fill_patch_single_level(mf, geom, bc, time=2.5)
    assert len(calls) == len(mf)
    # interior ghosts continue the linear field
    fab = mf.fab(0)
    assert fab.view(Box((8, 0), (8, 0)))[0, 0, 0] == pytest.approx(1.0 + 8.5)


def test_two_levels_interpolates_interface_ghosts():
    crse, fine, geom_c, geom_f = setup_two_levels()
    # linear field in *physical* space: coarse spacing 2x fine spacing
    linear(crse, (2.0, 3.0), scale=1.0)
    linear(fine, (2.0, 3.0), scale=0.5)
    fill_patch_two_levels(fine, crse, geom_f, geom_c, 2, TrilinearInterp())
    fab = fine.fab(0)
    # ghost cells at fine x=14..15 (outside fine BA) interpolated from coarse;
    # linear field must be reproduced exactly in physical (coarse-index) space
    ghost = fab.view(Box((14, 16), (15, 47)))
    ii = (np.arange(14, 16) + 0.5) * 0.5
    jj = (np.arange(16, 48) + 0.5) * 0.5
    expected = 1.0 + 2.0 * ii[:, None] + 3.0 * jj[None, :]
    assert np.allclose(ghost[0], expected)


def test_two_levels_leaves_outside_domain_to_bc():
    crse, fine, geom_c, geom_f = setup_two_levels()
    fine2 = MultiFab(
        BoxArray([Box((0, 0), (31, 31))]),
        DistributionMapping.make(BoxArray([Box((0, 0), (31, 31))]), 2),
        1, 2, crse.comm,
    )
    crse.set_val(5.0)
    fine2.set_val(-3.0)
    hits = []

    def bc(fab, g, t):
        hits.append(True)
        # physical BC: set everything outside the domain to 99
        gb = fab.grown_box()
        arr = fab.whole()
        for d in range(gb.dim):
            if gb.lo[d] < g.domain.lo[d]:
                sl = [slice(None)] * arr.ndim
                sl[d + 1] = slice(0, g.domain.lo[d] - gb.lo[d])
                arr[tuple(sl)] = 99.0

    fill_patch_two_levels(fine2, crse, geom_f, geom_c, 2, TrilinearInterp(),
                          bc_fill=bc)
    assert hits
    fab = fine2.fab(0)
    assert fab.view(Box((-1, 0), (-1, 0)))[0, 0, 0] == 99.0


def test_two_levels_curvilinear_records_global_parallelcopy():
    crse, fine, geom_c, geom_f = setup_two_levels()
    dim = 2
    ccoords = MultiFab.like(crse, ncomp=dim)
    fcoords = MultiFab.like(fine, ncomp=dim)
    # uniform coordinates (content irrelevant for the traffic assertion)
    for mf, scale in ((ccoords, 1.0), (fcoords, 0.5)):
        for i, fab in mf:
            gb = fab.grown_box()
            ii = (np.arange(gb.lo[0], gb.hi[0] + 1) + 0.5) * scale
            jj = (np.arange(gb.lo[1], gb.hi[1] + 1) + 0.5) * scale
            fab.data[0] = ii[:, None] * np.ones_like(jj)[None, :]
            fab.data[1] = np.ones_like(ii)[:, None] * jj[None, :]
    linear(crse, (1.0, 1.0), 1.0)
    linear(fine, (1.0, 1.0), 0.5)
    crse.comm.ledger.clear()
    fill_patch_two_levels(fine, crse, geom_f, geom_c, 2, CurvilinearInterp(),
                          crse_coords=ccoords, fine_coords=fcoords)
    pc = crse.comm.ledger.total_bytes("parallelcopy")
    assert pc > 0
    # the coordinates gather dominates: it copies the whole coarse level +
    # ghosts, far exceeding the interface stencil volume
    assert pc > ccoords.num_pts() * dim * 8


def test_trilinear_no_coords_no_big_parallelcopy():
    """CRoCCo 2.1: built-in interpolator avoids the global coordinate copy."""
    crse, fine, geom_c, geom_f = setup_two_levels()
    linear(crse, (1.0, 1.0), 1.0)
    linear(fine, (1.0, 1.0), 0.5)
    crse.comm.ledger.clear()
    fill_patch_two_levels(fine, crse, geom_f, geom_c, 2, TrilinearInterp())
    pc = crse.comm.ledger.total_bytes("parallelcopy")
    # only the interface stencils move: far less than a whole-level copy
    assert pc < crse.num_pts() * 8


def test_fill_coarse_patch_initializes_new_level():
    crse, fine, geom_c, geom_f = setup_two_levels()
    linear(crse, (2.0, 0.0), 1.0)
    fine.set_val(0.0)
    fill_coarse_patch(fine, crse, geom_f, 2, TrilinearInterp())
    fab = fine.fab(0)
    ii = (np.arange(16, 48) + 0.5) * 0.5
    expected = 1.0 + 2.0 * ii
    assert np.allclose(fab.valid()[0, :, 0], expected)


def test_curvilinear_requires_coords_error():
    crse, fine, geom_c, geom_f = setup_two_levels()
    with pytest.raises(ValueError):
        fill_patch_two_levels(fine, crse, geom_f, geom_c, 2, CurvilinearInterp())


def test_nearest_fill_interior_gap():
    """_nearest_fill repairs NaN regions anywhere, not just at margins."""
    import numpy as np

    from repro.amr.fillpatch import _nearest_fill

    data = np.full((1, 8, 8), np.nan)
    data[0, 2:4, 2:4] = 7.0
    _nearest_fill(data)
    assert np.isfinite(data).all()
    assert np.all(data == 7.0)

    data = np.arange(16.0).reshape(1, 4, 4).copy()
    data[0, 1, 1] = np.nan
    _nearest_fill(data)
    assert np.isfinite(data).all()

    with pytest.raises(ValueError):
        _nearest_fill(np.full((1, 3, 3), np.nan))


def test_two_levels_weno_interpolator():
    """The WENO interface interpolator works inside FillPatchTwoLevels."""
    from repro.amr.interp_weno import WenoInterp

    crse, fine, geom_c, geom_f = setup_two_levels(ngrow=2)
    linear(crse, (1.0, 2.0), 1.0)
    linear(fine, (1.0, 2.0), 0.5)
    fill_patch_two_levels(fine, crse, geom_f, geom_c, 2, WenoInterp())
    fab = fine.fab(0)
    ghost = fab.view(Box((14, 18), (15, 45)))
    ii = (np.arange(14, 16) + 0.5) * 0.5
    jj = (np.arange(18, 46) + 0.5) * 0.5
    expected = 1.0 + ii[:, None] + 2.0 * jj[None, :]
    assert np.allclose(ghost[0], expected, atol=1e-6)


def test_three_level_fillpatch_chain():
    """Level 2 ghosts fill from level 1 even when level 1 is a partial cover."""
    comm = Communicator(2, ranks_per_node=1)
    dom0 = Box((0, 0), (31, 31))
    geom = [Geometry(dom0, (0.0, 0.0), (1.0, 1.0))]
    geom.append(geom[0].refine(2))
    geom.append(geom[1].refine(2))
    ba0 = BoxArray.from_domain(dom0, 16, 8)
    ba1 = BoxArray([Box((16, 16), (47, 47))])
    ba2 = BoxArray([Box((48, 48), (79, 79))])  # inside ba1's refinement
    mfs = []
    for ba, ng in ((ba0, 2), (ba1, 2), (ba2, 2)):
        dm = DistributionMapping.make(ba, 2)
        mfs.append(MultiFab(ba, dm, 1, ng, comm))
    for lev, scale in ((0, 1.0), (1, 0.5), (2, 0.25)):
        linear(mfs[lev], (2.0, 1.0), scale)
    fill_patch_two_levels(mfs[2], mfs[1], geom[2], geom[1], 2, TrilinearInterp())
    fab = mfs[2].fab(0)
    # ghost at fine-2 (46..47, j) comes from level 1 data
    ghost = fab.view(Box((46, 48), (47, 79)))
    ii = (np.arange(46, 48) + 0.5) * 0.25
    jj = (np.arange(48, 80) + 0.5) * 0.25
    expected = 1.0 + 2.0 * ii[:, None] + jj[None, :]
    assert np.allclose(ghost[0], expected)
