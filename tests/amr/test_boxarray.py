"""Tests for BoxArray decomposition and intersection queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.intvect import IntVect


def test_from_domain_covers_exactly():
    domain = Box((0, 0, 0), (63, 63, 31))
    ba = BoxArray.from_domain(domain, max_grid_size=16, blocking_factor=8)
    assert ba.num_pts() == domain.num_pts()
    assert ba.is_disjoint()
    for b in ba:
        assert max(b.size()) <= 16
        for d in range(3):
            assert b.size()[d] % 8 == 0
            assert b.lo[d] % 8 == 0


def test_from_domain_rejects_bad_blocking():
    with pytest.raises(ValueError):
        BoxArray.from_domain(Box((0, 0), (62, 63)), 16, 8)  # 63 cells not /8
    with pytest.raises(ValueError):
        BoxArray.from_domain(Box((0, 0), (63, 63)), 12, 8)  # 12 not /8


def test_single_box_when_small():
    domain = Box((0, 0), (7, 7))
    ba = BoxArray.from_domain(domain, 128, 8)
    assert len(ba) == 1
    assert ba[0] == domain


def test_intersecting_and_intersections():
    domain = Box((0, 0), (31, 31))
    ba = BoxArray.from_domain(domain, 8, 8)
    assert len(ba) == 16
    region = Box((6, 6), (9, 9))  # spans 4 boxes
    hits = ba.intersecting(region)
    assert len(hits) == 4
    for i, overlap in ba.intersections(region):
        assert overlap == ba[i].intersect(region)
        assert not overlap.is_empty()


def test_intersecting_empty_region():
    ba = BoxArray.from_domain(Box((0, 0), (15, 15)), 8, 8)
    assert ba.intersecting(Box((5, 5), (4, 4))) == []


def test_contains_and_complement():
    ba = BoxArray.from_domain(Box((0, 0), (15, 15)), 8, 8)
    assert ba.contains(Box((3, 3), (12, 12)))
    assert not ba.contains(Box((-1, 0), (3, 3)))
    comp = ba.complement_in(Box((-2, 0), (3, 3)))
    assert sum(b.num_pts() for b in comp) == 2 * 4


def test_complement_of_partial_cover():
    ba = BoxArray([Box((0, 0), (3, 3))])
    comp = ba.complement_in(Box((0, 0), (7, 7)))
    assert sum(b.num_pts() for b in comp) == 64 - 16


def test_minimal_box():
    ba = BoxArray([Box((0, 0), (3, 3)), Box((10, 2), (12, 8))])
    assert ba.minimal_box() == Box((0, 0), (12, 8))


def test_refine_coarsen_roundtrip():
    ba = BoxArray.from_domain(Box((0, 0), (31, 31)), 16, 8)
    assert ba.refine(2).coarsen(2) == ba
    assert ba.refine(2).num_pts() == 4 * ba.num_pts()


def test_rejects_empty_boxes():
    with pytest.raises(ValueError):
        BoxArray([Box((0, 0), (-1, 3))])


def test_rejects_mixed_dims():
    with pytest.raises(ValueError):
        BoxArray([Box((0, 0), (1, 1)), Box((0, 0, 0), (1, 1, 1))])


@settings(max_examples=25)
@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
    st.tuples(st.integers(1, 30), st.integers(1, 30)),
)
def test_intersection_query_matches_bruteforce(mx, my, rlo, rsize):
    domain = Box((0, 0), (8 * mx * 4 - 1, 8 * my * 4 - 1))
    ba = BoxArray.from_domain(domain, (8 * mx, 8 * my), 8)
    region = Box(rlo, tuple(l + s - 1 for l, s in zip(rlo, rsize)))
    fast = set(ba.intersecting(region))
    slow = {i for i, b in enumerate(ba) if b.intersects(region)}
    assert fast == slow
