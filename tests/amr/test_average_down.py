"""Tests for AverageDown restriction."""

import numpy as np
import pytest

from repro.amr.average_down import _block_mean, average_down
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.multifab import MultiFab
from repro.mpi.comm import Communicator


def two_level(ncomp=1, nranks=2):
    comm = Communicator(nranks, ranks_per_node=1)
    ba_c = BoxArray.from_domain(Box((0, 0), (15, 15)), 8, 8)
    ba_f = BoxArray([Box((8, 8), (23, 23))])  # covers coarse (4,4)-(11,11)
    crse = MultiFab(ba_c, DistributionMapping.make(ba_c, nranks), ncomp, 0, comm)
    fine = MultiFab(ba_f, DistributionMapping.make(ba_f, nranks), ncomp, 0, comm)
    return fine, crse


def test_block_mean():
    arr = np.arange(16, dtype=float).reshape(1, 4, 4)
    from repro.amr.intvect import IntVect

    out = _block_mean(arr, IntVect(2, 2))
    assert out.shape == (1, 2, 2)
    assert out[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


def test_average_down_constant():
    fine, crse = two_level()
    fine.set_val(4.0)
    crse.set_val(1.0)
    average_down(fine, crse, 2)
    # covered coarse cells become 4, uncovered stay 1
    assert crse.fab(0).valid()[0, 0, 0] == 1.0  # coarse (0,0) uncovered
    # coarse cell (4,4) covered by fine box
    covered = [f.view(Box((4, 4), (4, 4)))[0, 0, 0]
               for i, f in crse if f.box.contains(Box((4, 4), (4, 4)))]
    assert covered == [4.0]


def test_average_down_is_exact_mean():
    fine, crse = two_level()
    rng = np.random.default_rng(7)
    fine.fab(0).valid()[0] = rng.random((16, 16))
    average_down(fine, crse, 2)
    fv = fine.fab(0).valid()[0]
    expected = fv.reshape(8, 2, 8, 2).mean(axis=(1, 3))
    # coarse cells (4,4)-(11,11) spread over the 4 coarse boxes
    for i, cfab in crse:
        overlap = cfab.box.intersect(Box((4, 4), (11, 11)))
        if overlap.is_empty():
            continue
        got = cfab.view(overlap)[0]
        sl = tuple(slice(l - 4, h - 4 + 1) for l, h in zip(overlap.lo, overlap.hi))
        assert np.allclose(got, expected[sl])


def test_preserves_linear_fields():
    """Averaging a linear field gives the coarse-cell-centered value."""
    fine, crse = two_level()
    ffab = fine.fab(0)
    ii = np.arange(8, 24)[:, None] + 0.5
    jj = np.arange(8, 24)[None, :] + 0.5
    ffab.valid()[0] = ii + 2 * jj  # linear in fine index space
    average_down(fine, crse, 2)
    # coarse cell (4,4): fine center average = ((8.5+9.5)/2, same j) -> 9, 9
    for i, cfab in crse:
        if cfab.box.contains(Box((4, 4), (4, 4))):
            assert cfab.view(Box((4, 4), (4, 4)))[0, 0, 0] == pytest.approx(9 + 2 * 9)


def test_traffic_recorded():
    fine, crse = two_level(nranks=2)
    fine.comm.ledger.clear()
    average_down(fine, crse, 2)
    assert fine.comm.ledger.total_bytes("averagedown") > 0


def test_component_mismatch():
    fine, crse = two_level(ncomp=2)
    bad = MultiFab(crse.ba, crse.dm, 1, 0, crse.comm)
    with pytest.raises(ValueError):
        average_down(fine, bad, 2)


def test_misaligned_fine_box_trimmed():
    """A fine box not ratio-aligned only updates fully-covered coarse cells."""
    comm = Communicator(1, ranks_per_node=1)
    ba_c = BoxArray.from_domain(Box((0, 0), (7, 7)), 8, 8)
    ba_f = BoxArray([Box((3, 3), (10, 10))])  # odd lo: partially covers cells
    crse = MultiFab(ba_c, DistributionMapping.make(ba_c, 1), 1, 0, comm)
    fine = MultiFab(ba_f, DistributionMapping.make(ba_f, 1), 1, 0, comm)
    fine.set_val(9.0)
    crse.set_val(1.0)
    average_down(fine, crse, 2)
    # coarse (1,1) is only partially covered (fine 3..3 of 2..3) -> untouched
    assert crse.fab(0).view(Box((1, 1), (1, 1)))[0, 0, 0] == 1.0
    # coarse (2,2) fully covered -> 9
    assert crse.fab(0).view(Box((2, 2), (2, 2)))[0, 0, 0] == 9.0
