"""Tests for Z-Morton encoding, including a bit-by-bit reference check."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.morton import MORTON_BITS, morton_encode, morton_key, morton_order


def reference_morton(coord, dim):
    """Slow bit-interleaving reference."""
    code = 0
    for bit in range(MORTON_BITS):
        for d in range(dim):
            code |= ((coord[d] >> bit) & 1) << (bit * dim + d)
    return code


@given(st.tuples(st.integers(0, 2**20), st.integers(0, 2**20), st.integers(0, 2**20)))
def test_matches_reference_3d(coord):
    assert morton_key(coord) == reference_morton(coord, 3)


@given(st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)))
def test_matches_reference_2d(coord):
    assert morton_key(coord) == reference_morton(coord, 2)


@given(st.tuples(st.integers(0, 2**20)))
def test_identity_1d(coord):
    assert morton_key(coord) == coord[0]


def test_vectorized_encode():
    coords = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]])
    codes = morton_encode(coords)
    assert codes.tolist() == [0, 1, 2, 4, 7]


def test_rejects_negative_and_overflow():
    with pytest.raises(ValueError):
        morton_encode(np.array([[-1, 0, 0]]))
    with pytest.raises(ValueError):
        morton_encode(np.array([[1 << MORTON_BITS, 0, 0]]))


def test_order_is_locality_preserving():
    """Points in the same quadrant sort together along the curve."""
    coords = np.array([[0, 0], [1, 1], [100, 100], [101, 100], [0, 1], [100, 101]])
    order = morton_order(coords)
    ordered = coords[order]
    # all small-quadrant points precede all large-quadrant points
    small = {(0, 0), (1, 1), (0, 1)}
    seen_large = False
    for pt in map(tuple, ordered):
        if pt in small:
            assert not seen_large
        else:
            seen_large = True


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)),
        min_size=1,
        max_size=50,
        unique=True,
    )
)
def test_encoding_is_injective(coords):
    codes = morton_encode(np.array(coords))
    assert len(set(codes.tolist())) == len(coords)
