"""Cross-module AMR invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.average_down import average_down
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.fillpatch import fill_coarse_patch
from repro.amr.geometry import Geometry
from repro.amr.interpolate import ConservativeLinearInterp, TrilinearInterp
from repro.amr.multifab import MultiFab
from repro.mpi.comm import Communicator


def two_level_setup(seed, nranks=2):
    rng = np.random.default_rng(seed)
    comm = Communicator(nranks, ranks_per_node=1)
    dom_c = Box((0, 0), (15, 15))
    ba_c = BoxArray.from_domain(dom_c, 8, 8)
    crse = MultiFab(ba_c, DistributionMapping.make(ba_c, nranks), 1, 2, comm)
    for i, fab in crse:
        fab.whole()[...] = rng.random(fab.whole().shape)
    ba_f = BoxArray([Box((8, 8), (23, 23))])
    fine = MultiFab(ba_f, DistributionMapping.make(ba_f, nranks), 1, 2, comm)
    geom_f = Geometry(dom_c.refine(2), (0.0, 0.0), (1.0, 1.0))
    return crse, fine, geom_f


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_conservative_interp_then_restrict_is_identity(seed):
    """average_down(fill_coarse_patch(crse)) == crse on covered cells.

    This is the defining property of a *conservative* interpolator: the
    paper notes its custom curvilinear interpolator lacks it, motivating
    the WENO-SYMBO conservative interpolation under development.
    """
    crse, fine, geom_f = two_level_setup(seed)
    before = {i: fab.valid().copy() for i, fab in crse}
    fill_coarse_patch(fine, crse, geom_f, 2, ConservativeLinearInterp())
    average_down(fine, crse, 2)
    for i, fab in crse:
        covered = fab.box.intersect(Box((4, 4), (11, 11)))
        if covered.is_empty():
            continue
        sl = covered.slices(relative_to=fab.box)
        np.testing.assert_allclose(
            fab.valid()[(slice(None),) + sl],
            before[i][(slice(None),) + sl],
            rtol=1e-12,
        )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_trilinear_interp_is_not_conservative(seed):
    """The index-space trilinear interpolator violates the restriction
    identity on generic data (the conservation gap the paper concedes)."""
    crse, fine, geom_f = two_level_setup(seed)
    before = {i: fab.valid().copy() for i, fab in crse}
    fill_coarse_patch(fine, crse, geom_f, 2, TrilinearInterp())
    average_down(fine, crse, 2)
    max_dev = 0.0
    for i, fab in crse:
        covered = fab.box.intersect(Box((4, 4), (11, 11)))
        if covered.is_empty():
            continue
        sl = covered.slices(relative_to=fab.box)
        max_dev = max(max_dev, float(np.abs(
            fab.valid()[(slice(None),) + sl] - before[i][(slice(None),) + sl]
        ).max()))
    assert max_dev > 1e-12  # generic random data: strictly non-conservative


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 4))
def test_parallel_copy_matches_source_function(seed, nranks):
    """Redistribution between random layouts preserves per-cell values."""
    rng = np.random.default_rng(seed)
    comm = Communicator(nranks, ranks_per_node=2)
    dom = Box((0, 0), (31, 31))
    ms_src = int(rng.choice([8, 16, 32]))
    ms_dst = int(rng.choice([8, 16, 32]))
    ba_s = BoxArray.from_domain(dom, ms_src, 8)
    ba_d = BoxArray.from_domain(dom, ms_dst, 8)
    src = MultiFab(ba_s, DistributionMapping.make(ba_s, nranks), 1, 0, comm)
    dst = MultiFab(ba_d, DistributionMapping.make(ba_d, nranks), 1, 0, comm)

    def f(i, j):
        return np.sin(i * 0.37) + 3.0 * j

    for k, fab in src:
        b = fab.box
        ii = np.arange(b.lo[0], b.hi[0] + 1)[:, None]
        jj = np.arange(b.lo[1], b.hi[1] + 1)[None, :]
        fab.valid()[0] = f(ii, jj)
    dst.parallel_copy(src)
    for k, fab in dst:
        b = fab.box
        ii = np.arange(b.lo[0], b.hi[0] + 1)[:, None]
        jj = np.arange(b.lo[1], b.hi[1] + 1)[None, :]
        np.testing.assert_allclose(fab.valid()[0], f(ii, jj))


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 28), st.integers(0, 28),
                          st.integers(1, 6), st.integers(1, 6)),
                min_size=1, max_size=6))
def test_complement_partitions_region(box_specs):
    """complement_in pieces + covered overlaps partition any region."""
    boxes = []
    for (x, y, w, h) in box_specs:
        b = Box((x, y), (x + w - 1, y + h - 1))
        # keep disjoint: drop overlapping candidates
        if all(not b.intersects(e) for e in boxes):
            boxes.append(b)
    ba = BoxArray(boxes)
    region = Box((0, 0), (31, 31))
    comp = ba.complement_in(region)
    covered = sum(ov.num_pts() for _i, ov in ba.intersections(region))
    uncovered = sum(p.num_pts() for p in comp)
    assert covered + uncovered == region.num_pts()
    # complement pieces are disjoint and inside the region
    for i, p in enumerate(comp):
        assert region.contains(p)
        for q in comp[i + 1:]:
            assert not p.intersects(q)
        for j in ba.intersecting(p):
            assert not ba[j].intersects(p)
