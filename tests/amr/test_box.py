"""Unit and property tests for Box algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.intvect import IntVect


def boxes(dim=3, span=20):
    lo = st.tuples(*([st.integers(-span, span)] * dim))
    size = st.tuples(*([st.integers(1, span)] * dim))
    return st.builds(
        lambda l, s: Box(IntVect(*l), IntVect(*[a + b - 1 for a, b in zip(l, s)])),
        lo,
        size,
    )


def test_basic_properties():
    b = Box((0, 0, 0), (3, 4, 5))
    assert b.size() == (4, 5, 6)
    assert b.num_pts() == 120
    assert b.shape() == (4, 5, 6)
    assert not b.is_empty()


def test_from_extent_and_cube():
    assert Box.from_extent(IntVect(1, 1), (3, 3)) == Box((1, 1), (3, 3))
    assert Box.cube(3, 8) == Box((0, 0, 0), (7, 7, 7))


def test_empty_box():
    b = Box((0, 0), (-1, 5))
    assert b.is_empty()
    assert b.num_pts() == 0


def test_contains():
    b = Box((0, 0), (9, 9))
    assert b.contains(Box((2, 2), (5, 5)))
    assert not b.contains(Box((2, 2), (10, 5)))
    assert b.contains(IntVect(0, 9))
    assert not b.contains(IntVect(-1, 0))


def test_grow_shift():
    b = Box((0, 0), (3, 3))
    assert b.grow(2) == Box((-2, -2), (5, 5))
    assert b.grow(2).grow(-2) == b
    assert b.shift((1, -1)) == Box((1, -1), (4, 2))
    assert b.grow_lo(0, 1) == Box((-1, 0), (3, 3))
    assert b.grow_hi(1, 2) == Box((0, 0), (3, 5))


def test_refine_coarsen():
    b = Box((0, 0), (3, 3))
    assert b.refine(2) == Box((0, 0), (7, 7))
    assert b.refine(2).coarsen(2) == b
    # coarsening a misaligned box covers the original
    c = Box((1, 1), (4, 4)).coarsen(2)
    assert c == Box((0, 0), (2, 2))


def test_intersect():
    a = Box((0, 0), (5, 5))
    b = Box((3, 3), (8, 8))
    assert a.intersect(b) == Box((3, 3), (5, 5))
    assert a.intersects(b)
    assert not a.intersects(Box((6, 6), (7, 7)))


def test_chop():
    b = Box((0, 0), (7, 7))
    lo, hi = b.chop(0, 4)
    assert lo == Box((0, 0), (3, 7))
    assert hi == Box((4, 0), (7, 7))
    with pytest.raises(ValueError):
        b.chop(0, 0)
    with pytest.raises(ValueError):
        b.chop(0, 8)


def test_max_size_chop_covers_and_limits():
    b = Box((0, 0, 0), (63, 31, 15))
    parts = b.max_size_chop(16)
    assert sum(p.num_pts() for p in parts) == b.num_pts()
    for p in parts:
        assert max(p.size()) <= 16
    # disjointness
    for i, p in enumerate(parts):
        for q in parts[i + 1:]:
            assert not p.intersects(q)


def test_diff_covers_complement():
    a = Box((0, 0), (9, 9))
    b = Box((3, 3), (6, 6))
    pieces = a.diff(b)
    assert sum(p.num_pts() for p in pieces) == a.num_pts() - b.num_pts()
    for p in pieces:
        assert not p.intersects(b)
        assert a.contains(p)


def test_diff_disjoint_returns_self():
    a = Box((0, 0), (3, 3))
    assert a.diff(Box((10, 10), (12, 12))) == [a]


def test_diff_covered_returns_empty():
    a = Box((2, 2), (4, 4))
    assert a.diff(Box((0, 0), (9, 9))) == []


def test_indices_iteration():
    b = Box((0, 0), (1, 2))
    pts = list(b.indices())
    assert len(pts) == 6
    assert pts[0] == IntVect(0, 0)
    assert pts[-1] == IntVect(1, 2)


def test_slices():
    b = Box((2, 3), (4, 6))
    outer = Box((0, 0), (9, 9))
    sl = b.slices(relative_to=outer)
    assert sl == (slice(2, 5), slice(3, 7))
    assert b.slices() == (slice(0, 3), slice(0, 4))


@given(boxes(2), boxes(2))
def test_intersection_commutes(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(boxes(2), boxes(2))
def test_diff_partition_property(a, b):
    """a.diff(b) pieces + (a & b) partition a exactly."""
    pieces = a.diff(b)
    isect = a.intersect(b)
    total = sum(p.num_pts() for p in pieces) + isect.num_pts()
    assert total == a.num_pts()
    for i, p in enumerate(pieces):
        assert not p.intersects(isect) or isect.is_empty()
        for q in pieces[i + 1:]:
            assert not p.intersects(q)


@given(boxes(3), st.integers(1, 4))
def test_refine_coarsen_roundtrip(b, r):
    assert b.refine(r).coarsen(r) == b


@given(boxes(3), st.integers(1, 4))
def test_coarsen_covers(b, r):
    assert b.coarsen(r).refine(r).contains(b)


@given(boxes(2), st.integers(1, 10))
def test_grow_num_pts(b, n):
    g = b.grow(n)
    expected = 1
    for s in b.size():
        expected *= s + 2 * n
    assert g.num_pts() == expected
