"""Tests for MultiFab container operations and accounted reductions."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.multifab import MultiFab
from repro.mpi.comm import Communicator


def make_mf(nranks=4, ncomp=2, ngrow=1):
    ba = BoxArray.from_domain(Box((0, 0), (31, 31)), 8, 8)
    comm = Communicator(nranks, ranks_per_node=2)
    dm = DistributionMapping.make(ba, nranks, "sfc")
    return MultiFab(ba, dm, ncomp, ngrow, comm)


def test_construction():
    mf = make_mf()
    assert len(mf) == 16
    assert mf.num_pts() == 32 * 32
    assert mf.nbytes() == 16 * 2 * 10 * 10 * 8


def test_layout_mismatch_rejected():
    ba = BoxArray.from_domain(Box((0, 0), (15, 15)), 8, 8)
    dm = DistributionMapping.make(ba, 2)
    ba2 = BoxArray.from_domain(Box((0, 0), (31, 31)), 8, 8)
    with pytest.raises(ValueError):
        MultiFab(ba2, dm, 1)


def test_set_val_and_iteration():
    mf = make_mf()
    mf.set_val(3.0)
    for i, fab in mf:
        assert np.all(fab.data == 3.0)


def test_like():
    mf = make_mf()
    other = MultiFab.like(mf, ncomp=5)
    assert other.ncomp == 5
    assert other.ba is mf.ba
    assert other.comm is mf.comm


def test_copy_values_from():
    a = make_mf()
    b = MultiFab.like(a)
    a.set_val(4.0)
    b.copy_values_from(a)
    assert b.fab(0).data[0, 1, 1] == 4.0


def test_copy_values_layout_check():
    a = make_mf()
    ba = BoxArray.from_domain(Box((0, 0), (15, 15)), 8, 8)
    dm = DistributionMapping.make(ba, 2)
    c = MultiFab(ba, dm, 2, 1)
    with pytest.raises(ValueError):
        a.copy_values_from(c)


def test_saxpy_and_scale():
    a = make_mf()
    b = MultiFab.like(a)
    a.set_val(1.0)
    b.set_val(2.0)
    a.saxpy(3.0, b)
    assert a.fab(0).valid()[0, 0, 0] == 7.0
    a.scale(0.5)
    assert a.fab(0).valid()[0, 0, 0] == 3.5


def test_global_reductions_correct():
    mf = make_mf()
    for i, fab in mf:
        fab.valid()[...] = float(i)
    assert mf.min() == 0.0
    assert mf.max() == float(len(mf) - 1)
    expected_sum = sum(i * mf.ba[i].num_pts() for i in range(len(mf)))
    assert mf.sum(comp=0) == pytest.approx(expected_sum)


def test_reductions_record_tree_messages():
    mf = make_mf(nranks=4)
    mf.comm.ledger.clear()
    mf.min()
    reduce_msgs = mf.comm.ledger.messages("reduce")
    # binomial tree over 4 ranks: 2 reduce rounds (2+1 msgs) + broadcast (3)
    assert len(reduce_msgs) == 6


def test_norm2():
    mf = make_mf(ncomp=1)
    mf.set_val(2.0)
    assert mf.norm2() == pytest.approx(np.sqrt(4.0 * mf.num_pts()))


def test_contains_nan():
    mf = make_mf()
    assert not mf.contains_nan()
    mf.fab(3).data[0, 0, 0] = np.nan
    assert mf.contains_nan()


def test_apply():
    mf = make_mf(ncomp=1, ngrow=1)
    mf.set_val(1.0)

    def double(arr):
        arr *= 2.0

    mf.apply(double)
    assert mf.fab(0).valid()[0, 0, 0] == 2.0
    # ghosts untouched when include_ghosts=False
    assert mf.fab(0).data[0, 0, 0] == 1.0
