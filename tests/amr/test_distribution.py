"""Tests for DistributionMapping strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping


def make_ba(n=8):
    return BoxArray.from_domain(Box((0, 0, 0), (8 * n - 1, 8 * n - 1, 7)), 8, 8)


def test_roundrobin():
    ba = make_ba(2)
    dm = DistributionMapping.make(ba, 3, "roundrobin")
    assert dm.ranks() == tuple(i % 3 for i in range(len(ba)))


def test_every_rank_in_range():
    ba = make_ba(4)
    for strat in ("sfc", "knapsack", "roundrobin"):
        dm = DistributionMapping.make(ba, 7, strat)
        assert all(0 <= r < 7 for r in dm)
        assert len(dm) == len(ba)


def test_sfc_balances_equal_weights():
    ba = make_ba(4)  # 16 equal boxes in x-y, 16 total
    dm = DistributionMapping.make(ba, 4, "sfc")
    loads = dm.load_per_rank(ba)
    assert loads.sum() == ba.num_pts()
    assert dm.imbalance(ba) < 1.3


def test_sfc_uses_all_ranks_when_possible():
    ba = make_ba(4)
    dm = DistributionMapping.make(ba, 8, "sfc")
    assert len(set(dm.ranks())) == 8


def test_knapsack_optimal_for_unequal_weights():
    ba = BoxArray([Box((0, 0), (7, 7)), Box((8, 0), (15, 7)),
                   Box((0, 8), (15, 15))])  # weights 64, 64, 128
    dm = DistributionMapping.make(ba, 2, "knapsack")
    loads = dm.load_per_rank(ba)
    assert sorted(loads.tolist()) == [128, 128]


def test_sfc_locality():
    """Adjacent boxes along the curve land on the same or adjacent rank."""
    ba = make_ba(8)
    dm = DistributionMapping.make(ba, 16, "sfc")
    # each rank's boxes form a contiguous run in morton order: ranks seen
    # in morton order should be non-decreasing
    from repro.amr.morton import morton_order

    centers = ba.centers()
    order = morton_order(centers - centers.min(axis=0))
    seq = [dm[i] for i in order]
    assert seq == sorted(seq)


def test_boxes_on():
    ba = make_ba(2)
    dm = DistributionMapping.make(ba, 2, "roundrobin")
    on0 = dm.boxes_on(0)
    on1 = dm.boxes_on(1)
    assert sorted(on0 + on1) == list(range(len(ba)))


def test_invalid_inputs():
    ba = make_ba(2)  # 4 boxes
    with pytest.raises(ValueError):
        DistributionMapping.make(ba, 0)
    with pytest.raises(ValueError):
        DistributionMapping.make(ba, 2, "magic")
    with pytest.raises(ValueError):
        DistributionMapping.make(ba, 2, weights=[1.0])


def test_explicit_weights_respected():
    ba = make_ba(2)
    w = np.ones(len(ba))
    w[0] = 1000.0
    dm = DistributionMapping.make(ba, 2, "knapsack", weights=w)
    heavy_rank = dm[0]
    # the heavy box's rank should get few other boxes
    assert len(dm.boxes_on(heavy_rank)) <= len(dm.boxes_on(1 - heavy_rank))


@settings(max_examples=20)
@given(st.integers(1, 64), st.integers(1, 6))
def test_sfc_never_strands_boxes(nboxes_side, nranks):
    domain = Box((0, 0), (8 * nboxes_side - 1, 7))
    ba = BoxArray.from_domain(domain, 8, 8)
    dm = DistributionMapping.make(ba, nranks, "sfc")
    loads = dm.load_per_rank(ba)
    assert loads.sum() == ba.num_pts()
    # no rank exceeds twice the fair share when there are enough boxes
    if len(ba) >= nranks:
        assert len(set(dm.ranks())) == nranks
