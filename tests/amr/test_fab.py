"""Tests for FArrayBox views and copies."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.intvect import IntVect


def test_allocation_shape():
    f = FArrayBox(Box((0, 0), (7, 7)), ncomp=3, ngrow=2)
    assert f.data.shape == (3, 12, 12)
    assert f.grown_box() == Box((-2, -2), (9, 9))
    assert np.all(f.data == 0.0)


def test_rejects_bad_inputs():
    with pytest.raises(ValueError):
        FArrayBox(Box((0, 0), (-1, 3)))
    with pytest.raises(ValueError):
        FArrayBox(Box((0, 0), (3, 3)), ncomp=0)
    with pytest.raises(ValueError):
        FArrayBox(Box((0, 0), (3, 3)), ngrow=-1)


def test_view_is_a_view():
    f = FArrayBox(Box((0, 0), (7, 7)), ncomp=1, ngrow=1)
    v = f.valid()
    v[...] = 5.0
    assert f.data[0, 1, 1] == 5.0
    assert f.data[0, 0, 0] == 0.0  # ghost untouched


def test_view_subregion_indexing():
    f = FArrayBox(Box((2, 2), (5, 5)), ncomp=1, ngrow=1)
    f.data[0] = np.arange(36).reshape(6, 6)
    # cell (2,2) is at array offset (1,1)
    v = f.view(Box((2, 2), (2, 2)))
    assert v[0, 0, 0] == 7.0


def test_view_out_of_bounds():
    f = FArrayBox(Box((0, 0), (3, 3)), ngrow=1)
    with pytest.raises(ValueError):
        f.view(Box((-2, 0), (1, 1)))


def test_set_val_regions():
    f = FArrayBox(Box((0, 0), (3, 3)), ncomp=2, ngrow=1)
    f.set_val(1.0)
    assert np.all(f.data == 1.0)
    f.set_val(2.0, region=Box((0, 0), (1, 1)), comp=1)
    assert f.data[1, 1, 1] == 2.0
    assert f.data[0, 1, 1] == 1.0


def test_copy_from():
    a = FArrayBox(Box((0, 0), (3, 3)), ncomp=2)
    b = FArrayBox(Box((2, 2), (5, 5)), ncomp=2)
    a.set_val(7.0)
    n = b.copy_from(a, Box((2, 2), (3, 3)))
    assert n == 2 * 4 * 8  # 2 comps * 4 cells * 8 bytes
    assert np.all(b.view(Box((2, 2), (3, 3))) == 7.0)
    assert b.data[0, 2, 2] == 0.0


def test_copy_shifted_from_periodic():
    src = FArrayBox(Box((0, 0), (7, 7)))
    src.valid()[...] = np.arange(64).reshape(8, 8)
    dst = FArrayBox(Box((0, 0), (7, 7)), ngrow=1)
    # fill dst's low-x ghost layer from the high-x edge (periodic shift +8)
    ghost = Box((-1, 0), (-1, 7))
    dst.copy_shifted_from(src, ghost, IntVect(8, 0))
    assert np.all(dst.view(ghost)[0, 0, :] == src.valid()[0, 7, :])


def test_reductions():
    f = FArrayBox(Box((0, 0), (3, 3)), ngrow=1)
    f.set_val(-9.0)  # ghosts too
    f.valid()[...] = np.arange(16).reshape(4, 4)
    assert f.min() == 0.0
    assert f.max() == 15.0
    assert f.min(include_ghosts=True) == -9.0
    assert f.norm2() == pytest.approx(np.sqrt(np.sum(np.arange(16.0) ** 2)))


def test_contains_nan():
    f = FArrayBox(Box((0, 0), (3, 3)))
    assert not f.contains_nan()
    f.data[0, 0, 0] = np.nan
    assert f.contains_nan()


def test_data_shape_validation():
    with pytest.raises(ValueError):
        FArrayBox(Box((0, 0), (3, 3)), ncomp=1, data=np.zeros((1, 5, 5)))


def test_3d():
    f = FArrayBox(Box((0, 0, 0), (3, 4, 5)), ncomp=2, ngrow=1)
    assert f.data.shape == (2, 6, 7, 8)
    assert f.valid().shape == (2, 4, 5, 6)
