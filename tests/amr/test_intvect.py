"""Unit and property tests for IntVect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.intvect import IntVect

ivec3 = st.tuples(
    st.integers(-1000, 1000), st.integers(-1000, 1000), st.integers(-1000, 1000)
)


def test_construction_variants():
    assert IntVect(1, 2, 3).tup() == (1, 2, 3)
    assert IntVect([1, 2]).tup() == (1, 2)
    assert IntVect((5,)).tup() == (5,)


def test_dimension_limits():
    with pytest.raises(ValueError):
        IntVect(1, 2, 3, 4)
    with pytest.raises(ValueError):
        IntVect()


def test_non_integer_rejected():
    with pytest.raises(TypeError):
        IntVect(1.5, 2)


def test_zero_unit_filled():
    assert IntVect.zero(3) == (0, 0, 0)
    assert IntVect.unit(2) == (1, 1)
    assert IntVect.filled(3, 7) == (7, 7, 7)


def test_coerce_scalar_and_sequence():
    assert IntVect.coerce(4, 3) == (4, 4, 4)
    assert IntVect.coerce([1, 2], 2) == (1, 2)
    with pytest.raises(ValueError):
        IntVect.coerce([1, 2], 3)


def test_arithmetic():
    a = IntVect(1, 2, 3)
    b = IntVect(4, 5, 6)
    assert a + b == (5, 7, 9)
    assert b - a == (3, 3, 3)
    assert a * 2 == (2, 4, 6)
    assert b // 2 == (2, 2, 3)
    assert -a == (-1, -2, -3)
    assert a + 1 == (2, 3, 4)


def test_comparisons():
    a = IntVect(1, 2, 3)
    assert a.allLE((1, 2, 3))
    assert not a.allLT((1, 3, 4))
    assert a.allGE((0, 0, 0))
    assert a.allLT((2, 3, 4))


def test_minmax_reductions():
    a = IntVect(3, 1, 2)
    assert a.min() == 1
    assert a.max() == 3
    assert a.prod() == 6
    assert a.sum() == 6
    assert a.min_with((2, 2, 2)) == (2, 1, 2)
    assert a.max_with((2, 2, 2)) == (3, 2, 2)


def test_coarsen_rounds_toward_minus_infinity():
    assert IntVect(-1, -2, -3).coarsen(2) == (-1, -1, -2)
    assert IntVect(3, 4, 5).coarsen(2) == (1, 2, 2)


def test_coarsen_rejects_nonpositive_ratio():
    with pytest.raises(ValueError):
        IntVect(1, 1, 1).coarsen(0)


def test_hashable_and_eq_tuple():
    assert hash(IntVect(1, 2)) == hash(IntVect(1, 2))
    assert IntVect(1, 2) == (1, 2)
    assert {IntVect(1, 2): "x"}[IntVect(1, 2)] == "x"


@given(ivec3, ivec3)
def test_add_sub_roundtrip(a, b):
    va, vb = IntVect(*a), IntVect(*b)
    assert (va + vb) - vb == va


@given(ivec3, st.integers(1, 8))
def test_refine_coarsen_roundtrip(a, r):
    v = IntVect(*a)
    assert v.refine(r).coarsen(r) == v


@given(ivec3, st.integers(1, 8))
def test_coarsen_bounds(a, r):
    """coarsen(x, r) * r <= x < (coarsen(x, r) + 1) * r componentwise."""
    v = IntVect(*a)
    c = v.coarsen(r)
    assert (c * r).allLE(v)
    assert v.allLT((c + 1) * r)
