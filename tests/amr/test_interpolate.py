"""Tests for the coarse-to-fine interpolators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.fab import FArrayBox
from repro.amr.intvect import IntVect
from repro.amr.interp_curvilinear import CurvilinearInterp
from repro.amr.interp_weno import WenoInterp, weno_interp_1d
from repro.amr.interpolate import (
    ConservativeLinearInterp,
    PiecewiseConstantInterp,
    TrilinearInterp,
    _fine_fractions,
)


def linear_field(box, ngrow, coeffs, const=1.0, ncomp=1):
    """A fab whose cell values are an affine function of cell centers."""
    fab = FArrayBox(box, ncomp, ngrow)
    gb = fab.grown_box()
    grids = np.meshgrid(
        *[np.arange(gb.lo[d], gb.hi[d] + 1) + 0.5 for d in range(box.dim)],
        indexing="ij",
    )
    val = const + sum(c * g for c, g in zip(coeffs, grids))
    for c in range(ncomp):
        fab.data[c] = (c + 1) * val
    return fab


def test_fine_fractions_ratio2():
    region = Box((0, 0), (3, 3))
    base, frac = _fine_fractions(region, IntVect(2, 2), 0)
    # fine centers at coarse coords -0.25, 0.25, 0.75, 1.25
    assert base.tolist() == [-1, 0, 0, 1]
    assert np.allclose(frac, [0.75, 0.25, 0.75, 0.25])


def test_trilinear_exact_on_linear_fields_2d():
    cbox = Box((0, 0), (7, 7))
    cfab = linear_field(cbox, 1, (2.0, -3.0))
    interp = TrilinearInterp()
    fine_region = Box((2, 2), (9, 9))
    out = interp.interp(cfab, fine_region, 2)
    # exact linear reproduction: fine value = f(fine center in coarse coords)
    ii = (np.arange(2, 10) + 0.5) / 2
    jj = (np.arange(2, 10) + 0.5) / 2
    expected = 1.0 + 2.0 * ii[:, None] - 3.0 * jj[None, :]
    assert np.allclose(out[0], expected)


def test_trilinear_exact_on_linear_fields_3d():
    cbox = Box((0, 0, 0), (7, 7, 7))
    cfab = linear_field(cbox, 1, (1.0, 2.0, 3.0))
    out = TrilinearInterp().interp(cfab, Box((4, 4, 4), (7, 7, 7)), 2)
    ctr = (np.arange(4, 8) + 0.5) / 2
    expected = (
        1.0 + ctr[:, None, None] + 2.0 * ctr[None, :, None] + 3.0 * ctr[None, None, :]
    )
    assert np.allclose(out[0], expected)


def test_trilinear_weights_are_quarter_multiples():
    """On a uniform ratio-2 grid, coefficients depend only on the ratio.

    Interpolating a delta function exposes the weights directly.
    """
    cbox = Box((0, 0), (5, 5))
    cfab = FArrayBox(cbox, 1, 1)
    cfab.view(Box((2, 2), (2, 2)))[...] = 1.0
    out = TrilinearInterp().interp(cfab, Box((4, 4), (5, 5)), 2)
    # fine cells nearest the delta get weight 0.75*0.75 etc.
    vals = np.unique(np.round(out[0] * 16))
    assert set(vals.tolist()) <= {1.0, 3.0, 9.0}


def test_trilinear_requires_coverage():
    cfab = FArrayBox(Box((0, 0), (3, 3)), 1, 0)
    with pytest.raises(ValueError):
        TrilinearInterp().interp(cfab, Box((0, 0), (7, 7)), 2)


def test_piecewise_constant_injection():
    cbox = Box((0, 0), (3, 3))
    cfab = FArrayBox(cbox, 1, 0)
    cfab.valid()[0] = np.arange(16).reshape(4, 4)
    out = PiecewiseConstantInterp().interp(cfab, Box((0, 0), (7, 7)), 2)
    assert out[0, 0, 0] == out[0, 1, 1] == cfab.valid()[0, 0, 0]
    assert out[0, 2, 0] == cfab.valid()[0, 1, 0]


def test_conservative_preserves_coarse_means():
    cbox = Box((0, 0), (7, 7))
    cfab = FArrayBox(cbox, 1, 1)
    rng = np.random.default_rng(42)
    cfab.data[0] = rng.random(cfab.data[0].shape)
    interp = ConservativeLinearInterp()
    fine_region = Box((4, 4), (11, 11))  # covers coarse (2,2)-(5,5)
    out = interp.interp(cfab, fine_region, 2)
    fine = out[0].reshape(4, 2, 4, 2).mean(axis=(1, 3))
    coarse = cfab.view(Box((2, 2), (5, 5)))[0]
    assert np.allclose(fine, coarse)


def test_conservative_exact_on_linear():
    cbox = Box((0, 0), (7, 7))
    cfab = linear_field(cbox, 1, (1.5, 0.5))
    out = ConservativeLinearInterp().interp(cfab, Box((4, 4), (9, 9)), 2)
    ii = (np.arange(4, 10) + 0.5) / 2
    expected = 1.0 + 1.5 * ii[:, None] + 0.5 * ii[None, :]
    assert np.allclose(out[0], expected)


def test_conservative_limiter_no_overshoot():
    """Interpolated values stay within the local coarse data range."""
    cbox = Box((0, 0), (7, 7))
    cfab = FArrayBox(cbox, 1, 1)
    # step function: sharp jump
    cfab.data[0, :, :] = 0.0
    cfab.data[0, 5:, :] = 10.0
    out = ConservativeLinearInterp().interp(cfab, Box((4, 4), (9, 9)), 2)
    assert out.min() >= 0.0 - 1e-12
    assert out.max() <= 10.0 + 1e-12


def test_curvilinear_reduces_to_trilinear_on_uniform_grid():
    dim = 2
    cbox = Box((0, 0), (7, 7))
    cfab = linear_field(cbox, 1, (2.0, 1.0), ncomp=2)
    fine_region = Box((4, 4), (9, 9))
    # uniform physical coordinates: x = i * dxc (coarse), x = i * dxf (fine)
    ccoords = FArrayBox(cbox, dim, 2)
    gb = ccoords.grown_box()
    ii = np.arange(gb.lo[0], gb.hi[0] + 1) + 0.5
    jj = np.arange(gb.lo[1], gb.hi[1] + 1) + 0.5
    ccoords.data[0] = ii[:, None] * np.ones_like(jj)[None, :]
    ccoords.data[1] = np.ones_like(ii)[:, None] * jj[None, :]
    fcoords = FArrayBox(fine_region, dim, 0)
    fi = (np.arange(4, 10) + 0.5) / 2
    fcoords.data[0] = fi[:, None] * np.ones(6)[None, :]
    fcoords.data[1] = np.ones(6)[:, None] * fi[None, :]

    tri = TrilinearInterp().interp(cfab, fine_region, 2)
    cur = CurvilinearInterp().interp(cfab, fine_region, 2, ccoords, fcoords)
    assert np.allclose(tri, cur)


def test_curvilinear_exact_linear_in_physical_space_stretched():
    """On a stretched grid, curvilinear interp is exact for f(x) linear in x."""
    dim = 1
    cbox = Box((0,), (15,))
    # stretched coordinates x = s(i) = (i/8)^2 * 8
    def xc(i):
        return ((i + 0.5) / 8.0) ** 2 * 8.0

    cfab = FArrayBox(cbox, 1, 1)
    gb = cfab.grown_box()
    icells = np.arange(gb.lo[0], gb.hi[0] + 1)
    cfab.data[0] = 3.0 * xc(icells) + 1.0

    ccoords = FArrayBox(cbox, dim, 2)
    ccoords.data[0] = xc(np.arange(ccoords.grown_box().lo[0],
                                   ccoords.grown_box().hi[0] + 1))
    fine_region = Box((8,), (23,))
    fcoords = FArrayBox(fine_region, dim, 0)

    def xf(i):
        return (((i + 0.5) / 2.0) / 8.0) ** 2 * 8.0

    fcoords.data[0] = xf(np.arange(8, 24))
    out = CurvilinearInterp().interp(cfab, fine_region, 2, ccoords, fcoords)
    expected = 3.0 * xf(np.arange(8, 24)) + 1.0
    assert np.allclose(out[0], expected)
    # and the index-space trilinear interpolation is NOT exact here
    tri = TrilinearInterp().interp(cfab, fine_region, 2)
    assert not np.allclose(tri[0], expected)


def test_curvilinear_requires_coords():
    cfab = FArrayBox(Box((0, 0), (7, 7)), 1, 1)
    with pytest.raises(ValueError):
        CurvilinearInterp().interp(cfab, Box((2, 2), (5, 5)), 2)


def test_weno_interp_1d_exact_on_quadratic():
    """Quadratics lie in every candidate stencil's space -> exact for any weights."""
    x = np.arange(20, dtype=float)
    v = 2.0 + x + 0.5 * x**2
    base = np.arange(5, 12)
    frac = np.full(7, 0.25)
    out = weno_interp_1d(v, base, frac, axis=0)
    xt = base + frac
    expected = 2.0 + xt + 0.5 * xt**2
    assert np.allclose(out, expected, rtol=1e-12)


def test_weno_interp_1d_high_order_convergence():
    """On a smooth sine, halving h reduces error by ~2^4 (4th order)."""
    errs = []
    for n in (32, 64):
        x = (np.arange(n) + 0.5) / n
        v = np.sin(2 * np.pi * x)
        base = np.arange(4, n - 4)
        frac = np.full(len(base), 0.5)
        out = weno_interp_1d(v, base, frac, axis=0)
        xt = (base + frac + 0.5) / n
        errs.append(np.abs(out - np.sin(2 * np.pi * xt)).max())
    order = np.log2(errs[0] / errs[1])
    assert order > 3.0


def test_weno_interp_1d_non_oscillatory_at_step():
    v = np.zeros(20)
    v[10:] = 1.0
    base = np.arange(5, 14)
    frac = np.full(9, 0.5)
    out = weno_interp_1d(v, base, frac, axis=0)
    assert out.min() >= -1e-8
    assert out.max() <= 1.0 + 1e-8


def test_weno_interp_2d_smooth():
    cbox = Box((0, 0), (15, 15))
    cfab = linear_field(cbox, 2, (1.0, 2.0))
    out = WenoInterp().interp(cfab, Box((8, 8), (15, 15)), 2)
    ii = (np.arange(8, 16) + 0.5) / 2
    expected = 1.0 + ii[:, None] + 2.0 * ii[None, :]
    assert np.allclose(out[0], expected, atol=1e-8)


def test_weno_interp_insufficient_ghosts():
    v = np.zeros(6)
    with pytest.raises(ValueError):
        weno_interp_1d(v, np.array([0]), np.array([0.5]), axis=0)


@settings(max_examples=20)
@given(st.floats(0.01, 0.99))
def test_weno_linear_weights_reproduce_cubic(x):
    """gamma(x) q_left + (1-gamma) q_right equals the 4-point cubic."""
    from repro.amr.interp_weno import _linear_weight, _quadratic_eval

    rng = np.random.default_rng(0)
    v = rng.random(4)  # values at -1, 0, 1, 2
    ql = _quadratic_eval(v[0], v[1], v[2], x)
    qr = _quadratic_eval(v[1], v[2], v[3], x - 1.0)
    g = _linear_weight(x)
    combo = g * ql + (1 - g) * qr
    # Lagrange cubic through (-1,0,1,2)
    xs = np.array([-1.0, 0.0, 1.0, 2.0])
    cubic = 0.0
    for k in range(4):
        lk = 1.0
        for m in range(4):
            if m != k:
                lk *= (x - xs[m]) / (xs[k] - xs[m])
        cubic += v[k] * lk
    assert np.isclose(combo, cubic, atol=1e-12)
