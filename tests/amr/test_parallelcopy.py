"""Tests for ParallelCopy global redistribution."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.multifab import MultiFab
from repro.mpi.comm import Communicator


def test_redistribution_between_layouts():
    domain = Box((0, 0), (31, 31))
    comm = Communicator(4, ranks_per_node=2)
    ba_src = BoxArray.from_domain(domain, 16, 8)
    ba_dst = BoxArray.from_domain(domain, 8, 8)
    src = MultiFab(ba_src, DistributionMapping.make(ba_src, 4), 1, 0, comm)
    dst = MultiFab(ba_dst, DistributionMapping.make(ba_dst, 4), 1, 0, comm)
    for i, fab in src:
        fab.valid()[...] = float(i + 1)
    dst.parallel_copy(src)
    # every dst cell must equal the src box value covering it
    for i, fab in dst:
        center = fab.box.lo
        covering = [j for j, b in enumerate(ba_src) if b.contains(center)]
        assert len(covering) == 1
        assert fab.valid()[0, 0, 0] == float(covering[0] + 1)


def test_fill_ghosts_mode():
    domain = Box((0, 0), (15, 15))
    comm = Communicator(2, ranks_per_node=1)
    ba = BoxArray.from_domain(domain, 8, 8)
    src = MultiFab(ba, DistributionMapping.make(ba, 2), 1, 0, comm)
    dst = MultiFab(ba, DistributionMapping.make(ba, 2), 1, 2, comm)
    src.set_val(3.0)
    dst.set_val(-1.0)
    dst.parallel_copy(src, fill_ghosts=True)
    fab = dst.fab(0)
    # interior ghosts (covered by other src boxes) now filled
    assert fab.view(Box((8, 0), (9, 7)))[0, 0, 0] == 3.0
    # outside-domain ghosts untouched
    assert fab.view(Box((-2, 0), (-1, 7)))[0, 0, 0] == -1.0


def test_component_ranges():
    domain = Box((0, 0), (7, 7))
    comm = Communicator(1, ranks_per_node=1)
    ba = BoxArray.from_domain(domain, 8, 8)
    src = MultiFab(ba, DistributionMapping.make(ba, 1), 3, 0, comm)
    dst = MultiFab(ba, DistributionMapping.make(ba, 1), 2, 0, comm)
    src.fab(0).data[1] = 42.0
    dst.parallel_copy(src, src_comp=1, dst_comp=0, ncomp=1)
    assert dst.fab(0).data[0, 0, 0] == 42.0
    assert dst.fab(0).data[1, 0, 0] == 0.0


def test_component_out_of_bounds():
    domain = Box((0, 0), (7, 7))
    comm = Communicator(1, ranks_per_node=1)
    ba = BoxArray.from_domain(domain, 8, 8)
    src = MultiFab(ba, DistributionMapping.make(ba, 1), 2, 0, comm)
    dst = MultiFab(ba, DistributionMapping.make(ba, 1), 2, 0, comm)
    with pytest.raises(ValueError):
        dst.parallel_copy(src, src_comp=1, ncomp=2)


def test_traffic_recorded_as_parallelcopy():
    domain = Box((0, 0), (31, 31))
    comm = Communicator(4, ranks_per_node=1)
    ba_src = BoxArray.from_domain(domain, 16, 8)
    ba_dst = BoxArray.from_domain(domain, 8, 8)
    src = MultiFab(ba_src, DistributionMapping.make(ba_src, 4), 1, 0, comm)
    dst = MultiFab(ba_dst, DistributionMapping.make(ba_dst, 4), 1, 0, comm)
    comm.ledger.clear()
    dst.parallel_copy(src)
    total = comm.ledger.total_bytes("parallelcopy")
    # every domain cell copied exactly once
    assert total == domain.num_pts() * 8
    assert comm.ledger.total_bytes("fillboundary") == 0
