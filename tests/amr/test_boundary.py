"""Tests for FillBoundary ghost exchange."""

import numpy as np
import pytest

from repro.amr.boundary import boundary_regions, fill_boundary
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.geometry import Geometry
from repro.amr.multifab import MultiFab
from repro.mpi.comm import Communicator


def make_mf(ngrow=2, nranks=4, periodic=(False, False)):
    domain = Box((0, 0), (31, 31))
    ba = BoxArray.from_domain(domain, 16, 8)  # 2x2 boxes
    comm = Communicator(nranks, ranks_per_node=2)
    dm = DistributionMapping.make(ba, nranks, "roundrobin")
    mf = MultiFab(ba, dm, 1, ngrow, comm)
    geom = Geometry(domain, (0.0, 0.0), (1.0, 1.0), periodic)
    return mf, geom


def fill_global_index(mf):
    """Set every valid cell to a unique global function f(i,j) = 1000*i + j."""
    for idx, fab in mf:
        b = fab.box
        ii = np.arange(b.lo[0], b.hi[0] + 1)[:, None]
        jj = np.arange(b.lo[1], b.hi[1] + 1)[None, :]
        fab.valid()[0] = 1000.0 * ii + jj


def test_interior_ghosts_filled_exactly():
    mf, geom = make_mf()
    fill_global_index(mf)
    fill_boundary(mf, geom)
    # box 0 covers (0,0)-(15,15); its ghost cells at x=16..17 come from the
    # neighbor and must continue the global function
    fab = mf.fab(0)
    ghost = fab.view(Box((16, 0), (17, 15)))
    ii = np.arange(16, 18)[:, None]
    jj = np.arange(0, 16)[None, :]
    assert np.allclose(ghost[0], 1000.0 * ii + jj)


def test_corner_ghosts_filled():
    mf, geom = make_mf()
    fill_global_index(mf)
    fill_boundary(mf, geom)
    fab = mf.fab(0)
    corner = fab.view(Box((16, 16), (17, 17)))
    ii = np.arange(16, 18)[:, None]
    jj = np.arange(16, 18)[None, :]
    assert np.allclose(corner[0], 1000.0 * ii + jj)


def test_domain_boundary_ghosts_untouched():
    mf, geom = make_mf()
    mf.set_val(-5.0)
    fill_global_index(mf)
    fill_boundary(mf, geom)
    fab = mf.fab(0)
    # ghosts at x < 0 are outside the (non-periodic) domain: must stay -5
    outside = fab.view(Box((-2, 0), (-1, 15)))
    assert np.all(outside == -5.0)


def test_periodic_ghosts_wrap():
    mf, geom = make_mf(periodic=(True, True))
    fill_global_index(mf)
    fill_boundary(mf, geom)
    fab = mf.fab(0)
    # ghost at x=-1 wraps to x=31
    ghost = fab.view(Box((-1, 0), (-1, 15)))
    jj = np.arange(0, 16)
    assert np.allclose(ghost[0, 0, :], 1000.0 * 31 + jj)


def test_periodic_corner_wraps_diagonally():
    mf, geom = make_mf(periodic=(True, True))
    fill_global_index(mf)
    fill_boundary(mf, geom)
    fab = mf.fab(0)
    ghost = fab.view(Box((-1, -1), (-1, -1)))
    assert ghost[0, 0, 0] == 1000.0 * 31 + 31


def test_messages_recorded_with_owner_ranks():
    mf, geom = make_mf(nranks=4)
    mf.comm.ledger.clear()
    fill_boundary(mf, geom)
    msgs = mf.comm.ledger.messages("fillboundary")
    assert len(msgs) > 0
    # with roundrobin over 4 ranks every exchange crosses ranks
    assert all(m.src != m.dst for m in msgs)
    # total volume: each box receives ghosts from 3 neighbors
    assert mf.comm.ledger.total_bytes("fillboundary") > 0


def test_zero_ghost_noop():
    mf, geom = make_mf(ngrow=0)
    mf.comm.ledger.clear()
    fill_boundary(mf, geom)
    assert len(mf.comm.ledger) == 0


def test_boundary_regions_identifies_uncovered():
    mf, geom = make_mf()
    regions = boundary_regions(mf, 0)
    # box 0 at the domain corner: uncovered ghosts on the low-x and low-y sides
    total = sum(b.num_pts() for b in regions)
    # grown box 20x20=400, valid+covered neighbors fill 18*18 towards high side
    assert total == 400 - 18 * 18


def test_idempotent():
    mf, geom = make_mf()
    fill_global_index(mf)
    fill_boundary(mf, geom)
    snapshot = {i: fab.data.copy() for i, fab in mf}
    fill_boundary(mf, geom)
    for i, fab in mf:
        assert np.array_equal(fab.data, snapshot[i])
