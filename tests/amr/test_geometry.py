"""Tests for the Geometry (domain / periodicity / refinement) class."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.geometry import Geometry
from repro.amr.intvect import IntVect


def make(periodic=(False, False)):
    return Geometry(Box((0, 0), (31, 15)), (0.0, -1.0), (2.0, 1.0), periodic)


def test_basic_properties():
    g = make()
    assert g.dim == 2
    assert g.cell_size() == (2.0 / 32, 2.0 / 16)
    centers = g.cell_centers(1)
    assert len(centers) == 16
    assert centers[0] == pytest.approx(-1.0 + 0.5 * 2.0 / 16)
    assert centers[-1] == pytest.approx(1.0 - 0.5 * 2.0 / 16)


def test_validation():
    with pytest.raises(ValueError):
        Geometry(Box((0, 0), (7, 7)), (0.0,), (1.0, 1.0))
    with pytest.raises(ValueError):
        Geometry(Box((0, 0), (7, 7)), (0.0, 0.0), (0.0, 1.0))  # zero extent
    with pytest.raises(ValueError):
        Geometry(Box((0, 0), (7, 7)), (0.0, 0.0), (1.0, 1.0), (True,))


def test_refine_preserves_physical_extent():
    g = make()
    f = g.refine(2)
    assert f.domain.size() == (64, 32)
    assert f.prob_lo == g.prob_lo
    assert f.prob_hi == g.prob_hi
    assert f.cell_size()[0] == pytest.approx(g.cell_size()[0] / 2)
    assert f.periodic == g.periodic


def test_coarsen_and_divisibility():
    g = make()
    c = g.coarsen(2)
    assert c.domain.size() == (16, 8)
    assert c.refine(2).domain == g.domain
    bad = Geometry(Box((0, 0), (30, 15)), (0.0, 0.0), (1.0, 1.0))
    with pytest.raises(ValueError):
        bad.coarsen(4)  # 31 cells not divisible


def test_periodic_shifts_non_periodic():
    g = make(periodic=(False, False))
    assert g.periodic_shifts(Box((-2, 0), (3, 3))) == []


def test_periodic_shifts_single_direction():
    g = make(periodic=(True, False))
    shifts = g.periodic_shifts(Box((-2, 0), (33, 3)))
    tups = {s.tup() for s in shifts}
    assert (32, 0) in tups
    assert (-32, 0) in tups
    # no y shifts, no zero shift
    assert all(s[1] == 0 for s in shifts)
    assert (0, 0) not in tups


def test_periodic_shifts_two_directions_include_diagonals():
    g = make(periodic=(True, True))
    shifts = {s.tup() for s in g.periodic_shifts(Box((-1, -1), (32, 16)))}
    # face shifts
    assert (32, 0) in shifts and (0, 16) in shifts
    # corner (diagonal) shifts for corner ghost wrap
    assert (32, 16) in shifts and (-32, -16) in shifts
    assert len(shifts) == 8


def test_geometry_repr_roundtrip_info():
    g = make((True, False))
    text = repr(g)
    assert "periodic=(True, False)" in text
