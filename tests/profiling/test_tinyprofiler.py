"""Tests for the TinyProfiler region timers."""

import pytest

from repro.profiling.tinyprofiler import TinyProfiler


def test_region_timing_accumulates():
    prof = TinyProfiler()
    for _ in range(3):
        with prof.region("A"):
            pass
    assert prof.calls("A") == 3
    assert prof.total("A") >= 0.0


def test_nested_regions_and_breakdown():
    prof = TinyProfiler()
    with prof.region("outer"):
        with prof.region("inner1"):
            pass
        with prof.region("inner2"):
            pass
    bd = prof.breakdown("outer")
    assert set(bd) == {"inner1", "inner2"}
    assert prof.total("outer") >= bd["inner1"] + bd["inner2"] - 1e-9


def test_charge_simulated_time():
    prof = TinyProfiler()
    prof.charge("FillPatch", 2.5)
    prof.charge("FillPatch", 1.5)
    prof.charge("Advance", 4.0)
    assert prof.total("FillPatch") == pytest.approx(4.0)
    assert prof.calls("FillPatch") == 2
    assert prof.top_level() == {"FillPatch": pytest.approx(4.0),
                                "Advance": pytest.approx(4.0)}


def test_charge_under_charged_region():
    prof = TinyProfiler()
    with prof.charged_region("FillPatch"):
        prof.charge("ParallelCopy", 3.0)
        prof.charge("FillBoundary", 1.0)
    bd = prof.breakdown("FillPatch")
    assert bd == {"ParallelCopy": pytest.approx(3.0),
                  "FillBoundary": pytest.approx(1.0)}
    # charged children roll up into the parent's inclusive time
    assert prof.total("FillPatch") == pytest.approx(4.0)


def test_charge_negative_rejected():
    prof = TinyProfiler()
    with pytest.raises(ValueError):
        prof.charge("X", -1.0)


def test_exclusive_time():
    prof = TinyProfiler()
    with prof.charged_region("outer"):
        prof.charge("inner", 1.0)
    prof.charge("outer", 5.0)  # additional direct charge
    stats = {p: s for p, s in prof._stats.items() if p == ("outer",)}
    s = stats[("outer",)]
    assert s.exclusive == pytest.approx(5.0)
    assert s.inclusive == pytest.approx(6.0)


def test_report_and_reset():
    prof = TinyProfiler()
    with prof.region("A"):
        with prof.region("B"):
            pass
    text = prof.report()
    assert "A" in text and "B" in text
    prof.reset()
    assert prof.top_level() == {}
