"""Tests for the TinyProfiler region timers."""

import pytest

from repro.profiling.tinyprofiler import TinyProfiler


def test_region_timing_accumulates():
    prof = TinyProfiler()
    for _ in range(3):
        with prof.region("A"):
            pass
    assert prof.calls("A") == 3
    assert prof.total("A") >= 0.0


def test_nested_regions_and_breakdown():
    prof = TinyProfiler()
    with prof.region("outer"):
        with prof.region("inner1"):
            pass
        with prof.region("inner2"):
            pass
    bd = prof.breakdown("outer")
    assert set(bd) == {"inner1", "inner2"}
    assert prof.total("outer") >= bd["inner1"] + bd["inner2"] - 1e-9


def test_charge_simulated_time():
    prof = TinyProfiler()
    prof.charge("FillPatch", 2.5)
    prof.charge("FillPatch", 1.5)
    prof.charge("Advance", 4.0)
    assert prof.total("FillPatch") == pytest.approx(4.0)
    assert prof.calls("FillPatch") == 2
    assert prof.top_level() == {"FillPatch": pytest.approx(4.0),
                                "Advance": pytest.approx(4.0)}


def test_charge_under_charged_region():
    prof = TinyProfiler()
    with prof.charged_region("FillPatch"):
        prof.charge("ParallelCopy", 3.0)
        prof.charge("FillBoundary", 1.0)
    bd = prof.breakdown("FillPatch")
    assert bd == {"ParallelCopy": pytest.approx(3.0),
                  "FillBoundary": pytest.approx(1.0)}
    # charged children roll up into the parent's inclusive time
    assert prof.total("FillPatch") == pytest.approx(4.0)


def test_charge_negative_rejected():
    prof = TinyProfiler()
    with pytest.raises(ValueError):
        prof.charge("X", -1.0)


def test_exclusive_time():
    prof = TinyProfiler()
    with prof.charged_region("outer"):
        prof.charge("inner", 1.0)
    prof.charge("outer", 5.0)  # additional direct charge
    stats = {p: s for p, s in prof._stats.items() if p == ("outer",)}
    s = stats[("outer",)]
    assert s.exclusive == pytest.approx(5.0)
    assert s.inclusive == pytest.approx(6.0)


def test_charge_into_never_entered_parent():
    """Charging under a charged_region whose parent never ran with the
    wall clock still rolls the child's time into the parent's inclusive."""
    prof = TinyProfiler()
    with prof.charged_region("FillPatch"):
        prof.charge("ParallelCopy", 2.0)
        with prof.charged_region("FillBoundary"):
            prof.charge("FillBoundary_nowait", 0.5)
            prof.charge("FillBoundary_finish", 0.25)
    assert prof.total("FillPatch") == pytest.approx(2.75)
    assert prof.total("FillBoundary") == pytest.approx(0.75)
    # the never-entered parents have zero calls but carry inclusive time
    fp = prof._stats[("FillPatch",)]
    assert fp.calls == 0
    assert fp.inclusive == pytest.approx(2.75)
    assert fp.exclusive == pytest.approx(0.0)


def test_exclusive_invariant_excl_is_incl_minus_children():
    prof = TinyProfiler()
    with prof.charged_region("outer"):
        prof.charge("a", 1.0)
        prof.charge("b", 2.0)
    prof.charge("outer", 10.0)  # direct exclusive work
    s = prof._stats[("outer",)]
    assert s.inclusive == pytest.approx(13.0)
    assert s.child_time == pytest.approx(3.0)
    assert s.exclusive == pytest.approx(s.inclusive - s.child_time)
    assert s.exclusive >= 0.0
    # every region in the table satisfies the invariant
    for stats in prof._stats.values():
        assert stats.exclusive == pytest.approx(
            stats.inclusive - stats.child_time)
        assert stats.exclusive >= -1e-12


def test_report_orders_siblings_by_inclusive_time():
    prof = TinyProfiler()
    prof.charge("Small", 1.0)
    prof.charge("Large", 5.0)
    prof.charge("Medium", 3.0)
    with prof.charged_region("Large"):
        prof.charge("child_light", 0.5)
        prof.charge("child_heavy", 4.0)
    lines = prof.report().splitlines()
    order = [l.split()[0] for l in lines[2:]]
    assert order.index("Large") < order.index("Medium") < order.index("Small")
    # children appear indented under their parent, heaviest first
    assert order.index("Large") < order.index("child_heavy") \
        < order.index("child_light")
    heavy_line = next(l for l in lines if "child_heavy" in l)
    assert heavy_line.startswith("  ")


def test_listener_callbacks_fire_in_order():
    events = []

    class Spy:
        def on_enter(self, path):
            events.append(("enter", path))

        def on_exit(self, path, dt):
            events.append(("exit", path))

        def on_charge(self, path, seconds, calls):
            events.append(("charge", path, seconds))

    prof = TinyProfiler()
    prof.add_listener(Spy())
    with prof.region("A"):
        prof.charge("B", 1.5)
    assert events == [
        ("enter", ("A",)),
        ("charge", ("A", "B"), 1.5),
        ("exit", ("A",)),
    ]


def test_report_and_reset():
    prof = TinyProfiler()
    with prof.region("A"):
        with prof.region("B"):
            pass
    text = prof.report()
    assert "A" in text and "B" in text
    prof.reset()
    assert prof.top_level() == {}
