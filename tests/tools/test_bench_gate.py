"""Tests for tools/bench_gate.py — the perf-regression gate.

The acceptance pair: a synthetic 20% regression in a named series must
fail the default 15% gate, while the repo's committed BENCH_results.json
trajectory must pass it.
"""

import json
from pathlib import Path

from tests.tools.test_tools import ROOT, load_tool


def write_rows(path: Path, rows) -> Path:
    path.write_text(json.dumps(rows))
    return path


def series(bench, values, units="s", config="n=1"):
    return [{"bench": bench, "config": config, "value": v, "units": units}
            for v in values]


class TestGateVerdicts:
    def test_synthetic_regression_fails(self, tmp_path, capsys):
        gate = load_tool("bench_gate")
        # stable ~1.0s history, newest run 20% slower: must trip the 15% gate
        rows = series("step_wall", [1.00, 1.01, 0.99, 1.20])
        path = write_rows(tmp_path / "r.json", rows)
        assert gate.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "step_wall" in out
        assert "FAIL" in out

    def test_committed_trajectory_passes(self, capsys):
        gate = load_tool("bench_gate")
        assert gate.main([str(ROOT / "BENCH_results.json")]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_within_threshold_passes(self, tmp_path):
        gate = load_tool("bench_gate")
        path = write_rows(tmp_path / "r.json",
                          series("step_wall", [1.00, 1.01, 0.99, 1.10]))
        assert gate.main([str(path)]) == 0

    def test_improvement_passes(self, tmp_path):
        gate = load_tool("bench_gate")
        path = write_rows(tmp_path / "r.json",
                          series("step_wall", [1.0, 1.0, 0.5]))
        assert gate.main([str(path)]) == 0

    def test_higher_is_better_units_fail_on_drop(self, tmp_path):
        gate = load_tool("bench_gate")
        # a speedup series (units "x"): a 20% drop is the regression
        path = write_rows(tmp_path / "r.json",
                          series("pool_speedup", [2.0, 2.0, 1.6], units="x"))
        assert gate.main([str(path)]) == 1

    def test_single_row_series_skipped(self, tmp_path, capsys):
        gate = load_tool("bench_gate")
        path = write_rows(tmp_path / "r.json", series("fresh_bench", [1.0]))
        assert gate.main([str(path)]) == 0
        assert "1 skipped" in capsys.readouterr().out

    def test_median_baseline_shrugs_off_outlier(self, tmp_path):
        gate = load_tool("bench_gate")
        # one historic outlier (5.0) must not poison the baseline
        path = write_rows(tmp_path / "r.json",
                          series("step_wall", [1.0, 5.0, 1.0, 1.0, 1.05]))
        assert gate.main([str(path)]) == 0

    def test_threshold_flag(self, tmp_path):
        gate = load_tool("bench_gate")
        path = write_rows(tmp_path / "r.json",
                          series("step_wall", [1.0, 1.0, 1.10]))
        assert gate.main([str(path), "--threshold", "0.05"]) == 1
        assert gate.main([str(path), "--threshold", "0.25"]) == 0

    def test_series_filter(self, tmp_path):
        gate = load_tool("bench_gate")
        rows = (series("bad_bench", [1.0, 1.0, 2.0])
                + series("good_bench", [1.0, 1.0, 1.0]))
        path = write_rows(tmp_path / "r.json", rows)
        assert gate.main([str(path), "--series", "good_bench"]) == 0
        assert gate.main([str(path), "--series", "bad_bench"]) == 1


class TestTwoFileMode:
    def test_baseline_file_comparison(self, tmp_path):
        gate = load_tool("bench_gate")
        base = write_rows(tmp_path / "base.json",
                          series("step_wall", [1.0, 1.0, 1.0]))
        fresh_bad = write_rows(tmp_path / "bad.json",
                               series("step_wall", [1.3]))
        fresh_ok = write_rows(tmp_path / "ok.json",
                              series("step_wall", [1.05]))
        assert gate.main([str(fresh_bad), "--baseline", str(base)]) == 1
        assert gate.main([str(fresh_ok), "--baseline", str(base)]) == 0

    def test_series_absent_from_baseline_skipped(self, tmp_path, capsys):
        gate = load_tool("bench_gate")
        base = write_rows(tmp_path / "base.json",
                          series("old_bench", [1.0, 1.0]))
        fresh = write_rows(tmp_path / "new.json", series("new_bench", [9.9]))
        assert gate.main([str(fresh), "--baseline", str(base)]) == 0
        assert "1 skipped" in capsys.readouterr().out


class TestRobustness:
    def test_missing_file_exits_2(self, tmp_path):
        import pytest

        gate = load_tool("bench_gate")
        with pytest.raises(SystemExit) as exc:
            gate.main([str(tmp_path / "nope.json")])
        assert "no such results file" in str(exc.value)

    def test_zero_baseline_skipped(self, tmp_path):
        gate = load_tool("bench_gate")
        path = write_rows(tmp_path / "r.json",
                          series("odd", [0.0, 0.0, 1.0]))
        assert gate.main([str(path)]) == 0

    def test_malformed_rows_ignored(self, tmp_path):
        gate = load_tool("bench_gate")
        rows = series("step_wall", [1.0, 1.0, 1.0]) + [
            {"not": "a row"}, "just a string"]
        assert gate.main([str(write_rows(tmp_path / "r.json", rows))]) == 0
