"""Tests for the command-line tools (renderer, convergence driver)."""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

ROOT = Path(__file__).resolve().parent.parent.parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name, ROOT / "tools" / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture()
def small_plotfile(tmp_path):
    from repro.cases.dmr import DoubleMachReflection
    from repro.core.crocco import Crocco, CroccoConfig
    from repro.io.plotfile import write_plotfile

    case = DoubleMachReflection(ncells=(32, 8))
    sim = Crocco(case, CroccoConfig(version="1.2", max_level=1,
                                    max_grid_size=16, regrid_int=2))
    sim.initialize()
    sim.run(2)
    return write_plotfile(tmp_path / "plt", sim)


def test_render_plotfile_assembles_levels(small_plotfile, tmp_path):
    tool = load_tool("render_plotfile")
    field = tool.assemble(str(small_plotfile), comp=0, max_level=1)
    # finest-level canvas: 64 x 16
    assert field.shape == (64, 16)
    finite = field[np.isfinite(field)]
    assert finite.min() >= 1.0  # density field
    out = tmp_path / "img.pgm"
    tool.write_pgm(field, out, log_scale=False)
    header = out.read_text().splitlines()
    assert header[0] == "P2"
    assert header[1] == "64 16"  # PGM header: width height


def test_render_plotfile_cli(small_plotfile, tmp_path, capsys):
    tool = load_tool("render_plotfile")
    out = tmp_path / "x.pgm"
    rc = tool.main([str(small_plotfile), "--out", str(out), "--log"])
    assert rc == 0
    assert out.exists()


def test_convergence_tool_importable():
    tool = load_tool("convergence")
    assert callable(tool.main)
