"""Task graph: DataKey overlap and hazard-based dependency inference."""

import pytest

from repro.runtime.graph import ALL_COMPS, DataKey, TaskGraph


def noop():
    pass


class TestDataKey:
    def test_same_box_overlaps(self):
        a = DataKey("state", 0)
        b = DataKey("state", 0)
        assert a.overlaps(b) and b.overlaps(a)

    def test_different_mf_or_box_disjoint(self):
        a = DataKey("state", 0)
        assert not a.overlaps(DataKey("du", 0))
        assert not a.overlaps(DataKey("state", 1))

    def test_component_ranges(self):
        lo = DataKey("state", 0, 0, 2)
        hi = DataKey("state", 0, 2, 5)
        assert not lo.overlaps(hi)
        assert lo.overlaps(DataKey("state", 0, 1, 3))
        assert lo.overlaps(DataKey("state", 0, *ALL_COMPS))

    def test_hashable_and_frozen(self):
        k = DataKey("state", 3)
        assert k in {k}
        with pytest.raises(AttributeError):
            k.box = 4


class TestHazards:
    def test_raw(self):
        g = TaskGraph()
        w = g.add("w", noop, writes=[DataKey("s", 0)])
        r = g.add("r", noop, reads=[DataKey("s", 0)])
        assert w.tid in r.deps
        assert r.tid in w.dependents

    def test_waw(self):
        g = TaskGraph()
        w1 = g.add("w1", noop, writes=[DataKey("s", 0)])
        w2 = g.add("w2", noop, writes=[DataKey("s", 0)])
        assert w1.tid in w2.deps

    def test_war(self):
        g = TaskGraph()
        g.add("w0", noop, writes=[DataKey("s", 0)])
        r = g.add("r", noop, reads=[DataKey("s", 0)])
        w = g.add("w", noop, writes=[DataKey("s", 0)])
        assert r.tid in w.deps

    def test_independent_boxes_no_edge(self):
        g = TaskGraph()
        a = g.add("a", noop, writes=[DataKey("s", 0)])
        b = g.add("b", noop, writes=[DataKey("s", 1)])
        assert not b.deps and not a.dependents

    def test_read_write_same_task_no_self_dep(self):
        g = TaskGraph()
        t = g.add("t", noop, reads=[DataKey("s", 0)],
                  writes=[DataKey("s", 0)])
        assert t.tid not in t.deps

    def test_disjoint_comp_writes_no_edge(self):
        g = TaskGraph()
        w1 = g.add("w1", noop, writes=[DataKey("s", 0, 0, 2)])
        w2 = g.add("w2", noop, writes=[DataKey("s", 0, 2, 4)])
        assert w1.tid not in w2.deps

    def test_reader_does_not_depend_on_nonoverlapping_writer(self):
        g = TaskGraph()
        w = g.add("w", noop, writes=[DataKey("s", 0, 0, 2)])
        r = g.add("r", noop, reads=[DataKey("s", 0, 3, 4)])
        assert w.tid not in r.deps

    def test_explicit_after(self):
        g = TaskGraph()
        a = g.add("a", noop)
        b = g.add("b", noop, after=[a])
        assert a.tid in b.deps

    def test_unknown_kind_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="unknown task kind"):
            g.add("x", noop, kind="banana")


class TestQueries:
    def _chain(self):
        g = TaskGraph()
        k = DataKey("s", 0)
        t0 = g.add("t0", noop, writes=[k])
        t1 = g.add("t1", noop, reads=[k], writes=[DataKey("s", 1)])
        t2 = g.add("t2", noop, reads=[DataKey("s", 1)])
        free = g.add("free", noop, writes=[DataKey("other", 0)])
        return g, (t0, t1, t2, free)

    def test_roots(self):
        g, (t0, _t1, _t2, free) = self._chain()
        assert {t.tid for t in g.roots()} == {t0.tid, free.tid}

    def test_topological_order_respects_deps(self):
        g, _ = self._chain()
        pos = {t.tid: n for n, t in enumerate(g.topological_order())}
        for t in g.tasks:
            for d in t.deps:
                assert pos[d] < pos[t.tid]

    def test_cycle_detected(self):
        g = TaskGraph()
        a = g.add("a", noop)
        b = g.add("b", noop, after=[a])
        # force a cycle through the back door
        a.deps.add(b.tid)
        b.dependents.add(a.tid)
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_counts_and_critical_path(self):
        g, _ = self._chain()
        assert g.counts_by_kind() == {"compute": 4}
        assert g.critical_path_length() == 3
        assert len(g) == 4
