"""Executor construction and the pool's offload contract."""

import multiprocessing

import pytest

from repro.runtime.executors import (EXECUTORS, PoolExecutor, SerialExecutor,
                                     make_executor)
from repro.runtime.graph import TaskGraph

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


class TestFactory:
    def test_names(self):
        assert set(EXECUTORS) == {"serial", "pool"}
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads")

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_factory(self):
        ex = make_executor("pool", workers=3)
        assert isinstance(ex, PoolExecutor)
        assert ex.nworkers == 3
        ex.shutdown()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_worker_floor(self):
        # a 1-worker pool can't overlap anything; floor at 2
        ex = make_executor("pool", workers=1)
        assert ex.nworkers == 2
        ex.shutdown()


class TestSerial:
    def test_never_offloads(self):
        ex = SerialExecutor()
        g = TaskGraph()
        t = g.add("t", lambda: None, kind="compute",
                  payload={"op": "rhs_update"})
        assert not ex.can_offload(t)
        assert ex.in_flight() == 0
        assert not ex.poll()
        ex.shutdown()  # no-op


class TestPool:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_offloads_only_payload_tasks(self):
        ex = PoolExecutor(2)
        g = TaskGraph()
        plain = g.add("plain", lambda: None, kind="compute")
        loaded = g.add("loaded", lambda: None, kind="compute",
                       payload={"op": "rhs_update"})
        comm = g.add("comm", lambda: None, kind="comm-wait")
        assert not ex.can_offload(plain)
        assert ex.can_offload(loaded)
        assert not ex.can_offload(comm)
        ex.shutdown()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_is_lazy_and_needs_context(self):
        import repro.runtime.executors as mod

        ex = PoolExecutor(2)
        assert ex._pool is None  # nothing forked at construction
        saved = mod._WORKER_CTX
        mod._WORKER_CTX = None
        try:
            with pytest.raises(RuntimeError, match="set_worker_context"):
                ex._ensure_pool()
        finally:
            mod._WORKER_CTX = saved
            ex.shutdown()
