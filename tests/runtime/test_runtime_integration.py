"""End-to-end runtime: nowait/finish comm split, executor equivalence,
engine reports, and config plumbing."""

import multiprocessing

import numpy as np
import pytest

from repro.amr.boundary import (fill_boundary, fill_boundary_nowait)
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.geometry import Geometry
from repro.amr.multifab import MultiFab
from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.io.inputs import InputDeck
from repro.mpi.comm import Communicator

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_mf(ngrow=2, periodic=(False, False)):
    domain = Box((0, 0), (31, 31))
    ba = BoxArray.from_domain(domain, 16, 8)
    comm = Communicator(4, ranks_per_node=2)
    dm = DistributionMapping.make(ba, 4, "roundrobin")
    mf = MultiFab(ba, dm, 2, ngrow, comm)
    geom = Geometry(domain, (0.0, 0.0), (1.0, 1.0), periodic)
    return mf, geom


def randomize(mf, seed=0):
    rng = np.random.default_rng(seed)
    for _i, fab in mf:
        fab.whole()[...] = rng.standard_normal(fab.whole().shape)


class TestNowaitFinish:
    @pytest.mark.parametrize("periodic", [(False, False), (True, True)])
    def test_split_matches_eager(self, periodic):
        eager, geom = make_mf(periodic=periodic)
        split, _ = make_mf(periodic=periodic)
        randomize(eager)
        randomize(split)
        fill_boundary(eager, geom)
        handle = fill_boundary_nowait(split, geom)
        # ghosts are untouched until finish(): valid data already packed
        handle.finish()
        for i, fab in eager:
            np.testing.assert_array_equal(fab.whole(),
                                          split.fab(i).whole())

    def test_handle_accounting(self):
        mf, geom = make_mf()
        randomize(mf)
        handle = fill_boundary_nowait(mf, geom)
        assert handle.npackets > 0
        assert handle.nbytes > 0
        handle.finish()
        # finish is idempotent: packets are consumed
        assert handle.npackets == 0
        handle.finish()

    def test_pack_snapshot_isolated_from_later_writes(self):
        """The nowait pack must snapshot source data; mutating valid cells
        between post and finish must not leak into the exchanged ghosts."""
        a, geom = make_mf()
        b, _ = make_mf()
        randomize(a, seed=3)
        randomize(b, seed=3)
        fill_boundary(a, geom)

        handle = fill_boundary_nowait(b, geom)
        for _i, fab in b:
            fab.valid()[...] += 1.0  # overlapped "compute" on valid cells
        handle.finish()
        ng = b.ngrow.tup()[0]
        for i, fab in a:
            # mask out valid cells; ghosts must match a's (pre-bump) ghosts
            mask = np.ones(fab.whole().shape, dtype=bool)
            mask[(slice(None),) + tuple(slice(ng, s - ng)
                                        for s in fab.whole().shape[1:])] = False
            np.testing.assert_array_equal(fab.whole()[mask],
                                          b.fab(i).whole()[mask])


def run_dmr(executor, workers=None, steps=3, max_level=1):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.0", nranks=6, ranks_per_node=6, max_level=max_level,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=workers,
    ))
    sim.initialize()
    sim.run(steps)
    state = {(lev, i): fab.whole().copy()
             for lev in range(sim.finest_level + 1)
             for i, fab in sim.state[lev]}
    report = sim.engine.total_report
    sim.close()
    return state, report


class TestExecutorEquivalence:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_matches_serial(self):
        s_state, _ = run_dmr("serial")
        p_state, p_rep = run_dmr("pool", workers=2)
        assert set(s_state) == set(p_state)
        for k in s_state:
            err = float(np.abs(s_state[k] - p_state[k]).max())
            assert err < 1e-12, f"level/box {k}: max abs err {err}"
        # the pool actually offloaded compute tasks
        assert p_rep.tasks_by_kind["compute"] > 0
        assert p_rep.nworkers >= 2


class TestEngineReport:
    def test_two_level_run_overlaps(self):
        _state, rep = run_dmr("serial", steps=3)
        assert rep.graphs == 9  # 3 steps x 3 RK stages
        assert rep.tasks_by_kind["comm-post"] > 0
        assert rep.tasks_by_kind["comm-wait"] > 0
        assert rep.tasks_by_kind["compute"] > 0
        assert rep.posted_comm_s > 0.0
        assert rep.finish_comm_s > 0.0
        # coarse-level compute runs inside the fine level's comm window
        assert rep.overlap_s > 0.0
        assert 0.0 < rep.overlap_frac <= 1.0

    def test_single_level_serial_has_no_overlap(self):
        # with one level and one executor thread nothing can run inside
        # the only comm window — the measured overlap is exactly zero
        _state, rep = run_dmr("serial", steps=2, max_level=0)
        assert rep.tasks_by_kind.get("interp", 0) == 0
        assert rep.overlap_s == 0.0


class TestConfigPlumbing:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "pool")
        monkeypatch.setenv("REPRO_WORKERS", "7")
        cfg = CroccoConfig(version="1.1")
        assert cfg.executor == "pool"
        assert cfg.workers == 7

    def test_env_absent_defaults_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        cfg = CroccoConfig(version="1.1")
        assert cfg.executor == "serial"
        assert cfg.workers is None

    def test_deck_keys(self):
        deck = InputDeck.parse(
            "crocco.version = 1.1\n"
            "runtime.executor = pool\n"
            "runtime.workers = 4\n"
        )
        cfg = deck.to_crocco_config()
        assert cfg.executor == "pool"
        assert cfg.workers == 4

    def test_deck_silent_keeps_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        deck = InputDeck.parse("crocco.version = 1.1\n")
        assert deck.to_crocco_config().executor == "serial"

    def test_engine_name_exposed(self):
        case = DoubleMachReflection(ncells=(64, 16))
        sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32,
                                        executor="serial"))
        assert sim.engine.name == "serial"
        assert not sim.engine.is_pool
        sim.close()
