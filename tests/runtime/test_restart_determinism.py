"""Checkpoint/restart determinism under both runtime executors.

The task-graph runtime must not perturb restart semantics: a run
continued from a checkpoint must match the uninterrupted run —
bit-identical under the serial executor, and to tight floating-point
tolerance (< 1e-12) under the multiprocessing pool, whose shared-memory
round trips and offloaded kernels use the same arithmetic but a
different process topology.
"""

import multiprocessing

import numpy as np
import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.io.checkpoint import load_checkpoint, save_checkpoint

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_sim(executor, workers=None):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    return Crocco(case, CroccoConfig(
        version="2.0", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=workers,
    ))


def snapshot(sim):
    return {(lev, i): fab.whole().copy()
            for lev in range(sim.finest_level + 1)
            for i, fab in sim.state[lev]}


def run_with_restart(tmp_path, executor, workers=None, tag=""):
    """3 steps, checkpoint, 2 more — and separately restart + 2 steps."""
    sim = make_sim(executor, workers)
    sim.initialize()
    sim.run(3)
    ck = save_checkpoint(tmp_path / f"chk{tag}", sim)
    sim.run(2)
    straight = snapshot(sim)
    sim.close()

    sim2 = make_sim(executor, workers)
    load_checkpoint(ck, sim2)
    assert sim2.step_count == 3
    sim2.run(2)
    restarted = snapshot(sim2)
    sim2.close()
    return straight, restarted


def max_err(a, b):
    assert set(a) == set(b)
    return max(float(np.abs(a[k] - b[k]).max()) for k in a)


def test_serial_restart_bit_identical(tmp_path):
    straight, restarted = run_with_restart(tmp_path, "serial", tag="s")
    for k in straight:
        np.testing.assert_array_equal(straight[k], restarted[k])


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
def test_pool_restart_deterministic(tmp_path):
    straight, restarted = run_with_restart(tmp_path, "pool", workers=2,
                                           tag="p")
    assert max_err(straight, restarted) < 1e-12


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
def test_pool_restart_matches_serial_restart(tmp_path):
    _s_straight, s_restarted = run_with_restart(tmp_path, "serial", tag="s2")
    _p_straight, p_restarted = run_with_restart(tmp_path, "pool", workers=2,
                                                tag="p2")
    assert max_err(s_restarted, p_restarted) < 1e-12
