"""Scheduler: priority order, overlap windows, and report accounting."""

import time

from repro.runtime.executors import SerialExecutor
from repro.runtime.graph import DataKey, TaskGraph
from repro.runtime.scheduler import (KIND_PRIORITY, ScheduleReport, Scheduler,
                                     _interval_overlap)


def run_serial(graph, **kw):
    return Scheduler(SerialExecutor(), **kw).run(graph)


class TestPriorities:
    def test_posts_run_before_independent_compute(self):
        order = []
        g = TaskGraph()
        g.add("c", lambda: order.append("c"), kind="compute")
        g.add("p", lambda: order.append("p"), kind="comm-post")
        run_serial(g)
        assert order == ["p", "c"]

    def test_comm_wait_deferred_past_ready_compute(self):
        order = []
        g = TaskGraph()
        p = g.add("p", lambda: order.append("p"), kind="comm-post",
                  channel="ch")
        g.add("w", lambda: order.append("w"), kind="comm-wait",
              channel="ch", after=[p])
        g.add("c", lambda: order.append("c"), kind="compute")
        run_serial(g)
        assert order == ["p", "c", "w"]

    def test_submission_order_breaks_ties(self):
        order = []
        g = TaskGraph()
        for n in range(4):
            g.add(f"c{n}", lambda n=n: order.append(n), kind="compute")
        run_serial(g)
        assert order == [0, 1, 2, 3]

    def test_priority_table_shape(self):
        assert KIND_PRIORITY["comm-post"] < KIND_PRIORITY["bc"]
        assert KIND_PRIORITY["bc"] <= KIND_PRIORITY["compute"]
        assert KIND_PRIORITY["compute"] < KIND_PRIORITY["comm-wait"]


class TestDependencies:
    def test_hazard_chain_executes_in_order(self):
        log = []
        g = TaskGraph()
        k = DataKey("s", 0)
        g.add("w", lambda: log.append("w"), writes=[k])
        g.add("r", lambda: log.append("r"), reads=[k])
        g.add("w2", lambda: log.append("w2"), writes=[k])
        run_serial(g)
        assert log == ["w", "r", "w2"]

    def test_all_tasks_run_exactly_once(self):
        count = {"n": 0}
        g = TaskGraph()
        prev = []
        for n in range(10):
            prev = [g.add(f"t{n}", lambda: count.__setitem__("n", count["n"] + 1),
                          after=prev)]
        run_serial(g)
        assert count["n"] == 10


class TestOverlapMeasurement:
    def test_compute_inside_window_is_overlap(self):
        g = TaskGraph()
        p = g.add("p", lambda: None, kind="comm-post", channel="ch")
        g.add("w", lambda: None, kind="comm-wait", channel="ch", after=[p])
        g.add("c", lambda: time.sleep(0.02), kind="compute")
        rep = run_serial(g)
        # compute ran between post completion and wait start
        assert rep.overlap_s > 0.01
        assert rep.overlap_frac > 0.5

    def test_no_window_no_overlap(self):
        g = TaskGraph()
        g.add("c", lambda: time.sleep(0.01), kind="compute")
        rep = run_serial(g)
        assert rep.overlap_s == 0.0
        assert rep.compute_s > 0.0

    def test_compute_before_post_not_counted(self):
        g = TaskGraph()
        k = DataKey("s", 0)
        g.add("c", lambda: time.sleep(0.02), kind="compute", writes=[k])
        p = g.add("p", lambda: None, kind="comm-post", channel="ch",
                  reads=[k])
        g.add("w", lambda: None, kind="comm-wait", channel="ch", after=[p])
        rep = run_serial(g)
        assert rep.overlap_s == 0.0

    def test_unclosed_window_closes_at_makespan(self):
        g = TaskGraph()
        g.add("p", lambda: None, kind="comm-post", channel="ch")
        g.add("c", lambda: time.sleep(0.02), kind="compute")
        rep = run_serial(g)
        assert rep.overlap_s > 0.01

    def test_interval_overlap_merges_windows(self):
        spans = [(0.0, 10.0)]
        windows = [(1.0, 3.0), (2.0, 5.0), (7.0, 8.0)]
        assert abs(_interval_overlap(spans, windows) - 5.0) < 1e-12
        assert _interval_overlap([], windows) == 0.0
        assert _interval_overlap(spans, []) == 0.0


class TestReport:
    def test_counts_and_times(self):
        g = TaskGraph()
        p = g.add("p", lambda: None, kind="comm-post", channel="x")
        g.add("w", lambda: None, kind="comm-wait", channel="x", after=[p])
        g.add("c", lambda: None, kind="compute")
        rep = run_serial(g)
        assert rep.tasks_by_kind == {"comm-post": 1, "comm-wait": 1,
                                     "compute": 1}
        assert rep.makespan_s > 0.0
        assert rep.graphs == 1
        d = rep.as_dict()
        assert d["tasks.comm_post"] == 1.0
        assert "overlap_frac" in d and "idle_frac" in d

    def test_merge_accumulates(self):
        a = ScheduleReport(tasks_by_kind={"compute": 2}, compute_s=1.0,
                          overlap_s=0.5, makespan_s=2.0, busy_s=1.0,
                          nworkers=1, graphs=1)
        b = ScheduleReport(tasks_by_kind={"compute": 3, "bc": 1},
                          compute_s=2.0, overlap_s=0.25, makespan_s=1.0,
                          busy_s=2.0, nworkers=4, graphs=1)
        a.merge(b)
        assert a.tasks_by_kind == {"compute": 5, "bc": 1}
        assert a.compute_s == 3.0 and a.overlap_s == 0.75
        assert a.nworkers == 4 and a.graphs == 2

    def test_idle_frac_serial_is_low(self):
        g = TaskGraph()
        for n in range(3):
            g.add(f"c{n}", lambda: time.sleep(0.005), kind="compute")
        rep = run_serial(g)
        assert rep.idle_frac < 0.5


class TestTracer:
    def test_tasks_become_spans(self):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        g = TaskGraph()
        g.add("a-task", lambda: None, kind="compute")
        Scheduler(SerialExecutor(), tracer=tracer).run(g)
        spans = [e for e in tracer.events()
                 if e.get("ph") == "X" and e.get("name") == "a-task"]
        assert len(spans) == 1
        assert spans[0]["args"]["kind"] == "compute"

    def test_profiler_regions_nested(self):
        from repro.profiling.tinyprofiler import TinyProfiler

        prof = TinyProfiler()
        g = TaskGraph()
        g.add("t", lambda: None, kind="compute",
              regions=("Outer", "Inner"))
        Scheduler(SerialExecutor(), profiler=prof).run(g)
        assert prof.calls("Outer") == 1
        assert prof.calls("Inner") == 1
