"""End-to-end execution-backend integration: DMR trajectory parity,
per-step Algorithm-2 phase coverage, config plumbing, pool counter merge."""

import multiprocessing

import numpy as np
import pytest

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.io.inputs import InputDeck

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Algorithm-2 phases every v2.x step must emit labeled launches for
#: (Viscous is absent on the inviscid DMR; covered separately below)
STEP_PHASES = {
    "flux": ("WENOx", "WENOy"),
    "update": ("Update",),
    "fillpatch": ("FB_pack", "FB_unpack", "BC_fill"),
    "interp": ("Interp_",),
    "averagedown": ("AverageDown",),
    "reduction": ("ComputeDt",),
}


def make_sim(version="2.1", executor="serial", backend_target="auto",
             workers=None, max_level=1):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    return Crocco(case, CroccoConfig(
        version=version, nranks=6, ranks_per_node=6, max_level=max_level,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=workers, backend_target=backend_target))


def run_dmr(steps=3, **kwargs):
    sim = make_sim(**kwargs)
    sim.initialize()
    sim.run(steps)
    state = {(lev, i): fab.whole().copy()
             for lev in range(sim.finest_level + 1)
             for i, fab in sim.state[lev]}
    backend = sim.kernels.exec_backend
    devices = sim.devices or getattr(sim, "_backend_devices", None) or []
    launches = [rec for d in devices for rec in d.launches]
    totals = backend.class_totals()
    sim.close()
    return state, launches, totals


class TestTrajectoryParity:
    def test_host_vs_device_bitwise(self):
        """The device target wraps identical arithmetic: the v2.1 DMR
        trajectory must match the host target bit for bit."""
        h_state, h_launches, h_totals = run_dmr(backend_target="host")
        d_state, d_launches, d_totals = run_dmr(backend_target="device")
        assert set(h_state) == set(d_state)
        for k in h_state:
            assert np.array_equal(h_state[k], d_state[k]), f"mismatch {k}"
        # host target records nothing; device records everything
        assert h_launches == [] and h_totals == {}
        assert len(d_launches) > 0 and d_totals

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_serial_vs_pool_device(self):
        s_state, _, s_totals = run_dmr(backend_target="device",
                                       executor="serial")
        p_state, _, p_totals = run_dmr(backend_target="device",
                                       executor="pool", workers=2)
        assert set(s_state) == set(p_state)
        for k in s_state:
            err = float(np.abs(s_state[k] - p_state[k]).max())
            assert err < 1e-12, f"level/box {k}: max abs err {err}"
        # merged worker counters restore the full per-class accounting:
        # pool totals match serial for the offloaded classes too
        for cls in ("flux", "update"):
            assert p_totals[cls]["launches"] == s_totals[cls]["launches"]
            assert p_totals[cls]["points"] == s_totals[cls]["points"]


class TestPhaseCoverage:
    def test_every_algorithm2_phase_launches_each_step(self):
        """Under the device target every Algorithm-2 phase emits at least
        one labeled launch record per step."""
        sim = make_sim(backend_target="device")
        sim.initialize()
        devices = sim.devices or sim._backend_devices
        for step in range(3):
            before = sum(len(d.launches) for d in devices)
            marks = [len(d.launches) for d in devices]
            sim.step()
            new = [rec for d, m in zip(devices, marks)
                   for rec in d.launches[m:]]
            assert sum(len(d.launches) for d in devices) > before
            names = [rec.name for rec in new]
            by_class = {rec.name: rec.kernel_class for rec in new}
            for cls, prefixes in STEP_PHASES.items():
                for p in prefixes:
                    matched = [n for n in names if n.startswith(p)]
                    assert matched, f"step {step}: no {p} launch"
                    assert by_class[matched[0]] == cls
        sim.close()

    def test_viscous_phase_launches(self):
        """A case with a viscous flux emits labeled Viscous launches."""
        from repro.cases.reacting import IgnitionFront

        case = IgnitionFront(ncells=64)
        sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=64,
                                        backend_target="device"))
        sim.initialize()
        sim.run(2)
        names = {rec.name for d in sim._backend_devices for rec in d.launches}
        sim.close()
        assert "Viscous" in names

    def test_gpu_version_uses_sim_devices(self):
        """v2.x (on_gpu) routes launches to the simulation's own devices:
        no separate accounting fleet is created."""
        sim = make_sim(version="2.1", backend_target="auto")
        assert sim.devices is not None
        assert getattr(sim, "_backend_devices", None) is None
        assert sim.kernels.exec_backend.devices == sim.devices
        sim.close()


class TestConfigPlumbing:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "device")
        cfg = CroccoConfig(version="1.1")
        assert cfg.backend_target == "device"

    def test_env_absent_defaults_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        cfg = CroccoConfig(version="1.1")
        assert cfg.backend_target == "auto"

    def test_deck_key(self):
        deck = InputDeck.parse(
            "crocco.version = 1.1\n"
            "backend.target = device\n"
        )
        assert deck.to_crocco_config().backend_target == "device"

    def test_auto_follows_version(self):
        case = DoubleMachReflection(ncells=(64, 16))
        cpu = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32,
                                        backend_target="auto"))
        assert cpu.kernels.exec_backend.target == "host"
        cpu.close()
        gpu = make_sim(version="2.0", backend_target="auto")
        assert gpu.kernels.exec_backend.target == "device"
        gpu.close()

    def test_forced_device_on_cpu_version(self):
        """v1.x forced onto the device target gets accounting devices
        without flipping the CPU kernel backend."""
        case = DoubleMachReflection(ncells=(64, 16))
        sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=32,
                                        backend_target="device"))
        assert sim.devices is None
        assert sim._backend_devices is not None
        assert sim.kernels.backend == "cpp"
        assert sim.kernels.exec_backend.target == "device"
        sim.initialize()
        sim.step()
        assert any(d.launches for d in sim._backend_devices)
        sim.close()

    def test_bad_target_raises(self):
        case = DoubleMachReflection(ncells=(64, 16))
        with pytest.raises(ValueError, match="backend.target"):
            Crocco(case, CroccoConfig(version="1.1", max_grid_size=32,
                                      backend_target="cuda"))


@pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
class TestWorkerCounterMerge:
    def test_pool_run_merges_worker_launches(self):
        sim = make_sim(backend_target="device", executor="pool", workers=2)
        sim.initialize()
        sim.run(2)
        backend = sim.kernels.exec_backend
        # workers did the offloaded flux/update launches; their counters
        # came back through the engine's end-of-step drain
        assert backend.worker_launches > 0
        assert sim.engine.last_step_worker_counters
        # records stay worker-local: driver devices saw no flux launches
        # beyond any inline fallbacks, but totals still include them
        assert backend.class_totals()["flux"]["launches"] > 0
        sim.close()
