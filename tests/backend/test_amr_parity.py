"""Host-vs-device parity for every AMR op ported onto the launch seam.

Under the device target each op runs its arithmetic inside recorded
launches; the arithmetic itself is the same NumPy, so the results must be
*bitwise* identical to the host target — only the accounting differs.
Each test also pins the launch names and kernel classes the op emits.
"""

import numpy as np
import pytest

from repro.amr.average_down import average_down
from repro.amr.boundary import fill_boundary, fill_boundary_nowait
from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.fillpatch import fill_coarse_patch
from repro.amr.geometry import Geometry
from repro.amr.interpolate import (ConservativeLinearInterp,
                                   PiecewiseConstantInterp, TrilinearInterp)
from repro.amr.multifab import MultiFab
from repro.amr.parallelcopy import parallel_copy
from repro.amr.tagging import (tag_density_gradient, tag_momentum_gradient,
                               tag_value_threshold)
from repro.backend import DeviceBackend, use_backend
from repro.kernels.device import GpuDevice
from repro.mpi.comm import Communicator


def make_mf(ncomp=2, ngrow=2, periodic=(True, True), seed=0, nranks=4):
    domain = Box((0, 0), (31, 31))
    ba = BoxArray.from_domain(domain, 16, 8)
    comm = Communicator(nranks, ranks_per_node=2)
    dm = DistributionMapping.make(ba, nranks, "roundrobin")
    mf = MultiFab(ba, dm, ncomp, ngrow, comm)
    geom = Geometry(domain, (0.0, 0.0), (1.0, 1.0), periodic)
    rng = np.random.default_rng(seed)
    for _i, fab in mf:
        fab.whole()[...] = rng.standard_normal(fab.whole().shape)
    return mf, geom


def two_level(seed=0, ncomp=1, nranks=2):
    rng = np.random.default_rng(seed)
    comm = Communicator(nranks, ranks_per_node=1)
    dom_c = Box((0, 0), (15, 15))
    ba_c = BoxArray.from_domain(dom_c, 8, 8)
    crse = MultiFab(ba_c, DistributionMapping.make(ba_c, nranks), ncomp, 2,
                    comm)
    for _i, fab in crse:
        fab.whole()[...] = rng.random(fab.whole().shape)
    ba_f = BoxArray([Box((8, 8), (23, 23))])
    fine = MultiFab(ba_f, DistributionMapping.make(ba_f, nranks), ncomp, 2,
                    comm)
    for _i, fab in fine:
        fab.whole()[...] = rng.random(fab.whole().shape)
    geom_f = Geometry(dom_c.refine(2), (0.0, 0.0), (1.0, 1.0))
    return crse, fine, geom_f


def device_backend():
    return DeviceBackend([GpuDevice()])


def launch_names(backend):
    return [rec.name for dev in backend.devices for rec in dev.launches]


def launch_classes(backend):
    return {rec.kernel_class for dev in backend.devices
            for rec in dev.launches}


def snapshot(mf):
    return {i: fab.whole().copy() for i, fab in mf}


def assert_same(host_mf, dev_mf):
    for i, fab in host_mf:
        np.testing.assert_array_equal(fab.whole(), dev_mf.fab(i).whole())


class TestFillBoundaryParity:
    @pytest.mark.parametrize("periodic", [(False, False), (True, True)])
    def test_bitwise_and_launches(self, periodic):
        h, geom = make_mf(periodic=periodic, seed=11)
        d, _ = make_mf(periodic=periodic, seed=11)
        fill_boundary(h, geom)
        be = device_backend()
        with use_backend(be):
            fill_boundary(d, geom)
        assert_same(h, d)
        names = launch_names(be)
        assert "FB_pack" in names and "FB_unpack" in names
        assert launch_classes(be) == {"fillpatch"}

    def test_nowait_finish_parity(self):
        h, geom = make_mf(seed=5)
        d, _ = make_mf(seed=5)
        fill_boundary_nowait(h, geom).finish()
        be = device_backend()
        with use_backend(be):
            fill_boundary_nowait(d, geom).finish()
        assert_same(h, d)
        names = launch_names(be)
        # packs are launched at post time, unpacks at finish
        assert names.index("FB_pack") < names.index("FB_unpack")


class TestParallelCopyParity:
    @pytest.mark.parametrize("fill_ghosts", [False, True])
    def test_bitwise_and_launches(self, fill_ghosts):
        src_h, _ = make_mf(seed=21)
        src_d, _ = make_mf(seed=21)
        # a different layout for the destination: one big box
        comm = Communicator(4, ranks_per_node=2)
        ba = BoxArray([Box((4, 4), (27, 27))])
        dm = DistributionMapping.make(ba, 4)
        dst_h = MultiFab(ba, dm, 2, 2, comm)
        dst_d = MultiFab(ba, dm, 2, 2, comm)
        parallel_copy(dst_h, src_h, fill_ghosts=fill_ghosts)
        be = device_backend()
        with use_backend(be):
            parallel_copy(dst_d, src_d, fill_ghosts=fill_ghosts)
        assert_same(dst_h, dst_d)
        assert set(launch_names(be)) == {"PC_copy"}
        assert launch_classes(be) == {"fillpatch"}


class TestInterpParity:
    @pytest.mark.parametrize("interp,label", [
        (TrilinearInterp(), "Interp_trilinear"),
        (PiecewiseConstantInterp(), "Interp_pconst"),
        (ConservativeLinearInterp(), "Interp_conslinear"),
    ])
    def test_fill_coarse_patch_bitwise(self, interp, label):
        crse_h, fine_h, geom_f = two_level(seed=31)
        crse_d, fine_d, _ = two_level(seed=31)
        fill_coarse_patch(fine_h, crse_h, geom_f, 2, interp)
        be = device_backend()
        with use_backend(be):
            fill_coarse_patch(fine_d, crse_d, geom_f, 2, interp)
        assert_same(fine_h, fine_d)
        names = launch_names(be)
        assert label in names
        assert "PC_gather" in names
        classes = launch_classes(be)
        assert "interp" in classes and "fillpatch" in classes


class TestAverageDownParity:
    def test_bitwise_and_launches(self):
        crse_h, fine_h, _ = two_level(seed=41)
        crse_d, fine_d, _ = two_level(seed=41)
        average_down(fine_h, crse_h, 2)
        be = device_backend()
        with use_backend(be):
            average_down(fine_d, crse_d, 2)
        assert_same(crse_h, crse_d)
        assert set(launch_names(be)) == {"AverageDown"}
        assert launch_classes(be) == {"averagedown"}


class TestTaggingParity:
    def test_density_gradient(self):
        h, _ = make_mf(ncomp=4, seed=51)
        d, _ = make_mf(ncomp=4, seed=51)
        tags_h = tag_density_gradient(h, 0, 0.5)
        be = device_backend()
        with use_backend(be):
            tags_d = tag_density_gradient(d, 0, 0.5)
        assert set(tags_h) == set(tags_d)
        for i in tags_h:
            np.testing.assert_array_equal(tags_h[i], tags_d[i])
        assert set(launch_names(be)) == {"Tag_gradient"}
        assert launch_classes(be) == {"tagging"}

    def test_momentum_gradient_and_threshold(self):
        h, _ = make_mf(ncomp=4, seed=52)
        d, _ = make_mf(ncomp=4, seed=52)
        be = device_backend()
        tm_h = tag_momentum_gradient(h, (1, 2), 0.5)
        tv_h = tag_value_threshold(h, 3, 0.0)
        with use_backend(be):
            tm_d = tag_momentum_gradient(d, (1, 2), 0.5)
            tv_d = tag_value_threshold(d, 3, 0.0)
        for a, b in ((tm_h, tm_d), (tv_h, tv_d)):
            for i in a:
                np.testing.assert_array_equal(a[i], b[i])
        assert set(launch_names(be)) == {"Tag_gradient", "Tag_value"}


class TestDeviceOpsLeaveDataIdenticalToSeed:
    def test_host_default_records_nothing(self):
        """With no device backend active the AMR ops never touch a device:
        the module default is the host backend."""
        mf, geom = make_mf(seed=61)
        fill_boundary(mf, geom)  # must not raise, nothing to record
