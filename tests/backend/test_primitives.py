"""Execution-backend primitives: host/device parity, counters, context."""

import time

import numpy as np
import pytest

from repro.backend import (DeviceBackend, HostBackend, LaunchContext,
                           counters_delta, current_backend, make_exec_backend,
                           parallel_for, reduce_data, set_backend, use_backend)
from repro.kernels.counts import (BUDGETS, FILLBOUNDARY_BUDGET, INTERP_BUDGET,
                                  UPDATE_BUDGET, WENO_BUDGET,
                                  budget_for_kernel)
from repro.kernels.device import GpuDevice


class TestHostBackend:
    def test_parallel_for_runs_body(self):
        host = HostBackend()
        out = host.parallel_for("K", lambda: np.arange(4.0) * 2, 4)
        np.testing.assert_array_equal(out, [0.0, 2.0, 4.0, 6.0])

    def test_reduce_ops_bitwise(self):
        host = HostBackend()
        rng = np.random.default_rng(7)
        v = rng.standard_normal(257)
        assert host.reduce_data("R", v, "max") == float(np.max(v))
        assert host.reduce_data("R", v, "min") == float(np.min(v))
        assert host.reduce_data("R", v, "sum") == float(np.sum(v))

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown reduction op"):
            HostBackend().reduce_data("R", np.ones(3), "prod")

    def test_no_accounting(self):
        host = HostBackend()
        host.parallel_for("K", lambda: None, 10)
        assert host.counters == {}
        assert host.class_totals() == {}
        assert host.worker_launches == 0


class TestDeviceBackend:
    def test_parallel_for_matches_host_bitwise(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((5, 8))
        body = lambda: np.sin(a) * np.exp(a)  # noqa: E731
        host_out = HostBackend().parallel_for("K", body, a.size)
        dev_out = DeviceBackend([GpuDevice()]).parallel_for("K", body, a.size)
        np.testing.assert_array_equal(host_out, dev_out)

    def test_reduce_matches_host_bitwise(self):
        rng = np.random.default_rng(4)
        v = rng.standard_normal(1000)
        for op in ("min", "max", "sum"):
            h = HostBackend().reduce_data("R", v, op)
            d = DeviceBackend([GpuDevice()]).reduce_data("R", v, op)
            assert h == d

    def test_launch_recorded_with_class_and_budget(self):
        dev = GpuDevice()
        be = DeviceBackend([dev])
        be.parallel_for("WENOx", lambda: None, 100, kernel_class="flux")
        rec = dev.launches[-1]
        assert rec.name == "WENOx"
        assert rec.kernel_class == "flux"
        assert rec.npoints == 100
        assert rec.flops == int(100 * WENO_BUDGET.flops_per_point)

    def test_counters_accumulate_by_class(self):
        be = DeviceBackend([GpuDevice()])
        be.parallel_for("FB_pack", lambda: None, 10, kernel_class="fillpatch")
        be.parallel_for("FB_unpack", lambda: None, 10, kernel_class="fillpatch")
        be.reduce_data("ComputeDt", np.ones(5), "max")
        snap = be.counters_snapshot()
        assert snap["fillpatch"]["launches"] == 2
        assert snap["fillpatch"]["points"] == 20
        assert snap["reduction"]["launches"] == 1

    def test_rank_selects_device(self):
        devs = [GpuDevice(name="d0"), GpuDevice(name="d1")]
        be = DeviceBackend(devs)
        be.parallel_for("K", lambda: None, 1, rank=1)
        be.parallel_for("K", lambda: None, 1, rank=3)
        assert len(devs[0].launches) == 0
        assert len(devs[1].launches) == 2

    def test_worker_counter_merge_kept_separate(self):
        be = DeviceBackend([GpuDevice()])
        be.parallel_for("Update", lambda: None, 50, kernel_class="update")
        be.merge_worker_counters(
            {"update": {"launches": 3, "points": 150, "flops": 10,
                        "dram_bytes": 20}})
        # driver-local counters untouched; totals fold both sources
        assert be.counters["update"].launches == 1
        assert be.worker_launches == 3
        assert be.class_totals()["update"]["launches"] == 4
        assert be.class_totals()["update"]["points"] == 200

    def test_counters_delta(self):
        be = DeviceBackend([GpuDevice()])
        be.parallel_for("Update", lambda: None, 5, kernel_class="update")
        before = be.counters_snapshot()
        be.parallel_for("Update", lambda: None, 7, kernel_class="update")
        be.parallel_for("WENOx", lambda: None, 3, kernel_class="flux")
        delta = counters_delta(be.counters_snapshot(), before)
        assert delta["update"]["launches"] == 1
        assert delta["update"]["points"] == 7
        assert delta["flux"]["launches"] == 1
        # unchanged classes are omitted entirely
        be2 = DeviceBackend([GpuDevice()])
        be2.parallel_for("Update", lambda: None, 5, kernel_class="update")
        snap = be2.counters_snapshot()
        assert counters_delta(snap, snap) == {}


class TestBudgetResolution:
    def test_exact_then_prefix_then_fallback(self):
        assert budget_for_kernel("WENOx") is BUDGETS["WENO"]
        assert budget_for_kernel("WENOz") is BUDGETS["WENO"]
        assert budget_for_kernel("Viscous") is BUDGETS["Viscous"]
        assert budget_for_kernel("FB_pack") is FILLBOUNDARY_BUDGET
        assert budget_for_kernel("Interp_trilinear") is INTERP_BUDGET
        assert budget_for_kernel("SomethingNew") is UPDATE_BUDGET

    def test_copy_budgets_have_nonzero_flops(self):
        # zero flops/pt would make the roofline arithmetic intensity
        # degenerate; copies are priced with a small nonzero budget
        for name in ("FB_pack", "PC_copy", "BC_fill"):
            assert budget_for_kernel(name).flops_per_point > 0


class TestCurrentBackendContext:
    def test_default_is_host(self):
        assert current_backend().target == "host"

    def test_use_backend_restores_on_exit(self):
        be = DeviceBackend([GpuDevice()])
        with use_backend(be):
            assert current_backend() is be
        assert current_backend().target == "host"

    def test_use_backend_nests(self):
        outer = DeviceBackend([GpuDevice()])
        inner = HostBackend()
        with use_backend(outer):
            with use_backend(inner):
                assert current_backend() is inner
            assert current_backend() is outer

    def test_restores_on_exception(self):
        be = DeviceBackend([GpuDevice()])
        with pytest.raises(RuntimeError):
            with use_backend(be):
                raise RuntimeError("boom")
        assert current_backend().target == "host"

    def test_set_backend_none_restores_default(self):
        prev = set_backend(DeviceBackend([GpuDevice()]))
        assert prev.target == "host"
        set_backend(None)
        assert current_backend().target == "host"

    def test_free_functions_dispatch_to_current(self):
        dev = GpuDevice()
        with use_backend(DeviceBackend([dev])):
            out = parallel_for("K", lambda: 42, 7, kernel_class="update")
            r = reduce_data("R", np.array([1.0, 3.0]), "max")
        assert out == 42
        assert r == 3.0
        assert [rec.name for rec in dev.launches] == ["K", "R"]

    def test_launch_context_alias(self):
        assert LaunchContext is use_backend


class TestMakeExecBackend:
    def test_targets(self):
        assert make_exec_backend("host").target == "host"
        dev = GpuDevice()
        be = make_exec_backend("device", [dev])
        assert be.target == "device"
        assert be.devices == [dev]

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError, match="unknown backend target"):
            make_exec_backend("cuda")


class SlowListener:
    """Deliberately expensive on_launch observer (satellite-6 regression)."""

    def __init__(self, delay):
        self.delay = delay
        self.walls = []

    def on_launch(self, device, rec, wall_seconds):
        self.walls.append(wall_seconds)
        time.sleep(self.delay)


class TestListenerOutsideTimedWindow:
    def test_slow_listener_does_not_inflate_wall_time(self):
        """_notify_launch runs after the perf_counter window: a 50 ms
        listener must not appear in the charged kernel wall time."""
        dev = GpuDevice()
        listener = SlowListener(0.05)
        dev.add_listener(listener)
        for _ in range(3):
            dev.launch("K", lambda: None, 10, 1.0, 8.0)
        dev.reduce("R", np.ones(4), op="sum")
        assert len(listener.walls) == 4
        assert all(w < 0.04 for w in listener.walls)
