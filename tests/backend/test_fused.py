"""The fused optimizing target: combination math, drift bound, scratch."""

import multiprocessing

import numpy as np
import pytest

from repro.backend import ScratchCache, make_exec_backend
from repro.backend.fused import JIT_MODES, FusedBackend, numba_available
from repro.cases.dmr import DoubleMachReflection
from repro.cases.shocktube import SodShockTube
from repro.core.crocco import ConfigError, Crocco, CroccoConfig
from repro.core.validation import flow_variables, l2_difference
from repro.kernels.fused import combine_into, stencil_tables
from repro.numerics.weno import (CANDIDATE_OFFSETS, WenoScheme,
                                 smoothness_matrix)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: the paper's port-validation criterion (Sec. IV-A)
DRIFT_TOL = 1e-7


# -- combination math --------------------------------------------------------

class TestCombineMath:
    def test_beta_rank2_factorization_matches_quadratic_form(self):
        rng = np.random.default_rng(3)
        _, D1, D2 = stencil_tables(4)
        from repro.kernels.fused import BETA_K

        for r in range(4):
            M = smoothness_matrix(CANDIDATE_OFFSETS[r])
            for _ in range(20):
                v = rng.normal(size=3)
                direct = v @ M @ v
                fast = (D1[r] @ v) ** 2 + BETA_K * (D2[r] @ v) ** 2
                assert abs(direct - fast) <= 1e-12 * max(1.0, abs(direct))

    @pytest.mark.parametrize("variant", ["symbo", "symoo", "js5"])
    def test_combine_into_matches_scheme_combine(self, variant):
        scheme = WenoScheme(variant=variant)
        rng = np.random.default_rng(7)
        # mix of smooth data and a discontinuity to exercise the limiter
        smooth = [1.0 + 0.1 * rng.normal(size=(5, 40)) for _ in range(6)]
        jump = [np.where(rng.random((5, 40)) > 0.5, 1.0, 10.0)
                for _ in range(6)]
        for cells in (smooth, jump):
            ref = scheme.combine(cells)
            scratch = ScratchCache()
            out = np.empty_like(ref)
            combine_into(scheme, cells, scratch, out)
            assert np.allclose(out, ref, rtol=1e-12, atol=1e-14)
            # accumulate mode adds on top
            acc = np.ones_like(ref)
            combine_into(scheme, cells, scratch, acc, add=True)
            assert np.allclose(acc, 1.0 + ref, rtol=1e-12, atol=1e-14)


# -- scratch cache -----------------------------------------------------------

class TestScratchCache:
    def test_reuse_and_counters(self):
        c = ScratchCache()
        a = c.get("x", (4, 8))
        b = c.get("x", (4, 8))
        assert a is b
        assert (c.hits, c.misses) == (1, 1)
        assert c.get("x", (4, 9)) is not a  # shape-keyed
        assert c.get("y", (4, 8)) is not a  # role-keyed
        assert c.get("x", (4, 8), np.float32) is not a  # dtype-keyed
        stats = c.stats()
        assert stats["entries"] == 4
        assert stats["bytes"] == a.nbytes + 4 * 9 * 8 + a.nbytes + 4 * 8 * 4
        c.clear()
        assert c.stats()["entries"] == 0 and c.hits == 0

    def test_backend_scratch_warms_up(self):
        be = make_exec_backend("fused")
        layout_shape = (5, 24, 24)
        from repro.numerics.eos import IdealGasEOS
        from repro.numerics.metrics import CartesianMetrics
        from repro.numerics.state import StateLayout
        from repro.kernels.api import make_backend

        layout = StateLayout(dim=2, nspecies=1)
        ks = make_backend("cpp", layout, IdealGasEOS(), exec_backend=be)
        ng = ks.nghost
        rng = np.random.default_rng(0)
        u = np.empty((layout.ncons,) + tuple(16 + 2 * ng for _ in range(2)))
        u[0] = 1.0
        u[1:3] = 0.1 * rng.normal(size=(2,) + u.shape[1:])
        u[layout.energy] = 2.5
        metrics = CartesianMetrics([0.01, 0.01])
        ks.rhs(u, metrics, ng)
        first = be.scratch.stats()
        assert first["misses"] > 0
        ks.rhs(u, metrics, ng)
        second = be.scratch.stats()
        # steady state: same box shape re-served entirely from cache
        assert second["misses"] == first["misses"]
        assert second["hits"] > first["hits"]
        assert be.scratch_stats()["shapes"] >= 1


# -- JIT gating --------------------------------------------------------------

class TestJitGating:
    def test_modes(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED_JIT", raising=False)
        be = FusedBackend()
        assert be.jit_mode == "auto"
        assert be.jit_enabled == numba_available()
        off = FusedBackend(jit="off")
        assert not off.jit_enabled

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_JIT", "off")
        assert not FusedBackend().jit_enabled

    def test_bad_mode_is_config_error(self):
        with pytest.raises(ConfigError, match="REPRO_FUSED_JIT"):
            FusedBackend(jit="cuda")
        assert set(JIT_MODES) == {"auto", "on", "off"}

    def test_on_without_numba_warns_and_falls_back(self):
        if numba_available():
            pytest.skip("numba installed: no fallback to exercise")
        with pytest.warns(RuntimeWarning, match="numba"):
            be = FusedBackend(jit="on")
        assert not be.jit_enabled

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_jit_combine_matches_numpy_path(self):
        from repro.kernels.fused import get_jit_combine
        from repro.numerics.weno import WENO_EPS_FLOOR

        kernel = get_jit_combine()
        assert kernel is not None
        scheme = WenoScheme()
        rng = np.random.default_rng(11)
        vp = 1.0 + 0.3 * rng.normal(size=(10, 20))
        vm = 1.0 + 0.3 * rng.normal(size=(10, 20))
        start, nif = 1, 12
        C, D1, D2 = stencil_tables(4)
        out = np.empty((10, nif))
        kernel(vp, vm, start, C, D1, D2, scheme.linear_weights(),
               scheme.eps, WENO_EPS_FLOOR, scheme.downwind_limit, out)
        cells_p = [vp[:, start + k: start + k + nif] for k in range(6)]
        cells_m = [vm[:, start + k: start + k + nif] for k in range(6)]
        ref = scheme.combine(cells_p) + scheme.combine(cells_m[::-1])
        assert np.allclose(out, ref, rtol=1e-12, atol=1e-14)


# -- end-to-end drift bound --------------------------------------------------

def relative_drift(sim_a, sim_b):
    """Max over flow variables of rel. L2 difference (paper criterion)."""
    va, vb = flow_variables(sim_a), flow_variables(sim_b)
    worst = 0.0
    for k in va:
        scale = float(np.sqrt(np.mean(va[k] ** 2))) or 1.0
        worst = max(worst, l2_difference(va[k], vb[k]) / scale)
    return worst


def run_sod(backend_target, executor="serial", steps=5):
    sim = Crocco(SodShockTube(ncells=128),
                 CroccoConfig(version="1.1", max_grid_size=64,
                              executor=executor,
                              workers=2 if executor == "pool" else None,
                              backend_target=backend_target))
    sim.initialize()
    sim.run(steps)
    return sim


def run_dmr(backend_target, executor="serial", steps=3):
    case = DoubleMachReflection(ncells=(64, 16), curvilinear=True)
    sim = Crocco(case, CroccoConfig(
        version="2.1", nranks=6, ranks_per_node=6, max_level=1,
        max_grid_size=32, blocking_factor=8, regrid_int=2,
        executor=executor, workers=2 if executor == "pool" else None,
        backend_target=backend_target))
    sim.initialize()
    sim.run(steps)
    return sim


class TestDriftBound:
    def test_sod_fused_vs_host(self):
        host = run_sod("host")
        fused = run_sod("fused")
        try:
            assert relative_drift(host, fused) <= DRIFT_TOL
        finally:
            host.close(), fused.close()

    def test_dmr_fused_vs_host_serial(self):
        host = run_dmr("host")
        fused = run_dmr("fused")
        try:
            drift = relative_drift(host, fused)
            assert 0 <= drift <= DRIFT_TOL
        finally:
            host.close(), fused.close()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_dmr_fused_vs_host_pool(self):
        host = run_dmr("host", executor="pool")
        fused = run_dmr("fused", executor="pool")
        try:
            assert relative_drift(host, fused) <= DRIFT_TOL
        finally:
            host.close(), fused.close()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_fused_serial_vs_pool_identical(self):
        serial = run_dmr("fused", executor="serial")
        pool = run_dmr("fused", executor="pool")
        try:
            for lev in range(serial.finest_level + 1):
                for (i, sfab), (_, pfab) in zip(serial.state[lev],
                                                pool.state[lev]):
                    err = float(np.abs(sfab.whole() - pfab.whole()).max())
                    assert err < 1e-12, f"lev {lev} box {i}: {err}"
        finally:
            serial.close(), pool.close()


class TestFusedLaunchStream:
    def test_fused_launch_names_and_point_parity(self):
        device = run_dmr("device")
        fused = run_dmr("fused")
        try:
            def flux_names(sim):
                devs = sim.devices or sim._backend_devices
                return [r for d in devs for r in d.launches
                        if r.kernel_class == "flux"]

            dev_recs = flux_names(device)
            fus_recs = flux_names(fused)
            assert {r.name for r in dev_recs} == {"WENOx", "WENOy"}
            assert {r.name for r in fus_recs} == {"WENOxy"}
            # fewer, wider launches covering the same point total
            assert len(fus_recs) < len(dev_recs)
            dev_total = device.kernels.exec_backend.class_totals()
            fus_total = fused.kernels.exec_backend.class_totals()
            assert (fus_total["flux"]["points"]
                    == dev_total["flux"]["points"])
            # the fused target serves scratch from its cache
            assert fused.kernels.exec_backend.scratch.hits > 0
        finally:
            device.close(), fused.close()

    def test_characteristic_reconstruction_falls_back(self):
        from repro.kernels.api import make_backend
        from repro.numerics.eos import IdealGasEOS
        from repro.numerics.fluxes import ConvectiveFlux
        from repro.numerics.metrics import CartesianMetrics
        from repro.numerics.state import StateLayout

        layout = StateLayout(dim=2, nspecies=1)
        be = make_exec_backend("fused")
        ks = make_backend("cpp", layout, IdealGasEOS(),
                          convective=ConvectiveFlux(characteristic=True),
                          exec_backend=be)
        ng = ks.nghost
        u = np.ones((layout.ncons,) + tuple(8 + 2 * ng for _ in range(2)))
        u[1:3] = 0.0
        u[layout.energy] = 2.5
        ks.rhs(u, CartesianMetrics([0.1, 0.1]), ng)
        names = {r.name for d in be.devices for r in d.launches}
        assert {"WENOx", "WENOy"} <= names and "WENOxy" not in names
