"""Target-registry API: registration, resolution, LaunchSpec contract."""

import numpy as np
import pytest

from repro.backend import (HostBackend, LaunchSpec, UnknownTargetError,
                           available_targets, make_exec_backend,
                           register_target, resolve_target,
                           unregister_target)
from repro.core.errors import ConfigError

ALL_TARGETS = ("host", "device", "fused")


class TestRegistry:
    def test_builtin_targets_registered(self):
        targets = available_targets()
        for name in ALL_TARGETS:
            assert name in targets

    def test_targets_constant_derived_from_registry(self):
        import repro.backend
        import repro.backend.launch

        assert repro.backend.TARGETS == available_targets()
        assert repro.backend.launch.TARGETS == available_targets()
        register_target("tmp_derived", lambda devices=None: HostBackend())
        try:
            assert "tmp_derived" in repro.backend.TARGETS
        finally:
            unregister_target("tmp_derived")
        assert "tmp_derived" not in repro.backend.TARGETS

    def test_make_exec_backend_goes_through_registry(self):
        for name in ALL_TARGETS:
            assert make_exec_backend(name).target == name

    def test_register_and_construct_custom_target(self):
        class Tracer(HostBackend):
            target = "tracer"

        register_target("tracer", lambda devices=None: Tracer())
        try:
            be = make_exec_backend("tracer")
            assert isinstance(be, Tracer)
            assert "tracer" in available_targets()
        finally:
            unregister_target("tracer")

    def test_duplicate_registration_rejected_unless_override(self):
        register_target("tmp_dup", lambda devices=None: HostBackend())
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_target("tmp_dup", lambda devices=None: HostBackend())
            # override replaces the factory in place
            class Other(HostBackend):
                target = "tmp_dup"

            register_target("tmp_dup", lambda devices=None: Other(),
                            override=True)
            assert isinstance(make_exec_backend("tmp_dup"), Other)
        finally:
            unregister_target("tmp_dup")

    def test_auto_name_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_target("auto", lambda devices=None: HostBackend())

    def test_unknown_target_error_lists_registered_names(self):
        with pytest.raises(UnknownTargetError) as exc:
            make_exec_backend("cuda")
        msg = str(exc.value)
        for name in ALL_TARGETS:
            assert name in msg


class TestResolveTarget:
    def test_explicit_names_pass_through(self):
        for name in ALL_TARGETS:
            assert resolve_target(name) == name

    def test_auto_resolves_to_version_default(self):
        assert resolve_target("auto", version_default="device") == "device"
        assert resolve_target(None, version_default="host") == "host"
        # without a version default, auto defers
        assert resolve_target("auto") == "auto"

    def test_unknown_target_is_config_error_with_source(self):
        with pytest.raises(ConfigError) as exc:
            resolve_target("cuda", source="REPRO_BACKEND")
        msg = str(exc.value)
        assert "cuda" in msg and "REPRO_BACKEND" in msg
        for name in ALL_TARGETS:
            assert name in msg

    def test_crocco_reports_config_error(self):
        from repro.cases.shocktube import SodShockTube
        from repro.core.crocco import Crocco, CroccoConfig

        case = SodShockTube(ncells=32)
        with pytest.raises(ConfigError, match="backend.target"):
            Crocco(case, CroccoConfig(version="1.1", max_grid_size=32,
                                      backend_target="cuda"))

    def test_cli_bad_backend_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        deck = tmp_path / "inputs"
        deck.write_text("crocco.case = sod\namr.n_cell = 32\n"
                        "amr.max_grid_size = 32\nrun.steps = 1\n")
        rc = main([str(deck), "--backend", "cuda"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cuda" in err


class TestLaunchSpecContract:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_spec_accepted_by_all_targets(self, target):
        be = make_exec_backend(target)
        spec = LaunchSpec(kernel_class="flux", rank=0, shape=(5, 8, 8))
        out = be.parallel_for("WENOx", lambda: 42, 64, spec)
        assert out == 42
        red = be.reduce_data("ComputeDt", np.arange(6.0), "max",
                             LaunchSpec(kernel_class="reduction"))
        assert red == 5.0

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_loose_kwargs_deprecated_but_equivalent(self, target):
        be = make_exec_backend(target)
        with pytest.warns(DeprecationWarning, match="LaunchSpec"):
            out = be.parallel_for("Update", lambda: 7, 10,
                                  kernel_class="update")
        assert out == 7
        with pytest.warns(DeprecationWarning, match="LaunchSpec"):
            red = be.reduce_data("ComputeDt", np.arange(4.0), "min",
                                 kernel_class="reduction", rank=0)
        assert red == 0.0

    def test_unknown_kwarg_rejected(self):
        be = make_exec_backend("host")
        with pytest.raises(TypeError, match="grid_size"):
            be.parallel_for("K", lambda: 1, 1, grid_size=128)

    def test_loose_kwargs_merge_into_spec_with_warning(self):
        from repro.kernels.device import GpuDevice

        dev = GpuDevice(name="m")
        be = make_exec_backend("device", [dev, GpuDevice(name="m2")])
        with pytest.warns(DeprecationWarning):
            be.parallel_for("K", lambda: 1, 1,
                            LaunchSpec(kernel_class="update"), rank=1)
        # the legacy kwarg overrode the spec's default rank
        assert be.devices[1].launches and not dev.launches

    def test_device_target_records_spec_fields(self):
        from repro.kernels.device import GpuDevice

        dev = GpuDevice(name="t")
        be = make_exec_backend("device", [dev])
        be.parallel_for("WENOx", lambda: None, 100,
                        LaunchSpec(kernel_class="flux", rank=0,
                                   shape=(5, 10, 10)))
        assert len(dev.launches) == 1
        assert be.class_totals()["flux"]["points"] == 100
