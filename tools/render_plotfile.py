#!/usr/bin/env python
"""Render a plotfile field to a portable graymap (.pgm) image.

No plotting libraries required: PGM is a plain-text image format every
viewer understands.  AMR levels can be overlaid (finer data replaces
coarser where present), reproducing the visual content of the paper's
Fig. 2 density contour.

Usage:  python tools/render_plotfile.py PLOTFILE [--comp N] [--out FILE]
        [--log] [--levels L]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.io.plotfile import read_level, read_plotfile_header  # noqa: E402


def assemble(path: str, comp: int, max_level: int) -> np.ndarray:
    """Compose levels 0..max_level onto the finest grid (2D slice)."""
    header = read_plotfile_header(path)
    max_level = min(max_level, header["finest_level"])
    ratio = 2
    # finest-level canvas
    lo, hi = header["levels"][max_level]["domain"]
    shape = tuple(h - l + 1 for l, h in zip(lo, hi))[:2]
    canvas = np.full(shape, np.nan)
    for lev in range(max_level + 1):
        fabs = read_level(path, lev)
        meta = header["levels"][lev]
        scale = ratio ** (max_level - lev)
        for i, (blo, bhi) in enumerate(meta["boxes"]):
            arr = fabs[i][comp]
            if arr.ndim == 3:  # 3D: take the mid-z slice
                arr = arr[:, :, arr.shape[2] // 2]
            up = np.repeat(np.repeat(arr, scale, axis=0), scale, axis=1)
            x0, y0 = blo[0] * scale, blo[1] * scale
            canvas[x0: x0 + up.shape[0], y0: y0 + up.shape[1]] = up
    return canvas


def write_pgm(field: np.ndarray, out: Path, log_scale: bool) -> None:
    data = field.copy()
    if log_scale:
        data = np.log10(np.maximum(data, 1e-12))
    finite = data[np.isfinite(data)]
    lo, hi = float(finite.min()), float(finite.max())
    norm = (data - lo) / (hi - lo + 1e-300)
    gray = np.nan_to_num(norm, nan=0.0)
    img = (gray * 255).astype(np.uint8)
    # PGM: x right, y up -> rows top to bottom
    img = img.T[::-1]
    with open(out, "w") as f:
        f.write(f"P2\n{img.shape[1]} {img.shape[0]}\n255\n")
        for row in img:
            f.write(" ".join(str(int(v)) for v in row) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("plotfile")
    ap.add_argument("--comp", type=int, default=0, help="component index")
    ap.add_argument("--out", default=None, help="output .pgm path")
    ap.add_argument("--log", action="store_true", help="log10 scale")
    ap.add_argument("--levels", type=int, default=99,
                    help="highest AMR level to overlay")
    args = ap.parse_args(argv)
    field = assemble(args.plotfile, args.comp, args.levels)
    out = Path(args.out or (Path(args.plotfile).name + f"_c{args.comp}.pgm"))
    write_pgm(field, out, args.log)
    finite = field[np.isfinite(field)]
    print(f"wrote {out}  ({field.shape[0]}x{field.shape[1]}, "
          f"range [{finite.min():.3g}, {finite.max():.3g}])")
    return 0


if __name__ == "__main__":
    sys.exit(main())
