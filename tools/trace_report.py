#!/usr/bin/env python
"""Summarize a recorded run directory (trace.json + metrics.jsonl).

Standalone-tool spelling of ``python -m repro.report``: prints the
hot-region table, FillPatch split, rank-to-rank comms matrix and roofline
points of one recorded run — functional (wall time) or simulated-Summit
(charged time).

Usage:  python tools/trace_report.py RUN_DIR [--top N]
        python tools/trace_report.py --trace trace.json --metrics metrics.jsonl
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability.report import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
