#!/usr/bin/env python
"""Perf-regression gate over the BENCH_results.json trajectory.

Each benchmark row is ``{"bench", "config", "value", "units", ...}``;
rows with the same ``(bench, config)`` form a time series.  The gate
compares the **newest** row of every series against the **median of the
older rows** (the baseline — a median shrugs off one noisy outlier run)
and fails when the newest value regressed by more than the threshold:

- series in seconds (``units == "s"``) regress when the value *rises*;
- any other units (``x``, ``fraction``, ``cells/s``...) are treated as
  higher-is-better and regress when the value *falls*.

Series with fewer than two rows are skipped — no baseline, no verdict —
so a freshly added benchmark never fails the gate on its first run.

Usage::

    python tools/bench_gate.py [RESULTS.json] [--threshold 0.15]
        [--baseline OLD.json] [--series NAME] [--list]

With ``--baseline``, the newest row of every series in RESULTS is
compared against the median of *all* rows of the same series in OLD
(two-file mode: CI records a fresh file and gates it against the
committed trajectory measured on the same machine).  Exit status: 0
clean, 1 regression(s), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

#: default tolerated relative regression (15%)
DEFAULT_THRESHOLD = 0.15

#: units where a larger value means a slower/worse result
LOWER_IS_BETTER_UNITS = {"s", "ms", "us", "bytes"}

ROOT = Path(__file__).resolve().parent.parent


def load_rows(path: Path) -> List[dict]:
    try:
        rows = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: no such results file: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if not isinstance(rows, list):
        raise SystemExit(f"error: {path}: expected a JSON list of rows")
    return [r for r in rows if isinstance(r, dict)
            and "bench" in r and "config" in r and "value" in r]


def group_series(rows: List[dict]) -> Dict[Tuple[str, str], List[dict]]:
    series: Dict[Tuple[str, str], List[dict]] = {}
    for row in rows:
        series.setdefault((row["bench"], row["config"]), []).append(row)
    return series


def lower_is_better(units: str) -> bool:
    return units in LOWER_IS_BETTER_UNITS


def check_series(key: Tuple[str, str], newest: dict,
                 baseline_rows: List[dict],
                 threshold: float) -> Optional[dict]:
    """Verdict dict for one series, or None when it can't be judged."""
    if not baseline_rows:
        return None
    base = median(float(r["value"]) for r in baseline_rows)
    new = float(newest["value"])
    units = str(newest.get("units", ""))
    if base == 0.0:
        return None  # a zero baseline has no meaningful relative change
    if lower_is_better(units):
        change = (new - base) / abs(base)     # + = slower = regression
    else:
        change = (base - new) / abs(base)     # + = smaller = regression
    return {"bench": key[0], "config": key[1], "units": units,
            "baseline": base, "value": new, "n_baseline": len(baseline_rows),
            "regression": change, "failed": change > threshold}


def run_gate(results: Path, baseline: Optional[Path], threshold: float,
             only_series: Optional[str] = None,
             list_all: bool = False) -> int:
    series = group_series(load_rows(results))
    base_series = (group_series(load_rows(baseline))
                   if baseline is not None else None)
    verdicts = []
    skipped = 0
    for key in sorted(series):
        if only_series is not None and only_series not in key[0]:
            continue
        rows = series[key]
        newest = rows[-1]
        if base_series is not None:
            history = base_series.get(key, [])
        else:
            history = rows[:-1]  # self-trajectory: older rows of this file
        verdict = check_series(key, newest, history, threshold)
        if verdict is None:
            skipped += 1
            continue
        verdicts.append(verdict)

    failed = [v for v in verdicts if v["failed"]]
    mode = f"vs {baseline}" if baseline is not None else "self-trajectory"
    print(f"bench gate: {len(verdicts)} series judged, {skipped} skipped "
          f"(no baseline), threshold {threshold:.0%}, {mode}")
    shown = verdicts if list_all else failed
    for v in shown:
        arrow = "REGRESSED" if v["failed"] else "ok"
        print(f"  [{arrow:>9s}] {v['bench']} ({v['config']}): "
              f"{v['baseline']:.4g} -> {v['value']:.4g} {v['units']} "
              f"({v['regression']:+.1%} vs median of {v['n_baseline']})")
    if failed:
        print(f"bench gate: FAIL — {len(failed)} series regressed more "
              f"than {threshold:.0%}")
        return 1
    print("bench gate: PASS")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="Fail when the newest benchmark rows regress beyond a "
                    "threshold against the series baseline.")
    parser.add_argument("results", nargs="?",
                        default=str(ROOT / "BENCH_results.json"),
                        help="results file to judge (newest row per series)")
    parser.add_argument("--baseline", default=None,
                        help="compare against this older results file "
                             "instead of the results file's own history")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated relative regression "
                             f"(default {DEFAULT_THRESHOLD:.0%})")
    parser.add_argument("--series", default=None,
                        help="only judge benches whose name contains this")
    parser.add_argument("--list", action="store_true", dest="list_all",
                        help="print every judged series, not just failures")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")
    return run_gate(Path(args.results),
                    Path(args.baseline) if args.baseline else None,
                    args.threshold, args.series, args.list_all)


if __name__ == "__main__":
    sys.exit(main())
