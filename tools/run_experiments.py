#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs the functional-layer experiments at reduced scale plus the full
Summit performance model, and writes the comparison document.  Takes a
few minutes (the 1024-node decompositions are built box-exactly).

Usage:  python tools/run_experiments.py [--fast]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
FAST = "--fast" in sys.argv

OUT: list = []


def emit(s: str = "") -> None:
    OUT.append(s)
    print(s)


def md_table(header, rows) -> None:
    emit("| " + " | ".join(str(h) for h in header) + " |")
    emit("|" + "|".join("---" for _ in header) + "|")
    for r in rows:
        emit("| " + " | ".join(str(c) for c in r) + " |")
    emit()


def fig3() -> None:
    from repro.kernels.counts import VISCOUS_BUDGET, WENO_BUDGET
    from repro.machine.gpu import V100Model
    from repro.machine.node import Power9Model

    gpu, cpu = V100Model(), Power9Model()
    emit("## Fig. 3 — kernel times (1 POWER9 + 1 V100)")
    emit()
    emit("Paper: C++ kernels a consistent ~1.2x slower than Fortran on the")
    emit("POWER9; GPU speedup from 2.5x (smallest size, Viscous) to 15.8x")
    emit("(largest size, WENOx), 'where GPUs are most efficient'.")
    emit()
    rows = []
    for n in (4_000, 8_000, 20_000, 50_000, 100_000, 200_000):
        tf = cpu.kernel_time(WENO_BUDGET, n, "fortran")
        tc = cpu.kernel_time(WENO_BUDGET, n, "cpp")
        tg = gpu.kernel_time(WENO_BUDGET, n)
        tgv = gpu.kernel_time(VISCOUS_BUDGET, n)
        tcv = cpu.kernel_time(VISCOUS_BUDGET, n, "cpp")
        rows.append((f"{n:,}", f"{tf:.2e}", f"{tc:.2e}", f"{tg:.2e}",
                     f"{tc / tg:.1f}x", f"{tcv / tgv:.1f}x"))
    md_table(("points", "WENOx fortran [s]", "WENOx cpp [s]", "WENOx gpu [s]",
              "WENOx speedup", "Viscous speedup"), rows)
    emit("Measured: cpp/fortran = 1.20x everywhere (modeled directly); GPU")
    emit("speedup spans the paper's band across the memory-feasible sizes.")
    emit()


def fig4() -> None:
    from repro.kernels.counts import WENO_BUDGET
    from repro.machine.roofline import hierarchical_roofline

    rp = hierarchical_roofline(WENO_BUDGET)
    emit("## Fig. 4 — WENOx hierarchical roofline (V100)")
    emit()
    emit("Paper: ~300 DP Gflop/s achieved (~4% of the 7.8 Tflop/s peak);")
    emit("bandwidth-bound at L1, L2 and DRAM; 12.5% theoretical occupancy")
    emit("from very high register usage.")
    emit()
    md_table(("quantity", "paper", "measured"), [
        ("achieved DP Gflop/s", "~300", f"{rp.achieved_flops_per_s / 1e9:.0f}"),
        ("fraction of peak", "~4%", f"{rp.fraction_of_peak:.1%}"),
        ("theoretical occupancy", "12.5%", f"{rp.occupancy:.1%}"),
        ("binding resource", "memory bandwidth", rp.bound_level),
        ("AI at L1/L2/DRAM [flop/B]", "(plotted)",
         " / ".join(f"{rp.ai[l]:.2f}" for l in ("L1", "L2", "DRAM"))),
    ])


def l2_validation() -> None:
    from repro.cases.dmr import DoubleMachReflection
    from repro.core.crocco import Crocco, CroccoConfig
    from repro.core.validation import compare_states

    emit("## Sec. IV-A / IV-C — porting L2 validation")
    emit()
    n = (64, 16) if FAST else (96, 24)
    t_end = 0.01 if FAST else 0.02

    def run(version):
        sim = Crocco(DoubleMachReflection(ncells=n),
                     CroccoConfig(version=version, nranks=2, ranks_per_node=1,
                                  max_grid_size=64))
        sim.initialize()
        while sim.time < t_end:
            sim.step()
        return sim

    sims = {v: run(v) for v in ("1.0", "1.1", "2.0")}
    fc = compare_states(sims["1.0"], sims["1.1"])
    cg = compare_states(sims["1.1"], sims["2.0"])
    emit(f"DMR {n} to t={t_end} ({sims['1.1'].step_count} steps).  Paper: the")
    emit("Fortran-vs-C++ L2 difference plateaus at ~1e-7 per flow variable;")
    emit("the GPU port shows no accuracy change at all.")
    emit()
    md_table(("variable", "fortran vs cpp (paper ~1e-7)", "cpp vs gpu (paper 0)"),
             [(v, f"{fc[v]:.2e}", f"{cg[v]:.2e}") for v in sorted(fc)])
    emit(f"Max drift {max(fc.values()):.2e} (nonzero, below the paper's 1e-7")
    emit("plateau at this operation count); GPU bitwise-identical as reported.")
    emit()


def amr_savings() -> None:
    from repro.perfmodel.decomposition import amr_reduction, dmr_band_hierarchy
    from repro.perfmodel.scaling import TABLE1

    emit("## Sec. V-C — AMR active-point reduction")
    emit()
    emit("Paper: AMR demonstrates an 89-94% reduction in actual grid points")
    emit("relative to the AMR-disabled solution.")
    emit()
    entries = TABLE1[:3] if FAST else TABLE1
    rows = []
    for nodes, gpus, pts in entries:
        levels = dmr_band_hierarchy(pts, gpus, 6, True)
        rows.append((nodes, f"{pts:.2e}",
                     f"{sum(l.num_pts() for l in levels):.2e}",
                     f"{amr_reduction(levels):.1%}"))
    md_table(("nodes", "equivalent pts", "active pts", "reduction"), rows)


def fig5() -> None:
    from repro.perfmodel.scaling import (
        TABLE1, speedup_series, strong_scaling, weak_scaling,
        weak_scaling_efficiency,
    )

    emit("## Fig. 5 (left) — strong scaling")
    emit()
    nodes = (16, 64, 256, 1024) if FAST else (16, 32, 64, 128, 256, 512, 1024)
    points = 2.0e8 if FAST else 1.27e9
    ss = strong_scaling(versions=("1.1", "1.2", "2.0"), nodes=nodes,
                        points=points)
    md_table(("nodes", "1.1 [s/iter]", "1.2 [s/iter]", "2.0 [s/iter]"), [
        (n,) + tuple(f"{ss[v][k].time_per_iteration:.3f}"
                     for v in ("1.1", "1.2", "2.0"))
        for k, n in enumerate(nodes)
    ])
    amr = speedup_series(ss["1.1"], ss["1.2"])
    gpu = speedup_series(ss["1.2"], ss["2.0"])
    cum = speedup_series(ss["1.1"], ss["2.0"])
    md_table(("quantity", "paper", "measured"), [
        ("AMR speedup, lowest node count", "4.6x", f"{amr[0]:.1f}x"),
        ("AMR speedup, highest node count", "0.9x (1.1x slowdown)",
         f"{amr[-1]:.2f}x"),
        ("GPU speedup, lowest node count", "44x", f"{gpu[0]:.0f}x"),
        ("GPU speedup, highest node count", "6x", f"{gpu[-1]:.1f}x"),
        ("cumulative, lowest", "201x", f"{cum[0]:.0f}x"),
        ("cumulative, highest", "5.5x", f"{cum[-1]:.1f}x"),
        ("GPU curve stops improving", "~128 nodes",
         f"~{nodes[int(np.argmin([p.time_per_iteration for p in ss['2.0']]))]}"
         " nodes"),
    ])

    emit("## Fig. 5 (right) + Table I — weak scaling")
    emit()
    table = tuple(t for t in TABLE1 if t[0] in (4, 16, 100, 400, 1024)) \
        if FAST else TABLE1
    ws = weak_scaling(versions=("1.1", "1.2", "2.0", "2.1"), table=table)
    md_table(("nodes", "equiv pts", "1.1 [s]", "1.2 [s]", "2.0 [s]", "2.1 [s]"), [
        (n, f"{pts:.2e}") + tuple(
            f"{ws[v][k].time_per_iteration:.3f}"
            for v in ("1.1", "1.2", "2.0", "2.1"))
        for k, (n, _g, pts) in enumerate(table)
    ])
    eff20 = weak_scaling_efficiency(ws["2.0"])
    eff21 = weak_scaling_efficiency(ws["2.1"])
    n400 = [k for k, t in enumerate(table) if t[0] == 400]
    n1024 = [k for k, t in enumerate(table) if t[0] == 1024]
    rows = []
    if n400:
        rows.append(("2.0 weak efficiency @400 nodes", "~54%",
                     f"{eff20[n400[0]]:.0%}"))
        rows.append(("2.1 weak efficiency @400 nodes", "~70%",
                     f"{eff21[n400[0]]:.0%}"))
    if n1024:
        rows.append(("2.0 weak efficiency @1024 nodes", "~40%",
                     f"{eff20[n1024[0]]:.0%}"))
    md_table(("quantity", "paper", "measured"), rows)
    return ws, table


def figs67(ws, table) -> None:
    from repro.core.versions import get_version
    from repro.perfmodel.calibration import CAL
    from repro.perfmodel.decomposition import dmr_band_hierarchy
    from repro.perfmodel.execution import fillpatch_split

    emit("## Fig. 6 — CRoCCo 2.1 runtime regions over the weak series")
    emit()
    rows = []
    for k, (n, _g, pts) in enumerate(table):
        bd = ws["2.1"][k].breakdown
        rows.append((n, f"{bd.advance:.3f}", f"{bd.fillpatch:.3f}",
                     f"{bd.computedt:.4f}", f"{bd.averagedown:.4f}",
                     f"{bd.regrid:.4f}"))
    md_table(("nodes", "Advance", "FillPatch", "ComputeDt", "AverageDown",
              "Regrid"), rows)
    fp = {n: ws["2.1"][k].breakdown.fillpatch
          for k, (n, _g, _p) in enumerate(table)}
    if 4 in fp and 100 in fp and 1024 in fp:
        md_table(("quantity", "paper", "measured"), [
            ("FillPatch growth 4 -> 100 nodes", "~+40%",
             f"{fp[100] / fp[4] - 1:+.0%}"),
            ("FillPatch growth 100 -> 1024 nodes", "~+65%",
             f"{fp[1024] / fp[100] - 1:+.0%}"),
            ("Advance across the series", "steady",
             "within ~60% of flat (box-quantization noise)"),
        ])

    emit("## Fig. 7 — FillPatch internals (2.1)")
    emit()
    v21 = get_version("2.1")
    rows = []
    pcf = []
    for n, _g, pts in table:
        nranks = CAL.spec.ranks_for(n, True)
        levels = dmr_band_hierarchy(pts, nranks, 6, True, CAL)
        split = fillpatch_split(v21, levels, n, CAL)
        pcf.append(split["ParallelCopy_finish"])
        rows.append((n,) + tuple(
            f"{split[k] * 1e3:.2f}" for k in (
                "ParallelCopy_finish", "ParallelCopy_nowait",
                "FillBoundary_finish", "FillBoundary_nowait")))
    md_table(("nodes", "PC_finish [ms]", "PC_nowait [ms]",
              "FB_finish [ms]", "FB_nowait [ms]"), rows)
    emit(f"Paper: ParallelCopy_finish increases with node count — measured "
         f"series is monotone: {pcf == sorted(pcf)}.")
    emit()


def functional_dmr() -> None:
    from repro.cases.dmr import DoubleMachReflection
    from repro.core.crocco import Crocco, CroccoConfig

    emit("## Fig. 2 — functional 3-level curvilinear AMR DMR")
    emit()
    nx = 96 if FAST else 128
    sim = Crocco(DoubleMachReflection(ncells=(nx, nx // 4), curvilinear=True),
                 CroccoConfig(version="2.0", nranks=6, ranks_per_node=6,
                              max_level=2, max_grid_size=32, regrid_int=4))
    sim.initialize()
    t_end = 0.02 if FAST else 0.04
    while sim.time < t_end:
        sim.step()
    mn, mx = sim.min_max(0)
    md_table(("quantity", "value"), [
        ("grid", f"{nx} x {nx // 4} coarse, 3 levels, curvilinear"),
        ("steps / time", f"{sim.step_count} / {sim.time:.4f}"),
        ("density range", f"[{mn:.2f}, {mx:.2f}] (Mach-10 DMR: reflection "
         "amplifies beyond the normal-shock jump of 8)"),
        ("AMR savings", f"{sim.amr_savings():.1%}"),
        ("fine-level boxes", len(sim.box_arrays[2])),
        ("simulated GPU launches", len(sim.kernels.device.launches)),
        ("ParallelCopy traffic",
         f"{sim.comm.ledger.total_bytes('parallelcopy') / 1e6:.1f} MB "
         "(curvilinear interpolator's coordinate gathers)"),
    ])


def main() -> None:
    t0 = time.time()
    emit("# EXPERIMENTS — paper vs measured")
    emit()
    emit("Regenerated by `python tools/run_experiments.py`"
         + (" --fast" if FAST else "") + ".")
    emit()
    emit("The functional layer runs real (reduced-scale) solves; the")
    emit("performance layer combines box-exact decomposition metadata at the")
    emit("paper's problem sizes with calibrated Summit machine models (one")
    emit("calibration for all figures — see `repro/perfmodel/calibration.py`).")
    emit("Absolute seconds are modeled; the comparisons below target the")
    emit("paper's *shapes and ratios*: who wins, by what factor, where the")
    emit("crossovers and saturations fall.")
    emit()
    emit("Known deviations (documented, not hidden):")
    emit()
    emit("- The paper's per-GPU memory statements (1.2e5 target points/GPU,")
    emit("  2.0e5 limit) are mutually hard to reconcile with its 89-94%")
    emit("  active-point reduction at the Table I sizes; we keep the")
    emit("  reduction and flag per-GPU budgets against the 2.0e5 limit.")
    emit("- The paper reports all versions *slowing down* at 4 nodes (load")
    emit("  balance); our synthetic hierarchies show the same low-node-count")
    emit("  noise but with the fast/slow direction reversed, which shifts")
    emit("  efficiency baselines by ~10 points.")
    emit("- FillPatch growth from 4 to 100 nodes is steeper than the paper's")
    emit("  ~+40% (the 4-node baseline is small in our model); the 100 -> 1024")
    emit("  growth and the ParallelCopy_finish trend match.")
    emit()
    fig3()
    fig4()
    l2_validation()
    amr_savings()
    ws, table = fig5()
    figs67(ws, table)
    functional_dmr()
    emit(f"_Generated in {time.time() - t0:.0f} s._")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(OUT) + "\n")
    print(f"\nwrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
