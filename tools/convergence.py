#!/usr/bin/env python
"""Grid-convergence study on the isentropic vortex.

Runs the smooth-vortex case at a refinement sequence and reports the
observed order of accuracy of the WENO-SYMBO / RK3 solver — the formal
verification every high-order CFD release ships with.

Usage:  python tools/convergence.py [base_n] [t_end]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cases.vortex import IsentropicVortex  # noqa: E402
from repro.core.crocco import Crocco, CroccoConfig  # noqa: E402
from repro.core.validation import error_norms, observed_order  # noqa: E402


def main() -> int:
    base = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    t_end = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    resolutions = [base, 2 * base, 4 * base]
    errs = {"L1": [], "L2": [], "Linf": []}
    for n in resolutions:
        case = IsentropicVortex(ncells=n)
        sim = Crocco(case, CroccoConfig(version="1.1",
                                        max_grid_size=min(64, n)))
        sim.initialize()
        while sim.time < t_end:
            sim.step()
        norms = error_norms(sim)["rho"]
        for k in errs:
            errs[k].append(norms[k])
        print(f"n={n:4d}  steps={sim.step_count:4d}  "
              + "  ".join(f"{k}={norms[k]:.3e}" for k in ("L1", "L2", "Linf")))
    for k in ("L1", "L2", "Linf"):
        orders = observed_order(errs[k])
        print(f"observed order ({k}): "
              + ", ".join(f"{o:.2f}" for o in orders))
    return 0


if __name__ == "__main__":
    sys.exit(main())
