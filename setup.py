"""Legacy setup shim.

The reproduction environment has no network access and no ``wheel``
package, so PEP 517/660 builds are unavailable; this setup.py lets
``pip install -e .`` take the legacy editable-install path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="2.0.0",
    description=(
        "CRoCCo v2.0 reproduction: curvilinear AMR CFD with simulated "
        "GPU/Summit substrates"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
