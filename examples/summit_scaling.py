#!/usr/bin/env python
"""Summit scaling study (Fig. 5 of the paper), via the performance model.

Regenerates the strong- and weak-scaling series for CRoCCo 1.1 / 1.2 /
2.0 / 2.1 using exact decomposition metadata priced by the Summit machine
models.  Use ``--small`` for a fast reduced-size sweep.

With ``--record DIR`` the weak-scaling series for CRoCCo 2.1 is also
exported as observability artifacts (``DIR/trace.json`` +
``DIR/metrics.jsonl``, charged time) — summarize them with
``python -m repro.report DIR`` or open the trace in Perfetto.

Usage:  python examples/summit_scaling.py [--small] [--record DIR]
"""

import sys

from repro.perfmodel.scaling import (
    TABLE1,
    speedup_series,
    strong_scaling,
    weak_scaling,
    weak_scaling_efficiency,
)


def main() -> None:
    small = "--small" in sys.argv
    if small:
        nodes = (4, 16, 64)
        points = 2.0e7
        table = tuple((n, 6 * n, 5.0e6 * n) for n in nodes)
    else:
        nodes = (16, 32, 64, 128, 256, 512, 1024)
        points = 1.27e9
        table = TABLE1

    print(f"== strong scaling: {points:.3g} grid points ==")
    ss = strong_scaling(versions=("1.1", "1.2", "2.0"), nodes=nodes,
                        points=points)
    header = f"{'nodes':>6} " + " ".join(f"{v:>10}" for v in ss)
    print(header)
    for k, n in enumerate(nodes):
        row = f"{n:6d} " + " ".join(
            f"{ss[v][k].time_per_iteration:10.3f}" for v in ss
        )
        print(row + "   s/iter")
    print("\nAMR speedup (1.1 over 1.2):",
          [f"{s:.1f}x" for s in speedup_series(ss["1.1"], ss["1.2"])])
    print("GPU speedup (1.2 over 2.0):",
          [f"{s:.1f}x" for s in speedup_series(ss["1.2"], ss["2.0"])])
    print("cumulative  (1.1 over 2.0):",
          [f"{s:.1f}x" for s in speedup_series(ss["1.1"], ss["2.0"])])
    print("(paper: AMR 4.6x -> 1.1x slowdown; GPU 44x -> 6x; "
          "cumulative 201x -> 5.5x)")

    print("\n== weak scaling (Table I) ==")
    ws = weak_scaling(versions=("1.1", "1.2", "2.0", "2.1"), table=table)
    print(f"{'nodes':>6} {'equiv pts':>10} " + " ".join(f"{v:>8}" for v in ws))
    for k, (n, _g, pts) in enumerate(table):
        print(f"{n:6d} {pts:10.2e} " + " ".join(
            f"{ws[v][k].time_per_iteration:8.3f}" for v in ws))
    for v in ("2.0", "2.1"):
        eff = weak_scaling_efficiency(ws[v])
        print(f"weak efficiency {v}: " + " ".join(f"{e:.0%}" for e in eff))
    print("(paper: 2.0 about 54% at 400 nodes and 40% at 1024; 2.1 about "
          "70% at 400)")

    if "--record" in sys.argv:
        from repro.perfmodel.trace_export import export_weak_scaling

        out_dir = sys.argv[sys.argv.index("--record") + 1]
        paths = export_weak_scaling(out_dir, version="2.1", table=table)
        print(f"\nrecorded weak-scaling artifacts: {paths['trace']}, "
              f"{paths['metrics']}")
        print(f"summarize with: python -m repro.report {out_dir}")


if __name__ == "__main__":
    main()
