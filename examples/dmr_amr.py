#!/usr/bin/env python
"""Double Mach reflection with three-level curvilinear AMR (Fig. 2).

Runs the paper's test case — a Mach-10 shock on the 30-degree-ramp
configuration — on a curvilinear (smoothly stretched) grid with dynamic
AMR tracking the shock system, then writes a plotfile and renders an
ASCII density contour.

Usage:  python examples/dmr_amr.py [nx] [t_end]
"""

import sys

import numpy as np

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.io.plotfile import write_plotfile


def ascii_contour(rho: np.ndarray, width: int = 96, height: int = 24) -> str:
    """Coarse ASCII rendering of a 2D density field."""
    shades = " .:-=+*#%@"
    nx, ny = rho.shape
    out = []
    lo, hi = rho.min(), rho.max()
    for j in range(height - 1, -1, -1):
        row = []
        for i in range(width):
            v = rho[int(i * nx / width), int(j * ny / height)]
            row.append(shades[int((v - lo) / (hi - lo + 1e-30) * (len(shades) - 1))])
        out.append("".join(row))
    return "\n".join(out)


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    t_end = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05

    case = DoubleMachReflection(ncells=(nx, nx // 4), curvilinear=True)
    config = CroccoConfig(
        version="2.0",          # GPU backend + AMR + curvilinear interpolator
        nranks=6, ranks_per_node=6,
        max_level=2,            # three levels in total, as in Fig. 2
        max_grid_size=32, blocking_factor=8,
        regrid_int=4,
    )
    sim = Crocco(case, config)
    sim.initialize()
    print(f"hierarchy: {sim.finest_level + 1} levels, "
          f"AMR savings {sim.amr_savings():.1%} "
          f"(paper quotes 89-94% at production scale)")

    while sim.time < t_end:
        sim.step()
        if sim.step_count % 20 == 0:
            mn, mx = sim.min_max(0)
            print(f"  step {sim.step_count:4d}  t={sim.time:.4f}  "
                  f"rho in [{mn:.2f}, {mx:.2f}]  "
                  f"fine boxes: {len(sim.box_arrays[sim.finest_level])}")

    pf = write_plotfile("plt_dmr", sim)
    print(f"\nwrote plotfile {pf}")
    print(f"simulated GPU: {len(sim.kernels.device.launches)} kernel launches, "
          f"high-water {sim.kernels.device.high_water / 1e6:.1f} MB")
    from repro.perfmodel.device_timing import summarize_device

    timing = summarize_device(sim.kernels.device)
    print("simulated V100 kernel time (rank 0, whole run):")
    for name, sec in sorted(timing.seconds.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<10} {sec * 1e3:8.2f} ms over "
              f"{timing.launches[name]:5d} launches")
    led = sim.comm.ledger
    print("communication by kind (count, bytes):")
    for kind, (cnt, vol) in sorted(led.by_kind().items()):
        print(f"  {kind:<14} {cnt:8d}  {vol / 1e6:10.2f} MB")

    rho = sim.state[0].fab(0).valid()[0]
    # assemble level-0 density across patches
    dom = sim.geoms[0].domain
    full = np.zeros(dom.shape()[:2])
    for i, fab in sim.state[0]:
        b = fab.box
        sl = tuple(slice(b.lo[d], b.hi[d] + 1) for d in range(2))
        full[sl] = fab.valid()[0]
    print("\ndensity contour (x right, y up; dark = dense):")
    print(ascii_contour(full))


if __name__ == "__main__":
    main()
