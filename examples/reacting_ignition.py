#!/usr/bin/env python
"""Chemically reacting flow: hot-spot ignition (the w_s of Eq. 1).

Runs the two-species Arrhenius ignition problem end to end: species
transport, Fickian diffusion with enthalpy flux, heat release through the
formation-enthalpy terms of Eq. 2, and the resulting pressure waves.

Usage:  python examples/reacting_ignition.py [ncells] [nsteps]
"""

import sys

import numpy as np

from repro.cases.reacting import IgnitionFront
from repro.core.crocco import Crocco, CroccoConfig


def main() -> None:
    ncells = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    nsteps = int(sys.argv[2]) if len(sys.argv) > 2 else 120

    case = IgnitionFront(ncells=ncells)
    sim = Crocco(case, CroccoConfig(version="1.1", max_grid_size=ncells))
    sim.initialize()
    q = case.reaction.heat_release(case.eos)
    print(f"two-species A -> B, heat release {q:.2e} J/kg, "
          f"activation T {case.reaction.activation_temperature:.0f} K")
    print(f"{'step':>6} {'time [s]':>10} {'burned':>8} {'T max [K]':>10} "
          f"{'p max [Pa-ish]':>14} {'u max':>8}")
    for k in range(nsteps):
        sim.step()
        if (k + 1) % max(1, nsteps // 10) == 0:
            u = sim.state[0].fab(0).valid()
            T = case.eos.temperature(case.layout, u)
            p = case.eos.pressure(case.layout, u)
            vel = case.layout.velocity(u)
            print(f"{sim.step_count:6d} {sim.time:10.2e} "
                  f"{case.burned_fraction(u):8.1%} {T.max():10.1f} "
                  f"{p.max():14.4g} {np.abs(vel).max():8.2f}")

    u = sim.state[0].fab(0).valid()
    x = sim.coords[0].fab(0).valid()[0]
    yb = u[1] / (u[0] + u[1])
    print("\nproduct mass fraction profile:")
    for i in range(0, ncells, max(1, ncells // 16)):
        bar = "#" * int(40 * yb[i])
        print(f"  x={x[i]:.3f} |{bar:<40s}| {yb[i]:.2f}")
    print(f"\nmass conservation: total mass = {sim.total_mass():.8f} "
          f"(initial 1.0)")


if __name__ == "__main__":
    main()
