#!/usr/bin/env python
"""Hierarchical roofline report for the CRoCCo GPU kernels (Fig. 4).

Prints each kernel's arithmetic intensity at L1/L2/DRAM, the bandwidth
ceilings at those intensities, the occupancy-limited compute ceiling, and
the achieved performance — the quantities plotted in the paper's roofline.

Usage:  python examples/roofline_report.py
"""

from repro.kernels.counts import BUDGETS
from repro.machine.gpu import V100Model
from repro.machine.roofline import hierarchical_roofline


def main() -> None:
    device = V100Model()
    print(f"device: NVIDIA V100 — peak {device.peak_dp_flops/1e12:.1f} DP "
          f"Tflop/s, HBM {device.hbm_bandwidth/1e9:.0f} GB/s")
    print()
    for name, budget in BUDGETS.items():
        rp = hierarchical_roofline(budget, device)
        print(f"kernel {name}:")
        print(f"  registers/thread     {budget.registers_per_thread}")
        print(f"  theoretical occupancy {rp.occupancy:.1%}"
              + ("   <- the paper's 12.5%" if abs(rp.occupancy - 0.125) < 1e-9
                 else ""))
        for lvl in ("L1", "L2", "DRAM"):
            print(f"  AI({lvl:<4}) = {rp.ai[lvl]:6.3f} flop/B   "
                  f"ceiling {rp.ceilings[lvl]/1e9:8.1f} Gflop/s")
        print(f"  achieved             {rp.achieved_flops_per_s/1e9:8.1f} "
              f"Gflop/s ({rp.fraction_of_peak:.1%} of peak)")
        print(f"  bound by             {rp.bound_level} "
              f"({'bandwidth' if rp.is_bandwidth_bound() else 'compute'}-bound)")
        print()
    print("paper (Fig. 4): WENOx achieves ~300 DP Gflop/s, ~4% of the "
          "7.8 Tflop/s peak,\nbandwidth-bound at L1, L2 and DRAM, with "
          "12.5% theoretical occupancy from register pressure.")


if __name__ == "__main__":
    main()
