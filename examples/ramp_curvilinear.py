#!/usr/bin/env python
"""Curvilinear compression-ramp grid: metrics, GCL, and freestream test.

Demonstrates the curvilinear machinery the paper added to AMReX: a
30-degree compression-corner grid (the canonical hypersonic geometry the
curvilinear solver exists for), its 27-component stored metrics, the
geometric-conservation-law residual, and freestream preservation of the
WENO flux kernels on that grid.

Usage:  python examples/ramp_curvilinear.py
"""

import numpy as np

from repro.cases.grids import compression_ramp_mapping, tanh_cluster_mapping
from repro.numerics.eos import IdealGasEOS
from repro.numerics.fluxes import ConvectiveFlux
from repro.numerics.metrics import CurvilinearMetrics
from repro.numerics.state import StateLayout


def main() -> None:
    ng = 4
    nx, ny = 96, 48
    mapping = compression_ramp_mapping((2.0, 1.0), angle_deg=30.0,
                                       corner=0.4, smoothing=0.04)

    # cell-center coordinates including ghost cells
    s = np.stack(np.meshgrid(
        (np.arange(-ng, nx + ng) + 0.5) / nx,
        (np.arange(-ng, ny + ng) + 0.5) / ny,
        indexing="ij",
    ))
    coords = mapping(s)
    print(f"30-degree ramp grid: {nx}x{ny} cells")
    print(f"  wall height at outflow: {coords[1][-1 - ng, ng]:.3f} "
          f"(tan(30) ramp from x = 0.8)")

    met = CurvilinearMetrics.from_coordinates(coords)
    print(f"  stored metric components: {met.ncomp_stored} "
          f"(2D; the paper's 3D case stores 27)")
    from repro.numerics.metrics import grid_quality

    q = grid_quality(met, interior=ng)
    print("  grid quality (from the stored first+second metrics):")
    for k, v in q.items():
        print(f"    {k:<18} {v:.3f}")
    print(f"  Jacobian range: [{met.jacobian().min():.2e}, "
          f"{met.jacobian().max():.2e}]")
    gcl = np.abs(met.gcl_residual()[:, ng:-ng, ng:-ng]).max()
    print(f"  GCL residual (metric identities): {gcl:.2e}")

    # freestream preservation: a uniform flow must stay uniform
    lay = StateLayout(nspecies=1, dim=2)
    eos = IdealGasEOS()
    shape = coords.shape[1:]
    u = eos.conservative(
        lay,
        np.ones(shape),
        np.stack([np.full(shape, 2.0), np.full(shape, 0.0)]),
        np.ones(shape),
    )
    op = ConvectiveFlux()
    resid = np.zeros((lay.ncons, nx, ny))
    for d in range(2):
        resid += op.divergence(lay, eos, u, met, d, ng)
    print(f"  freestream residual |dU/dt|: {np.abs(resid).max():.2e} "
          f"(discrete GCL error; exact scheme would give 0)")

    # contrast with a wall-clustered grid
    met2 = CurvilinearMetrics.from_coordinates(
        tanh_cluster_mapping((2.0, 1.0), beta=2.5)(s))
    jr = met2.jacobian()[ng:-ng, ng:-ng]
    print(f"\ntanh wall-clustered grid: cell-size ratio "
          f"{jr.max() / jr.min():.1f}:1 across the boundary layer")


if __name__ == "__main__":
    main()
