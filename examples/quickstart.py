#!/usr/bin/env python
"""Quickstart: run CRoCCo on the Sod shock tube and validate against the
exact Riemann solution.

Usage:  python examples/quickstart.py [ncells]
"""

import sys

import numpy as np

from repro.cases.shocktube import SodShockTube
from repro.core.crocco import Crocco, CroccoConfig


def main() -> None:
    ncells = int(sys.argv[1]) if len(sys.argv) > 1 else 128

    # 1. pick a flow case
    case = SodShockTube(ncells=ncells)

    # 2. configure the solver: CRoCCo 1.1 = C++ kernels, no AMR, CPU
    config = CroccoConfig(version="1.1", nranks=2, ranks_per_node=1,
                          max_grid_size=max(32, ncells // 2))
    sim = Crocco(case, config)

    # 3. initialize and march to t = 0.2
    sim.initialize()
    while sim.time < 0.2:
        sim.step()
    print(f"ran {sim.step_count} steps to t = {sim.time:.4f} "
          f"(WENO-{config.weno_variant.upper()}, RK3, CFL {case.cfl})")

    # 4. compare against the exact Riemann solution
    print(f"\n{'x':>8} {'rho (CRoCCo)':>14} {'rho (exact)':>12}")
    errs = []
    for i, fab in sim.state[0]:
        coords = sim.coords[0].fab(i).valid()
        exact = case.exact_solution(coords, sim.time)
        rho = fab.valid()[0]
        errs.append(np.abs(rho - exact[0]))
        for k in range(0, rho.shape[0], max(1, rho.shape[0] // 8)):
            print(f"{coords[0][k]:8.3f} {rho[k]:14.4f} {exact[0][k]:12.4f}")
    err = np.concatenate(errs)
    print(f"\nmean |rho error| = {err.mean():.4f}   max = {err.max():.4f}")
    print(f"total mass = {sim.total_mass():.6f} (initial 0.562500)")
    print("\nTinyProfiler top-level regions:")
    for name, t in sorted(sim.profiler.top_level().items(), key=lambda kv: -kv[1]):
        print(f"  {name:<12} {t:8.3f} s")


if __name__ == "__main__":
    main()
