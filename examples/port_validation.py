#!/usr/bin/env python
"""The paper's porting-correctness procedure (Sec. IV-A / IV-C).

Runs the same problem through all three kernel backends — ``fortran``
(CRoCCo 1.0), ``cpp`` (1.1) and ``gpu`` (2.0) — and reports the L2-norm
of the difference in each flow variable, the validation the paper used to
accept the Fortran -> C++ translation (drift plateauing near 1e-7) and the
GPU port (no change at all).

Usage:  python examples/port_validation.py [ncells] [t_end]
"""

import sys

from repro.cases.dmr import DoubleMachReflection
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.validation import compare_states


def run(version: str, ncells, t_end: float) -> Crocco:
    case = DoubleMachReflection(ncells=ncells)
    cfg = CroccoConfig(version=version, nranks=2, ranks_per_node=1,
                       max_grid_size=64)
    sim = Crocco(case, cfg)
    sim.initialize()
    while sim.time < t_end:
        sim.step()
    return sim


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    t_end = float(sys.argv[2]) if len(sys.argv) > 2 else 0.02
    ncells = (nx, nx // 4)

    print(f"running DMR {ncells} to t = {t_end} on all three backends...")
    sims = {v: run(v, ncells, t_end) for v in ("1.0", "1.1", "2.0")}
    steps = {v: s.step_count for v, s in sims.items()}
    print(f"steps taken: {steps}")

    print("\nFortran (1.0) vs C++ (1.1)  — the translation drift:")
    for var, d in compare_states(sims["1.0"], sims["1.1"]).items():
        print(f"  L2 diff {var:<3} = {d:.3e}")
    print("  (paper: plateaus at ~1e-7, within machine-precision "
          "accumulation)")

    print("\nC++ (1.1) vs GPU (2.0) — the GPU port:")
    diffs = compare_states(sims["1.1"], sims["2.0"])
    for var, d in diffs.items():
        print(f"  L2 diff {var:<3} = {d:.3e}")
    if max(diffs.values()) == 0.0:
        print("  bitwise identical — no accuracy change on the GPU, "
              "as the paper reports")


if __name__ == "__main__":
    main()
