"""Pluggable task executors: ``serial`` and a real multiprocessing ``pool``.

``serial``
    Runs every task inline in the driver process, in the deterministic
    order the scheduler dictates — bit-identical to the legacy eager
    driver (task internals are the same arithmetic, and only mutually
    independent tasks are ever reordered).

``pool``
    A persistent ``multiprocessing`` pool (fork start method) that runs
    *offloadable* tasks — those carrying a picklable ``payload`` and
    operating on SharedMemory-backed FABs — on separate cores, the
    on-node stand-in for MPI ranks.  Communication, boundary-condition
    and interpolation tasks still run inline in the driver, which is
    exactly the comm/compute overlap structure the paper exploits: the
    driver packs/unpacks halos while workers churn through box kernels.

Workers inherit the driver's kernel set and case via fork (set with
:func:`set_worker_context` just before the pool starts), so nothing
heavyweight is pickled per task: a task payload is a small dict of
shared-memory metadata plus the per-box metrics.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import time
from typing import Callable, Dict, Optional, Tuple

from repro.runtime.shm import attach_array

EXECUTORS = ("serial", "pool")

#: (kernels, case) globals inherited by forked workers
_WORKER_CTX: Optional[tuple] = None

#: the driver's pid (forked workers inherit it and compare unequal), so
#: an injected "kill" can never take down the driver process itself
_DRIVER_PID = os.getpid()


def set_worker_context(kernels, case) -> None:
    """Install the state forked pool workers will inherit."""
    global _WORKER_CTX
    _WORKER_CTX = (kernels, case)


def _run_payload(spec: dict) -> Tuple[int, float, dict, Dict[str, float]]:
    """Execute one offloaded task spec; returns (worker pid, seconds,
    launch-counter delta, lifecycle times).

    Runs in a worker process (or inline as a fallback).  Data arrays are
    attached from shared memory and mutated in place; only the timing and
    the per-kernel-class launch counters travel back — launch *records*
    stay local to the worker's forked device copies, but their counts,
    flops and bytes are merged into the driver's accounting so pool runs
    report the device activity their workers actually generated.

    The lifecycle dict carries absolute ``perf_counter`` start/finish
    timestamps (workers are forked, so the monotonic clock is shared
    with the driver) and echoes the span id planted in the payload, so
    the driver-side perfscope can reconcile the span across the process
    boundary.
    """
    t0 = time.perf_counter()
    sid = spec.pop("_sid", None)
    backend = (getattr(_WORKER_CTX[0], "exec_backend", None)
               if _WORKER_CTX is not None else None)
    before = backend.counters_snapshot() if backend is not None else {}
    fault = spec.get("_fault")
    if fault is not None:
        # planted by the fault-injection harness (repro.resilience.faults);
        # the supervisor strips the marker before any re-submission, so a
        # planned fault fires at most once per run — a transient failure
        if fault[0] == "kill":
            if os.getpid() != _DRIVER_PID:
                os._exit(3)
            # running inline in the driver (degraded mode): losing the
            # driver is not the modeled failure — degrade to a task error
            from repro.resilience.faults import InjectedTaskError

            raise InjectedTaskError(
                "injected worker kill while running inline in the driver")
        if fault[0] == "slow":
            # stall *before* touching data: if the supervisor times out and
            # respawns the pool, the terminated sleeper has written nothing
            time.sleep(float(fault[1]))
        if fault[0] == "error":
            from repro.resilience.faults import InjectedTaskError

            raise InjectedTaskError(
                f"injected task error in worker {os.getpid()}")
    op = spec["op"]
    if op == "rhs_update":
        _rhs_update(spec)
    elif op == "serve_run":
        # a whole simulation run dispatched by the serve layer's shared
        # fleet; the import is deferred so plain solver pools never load
        # the serving stack
        from repro.serve.worker import execute_serve_run

        execute_serve_run(spec)
    else:  # pragma: no cover - future ops
        raise ValueError(f"unknown payload op {op!r}")
    delta = {}
    if backend is not None:
        from repro.backend import counters_delta

        delta = counters_delta(backend.counters_snapshot(), before)
    t1 = time.perf_counter()
    times: Dict[str, float] = {"t_started": t0, "t_finished": t1}
    if sid is not None:
        times["sid"] = sid
    return os.getpid(), t1 - t0, delta, times


def _run_payload_remote(blob: bytes):
    """Worker-process entry: unpickle the task spec, run it, time both.

    The driver pickles the payload itself (metering bytes and seconds —
    the serialize bucket) and ships the blob, so ``multiprocessing``
    only copies bytes instead of re-pickling the dict; the worker-side
    unpickle is metered here as ``deserialize_s``.
    """
    t_att = time.perf_counter()
    spec = pickle.loads(blob)
    des = time.perf_counter() - t_att
    pid, dur, delta, times = _run_payload(spec)
    # the worker's busy span starts at blob arrival, not after unpickle
    times["t_started"] = t_att
    times["deserialize_s"] = des
    return pid, (times["t_finished"] - t_att), delta, times


def _rhs_update(spec: dict) -> None:
    """One box's RK stage: RHS evaluation + source + low-storage update."""
    if _WORKER_CTX is None:  # pragma: no cover - guarded by PoolExecutor
        raise RuntimeError("worker context not set (set_worker_context)")
    kernels, case = _WORKER_CTX
    u = attach_array(spec["state"])
    du = attach_array(spec["du"])
    coords = attach_array(spec["coords"])
    metrics = spec["metrics"]
    ng = spec["ng"]
    valid = (slice(None),) + tuple(slice(ng, s - ng) for s in u.shape[1:])
    rhs = kernels.rhs(u, metrics, ng, device=None)
    src = case.source(u[valid], coords[valid], spec["time"],
                      metrics=metrics.interior(ng))
    if src is not None:
        rhs = rhs + src
    kernels.update(u[valid], du, rhs, spec["dt"], spec["stage"], device=None)


class BaseExecutor:
    """Interface shared by all executors; usable as a context manager.

    ``with make_executor(...) as ex`` guarantees pool teardown even when
    the body raises mid-step — no leaked worker processes.
    """

    name = "base"
    nworkers = 1

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def cancel_pending(self) -> None:
        """Abandon in-flight work (e.g. when a step is rolled back)."""

    def drain_worker_counters(self) -> dict:
        """Return-and-clear launch counters accumulated from workers.

        Inline executors do no remote work, so there is nothing to merge:
        every launch already hit the driver's execution backend directly.
        """
        return {}

    def shutdown(self) -> None:
        pass


class SerialExecutor(BaseExecutor):
    """Deterministic inline execution (the default)."""

    name = "serial"
    nworkers = 1

    def can_offload(self, task) -> bool:
        return False

    def submit(self, task, on_done: Callable) -> None:  # pragma: no cover
        raise RuntimeError("serial executor cannot offload tasks")

    def in_flight(self) -> int:
        return 0

    def poll(self) -> bool:
        return False

    def wait_one(self, timeout: float = None):  # pragma: no cover
        raise RuntimeError("serial executor has no pending tasks")


class PoolExecutor(BaseExecutor):
    """Real multiprocessing over shared-memory FABs.

    The pool is created lazily on first offload so the fork snapshots a
    fully constructed driver (kernel set, case, devices).  Requires the
    ``fork`` start method (POSIX); elsewhere construction raises and the
    caller should fall back to ``serial``.
    """

    name = "pool"

    def __init__(self, nworkers: Optional[int] = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the pool executor needs the 'fork' start method; "
                "use runtime.executor=serial on this platform"
            )
        self.nworkers = max(2, int(nworkers) if nworkers else
                            (os.cpu_count() or 2))
        self._pool = None
        self._done: "queue.Queue" = queue.Queue()
        self._pending = 0
        self._worker_ids = {}  # pid -> stable small index
        #: launch counters reported by completed worker tasks, by kernel
        #: class, awaiting a drain at end of step
        self._counter_acc: dict = {}
        #: driver-side lifecycle metering per in-flight task (tid ->
        #: serialize seconds/bytes + dispatch timestamp)
        self._lifecycle: Dict[int, dict] = {}

    def _ensure_pool(self):
        if self._pool is None:
            if _WORKER_CTX is None:
                raise RuntimeError(
                    "set_worker_context() must run before the pool starts"
                )
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(processes=self.nworkers)
        return self._pool

    def can_offload(self, task) -> bool:
        return task.payload is not None

    def submit(self, task, on_done: Callable) -> None:
        """Dispatch one offloadable task; ``on_done(task, worker, dur)``
        fires from the scheduler loop (not the callback thread).

        The payload is pickled here in the driver (metered: seconds and
        bytes feed the perfscope ``serialize`` bucket) and shipped as a
        blob so ``multiprocessing`` only copies bytes rather than
        re-pickling the dict.
        """
        pool = self._ensure_pool()
        self._pending += 1

        def _cb(result, _task=task, _done=on_done):
            self._done.put((_task, _done, result, None))

        def _err(exc, _task=task, _done=on_done):
            self._done.put((_task, _done, None, exc))

        t0 = time.perf_counter()
        blob = pickle.dumps(task.payload, protocol=pickle.HIGHEST_PROTOCOL)
        t1 = time.perf_counter()
        self._lifecycle[task.tid] = {
            "serialize_s": t1 - t0,
            "pickle_bytes": len(blob),
            "t_dispatched": t1,
        }
        pool.apply_async(_run_payload_remote, (blob,),
                         callback=_cb, error_callback=_err)

    def in_flight(self) -> int:
        return self._pending

    def poll(self) -> bool:
        """True if a completion is waiting to be collected."""
        return not self._done.empty()

    def wait_one(self, timeout: Optional[float] = None) -> None:
        """Block for one completion and run its continuation."""
        task, on_done, result, exc = self._done.get(timeout=timeout)
        self._pending -= 1
        lc = self._lifecycle.pop(task.tid, {})
        if exc is not None:
            raise RuntimeError(f"pool task {task.name!r} failed: {exc}") from exc
        pid, dur, delta, times = result
        self._merge_delta(delta)
        lc.update(times)
        worker = self._worker_ids.setdefault(pid, len(self._worker_ids) + 1)
        on_done(task, worker, dur, lifecycle=lc)

    def _merge_delta(self, delta: dict) -> None:
        for cls, d in delta.items():
            acc = self._counter_acc.setdefault(
                cls, {k: 0 for k in d})
            for field, value in d.items():
                acc[field] = acc.get(field, 0) + value

    def drain_worker_counters(self) -> dict:
        acc, self._counter_acc = self._counter_acc, {}
        return acc

    def cancel_pending(self) -> None:
        """Terminate workers and drop in-flight tasks and stale results.

        Killing the pool (instead of joining forever) guarantees no
        half-finished task can write to shared memory after the caller
        has decided to abandon the step; a fresh pool is forked lazily on
        the next submit.
        """
        self._terminate_pool()
        while not self._done.empty():
            try:
                self._done.get_nowait()
            except queue.Empty:  # pragma: no cover - racing consumers
                break
        self._pending = 0
        self._lifecycle.clear()

    def _terminate_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def shutdown(self) -> None:
        self._terminate_pool()


def make_executor(name: str, workers: Optional[int] = None,
                  supervision: Optional[dict] = None):
    """Build an executor by config name (``runtime.executor``).

    ``supervision`` (a kwargs dict for
    :class:`~repro.resilience.supervisor.SupervisedPoolExecutor`) wraps
    the pool in dead-worker detection, task re-submission and graceful
    degradation; None builds the bare pool.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        if supervision is not None:
            from repro.resilience.supervisor import SupervisedPoolExecutor

            return SupervisedPoolExecutor(workers, **supervision)
        return PoolExecutor(workers)
    raise ValueError(f"unknown executor {name!r}; options {EXECUTORS}")
