"""Ready-queue scheduler with comm-posting priority and overlap metering.

Tasks become ready when their dependencies complete; among ready tasks
the scheduler prefers, in order: ``comm-post`` (get halo exchanges in
flight as early as possible), then boundary/interp/compute work, and
``comm-wait`` last (finish a posted exchange only when nothing useful
can run in the gap).  Ties break on submission order, so the ``serial``
executor is fully deterministic and — because only mutually independent
tasks are ever reordered — bit-identical to the eager driver.

While running, the scheduler measures the quantity the paper's Fig. 7
models: for every ``comm-post``/``comm-wait`` channel pair it records
the *in-flight window* (post completion to finish start) and sums the
compute time executed inside such windows — the **measured overlap** a
real schedule achieves, directly comparable to the modeled
``fillpatch_split`` nowait/finish decomposition.

Every executed task is exported as a tracer span whose ``tid`` is the
worker that ran it (0 = the driver, 1..N = pool workers).  When a
:class:`~repro.observability.perfscope.PerfScope` is attached, the
scheduler additionally records each task's full lifecycle (enqueued,
pickled, dispatched, started-on-worker, finished, collected, merged)
into a per-stage trace, and the worker tracks gain lifecycle
sub-slices (``serialize`` on the driver track, ``wait``/``collect``
around offloaded task spans).
"""

from __future__ import annotations

import heapq
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.runtime.graph import Task, TaskGraph

#: scheduling priority by task kind (lower runs first among ready tasks)
KIND_PRIORITY = {
    "comm-post": 0,
    "bc": 1,
    "interp": 1,
    "compute": 2,
    "comm": 2,
    "comm-wait": 3,
}

#: tracer stream ids: worker w runs on stream RUNTIME_STREAM_BASE + w
RUNTIME_STREAM_BASE = 8


@dataclass
class ScheduleReport:
    """Measured statistics of one (or several merged) graph executions."""

    tasks_by_kind: Dict[str, int] = field(default_factory=dict)
    posted_comm_s: float = 0.0    # time inside comm-post tasks (packing)
    finish_comm_s: float = 0.0    # time inside comm-wait tasks (unpacking)
    compute_s: float = 0.0        # time inside compute tasks
    overlap_s: float = 0.0        # compute time under an open comm window
    makespan_s: float = 0.0
    busy_s: float = 0.0           # summed task time across workers
    nworkers: int = 1
    graphs: int = 0

    @property
    def comm_s(self) -> float:
        return self.posted_comm_s + self.finish_comm_s

    @property
    def overlap_frac(self) -> float:
        """Fraction of compute time that ran while comm was in flight."""
        return self.overlap_s / self.compute_s if self.compute_s > 0 else 0.0

    @property
    def idle_frac(self) -> float:
        """Fraction of worker-seconds spent idle over the makespan."""
        cap = self.makespan_s * self.nworkers
        return max(0.0, 1.0 - self.busy_s / cap) if cap > 0 else 0.0

    def merge(self, other: "ScheduleReport") -> "ScheduleReport":
        for k, n in other.tasks_by_kind.items():
            self.tasks_by_kind[k] = self.tasks_by_kind.get(k, 0) + n
        self.posted_comm_s += other.posted_comm_s
        self.finish_comm_s += other.finish_comm_s
        self.compute_s += other.compute_s
        self.overlap_s += other.overlap_s
        self.makespan_s += other.makespan_s
        self.busy_s += other.busy_s
        self.nworkers = max(self.nworkers, other.nworkers)
        self.graphs += other.graphs
        return self

    def as_dict(self) -> Dict[str, float]:
        out = {
            "posted_comm_s": self.posted_comm_s,
            "finish_comm_s": self.finish_comm_s,
            "compute_s": self.compute_s,
            "overlap_s": self.overlap_s,
            "overlap_frac": self.overlap_frac,
            "idle_frac": self.idle_frac,
            "makespan_s": self.makespan_s,
            "workers": float(self.nworkers),
        }
        for kind, n in self.tasks_by_kind.items():
            out[f"tasks.{kind.replace('-', '_')}"] = float(n)
        return out


class Scheduler:
    """Executes one TaskGraph on an executor, collecting a report."""

    def __init__(self, executor, profiler=None, tracer=None,
                 trace_rank: int = 0, perfscope=None) -> None:
        self.executor = executor
        self.profiler = profiler
        self.tracer = tracer
        self.trace_rank = trace_rank
        #: optional repro.observability.perfscope.PerfScope collector
        self.perfscope = perfscope

    def run(self, graph: TaskGraph) -> ScheduleReport:
        t_start = time.perf_counter()
        report = ScheduleReport(nworkers=getattr(self.executor, "nworkers", 1),
                                graphs=1)
        report.tasks_by_kind = graph.counts_by_kind()

        scope = self.perfscope
        is_pool = getattr(self.executor, "name", "serial") == "pool"
        nlanes = 1 + (report.nworkers if is_pool else 0)
        trace = scope.begin_stage(graph, nlanes) if (
            scope is not None and scope.enabled) else None
        if trace is not None:
            # share the scheduler's epoch so driver-relative now() readings
            # and worker-absolute perf_counter readings reconcile exactly
            trace.t0_abs = t_start
        # anchor this stage's spans on the tracer's own timeline so the
        # worker tracks render as one continuous run, not per-stage piles
        base_us = self.tracer.now_us() if self.tracer is not None else 0.0

        remaining = {t.tid for t in graph.tasks}
        unmet = {t.tid: len(t.deps) for t in graph.tasks}
        ready: List[Tuple[int, int]] = []  # (priority, tid)

        def now() -> float:
            return time.perf_counter() - t_start

        def push(tid: int) -> None:
            heapq.heappush(ready, (KIND_PRIORITY[graph.tasks[tid].kind], tid))
            if trace is not None:
                trace.enqueued(tid, now())

        for t in graph.tasks:
            if unmet[t.tid] == 0:
                push(t.tid)

        # comm windows: channel -> post-completion time; closed windows
        # accumulate (open, close) intervals for the overlap integral
        open_windows: Dict[Hashable, float] = {}
        windows: List[Tuple[float, float]] = []
        compute_spans: List[Tuple[float, float]] = []

        def complete(task: Task, worker: int, dur: float,
                     t0: Optional[float] = None) -> None:
            report.busy_s += dur
            if task.kind == "comm-post":
                report.posted_comm_s += dur
                if task.channel is not None:
                    open_windows[task.channel] = now()
            elif task.kind == "comm-wait":
                report.finish_comm_s += dur
            elif task.kind == "compute":
                report.compute_s += dur
                if t0 is not None:
                    compute_spans.append((t0, t0 + dur))
            if self.tracer is not None:
                ts = t0 if t0 is not None else now() - dur
                self.tracer.complete(
                    task.name, base_us + ts * 1e6, dur * 1e6,
                    rank=self.trace_rank,
                    stream=RUNTIME_STREAM_BASE + worker, cat="task",
                    args={"kind": task.kind},
                )
            remaining.discard(task.tid)
            for d in task.dependents:
                unmet[d] -= 1
                if unmet[d] == 0:
                    push(d)
            if trace is not None:
                trace.merged(task.tid, now())

        def run_inline(task: Task) -> None:
            # the first consumer of a posted channel starting (comm-wait,
            # or e.g. an interp task using posted coords) closes its
            # in-flight window
            if (task.channel is not None and task.kind != "comm-post"
                    and task.channel in open_windows):
                windows.append((open_windows.pop(task.channel), now()))
            t0 = now()
            with ExitStack() as stack:
                if self.profiler is not None:
                    for name in task.regions:
                        stack.enter_context(self.profiler.region(name))
                task.fn()
            dur = now() - t0
            if trace is not None:
                trace.ran_inline(task.tid, t0, dur)
            complete(task, worker=0, dur=dur, t0=t0)

        def on_offload_done(task: Task, worker: int, dur: float,
                            lifecycle: Optional[dict] = None) -> None:
            if self.profiler is not None:
                self.profiler.charge("PoolWorkers", dur)
            t_collected = now()
            t0 = t_collected - dur
            if trace is not None and lifecycle is not None:
                trace.offloaded_done(task.tid, worker, dur, lifecycle,
                                     t_collected)
                span = trace.spans[task.tid]
                t0 = span.t_started if span.t_started is not None else t0
            # worker wall time counts as compute concurrent with whatever
            # windows were open when it finished
            complete(task, worker=worker, dur=dur, t0=t0)
            if trace is not None and lifecycle is not None:
                # merged timestamp is stamped by complete(); now the full
                # lifecycle can render as Chrome-trace sub-slices
                self._trace_lifecycle(trace.spans[task.tid], worker, base_us)

        try:
            self._drive(graph, remaining, ready, unmet, run_inline,
                        on_offload_done, trace)
        except Exception:
            # a failed task must not leave zombie work behind: abandon
            # anything in flight (terminating pool workers so no stale
            # write can land later) before the error propagates to the
            # step-retry machinery
            cancel = getattr(self.executor, "cancel_pending", None)
            if cancel is not None:
                cancel()
            raise

        # any window never closed by a comm-wait closes at makespan end
        for t_open in open_windows.values():
            windows.append((t_open, now()))
        report.makespan_s = now()
        report.overlap_s = _interval_overlap(compute_spans, windows)
        if trace is not None:
            trace.close(report.makespan_s)
        return report

    def _trace_lifecycle(self, span, worker: int, base_us: float) -> None:
        """Emit an offloaded task's lifecycle sub-slices to the tracer.

        ``serialize`` lands on the driver track (that's whose time it
        was), ``wait`` precedes the task span on the worker track, and
        ``collect`` marks the driver folding the result back in.
        """
        if self.tracer is None:
            return
        args = {"task": span.name, "cat_detail": "lifecycle"}
        if span.serialize_s and span.t_dispatched is not None:
            self.tracer.complete(
                "serialize", base_us + (span.t_dispatched
                                        - span.serialize_s) * 1e6,
                span.serialize_s * 1e6, rank=self.trace_rank,
                stream=RUNTIME_STREAM_BASE, cat="lifecycle",
                args=dict(args, bytes=span.pickle_bytes))
        if span.queue_wait_s and span.t_dispatched is not None:
            self.tracer.complete(
                "wait", base_us + span.t_dispatched * 1e6,
                span.queue_wait_s * 1e6, rank=self.trace_rank,
                stream=RUNTIME_STREAM_BASE + worker, cat="lifecycle",
                args=args)
        if span.t_collected is not None and span.t_merged is not None:
            self.tracer.complete(
                "collect", base_us + span.t_collected * 1e6,
                (span.t_merged - span.t_collected) * 1e6,
                rank=self.trace_rank, stream=RUNTIME_STREAM_BASE,
                cat="lifecycle", args=args)

    def _drive(self, graph, remaining, ready, unmet, run_inline,
               on_offload_done, trace=None) -> None:
        """The scheduling loop: saturate the pool, run inline, drain."""
        while remaining:
            # keep the pool saturated with ready offloadable work before
            # the driver commits to an inline task
            launched = True
            while launched and ready:
                launched = False
                if self.executor.in_flight() < getattr(
                        self.executor, "nworkers", 0):
                    for idx, (_p, tid) in enumerate(ready):
                        task = graph.tasks[tid]
                        if self.executor.can_offload(task):
                            ready[idx] = ready[-1]
                            ready.pop()
                            heapq.heapify(ready)
                            if trace is not None:
                                # the span id rides with the payload and
                                # is echoed back by the worker
                                task.payload["_sid"] = trace.sid(tid)
                            self.executor.submit(task, on_offload_done)
                            launched = True
                            break
            # drain completions opportunistically so dependents unblock
            while self.executor.in_flight() and self.executor.poll():
                self.executor.wait_one()
            if ready:
                _prio, tid = heapq.heappop(ready)
                run_inline(graph.tasks[tid])
            elif self.executor.in_flight():
                self.executor.wait_one()
            elif remaining:  # pragma: no cover - defensive: cycle caught at build
                # (the drain above may have emptied `remaining`; the loop
                # condition handles that — reaching here means a real stall)
                stuck = [(graph.tasks[tid].name, unmet[tid],
                          sorted(graph.tasks[tid].deps))
                         for tid in sorted(remaining)]
                raise RuntimeError(
                    f"scheduler stalled with no ready tasks: {stuck}")
        while self.executor.in_flight():  # pragma: no cover - drained above
            self.executor.wait_one()


def _interval_overlap(spans: List[Tuple[float, float]],
                      windows: List[Tuple[float, float]]) -> float:
    """Total length of ``spans`` covered by the union of ``windows``."""
    if not spans or not windows:
        return 0.0
    merged: List[List[float]] = []
    for lo, hi in sorted(windows):
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    total = 0.0
    for s0, s1 in spans:
        for w0, w1 in merged:
            lo, hi = max(s0, w0), min(s1, w1)
            if lo < hi:
                total += hi - lo
    return total
