"""SharedMemory-backed FAB storage for the pool executor.

Worker processes cannot see the driver's heap, so the ``pool`` executor
re-homes the patch arrays of the MultiFabs it operates on into
``multiprocessing.shared_memory`` segments: the driver-side
:class:`FArrayBox` keeps working unchanged (its ``data`` becomes a view
into the segment), and workers attach the same segment by name and
compute in place — no result arrays travel back through pickling.

The arena owns segment lifetime: levels are adopted when their storage
is built and released when the level is cleared or remade.  On release
the fab data is copied back to ordinary heap arrays first, so any
surviving references (e.g. the old state kept alive across a
``RemakeLevel``) stay valid after the segment is unmapped.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - stdlib module on all CPython >= 3.8
    shared_memory = None

#: (segment name, array shape) — everything a worker needs to attach
ShmMeta = Tuple[str, Tuple[int, ...]]


class SharedArena:
    """Shared-memory segments backing adopted MultiFab patch arrays."""

    def __init__(self) -> None:
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        # tag -> box id -> (fab, segment)
        self._blocks: Dict[Hashable, Dict[int, Tuple[object, object]]] = {}
        self._graveyard: List[object] = []

    def adopt_multifab(self, tag: Hashable, mf) -> None:
        """Move every fab of ``mf`` into its own shared segment, in place."""
        if tag in self._blocks:
            raise ValueError(f"arena tag {tag!r} already adopted")
        boxes: Dict[int, Tuple[object, object]] = {}
        for i, fab in mf:
            seg = shared_memory.SharedMemory(create=True,
                                             size=fab.data.nbytes)
            arr = np.ndarray(fab.data.shape, dtype=fab.data.dtype,
                             buffer=seg.buf)
            arr[...] = fab.data
            fab.data = arr
            boxes[i] = (fab, seg)
        self._blocks[tag] = boxes

    def meta(self, tag: Hashable, box: int) -> ShmMeta:
        """The (segment name, shape) a worker needs to attach one fab."""
        fab, seg = self._blocks[tag][box]
        return (seg.name, tuple(fab.data.shape))

    def has(self, tag: Hashable) -> bool:
        return tag in self._blocks

    def release(self, tag: Hashable) -> None:
        """Detach a tag's fabs (copying data back to the heap) and free
        the segments."""
        boxes = self._blocks.pop(tag, None)
        if boxes is None:
            return
        for fab, seg in boxes.values():
            fab.data = np.array(fab.data, copy=True)
            self._close(seg)

    def release_all(self) -> None:
        for tag in list(self._blocks):
            self.release(tag)
        for seg in list(self._graveyard):
            try:
                seg.close()
                self._graveyard.remove(seg)
            except BufferError:  # pragma: no cover - still referenced
                pass

    def _close(self, seg) -> None:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        try:
            seg.close()
        except BufferError:
            # a lingering view (e.g. metrics built from coords) still
            # exports the buffer; retry at release_all / interpreter exit
            self._graveyard.append(seg)

    def __del__(self) -> None:  # pragma: no cover - defensive cleanup
        try:
            self.release_all()
        except Exception:
            pass


# -- worker-side attachment --------------------------------------------------

#: per-process cache of attached segments: name -> (segment, array)
_ATTACHED: Dict[str, Tuple[object, np.ndarray]] = {}
_ATTACH_CAP = 512


def attach_array(meta: ShmMeta) -> np.ndarray:
    """Attach (with caching) a shared segment as a float64 ndarray.

    Used inside worker processes.  Workers are forked after the driver's
    resource tracker exists, so attaching here re-registers the segment
    with the *same* tracker process (a set, so a no-op) and the driver's
    ``unlink`` remains the single cleanup point.
    """
    name, shape = meta
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    seg = shared_memory.SharedMemory(name=name)
    arr = np.ndarray(tuple(shape), dtype=np.float64, buffer=seg.buf)
    if len(_ATTACHED) >= _ATTACH_CAP:
        # drop the oldest mapping (its segment was likely unlinked by a
        # regrid); views handed out earlier keep their own references
        oldest = next(iter(_ATTACHED))
        old_seg, _ = _ATTACHED.pop(oldest)
        try:
            old_seg.close()
        except BufferError:
            pass
    _ATTACHED[name] = (seg, arr)
    return arr
