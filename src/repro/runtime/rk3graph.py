"""Build the task graph for one RK3 stage of the CRoCCo advance.

The graph encodes exactly the work Algorithm 2 does per stage — FillPatch
(split into posted and finishing halves), BC_Fill, the per-box
WENO/Viscous/Update kernel, and (last stage) AverageDown — with data
dependencies inferred from declared read/write sets.  Tasks are submitted
in the legacy eager order, so a scheduler that never reorders reproduces
the old driver bit for bit; the ready-queue scheduler then hoists the
``comm-post`` halves of *every* level to the front of the stage, opening
the windows in which coarse-level interior kernels overlap the fine
levels' in-flight FillBoundary and coordinate ParallelCopy.

MultiFab ids for :class:`~repro.runtime.graph.DataKey` are the tuples
``("state", lev)``, ``("du", lev)`` and ``("coords", lev)``.
"""

from __future__ import annotations

from typing import Optional

from repro.amr.fillpatch import FillPatchOp
from repro.runtime.graph import DataKey, TaskGraph


def _keys(mfid, mf):
    """One whole-fab DataKey per box of ``mf``."""
    return tuple(DataKey(mfid, i) for i, _ in mf)


def build_stage_graph(sim, dt: float, stage: int,
                      arena: Optional[object] = None) -> TaskGraph:
    """The task graph of one RK stage of ``sim`` (a :class:`Crocco`).

    When ``arena`` is a :class:`~repro.runtime.shm.SharedArena` holding the
    level storage, per-box kernel tasks carry picklable payloads so a pool
    executor can run them in worker processes; otherwise they are
    driver-only closures.
    """
    g = TaskGraph()
    nstages = _nstages()
    for lev in range(sim.finest_level + 1):
        state = sim.state[lev]
        needs = lev > 0 and sim.interp.needs_coords
        op = FillPatchOp(
            state, sim.geoms[lev],
            crse=sim.state[lev - 1] if lev > 0 else None,
            geom_crse=sim.geoms[lev - 1] if lev > 0 else None,
            ratio=sim.ref_ratio_iv() if lev > 0 else None,
            interp=sim.interp if lev > 0 else None,
            crse_coords=sim.coords[lev - 1] if needs else None,
            fine_coords=sim.coords[lev] if needs else None,
        )
        skeys = _keys(("state", lev), state)
        ckeys = _keys(("coords", lev), sim.coords[lev])

        fb_post = g.add(
            f"FB_nowait(L{lev})", op.post_fillboundary, kind="comm-post",
            reads=skeys, channel=("fb", lev),
            regions=("FillPatch", "FillBoundary_nowait"),
        )
        pc_post = None
        if needs:
            pc_post = g.add(
                f"PC_coords_nowait(L{lev})", op.post_coords,
                kind="comm-post",
                reads=_keys(("coords", lev - 1), sim.coords[lev - 1]),
                channel=("pc", lev),
                regions=("FillPatch", "ParallelCopy"),
            )
        g.add(
            f"FB_finish(L{lev})", op.finish_fillboundary, kind="comm-wait",
            writes=skeys, channel=("fb", lev), after=(fb_post,),
            regions=("FillPatch", "FillBoundary_finish"),
        )
        if lev > 0:
            crse_keys = _keys(("state", lev - 1), sim.state[lev - 1])
            for i, _ in state:
                g.add(
                    f"Interp(L{lev},b{i})",
                    (lambda op=op, i=i: op.interp_fab(i)),
                    kind="interp",
                    reads=crse_keys,
                    writes=(DataKey(("state", lev), i),),
                    channel=("pc", lev) if needs else None,
                    after=(pc_post,) if pc_post is not None else (),
                    regions=("FillPatch", "ParallelCopy"),
                )
        # sim._bc_fill opens its own BC_Fill profiler region
        g.add(
            f"BC_Fill(L{lev})", (lambda lev=lev: sim._bc_fill(lev)),
            kind="bc", reads=ckeys, writes=skeys,
        )
        for i, fab in state:
            payload = None
            if arena is not None and arena.has(("state", lev)):
                payload = {
                    "op": "rhs_update",
                    "state": arena.meta(("state", lev), i),
                    "du": arena.meta(("du", lev), i),
                    "coords": arena.meta(("coords", lev), i),
                    "metrics": sim.metrics[lev][i],
                    "ng": sim.ng,
                    "time": sim.time,
                    "dt": dt,
                    "stage": stage,
                }
            g.add(
                f"Box(L{lev},b{i})",
                _box_fn(sim, lev, i, fab, dt, stage),
                kind="compute",
                reads=(DataKey(("state", lev), i),
                       DataKey(("coords", lev), i),
                       DataKey(("du", lev), i)),
                writes=(DataKey(("state", lev), i),
                        DataKey(("du", lev), i)),
                payload=payload,
            )
    if stage == nstages - 1:
        for lev in range(sim.finest_level - 1, -1, -1):
            g.add(
                f"AverageDown(L{lev + 1}->L{lev})",
                _avg_fn(sim, lev),
                kind="comm",
                reads=_keys(("state", lev + 1), sim.state[lev + 1]),
                writes=_keys(("state", lev), sim.state[lev]),
                regions=("AverageDown",),
            )
    return g


def _box_fn(sim, lev: int, i: int, fab, dt: float, stage: int):
    """The inline per-box RK-stage closure (identical to the eager body)."""

    def run() -> None:
        dev = sim._device_of(sim.state[lev].dm[i])
        rhs = sim.kernels.rhs(fab.whole(), sim.metrics[lev][i], sim.ng,
                              device=dev)
        src = sim.case.source(
            fab.valid(), sim.coords[lev].fab(i).valid(), sim.time,
            metrics=sim.metrics[lev][i].interior(sim.ng),
        )
        if src is not None:
            rhs = rhs + src
        sim.kernels.update(fab.valid(), sim.du[lev].fab(i).valid(), rhs,
                           dt, stage, device=dev)

    return run


def _avg_fn(sim, lev: int):
    def run() -> None:
        from repro.amr.average_down import average_down

        average_down(sim.state[lev + 1], sim.state[lev], sim.ref_ratio_iv())

    return run


def _nstages() -> int:
    from repro.numerics.rk3 import NSTAGES

    return NSTAGES
