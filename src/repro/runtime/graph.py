"""Task graph: units of work with explicit data dependencies.

A :class:`Task` is one unit of schedulable work — a per-box kernel
application, a FillBoundary pack (nowait) or unpack (finish), a
ParallelCopy gather, an AverageDown restriction — with declared *read*
and *write* sets of :class:`DataKey` items.  A key names a component
range of one box of one MultiFab, ``(mf, box, comp_lo, comp_hi)``, the
granularity at which CRoCCo's step actually shares data.

:class:`TaskGraph` infers edges from the declared sets using the classic
hazard rules over program (submission) order:

- **RAW** — a reader depends on the last writer of any overlapping key;
- **WAW** — a writer depends on the last writer of any overlapping key;
- **WAR** — a writer depends on every reader since that last writer.

Explicit ``after=[...]`` edges can be added for control dependencies the
data sets do not capture (e.g. a finish task on its matching post task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

#: the whole component range of a fab (used when a task touches every comp)
ALL_COMPS = (0, 1 << 30)


@dataclass(frozen=True)
class DataKey:
    """One box's component range of one MultiFab: (mf, box, comps)."""

    mf: Hashable
    box: int
    comp_lo: int = ALL_COMPS[0]
    comp_hi: int = ALL_COMPS[1]  # exclusive

    def overlaps(self, other: "DataKey") -> bool:
        return (self.mf == other.mf and self.box == other.box
                and self.comp_lo < other.comp_hi
                and other.comp_lo < self.comp_hi)


#: task kinds, in scheduling-priority order (see scheduler.KIND_PRIORITY)
KINDS = ("comm-post", "bc", "interp", "compute", "comm", "comm-wait")


@dataclass
class Task:
    """One schedulable unit of work."""

    tid: int
    name: str
    kind: str
    fn: Callable[[], Any]
    reads: Tuple[DataKey, ...] = ()
    writes: Tuple[DataKey, ...] = ()
    #: TinyProfiler region names to nest while the task runs inline
    regions: Tuple[str, ...] = ()
    #: picklable spec an offloading executor may run in a worker process
    #: instead of calling ``fn`` (None = must run in the driver process)
    payload: Optional[dict] = None
    #: comm channel linking a ``comm-post`` task to its ``comm-wait``
    #: partner so the scheduler can measure the in-flight window
    channel: Optional[Hashable] = None
    deps: set = field(default_factory=set)       # tids this task waits on
    dependents: set = field(default_factory=set)  # tids waiting on this task

    def __repr__(self) -> str:
        return f"Task({self.tid}, {self.name!r}, {self.kind})"


class TaskGraph:
    """A DAG of tasks with automatic hazard-based dependency inference."""

    def __init__(self) -> None:
        self.tasks: List[Task] = []
        # per (mf, box): last writer tid + its keys, and readers since then
        self._last_writer: Dict[Tuple[Hashable, int], List[Tuple[int, DataKey]]] = {}
        self._readers: Dict[Tuple[Hashable, int], List[Tuple[int, DataKey]]] = {}

    def __len__(self) -> int:
        return len(self.tasks)

    def add(
        self,
        name: str,
        fn: Callable[[], Any],
        kind: str = "compute",
        reads: Sequence[DataKey] = (),
        writes: Sequence[DataKey] = (),
        regions: Sequence[str] = (),
        payload: Optional[dict] = None,
        channel: Optional[Hashable] = None,
        after: Sequence[Task] = (),
    ) -> Task:
        """Append one task; edges to earlier tasks are inferred here."""
        if kind not in KINDS:
            raise ValueError(f"unknown task kind {kind!r}; options {KINDS}")
        task = Task(tid=len(self.tasks), name=name, kind=kind, fn=fn,
                    reads=tuple(reads), writes=tuple(writes),
                    regions=tuple(regions), payload=payload, channel=channel)
        for dep in after:
            self._edge(dep.tid, task)
        for key in task.reads:  # RAW
            for wtid, wkey in self._last_writer.get((key.mf, key.box), ()):
                if key.overlaps(wkey):
                    self._edge(wtid, task)
        for key in task.writes:
            slot = (key.mf, key.box)
            for wtid, wkey in self._last_writer.get(slot, ()):  # WAW
                if key.overlaps(wkey):
                    self._edge(wtid, task)
            for rtid, rkey in self._readers.get(slot, ()):  # WAR
                if key.overlaps(rkey):
                    self._edge(rtid, task)
        # update hazard bookkeeping *after* inference (a task may read and
        # write the same key without depending on itself)
        for key in task.writes:
            slot = (key.mf, key.box)
            kept = [(t, k) for t, k in self._last_writer.get(slot, ())
                    if not key.overlaps(k)]
            kept.append((task.tid, key))
            self._last_writer[slot] = kept
            self._readers[slot] = [
                (t, k) for t, k in self._readers.get(slot, ())
                if not key.overlaps(k)
            ]
        for key in task.reads:
            self._readers.setdefault((key.mf, key.box), []).append(
                (task.tid, key)
            )
        self.tasks.append(task)
        return task

    def _edge(self, src_tid: int, dst: Task) -> None:
        if src_tid != dst.tid:
            dst.deps.add(src_tid)
            self.tasks[src_tid].dependents.add(dst.tid)

    # -- queries -----------------------------------------------------------
    def roots(self) -> List[Task]:
        """Tasks with no dependencies (ready immediately)."""
        return [t for t in self.tasks if not t.deps]

    def topological_order(self) -> List[Task]:
        """Kahn's algorithm; raises on cycles (defensive — submission
        order always yields a DAG since edges only point backwards)."""
        indeg = {t.tid: len(t.deps) for t in self.tasks}
        ready = [t.tid for t in self.tasks if indeg[t.tid] == 0]
        out: List[Task] = []
        while ready:
            tid = ready.pop()
            out.append(self.tasks[tid])
            for d in self.tasks[tid].dependents:
                indeg[d] -= 1
                if indeg[d] == 0:
                    ready.append(d)
        if len(out) != len(self.tasks):
            raise ValueError("task graph contains a cycle")
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.tasks:
            out[t.kind] = out.get(t.kind, 0) + 1
        return out

    def critical_path_length(self) -> int:
        """Longest dependency chain (task count), a parallelism bound."""
        depth: Dict[int, int] = {}
        for t in self.topological_order():
            depth[t.tid] = 1 + max((depth[d] for d in t.deps), default=0)
        return max(depth.values(), default=0)
