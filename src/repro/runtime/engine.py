"""RuntimeEngine: the driver-facing facade over the task runtime.

Owns the executor, the shared-memory arena (pool mode), and the
scheduler; builds one task graph per RK stage and accumulates the
per-stage :class:`~repro.runtime.scheduler.ScheduleReport` into a
per-step report the observability layer samples (``runtime.*`` gauges,
the run report's Overlap section).
"""

from __future__ import annotations

from typing import Optional

from repro.observability.perfscope import PerfScope
from repro.runtime.executors import make_executor, set_worker_context
from repro.runtime.rk3graph import build_stage_graph
from repro.runtime.scheduler import (RUNTIME_STREAM_BASE, ScheduleReport,
                                     Scheduler)
from repro.runtime.shm import SharedArena

#: MultiFab tags a level contributes to the shared arena
LEVEL_TAGS = ("state", "du", "coords")


class RuntimeEngine:
    """Task-graph execution of the CRoCCo advance for one simulation."""

    def __init__(self, sim, executor: str = "serial",
                 workers: Optional[int] = None,
                 perfscope: bool = True) -> None:
        self.sim = sim
        #: the simulation's fault injector, if a fault plan is active
        self.faults = getattr(sim, "faults", None)
        self.executor = make_executor(executor, workers,
                                      supervision=self._supervision(sim))
        self.arena = SharedArena() if self.is_pool else None
        if self.is_pool:
            set_worker_context(sim.kernels, sim.case)
        #: task-lifecycle tracing + overhead attribution collector
        self.perfscope = PerfScope(enabled=perfscope)
        self.scheduler = Scheduler(self.executor, profiler=sim.profiler,
                                   perfscope=self.perfscope)
        self._acc: Optional[ScheduleReport] = None
        self._closed = False
        #: merged report of the most recent completed step
        self.last_step_report: Optional[ScheduleReport] = None
        #: merged report of the whole run
        self.total_report = ScheduleReport()
        #: per-kernel-class launch counters merged from pool workers during
        #: the most recent completed step ({} on inline executors)
        self.last_step_worker_counters: dict = {}
        #: lifecycle attribution of the most recent completed step
        self.last_step_perf = None  # type: Optional[object]  # StepPerf

    @staticmethod
    def _supervision(sim) -> Optional[dict]:
        """Supervisor knobs from the simulation's config (None = bare pool)."""
        cfg = getattr(sim, "config", None)
        if cfg is None or not getattr(cfg, "supervise", True):
            return None
        return {
            "task_retries": getattr(cfg, "task_retries", 2),
            "backoff": getattr(cfg, "retry_backoff", 0.05),
            "task_timeout": getattr(cfg, "task_timeout", 30.0),
            "max_pool_restarts": getattr(cfg, "max_pool_restarts", 3),
            "stats": getattr(sim, "resilience", None),
        }

    @property
    def is_pool(self) -> bool:
        return self.executor.name == "pool"

    @property
    def name(self) -> str:
        return self.executor.name

    def bind_tracer(self, tracer, rank: int = 0) -> None:
        """Route per-task spans to ``tracer`` on named worker tracks."""
        self.scheduler.tracer = tracer
        self.scheduler.trace_rank = rank
        tracer.set_thread_name(rank, RUNTIME_STREAM_BASE, "runtime driver")
        for w in range(1, getattr(self.executor, "nworkers", 1) + 1):
            tracer.set_thread_name(rank, RUNTIME_STREAM_BASE + w,
                                   f"runtime worker {w}")

    # -- level storage ----------------------------------------------------
    def adopt_level(self, lev: int) -> None:
        """Re-home a level's MultiFabs into shared memory (pool mode)."""
        if self.arena is None:
            return
        stores = {"state": self.sim.state, "du": self.sim.du,
                  "coords": self.sim.coords}
        for tag in LEVEL_TAGS:
            self.arena.adopt_multifab((tag, lev), stores[tag][lev])

    def release_level(self, lev: int) -> None:
        """Copy a level's data back to the heap and free its segments."""
        if self.arena is None:
            return
        for tag in LEVEL_TAGS:
            self.arena.release((tag, lev))

    # -- step execution ---------------------------------------------------
    def begin_step(self) -> None:
        self._acc = ScheduleReport()
        self.perfscope.begin_step()

    def run_stage(self, dt: float, stage: int) -> ScheduleReport:
        graph = build_stage_graph(self.sim, dt, stage, arena=self.arena)
        if self.faults is not None:
            self.faults.instrument(graph, step=self.sim.step_count,
                                   stage=stage)
        report = self.scheduler.run(graph)
        if self._acc is not None:
            self._acc.merge(report)
        return report

    def end_step(self) -> None:
        if self._acc is not None:
            self.last_step_report = self._acc
            self.total_report.merge(self._acc)
            self._acc = None
        self.last_step_perf = self.perfscope.finalize_step()
        # fold the step's worker-side launch counters into the driver's
        # execution backend so pool runs report their device activity
        counters = self.executor.drain_worker_counters()
        self.last_step_worker_counters = counters
        if counters:
            backend = getattr(self.sim.kernels, "exec_backend", None)
            if backend is not None:
                backend.merge_worker_counters(counters)

    def abort_step(self) -> None:
        """Discard the partially accumulated step (watchdog rollback)."""
        self._acc = None
        self.perfscope.abort_step()
        # a rolled-back step's worker launches are discarded with it
        self.executor.drain_worker_counters()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown()
        if self.arena is not None:
            self.arena.release_all()

    def __enter__(self) -> "RuntimeEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
