"""repro.runtime: asynchronous task-graph execution of the CRoCCo step.

The paper's scaling story (Fig. 7) hinges on overlapping communication
with computation: FillBoundary/ParallelCopy are split into ``nowait``
(post) and ``finish`` (complete) halves so interior kernel work can run
in the gap, and AMReX itself schedules box work through asynchronous
iterators and launch queues.  This package gives the reproduction a real
runtime with the same structure:

- :mod:`repro.runtime.graph` — tasks with explicit read/write sets keyed
  on (MultiFab id, box id, component range); dependencies (RAW/WAR/WAW)
  are inferred automatically.
- :mod:`repro.runtime.scheduler` — ready-queue topological execution
  with comm-posting priority, per-task tracer spans, and measured
  comm/compute overlap + worker idle statistics per step.
- :mod:`repro.runtime.executors` — pluggable executors: ``serial``
  (deterministic, bit-identical to the eager driver) and ``pool``
  (real ``multiprocessing`` workers over SharedMemory-backed FABs).
- :mod:`repro.runtime.shm` — the shared-memory arena that lets worker
  processes operate on patch data in place.
- :mod:`repro.runtime.engine` — the driver-facing facade that builds
  per-RK-stage graphs (:mod:`repro.runtime.rk3graph`) and accumulates
  per-step schedule reports.
"""

from repro.runtime.engine import RuntimeEngine
from repro.runtime.executors import EXECUTORS, make_executor
from repro.runtime.graph import DataKey, Task, TaskGraph
from repro.runtime.scheduler import ScheduleReport, Scheduler

__all__ = [
    "DataKey",
    "Task",
    "TaskGraph",
    "Scheduler",
    "ScheduleReport",
    "RuntimeEngine",
    "EXECUTORS",
    "make_executor",
]
