"""Export simulated-Summit scaling runs in the unified trace/metrics schema.

The weak-scaling driver models each Table-I configuration as one solver
iteration (Fig. 6's region decomposition, Fig. 7's FillPatch split).
This module replays those modeled iterations through the same
observability pipeline a functional run uses — TinyProfiler charges
forwarded by a :class:`ProfilerTraceAdapter` into a charged-clock
:class:`Tracer`, per-step gauges in a :class:`MetricsRegistry` — so a
simulated run directory holds the *same* ``trace.json`` /
``metrics.jsonl`` artifacts (charged time instead of wall time) and
``python -m repro.report`` regenerates the Fig. 6/7 decompositions from
the artifacts alone.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.core.versions import get_version
from repro.observability.adapters import ProfilerTraceAdapter
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import METRICS_NAME, TRACE_NAME
from repro.observability.tracer import Tracer
from repro.perfmodel.calibration import CAL, Calibration
from repro.perfmodel.execution import (
    IterationBreakdown,
    fillpatch_split,
    simulate_iteration,
)
from repro.perfmodel.scaling import TABLE1, _cached_hierarchy
from repro.profiling.tinyprofiler import TinyProfiler


def charge_iteration(profiler: TinyProfiler, bd: IterationBreakdown,
                     split: Optional[Dict[str, float]] = None) -> None:
    """Charge one modeled iteration into a profiler, Fig. 6/7-shaped.

    Produces the same region nest a functional step produces: top-level
    Advance / FillPatch / ComputeDt / AverageDown / Regrid, with
    FillBoundary and ParallelCopy nested under FillPatch (and the
    nowait/finish sub-split below those when ``split`` is given).
    """
    profiler.charge("Advance", bd.advance)
    with profiler.charged_region("FillPatch"):
        with profiler.charged_region("FillBoundary"):
            if split is not None:
                profiler.charge("FillBoundary_nowait", split["FillBoundary_nowait"])
                profiler.charge("FillBoundary_finish", split["FillBoundary_finish"])
            else:
                profiler.charge("FillBoundary_total", bd.fillboundary)
        with profiler.charged_region("ParallelCopy"):
            if split is not None:
                profiler.charge("ParallelCopy_nowait", split["ParallelCopy_nowait"])
                profiler.charge("ParallelCopy_finish", split["ParallelCopy_finish"])
            else:
                profiler.charge("ParallelCopy_total", bd.parallelcopy)
    profiler.charge("ComputeDt", bd.computedt)
    profiler.charge("AverageDown", bd.averagedown)
    profiler.charge("Regrid", bd.regrid)


def export_weak_scaling(
    out_dir,
    version: str = "2.1",
    table: Sequence[Tuple[int, int, float]] = TABLE1,
    cal: Calibration = CAL,
) -> Dict[str, str]:
    """Run the weak-scaling series and write trace/metrics artifacts.

    Each table row (nodes, gpus, equivalent points) becomes one "timestep"
    whose charged time is the modeled iteration at that scale.  Returns
    ``{"trace": path, "metrics": path}``.
    """
    v = get_version(version)
    tracer = Tracer()
    tracer.set_process_name(0, f"simulated Summit (CRoCCo {version})")
    tracer.set_thread_name(0, 0, "charged regions")
    metrics = MetricsRegistry()
    profiler = TinyProfiler()
    profiler.add_listener(ProfilerTraceAdapter(tracer, rank=0))

    charged_total = 0.0
    for step, (nodes, _gpus, pts) in enumerate(table):
        nranks = cal.spec.ranks_for(nodes, v.on_gpu)
        rpn = cal.spec.ranks_per_node(v.on_gpu)
        levels = _cached_hierarchy(pts, nranks, rpn, v.amr, cal)
        bd = simulate_iteration(v, levels, nodes, cal)
        split = fillpatch_split(v, levels, nodes, cal) if v.amr else None
        charge_iteration(profiler, bd, split)
        charged_total += bd.total

        g = metrics.gauge
        g("nodes").set(nodes)
        g("nranks").set(nranks)
        g("equiv_points").set(pts)
        for li, lev in enumerate(levels):
            g(f"active_cells.lev{li}").set(lev.num_pts())
        g("active_cells.total").set(sum(l.num_pts() for l in levels))
        g("levels").set(len(levels))
        for name, seconds in bd.as_dict().items():
            g(f"region.{name}").set(seconds)
        if split is not None:
            for name, seconds in split.items():
                g(f"fillpatch.{name}").set(seconds)
        metrics.sample(step, charged_total)
        tracer.counter("equiv_points", {"points": float(pts)})

    out = Path(out_dir)
    other = {
        "mode": "charged",
        "schema": "repro-trace-1",
        "config": {
            "version": version,
            "driver": "weak_scaling",
            "nodes": [int(n) for (n, _g, _p) in table],
        },
    }
    return {
        "trace": tracer.write(out / TRACE_NAME, other_data=other),
        "metrics": metrics.write_jsonl(out / METRICS_NAME),
    }
