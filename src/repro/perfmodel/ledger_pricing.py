"""Price a functional run's recorded traffic on the Summit network model.

This bridges the two layers: the functional solver records every simulated
MPI message in its :class:`~repro.mpi.ledger.CommLedger`; this module
converts that *measured* traffic — rather than modeled volumes — into
seconds on the fat-tree model, attributed to the paper's profiling
regions.  Useful for validating the performance layer's volume models
against real runs at proxy scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.mpi.ledger import KINDS, CommLedger
from repro.perfmodel.calibration import CAL, Calibration


@dataclass(frozen=True)
class PricedLedger:
    """Seconds per message kind, from recorded traffic."""

    seconds: Dict[str, float]
    off_node_bytes: Dict[str, int]
    on_node_bytes: Dict[str, int]
    messages: Dict[str, int]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


def price_ledger(ledger: CommLedger, nranks: int, nodes: int,
                 cal: Calibration = CAL) -> PricedLedger:
    """Convert a CommLedger into per-kind seconds on the network model.

    Point-to-point kinds (fillboundary, averagedown) are bounded by the
    busiest receiving rank; global kinds (parallelcopy, regrid) add the
    metadata/handshake term; reductions are priced as binomial trees per
    recorded round-trip.
    """
    if nodes < 1 or nranks < 1:
        raise ValueError("nodes and nranks must be positive")
    net = cal.net
    seconds: Dict[str, float] = {}
    offb: Dict[str, int] = {}
    onb: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    rpn = max(1, nranks // nodes)
    for kind in KINDS:
        msgs = ledger.messages(kind)
        counts[kind] = len(msgs)
        if not msgs:
            seconds[kind] = 0.0
            offb[kind] = onb[kind] = 0
            continue
        recv_off = np.zeros(nranks)
        recv_on = np.zeros(nranks)
        nmsg = np.zeros(nranks, dtype=np.int64)
        for m in msgs:
            if m.local:
                continue
            dst = m.dst % nranks
            src = m.src % nranks
            if src // rpn == dst // rpn:
                recv_on[dst] += m.nbytes
            else:
                recv_off[dst] += m.nbytes
                nmsg[dst] += 1
        offb[kind] = int(recv_off.sum())
        onb[kind] = int(recv_on.sum())
        t = net.p2p_time(float(recv_off.max()), float(recv_on.max()),
                         int(nmsg.max()), nodes)
        if kind in ("parallelcopy", "regrid"):
            # each ParallelCopy episode pays the global metadata handshake;
            # estimate episode count from the traffic structure (one per
            # destination sweep is indistinguishable here, so charge once)
            t += cal.pc_meta_per_rank * nranks + net.barrier_time(nranks)
        if kind == "reduce":
            rounds = max(1, len(msgs) // max(1, 2 * int(np.log2(max(2, nranks)))))
            t = rounds * net.reduction_time(nranks)
        seconds[kind] = float(t)
    return PricedLedger(seconds, offb, onb, counts)
