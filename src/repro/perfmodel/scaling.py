"""Strong- and weak-scaling drivers (Fig. 5, Table I).

Strong scaling: CRoCCo 1.1 / 1.2 / 2.0 on 16..1024 nodes at 1.27e9 grid
points.  Weak scaling: the Table I series (4..1024 nodes, 1.64e8..4.19e10
equivalent points, ~4.1e7 per node), versions 1.1 / 1.2 / 2.0 / 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.perfmodel.calibration import CAL, Calibration
from repro.perfmodel.decomposition import (
    amr_reduction,
    dmr_band_hierarchy,
)
from repro.perfmodel.execution import IterationBreakdown, simulate_iteration

#: Table I of the paper: (nodes, gpus, equivalent grid points)
TABLE1: Tuple[Tuple[int, int, float], ...] = (
    (4, 24, 1.64e8),
    (16, 96, 6.55e8),
    (36, 216, 1.47e9),
    (64, 384, 2.62e9),
    (100, 600, 4.10e9),
    (256, 1536, 1.05e10),
    (400, 2400, 1.64e10),
    (1024, 6144, 4.19e10),
)

#: strong-scaling study parameters (Sec. V-C)
STRONG_POINTS = 1.27e9
STRONG_NODES: Tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024)


@dataclass
class ScalingPoint:
    """One (version, node count) sample of a scaling study."""

    version: str
    nodes: int
    nranks: int
    equiv_points: float
    active_points: int
    amr_reduction: float
    breakdown: IterationBreakdown

    @property
    def time_per_iteration(self) -> float:
        return self.breakdown.total


#: hierarchy cache keyed by (equiv_points, nranks, amr) — versions sharing
#: a decomposition (2.0 and 2.1) reuse it, including memoized volumes
_HIERARCHY_CACHE: Dict[Tuple[float, int, bool], list] = {}


def _cached_hierarchy(equiv_points: float, nranks: int, rpn: int, amr: bool,
                      cal: Calibration) -> list:
    key = (equiv_points, nranks, amr)
    if cal is not CAL:
        return dmr_band_hierarchy(equiv_points, nranks, rpn, amr, cal)
    if key not in _HIERARCHY_CACHE:
        _HIERARCHY_CACHE[key] = dmr_band_hierarchy(
            equiv_points, nranks, rpn, amr, cal
        )
    return _HIERARCHY_CACHE[key]


def _run_point(version: str, nodes: int, equiv_points: float,
               cal: Calibration) -> ScalingPoint:
    from repro.core.versions import get_version

    v = get_version(version)
    nranks = cal.spec.ranks_for(nodes, v.on_gpu)
    rpn = cal.spec.ranks_per_node(v.on_gpu)
    levels = _cached_hierarchy(equiv_points, nranks, rpn, v.amr, cal)
    bd = simulate_iteration(v, levels, nodes, cal)
    return ScalingPoint(
        version=version,
        nodes=nodes,
        nranks=nranks,
        equiv_points=equiv_points,
        active_points=sum(l.num_pts() for l in levels),
        amr_reduction=amr_reduction(levels) if v.amr else 0.0,
        breakdown=bd,
    )


def strong_scaling(
    versions: Sequence[str] = ("1.1", "1.2", "2.0"),
    nodes: Sequence[int] = STRONG_NODES,
    points: float = STRONG_POINTS,
    cal: Calibration = CAL,
) -> Dict[str, List[ScalingPoint]]:
    """Fig. 5 (left): time/iteration vs node count at fixed problem size."""
    return {
        v: [_run_point(v, n, points, cal) for n in nodes] for v in versions
    }


def weak_scaling(
    versions: Sequence[str] = ("1.1", "1.2", "2.0", "2.1"),
    table: Sequence[Tuple[int, int, float]] = TABLE1,
    cal: Calibration = CAL,
) -> Dict[str, List[ScalingPoint]]:
    """Fig. 5 (right): time/iteration over the Table I weak-scaling series."""
    return {
        v: [_run_point(v, n, pts, cal) for (n, _g, pts) in table]
        for v in versions
    }


def weak_scaling_efficiency(points: Sequence[ScalingPoint],
                            baseline_index: int = 0) -> List[float]:
    """t(base)/t(n): the paper quotes 2.0 at ~54% @400 nodes, ~40% @1024."""
    t0 = points[baseline_index].time_per_iteration
    return [t0 / p.time_per_iteration for p in points]


def speedup_series(a: Sequence[ScalingPoint],
                   b: Sequence[ScalingPoint]) -> List[float]:
    """Per-node-count speedup of series ``b`` over series ``a`` (t_a / t_b)."""
    if len(a) != len(b):
        raise ValueError("series length mismatch")
    return [pa.time_per_iteration / pb.time_per_iteration for pa, pb in zip(a, b)]
