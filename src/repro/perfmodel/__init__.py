"""Summit-scale performance simulation.

Combines exact decomposition metadata (BoxArrays, DistributionMappings and
box-intersection message volumes from :mod:`repro.amr`, built at the
paper's real problem sizes without allocating field data) with the machine
models of :mod:`repro.machine` to regenerate the paper's evaluation:
kernel times (Fig. 3), the roofline (Fig. 4), strong and weak scaling
(Fig. 5, Table I), and the region decompositions (Figs. 6-7).
"""

from repro.perfmodel.calibration import Calibration, CAL
from repro.perfmodel.decomposition import (
    HierarchySpec,
    LevelDecomposition,
    build_hierarchy,
    dmr_band_hierarchy,
)
from repro.perfmodel.execution import IterationBreakdown, simulate_iteration
from repro.perfmodel.scaling import (
    TABLE1,
    ScalingPoint,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "Calibration",
    "CAL",
    "HierarchySpec",
    "LevelDecomposition",
    "build_hierarchy",
    "dmr_band_hierarchy",
    "IterationBreakdown",
    "simulate_iteration",
    "TABLE1",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
]
