"""Simulated wall time for a functional run's recorded GPU launches.

The functional layer records every kernel launch (name, points,
flop/byte budgets) on the simulated devices; this module prices those
records with the V100 model, giving per-kernel simulated seconds for a
*real* run — the bridge that lets a laptop-scale run report "what Summit
would have spent in WENOx" (the measurement behind Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.kernels.counts import KernelBudget, budget_for_kernel
from repro.kernels.device import GpuDevice
from repro.machine.gpu import V100Model


def _budget_for(kernel: str) -> KernelBudget:
    # shared launch-name -> budget resolver (exact, then prefix families)
    return budget_for_kernel(kernel)


@dataclass(frozen=True)
class DeviceTiming:
    """Per-kernel simulated seconds for one device's launch history."""

    seconds: Dict[str, float]
    launches: Dict[str, int]
    points: Dict[str, int]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


def summarize_device(device: GpuDevice,
                     model: Optional[V100Model] = None) -> DeviceTiming:
    """Price every recorded launch on the V100 model."""
    m = model if model is not None else V100Model()
    seconds: Dict[str, float] = {}
    launches: Dict[str, int] = {}
    points: Dict[str, int] = {}
    for rec in device.launches:
        budget = _budget_for(rec.name)
        t = m.kernel_time(budget, rec.npoints)
        seconds[rec.name] = seconds.get(rec.name, 0.0) + t
        launches[rec.name] = launches.get(rec.name, 0) + 1
        points[rec.name] = points.get(rec.name, 0) + rec.npoints
    return DeviceTiming(seconds, launches, points)


def summarize_fleet(devices: Sequence[GpuDevice],
                    model: Optional[V100Model] = None) -> Dict[str, DeviceTiming]:
    """Per-device timings for a multi-rank run (one entry per device)."""
    return {d.name: summarize_device(d, model) for d in devices}


def busiest_device_seconds(devices: Sequence[GpuDevice],
                           model: Optional[V100Model] = None) -> float:
    """The critical-path device time (the slowest simulated GPU)."""
    if not devices:
        return 0.0
    return max(summarize_device(d, model).total for d in devices)
