"""Per-iteration time simulation of one CRoCCo configuration on Summit.

Combines the decomposition metadata (exact per-rank loads and
box-intersection message volumes) with the machine models to produce a
per-region time breakdown of one solver iteration — the same regions the
paper profiles with TinyProfiler (Fig. 6: FillPatch / Advance / Regrid /
ComputeDt / AverageDown) and the FillPatch internals of Fig. 7
(FillBoundary vs ParallelCopy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.versions import VersionConfig, get_version
from repro.kernels.counts import (
    COMPUTEDT_BUDGET,
    UPDATE_BUDGET,
    VISCOUS_BUDGET,
    WENO_BUDGET,
)
from repro.numerics.rk3 import NSTAGES
from repro.perfmodel.calibration import CAL, Calibration
from repro.perfmodel.decomposition import (
    LevelDecomposition,
    averagedown_volumes,
    coarse_fine_volumes,
)


@dataclass
class IterationBreakdown:
    """Seconds per iteration attributed to each profiled region."""

    advance: float = 0.0
    fillboundary: float = 0.0
    parallelcopy: float = 0.0
    computedt: float = 0.0
    averagedown: float = 0.0
    regrid: float = 0.0
    #: True when the per-GPU resident points exceed the V100 budget
    exceeds_gpu_memory: bool = False

    @property
    def fillpatch(self) -> float:
        """The paper's FillPatch region: boundary exchange + global copies."""
        return self.fillboundary + self.parallelcopy

    @property
    def total(self) -> float:
        return (self.advance + self.fillpatch + self.computedt
                + self.averagedown + self.regrid)

    def as_dict(self) -> Dict[str, float]:
        return {
            "Advance": self.advance,
            "FillPatch": self.fillpatch,
            "FillBoundary": self.fillboundary,
            "ParallelCopy": self.parallelcopy,
            "ComputeDt": self.computedt,
            "AverageDown": self.averagedown,
            "Regrid": self.regrid,
            "total": self.total,
        }


def _gpu_compute_time(levels: Sequence[LevelDecomposition], cal: Calibration,
                      include_viscous: bool) -> float:
    """Per-stage kernel time of the busiest GPU (sum over levels)."""
    gpu = cal.gpu
    total = 0.0
    budgets = [WENO_BUDGET] * 3 + ([VISCOUS_BUDGET] if include_viscous else [])
    budgets.append(UPDATE_BUDGET)
    for lev in levels:
        pts, ranks = lev.box_pts_and_ranks()
        # kernel_time is nonlinear in box size (launch overhead +
        # utilization); vectorize over the distinct box sizes
        per_box = np.zeros(len(pts))
        for size in np.unique(pts):
            t = sum(gpu.kernel_time(bud, int(size)) for bud in budgets)
            per_box[pts == size] = t
        per_rank = np.zeros(lev.nranks)
        np.add.at(per_rank, ranks, per_box)
        total += float(per_rank.max())
    return total


def _cpu_compute_time(levels: Sequence[LevelDecomposition], cal: Calibration,
                      lang: str, include_viscous: bool) -> float:
    """Per-stage kernel time of the busiest CPU rank (one core per rank)."""
    cpu = cal.cpu
    budgets = [WENO_BUDGET] * 3 + ([VISCOUS_BUDGET] if include_viscous else [])
    budgets.append(UPDATE_BUDGET)
    total = 0.0
    for lev in levels:
        loads = lev.per_rank_pts().astype(np.float64)
        boxes = lev.boxes_per_rank().astype(np.float64)
        per_rank = sum(
            loads * bud.flops_per_point for bud in budgets
        ) / (cpu.sustained_flops / cpu.cores)
        if lang == "cpp":
            per_rank = per_rank * cpu.cpp_slowdown
        per_rank = per_rank + boxes * len(budgets) * cal.cpu_kernel_overhead
        total += float(per_rank.max())
    return total


def simulate_iteration(
    version: str | VersionConfig,
    levels: Sequence[LevelDecomposition],
    nodes: int,
    cal: Calibration = CAL,
    include_viscous: bool = True,
) -> IterationBreakdown:
    """Model one solver iteration (3 RK stages + bookkeeping)."""
    v = get_version(version) if isinstance(version, str) else version
    net = cal.net
    out = IterationBreakdown()
    nranks = levels[0].nranks
    rpn = max(1, nranks // max(1, nodes))
    ratio = cal.ref_ratio

    # -- compute (Advance) per stage -----------------------------------------
    if v.on_gpu:
        stage_compute = _gpu_compute_time(levels, cal, include_viscous)
        # per-GPU memory check against the paper's point budget
        max_pts = max(float(lev.per_rank_pts().max()) for lev in levels)
        out.exceeds_gpu_memory = max_pts > cal.max_points_per_gpu
    else:
        stage_compute = _cpu_compute_time(levels, cal, v.backend, include_viscous)
    if v.amr:
        # AMR software tax (FillPatch pack/unpack, interpolation arithmetic,
        # ghost bookkeeping) per active point per stage
        max_pts = max(float(lev.per_rank_pts().max()) for lev in levels)
        if v.on_gpu:
            hbm_eff = cal.gpu.hbm_bandwidth * cal.gpu.bw_ceiling_fraction
            stage_compute += max_pts * cal.amr_overhead_bytes_per_point / hbm_eff
        else:
            stage_compute += max_pts * cal.amr_overhead_flops_per_point / (
                cal.cpu.sustained_flops / cal.cpu.cores
            ) * (cal.cpu.cpp_slowdown if v.backend == "cpp" else 1.0)
    out.advance = NSTAGES * stage_compute

    # -- FillPatch per stage per level --------------------------------------
    # ParallelCopy moves its *data* between (mostly neighboring) patch
    # owners, but its metadata/handshake phase is global: every rank takes
    # part in the intersection exchange, a cost growing with communicator
    # size.  That growth is exactly what Fig. 7 isolates as
    # ParallelCopy_finish rising across the weak-scaling series.
    pc_meta = cal.pc_meta_per_rank * nranks + net.barrier_time(nranks)
    fb_time = 0.0
    pc_time = 0.0
    for li, lev in enumerate(levels):
        vols = lev.fillboundary_volumes_cached(cal.ncomp_state, cal.nghost, rpn)
        fb_time += net.p2p_time(
            float(vols.off_node_recv.max()),
            float(vols.on_node_recv.max()),
            int(vols.messages.max()),
            nodes,
        )
        if li > 0:
            # two-level interpolation gather (ParallelCopy inside FillPatch)
            max_rank, total = coarse_fine_volumes(
                lev, levels[li - 1], cal.ncomp_state, cal.nghost, ratio,
                cal.interface_fraction,
            )
            pc_time += net.p2p_time(max_rank * 0.7, max_rank * 0.3, 16, nodes)
            pc_time += pc_meta
            if v.uses_global_parallelcopy:
                # the custom curvilinear interpolator first copies the whole
                # coarse coordinates MultiFab into a temporary with extra
                # ghost cells: valid data is a local copy, the ghost shell
                # moves between owners, and a second metadata phase is paid
                crse = levels[li - 1]
                shell_factor = _ghost_inflation(crse, cal) - 1.0
                per_rank = crse.per_rank_pts().astype(float)
                max_rank_c = float(per_rank.max()) * shell_factor \
                    * cal.ncomp_coords * 8.0
                pc_time += net.p2p_time(max_rank_c * 0.7, max_rank_c * 0.3,
                                        26, nodes)
                pc_time += pc_meta
    out.fillboundary = NSTAGES * fb_time
    out.parallelcopy = NSTAGES * pc_time

    # -- ComputeDt ----------------------------------------------------------
    scan_pts = max(float(lev.per_rank_pts().max()) for lev in levels)
    if v.on_gpu:
        scan = cal.gpu.kernel_time(COMPUTEDT_BUDGET, int(scan_pts)) * len(levels)
    else:
        scan = scan_pts * COMPUTEDT_BUDGET.flops_per_point / (
            cal.cpu.sustained_flops / cal.cpu.cores
        )
    out.computedt = scan + net.reduction_time(nranks)

    # -- AverageDown (last stage only) ------------------------------------
    for li in range(1, len(levels)):
        max_rank, total = averagedown_volumes(levels[li], cal.ncomp_state, ratio)
        out.averagedown += net.p2p_time(max_rank * 0.5, max_rank * 0.5,
                                        8, nodes)

    # -- Regrid (amortized over the regrid interval) -----------------------
    if v.amr and len(levels) > 1:
        nboxes = sum(lev.num_boxes() for lev in levels[1:])
        meta = nboxes * 6 * 8 * math.ceil(math.log2(max(2, nranks)))
        regrid_t = meta / cal.net.spec.node_injection_bw \
            + net.barrier_time(nranks) * 4
        for li in range(1, len(levels)):
            churn_bytes = (levels[li].num_pts() * cal.regrid_churn
                           * cal.ncomp_state * 8.0)
            max_rank = float(levels[li].per_rank_pts().max()) * cal.regrid_churn \
                * cal.ncomp_state * 8.0
            regrid_t += net.global_copy_time(max_rank, churn_bytes, nodes, nranks)
        out.regrid = regrid_t / cal.regrid_interval
    return out


def _ghost_inflation(lev: LevelDecomposition, cal: Calibration) -> float:
    """Volume inflation factor of growing this level's boxes by the
    interpolation ghost width (the temporary coordinates MultiFab)."""
    pts, _ = lev.box_pts_and_ranks()
    side = float(np.cbrt(pts.mean()))
    g = cal.nghost + 2
    return (side + 2 * g) ** 3 / side**3


def fillpatch_split(
    version: str | VersionConfig,
    levels: Sequence[LevelDecomposition],
    nodes: int,
    cal: Calibration = CAL,
) -> Dict[str, float]:
    """Fig. 7's FillPatch decomposition: {FillBoundary, ParallelCopy} x
    {nowait, finish} seconds per iteration.

    The ``_nowait`` share is the posting cost (per-message software
    overhead and handshake latency, paid when the nonblocking operation is
    issued); the ``_finish`` share is the completion cost (volume transfer
    and, for ParallelCopy, the global metadata wait) — the part the paper
    observes growing with node count.
    """
    v = get_version(version) if isinstance(version, str) else version
    net = cal.net
    nranks = levels[0].nranks
    rpn = max(1, nranks // max(1, nodes))
    ratio = cal.ref_ratio
    pc_meta = cal.pc_meta_per_rank * nranks + net.barrier_time(nranks)

    fb_nowait = fb_finish = pc_nowait = pc_finish = 0.0
    for li, lev in enumerate(levels):
        vols = lev.fillboundary_volumes_cached(cal.ncomp_state, cal.nghost, rpn)
        msgs = int(vols.messages.max())
        fb_nowait += msgs * net.message_overhead
        fb_finish += net.p2p_time(
            float(vols.off_node_recv.max()), float(vols.on_node_recv.max()),
            0, nodes,
        )
        if li > 0:
            max_rank, _total = coarse_fine_volumes(
                lev, levels[li - 1], cal.ncomp_state, cal.nghost, ratio,
                cal.interface_fraction,
            )
            pc_nowait += 16 * net.message_overhead
            pc_finish += net.p2p_time(max_rank * 0.7, max_rank * 0.3, 0, nodes)
            pc_finish += pc_meta
            if v.uses_global_parallelcopy:
                crse = levels[li - 1]
                shell_factor = _ghost_inflation(crse, cal) - 1.0
                max_rank_c = float(crse.per_rank_pts().max()) * shell_factor \
                    * cal.ncomp_coords * 8.0
                pc_nowait += 26 * net.message_overhead
                pc_finish += net.p2p_time(max_rank_c * 0.7, max_rank_c * 0.3,
                                          0, nodes)
                pc_finish += pc_meta
    return {
        "FillBoundary_nowait": NSTAGES * fb_nowait,
        "FillBoundary_finish": NSTAGES * fb_finish,
        "ParallelCopy_nowait": NSTAGES * pc_nowait,
        "ParallelCopy_finish": NSTAGES * pc_finish,
    }


def nowait_finish_fractions(
    version: str | VersionConfig,
    levels: Sequence[LevelDecomposition],
    nodes: int,
    cal: Calibration = CAL,
) -> Dict[str, float]:
    """The modeled posting/finishing decomposition of FillPatch, as
    fractions of the whole split.

    ``finish_frac`` is the share of FillPatch spent *completing*
    communication — the part that can hide behind interior compute when
    the runtime posts the nowait halves early.  It grows monotonically
    with node count (the Fig. 7 trend), which is the shape the runtime's
    measured per-step overlap is cross-checked against
    (``tests/perfmodel/test_fillpatch_overlap.py``).
    """
    split = fillpatch_split(version, levels, nodes, cal)
    nowait = split["FillBoundary_nowait"] + split["ParallelCopy_nowait"]
    finish = split["FillBoundary_finish"] + split["ParallelCopy_finish"]
    total = nowait + finish
    return {
        "nowait_s": nowait,
        "finish_s": finish,
        "nowait_frac": nowait / total if total else 0.0,
        "finish_frac": finish / total if total else 0.0,
    }
