"""Calibration constants for the Summit performance model.

Each constant is tied to a statement in the paper or a public hardware
number; EXPERIMENTS.md records how the resulting curves compare against
every figure.  Nothing here is fitted per-figure: the same constants feed
Figs. 3-7 simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.gpu import V100Model
from repro.machine.network import FatTreeModel
from repro.machine.node import Power9Model
from repro.machine.summit import SUMMIT, SummitSpec


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the performance model."""

    spec: SummitSpec = SUMMIT
    gpu: V100Model = field(default_factory=V100Model)
    cpu: Power9Model = field(default_factory=Power9Model)
    net: FatTreeModel = field(default_factory=FatTreeModel)

    #: AMR hierarchy shape for the DMR: fraction of the domain refined at
    #: the middle and finest levels.  Yields ~90% active-point reduction,
    #: inside the paper's quoted 89-94% range (Sec. V-C).
    band_fraction_mid: float = 0.14
    band_fraction_fine: float = 0.07

    #: refinement ratio and number of AMR levels (Fig. 2: three levels)
    ref_ratio: int = 2
    n_levels: int = 3

    #: ghost width of the numerics (paper: blocking factor >= ghosts = 8)
    nghost: int = 4
    blocking_factor: int = 8
    max_grid_size: int = 128

    #: conservative state components (5) and coordinate components (3)
    ncomp_state: int = 5
    ncomp_coords: int = 3

    #: regrid cadence in steps and fraction of fine patches replaced per
    #: regrid (feature convection between regrids)
    regrid_interval: int = 4
    regrid_churn: float = 0.3

    #: per-GPU resident-point budget implied by the paper's memory
    #: observations ("grid point counts beyond 2.0E5 spilled out of the
    #: 16GB"); used to flag configurations that would not fit
    max_points_per_gpu: float = 2.0e5
    target_points_per_gpu: float = 1.2e5

    #: CPU-side per-patch software overhead per kernel invocation [s]
    cpu_kernel_overhead: float = 5e-6

    #: fraction of a level's fine patches whose ghost regions touch a
    #: coarse/fine interface (sets the two-level interpolation volume)
    interface_fraction: float = 0.35

    #: cap on boxes per level (decomposition practicality; beyond this the
    #: grids are made coarser-grained and some ranks idle on that level)
    max_boxes_per_level: int = 32768

    #: ParallelCopy metadata/handshake cost per participating rank [s].
    #: AMReX's ParallelCopy computes global intersection metadata and posts
    #: dense nonblocking communication; its setup cost grows with the
    #: communicator size — the growth the paper isolates in Fig. 7
    #: (ParallelCopy_finish rising with node count).
    pc_meta_per_rank: float = 0.5e-6

    #: extra AMR software work per active point per RK stage
    #: (FillPatch pack/unpack, interpolation arithmetic, ghost
    #: bookkeeping).  On CPUs this poorly-vectorized work is a significant
    #: tax on the AMR versions — why the paper's AMR-over-uniform speedup
    #: is 4.6x instead of the naive ~9x — and is priced in flops; on GPUs
    #: the same copies ride the device bandwidth and are priced in bytes.
    amr_overhead_flops_per_point: float = 2600.0
    amr_overhead_bytes_per_point: float = 250.0


#: the default calibration used by all benches
CAL = Calibration()


def flops_per_point_per_stage(dim: int = 3, viscous: bool = True) -> float:
    """Total kernel flops per grid point per RK stage."""
    from repro.kernels.counts import UPDATE_BUDGET, VISCOUS_BUDGET, WENO_BUDGET

    total = dim * WENO_BUDGET.flops_per_point + UPDATE_BUDGET.flops_per_point
    if viscous:
        total += VISCOUS_BUDGET.flops_per_point
    return total
