"""Metadata-only decompositions at Summit problem sizes.

Builds the BoxArray / DistributionMapping structure of the paper's runs —
up to 4.19e10 equivalent grid points over tens of thousands of ranks —
without allocating any field data, so message volumes and per-rank loads
come from real geometry, not estimates.

Two level representations:

- :class:`LatticeLevel` — a uniform rectangular lattice of equal boxes
  (the non-AMR levels and the coarsest AMR level).  Ghost-exchange volumes
  and ownership are computed with fully vectorized NumPy over the lattice,
  handling ~1e5 boxes in milliseconds.
- :class:`BoxLevel` — a general BoxArray + DistributionMapping (the AMR
  band levels, a few thousand boxes), using the spatial-hash intersection
  machinery of :mod:`repro.amr`.

The AMR hierarchy mirrors the DMR's three-level structure (Fig. 2): the
coarsest level covers the domain, while each finer level covers a diagonal
staircase band following the incident-shock trace, sized by the
calibration's band fractions to land in the paper's 89-94% active-point
reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.intvect import IntVect
from repro.amr.morton import morton_encode
from repro.perfmodel.calibration import CAL, Calibration

#: DMR shock-trace geometry (index space, fractions of the domain)
DMR_X0_FRAC = (1.0 / 6.0) / 4.0
DMR_SLOPE = (1.0 / math.sqrt(3.0)) / 4.0  # dx_frac per dy_frac


@dataclass(frozen=True)
class HierarchySpec:
    """Inputs describing one run's decomposition."""

    equiv_cells: Tuple[int, int, int]
    nranks: int
    ranks_per_node: int
    amr: bool
    cal: Calibration = CAL


@dataclass
class CommVolumes:
    """Per-rank ghost-exchange traffic for one level (bytes)."""

    off_node_recv: np.ndarray
    on_node_recv: np.ndarray
    messages: np.ndarray
    total_bytes: float


class LevelDecomposition:
    """Common interface of one AMR level's decomposition metadata."""

    level: int
    domain: Box
    nranks: int

    def fillboundary_volumes_cached(self, ncomp: int, ngrow: int,
                                    ranks_per_node: int) -> "CommVolumes":
        """Memoized ghost-volume computation (reused across versions)."""
        key = (ncomp, ngrow, ranks_per_node)
        cache = getattr(self, "_fb_cache", None)
        if cache is None:
            cache = {}
            self._fb_cache = cache
        if key not in cache:
            cache[key] = self.fillboundary_volumes(ncomp, ngrow, ranks_per_node)
        return cache[key]

    def num_pts(self) -> int:
        raise NotImplementedError

    def num_boxes(self) -> int:
        raise NotImplementedError

    def per_rank_pts(self) -> np.ndarray:
        raise NotImplementedError

    def boxes_per_rank(self) -> np.ndarray:
        raise NotImplementedError

    def box_pts_and_ranks(self) -> Tuple[np.ndarray, np.ndarray]:
        """(points per box, owner rank per box) arrays."""
        raise NotImplementedError

    def fillboundary_volumes(self, ncomp: int, ngrow: int,
                             ranks_per_node: int) -> CommVolumes:
        raise NotImplementedError


class LatticeLevel(LevelDecomposition):
    """A uniform lattice of (sx, sy, sz) boxes covering the whole domain."""

    def __init__(self, level: int, domain: Box, box_size: Tuple[int, int, int],
                 nranks: int) -> None:
        self.level = level
        self.domain = domain
        self.box_size = tuple(box_size)
        self.nranks = nranks
        n = domain.size()
        for d in range(3):
            if n[d] % box_size[d] != 0:
                raise ValueError(
                    f"lattice box size {box_size[d]} does not divide "
                    f"domain extent {n[d]} in direction {d}"
                )
        self.counts = tuple(n[d] // box_size[d] for d in range(3))
        self._ranks3d = self._sfc_ranks()

    def _sfc_ranks(self) -> np.ndarray:
        """Z-Morton ordering split into equal contiguous rank chunks."""
        cx, cy, cz = self.counts
        coords = np.stack(
            np.meshgrid(np.arange(cx), np.arange(cy), np.arange(cz),
                        indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        order = np.argsort(morton_encode(coords), kind="stable")
        nboxes = len(order)
        ranks_sorted = np.minimum(
            (np.arange(nboxes) * self.nranks) // max(1, nboxes),
            self.nranks - 1,
        )
        ranks = np.empty(nboxes, dtype=np.int64)
        ranks[order] = ranks_sorted
        return ranks.reshape(cx, cy, cz)

    # -- interface ---------------------------------------------------------
    def num_pts(self) -> int:
        return self.domain.num_pts()

    def num_boxes(self) -> int:
        return int(np.prod(self.counts))

    def box_pts(self) -> int:
        return int(np.prod(self.box_size))

    def per_rank_pts(self) -> np.ndarray:
        return self.boxes_per_rank() * self.box_pts()

    def boxes_per_rank(self) -> np.ndarray:
        return np.bincount(self._ranks3d.ravel(), minlength=self.nranks)

    def box_pts_and_ranks(self) -> Tuple[np.ndarray, np.ndarray]:
        ranks = self._ranks3d.ravel()
        return np.full(len(ranks), self.box_pts(), dtype=np.int64), ranks

    def fillboundary_volumes(self, ncomp: int, ngrow: int,
                             ranks_per_node: int) -> CommVolumes:
        """Vectorized exact ghost volumes over the 26 lattice neighbors."""
        ranks = self._ranks3d
        nodes = ranks // ranks_per_node
        off = np.zeros(self.nranks)
        on = np.zeros(self.nranks)
        msgs = np.zeros(self.nranks, dtype=np.int64)
        total = 0.0
        s = self.box_size
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    vol = 1
                    for d, off_d in enumerate((dx, dy, dz)):
                        vol *= ngrow if off_d != 0 else s[d]
                    nbytes = vol * ncomp * 8
                    dst_sl, src_sl = _shift_slices((dx, dy, dz))
                    dst = ranks[dst_sl].ravel()
                    src = ranks[src_sl].ravel()
                    total += nbytes * len(dst)
                    cross = src != dst
                    same_node = nodes[dst_sl].ravel() == nodes[src_sl].ravel()
                    np.add.at(on, dst[cross & same_node], nbytes)
                    np.add.at(off, dst[cross & ~same_node], nbytes)
                    np.add.at(msgs, dst[cross & ~same_node], 1)
        return CommVolumes(off, on, msgs, total)


def _shift_slices(offset: Tuple[int, int, int]):
    """(dst, src) slice tuples pairing each box with its offset neighbor."""
    dst, src = [], []
    for o in offset:
        if o == 0:
            dst.append(slice(None))
            src.append(slice(None))
        elif o > 0:
            dst.append(slice(None, -1))
            src.append(slice(1, None))
        else:
            dst.append(slice(1, None))
            src.append(slice(None, -1))
    return tuple(dst), tuple(src)


class BoxLevel(LevelDecomposition):
    """A general BoxArray-based level (the AMR shock-band levels)."""

    def __init__(self, level: int, domain: Box, ba: BoxArray,
                 dm: DistributionMapping) -> None:
        self.level = level
        self.domain = domain
        self.ba = ba
        self.dm = dm
        self.nranks = dm.nranks

    def num_pts(self) -> int:
        return self.ba.num_pts()

    def num_boxes(self) -> int:
        return len(self.ba)

    def per_rank_pts(self) -> np.ndarray:
        return self.dm.load_per_rank(self.ba)

    def boxes_per_rank(self) -> np.ndarray:
        return np.bincount(np.asarray(self.dm.ranks()), minlength=self.nranks)

    def box_pts_and_ranks(self) -> Tuple[np.ndarray, np.ndarray]:
        pts = np.array([b.num_pts() for b in self.ba], dtype=np.int64)
        return pts, np.asarray(self.dm.ranks())

    def fillboundary_volumes(self, ncomp: int, ngrow: int,
                             ranks_per_node: int) -> CommVolumes:
        nranks = self.nranks
        off = np.zeros(nranks)
        on = np.zeros(nranks)
        msgs = np.zeros(nranks, dtype=np.int64)
        total = 0.0
        ranks = np.asarray(self.dm.ranks())
        nodes = ranks // ranks_per_node
        los = np.array([b.lo.tup() for b in self.ba], dtype=np.int64)
        his = np.array([b.hi.tup() for b in self.ba], dtype=np.int64)
        for i, b in enumerate(self.ba):
            cand = np.array(self.ba.intersecting(b.grow(ngrow)), dtype=np.int64)
            cand = cand[cand != i]
            if len(cand) == 0:
                continue
            glo = np.array(b.grow(ngrow).lo.tup())
            ghi = np.array(b.grow(ngrow).hi.tup())
            lo = np.maximum(los[cand], glo)
            hi = np.minimum(his[cand], ghi)
            vols = np.prod(np.maximum(0, hi - lo + 1), axis=1)
            nbytes = vols * ncomp * 8
            total += float(nbytes.sum())
            dst = ranks[i]
            cross = ranks[cand] != dst
            same = nodes[cand] == nodes[i]
            on[dst] += float(nbytes[cross & same].sum())
            off[dst] += float(nbytes[cross & ~same].sum())
            msgs[dst] += int((cross & ~same).sum())
        return CommVolumes(off, on, msgs, total)


# -- construction helpers ------------------------------------------------


def round_align(n: float, align: int) -> int:
    """Round to the nearest positive multiple of ``align``."""
    return max(align, int(round(n / align)) * align)


def dmr_grid_shape(total_points: float, align: int = 32) -> Tuple[int, int, int]:
    """A DMR-shaped grid with ~``total_points`` cells.

    The physical 2:1 aspect in x and z fixes nx = 2 nz; the y resolution is
    the free parameter the paper uses to hit target sizes (Sec. V-C).  All
    extents are multiples of ``align`` so three levels of factor-2
    coarsening stay blocking-factor aligned.
    """
    if total_points <= 0:
        raise ValueError("total_points must be positive")
    nz = round_align((total_points / 2.0) ** (1.0 / 3.0) / 1.3, align)
    nx = 2 * nz
    ny = round_align(total_points / (nx * nz), align)
    return (nx, ny, nz)


def auto_max_grid_size(level_pts: float, nranks: int, cal: Calibration) -> int:
    """Chop size giving each rank work, within [blocking_factor, max_grid_size].

    AMReX users tune ``max_grid_size`` per run; one box per rank of roughly
    (points/rank)^(1/3) is the standard choice, capped at the paper's 128.
    A box-count ceiling keeps the decomposition practical: beyond it the
    grids stay coarser-grained and some ranks idle on that level.
    """
    if level_pts <= 0 or nranks <= 0:
        raise ValueError("level_pts and nranks must be positive")
    target = (level_pts / max(1, min(nranks, cal.max_boxes_per_level))) ** (1.0 / 3.0)
    # guard against 15.9999... flooring one blocking unit short
    ms = int((target + 1e-9) // cal.blocking_factor) * cal.blocking_factor
    return int(min(cal.max_grid_size, max(cal.blocking_factor, ms)))


def lattice_box_size(extent: int, target: int, bf: int) -> int:
    """Largest divisor of ``extent`` that is a multiple of ``bf`` and <= target.

    Falls back to ``bf`` (which always divides blocking-aligned extents).
    """
    if extent % bf != 0:
        raise ValueError("extent must be a multiple of the blocking factor")
    best = bf
    for k in range(target // bf, 0, -1):
        cand = k * bf
        if extent % cand == 0:
            best = cand
            break
    return best


def shock_band_boxes(domain: Box, width_frac: float, cal: Calibration,
                     max_size: int) -> BoxArray:
    """Staircase of boxes along the DMR shock trace covering ~width_frac.

    Walks the y extent in blocking-aligned slabs; each slab gets a box in x
    centered on the local shock position, spanning the full z extent.
    """
    if not 0 < width_frac < 1:
        raise ValueError("width_frac must lie in (0, 1)")
    nx, ny, nz = domain.size()
    bf = cal.blocking_factor
    half_w = max(bf, int(width_frac * nx / 2))
    step = max(bf, min(max_size, ny))
    boxes: List[Box] = []
    y = domain.lo[1]
    while y <= domain.hi[1]:
        y1 = min(y + step - 1, domain.hi[1])
        xs0 = DMR_X0_FRAC * nx + DMR_SLOPE * nx * (y - domain.lo[1]) / ny
        xs1 = DMR_X0_FRAC * nx + DMR_SLOPE * nx * (y1 + 1 - domain.lo[1]) / ny
        x_lo = int(min(xs0, xs1)) - half_w
        x_hi = int(max(xs0, xs1)) + half_w
        # align outward to the blocking factor and clip to the domain
        x_lo = max(domain.lo[0], (x_lo // bf) * bf)
        x_hi = min(domain.hi[0], -(-(x_hi + 1) // bf) * bf - 1)
        slab = Box(
            IntVect(x_lo, y, domain.lo[2]),
            IntVect(x_hi, y1, domain.hi[2]),
        )
        boxes.extend(slab.max_size_chop(max_size))
        y = y1 + 1
    boxes.sort(key=lambda b: b.lo.tup())
    return BoxArray(boxes)


def build_hierarchy(spec: HierarchySpec) -> List[LevelDecomposition]:
    """Build the run's level decompositions (coarsest first)."""
    cal = spec.cal
    nx, ny, nz = spec.equiv_cells
    fine_domain = Box((0, 0, 0), (nx - 1, ny - 1, nz - 1))
    if not spec.amr:
        ms = auto_max_grid_size(fine_domain.num_pts(), spec.nranks, cal)
        size = tuple(
            lattice_box_size(fine_domain.size()[d], ms, cal.blocking_factor)
            for d in range(3)
        )
        return [LatticeLevel(0, fine_domain, size, spec.nranks)]

    r = cal.ref_ratio
    n_levels = cal.n_levels
    coarse_domain = fine_domain
    for _ in range(n_levels - 1):
        coarse_domain = coarse_domain.coarsen(r)
    fracs = _band_fractions(cal, n_levels)
    levels: List[LevelDecomposition] = []
    domain = coarse_domain
    for lev in range(n_levels):
        if lev == 0:
            ms = auto_max_grid_size(domain.num_pts(), spec.nranks, cal)
            size = tuple(
                lattice_box_size(domain.size()[d], ms, cal.blocking_factor)
                for d in range(3)
            )
            levels.append(LatticeLevel(0, domain, size, spec.nranks))
        else:
            frac = fracs[lev]
            est_pts = frac * domain.num_pts()
            ms = auto_max_grid_size(max(1.0, est_pts), spec.nranks, cal)
            ba = shock_band_boxes(domain, frac, cal, ms)
            dm = DistributionMapping.make(ba, spec.nranks, "sfc")
            levels.append(BoxLevel(lev, domain, ba, dm))
        if lev < n_levels - 1:
            domain = domain.refine(r)
    return levels


def _band_fractions(cal: Calibration, n_levels: int) -> Dict[int, float]:
    """Refined-area fraction per level (level 0 covers everything)."""
    fracs = {0: 1.0}
    if n_levels >= 2:
        fracs[1] = cal.band_fraction_mid
    for lev in range(2, n_levels):
        fracs[lev] = cal.band_fraction_fine
    return fracs


def dmr_band_hierarchy(total_equiv_points: float, nranks: int,
                       ranks_per_node: int, amr: bool,
                       cal: Calibration = CAL) -> List[LevelDecomposition]:
    """Convenience: shape + hierarchy for one scaling-study configuration."""
    shape = dmr_grid_shape(
        total_equiv_points,
        align=cal.blocking_factor * cal.ref_ratio ** (cal.n_levels - 1),
    )
    return build_hierarchy(HierarchySpec(shape, nranks, ranks_per_node, amr, cal))


def active_points(levels: Sequence[LevelDecomposition]) -> int:
    return sum(lev.num_pts() for lev in levels)


def amr_reduction(levels: Sequence[LevelDecomposition]) -> float:
    """Fraction of points saved vs the equivalent uniform fine grid."""
    equiv = levels[-1].domain.num_pts()
    return 1.0 - active_points(levels) / equiv


def coarse_fine_volumes(fine: LevelDecomposition, crse: LevelDecomposition,
                        ncomp: int, ngrow: int, ratio: int,
                        interface_fraction: float) -> Tuple[float, float]:
    """(max per-rank bytes, total bytes) of two-level interpolation gathers.

    The coarse source region of each fine box's ghost shell is gathered
    from the coarse level; only boxes at coarse/fine interfaces
    (``interface_fraction`` of them) actually have uncovered ghosts.
    """
    pts, ranks = fine.box_pts_and_ranks()
    side = np.cbrt(pts)
    shell = (side + 2 * ngrow) ** 3 - pts
    nbytes = shell / ratio**3 * 1.5 * ncomp * 8 * interface_fraction
    recv = np.zeros(fine.nranks)
    np.add.at(recv, ranks, nbytes)
    return float(recv.max()), float(nbytes.sum())


def averagedown_volumes(fine: LevelDecomposition, ncomp: int,
                        ratio: int) -> Tuple[float, float]:
    """(max per-rank bytes, total bytes) of fine->coarse restriction."""
    pts, ranks = fine.box_pts_and_ranks()
    nbytes = pts / ratio**3 * ncomp * 8
    send = np.zeros(fine.nranks)
    np.add.at(send, ranks, nbytes)
    return float(send.max()), float(nbytes.sum())
