"""Convective flux divergence via WENO reconstruction.

Implements the convective part of Eq. 1 in strong conservation-law form on
generalized curvilinear grids.  With computational coordinates ``xi_d``
(unit spacing) and metric vectors ``m_d = J grad(xi_d)``:

    d(J U)/dt + sum_d d(Fhat_d)/d(xi_d) = 0
    Fhat_d = [rho_s Uhat,  rho u_i Uhat + m_di p,  (E + p) Uhat]
    Uhat   = sum_j m_dj u_j        (J times the contravariant velocity)

Fluxes are split with a global (per-patch, per-direction) Lax-Friedrichs
splitting ``Fhat± = (Fhat ± alpha J U) / 2`` with ``alpha`` the largest
characteristic speed ``(|Uhat| + a |m_d|) / J``, and each part is
reconstructed at interfaces with the WENO-SYMBO scheme
(:mod:`repro.numerics.weno`) — upwind-biased for the plus part, mirrored
for the minus part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.numerics.metrics import Metrics
from repro.numerics.state import StateLayout
from repro.numerics.weno import WenoScheme, reconstruct_minus


def contravariant(vel: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Uhat = sum_j m_j u_j (J times the contravariant velocity)."""
    return np.einsum("j...,j...->...", m, vel)


def curvilinear_flux(
    layout: StateLayout, u: np.ndarray, vel: np.ndarray, p: np.ndarray,
    m: np.ndarray, form: str = "fused",
) -> np.ndarray:
    """Metric-weighted convective flux Fhat_d for one direction.

    ``form`` selects between two algebraically identical evaluations of the
    energy flux: ``fused`` computes ``(E + p) * Uhat`` while
    ``distributed`` computes ``E * Uhat + p * Uhat``.  The two round
    differently — the re-association freedom a compiler has, and the
    mechanism behind the paper's Fortran-vs-C++ floating-point drift
    (Sec. IV-A).
    """
    uhat = contravariant(vel, m)
    f = np.empty_like(u)
    f[layout.rho_s] = u[layout.rho_s] * uhat[None]
    for i in range(layout.dim):
        f[layout.mom(i)] = u[layout.mom(i)] * uhat + m[i] * p
    if form == "fused":
        f[layout.energy] = (u[layout.energy] + p) * uhat
    elif form == "distributed":
        f[layout.energy] = u[layout.energy] * uhat + p * uhat
    else:
        raise ValueError(f"unknown flux form {form!r}")
    if layout.nscalars:
        f[layout.scalar_slice] = u[layout.scalar_slice] * uhat[None]
    return f


def wave_speed(
    vel: np.ndarray, a: np.ndarray, m: np.ndarray, J: np.ndarray,
) -> np.ndarray:
    """Largest characteristic speed (|Uhat| + a |m|) / J per cell."""
    uhat = contravariant(vel, m)
    mnorm = np.sqrt(np.einsum("j...,j...->...", m, m))
    return (np.abs(uhat) + a * mnorm) / J


@dataclass
class ConvectiveFlux:
    """Configured convective-flux operator (scheme + splitting).

    ``split_form`` is forwarded to :func:`curvilinear_flux` as ``form`` —
    the fortran backend uses ``fused`` and the translated cpp/gpu backends
    ``distributed``, reproducing compiler re-association drift.

    ``characteristic`` switches from component-wise to characteristic-wise
    reconstruction: stencil fluxes are projected onto Roe-averaged
    eigenvectors per interface before the WENO combination
    (:mod:`repro.numerics.characteristic`) — the robust production choice
    for very strong shocks.  Single-species ideal gas only.
    """

    scheme: WenoScheme = WenoScheme()
    split_form: str = "fused"
    characteristic: bool = False

    @property
    def nghost(self) -> int:
        return self.scheme.nghost

    def divergence(
        self,
        layout: StateLayout,
        eos,
        u: np.ndarray,
        metrics: Metrics,
        direction: int,
        ng: int,
    ) -> np.ndarray:
        """-(1/J) d(Fhat_d)/d(xi_d) over the valid region.

        ``u`` covers the valid box grown by ``ng >= nghost + 1`` ghost
        cells; metric arrays must broadcast over the same grown shape.
        """
        if ng < self.nghost:
            raise ValueError(f"need at least {self.nghost} ghost cells, got {ng}")
        axis = direction + 1
        dim = layout.dim
        rho, vel, p = eos.primitives(layout, u)
        a = eos.sound_speed(layout, u)
        m = metrics.m(direction)
        J = metrics.jacobian()

        fhat = curvilinear_flux(layout, u, vel, p, m, form=self.split_form)
        lam = wave_speed(vel, a, m, J)
        alpha = float(lam.max())
        # split against q = J U (J is the time-independent cell Jacobian)
        ju = u * np.broadcast_to(J, lam.shape)[None]
        fplus = 0.5 * (fhat + alpha * ju)
        fminus = 0.5 * (fhat - alpha * ju)

        if self.characteristic:
            f_iface = self._characteristic_interface(
                layout, eos, u, fplus, fminus, m, axis
            )
        else:
            rec_p = self.scheme.reconstruct(fplus, axis)
            rec_m = reconstruct_minus(self.scheme, fminus, axis)
            f_iface = rec_p + rec_m

        # keep interfaces -1/2 .. nvalid-1/2 of the valid region
        nv = u.shape[axis] - 2 * ng
        start = ng - 3
        sl = [slice(None)] * f_iface.ndim
        sl[axis] = slice(start, start + nv + 1)
        f_iface = f_iface[tuple(sl)]

        df = np.diff(f_iface, axis=axis)
        # crop transverse directions to the valid region
        crop = [slice(None)] * df.ndim
        for d in range(dim):
            if d != direction:
                crop[d + 1] = slice(ng, df.shape[d + 1] - ng)
        df = df[tuple(crop)]
        Jv = _crop_to_valid(np.broadcast_to(J, u.shape[1:]), ng, df.shape[1:])
        return -df / Jv

    def _characteristic_interface(
        self, layout: StateLayout, eos, u: np.ndarray,
        fplus: np.ndarray, fminus: np.ndarray, m: np.ndarray, axis: int,
    ) -> np.ndarray:
        """Interface fluxes via Roe-eigenvector-projected reconstruction."""
        from repro.numerics.characteristic import (
            left_right_eigenvectors,
            project,
            roe_average,
        )

        if layout.nspecies != 1 or not hasattr(eos, "gamma"):
            raise ValueError(
                "characteristic reconstruction supports single-species "
                "ideal gas only"
            )
        # move the sweep axis last so interface slicing is uniform
        uu = np.moveaxis(u, axis, -1)
        fp = np.moveaxis(fplus, axis, -1)
        fm = np.moveaxis(fminus, axis, -1)
        mm = np.moveaxis(np.broadcast_to(m, (layout.dim,) + u.shape[1:]),
                         axis, -1)
        n_cells = uu.shape[-1]
        nif = n_cells - 5  # interfaces right of cells 2 .. n-4
        ul = uu[..., 2: 2 + nif]
        ur = uu[..., 3: 3 + nif]
        vel, H, a = roe_average(layout, eos, ul, ur)
        mmean = 0.5 * (mm[..., 2: 2 + nif] + mm[..., 3: 3 + nif])
        mmean = np.broadcast_to(mmean, (layout.dim,) + a.shape)
        nvec = mmean / np.sqrt((mmean**2).sum(axis=0))[None]
        L, R = left_right_eigenvectors(layout, eos.gamma, vel, H, a, nvec)
        cells_p = [project(L, fp[..., 2 + o: 2 + o + nif])
                   for o in range(-2, 4)]
        cells_m = [project(L, fm[..., 2 + o: 2 + o + nif])
                   for o in range(-2, 4)]
        w = self.scheme.combine(cells_p) + self.scheme.combine_minus(cells_m)
        f_iface = project(R, w)
        return np.moveaxis(f_iface, -1, axis)

    def max_wave_speed_sum(
        self, layout: StateLayout, eos, u: np.ndarray, metrics: Metrics,
    ) -> float:
        """max over cells of sum_d (|Uhat_d| + a |m_d|)/J — the CFL rate."""
        rho, vel, p = eos.primitives(layout, u)
        a = eos.sound_speed(layout, u)
        J = metrics.jacobian()
        total = np.zeros(np.broadcast_shapes(a.shape, np.shape(J)))
        for d in range(layout.dim):
            total = total + wave_speed(vel, a, metrics.m(d), J)
        return float(total.max())


def _crop_to_valid(arr: np.ndarray, ng: int, valid_shape: Tuple[int, ...]) -> np.ndarray:
    """Crop a (possibly broadcast, size-1-axis) array to the valid region."""
    sl = []
    for n, nv in zip(arr.shape, valid_shape):
        if n == nv:
            sl.append(slice(None))
        elif n == 1:
            sl.append(slice(None))
        else:
            sl.append(slice(ng, ng + nv))
    return arr[tuple(sl)]
