"""Characteristic-wise flux projection (Roe eigenvectors).

Production WENO practice for strong shocks — and the way Martin et al.
apply WENO-SYMBO in CRoCCo — reconstructs the split fluxes in *local
characteristic variables*: at each interface the stencil fluxes are
projected onto the left eigenvectors of the Roe-averaged flux Jacobian,
reconstructed field by field, and projected back.  Component-wise
reconstruction (the default here) is cheaper but mixes waves, which costs
accuracy/robustness at very strong shocks.

Eigenvector convention (ideal gas, direction of unit normal ``n``; for a
curvilinear direction ``n = m_d / |m_d|``): right eigenvectors ordered as
(u.n - a, entropy, shear..., u.n + a) with orthonormal tangents completing
the basis.  ``left_right_eigenvectors`` returns (L, R) with
``L @ R = I``; see the unit tests for the verification against the exact
flux Jacobian.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.numerics.state import StateLayout


def orthonormal_tangents(n: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Unit tangent vectors completing ``n`` (dim, ...) to an orthonormal basis."""
    dim = n.shape[0]
    if dim == 1:
        return ()
    if dim == 2:
        t = np.empty_like(n)
        t[0] = -n[1]
        t[1] = n[0]
        return (t,)
    # dim == 3: pick the smallest |component| axis to cross with
    t1 = np.empty_like(n)
    abs_n = np.abs(n)
    use_x = (abs_n[0] <= abs_n[1]) & (abs_n[0] <= abs_n[2])
    use_y = ~use_x & (abs_n[1] <= abs_n[2])
    ex = np.zeros_like(n)
    ex[0] = np.where(use_x, 1.0, 0.0)
    ex[1] = np.where(use_y, 1.0, 0.0)
    ex[2] = np.where(~use_x & ~use_y, 1.0, 0.0)
    # t1 = normalize(ex x n)
    t1[0] = ex[1] * n[2] - ex[2] * n[1]
    t1[1] = ex[2] * n[0] - ex[0] * n[2]
    t1[2] = ex[0] * n[1] - ex[1] * n[0]
    t1 /= np.sqrt((t1**2).sum(axis=0))[None]
    t2 = np.empty_like(n)
    t2[0] = n[1] * t1[2] - n[2] * t1[1]
    t2[1] = n[2] * t1[0] - n[0] * t1[2]
    t2[2] = n[0] * t1[1] - n[1] * t1[0]
    return (t1, t2)


def roe_average(layout: StateLayout, eos, ul: np.ndarray, ur: np.ndarray):
    """Roe-averaged (velocity, enthalpy, sound speed) between two states.

    ``ul``/``ur`` are conservative arrays (ncomp, ...).  Single-species
    calorically perfect gas.
    """
    g = eos.gamma
    rl = layout.density(ul)
    rr = layout.density(ur)
    wl = np.sqrt(rl)
    wr = np.sqrt(rr)
    vel_l = layout.velocity(ul)
    vel_r = layout.velocity(ur)
    pl = eos.pressure(layout, ul)
    pr = eos.pressure(layout, ur)
    hl = (ul[layout.energy] + pl) / rl
    hr = (ur[layout.energy] + pr) / rr
    inv = 1.0 / (wl + wr)
    vel = (wl[None] * vel_l + wr[None] * vel_r) * inv[None]
    H = (wl * hl + wr * hr) * inv
    q2 = (vel**2).sum(axis=0)
    a2 = (g - 1.0) * np.maximum(H - 0.5 * q2, 1e-30)
    return vel, H, np.sqrt(a2)


def left_right_eigenvectors(
    layout: StateLayout, gamma: float,
    vel: np.ndarray, H: np.ndarray, a: np.ndarray, n: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """(L, R) eigenvector matrices, shape (ncomp, ncomp, ...).

    Rows of L / columns of R are ordered: acoustic-minus, entropy,
    shear(s), acoustic-plus.  L @ R = I exactly (up to roundoff).
    """
    dim = layout.dim
    nc = layout.ncons
    shape = a.shape
    un = (vel * n).sum(axis=0)
    q2 = (vel**2).sum(axis=0)
    tangents = orthonormal_tangents(n)
    b1 = (gamma - 1.0) / a**2
    b2 = 0.5 * b1 * q2

    R = np.zeros((nc, nc) + shape)
    L = np.zeros((nc, nc) + shape)

    # column/row layout: 0 = u.n - a, 1 = entropy, 2.. = shear, last = u.n + a
    last = nc - 1

    # right eigenvectors
    R[0, 0] = 1.0
    R[0, 1] = 1.0
    R[0, last] = 1.0
    for d in range(dim):
        R[1 + d, 0] = vel[d] - a * n[d]
        R[1 + d, 1] = vel[d]
        R[1 + d, last] = vel[d] + a * n[d]
    R[last, 0] = H - a * un
    R[last, 1] = 0.5 * q2
    R[last, last] = H + a * un
    for k, t in enumerate(tangents):
        col = 2 + k
        ut = (vel * t).sum(axis=0)
        for d in range(dim):
            R[1 + d, col] = t[d]
        R[last, col] = ut

    # left eigenvectors
    L[0, 0] = 0.5 * (b2 + un / a)
    L[1, 0] = 1.0 - b2
    L[last, 0] = 0.5 * (b2 - un / a)
    for d in range(dim):
        L[0, 1 + d] = -0.5 * (b1 * vel[d] + n[d] / a)
        L[1, 1 + d] = b1 * vel[d]
        L[last, 1 + d] = -0.5 * (b1 * vel[d] - n[d] / a)
    L[0, last] = 0.5 * b1
    L[1, last] = -b1
    L[last, last] = 0.5 * b1
    for k, t in enumerate(tangents):
        row = 2 + k
        ut = (vel * t).sum(axis=0)
        L[row, 0] = -ut
        for d in range(dim):
            L[row, 1 + d] = t[d]
    return L, R


def project(mat: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Apply a per-point matrix (nc, nc, ...) to a state array (nc, ...)."""
    return np.einsum("ab...,b...->a...", mat, q)
