"""Chemical source terms (the w_s of Eq. 1).

The paper's governing equations include the rate of production of each
species by chemical reactions; CRoCCo's chemically-reacting mode supplies
them.  We implement the canonical model problem: a single-step,
irreversible, first-order Arrhenius reaction

    A -> B,    dW_A/dt = -k(T) rho_A,    k(T) = A_pre T^b exp(-T_a / T).

Heat release needs no explicit energy source: total energy E already
contains the formation enthalpies (Eq. 2), so converting species with
higher h0 into species with lower h0 at fixed E raises the temperature —
exactly how the conservative formulation releases chemical energy.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.numerics.eos import MixtureEOS
from repro.numerics.state import StateLayout


@dataclass(frozen=True)
class ArrheniusReaction:
    """Single-step irreversible reaction between two species of a mixture.

    ``reactant`` and ``product`` index the mixture's species list.  The
    rate constant is k(T) = pre_exponential * T**temp_exponent *
    exp(-activation_temperature / T) with first-order kinetics in the
    reactant partial density.
    """

    reactant: int = 0
    product: int = 1
    pre_exponential: float = 1.0e6
    temp_exponent: float = 0.0
    activation_temperature: float = 8000.0

    def rate_constant(self, T: np.ndarray) -> np.ndarray:
        T = np.maximum(T, 1e-30)
        return (self.pre_exponential * T**self.temp_exponent
                * np.exp(-self.activation_temperature / T))

    def source(self, layout: StateLayout, eos: MixtureEOS,
               u: np.ndarray) -> np.ndarray:
        """Conservative source array (ncons, ...): only species entries set."""
        if layout.nspecies < 2:
            raise ValueError("a reaction needs at least two species")
        if not isinstance(eos, MixtureEOS):
            raise TypeError("chemistry requires a MixtureEOS")
        for idx in (self.reactant, self.product):
            if not 0 <= idx < layout.nspecies:
                raise ValueError(f"species index {idx} out of range")
        T = eos.temperature(layout, u)
        k = self.rate_constant(T)
        w = k * np.maximum(u[self.reactant], 0.0)
        out = np.zeros_like(u)
        out[self.reactant] = -w
        out[self.product] = w
        return out

    def heat_release(self, eos: MixtureEOS) -> float:
        """Specific heat release q = h0_reactant - h0_product [J/kg]."""
        return (eos.species[self.reactant].h_formation
                - eos.species[self.product].h_formation)


def ignition_delay_estimate(reaction: ArrheniusReaction, T0: float) -> float:
    """Rough induction-time scale 1/k(T0) (useful for choosing dt/t_end)."""
    return float(1.0 / reaction.rate_constant(np.asarray(T0)))
