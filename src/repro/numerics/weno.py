"""Bandwidth-optimized symmetric WENO (WENO-SYMBO) reconstruction.

Following Martin, Taylor, Wu & Weirs (JCP 2006), the flux at interface
``i+1/2`` is reconstructed from **four** 3-point candidate stencils placed
symmetrically around the interface (three upwind-biased plus one downwind):

    r=0: cells (i-2, i-1, i)      r=1: cells (i-1, i, i+1)
    r=2: cells (i,  i+1, i+2)     r=3: cells (i+1, i+2, i+3)

Each candidate's interface value and Jiang-Shu-type smoothness indicator
are derived *from first principles* here (polynomial reconstruction from
cell averages and exact quadrature of derivative energies over cell i), so
the downwind stencil gets a consistent smoothness measure instead of an
ad-hoc one.  Symmetric linear weights make the underlying linear scheme
central (zero dissipation); the choice of the free weight parameter is

- ``symoo``: maximum formal order (6th), C = (1/20, 9/20, 9/20, 1/20),
- ``symbo``: bandwidth-optimized — the free parameter minimizes the
  integrated modified-wavenumber error of the full flux-difference
  operator up to a cutoff wavenumber, trading formal order for resolving
  efficiency exactly as Martin et al. do.

Near discontinuities a relative-smoothness limiter disables the downwind
stencil so the scheme falls back to upwind-biased WENO, which provides
the dissipation needed for shock capturing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

#: relative smoothness regularization: the effective epsilon is
#: WENO_EPS times the local mean-square data magnitude, so the weights are
#: scale-invariant — small absolute epsilons famously degrade WENO to
#: low order at smooth critical points, while absolute large ones break
#: shock capturing for small-amplitude data.
WENO_EPS = 1e-2

#: absolute floor guarding against identically-zero data
WENO_EPS_FLOOR = 1e-99  # squaring must not underflow to zero

#: relative-smoothness ratio above which the downwind stencil is disabled
DOWNWIND_LIMIT_RATIO = 5.0

#: candidate stencil cell offsets relative to cell i, interface at i+1/2
CANDIDATE_OFFSETS: Tuple[Tuple[int, ...], ...] = (
    (-2, -1, 0),
    (-1, 0, 1),
    (0, 1, 2),
    (1, 2, 3),
)


def _cell_average_matrix(offsets: Sequence[int]) -> np.ndarray:
    """Rows: cell-average functionals of the monomial basis {1, x, x^2}.

    Cell c covers [c - 1/2, c + 1/2]; the average of x^k over it is
    ((c+1/2)^{k+1} - (c-1/2)^{k+1}) / (k+1).
    """
    n = len(offsets)
    m = np.empty((n, n))
    for row, c in enumerate(offsets):
        for k in range(n):
            m[row, k] = ((c + 0.5) ** (k + 1) - (c - 0.5) ** (k + 1)) / (k + 1)
    return m


@lru_cache(maxsize=None)
def interface_coefficients(offsets: Tuple[int, ...]) -> np.ndarray:
    """Coefficients c_j with q = sum_j c_j vbar_j reconstructing f(1/2).

    ``vbar_j`` are cell averages on cells ``offsets``; the reconstruction
    polynomial is evaluated at the interface x = +1/2.
    """
    m = _cell_average_matrix(offsets)
    # value at x = 1/2 of each monomial
    val = np.array([0.5**k for k in range(len(offsets))])
    return np.linalg.solve(m.T, val)


@lru_cache(maxsize=None)
def smoothness_matrix(offsets: Tuple[int, ...]) -> np.ndarray:
    """Quadratic form M with beta = vbar^T M vbar (Jiang-Shu indicator).

    beta = sum_{l=1}^{2} integral_{-1/2}^{1/2} (d^l p / dx^l)^2 dx with the
    usual Delta^(2l-1) normalization (Delta = 1 here).  For the standard
    upwind stencils this reproduces the classic Jiang-Shu formulas; for the
    downwind stencil it measures the candidate polynomial's roughness *over
    cell i*, giving a consistent indicator.
    """
    m = _cell_average_matrix(offsets)
    minv = np.linalg.inv(m)  # monomial coeffs = minv @ vbar
    n = len(offsets)
    mat = np.zeros((n, n))
    # p(x) = a0 + a1 x + a2 x^2 ; p' = a1 + 2 a2 x ; p'' = 2 a2
    # int_{-1/2}^{1/2} p'^2 = a1^2 + (1/3) a2^2
    # int_{-1/2}^{1/2} p''^2 = 4 a2^2
    q = np.zeros((n, n))
    q[1, 1] += 1.0
    q[2, 2] += 1.0 / 3.0 + 4.0
    mat = minv.T @ q @ minv
    return mat


def _classic_upwind_weights() -> np.ndarray:
    """Optimal weights of 5th-order WENO-JS over the three upwind stencils."""
    return np.array([0.1, 0.6, 0.3])


def symmetric_weights(c0: float) -> np.ndarray:
    """Symmetric linear weights (c0, 1/2 - c0, 1/2 - c0, c0)."""
    if not 0.0 < c0 < 0.5:
        raise ValueError("c0 must lie in (0, 0.5)")
    return np.array([c0, 0.5 - c0, 0.5 - c0, c0])


def modified_wavenumber(c0: float, k: np.ndarray) -> np.ndarray:
    """Modified wavenumber of the linear symmetric scheme's d/dx operator.

    The flux-difference operator (qhat_{i+1/2} - qhat_{i-1/2}) applied to
    e^{Ikx}; symmetric weights make it purely real (dispersive only).
    """
    weights = symmetric_weights(c0)
    # combined interface coefficients on offsets -2..3
    comb = np.zeros(6)
    for w, offs in zip(weights, CANDIDATE_OFFSETS):
        cr = interface_coefficients(offs)
        for c, o in zip(cr, offs):
            comb[o + 2] += w * c
    # derivative coefficients b_j on f_{i+j}, j = -3..3
    b = np.zeros(7)
    b[1:7] += comb  # qhat_{i+1/2} at offsets -2..3 -> j index shift +3... see below
    b[0:6] -= comb  # qhat_{i-1/2} uses offsets shifted by -1
    j = np.arange(-3, 4)
    return np.array([np.sum(b * np.sin(jj * kk)) for kk in np.atleast_1d(k)
                     for jj in [j]]).reshape(np.shape(k))


def derive_symbo_c0(k_cut: float = 2.0, n_quad: int = 400) -> float:
    """Bandwidth-optimize the free symmetric weight parameter.

    Minimizes  E(c0) = int_0^{k_cut} (k'(k) - k)^2 dk  over c0, the
    integrated dispersion error of the linear scheme up to ``k_cut``
    (radians per cell).  E is quadratic in c0, so the optimum is exact:
    k'(k; c0) is affine in c0.
    """
    k = np.linspace(1e-4, k_cut, n_quad)
    # k' is affine in c0: evaluate at two points and solve the quadratic min
    ka = modified_wavenumber(0.01, k)
    kb = modified_wavenumber(0.26, k)
    slope = (kb - ka) / (0.26 - 0.01)
    base = ka - slope * 0.01  # k'(k; 0)
    err0 = base - k
    # E(c0) = int (err0 + slope c0)^2 -> c0* = -int(err0*slope)/int(slope^2)
    num = np.trapezoid(err0 * slope, k)
    den = np.trapezoid(slope * slope, k)
    c0 = -num / den
    return float(np.clip(c0, 1e-4, 0.49))


#: maximum-order symmetric weights (6th order)
SYMOO_C0 = 0.05

#: bandwidth-optimized weight parameter (derived by derive_symbo_c0();
#: tests re-derive and compare)
SYMBO_C0 = derive_symbo_c0()


@dataclass(frozen=True)
class WenoScheme:
    """A configured WENO reconstruction scheme."""

    variant: str = "symbo"  # "symbo" | "symoo" | "js5"
    eps: float = WENO_EPS
    downwind_limit: float = DOWNWIND_LIMIT_RATIO

    def linear_weights(self) -> np.ndarray:
        if self.variant == "symbo":
            return symmetric_weights(SYMBO_C0)
        if self.variant == "symoo":
            return symmetric_weights(SYMOO_C0)
        if self.variant == "js5":
            return _classic_upwind_weights()
        raise ValueError(f"unknown WENO variant {self.variant!r}")

    @property
    def n_stencils(self) -> int:
        return 3 if self.variant == "js5" else 4

    @property
    def nghost(self) -> int:
        """Ghost cells needed on each side to reconstruct all interfaces."""
        return 3

    def combine(self, cells) -> np.ndarray:
        """Upwind-biased WENO combination of one 6-point stencil.

        ``cells`` is a sequence of 6 same-shaped arrays holding values at
        offsets -2..3 relative to the cell left of the interface.  Returns
        the reconstructed interface value.  This is the reconstruction
        primitive: :meth:`reconstruct` applies it along an axis, and the
        characteristic-wise flux path applies it to eigenvector-projected
        stencils (:mod:`repro.numerics.characteristic`).
        """
        if len(cells) != 6:
            raise ValueError("combine expects the 6 stencil values (offsets -2..3)")
        nst = self.n_stencils
        weights = self.linear_weights()
        qs = []
        betas = []
        for r in range(nst):
            offs = CANDIDATE_OFFSETS[r]
            cr = interface_coefficients(offs)
            mr = smoothness_matrix(offs)
            vals = [cells[o + 2] for o in offs]
            qs.append(sum(c * v for c, v in zip(cr, vals)))
            betas.append(sum(
                mr[a, b] * vals[a] * vals[b]
                for a in range(3)
                for b in range(3)
            ))
        # scale-relative regularization: eps_eff ~ eps * <v^2> over the
        # full stencil, making the nonlinear weights scale-invariant
        scale2 = sum(c**2 for c in cells) / 6.0
        eps_eff = self.eps * scale2 + WENO_EPS_FLOOR
        alphas = [weights[r] / (eps_eff + betas[r]) ** 2 for r in range(nst)]
        if nst == 4:
            # Downwind-weight cap (Martin et al.): the normalized downwind
            # weight may never exceed its optimal value C3, i.e. the scheme
            # is never *more* central than the linear optimum.  Without
            # this the nonlinear weights can turn anti-dissipative and the
            # central symmetric scheme is unstable even for smooth
            # advection.  omega3 <= C3  <=>  alpha3 <= C3/(1-C3) * sum(rest).
            upwind_sum = alphas[0] + alphas[1] + alphas[2]
            cap = weights[3] / (1.0 - weights[3]) * upwind_sum
            alphas[3] = np.minimum(alphas[3], cap)
            if self.downwind_limit > 0:
                # relative-smoothness limiter: fully disable the downwind
                # stencil when any candidate sees a discontinuity
                bmin = np.minimum(np.minimum(betas[0], betas[1]), betas[2])
                bmax = np.maximum(np.maximum(betas[0], betas[1]), betas[2])
                rough = np.maximum(bmax, betas[3]) > self.downwind_limit * (
                    bmin + eps_eff
                )
                alphas[3] = np.where(rough, 0.0, alphas[3])
        asum = sum(alphas)
        return sum(a * q for a, q in zip(alphas, qs)) / asum

    def combine_minus(self, cells) -> np.ndarray:
        """Mirror-image combination: stencils biased from the right.

        Reflecting about the interface maps offset o to 1 - o, i.e. the
        reversed cell list.
        """
        return self.combine(list(cells)[::-1])

    def reconstruct(self, v: np.ndarray, axis: int) -> np.ndarray:
        """Upwind-biased reconstruction of interface values at i+1/2.

        ``v`` holds point/flux values including ghost cells along ``axis``.
        With n input cells the output covers the n - 5 interfaces whose
        full 6-point stencil (offsets -2..3) is available; the first output
        is the interface right of input cell 2.

        For the mirrored (downwind, F-) reconstruction use
        :func:`reconstruct_minus`.
        """
        v = np.moveaxis(v, axis, -1)
        n = v.shape[-1]
        nout = n - 5
        if nout < 1:
            raise ValueError("not enough cells for WENO reconstruction")
        i0 = 2  # first interface cell: needs i-2 >= 0 and i+3 <= n-1
        cells = [v[..., i0 + o: i0 + o + nout] for o in range(-2, 4)]
        out = self.combine(cells)
        return np.moveaxis(out, -1, axis)


def reconstruct_minus(scheme: WenoScheme, v: np.ndarray, axis: int) -> np.ndarray:
    """Mirror-image reconstruction (for the negative flux split F-).

    Reconstructs at the same interfaces as ``scheme.reconstruct`` but with
    stencils biased from the right, by flipping, reconstructing, and
    flipping back.
    """
    flipped = np.flip(v, axis=axis)
    rec = scheme.reconstruct(flipped, axis)
    return np.flip(rec, axis=axis)
