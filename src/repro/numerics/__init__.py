"""High-fidelity compressible-flow numerics (the CRoCCo kernels' math).

Implements the schemes of Sec. II-A of the paper:

- conservative compressible Navier-Stokes (optionally multi-species) via
  :mod:`repro.numerics.eos` and :mod:`repro.numerics.state`,
- bandwidth-optimized symmetric WENO (WENO-SYMBO) convective flux
  reconstruction (:mod:`repro.numerics.weno`,
  :mod:`repro.numerics.fluxes`),
- 4th-order central viscous fluxes (:mod:`repro.numerics.viscous`),
- Williamson low-storage 3rd-order Runge-Kutta time integration
  (:mod:`repro.numerics.rk3`),
- CFL-constrained time-step estimation (:mod:`repro.numerics.cfl`),
- generalized curvilinear grid metrics, 27 stored components as in the
  paper (:mod:`repro.numerics.metrics`),
- characteristic-wise (Roe eigenvector) reconstruction
  (:mod:`repro.numerics.characteristic`),
- Arrhenius chemistry sources, the w_s of Eq. 1
  (:mod:`repro.numerics.chemistry`),
- the Smagorinsky SGS closure of the LES mode
  (:mod:`repro.numerics.sgs`).
"""

from repro.numerics.state import StateLayout
from repro.numerics.eos import IdealGasEOS, Species, MixtureEOS

__all__ = ["StateLayout", "IdealGasEOS", "Species", "MixtureEOS"]
