"""Conservative state vector layout.

CRoCCo solves the conservation equations for species mass, momentum, and
total energy (Eq. 1 of the paper).  The conservative state is laid out as

    [rho_1 .. rho_ns,  rho*u_1 .. rho*u_dim,  E,  rho*s_1 .. rho*s_nsc]

so a single-species 3D run has the familiar 5 components; optional
transported scalars (e.g. the subgrid kinetic energy of the one-equation
LES closure, or passive tracers) follow the energy.  The layout object
centralizes component indexing for every kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np


@dataclass(frozen=True)
class StateLayout:
    """Component indices for the conservative state vector."""

    nspecies: int = 1
    dim: int = 3
    nscalars: int = 0

    def __post_init__(self) -> None:
        if self.nspecies < 1:
            raise ValueError("need at least one species")
        if self.dim not in (1, 2, 3):
            raise ValueError("dim must be 1, 2 or 3")
        if self.nscalars < 0:
            raise ValueError("nscalars must be non-negative")

    @property
    def ncons(self) -> int:
        """Number of conservative components."""
        return self.nspecies + self.dim + 1 + self.nscalars

    @property
    def rho_s(self) -> slice:
        """Species partial densities rho_s."""
        return slice(0, self.nspecies)

    def mom(self, d: int) -> int:
        """Momentum component rho*u_d."""
        if not 0 <= d < self.dim:
            raise IndexError(f"direction {d} out of range for dim {self.dim}")
        return self.nspecies + d

    @property
    def mom_slice(self) -> slice:
        return slice(self.nspecies, self.nspecies + self.dim)

    @property
    def energy(self) -> int:
        """Total energy per unit volume E."""
        return self.nspecies + self.dim

    def scalar(self, k: int) -> int:
        """Transported scalar rho*s_k (after the energy component)."""
        if not 0 <= k < self.nscalars:
            raise IndexError(f"scalar {k} out of range for {self.nscalars}")
        return self.nspecies + self.dim + 1 + k

    @property
    def scalar_slice(self) -> slice:
        return slice(self.nspecies + self.dim + 1, self.ncons)

    def density(self, u: np.ndarray) -> np.ndarray:
        """Total density rho = sum_s rho_s."""
        return u[self.rho_s].sum(axis=0)

    def velocity(self, u: np.ndarray) -> np.ndarray:
        """Mass-averaged velocity components, shape (dim, ...)."""
        rho = self.density(u)
        return u[self.mom_slice] / rho[None]

    def kinetic_energy(self, u: np.ndarray) -> np.ndarray:
        """1/2 rho u_i u_i."""
        rho = self.density(u)
        return 0.5 * (u[self.mom_slice] ** 2).sum(axis=0) / rho

    def mass_fractions(self, u: np.ndarray) -> np.ndarray:
        """Y_s = rho_s / rho, shape (nspecies, ...)."""
        return u[self.rho_s] / self.density(u)[None]
