"""Subgrid-scale (SGS) models for large eddy simulation.

CRoCCo's LES mode solves the filtered form of Eq. 1 with SGS models
validated for hypersonic turbulence (Sec. II-A: "allows for a 90%
reduction in grid size relative to DNS").  We implement the baseline
Smagorinsky closure as an eddy-viscosity augmentation of the viscous
operator:

    mu_t = rho (C_s Delta)^2 |S|,    |S| = sqrt(2 S_ij S_ij)

with Delta the local filter width (cube root of the cell volume, i.e. the
Jacobian) and optional Van Driest-style clipping.  The eddy viscosity
adds to the molecular viscosity inside :class:`~repro.numerics.viscous.
ViscousFlux`, and an eddy conductivity kappa_t = mu_t cp / Pr_t closes the
SGS heat flux.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.numerics.metrics import Metrics, derivative_same_shape
from repro.numerics.state import StateLayout
from repro.numerics.viscous import ViscousFlux


@dataclass(frozen=True)
class Smagorinsky:
    """The Smagorinsky eddy-viscosity model."""

    cs: float = 0.17
    prandtl_t: float = 0.9
    #: ceiling on mu_t / mu_molecular (guards against runaway values at
    #: under-resolved shocks, where LES closures are not meant to act)
    max_ratio: float = 100.0

    def strain_magnitude(self, layout: StateLayout, u: np.ndarray,
                         metrics: Metrics, order: int = 4) -> np.ndarray:
        """|S| = sqrt(2 S_ij S_ij) from curvilinear velocity gradients."""
        dim = layout.dim
        shape = u.shape[1:]
        vel = layout.velocity(u)
        J = np.broadcast_to(metrics.jacobian(), shape)
        m = [np.broadcast_to(metrics.m(d), (dim,) + shape) for d in range(dim)]
        gvel = np.zeros((dim, dim) + shape)
        for i in range(dim):
            dphi = [derivative_same_shape(vel[i], axis=d, order=order)
                    for d in range(dim)]
            for j in range(dim):
                for d in range(dim):
                    gvel[i, j] += m[d][j] * dphi[d]
        gvel /= J[None, None]
        s2 = np.zeros(shape)
        for i in range(dim):
            for j in range(dim):
                sij = 0.5 * (gvel[i, j] + gvel[j, i])
                s2 += 2.0 * sij * sij
        return np.sqrt(s2)

    def eddy_viscosity(self, layout: StateLayout, u: np.ndarray,
                       metrics: Metrics) -> np.ndarray:
        """mu_t = rho (C_s Delta)^2 |S| with Delta = J^(1/dim)."""
        rho = layout.density(u)
        J = np.broadcast_to(metrics.jacobian(), rho.shape)
        delta = J ** (1.0 / layout.dim)
        return rho * (self.cs * delta) ** 2 * self.strain_magnitude(
            layout, u, metrics
        )


class LesViscousFlux(ViscousFlux):
    """Viscous operator with Smagorinsky eddy viscosity added.

    The effective viscosity mu + mu_t enters both the stress tensor and
    (through Pr_t) the heat flux — the filtered-equation closure CRoCCo's
    LES mode applies.
    """

    def __init__(self, mu_fn: Callable[[np.ndarray], np.ndarray],
                 model: Smagorinsky | None = None, prandtl: float = 0.72,
                 order: int = 4) -> None:
        super().__init__(mu_fn=mu_fn, prandtl=prandtl, order=order)
        self.model = model if model is not None else Smagorinsky()
        self._metrics: Metrics | None = None
        self._layout: StateLayout | None = None
        self._state: np.ndarray | None = None

    def divergence(self, layout, eos, u, metrics, ng):
        # capture context so the effective-viscosity law can see the flow
        self._metrics = metrics
        self._layout = layout
        self._state = u
        base_mu_fn = self.mu_fn
        model = self.model

        def effective_mu(T: np.ndarray) -> np.ndarray:
            mu = base_mu_fn(T)
            mu_t = model.eddy_viscosity(layout, u, metrics)
            mu_t = np.minimum(mu_t, model.max_ratio * np.maximum(mu, 1e-300))
            return mu + mu_t

        self.__dict__["mu_fn"] = effective_mu
        try:
            return super().divergence(layout, eos, u, metrics, ng)
        finally:
            self.__dict__["mu_fn"] = base_mu_fn


@dataclass(frozen=True)
class KEquationSGS:
    """One-equation SGS model: transported subgrid kinetic energy.

    The subgrid kinetic energy k_sgs is carried as a transported scalar
    (conservative variable rho*k, ``layout.scalar(scalar_index)``):

        mu_t = C_k rho sqrt(k) Delta
        d(rho k)/dt + conv + diff = P - eps
        P   = mu_t |S|^2                (production from resolved strain)
        eps = C_e rho k^(3/2) / Delta   (dissipation)

    A step up from the algebraic Smagorinsky closure: k carries memory of
    the subgrid state, the standard second model in LES codes like
    CRoCCo's.
    """

    c_k: float = 0.094
    c_e: float = 1.048
    scalar_index: int = 0
    max_ratio: float = 100.0

    def k_sgs(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        """Subgrid kinetic energy per unit mass (floored at 0)."""
        rho = layout.density(u)
        return np.maximum(u[layout.scalar(self.scalar_index)] / rho, 0.0)

    def eddy_viscosity(self, layout: StateLayout, u: np.ndarray,
                       metrics: Metrics) -> np.ndarray:
        rho = layout.density(u)
        J = np.broadcast_to(metrics.jacobian(), rho.shape)
        delta = J ** (1.0 / layout.dim)
        return self.c_k * rho * np.sqrt(self.k_sgs(layout, u)) * delta

    def source(self, layout: StateLayout, u: np.ndarray,
               metrics: Metrics) -> np.ndarray:
        """Conservative source: production - dissipation in the rho*k slot."""
        if layout.nscalars <= self.scalar_index:
            raise ValueError("layout carries no scalar for the SGS energy")
        rho = layout.density(u)
        J = np.broadcast_to(metrics.jacobian(), rho.shape)
        delta = J ** (1.0 / layout.dim)
        smag = Smagorinsky()  # reuse the strain-rate machinery
        s_mag = smag.strain_magnitude(layout, u, metrics)
        k = self.k_sgs(layout, u)
        mu_t = self.c_k * rho * np.sqrt(k) * delta
        production = mu_t * s_mag**2
        dissipation = self.c_e * rho * k**1.5 / delta
        out = np.zeros_like(u)
        out[layout.scalar(self.scalar_index)] = production - dissipation
        return out


class KEquationViscousFlux(ViscousFlux):
    """Viscous operator whose eddy viscosity comes from the k equation."""

    def __init__(self, mu_fn: Callable[[np.ndarray], np.ndarray],
                 model: KEquationSGS | None = None, prandtl: float = 0.72,
                 order: int = 4) -> None:
        super().__init__(mu_fn=mu_fn, prandtl=prandtl, order=order)
        self.model = model if model is not None else KEquationSGS()

    def divergence(self, layout, eos, u, metrics, ng):
        base_mu_fn = self.mu_fn
        model = self.model

        def effective_mu(T: np.ndarray) -> np.ndarray:
            mu = base_mu_fn(T)
            mu_t = model.eddy_viscosity(layout, u, metrics)
            mu_t = np.minimum(mu_t, model.max_ratio * np.maximum(mu, 1e-300))
            return mu + mu_t

        self.__dict__["mu_fn"] = effective_mu
        try:
            return super().divergence(layout, eos, u, metrics, ng)
        finally:
            self.__dict__["mu_fn"] = base_mu_fn
