"""Viscous flux divergence (4th-order central differences).

Implements the diffusive part of Eq. 1: the shear-stress tensor from a
linear (Newtonian) stress-strain relationship with Stokes' hypothesis, the
Fourier heat flux, and optional Fickian species diffusion with the
associated enthalpy transport.  All physical-space gradients are obtained
through the curvilinear chain rule

    d(phi)/d(x_j) = (1/J) sum_d m_dj d(phi)/d(xi_d)

and the flux divergence is formed in computational space, matching the
paper's fully curvilinear Viscous kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.numerics.eos import MixtureEOS
from repro.numerics.metrics import Metrics, derivative_same_shape
from repro.numerics.state import StateLayout


def constant_viscosity(mu: float) -> Callable[[np.ndarray], np.ndarray]:
    """A viscosity law mu(T) = const (nondimensional test problems)."""

    def fn(T: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(T, dtype=np.float64), mu)

    return fn


@dataclass
class ViscousFlux:
    """Configured viscous-flux operator."""

    mu_fn: Callable[[np.ndarray], np.ndarray]
    prandtl: float = 0.72
    schmidt: float = 0.9
    #: Schmidt number for transported scalars (e.g. SGS kinetic energy)
    scalar_schmidt: float = 0.7
    order: int = 4
    include_species_diffusion: bool = False
    include_scalar_diffusion: bool = True

    @property
    def nghost(self) -> int:
        """Ghost cells needed: two derivative applications of radius order/2."""
        return self.order  # 2 * (order // 2)

    def divergence(
        self,
        layout: StateLayout,
        eos,
        u: np.ndarray,
        metrics: Metrics,
        ng: int,
    ) -> np.ndarray:
        """(1/J) sum_d d(sum_j m_dj Fv_j)/d(xi_d) over the valid region."""
        if ng < self.nghost:
            raise ValueError(f"need at least {self.nghost} ghost cells, got {ng}")
        dim = layout.dim
        shape = u.shape[1:]
        rho = layout.density(u)
        vel = layout.velocity(u)
        T = eos.temperature(layout, u)
        mu = self.mu_fn(T)
        cp = self._cp(layout, eos, u)
        kappa = mu * cp / self.prandtl

        J = np.broadcast_to(metrics.jacobian(), shape)
        minv = [np.broadcast_to(metrics.m(d), (dim,) + shape) for d in range(dim)]

        def grad(phi: np.ndarray) -> np.ndarray:
            """Physical gradient d(phi)/d(x_j), shape (dim, *shape)."""
            dphi = np.stack(
                [derivative_same_shape(phi, axis=d, order=self.order) for d in range(dim)]
            )
            out = np.zeros((dim,) + shape)
            for j in range(dim):
                for d in range(dim):
                    out[j] += minv[d][j] * dphi[d]
            return out / J[None]

        gvel = np.stack([grad(vel[i]) for i in range(dim)])  # gvel[i, j] = du_i/dx_j
        div_u = sum(gvel[i, i] for i in range(dim))
        # Newtonian stress with Stokes' hypothesis
        tau = np.empty((dim, dim) + shape)
        for i in range(dim):
            for j in range(dim):
                tau[i, j] = mu * (gvel[i, j] + gvel[j, i])
            tau[i, i] -= (2.0 / 3.0) * mu * div_u
        q = -kappa[None] * grad(T)  # heat flux

        # physical viscous flux vectors Fv_j, shape (ncons, dim, *shape)
        fv = np.zeros((layout.ncons, dim) + shape)
        for i in range(dim):
            for j in range(dim):
                fv[layout.mom(i), j] = tau[i, j]
                fv[layout.energy, j] += vel[i] * tau[i, j]
        for j in range(dim):
            fv[layout.energy, j] -= q[j]
        if self.include_species_diffusion and layout.nspecies > 1:
            self._add_species_diffusion(layout, eos, u, rho, mu, grad, fv)
        if self.include_scalar_diffusion and layout.nscalars:
            # gradient diffusion of transported scalars: flux = rho D ds/dx
            D = mu / (rho * self.scalar_schmidt)
            for k in range(layout.nscalars):
                sval = u[layout.scalar(k)] / rho
                gs = grad(sval)
                for j in range(dim):
                    fv[layout.scalar(k), j] += rho * D * gs[j]

        # transform to computational space and take the divergence
        out = np.zeros((layout.ncons,) + shape)
        for d in range(dim):
            fhat = np.einsum("j...,cj...->c...", minv[d], fv)
            for c in range(layout.ncons):
                out[c] += derivative_same_shape(fhat[c], axis=d, order=self.order)
        out /= J[None]
        # crop to the valid region
        sl = (slice(None),) + tuple(slice(ng, n - ng) for n in shape)
        return out[sl]

    def _cp(self, layout: StateLayout, eos, u: np.ndarray):
        if hasattr(eos, "cp"):
            return eos.cp
        if isinstance(eos, MixtureEOS):
            y = layout.mass_fractions(u)
            cps = np.array([s.cp for s in eos.species])
            return np.tensordot(cps, y, axes=(0, 0))
        raise TypeError(f"cannot determine cp for EOS {type(eos).__name__}")

    def _add_species_diffusion(self, layout, eos, u, rho, mu, grad, fv) -> None:
        """Fickian diffusion: rho_s v_sj = -rho D dY_s/dx_j, plus enthalpy flux."""
        D = mu / (rho * self.schmidt)
        if not isinstance(eos, MixtureEOS):
            raise TypeError("species diffusion requires a MixtureEOS")
        T = eos.temperature(layout, u)
        y = layout.mass_fractions(u)
        for s in range(layout.nspecies):
            gy = grad(y[s])
            sp = eos.species[s]
            h_s = sp.cp * T + sp.h_formation  # specific enthalpy
            for j in range(layout.dim):
                diff_flux = rho * D * gy[j]
                fv[s, j] += diff_flux
                fv[layout.energy, j] += h_s * diff_flux
