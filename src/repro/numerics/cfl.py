"""CFL-constrained time-step estimation (ComputeDt).

The stable step obeys (Eq. 3 of the paper, generalized to curvilinear
coordinates):  dt <= CFL / max_cells sum_d (|Uhat_d| + a |m_d|) / J.

Every patch computes its local bound; the global step is the minimum over
all ranks, obtained through the communicator's ``ReduceRealMin`` — one of
the two global communication calls in CRoCCo (Sec. III-B).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.numerics.fluxes import wave_speed
from repro.numerics.state import StateLayout


def local_max_rate(layout: StateLayout, eos, u: np.ndarray, metrics,
                   backend=None, device=None, rank: int = 0) -> float:
    """max over this patch's cells of sum_d (|Uhat_d| + a |m_d|)/J.

    The final max is an execution-backend ``ReduceData``: a NumPy
    reduction on the host target, a recorded ``ComputeDt`` device
    reduction on the device target — bitwise identical either way.
    """
    rho, vel, p = eos.primitives(layout, u)
    a = eos.sound_speed(layout, u)
    J = metrics.jacobian()
    total = None
    for d in range(layout.dim):
        w = wave_speed(vel, a, metrics.m(d), J)
        total = w if total is None else total + w
    if backend is None:
        # imported lazily: repro.backend must stay importable from the
        # repro.kernels package-import chain without a cycle
        from repro.backend import current_backend

        backend = current_backend()
    from repro.backend import LaunchSpec

    return backend.reduce_data(
        "ComputeDt", total, "max",
        LaunchSpec(kernel_class="reduction", rank=rank, device=device,
                   shape=total.shape))


def compute_dt(
    per_rank_rates: Sequence[float],
    cfl: float,
    comm,
    dt_max: Optional[float] = None,
) -> float:
    """Global dt from per-rank max rates via a simulated MPI reduction.

    ``per_rank_rates[r]`` is the max CFL rate over rank ``r``'s patches
    (0 for ranks with no patches).  Returns CFL / max_rate, capped at
    ``dt_max``.
    """
    if cfl <= 0:
        raise ValueError("cfl must be positive")
    local_dts = [
        (cfl / r) if r > 0 else np.inf for r in per_rank_rates
    ]
    dt = comm.reduce_min(local_dts)
    if dt_max is not None:
        dt = min(dt, dt_max)
    if not np.isfinite(dt):
        raise ValueError("no finite CFL rate found (empty hierarchy?)")
    return float(dt)
