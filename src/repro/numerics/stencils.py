"""Central finite-difference stencils.

CRoCCo computes viscous fluxes and grid metrics with 4th-order-accurate
central differences; this module holds the coefficient tables and a
vectorized apply helper.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: central first-derivative coefficients {order: (offsets, coeffs)}
FIRST_DERIVATIVE: Dict[int, Tuple[Tuple[int, ...], Tuple[float, ...]]] = {
    2: ((-1, 1), (-0.5, 0.5)),
    4: ((-2, -1, 1, 2), (1.0 / 12.0, -8.0 / 12.0, 8.0 / 12.0, -1.0 / 12.0)),
    6: (
        (-3, -2, -1, 1, 2, 3),
        (-1.0 / 60.0, 9.0 / 60.0, -45.0 / 60.0, 45.0 / 60.0, -9.0 / 60.0, 1.0 / 60.0),
    ),
}

#: central second-derivative coefficients
SECOND_DERIVATIVE: Dict[int, Tuple[Tuple[int, ...], Tuple[float, ...]]] = {
    2: ((-1, 0, 1), (1.0, -2.0, 1.0)),
    4: (
        (-2, -1, 0, 1, 2),
        (-1.0 / 12.0, 16.0 / 12.0, -30.0 / 12.0, 16.0 / 12.0, -1.0 / 12.0),
    ),
}


def stencil_radius(order: int, derivative: int = 1) -> int:
    """Ghost cells needed on each side for the chosen stencil."""
    table = FIRST_DERIVATIVE if derivative == 1 else SECOND_DERIVATIVE
    offsets, _ = table[order]
    return max(abs(o) for o in offsets)


def central_derivative(
    v: np.ndarray, axis: int, spacing: float = 1.0, order: int = 4,
    derivative: int = 1,
) -> np.ndarray:
    """Apply a central difference along ``axis``.

    The result is shorter by ``2 * stencil_radius`` along that axis — the
    caller supplies ghost data.  ``spacing`` is the uniform grid spacing
    (for computational-space metrics it is 1).
    """
    table = FIRST_DERIVATIVE if derivative == 1 else SECOND_DERIVATIVE
    if order not in table:
        raise ValueError(f"unsupported order {order} for derivative {derivative}")
    offsets, coeffs = table[order]
    rad = max(abs(o) for o in offsets)
    v = np.moveaxis(v, axis, -1)
    n = v.shape[-1]
    if n < 2 * rad + 1:
        raise ValueError("array too short for the stencil")
    out = np.zeros(v.shape[:-1] + (n - 2 * rad,), dtype=np.float64)
    for o, c in zip(offsets, coeffs):
        out += c * v[..., rad + o: n - rad + o]
    out /= spacing**derivative
    return np.moveaxis(out, -1, axis)
