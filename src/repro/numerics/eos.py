"""Equations of state and thermodynamics.

The paper's total energy (Eq. 2):

    E = sum_s rho_s cv_s T + 1/2 rho u_i u_i + sum_s rho_s h0_s

with cv_s the constant-volume specific heat and h0_s the heat of
formation of species s.  :class:`IdealGasEOS` is the single-species
calorically-perfect special case used by the double-Mach-reflection test
problem; :class:`MixtureEOS` implements the multi-species form with
per-species gas constants, specific heats, and formation enthalpies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.numerics.state import StateLayout

#: universal gas constant [J / (mol K)]
R_UNIVERSAL = 8.31446261815324


@dataclass(frozen=True)
class Species:
    """Thermodynamic data for one chemical species."""

    name: str
    molar_mass: float  # kg/mol
    cv: float  # J/(kg K), constant-volume specific heat
    h_formation: float = 0.0  # J/kg, heat of formation h0_s

    @property
    def gas_constant(self) -> float:
        """Specific gas constant R_s = R / M_s."""
        return R_UNIVERSAL / self.molar_mass

    @property
    def cp(self) -> float:
        return self.cv + self.gas_constant

    @property
    def gamma(self) -> float:
        return self.cp / self.cv


class IdealGasEOS:
    """Single-species calorically perfect ideal gas.

    Works in nondimensional units by default (R = 1/gamma so that a=1 at
    rho=1, p=1/gamma), which is the standard normalization for the
    Woodward-Colella DMR setup.
    """

    def __init__(self, gamma: float = 1.4, gas_constant: float = 1.0) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        self.gamma = gamma
        self.R = gas_constant
        self.cv = gas_constant / (gamma - 1.0)
        self.cp = self.cv + gas_constant

    # -- conversions on conservative state arrays -----------------------------
    def pressure(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        """p = (gamma - 1)(E - 1/2 rho |u|^2)."""
        e_int = u[layout.energy] - layout.kinetic_energy(u)
        return (self.gamma - 1.0) * e_int

    def temperature(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        return self.pressure(layout, u) / (layout.density(u) * self.R)

    def sound_speed(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        p = self.pressure(layout, u)
        rho = layout.density(u)
        return np.sqrt(self.gamma * np.maximum(p, 1e-300) / rho)

    def total_energy(self, rho: np.ndarray, vel: np.ndarray, p: np.ndarray) -> np.ndarray:
        """E from primitives; ``vel`` has shape (dim, ...)."""
        return p / (self.gamma - 1.0) + 0.5 * rho * (vel**2).sum(axis=0)

    def conservative(self, layout: StateLayout, rho, vel, p,
                     scalars=None) -> np.ndarray:
        """Pack primitives into a conservative state array.

        ``scalars``: per-mass scalar values s_k, shape (nscalars, ...);
        stored conservatively as rho * s_k.  Defaults to zero.
        """
        rho = np.asarray(rho, dtype=np.float64)
        vel = np.asarray(vel, dtype=np.float64)
        p = np.asarray(p, dtype=np.float64)
        u = np.zeros((layout.ncons,) + rho.shape, dtype=np.float64)
        u[layout.rho_s] = rho[None]
        u[layout.mom_slice] = rho[None] * vel
        u[layout.energy] = self.total_energy(rho, vel, p)
        if scalars is not None:
            u[layout.scalar_slice] = rho[None] * np.asarray(scalars, dtype=np.float64)
        return u

    def primitives(self, layout: StateLayout, u: np.ndarray):
        """(rho, vel, p) from a conservative state array."""
        rho = layout.density(u)
        vel = layout.velocity(u)
        p = self.pressure(layout, u)
        return rho, vel, p


class MixtureEOS:
    """Multi-species mixture of thermally perfect gases (Eq. 2 of the paper)."""

    def __init__(self, species: Sequence[Species]) -> None:
        if not species:
            raise ValueError("need at least one species")
        self.species = tuple(species)
        self._cv = np.array([s.cv for s in species])
        self._R = np.array([s.gas_constant for s in species])
        self._h0 = np.array([s.h_formation for s in species])

    @property
    def nspecies(self) -> int:
        return len(self.species)

    def _check(self, layout: StateLayout) -> None:
        if layout.nspecies != self.nspecies:
            raise ValueError(
                f"layout has {layout.nspecies} species, EOS has {self.nspecies}"
            )

    def mixture_cv(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        """Mass-fraction-weighted cv."""
        self._check(layout)
        y = layout.mass_fractions(u)
        return np.tensordot(self._cv, y, axes=(0, 0))

    def mixture_R(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        self._check(layout)
        y = layout.mass_fractions(u)
        return np.tensordot(self._R, y, axes=(0, 0))

    def formation_energy(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        """sum_s rho_s h0_s."""
        self._check(layout)
        shape = (-1,) + (1,) * (u.ndim - 1)
        return (u[layout.rho_s] * self._h0.reshape(shape)).sum(axis=0)

    def temperature(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        """Invert Eq. 2: T = (E - KE - sum rho_s h0_s) / (rho cv_mix)."""
        self._check(layout)
        e_th = u[layout.energy] - layout.kinetic_energy(u) - self.formation_energy(layout, u)
        rho = layout.density(u)
        return e_th / (rho * self.mixture_cv(layout, u))

    def pressure(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        """p = rho R_mix T (Dalton's law for ideal mixtures)."""
        return layout.density(u) * self.mixture_R(layout, u) * self.temperature(layout, u)

    def mixture_gamma(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        cv = self.mixture_cv(layout, u)
        return (cv + self.mixture_R(layout, u)) / cv

    def sound_speed(self, layout: StateLayout, u: np.ndarray) -> np.ndarray:
        g = self.mixture_gamma(layout, u)
        return np.sqrt(g * self.mixture_R(layout, u) * self.temperature(layout, u))

    def total_energy(self, layout: StateLayout, rho_s: np.ndarray, vel: np.ndarray,
                     temperature: np.ndarray) -> np.ndarray:
        """E from species densities, velocity, and temperature (Eq. 2)."""
        shape = (-1,) + (1,) * (rho_s.ndim - 1)
        rho = rho_s.sum(axis=0)
        thermal = (rho_s * self._cv.reshape(shape)).sum(axis=0) * temperature
        kinetic = 0.5 * rho * (vel**2).sum(axis=0)
        formation = (rho_s * self._h0.reshape(shape)).sum(axis=0)
        return thermal + kinetic + formation

    def conservative(self, layout: StateLayout, rho_s, vel, temperature) -> np.ndarray:
        self._check(layout)
        rho_s = np.asarray(rho_s, dtype=np.float64)
        vel = np.asarray(vel, dtype=np.float64)
        temperature = np.asarray(temperature, dtype=np.float64)
        rho = rho_s.sum(axis=0)
        u = np.empty((layout.ncons,) + rho.shape, dtype=np.float64)
        u[layout.rho_s] = rho_s
        u[layout.mom_slice] = rho[None] * vel
        u[layout.energy] = self.total_energy(layout, rho_s, vel, temperature)
        return u

    def primitives(self, layout: StateLayout, u: np.ndarray):
        """(rho, vel, p) — the interface the flux kernels consume."""
        return layout.density(u), layout.velocity(u), self.pressure(layout, u)


def sutherland_viscosity(T: np.ndarray, mu_ref: float = 1.716e-5,
                         T_ref: float = 273.15, S: float = 110.4) -> np.ndarray:
    """Sutherland's law for dynamic viscosity (dimensional form)."""
    return mu_ref * (T / T_ref) ** 1.5 * (T_ref + S) / (T + S)


def power_law_viscosity(T: np.ndarray, mu_ref: float, T_ref: float,
                        exponent: float = 0.76) -> np.ndarray:
    """Power-law viscosity, common in nondimensional hypersonic DNS setups."""
    return mu_ref * (T / T_ref) ** exponent
