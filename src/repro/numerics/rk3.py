"""Williamson low-storage third-order Runge-Kutta (JCP 1980).

CRoCCo propagates convective and viscous fluxes in time with the classic
2N-register RK3 scheme: each stage updates a single accumulator register
``dU`` and the solution ``U``:

    dU <- A_k dU + dt * RHS(U)
    U  <- U + B_k dU

with A = (0, -5/9, -153/128) and B = (1/3, 15/16, 8/15).  The scheme is
third-order accurate and stable for CFL <= 1 (the paper's Sec. II-B).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

#: Williamson (1980) low-storage coefficients
RK3_A: Tuple[float, float, float] = (0.0, -5.0 / 9.0, -153.0 / 128.0)
RK3_B: Tuple[float, float, float] = (1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0)

NSTAGES = 3


def rk3_stage(u: np.ndarray, du: np.ndarray, rhs: np.ndarray, dt: float,
              stage: int) -> None:
    """Apply one low-storage stage in place.

    ``du`` is the accumulator register (persistent across the 3 stages of a
    step), ``rhs`` the freshly evaluated right-hand side at the current
    ``u``.  Arrays are updated in place — the 2N-storage property.
    """
    if not 0 <= stage < NSTAGES:
        raise ValueError(f"stage must be 0..{NSTAGES - 1}")
    du *= RK3_A[stage]
    du += dt * rhs
    u += RK3_B[stage] * du


def advance(u: np.ndarray, rhs_fn: Callable[[np.ndarray], np.ndarray],
            dt: float) -> np.ndarray:
    """Convenience single-array driver: one full RK3 step (for tests).

    The production path in :mod:`repro.core.advance` runs the same stages
    across a MultiFab hierarchy with FillPatch between stages.
    """
    u = u.astype(np.float64, copy=True)
    du = np.zeros_like(u)
    for stage in range(NSTAGES):
        rhs = rhs_fn(u)
        rk3_stage(u, du, rhs, dt, stage)
    return u
