"""Generalized curvilinear grid metrics.

The physical domain ``x_j`` is mapped onto the rectangular computational
domain ``xi_d`` (cell index space, unit spacing).  Solving the governing
equations in strong conservation-law form requires the first-order metric
terms ``J * d(xi_d)/d(x_j)`` and the Jacobian ``J = det(dx/dxi)``; CRoCCo
additionally stores the second-order metrics ``d2 x_j / d xi_d d xi_e``
(Sec. III-C: 9 first- plus 18 second-derivative components = the paper's
27-component metrics MultiFab).

Metric derivatives are reconstructed with 4th-order central differences of
the *stored coordinates* — curvilinear grids are generated from complex
hyperbolic/trigonometric mappings, so coordinates are kept in memory
rather than recomputed (the paper's data-management point).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.numerics.stencils import FIRST_DERIVATIVE


def derivative_same_shape(v: np.ndarray, axis: int, order: int = 4) -> np.ndarray:
    """First derivative along ``axis`` keeping the array shape.

    Interior points use the central stencil of the requested order; points
    near the array edge fall back to lower-order central and finally
    one-sided 2nd-order differences.  Metrics are computed once per level
    (re)build, so the edge fallback only affects outermost ghost cells.
    """
    v = np.moveaxis(v, axis, -1)
    n = v.shape[-1]
    out = np.empty_like(v)
    offsets, coeffs = FIRST_DERIVATIVE[order]
    rad = max(abs(o) for o in offsets)
    if n >= 2 * rad + 1:
        acc = np.zeros(v.shape[:-1] + (n - 2 * rad,))
        for o, c in zip(offsets, coeffs):
            acc += c * v[..., rad + o: n - rad + o]
        out[..., rad:n - rad] = acc
    else:
        rad = n  # force full fallback below
    # fallback: 2nd-order central where possible, one-sided at the ends
    for i in range(min(rad, n)):
        lo_i = i
        hi_i = n - 1 - i
        if lo_i >= 1:
            out[..., lo_i] = 0.5 * (v[..., lo_i + 1] - v[..., lo_i - 1])
        elif n >= 3:
            out[..., 0] = -1.5 * v[..., 0] + 2.0 * v[..., 1] - 0.5 * v[..., 2]
        elif n == 2:
            out[..., 0] = v[..., 1] - v[..., 0]
        else:
            out[..., 0] = 0.0
        if hi_i <= n - 2 and hi_i >= 1:
            out[..., hi_i] = 0.5 * (v[..., hi_i + 1] - v[..., hi_i - 1])
        elif n >= 3:
            out[..., n - 1] = 1.5 * v[..., n - 1] - 2.0 * v[..., n - 2] + 0.5 * v[..., n - 3]
        elif n == 2:
            out[..., n - 1] = v[..., n - 1] - v[..., n - 2]
    return np.moveaxis(out, -1, axis)


class Metrics:
    """Interface used by the flux kernels."""

    dim: int

    def m(self, d: int) -> np.ndarray:
        """J * grad(xi_d) components, shape (dim, *grid shape)."""
        raise NotImplementedError

    def jacobian(self) -> np.ndarray:
        """J = det(dx/dxi), shape (*grid shape) (broadcastable)."""
        raise NotImplementedError

    def interior(self, ng: int) -> "Metrics":
        """A view of these metrics with ``ng`` cells cropped on every side."""
        if ng == 0:
            return self
        return _CroppedMetrics(self, ng)


class _CroppedMetrics(Metrics):
    """Metrics restricted to the interior of a grown region."""

    def __init__(self, base: Metrics, ng: int) -> None:
        self._base = base
        self._ng = ng
        self.dim = base.dim

    def _crop(self, arr: np.ndarray, offset: int) -> np.ndarray:
        sl = tuple(
            slice(None) if n == 1 else slice(self._ng, n - self._ng)
            for n in arr.shape[offset:]
        )
        return arr[(slice(None),) * offset + sl]

    def m(self, d: int) -> np.ndarray:
        return self._crop(self._base.m(d), 1)

    def jacobian(self) -> np.ndarray:
        return self._crop(self._base.jacobian(), 0)


class CartesianMetrics(Metrics):
    """Uniform Cartesian grid: analytic, memory-free metrics.

    x_j = lo_j + (i_j + 1/2) dx_j  =>  dx/dxi = diag(dx),
    J = prod(dx), J * grad(xi_d) = (J / dx_d) e_d.
    """

    def __init__(self, dx: Sequence[float]) -> None:
        self.dx = tuple(float(d) for d in dx)
        if any(d <= 0 for d in self.dx):
            raise ValueError("cell sizes must be positive")
        self.dim = len(self.dx)
        self._J = float(np.prod(self.dx))

    def m(self, d: int) -> np.ndarray:
        out = np.zeros((self.dim,) + (1,) * self.dim)
        out[d] = self._J / self.dx[d]
        return out

    def jacobian(self) -> np.ndarray:
        return np.full((1,) * self.dim, self._J)


class CurvilinearMetrics(Metrics):
    """Metrics reconstructed from stored physical coordinates."""

    def __init__(self, first: np.ndarray, second: np.ndarray, J: np.ndarray,
                 m_arrays: np.ndarray) -> None:
        #: dx_j/dxi_d, shape (dim, dim, *s): first[j, d]
        self.first = first
        #: d2 x_j / dxi_d dxi_e for d <= e, shape (dim, npairs, *s)
        self.second = second
        self._J = J
        #: J * dxi_d/dx_j, shape (dim, dim, *s): m_arrays[d, j]
        self._m = m_arrays
        self.dim = first.shape[0]

    @classmethod
    def from_coordinates(cls, coords: np.ndarray, order: int = 4) -> "CurvilinearMetrics":
        """Build metrics from cell-center coordinates, shape (dim, *s)."""
        dim = coords.shape[0]
        if coords.ndim != dim + 1:
            raise ValueError("coords must have shape (dim, *grid shape)")
        s = coords.shape[1:]
        # first metrics T[j, d] = d x_j / d xi_d
        first = np.empty((dim, dim) + s)
        for j in range(dim):
            for d in range(dim):
                first[j, d] = derivative_same_shape(coords[j], axis=d, order=order)
        # second metrics for unique pairs (d, e), d <= e
        pairs = [(d, e) for d in range(dim) for e in range(d, dim)]
        second = np.empty((dim, len(pairs)) + s)
        for j in range(dim):
            for k, (d, e) in enumerate(pairs):
                second[j, k] = derivative_same_shape(first[j, d], axis=e, order=order)
        # Jacobian and inverse: operate on (..., dim, dim) stacks
        T = np.moveaxis(first.reshape(dim, dim, -1), -1, 0)  # (N, j, d)
        J = np.linalg.det(T)
        if np.any(J <= 0):
            raise ValueError("grid mapping is not orientation-preserving (J <= 0)")
        Tinv = np.linalg.inv(T)  # (N, d, j) : d xi_d / d x_j
        m = (J[:, None, None] * Tinv).transpose(1, 2, 0).reshape((dim, dim) + s)
        return cls(first, second, J.reshape(s), m)

    @property
    def ncomp_stored(self) -> int:
        """Stored metric components: dim^2 first + dim*npairs second."""
        npairs = self.dim * (self.dim + 1) // 2
        return self.dim * self.dim + self.dim * npairs

    def m(self, d: int) -> np.ndarray:
        return self._m[d]

    def jacobian(self) -> np.ndarray:
        return self._J

    def pack(self) -> np.ndarray:
        """Flatten first+second metrics into a (ncomp_stored, *s) array.

        This is the layout of CRoCCo's 27-component metrics MultiFab
        (9 first + 18 second derivatives in 3D).
        """
        dim = self.dim
        s = self.first.shape[2:]
        return np.concatenate(
            [self.first.reshape((dim * dim,) + s),
             self.second.reshape((-1,) + s)],
            axis=0,
        )

    def gcl_residual(self) -> np.ndarray:
        """Geometric conservation law residual sum_d d(m_d)/d(xi_d).

        Exactly zero analytically; small (discretization-level) on smooth
        grids — freestream preservation check.
        """
        dim = self.dim
        res = np.zeros((dim,) + self.first.shape[2:])
        for j in range(dim):
            for d in range(dim):
                res[j] += derivative_same_shape(self._m[d, j], axis=d)
        return res


def grid_quality(metrics: "CurvilinearMetrics", interior: int = 2) -> dict:
    """Grid-quality diagnostics from the stored 27-component metrics.

    Uses both metric orders the paper stores (Sec. III-C): first
    derivatives give cell skewness (departure of grid-line angles from
    orthogonal) and aspect ratio; second derivatives give the relative
    stretching rate |d2x/dxi2| / |dx/dxi| — the smoothness criterion grid
    generators target, and the quantity that controls metric-induced
    truncation error in curvilinear solvers.
    """
    dim = metrics.dim
    sl = tuple(slice(interior, -interior) for _ in range(dim))
    first = metrics.first[(slice(None), slice(None)) + sl]
    second = metrics.second[(slice(None), slice(None)) + sl]

    # edge vectors e_d = dx/dxi_d, shape (dim, dim, ...) -> (j, d)
    norms = np.sqrt((first**2).sum(axis=0))  # |e_d| per direction
    max_aspect = float((norms.max(axis=0) / norms.min(axis=0)).max())

    # skewness: worst |cos(angle)| between distinct grid directions
    max_skew = 0.0
    for d in range(dim):
        for e in range(d + 1, dim):
            dot = (first[:, d] * first[:, e]).sum(axis=0)
            cosang = np.abs(dot) / (norms[d] * norms[e])
            max_skew = max(max_skew, float(cosang.max()))

    # stretching: |d2 x / dxi_d^2| / |dx/dxi_d| per direction (the
    # diagonal entries of the stored second-derivative block)
    pairs = [(d, e) for d in range(dim) for e in range(d, dim)]
    max_stretch = 0.0
    for k, (d, e) in enumerate(pairs):
        if d != e:
            continue
        curv = np.sqrt((second[:, k] ** 2).sum(axis=0))
        max_stretch = max(max_stretch, float((curv / norms[d]).max()))

    return {
        "max_aspect_ratio": max_aspect,
        "max_skewness": max_skew,  # 0 = orthogonal, 1 = degenerate
        "max_stretching": max_stretch,  # 0 = uniform spacing
        "jacobian_ratio": float(
            metrics.jacobian()[sl].max() / metrics.jacobian()[sl].min()
        ),
    }
