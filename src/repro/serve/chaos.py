"""Service-level chaos: the fault-plan grammar, one level up the stack.

PR 3's :mod:`repro.resilience.faults` made *solver* chaos deterministic:
a seeded plan of ``kind@step`` tokens instead of random failure.  This
module extends the same grammar to the *service* — the registry, fleet,
server process and HTTP path — so the chaos acceptance suite can kill
workers mid-run, kill the server mid-load, tear registry records,
corrupt cache entries and mangle HTTP exchanges, reproducibly.

Plan tokens (``kind@n[:arg]``, parsed by
:func:`repro.resilience.faults.parse_plan` with this vocabulary; ``n``
counts *dispatches* for run-level faults and *proxied requests* for
HTTP faults, both 1-based)::

    kill_worker@N[:S]     the N-th dispatched run's worker hard-exits at
                          the step-S boundary (default 1) — a lost node
                          mid-run; the supervisor re-dispatches and the
                          run resumes from its last autocheckpoint
    kill_server@N         advisory: the harness hard-stops the service
                          after the N-th dispatch (a service crash; the
                          injector only reports when it is due — killing
                          a process is the harness's job)
    torn_record@N         tear the N-th submitted run's run.json in half
                          (a kill mid-write of a non-atomic writer; the
                          restarted registry must tolerate it)
    corrupt_cache@N[:kind] overwrite one shared cache entry with garbage
                          before the N-th dispatch (the next reader must
                          evict and recompute, never crash or hit)
    delay_http@N[:SECS]   the chaos proxy delays the N-th proxied
                          request by SECS (default 0.5) seconds
    truncate_http@N[:FRAC] the chaos proxy cuts the N-th response body
                          at FRAC (default 0.5) of its bytes — a torn
                          read the client must treat as retryable

The :class:`ChaosProxy` is the DESIGN.md substitution for real network
faults: a forwarding HTTP proxy on the loopback stands in for a flaky
interconnect, the same way the fork pool stands in for MPI ranks.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.resilience.faults import FaultSpec, parse_plan

#: the service-level fault vocabulary (run faults count dispatches,
#: HTTP faults count proxied requests)
SERVICE_KINDS = ("kill_worker", "kill_server", "torn_record",
                 "corrupt_cache", "delay_http", "truncate_http")

#: run-level kinds keyed on the fleet's dispatch counter
DISPATCH_KINDS = ("kill_worker", "kill_server", "torn_record",
                  "corrupt_cache")

#: HTTP kinds keyed on the proxy's request counter
HTTP_KINDS = ("delay_http", "truncate_http")


class ServiceFaultInjector:
    """Executes a service fault plan deterministically.

    The fleet consults :meth:`fault_for_dispatch` on every dispatch (and
    the injector executes its own disk-level faults — torn records,
    corrupted cache entries — right there, so they land *while the
    service is live*); the harness polls :meth:`server_kill_due` to
    learn when the plan wants the server process killed; the
    :class:`ChaosProxy` consults :meth:`http_action` per forwarded
    request.  Every fault fires exactly once and is logged in
    :attr:`fired` for recovery accounting.
    """

    def __init__(self, specs: List[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self.fired: List[Dict] = []
        self._lock = threading.Lock()
        self._kill_due = False

    @classmethod
    def from_plan(cls, plan: str,
                  seed: Optional[int] = None) -> "ServiceFaultInjector":
        specs, plan_seed = parse_plan(plan, kinds=SERVICE_KINDS)
        return cls(specs, seed if seed else plan_seed)

    def _record(self, spec: FaultSpec, target: str) -> None:
        spec.fired = True
        self.fired.append({"kind": spec.kind, "n": spec.step,
                           "target": target})

    def pending(self) -> List[FaultSpec]:
        return [s for s in self.specs if not s.fired]

    def fired_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.fired:
            out[entry["kind"]] = out.get(entry["kind"], 0) + 1
        return out

    # -- fleet hook (called from the pump thread per dispatch) -------------
    def fault_for_dispatch(self, n: int, run_id: str,
                           registry=None,
                           cache_dir=None) -> Optional[tuple]:
        """The payload fault for dispatch ``n``, executing side faults.

        ``kill_worker`` returns a ``("kill_step", S)`` marker the serve
        worker honors; ``torn_record`` / ``corrupt_cache`` are executed
        here against the live registry/cache; ``kill_server`` only arms
        :meth:`server_kill_due`.
        """
        out: Optional[tuple] = None
        with self._lock:
            for spec in self.specs:
                if spec.fired or spec.step != n:
                    continue
                if spec.kind == "kill_worker":
                    out = ("kill_step", int(spec.arg or 1))
                    self._record(spec, f"dispatch {n} ({run_id})")
                elif spec.kind == "kill_server":
                    self._kill_due = True
                    self._record(spec, f"after dispatch {n}")
                elif spec.kind == "torn_record" and registry is not None:
                    torn = tear_record(registry, run_id)
                    self._record(spec, torn or f"dispatch {n} (no record)")
                elif spec.kind == "corrupt_cache" and cache_dir is not None:
                    hit = corrupt_cache_entry(cache_dir, kind=spec.arg)
                    self._record(spec, hit or f"dispatch {n} (cache empty)")
        return out

    def server_kill_due(self) -> bool:
        """True once the plan wants the server killed (latched once)."""
        with self._lock:
            due, self._kill_due = self._kill_due, False
            return due

    # -- proxy hook (called per forwarded request) -------------------------
    def http_action(self, n: int) -> Optional[Tuple[str, float]]:
        """``("delay", secs)`` / ``("truncate", frac)`` for request ``n``."""
        with self._lock:
            for spec in self.specs:
                if spec.fired or spec.step != n or spec.kind not in HTTP_KINDS:
                    continue
                if spec.kind == "delay_http":
                    self._record(spec, f"request {n}")
                    return ("delay", float(spec.arg or 0.5))
                if spec.kind == "truncate_http":
                    self._record(spec, f"request {n}")
                    return ("truncate", float(spec.arg or 0.5))
        return None


# -- disk-level fault helpers (also used directly by tests) ----------------

def tear_record(registry, run_id: str) -> Optional[str]:
    """Tear a run's ``run.json`` in half — a kill mid-write.

    The registry itself always writes atomically, so this simulates the
    *absence* of that protection (or a filesystem that lost the tail);
    the restarted registry must skip the torn record without crashing.
    Returns the torn path, or None when the record doesn't exist.
    """
    path = Path(registry.run_dir(run_id)) / "run.json"
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    path.write_bytes(raw[: max(1, len(raw) // 2)])
    return str(path)


def corrupt_cache_entry(cache_dir, kind: Optional[str] = None,
                        ) -> Optional[str]:
    """Overwrite one cache ``.npz`` with garbage (deterministic pick).

    Chooses the lexicographically first entry (of ``kind`` if given) so
    a seeded plan corrupts the same file every time.  Returns the path,
    or None when the cache holds nothing yet.
    """
    root = Path(cache_dir)
    pattern = f"{kind}/*.npz" if kind else "*/*.npz"
    entries = sorted(root.glob(pattern))
    if not entries:
        return None
    entries[0].write_bytes(b"not a zip file: chaos was here")
    return str(entries[0])


def corrupt_checkpoint(ck_dir) -> Optional[str]:
    """Tear the newest autocheckpoint's Header (a kill mid-save).

    ``find_resume_point`` must evict it and fall back to the previous
    good checkpoint (or a cold start).  Returns the torn Header path.
    """
    from repro.io.checkpoint import latest_checkpoint

    ck = latest_checkpoint(ck_dir)
    if ck is None:
        return None
    header = ck / "Header"
    try:
        raw = header.read_bytes()
    except OSError:
        return None
    header.write_bytes(raw[: max(1, len(raw) // 2)])
    return str(header)


# -- the fault-injection HTTP proxy ----------------------------------------

class _ProxyHandler(BaseHTTPRequestHandler):
    """Forwards one request to the upstream, applying planned faults."""

    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - keep tests quiet
        pass

    @property
    def proxy(self) -> "ChaosProxy":
        return self.server.chaos_proxy  # type: ignore[attr-defined]

    def _relay(self) -> None:
        proxy = self.proxy
        n = proxy.next_request_index()
        action = None
        if proxy.injector is not None:
            action = proxy.injector.http_action(n)
        if action is not None and action[0] == "delay":
            time.sleep(action[1])
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        req = urllib.request.Request(
            proxy.upstream + self.path, data=body, method=self.command,
            headers={"Content-Type":
                     self.headers.get("Content-Type", "application/json")})
        try:
            with urllib.request.urlopen(req, timeout=proxy.timeout) as resp:
                status, payload = resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            status, payload = exc.code, exc.read()
        except (urllib.error.URLError, OSError):
            # upstream down (e.g. killed by the same plan): the client
            # sees a connection error either way; 502 keeps it JSON
            status, payload = 502, json.dumps(
                {"error": "chaos proxy: upstream unreachable"}).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if action is not None and action[0] == "truncate":
            # advertise the full length but deliver a prefix and cut the
            # connection: the client reads a short/torn body exactly as
            # it would across a failing link
            cut = max(1, int(len(payload) * action[1]))
            try:
                self.wfile.write(payload[:cut])
                self.wfile.flush()
            except OSError:
                pass
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
            return
        self.wfile.write(payload)

    do_GET = do_POST = do_PUT = do_DELETE = _relay  # noqa: N815


class ChaosProxy:
    """A loopback HTTP proxy that injects planned network faults.

    Stands in for a flaky network between client and service: planned
    requests are delayed or their responses truncated; everything else
    forwards verbatim.  Usage::

        proxy = ChaosProxy(f"http://127.0.0.1:{port}", injector).start()
        client = ServeClient(proxy.url)
        ...
        proxy.stop()
    """

    def __init__(self, upstream: str,
                 injector: Optional[ServiceFaultInjector] = None,
                 host: str = "127.0.0.1", timeout: float = 30.0) -> None:
        self.upstream = upstream.rstrip("/")
        self.injector = injector
        self.timeout = timeout
        self._requests = 0
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, 0), _ProxyHandler)
        self._httpd.daemon_threads = True
        self._httpd.chaos_proxy = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def next_request_index(self) -> int:
        with self._lock:
            self._requests += 1
            return self._requests

    @property
    def request_count(self) -> int:
        return self._requests

    def start(self) -> "ChaosProxy":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="chaos-proxy")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
