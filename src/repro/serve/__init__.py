"""``repro.serve``: a multi-run simulation service on shared infrastructure.

The paper's porting story ends at one big run on one big machine; the
serving layer turns the reproduction into the multi-tenant shape a
production system needs — many concurrent simulations sharing one
supervised worker fleet, one cross-run immutable cache, and one HTTP
front door:

- :mod:`repro.serve.registry` — persistent run registry (states
  ``queued/running/done/failed/cancelled``, priorities, per-run step and
  wall budgets), one directory per run holding the deck, the
  observability artifacts, and the result record;
- :mod:`repro.serve.cache` — cross-run immutable cache (grid
  coordinates, the 27-component curvilinear metrics arrays, EOS tables,
  interpolation weights) keyed by a canonical case-config hash, with
  hit/miss counters;
- :mod:`repro.serve.fleet` — the shared worker fleet: whole runs are
  dispatched as tasks onto one
  :class:`~repro.resilience.supervisor.SupervisedPoolExecutor` (reusing
  ``runtime.executors`` — no per-run pools), so dead workers are
  respawned, lost runs re-submitted, and a broken fleet degrades to
  inline execution instead of dropping traffic;
- :mod:`repro.serve.server` — the stdlib ``ThreadingHTTPServer`` front
  end (``POST /runs``, ``GET /runs/<id>``, ``GET /runs/<id>/metrics``,
  ``POST /runs/<id>/cancel``, ``GET /stats``);
- :mod:`repro.serve.client` — a stdlib urllib client plus the
  ``python -m repro.serve.client`` CLI used by CI and the load bench.

Start a service with ``python -m repro.serve --root DIR --port 8123``.
"""

from repro.serve.cache import CaseCache, case_config_hash
from repro.serve.registry import RUN_STATES, RunRecord, RunRegistry

__all__ = [
    "CaseCache",
    "case_config_hash",
    "RUN_STATES",
    "RunRecord",
    "RunRegistry",
]
