"""The HTTP front door: stdlib ``ThreadingHTTPServer``, JSON in/out.

Endpoints::

    GET  /healthz            liveness probe
    POST /runs               submit a deck (JSON body, see below)
    GET  /runs[?state=s]     list run summaries
    GET  /runs/<id>          one run's record + live progress gauges
    GET  /runs/<id>/metrics  the run's metrics JSONL (tolerant parse)
    POST /runs/<id>/cancel   cancel a queued or running run
    GET  /stats              registry counts, fleet + cache statistics

A submission body is either the deck text verbatim::

    {"deck": "crocco.case = sod\\nrun.steps = 5\\n", "priority": 1}

or a key/value mapping rendered into deck lines::

    {"keys": {"crocco.case": "sod", "run.steps": 5}, "max_steps": 100}

Optional fields: ``priority`` (higher first), ``label``, ``steps``
(override ``run.steps``), ``max_steps`` / ``max_wall_s`` (per-run
budgets, enforced through the watchdog), ``trace`` (record a Chrome
trace), ``idempotency_key`` (resubmitting the same key returns the
run it already created — retried POSTs never duplicate work).

**Admission control**: when the queue is deeper than
``max_queue_depth`` the service sheds new submissions with ``429`` and
a ``Retry-After`` header instead of accepting unbounded backlog; while
draining (SIGTERM received) it refuses with ``503``.  ``/healthz``
reports the degradation ladder (``ok`` → ``degraded`` → ``overloaded``
→ ``draining``) so probes see saturation before clients do.

Handler threads only touch the registry and read artifact files; all
execution happens on the fleet's pump thread and worker processes, so
a slow run never blocks the HTTP surface.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro.serve.fleet import WorkerFleet
from repro.serve.registry import RunRegistry

#: gauge prefixes surfaced as a run's live "progress" block
PROGRESS_PREFIXES = ("perf.", "device.class.", "runtime.", "resilience.")


class Overloaded(RuntimeError):
    """Queue past ``max_queue_depth``: shed with 429 + Retry-After."""

    def __init__(self, depth: int, limit: int, retry_after: float) -> None:
        super().__init__(
            f"queue depth {depth} exceeds limit {limit}; retry later")
        self.retry_after = retry_after


class Draining(RuntimeError):
    """The service is draining to shutdown: refuse new work with 503."""

    def __init__(self) -> None:
        super().__init__("service is draining; submit to another instance "
                         "or retry after restart")
        self.retry_after = 1.0


def read_metrics_tail(path, limit: Optional[int] = None) -> list:
    """Parse a (possibly still-growing) metrics JSONL file tolerantly.

    A streamed file's final line may be mid-write; malformed lines are
    skipped, matching the report CLI's tolerant reader.
    """
    p = Path(path)
    if not p.exists():
        return []
    records = []
    try:
        lines = p.read_text().splitlines()
    except OSError:
        return []
    if limit is not None:
        lines = lines[-limit:]
    for line in lines:
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if all(f in rec for f in ("step", "time", "metrics")):
            records.append(rec)
    return records


class SimulationService:
    """Registry + fleet + cache behind one service root directory."""

    def __init__(self, root, workers: int = 2, executor: str = "pool",
                 task_retries: int = 1, task_timeout: float = 300.0,
                 max_pool_restarts: int = 3, max_queue_depth: int = 256,
                 autocheckpoint_every: int = 1, chaos=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.registry = RunRegistry(self.root)
        self.cache_dir = self.root / "cache"
        self.fleet = WorkerFleet(
            self.registry, self.cache_dir, workers=workers,
            executor=executor, task_retries=task_retries,
            task_timeout=task_timeout, max_pool_restarts=max_pool_restarts,
            autocheckpoint_every=autocheckpoint_every, chaos=chaos)
        #: queued runs past this depth are shed with 429 (0 = unbounded)
        self.max_queue_depth = int(max_queue_depth)
        #: submissions refused because the queue was saturated
        self.shed_requests = 0
        self.started_at = time.time()

    def start(self) -> "SimulationService":
        self.fleet.start()
        return self

    def stop(self) -> None:
        self.fleet.stop()

    def drain(self, grace_s: float = 30.0) -> bool:
        """Checkpoint + requeue every in-flight run, refuse new work."""
        return self.fleet.drain(grace_s)

    # -- admission control -------------------------------------------------
    def _queue_depth(self) -> int:
        return self.registry.counts().get("queued", 0)

    def _retry_after(self, depth: int) -> float:
        """A Retry-After estimate: how long until the backlog clears.

        Scales with how far past the limit the queue is, clamped to a
        sane probe window — a hint, not a promise.
        """
        over = max(1, depth - self.max_queue_depth)
        return min(30.0, max(1.0, 0.25 * over))

    def health(self) -> dict:
        """The degradation ladder surfaced by ``/healthz``."""
        depth = self._queue_depth()
        if self.fleet.draining:
            status = "draining"
        elif self.max_queue_depth and depth >= self.max_queue_depth:
            status = "overloaded"
        elif self.fleet.degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "ok": status in ("ok", "degraded"),
            "status": status,
            "queue_depth": depth,
            "max_queue_depth": self.max_queue_depth,
            "draining": self.fleet.draining,
            "degraded": self.fleet.degraded,
        }

    # -- request handlers (called from HTTP handler threads) ---------------
    def submit(self, body: dict) -> dict:
        deck_text = body.get("deck")
        if deck_text is None and "keys" in body:
            deck_text = "".join(f"{k} = {v}\n"
                                for k, v in body["keys"].items())
        if not deck_text or not isinstance(deck_text, str):
            raise ValueError("body must carry 'deck' (text) or 'keys' (map)")
        # parse up front so an unreadable deck is a 400 at submission
        # time, not a failed run minutes later
        from repro.io.inputs import InputDeck

        InputDeck.parse(deck_text)
        key = str(body.get("idempotency_key") or "")
        # a key the registry already knows bypasses admission control:
        # answering a retry from the index adds no queue depth
        if not (key and self.registry.lookup_key(key) is not None):
            if self.fleet.draining:
                raise Draining()
            depth = self._queue_depth()
            if self.max_queue_depth and depth >= self.max_queue_depth:
                self.shed_requests += 1
                raise Overloaded(depth, self.max_queue_depth,
                                 self._retry_after(depth + 1))
        rec = self.registry.submit(
            deck_text,
            priority=body.get("priority", 0),
            label=body.get("label", ""),
            max_steps=body.get("max_steps"),
            max_wall_s=body.get("max_wall_s"),
            steps=body.get("steps"),
            trace=body.get("trace", False),
            idempotency_key=key)
        return rec.summary()

    def run_status(self, run_id: str) -> Optional[dict]:
        rec = self.registry.get(run_id)
        if rec is None:
            return None
        out = rec.summary()
        out["run_dir"] = str(self.registry.run_dir(run_id))
        tail = read_metrics_tail(
            self.registry.run_dir(run_id) / "metrics.jsonl", limit=2)
        if tail:
            last = tail[-1]
            gauges = {k: v for k, v in last["metrics"].items()
                      if k.startswith(PROGRESS_PREFIXES)}
            out["progress"] = {"step": last["step"], "time": last["time"],
                               "dt": last["metrics"].get("dt"),
                               "gauges": gauges}
        return out

    def run_metrics(self, run_id: str,
                    limit: Optional[int] = None) -> Optional[dict]:
        rec = self.registry.get(run_id)
        if rec is None:
            return None
        records = read_metrics_tail(
            self.registry.run_dir(run_id) / "metrics.jsonl", limit=limit)
        return {"id": run_id, "state": rec.state, "records": records}

    def stats(self) -> dict:
        fleet = self.fleet.snapshot()
        return {
            "uptime_s": time.time() - self.started_at,
            "runs": self.registry.counts(),
            "fleet": fleet,
            # the service-resilience ledger: what chaos cost and what
            # recovery bought, one block for dashboards and the report
            "service": {
                "health": self.health()["status"],
                "max_queue_depth": self.max_queue_depth,
                "shed_requests": self.shed_requests,
                "deduped_submissions": self.registry.deduped_submissions,
                "orphans_requeued": self.registry.orphans_requeued,
                "torn_records_salvaged": self.registry.torn_records_salvaged,
                "torn_records_skipped": self.registry.torn_records_skipped,
                "suspended_runs": fleet["suspended_runs"],
                "resumes": fleet["resumes"],
                "replayed_steps": fleet["replayed_steps"],
                "cache_evictions": fleet["cache_evictions"],
            },
        }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the :class:`SimulationService`."""

    protocol_version = "HTTP/1.1"
    #: silenced by default; ``--verbose`` flips it
    quiet = True

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: D102
        if not self.quiet:
            super().log_message(fmt, *args)

    # -- plumbing ----------------------------------------------------------
    def _send(self, code: int, payload: dict,
              headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        data = json.loads(raw.decode() or "{}")
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _query(self) -> dict:
        from urllib.parse import parse_qs, urlparse

        q = parse_qs(urlparse(self.path).query)
        return {k: v[0] for k, v in q.items()}

    def _route(self) -> list:
        from urllib.parse import urlparse

        return [p for p in urlparse(self.path).path.split("/") if p]

    # -- verbs -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        parts = self._route()
        if parts == ["healthz"]:
            # liveness stays 200 even when shedding — a saturated server
            # is alive; the degradation state is in the body
            self._send(200, self.service.health())
        elif parts == ["stats"]:
            self._send(200, self.service.stats())
        elif parts == ["runs"]:
            state = self._query().get("state")
            self._send(200, {"runs": [r.summary() for r in
                                      self.service.registry.list(state)]})
        elif len(parts) == 2 and parts[0] == "runs":
            out = self.service.run_status(parts[1])
            if out is None:
                self._send(404, {"error": f"no run {parts[1]!r}"})
            else:
                self._send(200, out)
        elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "metrics":
            q = self._query()
            limit = int(q["tail"]) if "tail" in q else None
            out = self.service.run_metrics(parts[1], limit=limit)
            if out is None:
                self._send(404, {"error": f"no run {parts[1]!r}"})
            else:
                self._send(200, out)
        else:
            self._send(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        parts = self._route()
        try:
            if parts == ["runs"]:
                body = self._read_body()
                self._send(201, self.service.submit(body))
            elif (len(parts) == 3 and parts[0] == "runs"
                    and parts[2] == "cancel"):
                state = self.service.registry.cancel(parts[1])
                if state is None:
                    self._send(404, {"error": f"no run {parts[1]!r}"})
                else:
                    self._send(200, {"id": parts[1], "state": state})
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except Overloaded as exc:
            self._send(429, {"error": str(exc),
                             "retry_after_s": exc.retry_after},
                       headers={"Retry-After": f"{exc.retry_after:.0f}"})
        except Draining as exc:
            self._send(503, {"error": str(exc),
                             "retry_after_s": exc.retry_after},
                       headers={"Retry-After": f"{exc.retry_after:.0f}"})
        except (ValueError, KeyError) as exc:
            self._send(400, {"error": str(exc)})


def make_server(root, port: int = 0, host: str = "127.0.0.1",
                workers: int = 2, executor: str = "pool",
                **fleet_kwargs) -> ThreadingHTTPServer:
    """Build (but don't start) the service and its HTTP server.

    Returns a :class:`ThreadingHTTPServer` with the started
    :class:`SimulationService` attached as ``.service``; call
    ``serve_forever()`` to accept traffic and ``.service.stop()`` +
    ``shutdown()`` to tear down.  ``port=0`` binds an ephemeral port
    (``server.server_address[1]`` has the real one).
    """
    service = SimulationService(root, workers=workers, executor=executor,
                                **fleet_kwargs)
    httpd = ThreadingHTTPServer((host, port), ServiceHandler)
    httpd.daemon_threads = True
    httpd.service = service  # type: ignore[attr-defined]
    service.start()
    return httpd
