"""Persistent run registry: one directory per run, states, priorities.

Layout under the service root::

    <root>/runs/<id>/
        deck.inputs     the submitted input deck (verbatim text)
        run.json        the registry record (atomically rewritten on change)
        metrics.jsonl   streamed per-step observability record (the worker)
        trace.json      Chrome trace (optional, worker)
        result.json     terminal summary written by the worker
        CANCEL          flag file: a running run polls this between steps

The in-memory index is rebuilt from disk on startup, so a restarted
service keeps its history; runs found in state ``running`` at startup
were orphaned by a crash and are marked ``failed``.  All mutations are
serialized under one lock (HTTP handler threads and the fleet pump
share the registry) and every record change is persisted with an atomic
replace, so a killed service never leaves a torn ``run.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

RUN_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a run can no longer leave
TERMINAL_STATES = ("done", "failed", "cancelled")

DECK_NAME = "deck.inputs"
RECORD_NAME = "run.json"
RESULT_NAME = "result.json"
CANCEL_NAME = "CANCEL"


@dataclass
class RunRecord:
    """One run's registry entry (the ``run.json`` schema)."""

    id: str
    state: str = "queued"
    priority: int = 0
    label: str = ""
    #: service-enforced budgets (None = unbounded)
    max_steps: Optional[int] = None
    max_wall_s: Optional[float] = None
    #: optional override of the deck's run.steps
    steps: Optional[int] = None
    #: record a Chrome trace alongside the metrics JSONL
    trace: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: why the run ended (budget message, error, "cancelled by request")
    reason: str = ""
    #: fleet lane that ran it (0 = inline/driver)
    worker: Optional[int] = None
    #: dispatch attempts (>1 means the supervisor re-submitted it)
    attempts: int = 0
    #: terminal summary from the worker's result.json
    result: dict = field(default_factory=dict)

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish seconds (the load bench's end-to-end metric)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def summary(self) -> dict:
        out = asdict(self)
        out["latency_s"] = self.latency_s
        return out


class RunRegistry:
    """Thread-safe, disk-persistent index of every submitted run."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._records: Dict[str, RunRecord] = {}
        self._seq = 0
        self._load_existing()

    # -- persistence -------------------------------------------------------
    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def _save(self, rec: RunRecord) -> None:
        path = self.run_dir(rec.id) / RECORD_NAME
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(fd, "w") as f:
            json.dump(asdict(rec), f, indent=1)
        os.replace(tmp, path)

    def _load_existing(self) -> None:
        for d in sorted(self.runs_dir.iterdir()) if self.runs_dir.exists() else []:
            rec_path = d / RECORD_NAME
            if not d.is_dir() or not rec_path.exists():
                continue
            try:
                data = json.loads(rec_path.read_text())
                rec = RunRecord(**{k: v for k, v in data.items()
                                   if k in RunRecord.__dataclass_fields__})
            except (ValueError, TypeError):
                continue  # torn or foreign file: skip, don't crash startup
            if rec.state == "running":
                # orphaned by a crashed/killed service process
                rec.state = "failed"
                rec.reason = "orphaned: service restarted mid-run"
                rec.finished_at = time.time()
                self._save(rec)
            self._records[rec.id] = rec
            try:
                self._seq = max(self._seq, int(rec.id.lstrip("r")))
            except ValueError:
                pass

    # -- submission --------------------------------------------------------
    def submit(self, deck_text: str, priority: int = 0, label: str = "",
               max_steps: Optional[int] = None,
               max_wall_s: Optional[float] = None,
               steps: Optional[int] = None, trace: bool = False) -> RunRecord:
        """Queue one run: create its directory, persist deck + record."""
        with self._lock:
            self._seq += 1
            rec = RunRecord(
                id=f"r{self._seq:05d}", priority=int(priority),
                label=str(label),
                max_steps=int(max_steps) if max_steps else None,
                max_wall_s=float(max_wall_s) if max_wall_s else None,
                steps=int(steps) if steps else None, trace=bool(trace),
                submitted_at=time.time())
            d = self.run_dir(rec.id)
            d.mkdir(parents=True, exist_ok=True)
            (d / DECK_NAME).write_text(deck_text)
            self._records[rec.id] = rec
            self._save(rec)
            return rec

    # -- queries -----------------------------------------------------------
    def get(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            return self._records.get(run_id)

    def list(self, state: Optional[str] = None) -> List[RunRecord]:
        with self._lock:
            recs = sorted(self._records.values(), key=lambda r: r.id)
        if state is not None:
            recs = [r for r in recs if r.state == state]
        return recs

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {s: 0 for s in RUN_STATES}
            for rec in self._records.values():
                out[rec.state] = out.get(rec.state, 0) + 1
            return out

    # -- scheduling --------------------------------------------------------
    def claim_next(self) -> Optional[RunRecord]:
        """Atomically move the best queued run to ``running``.

        Highest priority first; FIFO (submission order) within a
        priority class.  Returns None when nothing is queued.
        """
        with self._lock:
            queued = [r for r in self._records.values() if r.state == "queued"]
            if not queued:
                return None
            rec = min(queued, key=lambda r: (-r.priority, r.id))
            rec.state = "running"
            rec.started_at = time.time()
            rec.attempts += 1
            self._save(rec)
            return rec

    def note_resubmit(self, run_id: str) -> None:
        """Count a supervisor re-submission against the run."""
        with self._lock:
            rec = self._records.get(run_id)
            if rec is not None:
                rec.attempts += 1
                self._save(rec)

    # -- completion --------------------------------------------------------
    def finish(self, run_id: str, state: str, reason: str = "",
               worker: Optional[int] = None,
               result: Optional[dict] = None) -> Optional[RunRecord]:
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self._lock:
            rec = self._records.get(run_id)
            if rec is None or rec.state in TERMINAL_STATES:
                return rec
            rec.state = state
            rec.reason = reason
            rec.worker = worker
            rec.finished_at = time.time()
            if result:
                rec.result = result
            self._save(rec)
            return rec

    # -- cancellation ------------------------------------------------------
    def cancel(self, run_id: str) -> Optional[str]:
        """Request cancellation; returns the resulting state or None.

        A queued run is cancelled immediately; a running run gets its
        ``CANCEL`` flag raised and finishes at the next step boundary; a
        terminal run is left untouched (its state is returned).
        """
        with self._lock:
            rec = self._records.get(run_id)
            if rec is None:
                return None
            if rec.state == "queued":
                rec.state = "cancelled"
                rec.reason = "cancelled before start"
                rec.finished_at = time.time()
                self._save(rec)
                return rec.state
            if rec.state == "running":
                (self.run_dir(run_id) / CANCEL_NAME).touch()
                return "cancelling"
            return rec.state

    # -- worker-side results -----------------------------------------------
    def read_result(self, run_id: str) -> Optional[dict]:
        """The worker-written ``result.json``, or None if absent/torn."""
        path = self.run_dir(run_id) / RESULT_NAME
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None
