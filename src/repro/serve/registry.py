"""Persistent run registry: one directory per run, states, priorities.

Layout under the service root::

    <root>/runs/<id>/
        deck.inputs     the submitted input deck (verbatim text)
        run.json        the registry record (atomically rewritten on change)
        metrics.jsonl   streamed per-step observability record (the worker)
        trace.json      Chrome trace (optional, worker)
        result.json     terminal summary written by the worker
        CANCEL          flag file: a running run polls this between steps

The in-memory index is rebuilt from disk on startup, so a restarted
service keeps its history; runs found in state ``running`` at startup
were orphaned by a crash and are **requeued** (promoted back to
resumable work — the worker resumes them from their last valid
autocheckpoint) rather than failed.  All mutations are serialized under
one lock (HTTP handler threads and the fleet pump share the registry)
and every record change is persisted with an atomic replace, so a
killed service never leaves a torn ``run.json``.  Torn records from
*outside* the atomic path (filesystem damage, the chaos harness) are
salvaged from the run directory's ground truth — the deck plus
``result.json`` — so even a mangled index completes every run exactly
once.

Submissions may carry an **idempotency key**: re-submitting the same
key returns the already-registered run instead of creating a duplicate,
which is what makes client-side retry of a torn/timed-out POST safe.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

RUN_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a run can no longer leave
TERMINAL_STATES = ("done", "failed", "cancelled")

DECK_NAME = "deck.inputs"
RECORD_NAME = "run.json"
RESULT_NAME = "result.json"
CANCEL_NAME = "CANCEL"
#: flag file: a running run drains to a checkpoint at the next step
#: boundary and reports ``suspended`` (graceful shutdown / drain)
DRAIN_NAME = "DRAIN"


@dataclass
class RunRecord:
    """One run's registry entry (the ``run.json`` schema)."""

    id: str
    state: str = "queued"
    priority: int = 0
    label: str = ""
    #: service-enforced budgets (None = unbounded)
    max_steps: Optional[int] = None
    max_wall_s: Optional[float] = None
    #: optional override of the deck's run.steps
    steps: Optional[int] = None
    #: record a Chrome trace alongside the metrics JSONL
    trace: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: why the run ended (budget message, error, "cancelled by request")
    reason: str = ""
    #: fleet lane that ran it (0 = inline/driver)
    worker: Optional[int] = None
    #: dispatch attempts (>1 means the supervisor re-submitted it)
    attempts: int = 0
    #: client-supplied dedupe token (same key = same run, never two)
    idempotency_key: str = ""
    #: times this run was promoted back to ``queued`` (drain, orphan
    #: reconciliation after a crashed service, fleet shutdown)
    requeues: int = 0
    #: terminal summary from the worker's result.json
    result: dict = field(default_factory=dict)

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish seconds (the load bench's end-to-end metric)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def summary(self) -> dict:
        out = asdict(self)
        out["latency_s"] = self.latency_s
        return out


class RunRegistry:
    """Thread-safe, disk-persistent index of every submitted run."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._records: Dict[str, RunRecord] = {}
        self._by_key: Dict[str, str] = {}
        self._seq = 0
        #: orphaned ``running`` runs promoted back to ``queued`` at startup
        self.orphans_requeued = 0
        #: torn run.json files rebuilt from the run directory at startup
        self.torn_records_salvaged = 0
        #: torn/unparsable run.json files skipped at startup (no deck to
        #: salvage from)
        self.torn_records_skipped = 0
        #: submissions answered from the idempotency-key index
        self.deduped_submissions = 0
        self._load_existing()

    # -- persistence -------------------------------------------------------
    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def _save(self, rec: RunRecord) -> None:
        path = self.run_dir(rec.id) / RECORD_NAME
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(fd, "w") as f:
            json.dump(asdict(rec), f, indent=1)
        os.replace(tmp, path)

    def _load_existing(self) -> None:
        for d in sorted(self.runs_dir.iterdir()) if self.runs_dir.exists() else []:
            rec_path = d / RECORD_NAME
            if not d.is_dir() or not rec_path.exists():
                continue
            try:
                data = json.loads(rec_path.read_text())
                rec = RunRecord(**{k: v for k, v in data.items()
                                   if k in RunRecord.__dataclass_fields__})
            except (ValueError, TypeError):
                # torn record: rebuild it from the run directory so the
                # run still completes exactly once (deck + result.json
                # carry enough truth); skip only when there is nothing
                # to salvage from
                rec = self._salvage(d)
                if rec is None:
                    self.torn_records_skipped += 1
                    continue
                self.torn_records_salvaged += 1
            if rec.state == "running":
                # orphaned by a crashed/killed service process: promote it
                # back to resumable work — the worker picks the run up from
                # its last valid autocheckpoint instead of replaying it
                rec.state = "queued"
                rec.reason = "orphaned by service restart; requeued"
                rec.started_at = None
                rec.requeues += 1
                self.orphans_requeued += 1
                # a stale drain flag must not immediately re-suspend it
                (d / DRAIN_NAME).unlink(missing_ok=True)
                self._save(rec)
            self._records[rec.id] = rec
            if rec.idempotency_key:
                self._by_key[rec.idempotency_key] = rec.id
            try:
                self._seq = max(self._seq, int(rec.id.lstrip("r")))
            except ValueError:
                pass

    def _salvage(self, d: Path) -> Optional[RunRecord]:
        """Rebuild a torn record from its run directory's ground truth.

        The deck is the run's identity; a parseable ``result.json``
        proves the run already finished (its status is authoritative),
        otherwise the run is requeued so it still executes exactly once.
        Returns None when even the deck is gone.
        """
        if not (d / DECK_NAME).exists():
            return None
        rec = RunRecord(id=d.name,
                        reason="registry record torn; salvaged from run "
                               "directory", submitted_at=time.time())
        result = None
        try:
            result = json.loads((d / RESULT_NAME).read_text())
        except (OSError, ValueError):
            pass
        if (isinstance(result, dict)
                and result.get("status") in TERMINAL_STATES):
            rec.state = result["status"]
            rec.result = result
            rec.finished_at = time.time()
        else:
            rec.requeues = 1
            (d / DRAIN_NAME).unlink(missing_ok=True)
        self._save(rec)
        return rec

    # -- submission --------------------------------------------------------
    def submit(self, deck_text: str, priority: int = 0, label: str = "",
               max_steps: Optional[int] = None,
               max_wall_s: Optional[float] = None,
               steps: Optional[int] = None, trace: bool = False,
               idempotency_key: str = "") -> RunRecord:
        """Queue one run: create its directory, persist deck + record.

        A repeated ``idempotency_key`` returns the run it already names
        (whatever its state) instead of creating a duplicate — retried
        submissions are absorbed, never re-executed.
        """
        with self._lock:
            if idempotency_key:
                existing = self._by_key.get(idempotency_key)
                if existing is not None:
                    self.deduped_submissions += 1
                    return self._records[existing]
            self._seq += 1
            rec = RunRecord(
                id=f"r{self._seq:05d}", priority=int(priority),
                label=str(label),
                max_steps=int(max_steps) if max_steps else None,
                max_wall_s=float(max_wall_s) if max_wall_s else None,
                steps=int(steps) if steps else None, trace=bool(trace),
                idempotency_key=str(idempotency_key or ""),
                submitted_at=time.time())
            d = self.run_dir(rec.id)
            d.mkdir(parents=True, exist_ok=True)
            (d / DECK_NAME).write_text(deck_text)
            self._records[rec.id] = rec
            if rec.idempotency_key:
                self._by_key[rec.idempotency_key] = rec.id
            self._save(rec)
            return rec

    # -- queries -----------------------------------------------------------
    def get(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            return self._records.get(run_id)

    def lookup_key(self, idempotency_key: str) -> Optional[RunRecord]:
        """The run an idempotency key already names, if any."""
        with self._lock:
            rid = self._by_key.get(idempotency_key)
            return self._records.get(rid) if rid else None

    def list(self, state: Optional[str] = None) -> List[RunRecord]:
        with self._lock:
            recs = sorted(self._records.values(), key=lambda r: r.id)
        if state is not None:
            recs = [r for r in recs if r.state == state]
        return recs

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {s: 0 for s in RUN_STATES}
            for rec in self._records.values():
                out[rec.state] = out.get(rec.state, 0) + 1
            return out

    # -- scheduling --------------------------------------------------------
    def claim_next(self) -> Optional[RunRecord]:
        """Atomically move the best queued run to ``running``.

        Highest priority first; FIFO (submission order) within a
        priority class.  Returns None when nothing is queued.
        """
        with self._lock:
            queued = [r for r in self._records.values() if r.state == "queued"]
            if not queued:
                return None
            rec = min(queued, key=lambda r: (-r.priority, r.id))
            rec.state = "running"
            rec.started_at = time.time()
            rec.attempts += 1
            # a requeued run must not resurrect a spent drain request
            (self.run_dir(rec.id) / DRAIN_NAME).unlink(missing_ok=True)
            self._save(rec)
            return rec

    def note_resubmit(self, run_id: str) -> None:
        """Count a supervisor re-submission against the run."""
        with self._lock:
            rec = self._records.get(run_id)
            if rec is not None:
                rec.attempts += 1
                self._save(rec)

    def requeue(self, run_id: str, reason: str = "") -> Optional[RunRecord]:
        """Promote a ``running`` run back to ``queued`` (resumable work).

        Used when a run is drained to a checkpoint (graceful shutdown),
        when the fleet stops with the run still in flight, and by orphan
        reconciliation at startup.  Terminal runs are left untouched.
        """
        with self._lock:
            rec = self._records.get(run_id)
            if rec is None or rec.state != "running":
                return rec
            rec.state = "queued"
            rec.reason = reason
            rec.started_at = None
            rec.requeues += 1
            (self.run_dir(run_id) / DRAIN_NAME).unlink(missing_ok=True)
            self._save(rec)
            return rec

    def request_drain(self, run_id: str) -> bool:
        """Raise the run's DRAIN flag (checkpoint + suspend at the next
        step boundary); True if the run was running."""
        with self._lock:
            rec = self._records.get(run_id)
            if rec is None or rec.state != "running":
                return False
            (self.run_dir(run_id) / DRAIN_NAME).touch()
            return True

    # -- completion --------------------------------------------------------
    def finish(self, run_id: str, state: str, reason: str = "",
               worker: Optional[int] = None,
               result: Optional[dict] = None) -> Optional[RunRecord]:
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self._lock:
            rec = self._records.get(run_id)
            if rec is None or rec.state in TERMINAL_STATES:
                return rec
            rec.state = state
            rec.reason = reason
            rec.worker = worker
            rec.finished_at = time.time()
            if result:
                rec.result = result
            self._save(rec)
            return rec

    # -- cancellation ------------------------------------------------------
    def cancel(self, run_id: str) -> Optional[str]:
        """Request cancellation; returns the resulting state or None.

        A queued run is cancelled immediately; a running run gets its
        ``CANCEL`` flag raised and finishes at the next step boundary; a
        terminal run is left untouched (its state is returned).
        """
        with self._lock:
            rec = self._records.get(run_id)
            if rec is None:
                return None
            if rec.state == "queued":
                rec.state = "cancelled"
                rec.reason = "cancelled before start"
                rec.finished_at = time.time()
                self._save(rec)
                return rec.state
            if rec.state == "running":
                (self.run_dir(run_id) / CANCEL_NAME).touch()
                return "cancelling"
            return rec.state

    # -- worker-side results -----------------------------------------------
    def read_result(self, run_id: str) -> Optional[dict]:
        """The worker-written ``result.json``, or None if absent/torn."""
        path = self.run_dir(run_id) / RESULT_NAME
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None
