"""The shared worker fleet: many runs, one supervised pool.

One :class:`~repro.resilience.supervisor.SupervisedPoolExecutor` serves
every run the service ever schedules — there is no per-run pool.  Whole
runs travel as ``serve_run`` payloads (see :mod:`repro.serve.worker`)
through the same dispatch machinery the solver's box kernels use, which
buys the serving layer the supervisor's whole recovery ladder for free:

- a worker that dies mid-run misses its deadline, the pool is respawned,
  and the run is re-dispatched (the worker module resets the run's
  artifacts first, so re-execution is idempotent);
- after ``max_pool_restarts`` respawns the fleet degrades to inline
  execution in the service process — runs finish slower instead of the
  service dropping traffic;
- a run that fails beyond the retry budget surfaces as
  :class:`~repro.resilience.supervisor.TaskFailedError` and is recorded
  ``failed`` in the registry; queued runs behind it are unaffected.

A single pump thread owns all executor interaction (claim queued runs
while lanes are free, deliver completions, reconcile failures), so the
supervisor never sees concurrent callers.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Optional

from repro.resilience.stats import ResilienceStats
from repro.resilience.supervisor import TaskFailedError
from repro.runtime.executors import make_executor, set_worker_context
from repro.serve.registry import RunRegistry


class _RunTask:
    """The minimal task shape the executors expect (tid/name/payload)."""

    __slots__ = ("tid", "name", "payload")

    def __init__(self, tid: int, name: str, payload: dict) -> None:
        self.tid = tid
        self.name = name
        self.payload = payload


class WorkerFleet:
    """Schedules registry runs onto one shared supervised pool."""

    def __init__(self, registry: RunRegistry, cache_dir,
                 workers: int = 2, task_retries: int = 1,
                 backoff: float = 0.05, task_timeout: float = 300.0,
                 max_pool_restarts: int = 3,
                 executor: str = "pool") -> None:
        self.registry = registry
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.stats = ResilienceStats()
        if executor not in ("pool", "inline"):
            raise ValueError(
                f"fleet executor must be 'pool' or 'inline', got {executor!r}")
        self.executor_kind = executor
        self.workers = max(1, int(workers))
        self.executor = None
        if executor == "pool":
            # whole runs build their own kernel sets inside the worker, so
            # the fork context carries no driver kernels — but it must be
            # *set* or the pool refuses to start
            import repro.runtime.executors as _ex

            if _ex._WORKER_CTX is None:
                set_worker_context(None, None)
            self.executor = make_executor(
                "pool", self.workers,
                supervision=dict(task_retries=task_retries, backoff=backoff,
                                 task_timeout=task_timeout,
                                 max_pool_restarts=max_pool_restarts,
                                 stats=self.stats))
        #: tid -> run id for every dispatched, undelivered run
        self._active: Dict[int, str] = {}
        self._tid = 0
        #: test hook: a fault marker planted on the next dispatched run
        #: (e.g. ``("kill",)`` simulates a worker dying mid-run)
        self.fault_next: Optional[tuple] = None
        #: aggregated cache counters shipped back by finished runs
        self.cache_totals: Dict[str, Dict[str, int]] = {}
        self._done_runs = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerFleet":
        self._thread = threading.Thread(target=self._pump, daemon=True,
                                        name="fleet-pump")
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if self.executor is not None:
            self.executor.shutdown()
        for tid, run_id in list(self._active.items()):
            self.registry.finish(run_id, "failed", reason="fleet stopped")
        self._active.clear()

    @property
    def degraded(self) -> bool:
        return bool(getattr(self.executor, "degraded", False))

    def lanes_busy(self) -> int:
        return len(self._active)

    # -- the pump thread ---------------------------------------------------
    def _pump(self) -> None:
        while not self._stop.is_set():
            dispatched = self._fill_lanes()
            if self.executor is None:
                # inline fleet (no pool): _fill_lanes already ran the run
                if not dispatched:
                    time.sleep(0.02)
                continue
            if not self._active:
                time.sleep(0.02)
                continue
            try:
                self.executor.wait_one(timeout=0.25)
            except queue.Empty:
                continue
            except TaskFailedError as exc:
                # the supervisor dropped the entry before raising; find
                # which run(s) it abandoned and record the failure
                self._reconcile(str(exc))

    def _fill_lanes(self) -> int:
        """Claim queued runs while lanes are free; returns claims made."""
        claimed = 0
        limit = self.workers if self.executor is not None else 1
        while len(self._active) < limit:
            rec = self.registry.claim_next()
            if rec is None:
                break
            self._dispatch_run(rec)
            claimed += 1
        return claimed

    def _dispatch_run(self, rec) -> None:
        payload = {
            "op": "serve_run",
            "run_id": rec.id,
            "run_dir": str(self.registry.run_dir(rec.id)),
            "cache_dir": self.cache_dir,
            "steps": rec.steps,
            "max_steps": rec.max_steps,
            "max_wall_s": rec.max_wall_s,
            "trace": rec.trace,
        }
        if self.fault_next is not None:
            payload["_fault"] = self.fault_next
            self.fault_next = None
        self._tid += 1
        task = _RunTask(self._tid, f"run:{rec.id}", payload)
        self._active[task.tid] = rec.id
        if self.executor is None:
            self._run_task_inline(task)
            return
        try:
            self.executor.submit(task, self._on_done)
        except Exception as exc:  # pool refused (e.g. no fork): run inline
            self._active.pop(task.tid, None)
            self.registry.finish(rec.id, "failed",
                                 reason=f"dispatch failed: {exc}")

    def _run_task_inline(self, task: _RunTask) -> None:
        """Inline fleet mode: execute the run in the service process."""
        from repro.runtime.executors import _run_payload

        try:
            _run_payload(dict(task.payload))
        except Exception as exc:
            run_id = self._active.pop(task.tid, None)
            if run_id is not None:
                self.registry.finish(run_id, "failed", reason=str(exc))
            return
        self._on_done(task, 0, 0.0)

    # -- completion handling ------------------------------------------------
    def _on_done(self, task, worker, dur, lifecycle=None) -> None:
        run_id = self._active.pop(task.tid, None)
        if run_id is None:  # pragma: no cover - stale duplicate delivery
            return
        result = self.registry.read_result(run_id)
        if result is None:
            # the task "completed" but left no result: treat as failed
            self.registry.finish(run_id, "failed",
                                 reason="run finished without a result")
            return
        status = result.get("status", "failed")
        state = status if status in ("done", "failed", "cancelled") else "failed"
        self.registry.finish(run_id, state, reason=result.get("reason", ""),
                             worker=int(worker), result=result)
        self._merge_cache(result.get("cache") or {})
        self._done_runs += 1

    def _reconcile(self, reason: str) -> None:
        """Mark runs the supervisor abandoned (retry budget spent) failed."""
        inflight = getattr(self.executor, "_inflight", {})
        for tid in [t for t in self._active if t not in inflight]:
            run_id = self._active.pop(tid)
            # a result may still exist if the final inline attempt wrote
            # one before the supervisor gave up; prefer it
            result = self.registry.read_result(run_id)
            if result is not None and result.get("status") in (
                    "done", "failed", "cancelled"):
                self.registry.finish(run_id, result["status"],
                                     reason=result.get("reason", ""),
                                     result=result)
                self._merge_cache(result.get("cache") or {})
            else:
                self.registry.finish(run_id, "failed", reason=reason)

    def _merge_cache(self, counters: Dict[str, Dict[str, int]]) -> None:
        for kind, c in counters.items():
            acc = self.cache_totals.setdefault(kind, {"hits": 0, "misses": 0})
            acc["hits"] += int(c.get("hits", 0))
            acc["misses"] += int(c.get("misses", 0))

    # -- stats -------------------------------------------------------------
    def cache_hit_rate(self) -> Optional[float]:
        h = sum(c["hits"] for c in self.cache_totals.values())
        m = sum(c["misses"] for c in self.cache_totals.values())
        return h / (h + m) if (h + m) else None

    def snapshot(self) -> dict:
        return {
            "workers": self.workers,
            "executor": self.executor_kind,
            "busy": self.lanes_busy(),
            "degraded": self.degraded,
            "completed_runs": self._done_runs,
            "resilience": {k: v for k, v in self.stats.counters.items() if v},
            "cache": self.cache_totals,
            "cache_hit_rate": self.cache_hit_rate(),
        }
