"""The shared worker fleet: many runs, one supervised pool.

One :class:`~repro.resilience.supervisor.SupervisedPoolExecutor` serves
every run the service ever schedules — there is no per-run pool.  Whole
runs travel as ``serve_run`` payloads (see :mod:`repro.serve.worker`)
through the same dispatch machinery the solver's box kernels use, which
buys the serving layer the supervisor's whole recovery ladder for free:

- a worker that dies mid-run misses its deadline, the pool is respawned,
  and the run is re-dispatched — where it **resumes from its last valid
  autocheckpoint** (the worker module checkpoints every
  ``autocheckpoint_every`` steps into the run directory), so a lost
  worker costs at most the replay of one step instead of the whole run;
- after ``max_pool_restarts`` respawns the fleet degrades to inline
  execution in the service process — runs finish slower instead of the
  service dropping traffic;
- a run that fails beyond the retry budget surfaces as
  :class:`~repro.resilience.supervisor.TaskFailedError` and is recorded
  ``failed`` in the registry; queued runs behind it are unaffected;
- :meth:`WorkerFleet.drain` flags every in-flight run to checkpoint and
  suspend at its next step boundary, then requeues it — the graceful
  half of a service restart (the crash half is the registry's orphan
  reconciliation).

A single pump thread owns all executor interaction (claim queued runs
while lanes are free, deliver completions, reconcile failures), so the
supervisor never sees concurrent callers.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Optional

from repro.resilience.stats import ResilienceStats
from repro.resilience.supervisor import TaskFailedError
from repro.runtime.executors import make_executor, set_worker_context
from repro.serve.registry import RunRegistry


class _RunTask:
    """The minimal task shape the executors expect (tid/name/payload)."""

    __slots__ = ("tid", "name", "payload")

    def __init__(self, tid: int, name: str, payload: dict) -> None:
        self.tid = tid
        self.name = name
        self.payload = payload


class WorkerFleet:
    """Schedules registry runs onto one shared supervised pool."""

    def __init__(self, registry: RunRegistry, cache_dir,
                 workers: int = 2, task_retries: int = 1,
                 backoff: float = 0.05, task_timeout: float = 300.0,
                 max_pool_restarts: int = 3,
                 executor: str = "pool",
                 autocheckpoint_every: int = 1,
                 chaos=None) -> None:
        self.registry = registry
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.stats = ResilienceStats()
        if executor not in ("pool", "inline"):
            raise ValueError(
                f"fleet executor must be 'pool' or 'inline', got {executor!r}")
        self.executor_kind = executor
        self.workers = max(1, int(workers))
        #: per-run checkpoint cadence shipped with every dispatch (1 =
        #: every step, bounding a resume's replay to one step; 0 = off)
        self.autocheckpoint_every = int(autocheckpoint_every)
        #: optional :class:`repro.serve.chaos.ServiceFaultInjector`
        self.chaos = chaos
        self.executor = None
        if executor == "pool":
            # whole runs build their own kernel sets inside the worker, so
            # the fork context carries no driver kernels — but it must be
            # *set* or the pool refuses to start
            import repro.runtime.executors as _ex

            if _ex._WORKER_CTX is None:
                set_worker_context(None, None)
            self.executor = make_executor(
                "pool", self.workers,
                supervision=dict(task_retries=task_retries, backoff=backoff,
                                 task_timeout=task_timeout,
                                 max_pool_restarts=max_pool_restarts,
                                 stats=self.stats))
        #: tid -> run id for every dispatched, undelivered run
        self._active: Dict[int, str] = {}
        self._tid = 0
        #: dispatch counter (chaos plans address "the Nth dispatched run")
        self._dispatches = 0
        #: test hook: a fault marker planted on the next dispatched run
        #: (e.g. ``("kill",)`` simulates a worker dying mid-run)
        self.fault_next: Optional[tuple] = None
        #: aggregated cache counters shipped back by finished runs
        self.cache_totals: Dict[str, Dict[str, int]] = {}
        self.cache_evictions = 0
        #: recovery accounting aggregated from finished runs' results
        self.resumes = 0
        self.replayed_steps = 0
        self.suspended_runs = 0
        self._done_runs = 0
        self._draining = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerFleet":
        self._thread = threading.Thread(target=self._pump, daemon=True,
                                        name="fleet-pump")
        self._thread.start()
        return self

    def drain(self, grace_s: float = 30.0) -> bool:
        """Flag every in-flight run to checkpoint + suspend; wait for it.

        New claims stop immediately; each running run sees its ``DRAIN``
        flag at the next step boundary, saves a crash-safe checkpoint
        into its run directory and reports ``suspended``, which the pump
        maps back to ``queued`` (resumable by the next service
        generation).  Returns True when every lane emptied within the
        grace window.
        """
        self._draining = True
        for run_id in list(self._active.values()):
            self.registry.request_drain(run_id)
        t_end = time.monotonic() + grace_s
        while self._active and time.monotonic() < t_end:
            time.sleep(0.02)
        return not self._active

    def stop(self, timeout: float = 10.0, abandon: bool = False) -> None:
        """Shut the fleet down.

        In-flight runs are requeued (they resume from their last
        checkpoint when a fleet next picks them up) — unless ``abandon``
        is set, the chaos harness's stand-in for a hard service crash:
        records are left ``running`` on disk exactly as ``kill -9``
        would, for the next generation's orphan reconciliation to find.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if self.executor is not None:
            self.executor.shutdown()
        if not abandon:
            for tid, run_id in list(self._active.items()):
                self.registry.requeue(
                    run_id, reason="fleet stopped mid-run; requeued")
        self._active.clear()

    @property
    def degraded(self) -> bool:
        return bool(getattr(self.executor, "degraded", False))

    @property
    def draining(self) -> bool:
        return self._draining

    def lanes_busy(self) -> int:
        return len(self._active)

    # -- the pump thread ---------------------------------------------------
    def _pump(self) -> None:
        while not self._stop.is_set():
            dispatched = self._fill_lanes()
            if self.executor is None:
                # inline fleet (no pool): _fill_lanes already ran the run
                if not dispatched:
                    time.sleep(0.02)
                continue
            if not self._active:
                time.sleep(0.02)
                continue
            try:
                self.executor.wait_one(timeout=0.25)
            except queue.Empty:
                continue
            except TaskFailedError as exc:
                # the supervisor dropped the entry before raising; find
                # which run(s) it abandoned and record the failure
                self._reconcile(str(exc))

    def _fill_lanes(self) -> int:
        """Claim queued runs while lanes are free; returns claims made."""
        if self._draining:
            return 0
        claimed = 0
        limit = self.workers if self.executor is not None else 1
        while len(self._active) < limit:
            rec = self.registry.claim_next()
            if rec is None:
                break
            self._dispatch_run(rec)
            claimed += 1
        return claimed

    def _dispatch_run(self, rec) -> None:
        payload = {
            "op": "serve_run",
            "run_id": rec.id,
            "run_dir": str(self.registry.run_dir(rec.id)),
            "cache_dir": self.cache_dir,
            "steps": rec.steps,
            "max_steps": rec.max_steps,
            "max_wall_s": rec.max_wall_s,
            "trace": rec.trace,
            "autocheckpoint_every": self.autocheckpoint_every,
        }
        self._dispatches += 1
        if self.fault_next is not None:
            payload["_fault"] = self.fault_next
            self.fault_next = None
        elif self.chaos is not None:
            fault = self.chaos.fault_for_dispatch(
                self._dispatches, rec.id, registry=self.registry,
                cache_dir=self.cache_dir)
            if fault is not None:
                payload["_fault"] = fault
        self._tid += 1
        task = _RunTask(self._tid, f"run:{rec.id}", payload)
        self._active[task.tid] = rec.id
        if self.executor is None:
            self._run_task_inline(task)
            return
        try:
            self.executor.submit(task, self._on_done)
        except Exception as exc:  # pool refused (e.g. no fork): run inline
            self._active.pop(task.tid, None)
            self.registry.finish(rec.id, "failed",
                                 reason=f"dispatch failed: {exc}")

    def _run_task_inline(self, task: _RunTask) -> None:
        """Inline fleet mode: execute the run in the service process."""
        from repro.runtime.executors import _run_payload

        try:
            _run_payload(dict(task.payload))
        except Exception as exc:
            run_id = self._active.pop(task.tid, None)
            if run_id is not None:
                self.registry.finish(run_id, "failed", reason=str(exc))
            return
        self._on_done(task, 0, 0.0)

    # -- completion handling ------------------------------------------------
    def _on_done(self, task, worker, dur, lifecycle=None) -> None:
        run_id = self._active.pop(task.tid, None)
        if run_id is None:  # pragma: no cover - stale duplicate delivery
            return
        result = self.registry.read_result(run_id)
        if result is None:
            # the task "completed" but left no result: treat as failed
            self.registry.finish(run_id, "failed",
                                 reason="run finished without a result")
            return
        status = result.get("status", "failed")
        if status == "suspended":
            # drained to a checkpoint: back to the queue, resumable
            self.suspended_runs += 1
            self._merge_recovery(result)
            self.registry.requeue(run_id, reason=result.get("reason", ""))
            return
        state = status if status in ("done", "failed", "cancelled") else "failed"
        self.registry.finish(run_id, state, reason=result.get("reason", ""),
                             worker=int(worker), result=result)
        self._merge_recovery(result)
        self._done_runs += 1

    def _reconcile(self, reason: str) -> None:
        """Mark runs the supervisor abandoned (retry budget spent) failed."""
        inflight = getattr(self.executor, "_inflight", {})
        for tid in [t for t in self._active if t not in inflight]:
            run_id = self._active.pop(tid)
            # a result may still exist if the final inline attempt wrote
            # one before the supervisor gave up; prefer it
            result = self.registry.read_result(run_id)
            if result is not None and result.get("status") in (
                    "done", "failed", "cancelled"):
                self.registry.finish(run_id, result["status"],
                                     reason=result.get("reason", ""),
                                     result=result)
                self._merge_recovery(result)
            else:
                self.registry.finish(run_id, "failed", reason=reason)

    def _merge_recovery(self, result: dict) -> None:
        """Fold one result's cache + recovery counters into the totals."""
        for kind, c in (result.get("cache") or {}).items():
            acc = self.cache_totals.setdefault(kind, {"hits": 0, "misses": 0})
            acc["hits"] += int(c.get("hits", 0))
            acc["misses"] += int(c.get("misses", 0))
        self.cache_evictions += int(result.get("cache_evictions", 0))
        if result.get("resumed"):
            self.resumes += 1
            self.replayed_steps += int(result.get("replayed_steps", 0))
            # a resume proves the supervisor re-dispatched the run (the
            # supervisor itself offers no resubmit hook): reflect the
            # extra attempt on the record
            run_id = result.get("run_id")
            if run_id:
                self.registry.note_resubmit(run_id)

    # -- stats -------------------------------------------------------------
    def cache_hit_rate(self) -> Optional[float]:
        h = sum(c["hits"] for c in self.cache_totals.values())
        m = sum(c["misses"] for c in self.cache_totals.values())
        return h / (h + m) if (h + m) else None

    def snapshot(self) -> dict:
        return {
            "workers": self.workers,
            "executor": self.executor_kind,
            "busy": self.lanes_busy(),
            "degraded": self.degraded,
            "draining": self._draining,
            "completed_runs": self._done_runs,
            "resumes": self.resumes,
            "replayed_steps": self.replayed_steps,
            "suspended_runs": self.suspended_runs,
            "resilience": {k: v for k, v in self.stats.counters.items() if v},
            "cache": self.cache_totals,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate(),
        }
