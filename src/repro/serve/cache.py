"""Cross-run immutable cache keyed by a canonical case-config hash.

Multiple runs of the same case configuration recompute the same
expensive immutables: the grid coordinates of every patch (complex
hyperbolic/trigonometric mappings), the 27-component curvilinear metrics
arrays derived from them (Sec. III-C of the paper), EOS lookup tables,
and the per-ratio interpolation weight tables.  This cache shares them
across runs — and across the fleet's worker *processes* — through a
content-addressed store of ``.npz`` files under one directory:

    <root>/<kind>/<sha256[:24]>.npz

Keys are canonical: a JSON rendering of the identifying scalars (case
class and parameters, domain, level, region — or, for metrics, the raw
coordinate bytes themselves) is hashed with SHA-256, so two runs agree
on an entry if and only if they would compute identical arrays.  Writes
are atomic (temp file + ``os.replace``), so concurrent workers racing on
the same miss publish identical complete files and last-write-wins is
harmless.  Loads round-trip ``float64`` arrays bit-exactly, which is
what keeps a cache-hit trajectory bitwise identical to a cache-miss one.

Each :class:`CaseCache` instance counts hits and misses per kind; the
serve worker ships its counters back in ``result.json`` and the service
aggregates them into ``GET /stats`` and the load bench's hit-rate row.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: cache entry kinds, in the order the stats report them
CACHE_KINDS = ("coords", "metrics", "eos", "interp")

#: scalar types admitted into a canonical signature
_SCALARS = (bool, int, float, str)


def _signature_value(value):
    """A JSON-able rendering of one identifying attribute, or None."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (tuple, list)) and all(
            isinstance(v, _SCALARS) for v in value):
        return list(value)
    return None


def object_signature(obj) -> Dict[str, object]:
    """Canonical identifying scalars of a case/EOS object.

    Collects every scalar (or scalar-tuple) attribute from the instance
    and its class — case parameters like ``mach``, ``angle_deg``, or
    ``gamma`` are plain attributes, so any constructor argument that
    changes the produced arrays changes the signature.
    """
    sig: Dict[str, object] = {"__class__": type(obj).__qualname__}
    names = set(vars(type(obj))) | set(getattr(obj, "__dict__", {}))
    for name in sorted(names):
        if name.startswith("_"):
            continue
        try:
            rendered = _signature_value(getattr(obj, name))
        except Exception:
            continue
        if rendered is not None:
            sig[name] = rendered
    return sig


def case_config_hash(case, extra: Optional[dict] = None) -> str:
    """The canonical case-config hash (hex) keying this case's entries."""
    sig = object_signature(case)
    if extra:
        sig["__extra__"] = extra
    blob = json.dumps(sig, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CaseCache:
    """File-backed store of immutable per-case arrays with hit counters."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits: Dict[str, int] = {k: 0 for k in CACHE_KINDS}
        self.misses: Dict[str, int] = {k: 0 for k in CACHE_KINDS}
        #: torn/unreadable entries deleted from the store (per kind)
        self.evictions: Dict[str, int] = {k: 0 for k in CACHE_KINDS}

    # -- generic machinery -------------------------------------------------
    def _path(self, kind: str, key_hash: str) -> Path:
        return self.root / kind / f"{key_hash[:24]}.npz"

    @staticmethod
    def _hash_parts(*parts) -> str:
        h = hashlib.sha256()
        for part in parts:
            if isinstance(part, bytes):
                h.update(part)
            else:
                h.update(json.dumps(part, sort_keys=True,
                                    separators=(",", ":")).encode())
            h.update(b"\x00")
        return h.hexdigest()

    def get_or_compute(self, kind: str, key_hash: str,
                       compute: Callable[[], Dict[str, np.ndarray]],
                       ) -> Dict[str, np.ndarray]:
        """Load the entry, or compute and publish it atomically."""
        path = self._path(kind, key_hash)
        if path.exists():
            try:
                with np.load(path, allow_pickle=False) as data:
                    arrays = {name: data[name].copy() for name in data.files}
                self.hits[kind] = self.hits.get(kind, 0) + 1
                return arrays
            except (OSError, ValueError, zipfile.BadZipFile):
                # a torn or unreadable entry is *evicted*, not just
                # skipped: deleting it frees the disk it pins and lets
                # the recompute below republish a clean file (a skipped
                # entry would force this key to miss forever)
                self._evict(kind, path)
        arrays = compute()
        self.misses[kind] = self.misses.get(kind, 0) + 1
        self._store(path, arrays)
        return arrays

    def _evict(self, kind: str, path: Path) -> None:
        """Delete one corrupt entry; losing a concurrent race is fine
        (another worker already replaced or removed it)."""
        try:
            path.unlink()
        except OSError:
            pass
        self.evictions[kind] = self.evictions.get(kind, 0) + 1

    def _store(self, path: Path, arrays: Dict[str, np.ndarray]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(f, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- counters ----------------------------------------------------------
    def counters(self) -> Dict[str, Dict[str, int]]:
        """``{kind: {"hits", "misses"[, "evictions"]}}`` per kind touched."""
        out: Dict[str, Dict[str, int]] = {}
        for kind in sorted(set(self.hits) | set(self.misses)
                           | set(self.evictions)):
            h, m = self.hits.get(kind, 0), self.misses.get(kind, 0)
            e = self.evictions.get(kind, 0)
            if h or m or e:
                out[kind] = {"hits": h, "misses": m}
                if e:
                    out[kind]["evictions"] = e
        return out

    def eviction_count(self) -> int:
        """Total corrupt entries evicted across kinds."""
        return sum(self.evictions.values())

    def hit_rate(self) -> Optional[float]:
        """Overall hit fraction across kinds (None before any lookup)."""
        h = sum(self.hits.values())
        m = sum(self.misses.values())
        return h / (h + m) if (h + m) else None

    # -- grid coordinates --------------------------------------------------
    def coordinates(self, case, geom, region) -> np.ndarray:
        """Cell-center coordinates of ``region``, shared across runs.

        Keyed by the case signature plus the level's domain extent and
        the region bounds — everything ``Case.coordinates`` reads.
        """
        key = self._hash_parts(
            "coords-v1", object_signature(case),
            {"domain_lo": list(geom.domain.lo), "domain_hi": list(geom.domain.hi),
             "lo": list(region.lo), "hi": list(region.hi)})
        arrays = self.get_or_compute(
            "coords", key,
            lambda: {"coords": case.coordinates(geom, region)})
        return arrays["coords"]

    # -- curvilinear grid metrics (the 27-component arrays) ----------------
    def curvilinear_metrics(self, coords: np.ndarray):
        """A :class:`CurvilinearMetrics` built from (or cached for) coords.

        Content-addressed on the raw coordinate bytes, so any change to
        the mapping, region, or resolution produces a different key.  All
        four derived arrays (first/second metric derivatives, Jacobian,
        and the ``J * grad(xi)`` components) are stored, so a hit rebuilds
        the object bit-for-bit without touching the stencil kernels.
        """
        from repro.numerics.metrics import CurvilinearMetrics

        coords = np.ascontiguousarray(coords)
        key = self._hash_parts("metrics-v1", list(coords.shape),
                               coords.tobytes())

        def compute() -> Dict[str, np.ndarray]:
            m = CurvilinearMetrics.from_coordinates(coords)
            return {"first": m.first, "second": m.second,
                    "J": m.jacobian(), "m": m._m}

        arrays = self.get_or_compute("metrics", key, compute)
        return CurvilinearMetrics(arrays["first"], arrays["second"],
                                  arrays["J"], arrays["m"])

    # -- EOS tables --------------------------------------------------------
    def eos_table(self, eos, layout, n: int = 64,
                  rho_range: Tuple[float, float] = (1e-2, 1e2),
                  e_range: Tuple[float, float] = (1e-2, 1e3),
                  ) -> Dict[str, np.ndarray]:
        """Tabulated p/T/a over a log-spaced (rho, e_int) grid.

        Built once per EOS parameter set by evaluating the real EOS on a
        synthetic zero-velocity conservative state (species mass split
        equally for mixtures), then shared by every run of the same case
        family.
        """
        key = self._hash_parts(
            "eos-v1", object_signature(eos),
            {"ncons": layout.ncons, "nspecies": layout.nspecies,
             "dim": layout.dim, "n": n,
             "rho": list(rho_range), "e": list(e_range)})

        def compute() -> Dict[str, np.ndarray]:
            rho = np.logspace(np.log10(rho_range[0]),
                              np.log10(rho_range[1]), n)
            e = np.logspace(np.log10(e_range[0]), np.log10(e_range[1]), n)
            rho2, e2 = np.meshgrid(rho, e, indexing="ij")
            u = np.zeros((layout.ncons,) + rho2.shape)
            u[layout.rho_s] = rho2[None] / layout.nspecies
            u[layout.energy] = e2  # zero momentum: e_int == E
            return {"rho": rho, "e_int": e,
                    "p": eos.pressure(layout, u),
                    "T": eos.temperature(layout, u),
                    "a": eos.sound_speed(layout, u)}

        return self.get_or_compute("eos", key, compute)

    # -- interpolation weights ---------------------------------------------
    def interp_weights(self, interp_name: str, ratio: int = 2,
                       ) -> Dict[str, np.ndarray]:
        """Per-ratio fine-cell interpolation weights for one interpolator.

        The separable linear fractions (and, for the WENO interpolator,
        the optimal left/right stencil weights) depend only on the
        refinement ratio — ideal cross-run immutables.
        """
        key = self._hash_parts("interp-v1",
                               {"interp": interp_name, "ratio": int(ratio)})

        def compute() -> Dict[str, np.ndarray]:
            from repro.amr.box import Box
            from repro.amr.interpolate import _fine_fractions
            from repro.amr.intvect import IntVect

            region = Box.from_extent([0], [int(ratio)])
            _, frac = _fine_fractions(region, IntVect.coerce([ratio], 1), 0)
            out = {"frac": frac, "linear": np.stack([1.0 - frac, frac])}
            if interp_name == "weno":
                from repro.amr.interp_weno import _linear_weight

                out["weno_left"] = np.array(
                    [_linear_weight(f) for f in frac])
            return out

        return self.get_or_compute("interp", key, compute)

    # -- run admission warm-up --------------------------------------------
    def warm(self, case, interp_name: str, ratio: int = 2) -> None:
        """Populate (or hit) the per-case EOS and interp-weight entries."""
        self.eos_table(case.eos, case.layout)
        self.interp_weights(interp_name, ratio)
