"""Stdlib client for the simulation service, importable and as a CLI.

Library use::

    from repro.serve.client import ServeClient
    c = ServeClient("http://127.0.0.1:8123")
    run = c.submit_file("examples/decks/sod.inputs", max_steps=50)
    done = c.wait(run["id"], timeout=120)

CLI use (CI's smoke job and the curl-averse)::

    python -m repro.serve.client --url http://127.0.0.1:8123 \\
        submit examples/decks/sod.inputs --wait
    python -m repro.serve.client --url ... status r00001
    python -m repro.serve.client --url ... stats
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Optional


class ServeError(RuntimeError):
    """A non-2xx service response (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Thin JSON-over-HTTP wrapper around the service endpoints."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _req(self, method: str, path: str, body: Optional[dict] = None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error", "")
            except Exception:
                detail = exc.reason
            raise ServeError(exc.code, detail) from None

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        return self._req("GET", "/healthz")

    def submit(self, deck: Optional[str] = None,
               keys: Optional[dict] = None, **opts) -> dict:
        body = dict(opts)
        if deck is not None:
            body["deck"] = deck
        if keys is not None:
            body["keys"] = keys
        return self._req("POST", "/runs", body)

    def submit_file(self, path, **opts) -> dict:
        return self.submit(deck=Path(path).read_text(), **opts)

    def status(self, run_id: str) -> dict:
        return self._req("GET", f"/runs/{run_id}")

    def metrics(self, run_id: str, tail: Optional[int] = None) -> dict:
        q = f"?tail={tail}" if tail else ""
        return self._req("GET", f"/runs/{run_id}/metrics{q}")

    def cancel(self, run_id: str) -> dict:
        return self._req("POST", f"/runs/{run_id}/cancel")

    def list(self, state: Optional[str] = None) -> list:
        q = f"?state={state}" if state else ""
        return self._req("GET", f"/runs{q}")["runs"]

    def stats(self) -> dict:
        return self._req("GET", "/stats")

    def wait(self, run_id: str, timeout: Optional[float] = None,
             poll: float = 0.2) -> dict:
        """Poll until the run reaches a terminal state; returns its record."""
        t_end = None if timeout is None else time.monotonic() + timeout
        while True:
            rec = self.status(run_id)
            if rec["state"] in ("done", "failed", "cancelled"):
                return rec
            if t_end is not None and time.monotonic() >= t_end:
                raise TimeoutError(
                    f"run {run_id} still {rec['state']!r} after {timeout}s")
            time.sleep(poll)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="Talk to a running repro.serve simulation service.")
    parser.add_argument("--url", default="http://127.0.0.1:8123",
                        help="service base URL")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("submit", help="submit a deck file as a run")
    p.add_argument("deck", help="input deck file")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--label", default="")
    p.add_argument("--steps", type=int, default=None,
                   help="override the deck's run.steps")
    p.add_argument("--max-steps", type=int, default=None,
                   help="per-run step budget")
    p.add_argument("--max-wall-s", type=float, default=None,
                   help="per-run wall budget (seconds)")
    p.add_argument("--trace", action="store_true",
                   help="record a Chrome trace alongside the metrics")
    p.add_argument("--wait", action="store_true",
                   help="poll until the run finishes; exit 1 unless done")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait poll budget (seconds)")

    for name in ("status", "metrics", "cancel"):
        q = sub.add_parser(name)
        q.add_argument("id", help="run id (e.g. r00001)")
    sub.add_parser("stats")
    q = sub.add_parser("list")
    q.add_argument("--state", default=None)

    args = parser.parse_args(argv)
    client = ServeClient(args.url)
    try:
        if args.cmd == "submit":
            opts = dict(priority=args.priority, label=args.label,
                        trace=args.trace)
            if args.steps is not None:
                opts["steps"] = args.steps
            if args.max_steps is not None:
                opts["max_steps"] = args.max_steps
            if args.max_wall_s is not None:
                opts["max_wall_s"] = args.max_wall_s
            rec = client.submit_file(args.deck, **opts)
            if args.wait:
                rec = client.wait(rec["id"], timeout=args.timeout)
                print(json.dumps(rec, indent=1))
                return 0 if rec["state"] == "done" else 1
            print(json.dumps(rec, indent=1))
        elif args.cmd == "status":
            print(json.dumps(client.status(args.id), indent=1))
        elif args.cmd == "metrics":
            print(json.dumps(client.metrics(args.id), indent=1))
        elif args.cmd == "cancel":
            print(json.dumps(client.cancel(args.id), indent=1))
        elif args.cmd == "stats":
            print(json.dumps(client.stats(), indent=1))
        elif args.cmd == "list":
            print(json.dumps(client.list(args.state), indent=1))
    except (ServeError, urllib.error.URLError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
