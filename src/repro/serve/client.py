"""Stdlib client for the simulation service, importable and as a CLI.

Library use::

    from repro.serve.client import ServeClient
    c = ServeClient("http://127.0.0.1:8123")
    run = c.submit_file("examples/decks/sod.inputs", max_steps=50)
    done = c.wait(run["id"], timeout=120)

CLI use (CI's smoke job and the curl-averse)::

    python -m repro.serve.client --url http://127.0.0.1:8123 \\
        submit examples/decks/sod.inputs --wait
    python -m repro.serve.client --url ... status r00001
    python -m repro.serve.client --url ... stats

Robustness contract: every submission carries an **idempotency key**
(auto-generated unless supplied), so retrying a torn or shed POST can
never create a duplicate run; retryable failures — 429 (shed), 503
(draining), connection errors, truncated responses — are retried with
capped exponential backoff + jitter, honoring the server's
``Retry-After`` when it sends one.  :meth:`ServeClient.wait` polls the
same way (backoff from 50 ms up to a cap) instead of hammering a fixed
interval, and rides out transient disconnects (a restarting server)
until its own timeout.
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import time
import urllib.error
import urllib.request
import uuid
from pathlib import Path
from typing import Optional

#: HTTP statuses that mean "try again later", not "you are wrong"
RETRYABLE_STATUSES = (429, 503)


class ServeError(RuntimeError):
    """A failed service exchange.

    ``status`` is the HTTP code (0 for transport failures: refused
    connection, reset, truncated body).  ``retryable`` marks errors a
    backoff loop may retry; ``retry_after`` carries the server's
    Retry-After hint in seconds when one was sent.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        label = f"HTTP {status}" if status else "transport error"
        super().__init__(f"{label}: {message}")
        self.status = status
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        return self.status == 0 or self.status in RETRYABLE_STATUSES


def _parse_retry_after(headers) -> Optional[float]:
    try:
        val = headers.get("Retry-After") if headers is not None else None
        return float(val) if val is not None else None
    except (TypeError, ValueError):
        return None


def backoff_delays(base: float = 0.1, cap: float = 2.0,
                   rng: Optional[random.Random] = None):
    """Yield capped exponential backoff delays with full jitter.

    Full jitter (``uniform(0, min(cap, base * 2**n))``) decorrelates a
    thundering herd of shed clients; pass a seeded ``rng`` for
    deterministic tests.
    """
    rng = rng or random
    n = 0
    while True:
        yield rng.uniform(0.0, min(cap, base * (2.0 ** n)))
        n += 1


class ServeClient:
    """Thin JSON-over-HTTP wrapper around the service endpoints."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 5, backoff_base: float = 0.1,
                 backoff_cap: float = 2.0,
                 rng: Optional[random.Random] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: retry budget for retryable submit failures (429/503/transport)
        self.retries = int(retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng or random.Random()
        #: retries actually performed (test/bench observability)
        self.retry_count = 0

    def _req(self, method: str, path: str, body: Optional[dict] = None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            retry_after = _parse_retry_after(exc.headers)
            try:
                detail = json.loads(exc.read().decode()).get("error", "")
            except Exception:
                detail = exc.reason
            raise ServeError(exc.code, detail,
                             retry_after=retry_after) from None
        except (urllib.error.URLError, http.client.HTTPException,
                ConnectionError, TimeoutError, json.JSONDecodeError,
                OSError) as exc:
            # refused/reset connections and truncated or torn JSON all
            # collapse to one retryable transport error: the caller
            # cannot tell a dead server from a chaos proxy cutting the
            # response, and must not need to
            raise ServeError(0, f"{type(exc).__name__}: {exc}") from None

    def _retry_loop(self, fn):
        """Run ``fn`` with capped-backoff retries on retryable errors."""
        delays = backoff_delays(self.backoff_base, self.backoff_cap,
                                self._rng)
        attempt = 0
        while True:
            try:
                return fn()
            except ServeError as exc:
                attempt += 1
                if not exc.retryable or attempt > self.retries:
                    raise
                delay = next(delays)
                if exc.retry_after is not None:
                    # the server's hint wins over our schedule (jittered
                    # so a herd of shed clients doesn't return as one)
                    delay = exc.retry_after * self._rng.uniform(0.5, 1.0)
                self.retry_count += 1
                time.sleep(delay)

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        return self._req("GET", "/healthz")

    def submit(self, deck: Optional[str] = None,
               keys: Optional[dict] = None, **opts) -> dict:
        """Submit a run; retried safely thanks to its idempotency key.

        A key is auto-generated when the caller doesn't pass one, so
        even a response lost in flight (submission registered, reply
        truncated) is resolved by the retry reading the same run back.
        """
        body = dict(opts)
        if deck is not None:
            body["deck"] = deck
        if keys is not None:
            body["keys"] = keys
        body.setdefault("idempotency_key", uuid.uuid4().hex)
        return self._retry_loop(
            lambda: self._req("POST", "/runs", body))

    def submit_file(self, path, **opts) -> dict:
        return self.submit(deck=Path(path).read_text(), **opts)

    def status(self, run_id: str) -> dict:
        return self._req("GET", f"/runs/{run_id}")

    def metrics(self, run_id: str, tail: Optional[int] = None) -> dict:
        q = f"?tail={tail}" if tail else ""
        return self._req("GET", f"/runs/{run_id}/metrics{q}")

    def cancel(self, run_id: str) -> dict:
        return self._req("POST", f"/runs/{run_id}/cancel")

    def list(self, state: Optional[str] = None) -> list:
        q = f"?state={state}" if state else ""
        return self._req("GET", f"/runs{q}")["runs"]

    def stats(self) -> dict:
        return self._req("GET", "/stats")

    def wait(self, run_id: str, timeout: Optional[float] = None,
             poll: float = 0.05, poll_cap: float = 1.0) -> dict:
        """Poll until the run reaches a terminal state; returns its record.

        The poll interval backs off exponentially from ``poll`` up to
        ``poll_cap`` (with jitter) instead of hammering a fixed rate,
        honors a Retry-After from a shedding server, and rides out
        transport errors — a server mid-restart — until ``timeout``.
        """
        t_end = None if timeout is None else time.monotonic() + timeout
        interval = max(poll, 1e-3)
        state = "unknown"
        while True:
            try:
                rec = self.status(run_id)
            except ServeError as exc:
                if not exc.retryable:
                    raise
                # keep polling through 429s/restarts; the deadline below
                # still bounds the wait
                rec = None
                if exc.retry_after is not None:
                    interval = max(interval, exc.retry_after)
            if rec is not None:
                state = rec["state"]
                if state in ("done", "failed", "cancelled"):
                    return rec
            if t_end is not None and time.monotonic() >= t_end:
                raise TimeoutError(
                    f"run {run_id} still {state!r} after {timeout}s")
            delay = interval * self._rng.uniform(0.7, 1.0)
            if t_end is not None:
                delay = min(delay, max(0.0, t_end - time.monotonic()))
            time.sleep(delay)
            interval = min(poll_cap, interval * 2.0)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="Talk to a running repro.serve simulation service.")
    parser.add_argument("--url", default="http://127.0.0.1:8123",
                        help="service base URL")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("submit", help="submit a deck file as a run")
    p.add_argument("deck", help="input deck file")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--label", default="")
    p.add_argument("--steps", type=int, default=None,
                   help="override the deck's run.steps")
    p.add_argument("--max-steps", type=int, default=None,
                   help="per-run step budget")
    p.add_argument("--max-wall-s", type=float, default=None,
                   help="per-run wall budget (seconds)")
    p.add_argument("--trace", action="store_true",
                   help="record a Chrome trace alongside the metrics")
    p.add_argument("--idempotency-key", default=None,
                   help="dedupe token: resubmitting the same key returns "
                        "the existing run (default: auto-generated)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the run finishes; exit 1 unless done")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait poll budget (seconds)")

    for name in ("status", "metrics", "cancel"):
        q = sub.add_parser(name)
        q.add_argument("id", help="run id (e.g. r00001)")
    sub.add_parser("stats")
    q = sub.add_parser("list")
    q.add_argument("--state", default=None)

    args = parser.parse_args(argv)
    client = ServeClient(args.url)
    try:
        if args.cmd == "submit":
            opts = dict(priority=args.priority, label=args.label,
                        trace=args.trace)
            if args.steps is not None:
                opts["steps"] = args.steps
            if args.max_steps is not None:
                opts["max_steps"] = args.max_steps
            if args.max_wall_s is not None:
                opts["max_wall_s"] = args.max_wall_s
            if args.idempotency_key:
                opts["idempotency_key"] = args.idempotency_key
            rec = client.submit_file(args.deck, **opts)
            if args.wait:
                rec = client.wait(rec["id"], timeout=args.timeout)
                print(json.dumps(rec, indent=1))
                return 0 if rec["state"] == "done" else 1
            print(json.dumps(rec, indent=1))
        elif args.cmd == "status":
            print(json.dumps(client.status(args.id), indent=1))
        elif args.cmd == "metrics":
            print(json.dumps(client.metrics(args.id), indent=1))
        elif args.cmd == "cancel":
            print(json.dumps(client.cancel(args.id), indent=1))
        elif args.cmd == "stats":
            print(json.dumps(client.stats(), indent=1))
        elif args.cmd == "list":
            print(json.dumps(client.list(args.state), indent=1))
    except (ServeError, urllib.error.URLError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
