"""``python -m repro.serve``: start the simulation service.

Example::

    python -m repro.serve --root service_dir --port 8123 --workers 4

Then submit decks with ``python -m repro.serve.client`` or plain curl::

    curl -s -X POST localhost:8123/runs \\
        -d '{"keys": {"crocco.case": "sod", "run.steps": 5}}'
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Optional

from repro.serve.server import ServiceHandler, make_server


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve", description="Run the simulation service.")
    parser.add_argument("--root", required=True,
                        help="service state directory (registry + cache)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="shared fleet size (worker processes)")
    parser.add_argument("--executor", default="pool",
                        choices=["pool", "inline"],
                        help="fleet executor: 'pool' (worker processes) or "
                             "'inline' (runs execute in the service "
                             "process, for platforms without fork)")
    parser.add_argument("--task-timeout", type=float, default=300.0,
                        help="seconds before an in-flight run is presumed "
                             "lost to a dead worker")
    parser.add_argument("--task-retries", type=int, default=1,
                        help="re-dispatch budget for lost/failed runs")
    parser.add_argument("--max-queue-depth", type=int, default=256,
                        help="shed submissions with 429 once this many "
                             "runs are queued (0 = unbounded)")
    parser.add_argument("--autocheckpoint-every", type=int, default=1,
                        help="per-run checkpoint cadence in steps; a "
                             "re-dispatched run resumes from its last "
                             "checkpoint (0 = off, full replay)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        help="seconds SIGTERM waits for in-flight runs "
                             "to drain to checkpoints before exit")
    parser.add_argument("--verbose", action="store_true",
                        help="log each HTTP request")
    args = parser.parse_args(argv)

    if args.workers < 1:
        print(f"error: workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    ServiceHandler.quiet = not args.verbose
    httpd = make_server(args.root, port=args.port, host=args.host,
                        workers=args.workers, executor=args.executor,
                        task_timeout=args.task_timeout,
                        task_retries=args.task_retries,
                        max_queue_depth=args.max_queue_depth,
                        autocheckpoint_every=args.autocheckpoint_every)
    host, port = httpd.server_address[:2]
    print(f"repro.serve listening on http://{host}:{port} "
          f"(root {args.root}, {args.workers} worker(s), "
          f"{args.executor} fleet)", flush=True)

    def _graceful(signum, frame):
        # SIGTERM = graceful drain: every in-flight run checkpoints and
        # requeues, then the accept loop stops.  The drain happens off
        # the signal frame so /healthz and status polls keep answering
        # (reporting "draining") while lanes empty.
        print("repro.serve: SIGTERM — draining in-flight runs to "
              "checkpoints", flush=True)

        def _do():
            httpd.service.drain(  # type: ignore[attr-defined]
                grace_s=args.drain_grace)
            httpd.shutdown()

        threading.Thread(target=_do, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.service.stop()  # type: ignore[attr-defined]
        httpd.server_close()
    print("repro.serve: stopped (queued runs resume on next start)",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
