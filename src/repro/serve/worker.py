"""The ``serve_run`` payload: one whole simulation run in a fleet worker.

The fleet dispatches runs — not individual box kernels — onto the shared
:class:`~repro.resilience.supervisor.SupervisedPoolExecutor`; each task's
payload names a run directory prepared by the registry and this module
executes the deck inside the worker process:

- the simulation itself is forced onto the ``serial`` executor: the
  fleet *is* the parallelism layer (one run per worker lane), nested
  pools would oversubscribe the node, and the serial path is what makes
  a service-submitted run bitwise identical to the same deck run
  through the CLI;
- metrics stream to the run directory per step, so the HTTP layer can
  report live progress while the run executes;
- per-run step/wall budgets ride the watchdog
  (:class:`~repro.resilience.watchdog.RunBudgetExceeded`) and the
  registry's ``CANCEL`` flag is polled at every step boundary;
- **checkpoint-resume**: every run autocheckpoints into its run
  directory (``autochk/``, crash-safe atomic writes from
  :mod:`repro.io.checkpoint`); a re-dispatched run — worker death,
  service crash, graceful drain — resumes from its last *valid*
  checkpoint instead of replaying from step 0.  With the service
  default ``autocheckpoint_every=1`` a resume replays at most one step,
  and because a checkpoint restores the exact state the trajectory (and
  the final plotfile/checkpoint artifacts) stays bitwise identical to
  an uninterrupted run;
- the registry's ``DRAIN`` flag (graceful shutdown) is polled alongside
  ``CANCEL``: the run saves a fresh checkpoint at the step boundary and
  reports ``suspended`` so the fleet can requeue it for the next
  service generation;
- the terminal summary lands in ``result.json`` (atomic write).  A
  simulation *failure* is a normal result — only worker death (crash,
  kill) leaves no result, which is exactly the condition the supervisor
  recovers by re-dispatching the task.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple

from repro.serve.registry import (CANCEL_NAME, DECK_NAME, DRAIN_NAME,
                                  RESULT_NAME)

#: per-run autocheckpoint directory (inside the run directory)
AUTOCHK_DIR = "autochk"

#: artifacts reset before (re-)executing a run; autocheckpoints are
#: deliberately NOT here — they are what a re-dispatch resumes from
_RESETTABLE = ("metrics.jsonl", "trace.json", RESULT_NAME)


class RunCancelled(RuntimeError):
    """The run's CANCEL flag was raised; stop at the step boundary."""


class RunSuspended(RuntimeError):
    """The run's DRAIN flag was raised; checkpointed and handed back."""


def _write_result(run_dir: Path, payload: dict) -> None:
    """Atomically publish ``result.json`` (the run's terminal summary)."""
    fd, tmp = tempfile.mkstemp(dir=run_dir, suffix=".tmp")
    with os.fdopen(fd, "w") as f:
        json.dump(payload, f, indent=1)
    os.replace(tmp, run_dir / RESULT_NAME)


def _reset_artifacts(run_dir: Path) -> None:
    for name in _RESETTABLE:
        try:
            (run_dir / name).unlink()
        except FileNotFoundError:
            pass


def _last_streamed_step(run_dir: Path) -> Optional[int]:
    """The last complete step in the run's metrics stream, if any.

    Read *before* the stream is reopened: this is how many steps the
    previous incarnation finished, so ``last - resume_step`` counts the
    steps a resume re-executes (the replay window).
    """
    path = run_dir / "metrics.jsonl"
    step = None
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return None
    for line in lines:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn final line of a killed writer
        if isinstance(rec, dict) and "step" in rec:
            step = int(rec["step"])
    return step


def find_resume_point(run_dir: Path) -> Optional[Tuple[Path, int, int]]:
    """``(checkpoint, step, replayed_steps)`` for the newest valid
    autocheckpoint under ``run_dir``, or None for a cold start.

    Checkpoints with a torn/unreadable Header are evicted so a corrupt
    newest entry falls back to the previous good one (the per-level
    digests are verified again by ``load_checkpoint`` at restore time).
    """
    base = run_dir / AUTOCHK_DIR
    while True:
        from repro.io.checkpoint import latest_checkpoint

        ck = latest_checkpoint(base)
        if ck is None:
            return None
        try:
            meta = json.loads((ck / "Header").read_text())
            step = int(meta["step"])
        except (OSError, ValueError, KeyError, TypeError):
            shutil.rmtree(ck, ignore_errors=True)
            continue
        last = _last_streamed_step(run_dir)
        replayed = max(0, (last if last is not None else step) - step)
        return ck, step, replayed


def execute_serve_run(spec: dict) -> None:
    """Run one submitted deck to completion inside this process.

    ``spec`` carries ``run_dir`` (holding ``deck.inputs``), the shared
    ``cache_dir``, an optional ``steps`` override, per-run budgets
    (``max_steps`` / ``max_wall_s``), an ``autocheckpoint_every``
    cadence and a ``trace`` flag.  Always returns after writing
    ``result.json`` — simulation failures are results, not exceptions.
    """
    run_dir = Path(spec["run_dir"])
    resume = find_resume_point(run_dir)
    _reset_artifacts(run_dir)
    t0 = time.monotonic()
    base = {"run_id": spec.get("run_id", run_dir.name), "pid": os.getpid()}
    try:
        summary = _run_deck(run_dir, spec, resume)
        summary.update(base)
        summary["wall_s"] = time.monotonic() - t0
        _write_result(run_dir, summary)
    except (Exception, SystemExit) as exc:  # noqa: BLE001
        # failures become results; SystemExit is how deck validation
        # (e.g. an unknown case) reports errors and must not kill the lane
        _write_result(run_dir, dict(
            base, status="failed",
            reason=f"{type(exc).__name__}: {exc}",
            wall_s=time.monotonic() - t0))


def _run_deck(run_dir: Path, spec: dict,
              resume: Optional[Tuple[Path, int, int]]) -> dict:
    from repro.cli import build_case
    from repro.core.crocco import Crocco
    from repro.io.checkpoint import CheckpointError, load_checkpoint
    from repro.io.inputs import InputDeck
    from repro.resilience.watchdog import RunBudgetExceeded

    deck = InputDeck.from_file(run_dir / DECK_NAME)
    case = build_case(deck)
    config = deck.to_crocco_config()
    # the fleet is the parallelism layer: one run per worker lane, never
    # a nested pool — which also keeps the trajectory bitwise identical
    # to the CLI serial path
    config.executor = "serial"
    config.workers = None
    if spec.get("cache_dir"):
        config.cache_dir = str(spec["cache_dir"])
    config.metrics_out = str(run_dir / "metrics.jsonl")
    config.metrics_stream = True
    if spec.get("trace"):
        config.trace_out = str(run_dir / "trace.json")
    if spec.get("max_steps") is not None:
        config.step_budget = int(spec["max_steps"])
    if spec.get("max_wall_s") is not None:
        config.wall_budget_s = float(spec["max_wall_s"])
    # service runs checkpoint into their own directory so a re-dispatch
    # (worker death, server restart) resumes instead of replaying; the
    # default cadence of 1 bounds the replay window to a single step
    every = spec.get("autocheckpoint_every", 1)
    config.autocheckpoint_every = int(every if every is not None else 1)
    config.autocheckpoint_dir = str(run_dir / AUTOCHK_DIR)

    nsteps: Optional[int] = (int(spec["steps"]) if spec.get("steps")
                             else deck.get_int("run.steps"))
    t_end = deck.get_float("run.time")
    if nsteps is None and t_end is None:
        nsteps = 10
    cancel_flag = run_dir / CANCEL_NAME
    drain_flag = run_dir / DRAIN_NAME

    # chaos hook: ("kill_step", K) hard-kills this worker process at the
    # step-K boundary — the service-level stand-in for losing a node
    # mid-run (must actually die: never fires when running inline in the
    # service process itself)
    fault = spec.get("_fault")
    kill_at: Optional[int] = None
    if fault is not None and fault[0] == "kill_step":
        from repro.runtime.executors import _DRIVER_PID

        if os.getpid() != _DRIVER_PID:
            kill_at = int(fault[1])

    sim = Crocco(case, config)
    resumed_from: Optional[int] = None
    replayed = 0
    if resume is not None:
        ck, ck_step, replayed = resume
        try:
            load_checkpoint(ck, sim)
            resumed_from = ck_step
            if sim.watchdog is not None:
                # the restore ladder falls back to this checkpoint too
                sim.watchdog.last_good = ck
            sim.resilience.inc("serve_resumes")
            sim.resilience.inc("serve_replayed_steps", replayed)
        except CheckpointError:
            # digest/read failure: evict the bad checkpoint and start
            # clean — a cold replay is slower but always correct
            shutil.rmtree(ck, ignore_errors=True)
            replayed = 0

    status, reason = "done", ""
    try:
        if resumed_from is None:
            sim.initialize()
        try:
            while True:
                if nsteps is not None and sim.step_count >= nsteps:
                    break
                if t_end is not None and sim.time >= t_end:
                    break
                if cancel_flag.exists():
                    raise RunCancelled("cancel requested")
                if drain_flag.exists():
                    raise RunSuspended("drain requested")
                if kill_at is not None and sim.step_count >= kill_at:
                    os._exit(3)
                sim.step()
        except RunCancelled:
            status, reason = "cancelled", "cancelled by request"
        except RunSuspended:
            _suspend_checkpoint(run_dir, sim)
            status = "suspended"
            reason = f"drained to checkpoint at step {sim.step_count}"
        except RunBudgetExceeded as exc:
            status, reason = "cancelled", f"budget exceeded: {exc}"
        if status == "done":
            # terminal artifacts only for completed runs
            out = deck.get_str("run.plotfile")
            if out:
                from repro.io.plotfile import write_plotfile

                write_plotfile(_under(run_dir, out), sim)
            chk = deck.get_str("run.checkpoint")
            if chk:
                from repro.io.checkpoint import save_checkpoint

                save_checkpoint(_under(run_dir, chk), sim)
        if status in ("done", "cancelled"):
            # terminal runs never re-execute: drop the resume scratch so
            # finished runs don't pin disk
            shutil.rmtree(run_dir / AUTOCHK_DIR, ignore_errors=True)
    finally:
        sim.close()

    cache = sim.case_cache
    out = {
        "status": status,
        "reason": reason,
        "case": case.name,
        "steps": sim.step_count,
        "sim_time": sim.time,
        "cache": cache.counters() if cache is not None else {},
        "cache_hit_rate": cache.hit_rate() if cache is not None else None,
    }
    if cache is not None:
        out["cache_evictions"] = cache.eviction_count()
    if resumed_from is not None:
        out["resumed"] = True
        out["resume_step"] = resumed_from
        out["replayed_steps"] = replayed
    return out


def _suspend_checkpoint(run_dir: Path, sim) -> None:
    """Persist the draining run's state at the current step boundary.

    Skipped when the autocheckpoint cadence already saved this exact
    step — the atomic-rename protocol makes a re-save harmless, just
    wasted I/O.
    """
    from repro.io.checkpoint import save_checkpoint

    path = run_dir / AUTOCHK_DIR / f"chk_step{sim.step_count:06d}"
    if not (path / "Header").exists():
        save_checkpoint(path, sim)


def _under(run_dir: Path, path: str) -> str:
    """Resolve a deck-relative output path inside the run directory."""
    p = Path(path)
    return str(p if p.is_absolute() else run_dir / p)
