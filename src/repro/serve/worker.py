"""The ``serve_run`` payload: one whole simulation run in a fleet worker.

The fleet dispatches runs — not individual box kernels — onto the shared
:class:`~repro.resilience.supervisor.SupervisedPoolExecutor`; each task's
payload names a run directory prepared by the registry and this module
executes the deck inside the worker process:

- the simulation itself is forced onto the ``serial`` executor: the
  fleet *is* the parallelism layer (one run per worker lane), nested
  pools would oversubscribe the node, and the serial path is what makes
  a service-submitted run bitwise identical to the same deck run
  through the CLI;
- metrics stream to the run directory per step, so the HTTP layer can
  report live progress while the run executes;
- per-run step/wall budgets ride the watchdog
  (:class:`~repro.resilience.watchdog.RunBudgetExceeded`) and the
  registry's ``CANCEL`` flag is polled at every step boundary;
- the terminal summary lands in ``result.json`` (atomic write).  A
  simulation *failure* is a normal result — only worker death (crash,
  kill) leaves no result, which is exactly the condition the supervisor
  recovers by re-dispatching the task; :func:`execute_serve_run` resets
  the run's artifacts first so a re-dispatch is idempotent.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.serve.registry import CANCEL_NAME, DECK_NAME, RESULT_NAME

#: artifacts reset before (re-)executing a run
_RESETTABLE = ("metrics.jsonl", "trace.json", RESULT_NAME)


class RunCancelled(RuntimeError):
    """The run's CANCEL flag was raised; stop at the step boundary."""


def _write_result(run_dir: Path, payload: dict) -> None:
    """Atomically publish ``result.json`` (the run's terminal summary)."""
    fd, tmp = tempfile.mkstemp(dir=run_dir, suffix=".tmp")
    with os.fdopen(fd, "w") as f:
        json.dump(payload, f, indent=1)
    os.replace(tmp, run_dir / RESULT_NAME)


def _reset_artifacts(run_dir: Path) -> None:
    for name in _RESETTABLE:
        try:
            (run_dir / name).unlink()
        except FileNotFoundError:
            pass


def execute_serve_run(spec: dict) -> None:
    """Run one submitted deck to completion inside this process.

    ``spec`` carries ``run_dir`` (holding ``deck.inputs``), the shared
    ``cache_dir``, an optional ``steps`` override, per-run budgets
    (``max_steps`` / ``max_wall_s``) and a ``trace`` flag.  Always
    returns after writing ``result.json`` — simulation failures are
    results, not exceptions.
    """
    run_dir = Path(spec["run_dir"])
    _reset_artifacts(run_dir)
    t0 = time.monotonic()
    base = {"run_id": spec.get("run_id", run_dir.name), "pid": os.getpid()}
    try:
        summary = _run_deck(run_dir, spec)
        summary.update(base)
        summary["wall_s"] = time.monotonic() - t0
        _write_result(run_dir, summary)
    except (Exception, SystemExit) as exc:  # noqa: BLE001
        # failures become results; SystemExit is how deck validation
        # (e.g. an unknown case) reports errors and must not kill the lane
        _write_result(run_dir, dict(
            base, status="failed",
            reason=f"{type(exc).__name__}: {exc}",
            wall_s=time.monotonic() - t0))


def _run_deck(run_dir: Path, spec: dict) -> dict:
    from repro.cli import build_case
    from repro.core.crocco import Crocco
    from repro.io.inputs import InputDeck
    from repro.resilience.watchdog import RunBudgetExceeded

    deck = InputDeck.from_file(run_dir / DECK_NAME)
    case = build_case(deck)
    config = deck.to_crocco_config()
    # the fleet is the parallelism layer: one run per worker lane, never
    # a nested pool — which also keeps the trajectory bitwise identical
    # to the CLI serial path
    config.executor = "serial"
    config.workers = None
    if spec.get("cache_dir"):
        config.cache_dir = str(spec["cache_dir"])
    config.metrics_out = str(run_dir / "metrics.jsonl")
    config.metrics_stream = True
    if spec.get("trace"):
        config.trace_out = str(run_dir / "trace.json")
    if spec.get("max_steps") is not None:
        config.step_budget = int(spec["max_steps"])
    if spec.get("max_wall_s") is not None:
        config.wall_budget_s = float(spec["max_wall_s"])

    nsteps: Optional[int] = (int(spec["steps"]) if spec.get("steps")
                             else deck.get_int("run.steps"))
    t_end = deck.get_float("run.time")
    if nsteps is None and t_end is None:
        nsteps = 10
    cancel_flag = run_dir / CANCEL_NAME

    sim = Crocco(case, config)
    status, reason = "done", ""
    try:
        sim.initialize()
        try:
            while True:
                if nsteps is not None and sim.step_count >= nsteps:
                    break
                if t_end is not None and sim.time >= t_end:
                    break
                if cancel_flag.exists():
                    raise RunCancelled("cancel requested")
                sim.step()
        except RunCancelled:
            status, reason = "cancelled", "cancelled by request"
        except RunBudgetExceeded as exc:
            status, reason = "cancelled", f"budget exceeded: {exc}"
        if status == "done":
            # terminal artifacts only for completed runs
            out = deck.get_str("run.plotfile")
            if out:
                from repro.io.plotfile import write_plotfile

                write_plotfile(_under(run_dir, out), sim)
            chk = deck.get_str("run.checkpoint")
            if chk:
                from repro.io.checkpoint import save_checkpoint

                save_checkpoint(_under(run_dir, chk), sim)
    finally:
        sim.close()

    cache = sim.case_cache
    return {
        "status": status,
        "reason": reason,
        "case": case.name,
        "steps": sim.step_count,
        "sim_time": sim.time,
        "cache": cache.counters() if cache is not None else {},
        "cache_hit_rate": cache.hit_rate() if cache is not None else None,
    }


def _under(run_dir: Path, path: str) -> str:
    """Resolve a deck-relative output path inside the run directory."""
    p = Path(path)
    return str(p if p.is_absolute() else run_dir / p)
