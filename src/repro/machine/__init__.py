"""Summit platform models.

The paper's evaluation ran on the Summit supercomputer at ORNL (Sec. V-A):
nodes with six NVIDIA V100 GPUs and two 22-core IBM POWER9 CPUs, a
fat-tree interconnect, up to 1024 nodes.  We have no Summit, so this
package supplies analytic models of those components — calibrated to
published hardware characteristics — that the performance layer
(:mod:`repro.perfmodel`) combines with *exact decomposition metadata*
(boxes, ranks, message volumes) to regenerate the paper's scaling
figures.
"""

from repro.machine.summit import SummitSpec, SUMMIT
from repro.machine.gpu import V100Model
from repro.machine.node import Power9Model
from repro.machine.network import FatTreeModel
from repro.machine.roofline import hierarchical_roofline, RooflinePoint

__all__ = [
    "SummitSpec",
    "SUMMIT",
    "V100Model",
    "Power9Model",
    "FatTreeModel",
    "hierarchical_roofline",
    "RooflinePoint",
]
