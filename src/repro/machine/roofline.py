"""Hierarchical roofline analysis (Yang, Kurth & Williams).

Reproduces Fig. 4 of the paper: for a kernel's flop count and its byte
traffic at L1, L2 and DRAM, compute the arithmetic intensity at each level
and place the achieved performance against the bandwidth ceilings and the
(occupancy-limited) compute ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.kernels.counts import KernelBudget
from repro.kernels.device import GpuDevice
from repro.machine.gpu import V100Model


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the hierarchical roofline."""

    kernel: str
    flops: int
    achieved_flops_per_s: float
    ai: Dict[str, float]  # arithmetic intensity per memory level
    ceilings: Dict[str, float]  # bandwidth ceilings (flop/s at each AI)
    peak_flops: float
    occupancy: float
    bound_level: str

    @property
    def fraction_of_peak(self) -> float:
        return self.achieved_flops_per_s / self.peak_flops

    def is_bandwidth_bound(self) -> bool:
        return self.bound_level != "compute"


def hierarchical_roofline(
    budget: KernelBudget, device: V100Model = V100Model()
) -> RooflinePoint:
    """Roofline placement of one kernel on the V100 model."""
    ai = {
        "L1": budget.flops_per_point
        / (budget.dram_bytes_per_point * budget.l1_amplification),
        "L2": budget.flops_per_point
        / (budget.dram_bytes_per_point * budget.l2_amplification),
        "DRAM": budget.flops_per_point / budget.dram_bytes_per_point,
    }
    occ = device.theoretical_occupancy(budget.registers_per_thread)
    bw_frac = device.effective_bandwidth_fraction(occ)
    bws = {"L1": device.l1_bandwidth, "L2": device.l2_bandwidth,
           "DRAM": device.hbm_bandwidth}
    ceilings = {lvl: ai[lvl] * bws[lvl] * bw_frac for lvl in ai}
    achieved = device.achieved_flops(budget)
    return RooflinePoint(
        kernel=budget.name,
        flops=int(budget.flops_per_point),
        achieved_flops_per_s=achieved,
        ai=ai,
        ceilings=ceilings,
        peak_flops=device.peak_dp_flops,
        occupancy=occ,
        bound_level=device.bound_level(budget),
    )


def roofline_from_launches(device_sim: GpuDevice, kernel: str,
                           wall_time: float,
                           device: V100Model = V100Model()) -> RooflinePoint:
    """Roofline point from a simulated device's recorded launches.

    ``wall_time`` is the (modeled or measured) time the launches took; the
    flop/byte totals come from the launch records, exactly as Nsight
    Compute derives them from hardware counters.
    """
    tot = device_sim.totals(kernel)
    if tot.flops == 0 or wall_time <= 0:
        raise ValueError("no recorded flops or non-positive wall time")
    ai = {
        "L1": tot.flops / tot.l1_bytes,
        "L2": tot.flops / tot.l2_bytes,
        "DRAM": tot.flops / tot.dram_bytes,
    }
    from repro.kernels.counts import BUDGETS

    budget = BUDGETS.get(kernel.rstrip("xyz") if kernel.startswith("WENO") else kernel)
    regs = budget.registers_per_thread if budget else 255
    occ = device.theoretical_occupancy(regs)
    bw_frac = device.effective_bandwidth_fraction(occ)
    bws = {"L1": device.l1_bandwidth, "L2": device.l2_bandwidth,
           "DRAM": device.hbm_bandwidth}
    ceilings = {lvl: ai[lvl] * bws[lvl] * bw_frac for lvl in ai}
    achieved = tot.flops / wall_time
    bound = min(ceilings, key=ceilings.get)
    if device.peak_dp_flops * min(1.0, 2 * occ) < min(ceilings.values()):
        bound = "compute"
    return RooflinePoint(
        kernel=kernel,
        flops=tot.flops,
        achieved_flops_per_s=achieved,
        ai=ai,
        ceilings=ceilings,
        peak_flops=device.peak_dp_flops,
        occupancy=occ,
        bound_level=bound,
    )
