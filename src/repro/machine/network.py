"""Fat-tree interconnect model (Summit's dual-rail EDR InfiniBand).

Prices simulated MPI traffic:

- **point-to-point neighbor exchange** (FillBoundary): cost set by the
  busiest rank's off-node volume through the node injection bandwidth,
  plus per-message latency; on-node traffic moves at NVLink/shared-memory
  speed.
- **global redistribution** (ParallelCopy): beyond the volume term, global
  operations pay scale-dependent contention — a fat tree is rarely run at
  full bisection, adaptive routing is imperfect, and the metadata
  (intersection) handshake grows with rank count.  We model this with an
  effective-bandwidth degradation logarithmic in node count, the behavior
  the paper observes as FillPatch time creeping up across the weak-scaling
  series (Figs. 6-7).
- **reductions / barriers**: latency times a binomial-tree depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.machine.summit import SummitSpec, SUMMIT


@dataclass(frozen=True)
class FatTreeModel:
    """Summit-like fat tree pricing."""

    spec: SummitSpec = SUMMIT
    #: on-node transfer bandwidth (NVLink / shared memory) [B/s]
    on_node_bw: float = 120e9
    #: contention growth per doubling of node count for global traffic
    global_contention_per_doubling: float = 0.35
    #: contention growth per doubling for neighbor (p2p) traffic
    p2p_contention_per_doubling: float = 0.045
    #: software + rendezvous overhead per message [s]
    message_overhead: float = 2.0e-6

    # -- effective bandwidths -------------------------------------------------
    def _doublings(self, nodes: int) -> float:
        return math.log2(max(1, nodes))

    def p2p_effective_bw(self, nodes: int) -> float:
        """Per-node injection bandwidth under neighbor-exchange contention."""
        damp = 1.0 + self.p2p_contention_per_doubling * self._doublings(nodes)
        return self.spec.node_injection_bw / damp

    def global_effective_bw(self, nodes: int) -> float:
        """Per-node effective bandwidth for all-to-all-like redistribution."""
        damp = 1.0 + self.global_contention_per_doubling * self._doublings(nodes)
        return self.spec.node_injection_bw / damp

    # -- operation pricing -----------------------------------------------
    def p2p_time(self, max_rank_off_node_bytes: float,
                 max_rank_on_node_bytes: float,
                 max_rank_messages: int, nodes: int) -> float:
        """Neighbor exchange: the busiest rank bounds the phase."""
        ranks_per_node = self.spec.ranks_per_node(True)
        inj_share = self.p2p_effective_bw(nodes) / ranks_per_node
        return (
            max_rank_off_node_bytes / inj_share
            + max_rank_on_node_bytes / self.on_node_bw
            + max_rank_messages * self.message_overhead
        )

    def global_copy_time(self, max_rank_bytes: float, total_bytes: float,
                         nodes: int, nranks: int) -> float:
        """ParallelCopy: busiest-rank volume + global metadata handshake."""
        ranks_per_node = max(1, nranks // max(1, nodes))
        bw_share = self.global_effective_bw(nodes) / ranks_per_node
        handshake = 2.0 * self.spec.network_latency * math.ceil(
            math.log2(max(2, nranks))
        )
        # aggregate pressure on the tree's upper levels
        tree_term = total_bytes / (self.global_effective_bw(nodes) * max(1, nodes))
        return max_rank_bytes / bw_share + tree_term + handshake

    def reduction_time(self, nranks: int, payload_bytes: int = 8) -> float:
        """Allreduce via binomial tree up and broadcast down."""
        depth = math.ceil(math.log2(max(2, nranks)))
        per_hop = self.spec.network_latency + payload_bytes / self.spec.node_injection_bw
        return 2.0 * depth * per_hop

    def barrier_time(self, nranks: int) -> float:
        depth = math.ceil(math.log2(max(2, nranks)))
        return depth * self.spec.network_latency
