"""IBM POWER9 CPU model for the CRoCCo kernels.

The paper runs the Fortran (CRoCCo 1.0) and C++ (1.1+) kernels on one
22-core POWER9 per MPI task group.  We model the CPU side with a sustained
per-socket flop rate for these stencil-heavy, bandwidth-sensitive kernels,
plus the paper's headline translation result: the C++ kernels are a
consistent ~1.2x slower than the Fortran ones on POWER9 (Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.counts import KernelBudget

#: the paper's observed C++-over-Fortran slowdown on POWER9
CPP_SLOWDOWN = 1.2


@dataclass(frozen=True)
class Power9Model:
    """One 22-core POWER9 socket running the CRoCCo kernels."""

    cores: int = 22
    #: sustained DP flop/s of the full socket on the CRoCCo stencil kernels
    #: (bandwidth-limited; far below the ~500 GF/s peak)
    sustained_flops: float = 2.1e10
    #: per-core sustained rate when fewer ranks than cores are used
    cpp_slowdown: float = CPP_SLOWDOWN

    def kernel_time(self, budget: KernelBudget, npoints: int,
                    lang: str = "cpp", cores: int | None = None) -> float:
        """Wall time of one kernel over ``npoints`` points on this socket.

        ``lang`` is ``fortran`` or ``cpp``; the C++ translation costs the
        paper's observed 1.2x.  ``cores`` restricts to a subset (per-rank
        time when each MPI rank owns one core).
        """
        if lang not in ("fortran", "cpp"):
            raise ValueError("lang must be 'fortran' or 'cpp'")
        n_cores = self.cores if cores is None else cores
        if not 1 <= n_cores <= self.cores:
            raise ValueError(f"cores must be in [1, {self.cores}]")
        rate = self.sustained_flops * n_cores / self.cores
        t = npoints * budget.flops_per_point / rate
        if lang == "cpp":
            t *= self.cpp_slowdown
        return t

    def per_core_time(self, budget: KernelBudget, npoints: int,
                      lang: str = "cpp") -> float:
        """Time for one rank pinned to one core (the MPI-everywhere mode)."""
        return self.kernel_time(budget, npoints, lang, cores=1)
