"""Summit system specification (public ORNL numbers)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SummitSpec:
    """Per-node composition and interconnect of the Summit system."""

    gpus_per_node: int = 6
    cpu_sockets: int = 2
    cores_per_socket: int = 22
    #: dual-rail EDR InfiniBand node injection bandwidth [B/s]
    node_injection_bw: float = 25e9
    #: small-message latency [s]
    network_latency: float = 1.5e-6
    #: maximum node count used in the paper
    max_nodes: int = 1024

    @property
    def cores_per_node(self) -> int:
        return self.cpu_sockets * self.cores_per_socket

    def ranks_for(self, nodes: int, on_gpu: bool) -> int:
        """MPI ranks for a run: one per GPU, or one per core on CPU runs."""
        if nodes < 1:
            raise ValueError("need at least one node")
        per_node = self.gpus_per_node if on_gpu else self.cores_per_node
        return nodes * per_node

    def ranks_per_node(self, on_gpu: bool) -> int:
        return self.gpus_per_node if on_gpu else self.cores_per_node


#: the default Summit instance
SUMMIT = SummitSpec()
