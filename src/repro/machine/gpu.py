"""NVIDIA V100 performance model.

Public device characteristics (Volta V100-SXM2-16GB, as on Summit) plus an
occupancy model reproducing the paper's observation (Sec. VI-A): register
pressure limits the CRoCCo kernels to 12.5% theoretical occupancy, which
in turn limits achievable memory bandwidth (a latency-bound device cannot
saturate HBM at low occupancy), leaving the kernels bandwidth-bound at
every memory level with ~300 DP Gflop/s (~4% of the 7.8 TF/s peak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.counts import KernelBudget


@dataclass(frozen=True)
class V100Model:
    """Volta V100 (SXM2, 16 GB) characteristics and derived performance."""

    peak_dp_flops: float = 7.8e12
    hbm_bandwidth: float = 900e9
    l2_bandwidth: float = 4.2e12  # per Yang et al. hierarchical roofline
    l1_bandwidth: float = 14.0e12
    memory_bytes: int = 16 * 1024**3
    num_sms: int = 80
    registers_per_sm: int = 65536
    max_threads_per_sm: int = 2048
    threads_per_block: int = 256
    #: kernel launch overhead [s]
    launch_overhead: float = 8e-6
    #: fraction of peak bandwidth achievable at full occupancy
    bw_ceiling_fraction: float = 0.85
    #: occupancy needed to saturate bandwidth (latency hiding)
    bw_saturation_occupancy: float = 0.45

    # -- occupancy ------------------------------------------------------------
    def theoretical_occupancy(self, registers_per_thread: int) -> float:
        """Max warps resident / max warps, limited by the register file.

        255 registers/thread -> 65536 // 255 = 257 threads -> one 256-thread
        block -> 256 / 2048 = 12.5%, the paper's reported occupancy.
        """
        if registers_per_thread < 1:
            raise ValueError("registers_per_thread must be positive")
        max_threads = self.registers_per_sm // registers_per_thread
        # whole thread blocks only
        blocks = max_threads // self.threads_per_block
        resident = min(blocks * self.threads_per_block, self.max_threads_per_sm)
        return resident / self.max_threads_per_sm

    def effective_bandwidth_fraction(self, occupancy: float) -> float:
        """Achievable fraction of peak bandwidth at a given occupancy.

        Little's-law flavored: bandwidth rises ~linearly with resident
        warps until enough concurrency hides HBM latency, then saturates
        at ``bw_ceiling_fraction``.
        """
        if not 0.0 < occupancy <= 1.0:
            raise ValueError("occupancy must lie in (0, 1]")
        return self.bw_ceiling_fraction * min(
            1.0, occupancy / self.bw_saturation_occupancy
        )

    # -- kernel performance ----------------------------------------------
    def achieved_flops(self, budget: KernelBudget) -> float:
        """Sustained DP flop/s of a kernel (roofline minimum over levels)."""
        occ = self.theoretical_occupancy(budget.registers_per_thread)
        bw_frac = self.effective_bandwidth_fraction(occ)
        compute_ceiling = self.peak_dp_flops * min(1.0, 2.0 * occ)
        levels = {
            "DRAM": (budget.dram_bytes_per_point, self.hbm_bandwidth),
            "L2": (budget.dram_bytes_per_point * budget.l2_amplification,
                   self.l2_bandwidth),
            "L1": (budget.dram_bytes_per_point * budget.l1_amplification,
                   self.l1_bandwidth),
        }
        perf = compute_ceiling
        for bytes_pp, bw in levels.values():
            ai = budget.flops_per_point / bytes_pp
            perf = min(perf, ai * bw * bw_frac)
        return perf

    def bound_level(self, budget: KernelBudget) -> str:
        """Which ceiling binds: 'compute', 'DRAM', 'L2' or 'L1'."""
        occ = self.theoretical_occupancy(budget.registers_per_thread)
        bw_frac = self.effective_bandwidth_fraction(occ)
        candidates = {
            "compute": self.peak_dp_flops * min(1.0, 2.0 * occ),
            "DRAM": budget.flops_per_point / budget.dram_bytes_per_point
            * self.hbm_bandwidth * bw_frac,
            "L2": budget.flops_per_point
            / (budget.dram_bytes_per_point * budget.l2_amplification)
            * self.l2_bandwidth * bw_frac,
            "L1": budget.flops_per_point
            / (budget.dram_bytes_per_point * budget.l1_amplification)
            * self.l1_bandwidth * bw_frac,
        }
        return min(candidates, key=candidates.get)

    def utilization(self, npoints: int, saturation_points: float = 5e4) -> float:
        """Fraction of sustained throughput at a given working-set size.

        Small launches cannot fill the device ("GPUs are most efficient"
        at the largest sizes, Fig. 3): a saturating n/(n + n_half) law.
        """
        if npoints < 0:
            raise ValueError("npoints must be non-negative")
        return npoints / (npoints + saturation_points)

    def kernel_time(self, budget: KernelBudget, npoints: int,
                    precision: str = "double") -> float:
        """Wall time of one kernel launch over ``npoints`` grid points.

        ``precision='mixed'`` models the paper's future-work experiment:
        float32 arithmetic doubles the compute ceiling and halves the
        per-point memory traffic, roughly doubling a bandwidth-bound
        kernel's throughput.
        """
        if npoints == 0:
            return self.launch_overhead
        if precision == "mixed":
            from dataclasses import replace

            budget = replace(
                budget,
                dram_bytes_per_point=budget.dram_bytes_per_point / 2.0,
            )
        elif precision != "double":
            raise ValueError("precision must be 'double' or 'mixed'")
        sustained = self.achieved_flops(budget) * self.utilization(npoints)
        if precision == "mixed":
            # compute ceiling also doubles; only matters off the BW roof
            sustained = min(sustained * 1.0,
                            2.0 * self.achieved_flops(budget))
        return self.launch_overhead + npoints * budget.flops_per_point / sustained
