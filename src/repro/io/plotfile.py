"""Plotfile output (AMReX-flavored layout, NumPy payloads).

A plotfile is a directory with a text ``Header`` describing the hierarchy
(time, variables, per-level box lists) and one ``.npz`` payload per level
holding each patch's data — enough for the examples to dump fields (Fig. 2
style density snapshots) and for tests to read them back.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

HEADER_NAME = "Header"
FORMAT_TAG = "repro-plotfile-1"


def write_plotfile(path: Union[str, Path], crocco,
                   varnames: Optional[Sequence[str]] = None) -> Path:
    """Write the full level hierarchy of a Crocco run to ``path``."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    lay = crocco.case.layout
    if varnames is None:
        varnames = (
            [f"rho_{k}" for k in range(lay.nspecies)]
            + [f"mom_{d}" for d in range(lay.dim)]
            + ["energy"]
        )
    if len(varnames) != lay.ncons:
        raise ValueError("one variable name per conservative component required")
    header = {
        "format": FORMAT_TAG,
        "time": crocco.time,
        "step": crocco.step_count,
        "dim": lay.dim,
        "ncomp": lay.ncons,
        "varnames": list(varnames),
        "finest_level": crocco.finest_level,
        "levels": [],
    }
    for lev in range(crocco.finest_level + 1):
        mf = crocco.state[lev]
        boxes = [[list(b.lo.tup()), list(b.hi.tup())] for b in mf.ba]
        header["levels"].append({
            "level": lev,
            "domain": [list(crocco.geoms[lev].domain.lo.tup()),
                       list(crocco.geoms[lev].domain.hi.tup())],
            "boxes": boxes,
            "owners": list(mf.dm.ranks()),
        })
        arrays = {f"fab{i:05d}": fab.valid() for i, fab in mf}
        np.savez_compressed(path / f"Level_{lev}.npz", **arrays)
    (path / HEADER_NAME).write_text(json.dumps(header, indent=1))
    return path


def read_plotfile_header(path: Union[str, Path]) -> Dict:
    """Parse a plotfile's Header."""
    header = json.loads((Path(path) / HEADER_NAME).read_text())
    if header.get("format") != FORMAT_TAG:
        raise ValueError(f"not a {FORMAT_TAG} plotfile: {path}")
    return header


def read_level(path: Union[str, Path], level: int) -> Dict[int, np.ndarray]:
    """Load one level's patch arrays, keyed by box index."""
    with np.load(Path(path) / f"Level_{level}.npz") as data:
        return {int(k[3:]): data[k] for k in data.files}


def uniform_slab(path: Union[str, Path], level: int = 0,
                 comp: int = 0) -> np.ndarray:
    """Assemble one component of one level onto a dense array.

    Cells not covered by that level are NaN (useful to overlay AMR levels
    when rendering density contours like Fig. 2).
    """
    header = read_plotfile_header(path)
    meta = header["levels"][level]
    lo, hi = meta["domain"]
    shape = tuple(h - l + 1 for l, h in zip(lo, hi))
    out = np.full(shape, np.nan)
    fabs = read_level(path, level)
    for i, (blo, bhi) in enumerate(meta["boxes"]):
        sl = tuple(slice(bl - l, bh - l + 1) for bl, bh, l in zip(blo, bhi, lo))
        out[sl] = fabs[i][comp]
    return out
