"""I/O: AMReX-style input decks, plotfiles, and checkpoint/restart."""

from repro.io.inputs import InputDeck
from repro.io.plotfile import write_plotfile, read_plotfile_header
from repro.io.checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "InputDeck",
    "write_plotfile",
    "read_plotfile_header",
    "save_checkpoint",
    "load_checkpoint",
]
