"""Crash-safe checkpoint / restart.

Persists a Crocco run's complete evolving state — time, step count, level
hierarchy (BoxArrays, DistributionMappings) and every patch's field data
including ghost cells — and restores it into a Crocco driver, so long
runs can resume bit-exactly.

The write protocol survives being killed at any instant (the on-node
stand-in for a node failure mid-I/O on a large machine):

1. everything is written into a hidden ``.{name}.partial`` temp
   directory next to the destination;
2. each ``Level_N.npz`` records its SHA-256 digest in the Header, and
   the Header is written **last** — a partial directory can never carry
   a complete Header over incomplete data;
3. the temp directory is published with an atomic rename (any previous
   checkpoint of the same name is swapped out, not overwritten in
   place), so the destination path either holds the old complete
   checkpoint or the new complete checkpoint, never a torn mix.

``load_checkpoint`` verifies the format tag, version, level count and
per-file digests and raises :class:`CheckpointError` (a ``ValueError``)
with a diagnosis naming the corrupt piece instead of an opaque traceback.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping

#: bumped from "repro-checkpoint-1": v2 adds per-level SHA-256 digests
FORMAT_TAG = "repro-checkpoint-2"


class CheckpointError(ValueError):
    """A checkpoint is missing, truncated, corrupt, or incompatible."""


def _sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def save_checkpoint(path: Union[str, Path], crocco) -> Path:
    """Write a restartable snapshot of the run, atomically.

    When a fault injector with a pending ``kill_save`` fault is attached
    to the driver, the write is aborted partway through — exercising
    exactly the crash window the protocol defends against.
    """
    path = Path(path)
    faults = getattr(crocco, "faults", None)
    save_idx = faults.begin_save() if faults is not None else 0
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.partial"
    if tmp.exists():  # leftover of a previous crashed save
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        meta = {
            "format": FORMAT_TAG,
            "time": crocco.time,
            "step": crocco.step_count,
            "finest_level": crocco.finest_level,
            "version": crocco.version.name,
            "levels": [],
        }
        for lev in range(crocco.finest_level + 1):
            mf = crocco.state[lev]
            arrays = {f"state{i:05d}": fab.whole() for i, fab in mf}
            arrays.update(
                {f"du{i:05d}": fab.whole() for i, fab in crocco.du[lev]})
            np.savez_compressed(tmp / f"Level_{lev}.npz", **arrays)
            if faults is not None:
                # a kill here leaves a digestless partial dir, never a
                # Header claiming completeness
                faults.maybe_crash_save(save_idx, tmp / f"Level_{lev}.npz")
            meta["levels"].append({
                "boxes": [[list(b.lo.tup()), list(b.hi.tup())]
                          for b in mf.ba],
                "owners": list(mf.dm.ranks()),
                "sha256": _sha256(tmp / f"Level_{lev}.npz"),
            })
        # Header last: its presence certifies every Level file above it
        (tmp / "Header").write_text(json.dumps(meta, indent=1))
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    # atomic publish: swap out any previous checkpoint of the same name
    old = path.parent / f".{path.name}.old"
    if old.exists():
        shutil.rmtree(old)
    if path.exists():
        path.rename(old)
    tmp.rename(path)
    if old.exists():
        shutil.rmtree(old, ignore_errors=True)
    return path


def _read_header(path: Path) -> dict:
    header = path / "Header"
    if not path.exists():
        raise CheckpointError(f"checkpoint directory {path} does not exist")
    if not header.exists():
        raise CheckpointError(
            f"checkpoint {path} has no Header — the save was interrupted "
            "before completion (a .partial directory is never restorable)")
    try:
        meta = json.loads(header.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} has a corrupt Header (bad JSON): {exc}"
        ) from exc
    if meta.get("format") != FORMAT_TAG:
        raise CheckpointError(
            f"checkpoint {path} has format tag {meta.get('format')!r}, "
            f"this build reads {FORMAT_TAG!r}")
    for key in ("time", "step", "finest_level", "version", "levels"):
        if key not in meta:
            raise CheckpointError(
                f"checkpoint {path} Header is missing the {key!r} field")
    return meta


def load_checkpoint(path: Union[str, Path], crocco) -> None:
    """Restore a snapshot into a Crocco driver built on the same case/config.

    The driver may be freshly constructed or mid-run (watchdog restore):
    any existing hierarchy is cleared before the checkpointed one is
    rebuilt.  Raises :class:`CheckpointError` with a specific diagnosis
    on every corruption mode rather than restoring garbage.
    """
    path = Path(path)
    meta = _read_header(path)
    if meta["version"] != crocco.version.name:
        raise CheckpointError(
            f"checkpoint was written by CRoCCo {meta['version']}, "
            f"driver is {crocco.version.name}")
    nlev = len(meta["levels"])
    if nlev != meta["finest_level"] + 1:
        raise CheckpointError(
            f"checkpoint {path} Header is inconsistent: finest_level="
            f"{meta['finest_level']} but {nlev} level entr"
            f"{'y' if nlev == 1 else 'ies'} recorded")
    if nlev > crocco.amr_config.max_level + 1:
        raise CheckpointError(
            f"checkpoint {path} has {nlev} levels but the driver allows "
            f"at most {crocco.amr_config.max_level + 1} (amr.max_level)")
    # validate every Level file *before* touching the driver, so a corrupt
    # checkpoint cannot leave it half-restored
    for lev, lev_meta in enumerate(meta["levels"]):
        lev_path = path / f"Level_{lev}.npz"
        if not lev_path.exists():
            raise CheckpointError(
                f"checkpoint {path} is missing Level_{lev}.npz")
        digest = lev_meta.get("sha256")
        if digest is not None and _sha256(lev_path) != digest:
            raise CheckpointError(
                f"checkpoint {path} Level_{lev}.npz fails its SHA-256 "
                "digest — the file is truncated or corrupt")
    # clear any live hierarchy (restore into a used driver)
    for lev in range(crocco.finest_level, -1, -1):
        crocco.clear_level(lev)
        crocco.box_arrays[lev] = None
        crocco.dmaps[lev] = None
    crocco.finest_level = -1
    crocco.time = meta["time"]
    crocco.step_count = meta["step"]
    for lev, lev_meta in enumerate(meta["levels"]):
        ba = BoxArray(Box(tuple(lo), tuple(hi))
                      for lo, hi in lev_meta["boxes"])
        dm = DistributionMapping(lev_meta["owners"], crocco.comm.nranks)
        crocco.box_arrays[lev] = ba
        crocco.dmaps[lev] = dm
        crocco._build_level_storage(lev, ba, dm)
        try:
            with np.load(path / f"Level_{lev}.npz") as data:
                for i, fab in crocco.state[lev]:
                    fab.whole()[...] = data[f"state{i:05d}"]
                for i, fab in crocco.du[lev]:
                    fab.whole()[...] = data[f"du{i:05d}"]
        except (zipfile.BadZipFile, OSError, KeyError) as exc:
            raise CheckpointError(
                f"checkpoint {path} Level_{lev}.npz is unreadable "
                f"({exc}) — the save was likely interrupted") from exc
        crocco.finest_level = lev


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest complete checkpoint under ``directory`` (None if none).

    Partial (header-less) and in-progress ``.partial`` directories are
    skipped, so a crash during the most recent save falls back to the
    previous good one.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = [p for p in sorted(directory.iterdir())
                  if p.is_dir() and not p.name.startswith(".")
                  and (p / "Header").exists()]
    return candidates[-1] if candidates else None
