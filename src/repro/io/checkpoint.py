"""Checkpoint / restart.

Persists a Crocco run's complete evolving state — time, step count, level
hierarchy (BoxArrays, DistributionMappings) and every patch's field data
including ghost cells — and restores it into a freshly constructed driver,
so long runs can resume bit-exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping

FORMAT_TAG = "repro-checkpoint-1"


def save_checkpoint(path: Union[str, Path], crocco) -> Path:
    """Write a restartable snapshot of the run."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    meta = {
        "format": FORMAT_TAG,
        "time": crocco.time,
        "step": crocco.step_count,
        "finest_level": crocco.finest_level,
        "version": crocco.version.name,
        "levels": [],
    }
    for lev in range(crocco.finest_level + 1):
        mf = crocco.state[lev]
        meta["levels"].append({
            "boxes": [[list(b.lo.tup()), list(b.hi.tup())] for b in mf.ba],
            "owners": list(mf.dm.ranks()),
        })
        arrays = {f"state{i:05d}": fab.whole() for i, fab in mf}
        arrays.update({f"du{i:05d}": fab.whole() for i, fab in crocco.du[lev]})
        np.savez_compressed(path / f"Level_{lev}.npz", **arrays)
    (path / "Header").write_text(json.dumps(meta, indent=1))
    return path


def load_checkpoint(path: Union[str, Path], crocco) -> None:
    """Restore a snapshot into a Crocco driver built on the same case/config.

    The driver must be freshly constructed (not initialized); the hierarchy
    is rebuilt from the checkpoint metadata and all field data restored.
    """
    path = Path(path)
    meta = json.loads((path / "Header").read_text())
    if meta.get("format") != FORMAT_TAG:
        raise ValueError(f"not a {FORMAT_TAG} checkpoint: {path}")
    if meta["version"] != crocco.version.name:
        raise ValueError(
            f"checkpoint was written by CRoCCo {meta['version']}, "
            f"driver is {crocco.version.name}"
        )
    crocco.time = meta["time"]
    crocco.step_count = meta["step"]
    for lev, lev_meta in enumerate(meta["levels"]):
        ba = BoxArray(Box(tuple(lo), tuple(hi)) for lo, hi in lev_meta["boxes"])
        dm = DistributionMapping(lev_meta["owners"], crocco.comm.nranks)
        crocco.box_arrays[lev] = ba
        crocco.dmaps[lev] = dm
        crocco._build_level_storage(lev, ba, dm)
        with np.load(path / f"Level_{lev}.npz") as data:
            for i, fab in crocco.state[lev]:
                fab.whole()[...] = data[f"state{i:05d}"]
            for i, fab in crocco.du[lev]:
                fab.whole()[...] = data[f"du{i:05d}"]
    crocco.finest_level = meta["finest_level"]
