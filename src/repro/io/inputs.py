"""AMReX-style input deck parsing.

AMReX applications are configured by plain-text decks of
``prefix.key = value`` lines (the paper tunes ``amr.blocking_factor``,
``amr.max_grid_size``, the domain cell counts, etc. this way).  This
module parses that format and maps it onto :class:`CroccoConfig`.
"""

from __future__ import annotations

import shlex
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.crocco import CroccoConfig


class InputDeck:
    """A parsed ``key = value`` deck with typed accessors."""

    def __init__(self, entries: Dict[str, List[str]]) -> None:
        self._entries = dict(entries)

    @classmethod
    def parse(cls, text: str) -> "InputDeck":
        entries: Dict[str, List[str]] = {}
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ValueError(f"line {lineno}: expected 'key = value', got {raw!r}")
            key, _, value = line.partition("=")
            key = key.strip()
            tokens = shlex.split(value.strip())
            if not key or not tokens:
                raise ValueError(f"line {lineno}: empty key or value in {raw!r}")
            entries[key] = tokens
        return cls(entries)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "InputDeck":
        return cls.parse(Path(path).read_text())

    # -- accessors ---------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self):
        return self._entries.keys()

    def get_str(self, key: str, default: Optional[str] = None) -> Optional[str]:
        if key not in self._entries:
            return default
        return self._entries[key][0]

    def get_int(self, key: str, default: Optional[int] = None) -> Optional[int]:
        if key not in self._entries:
            return default
        return int(self._entries[key][0])

    def get_float(self, key: str, default: Optional[float] = None) -> Optional[float]:
        if key not in self._entries:
            return default
        return float(self._entries[key][0])

    def get_bool(self, key: str, default: Optional[bool] = None) -> Optional[bool]:
        if key not in self._entries:
            return default
        tok = self._entries[key][0].lower()
        if tok in ("1", "true", "t", "yes"):
            return True
        if tok in ("0", "false", "f", "no"):
            return False
        raise ValueError(f"{key}: cannot interpret {tok!r} as a boolean")

    def get_ints(self, key: str, default=None) -> Optional[List[int]]:
        if key not in self._entries:
            return default
        return [int(t) for t in self._entries[key]]

    # -- CroccoConfig mapping ----------------------------------------------
    def to_crocco_config(self) -> CroccoConfig:
        """Build a CroccoConfig from the recognized deck keys."""
        cfg = CroccoConfig(
            version=self.get_str("crocco.version", "2.1"),
            max_level=self.get_int("amr.max_level", 0),
            blocking_factor=self.get_int("amr.blocking_factor", 8),
            max_grid_size=self.get_int("amr.max_grid_size", 128),
            regrid_int=self.get_int("amr.regrid_int", 2),
            n_error_buf=self.get_int("amr.n_error_buf", 1),
            grid_eff=self.get_float("amr.grid_eff", 0.7),
            cfl=self.get_float("crocco.cfl", None),
            fixed_dt=self.get_float("crocco.fixed_dt", None),
            nranks=self.get_int("mpi.nranks", 1),
            ranks_per_node=self.get_int("mpi.ranks_per_node", 6),
            weno_variant=self.get_str("crocco.weno", "symbo"),
            tagging=self.get_str("amr.tagging", "density"),
            coords_source=self.get_str("crocco.coords_source", "stored"),
            interpolator=self.get_str("crocco.interpolator", None),
            trace_out=self.get_str("run.trace_out", None),
            metrics_out=self.get_str("run.metrics_out", None),
            profile=self.get_bool("run.profile", False),
        )
        # runtime keys keep their env-var defaults unless the deck sets them
        executor = self.get_str("runtime.executor")
        if executor:
            cfg.executor = executor
        workers = self.get_int("runtime.workers")
        if workers is not None:
            # "is not None", not truthiness: an explicit workers = 0 must
            # reach validate() and be rejected, not silently ignored
            cfg.workers = workers
        cfg.cache_dir = self.get_str("run.cache_dir", cfg.cache_dir)
        cfg.step_budget = self.get_int("run.max_steps", cfg.step_budget)
        cfg.wall_budget_s = self.get_float("run.max_wall_s",
                                           cfg.wall_budget_s)
        cfg.perfscope = self.get_bool("runtime.perfscope", cfg.perfscope)
        target = self.get_str("backend.target")
        if target:
            cfg.backend_target = target
        # run.record = DIR is shorthand for both artifacts in one run dir
        record = self.get_str("run.record")
        if record:
            from pathlib import Path

            if cfg.trace_out is None:
                cfg.trace_out = str(Path(record) / "trace.json")
            if cfg.metrics_out is None:
                cfg.metrics_out = str(Path(record) / "metrics.jsonl")
        self._apply_resilience(cfg)
        return cfg

    def _apply_resilience(self, cfg: CroccoConfig) -> None:
        """Map the ``resilience.*`` deck section onto the config."""
        cfg.watchdog = self.get_bool("resilience.watchdog", cfg.watchdog)
        cfg.supervise = self.get_bool("resilience.supervise", cfg.supervise)
        cfg.max_step_retries = self.get_int("resilience.max_step_retries",
                                            cfg.max_step_retries)
        cfg.retry_same_dt = self.get_int("resilience.retry_same_dt",
                                         cfg.retry_same_dt)
        cfg.task_retries = self.get_int("resilience.retries",
                                        cfg.task_retries)
        cfg.retry_backoff = self.get_float("resilience.backoff",
                                           cfg.retry_backoff)
        cfg.task_timeout = self.get_float("resilience.task_timeout",
                                          cfg.task_timeout)
        cfg.max_pool_restarts = self.get_int("resilience.max_pool_restarts",
                                             cfg.max_pool_restarts)
        cfg.autocheckpoint_every = self.get_int(
            "resilience.autocheckpoint_every", cfg.autocheckpoint_every)
        cfg.autocheckpoint_dir = self.get_str(
            "resilience.autocheckpoint_dir", cfg.autocheckpoint_dir)
        cfg.autocheckpoint_keep = self.get_int(
            "resilience.autocheckpoint_keep", cfg.autocheckpoint_keep)
        cfg.max_restores = self.get_int("resilience.max_restores",
                                        cfg.max_restores)
        cfg.positivity_spike = self.get_int("resilience.positivity_spike",
                                            cfg.positivity_spike)
        cfg.cfl_margin = self.get_float("resilience.cfl_margin",
                                        cfg.cfl_margin)
        # fault plan tokens may be space- or semicolon-separated in the deck
        if "resilience.faults.plan" in self:
            cfg.faults_plan = ";".join(self._entries["resilience.faults.plan"])
        cfg.faults_seed = self.get_int("resilience.faults.seed",
                                       cfg.faults_seed)

    def domain_cells(self) -> Optional[List[int]]:
        """The ``amr.n_cell`` entry (coarse cells per direction)."""
        return self.get_ints("amr.n_cell")
