"""Positivity safeguards for strong-shock robustness.

High-Mach production solvers protect against transient negative density or
internal energy produced by high-order reconstruction near severe features
(WENO is not positivity-preserving).  The safeguard clamps offending cells
to conservative floors and counts interventions — a healthy run applies
zero or a vanishing number of them, so the counter doubles as a solver
health metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.numerics.state import StateLayout


@dataclass
class PositivityGuard:
    """Floor-based density/internal-energy protection."""

    rho_floor: float = 1e-8
    e_int_floor: float = 1e-10
    #: interventions per step index (for health reporting)
    interventions: Dict[int, int] = field(default_factory=dict)

    def apply(self, layout: StateLayout, eos, u: np.ndarray,
              step: int = 0) -> int:
        """Clamp a conservative array in place; returns cells touched."""
        touched = 0
        rho = layout.density(u)
        bad_rho = rho < self.rho_floor
        if bad_rho.any():
            touched += int(bad_rho.sum())
            # species fractions are meaningless in a floored cell (they may
            # be negative): reset to an even split at the floor density
            even = self.rho_floor / layout.nspecies
            u[layout.rho_s] = np.where(bad_rho[None], even, u[layout.rho_s])
            # kill momentum in floored cells (a dead cell, not a jet)
            u[layout.mom_slice] = np.where(bad_rho[None], 0.0, u[layout.mom_slice])
        e_int = u[layout.energy] - layout.kinetic_energy(u)
        bad_e = e_int < self.e_int_floor
        if bad_e.any():
            touched += int(bad_e.sum())
            u[layout.energy] = np.where(
                bad_e, layout.kinetic_energy(u) + self.e_int_floor,
                u[layout.energy],
            )
        if touched:
            self.interventions[step] = self.interventions.get(step, 0) + touched
        return touched

    @property
    def total_interventions(self) -> int:
        return sum(self.interventions.values())


def attach_guard(crocco, guard: PositivityGuard | None = None) -> PositivityGuard:
    """Wrap a Crocco driver's RK update with the positivity guard.

    Returns the guard so callers can inspect intervention counts.
    """
    g = guard if guard is not None else PositivityGuard()
    # expose the guard on the driver so the recorder exports its counts
    # (safeguards.positivity_cells) and the watchdog can spot spikes
    crocco.guard = g
    kernels = crocco.kernels
    orig_update = kernels.update

    def guarded_update(u_valid, du, rhs, dt, stage, device=None):
        orig_update(u_valid, du, rhs, dt, stage, device=device)
        g.apply(crocco.case.layout, crocco.case.eos, u_valid,
                step=crocco.step_count)

    kernels.update = guarded_update
    return g
