"""Shared configuration-error type.

:class:`ConfigError` historically lived in :mod:`repro.core.crocco`; it
moved here so low-level layers (notably the execution-backend target
resolver in :mod:`repro.backend.launch`) can raise it without importing
the driver — ``repro.core.crocco`` imports the kernel and backend
packages, so the reverse import would be a cycle.  ``repro.core.crocco``
re-exports the name, and the CLI / serve convention is unchanged: a
``ConfigError`` is reported as a one-line ``error: ...`` message with
exit status 2 instead of a traceback.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """An invalid run configuration, reported before anything is built.

    Raised by :meth:`repro.core.crocco.CroccoConfig.validate`, the
    env-var parsers, and :func:`repro.backend.launch.resolve_target` so
    the CLI and the serve layer can turn a bad deck, flag, or
    environment into a clear one-line message (exit status 2) instead of
    a traceback deep inside pool or engine construction.
    """
