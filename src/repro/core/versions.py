"""The CRoCCo version matrix (Sec. V-C of the paper).

=======  ========  ====  ===========  ==========================
Version  Kernels   AMR   Where        Interpolator
=======  ========  ====  ===========  ==========================
1.0      Fortran   off   CPU          --
1.1      C++       off   CPU          --
1.2      C++       on    CPU          custom curvilinear
2.0      C++       on    GPU          custom curvilinear
2.1      C++       on    GPU          AMReX trilinear (built-in)
=======  ========  ====  ===========  ==========================

2.1 is the ParallelCopy ablation: swapping the custom curvilinear
interpolator for the built-in trilinear one removes the global
communication inside FillPatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class VersionConfig:
    """Capability switches of one CRoCCo version."""

    name: str
    backend: str  # kernel backend: fortran | cpp | gpu
    amr: bool
    interpolator: str  # "curvilinear" | "trilinear" | "conservative" | "weno"

    @property
    def on_gpu(self) -> bool:
        return self.backend == "gpu"

    @property
    def exec_target(self) -> str:
        """Default execution-backend target: recorded device launches for
        the GPU versions, plain host execution for the CPU ones."""
        return "device" if self.on_gpu else "host"

    @property
    def uses_global_parallelcopy(self) -> bool:
        """The custom curvilinear interpolator gathers coordinates globally."""
        return self.amr and self.interpolator == "curvilinear"


VERSIONS: Dict[str, VersionConfig] = {
    "1.0": VersionConfig("1.0", backend="fortran", amr=False, interpolator="curvilinear"),
    "1.1": VersionConfig("1.1", backend="cpp", amr=False, interpolator="curvilinear"),
    "1.2": VersionConfig("1.2", backend="cpp", amr=True, interpolator="curvilinear"),
    "2.0": VersionConfig("2.0", backend="gpu", amr=True, interpolator="curvilinear"),
    "2.1": VersionConfig("2.1", backend="gpu", amr=True, interpolator="trilinear"),
}


def get_version(name: str) -> VersionConfig:
    if name not in VERSIONS:
        raise KeyError(f"unknown CRoCCo version {name!r}; options {sorted(VERSIONS)}")
    return VERSIONS[name]
