"""The CRoCCo driver: Algorithms 1 and 2 of the paper.

Main loop (Algorithm 1)::

    InitGrid / InitGridMetrics / InitFlow
    for n in steps:
        if n % regridFreq == 0: Regrid()
        ComputeDt()
        RK3()

RK3 advance (Algorithm 2)::

    for RKstage in 1..3:
        for lev in 0..nlevels:
            FillPatch(); BC_Fill()
            WENOx(); WENOy(); WENOz(); Viscous(); Update()
        if RKstage == 3: AverageDown()

All communication flows through the simulated MPI substrate and is
recorded in the communicator ledger; all regions are timed under the
TinyProfiler names used in the paper's profiles (Figs. 6-7).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.amr.amrcore import AmrConfig, AmrCore
from repro.amr.boxarray import BoxArray
from repro.amr.distribution import DistributionMapping
from repro.amr.fillpatch import fill_patch_single_level, fill_patch_two_levels, fill_coarse_patch
from repro.amr.interp_curvilinear import CurvilinearInterp
from repro.amr.interp_weno import WenoInterp
from repro.amr.interpolate import ConservativeLinearInterp, TrilinearInterp
from repro.amr.multifab import MultiFab
from repro.amr.tagging import tag_density_gradient, tag_momentum_gradient, tagged_cells
from repro.backend import LaunchSpec
from repro.cases.base import Case
from repro.core.versions import VersionConfig, get_version
from repro.kernels.api import make_backend
from repro.mpi.comm import Communicator
from repro.numerics.cfl import compute_dt
from repro.numerics.fluxes import ConvectiveFlux
from repro.numerics.metrics import CartesianMetrics, CurvilinearMetrics
from repro.numerics.rk3 import NSTAGES
from repro.numerics.weno import WenoScheme
from repro.profiling.tinyprofiler import TinyProfiler

INTERPOLATORS = {
    "trilinear": TrilinearInterp,
    "curvilinear": CurvilinearInterp,
    "conservative": ConservativeLinearInterp,
    "weno": WenoInterp,
}


# ConfigError moved to repro.core.errors so the execution-backend target
# resolver can raise it without importing the driver; re-exported here
# because this was its historical home and callers import it from both.
from repro.core.errors import ConfigError  # noqa: E402,F401


def _workers_from_env() -> Optional[int]:
    """Parse REPRO_WORKERS, rejecting non-numeric values up front."""
    raw = os.environ.get("REPRO_WORKERS")
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_WORKERS must be an integer, got {raw!r}") from None


@dataclass
class CroccoConfig:
    """Run configuration (the input deck)."""

    version: str = "2.1"
    max_level: int = 0
    blocking_factor: int = 8
    max_grid_size: int = 128
    #: steps between regrids, or "auto" to derive it from the CFL condition
    #: (Sec. II-B: regrid before features convect from a patch interior to
    #: a fine/coarse interface)
    regrid_int: "int | str" = 2
    n_error_buf: int = 1
    grid_eff: float = 0.7
    cfl: Optional[float] = None
    fixed_dt: Optional[float] = None
    nranks: int = 1
    ranks_per_node: int = 6
    weno_variant: str = "symbo"
    tagging: str = "density"  # "density" | "momentum"
    #: "stored" keeps the whole grid in memory (getCoords()); "file" rereads
    #: coordinates from a binary file at each new-patch creation — the
    #: paper's first, slower implementation (Sec. III-C, Regridding).
    coords_source: str = "stored"
    interpolator: Optional[str] = None  # override the version default
    #: observability: Chrome trace-event JSON output path (Perfetto-loadable)
    trace_out: Optional[str] = None
    #: observability: per-timestep metrics JSONL output path
    metrics_out: Optional[str] = None
    #: print the TinyProfiler report and ledger summary at end of run (CLI)
    profile: bool = False
    #: task execution backend: "serial" (deterministic, in-process) or
    #: "pool" (multiprocessing workers over shared-memory FABs); the
    #: REPRO_EXECUTOR env var overrides the default for CI matrices
    executor: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXECUTOR", "serial"))
    #: pool worker count (default: one per CPU core, minimum two)
    workers: Optional[int] = field(default_factory=_workers_from_env)
    #: collect task-lifecycle spans + overhead attribution (perf.* gauges,
    #: the report's Bottleneck section); measured cost is ~per-task dict
    #: bookkeeping, itself reported as perf.overhead_s
    perfscope: bool = True
    #: execution-backend target: any name in the target registry —
    #: "host" (plain NumPy), "device" (recorded launches on the
    #: simulated GPUs), "fused" (optimizing: fused WENO sweeps, cached
    #: scratch, optional numba JIT) — or "auto" (device on the GPU
    #: versions, host otherwise); deck key ``backend.target``, overridden
    #: by the REPRO_BACKEND env var for CI matrices.  Validated by
    #: :func:`repro.backend.resolve_target` (ConfigError, CLI exit 2).
    backend_target: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND", "auto"))
    #: cross-run immutable cache directory (grid coords, curvilinear
    #: metrics, EOS tables, interpolation weights); None disables caching.
    #: Deck key ``run.cache_dir``; the serve layer points every run of a
    #: service at one shared directory.
    cache_dir: Optional[str] = None
    #: hard step budget enforced by the watchdog (None = unbounded); the
    #: serve layer maps a run's ``max_steps`` here and the watchdog raises
    #: :class:`~repro.resilience.watchdog.RunBudgetExceeded` when spent
    step_budget: Optional[int] = None
    #: hard wall-clock budget in seconds, measured from the first guarded
    #: step (None = unbounded); deck key ``run.max_wall_s``
    wall_budget_s: Optional[float] = None
    #: stream each metrics sample to ``metrics_out`` as it is taken (the
    #: serve layer's live-progress mode) instead of writing at finalize
    metrics_stream: bool = False

    # -- resilience (deck section ``resilience.*``) -----------------------
    #: validate every step (NaN/Inf, positivity spikes, CFL blowup) and
    #: retry failed steps from a pre-step snapshot
    watchdog: bool = True
    #: rollback/retry budget per step before restoring from a checkpoint
    max_step_retries: int = 3
    #: retries that re-run the identical dt before dt-halving kicks in
    retry_same_dt: int = 1
    #: supervise the pool executor (dead-worker detection, re-submission)
    supervise: bool = True
    #: per-task retry budget in the supervised pool
    task_retries: int = 2
    #: base delay of the capped exponential task-retry backoff (seconds)
    retry_backoff: float = 0.05
    #: seconds before an in-flight pool task is presumed lost
    task_timeout: float = 30.0
    #: pool respawns tolerated before degrading to inline execution
    max_pool_restarts: int = 3
    #: crash-safe checkpoint every N successful steps (0 = off)
    autocheckpoint_every: int = 0
    autocheckpoint_dir: str = "autochk"
    autocheckpoint_keep: int = 2
    #: restore-from-last-good budget after a step exhausts its retries
    max_restores: int = 2
    #: positivity-guard interventions per step above which the watchdog
    #: declares the step numerically failed (None = disabled)
    positivity_spike: Optional[int] = None
    #: fail a step whose realized dt*rate exceeds cfl*cfl_margin
    cfl_margin: Optional[float] = None
    #: fault-injection plan, e.g. "kill_worker@2.1;nan@4;seed=7"
    #: (deck key ``resilience.faults.plan`` or the REPRO_FAULTS env var)
    faults_plan: str = field(
        default_factory=lambda: os.environ.get("REPRO_FAULTS", ""))
    faults_seed: int = 0

    def resolve_version(self) -> VersionConfig:
        return get_version(self.version)

    def validate(self) -> "CroccoConfig":
        """Reject invalid runtime settings with a clear message.

        Catches the classic foot-guns — ``workers < 1``, an unknown
        executor name, malformed budgets — here, where the failing knob
        can be named, instead of deep inside pool construction.
        """
        from repro.runtime.executors import EXECUTORS

        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; options "
                f"{', '.join(EXECUTORS)}")
        if self.workers is not None and self.workers < 1:
            raise ConfigError(
                f"workers must be >= 1, got {self.workers}")
        if self.step_budget is not None and self.step_budget < 1:
            raise ConfigError(
                f"step budget must be >= 1, got {self.step_budget}")
        if self.wall_budget_s is not None and self.wall_budget_s <= 0:
            raise ConfigError(
                f"wall budget must be positive, got {self.wall_budget_s}")
        return self


class Crocco(AmrCore):
    """A configured CRoCCo simulation on one Case."""

    def __init__(self, case: Case, config: Optional[CroccoConfig] = None) -> None:
        self.case = case
        self.config = config if config is not None else CroccoConfig()
        self.config.validate()
        self.version = self.config.resolve_version()
        if self.config.coords_source not in ("stored", "file"):
            raise ValueError("coords_source must be 'stored' or 'file'")

        #: cross-run immutable cache (coords / curvilinear metrics / EOS
        #: tables / interp weights), shared by every run pointed at the
        #: same directory — the serve layer's fleet-wide store
        self.case_cache = None
        if self.config.cache_dir:
            from repro.serve.cache import CaseCache

            self.case_cache = CaseCache(self.config.cache_dir)

        max_level = self.config.max_level if self.version.amr else 0
        self._auto_regrid = self.config.regrid_int == "auto"
        regrid_int = 2 if self._auto_regrid else int(self.config.regrid_int)
        amr_cfg = AmrConfig(
            max_level=max_level,
            blocking_factor=self.config.blocking_factor,
            max_grid_size=self.config.max_grid_size,
            grid_eff=self.config.grid_eff,
            n_error_buf=self.config.n_error_buf,
            regrid_int=regrid_int,
        )
        comm = Communicator(self.config.nranks, self.config.ranks_per_node)
        super().__init__(case.geometry0(), amr_cfg, comm)

        # one simulated GPU per rank (Summit: one V100 per MPI rank)
        self.devices = None
        if self.version.on_gpu:
            from repro.kernels.device import GpuDevice

            self.devices = [GpuDevice(name=f"V100-rank{r}")
                            for r in range(comm.nranks)]

        # execution backend: every launch — flux kernels and the AMR
        # substrate alike — routes through this shared target.  The
        # single resolver handles deck key / env var / CLI flag alike
        # and reports unknown targets as ConfigError (CLI exit 2).
        from repro.backend import make_exec_backend, resolve_target

        source = ("REPRO_BACKEND" if os.environ.get("REPRO_BACKEND")
                  and self.config.backend_target
                  == os.environ.get("REPRO_BACKEND")
                  else "backend.target")
        target = resolve_target(self.config.backend_target,
                                version_default=self.version.exec_target,
                                source=source)
        self.backend_target = target
        backend_devices = self.devices
        if target != "host" and backend_devices is None:
            # a CPU version forced onto an accounting target (device or
            # fused) gets accounting devices of its own; self.devices
            # stays None so the residency and memory-report logic keeps
            # its CPU-version behavior
            from repro.kernels.device import GpuDevice

            backend_devices = [GpuDevice(name=f"V100-rank{r}")
                               for r in range(comm.nranks)]
            self._backend_devices = backend_devices
        self.exec_backend = make_exec_backend(target, backend_devices)

        self.kernels = make_backend(
            self.version.backend,
            case.layout,
            case.eos,
            convective=ConvectiveFlux(scheme=WenoScheme(variant=self.config.weno_variant)),
            viscous=case.viscous,
            device=self.devices[0] if self.devices else None,
            exec_backend=self.exec_backend,
        )
        self.ng = self.kernels.nghost
        interp_name = self.config.interpolator or self.version.interpolator
        if interp_name not in INTERPOLATORS:
            raise ValueError(f"unknown interpolator {interp_name!r}")
        self.interp = INTERPOLATORS[interp_name]()
        self.profiler = TinyProfiler()

        self.state: Dict[int, MultiFab] = {}
        self.du: Dict[int, MultiFab] = {}
        self.coords: Dict[int, MultiFab] = {}
        self.metrics: Dict[int, Dict[int, object]] = {}
        self._residency: Dict[int, object] = {}
        self._coords_file: Optional[str] = None

        self.time = 0.0
        self.step_count = 0
        self.dt_history: List[float] = []
        self.regrid_count = 0
        #: tagged-cell count per level from the most recent error estimate
        self.last_tag_counts: Dict[int, int] = {}

        # -- resilience: built before the engine so the supervised pool
        # and the fault injector are wired into task execution
        from repro.resilience.faults import FaultInjector
        from repro.resilience.stats import ResilienceStats

        self.resilience = ResilienceStats()
        self.faults = FaultInjector.from_config(self.config.faults_plan,
                                                self.config.faults_seed)
        #: the PositivityGuard, when safeguards.attach_guard() installed one
        self.guard = None

        from repro.runtime.engine import RuntimeEngine

        self.engine = RuntimeEngine(self, self.config.executor,
                                    self.config.workers,
                                    perfscope=self.config.perfscope)

        self.watchdog = None
        has_budget = (self.config.step_budget is not None
                      or self.config.wall_budget_s is not None)
        if self.config.watchdog or has_budget:
            # budgets are enforced on the watchdog path, so setting one
            # implies the watchdog even when validation is switched off
            from repro.resilience.watchdog import StepWatchdog

            self.watchdog = StepWatchdog(
                max_step_retries=self.config.max_step_retries,
                retry_same_dt=self.config.retry_same_dt,
                positivity_spike=self.config.positivity_spike,
                cfl_margin=self.config.cfl_margin,
                autocheckpoint_every=self.config.autocheckpoint_every,
                autocheckpoint_dir=self.config.autocheckpoint_dir,
                autocheckpoint_keep=self.config.autocheckpoint_keep,
                max_restores=self.config.max_restores,
                step_budget=self.config.step_budget,
                wall_budget_s=self.config.wall_budget_s,
                stats=self.resilience,
            )

        self.recorder = None
        if self.config.trace_out or self.config.metrics_out:
            from repro.observability.recorder import RunRecorder

            self.recorder = RunRecorder(
                trace_out=self.config.trace_out,
                metrics_out=self.config.metrics_out,
                stream_metrics=self.config.metrics_stream)
            self.recorder.attach(self)
            self.engine.bind_tracer(self.recorder.tracer)

    # -- initialization (InitGrid / InitGridMetrics / InitFlow) ---------------
    def initialize(self) -> None:
        """Build the initial hierarchy and flow field."""
        from repro.backend import use_backend

        with use_backend(self.exec_backend), self.profiler.region("Init"):
            if self.case_cache is not None:
                interp_name = (self.config.interpolator
                               or self.version.interpolator)
                self.case_cache.warm(self.case, interp_name)
            if self.config.coords_source == "file":
                self._write_coords_file()
            self.init_from_scratch()

    def _write_coords_file(self) -> None:
        """Persist the full finest-level grid coordinates to a binary file.

        The "file" coords source replays the paper's first regridding
        implementation, where each newly created AMR patch serially read
        its coordinates back from disk with std::iostream.
        """
        geom = self.geoms[self.config.max_level if self.version.amr else 0]
        coords = self.case.coordinates(geom, geom.domain)
        fd, path = tempfile.mkstemp(suffix=".coords.npy", prefix="crocco_")
        os.close(fd)
        np.save(path, coords)
        self._coords_file = path

    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        if self.recorder is not None:
            written = self.recorder.finalize(self)
            for kind, path in written.items():
                print(f"wrote {kind} {path}")
        self.engine.close()
        if self._coords_file and os.path.exists(self._coords_file):
            os.unlink(self._coords_file)
            self._coords_file = None

    def __enter__(self) -> "Crocco":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- AmrCore hooks -----------------------------------------------------
    def make_new_level_from_scratch(self, lev, ba, dm) -> None:
        self._build_level_storage(lev, ba, dm)
        for i, fab in self.state[lev]:
            c = self.coords[lev].fab(i).whole()
            u0 = self.case.initial_condition(c, self.time)
            fab.whole()[...] = u0

    def make_new_level_from_coarse(self, lev, ba, dm) -> None:
        self._build_level_storage(lev, ba, dm)
        fill_coarse_patch(
            self.state[lev], self.state[lev - 1], self.geoms[lev],
            self.ref_ratio_iv(), self.interp,
            crse_coords=self.coords[lev - 1] if self.interp.needs_coords else None,
            fine_coords=self.coords[lev] if self.interp.needs_coords else None,
            profiler=self.profiler,
        )
        self._bc_fill(lev)

    def remake_level(self, lev, ba, dm) -> None:
        old_state = self.state[lev]
        self._clear_level_storage(lev)
        self._build_level_storage(lev, ba, dm)
        # interpolate everywhere from coarse, then overwrite with surviving
        # same-level data (the standard AMReX RemakeLevel recipe)
        fill_coarse_patch(
            self.state[lev], self.state[lev - 1], self.geoms[lev],
            self.ref_ratio_iv(), self.interp,
            crse_coords=self.coords[lev - 1] if self.interp.needs_coords else None,
            fine_coords=self.coords[lev] if self.interp.needs_coords else None,
            profiler=self.profiler,
        )
        self.state[lev].parallel_copy(old_state)
        self._bc_fill(lev)

    def clear_level(self, lev) -> None:
        self._clear_level_storage(lev)

    def error_est(self, lev) -> np.ndarray:
        mf = self.state[lev]
        # two-level fill so coarse/fine-interface ghosts are valid before
        # the gradient criterion reads them
        self._fill_patch(lev)
        self._bc_fill(lev)
        lay = self.case.layout
        if self.config.tagging == "momentum":
            tags = tag_momentum_gradient(
                mf, tuple(range(lay.mom(0), lay.mom(0) + lay.dim)),
                self.case.tag_threshold,
            )
        else:
            tags = tag_density_gradient(mf, 0, self.case.tag_threshold)
        cells = tagged_cells(mf, tags)
        self.last_tag_counts[lev] = int(cells.shape[0])
        return cells

    # -- storage management --------------------------------------------------
    def _build_level_storage(self, lev: int, ba: BoxArray,
                             dm: DistributionMapping) -> None:
        lay = self.case.layout
        self.state[lev] = MultiFab(ba, dm, lay.ncons, self.ng, self.comm)
        self.du[lev] = MultiFab(ba, dm, lay.ncons, 0, self.comm)
        coords = MultiFab(ba, dm, lay.dim, self.ng, self.comm)
        geom = self.geoms[lev]
        for i, fab in coords:
            fab.whole()[...] = self._get_coords(geom, fab.grown_box())
        self.coords[lev] = coords
        self.metrics[lev] = {}
        for i, fab in coords:
            if self.case.curvilinear:
                if self.case_cache is not None:
                    # cross-run store of the 27-component metrics arrays;
                    # a hit rebuilds the exact float64 arrays, so cached
                    # and freshly computed runs stay bitwise identical
                    self.metrics[lev][i] = (
                        self.case_cache.curvilinear_metrics(fab.whole()))
                else:
                    self.metrics[lev][i] = (
                        CurvilinearMetrics.from_coordinates(fab.whole()))
            else:
                self.metrics[lev][i] = CartesianMetrics(self.case.cartesian_dx(geom))
        if self.devices is not None:
            # register each rank's share of the level on its own GPU
            handles = []
            per_rank = [0] * self.comm.nranks
            for i, fab in self.state[lev]:
                r = self.state[lev].dm[i]
                per_rank[r] += (fab.nbytes() + self.du[lev].fab(i).nbytes()
                                + coords.fab(i).nbytes())
            for r, nbytes in enumerate(per_rank):
                if nbytes:
                    handles.append(
                        self.kernels.register_state(nbytes, self.devices[r])
                    )
            self._residency[lev] = handles
        engine = getattr(self, "engine", None)
        if engine is not None:
            engine.adopt_level(lev)

    def _get_coords(self, geom, region) -> np.ndarray:
        """getCoords(): from memory (analytic mapping) or from the file."""
        if self.config.coords_source == "file" and self._coords_file:
            with self.profiler.region("getCoords_fileIO"):
                # the stored file covers the finest uniform grid; re-reading
                # it per patch is exactly the overhead the paper removed
                _ = np.load(self._coords_file, mmap_mode=None)
                return self.case.coordinates(geom, region)
        if self.case_cache is not None:
            return self.case_cache.coordinates(self.case, geom, region)
        return self.case.coordinates(geom, region)

    def _clear_level_storage(self, lev: int) -> None:
        engine = getattr(self, "engine", None)
        if engine is not None:
            engine.release_level(lev)
        for store in (self.state, self.du, self.coords, self.metrics):
            store.pop(lev, None)
        for handle in self._residency.pop(lev, []) or []:
            handle.free()

    # -- boundary conditions ---------------------------------------------
    def _bc_fill(self, lev: int) -> None:
        with self.profiler.region("BC_Fill"):
            geom = self.geoms[lev]
            mf = self.state[lev]
            for i, fab in mf:
                ghost_pts = fab.grown_box().num_pts() - fab.box.num_pts()
                self.exec_backend.parallel_for(
                    "BC_fill",
                    lambda fab=fab, i=i: self.case.bc_fill(
                        fab, geom, self.time, self.coords[lev].fab(i)),
                    ghost_pts,
                    LaunchSpec(kernel_class="fillpatch", rank=mf.dm[i]))

    def _fill_patch(self, lev: int) -> None:
        with self.profiler.region("FillPatch"):
            if lev == 0:
                fill_patch_single_level(self.state[0], self.geoms[0],
                                        profiler=self.profiler)
            else:
                needs = self.interp.needs_coords
                fill_patch_two_levels(
                    self.state[lev], self.state[lev - 1],
                    self.geoms[lev], self.geoms[lev - 1],
                    self.ref_ratio_iv(), self.interp,
                    crse_coords=self.coords[lev - 1] if needs else None,
                    fine_coords=self.coords[lev] if needs else None,
                    profiler=self.profiler,
                )

    # -- Algorithm 1: main loop -------------------------------------------
    def run(self, nsteps: int) -> None:
        if self.finest_level < 0:
            self.initialize()
        for _ in range(nsteps):
            self.step()

    def step(self) -> None:
        from repro.backend import use_backend

        # the LaunchContext routes every AMR-substrate launch of this step
        # (regrid, FillPatch, tagging, ComputeDt, ...) to the configured
        # execution backend
        with use_backend(self.exec_backend):
            if self.version.amr and self.config.max_level > 0:
                if self.step_count % self.regrid_interval() == 0:
                    with self.profiler.region("Regrid"):
                        self.regrid()
                    self.regrid_count += 1
            if self.watchdog is not None:
                self.watchdog.guarded_advance(self)
            else:
                self._advance(self._compute_dt())
        if self.recorder is not None:
            self.recorder.sample_step(self)

    def _advance(self, dt: float) -> None:
        """One unguarded advance: the RK3 graphs plus bookkeeping.

        The watchdog retries this whole unit, so everything it mutates
        (state, time, step_count, dt_history) is covered by its snapshot.
        """
        self._rk3(dt)
        if self.faults is not None:
            self.faults.corrupt_state(self)
        self.time += dt
        self.step_count += 1
        self.dt_history.append(dt)

    def regrid_interval(self) -> int:
        """Steps between regrids — fixed, or CFL-derived when "auto".

        The auto rule (Sec. II-B): a feature travels at most CFL cells per
        step, so regrid before it can cross from the smallest fine patch's
        interior to its edge.
        """
        if not self._auto_regrid:
            return int(self.config.regrid_int)
        from repro.amr.amrcore import optimal_regrid_interval

        lev = self.finest_level
        if lev <= 0 or self.box_arrays[lev] is None:
            return 1
        min_side = min(min(b.size()) for b in self.box_arrays[lev])
        cfl = self.config.cfl if self.config.cfl is not None else self.case.cfl
        return optimal_regrid_interval(min_side, cfl,
                                       self.amr_config.n_error_buf)

    def _compute_dt(self) -> float:
        with self.profiler.region("ComputeDt"):
            if self.config.fixed_dt is not None:
                return self.config.fixed_dt
            rates = [0.0] * self.comm.nranks
            for lev in range(self.finest_level + 1):
                mf = self.state[lev]
                for i, fab in mf:
                    # valid region only: ghost cells can be stale right
                    # after a regrid, before the stage's FillPatch
                    r = self.kernels.max_rate(
                        fab.valid(), self.metrics[lev][i].interior(self.ng),
                        device=self._device_of(mf.dm[i]),
                    )
                    rank = mf.dm[i]
                    rates[rank] = max(rates[rank], r)
            cfl = self.config.cfl if self.config.cfl is not None else self.case.cfl
            return compute_dt(rates, cfl, self.comm)

    # -- Algorithm 2: RK3 advance ------------------------------------------
    def _rk3(self, dt: float) -> None:
        """One RK3 advance, executed as per-stage task graphs.

        The runtime engine builds a graph per stage (FillPatch split into
        nowait/finish halves, per-box kernels, AverageDown) and runs it on
        the configured executor; the ``serial`` executor reproduces the
        historical eager loop bit for bit.
        """
        with self.profiler.region("Advance"):
            for lev in range(self.finest_level + 1):
                self.du[lev].set_val(0.0)
            self.engine.begin_step()
            for stage in range(NSTAGES):
                self.engine.run_stage(dt, stage)
            self.engine.end_step()

    def _device_of(self, rank: int):
        """The owning rank's simulated GPU (None on CPU backends)."""
        return self.devices[rank] if self.devices is not None else None

    def gpu_memory_report(self):
        """Per-rank simulated device memory (bytes in use, high water)."""
        if self.devices is None:
            return None
        return [(d.name, d.bytes_in_use, d.high_water) for d in self.devices]

    # -- diagnostics -----------------------------------------------------
    def total_mass(self) -> float:
        """Integral of density over the level-0 grid (conservation check)."""
        mf = self.state[0]
        total = 0.0
        for i, fab in mf:
            J = np.broadcast_to(
                self.metrics[0][i].jacobian(), fab.box.shape()
            )
            rho = fab.valid()[self.case.layout.rho_s].sum(axis=0)
            total += float((rho * J).sum())
        return total

    def min_max(self, comp: int):
        return self.state[0].min(comp), self.state[0].max(comp)
