"""Run-time diagnostics: conserved integrals, extrema, shock tracking.

Production CFD codes log these every few steps; CRoCCo's validation
procedure (Sec. IV-C: "regular validation runs") relies on exactly such
time series.  The DMR shock tracker also gives a *physics* validation:
the incident shock's trace along any y = const line must move at
``M / sin(beta)`` (10 / sin 60 deg for the paper's case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class StepRecord:
    """One sampled diagnostic record."""

    step: int
    time: float
    mass: float
    momentum: tuple
    energy: float
    rho_min: float
    rho_max: float
    p_min: float
    p_max: float


class DiagnosticsLog:
    """Accumulates conserved-quantity time series from a Crocco run."""

    def __init__(self, crocco) -> None:
        self.sim = crocco
        self.records: List[StepRecord] = []

    def sample(self) -> StepRecord:
        sim = self.sim
        lay = sim.case.layout
        eos = sim.case.eos
        mass = 0.0
        mom = np.zeros(lay.dim)
        energy = 0.0
        rho_min, rho_max = np.inf, -np.inf
        p_min, p_max = np.inf, -np.inf
        mf = sim.state[0]
        for i, fab in mf:
            J = np.broadcast_to(sim.metrics[0][i].jacobian(), fab.box.shape())
            u = fab.valid()
            rho = lay.density(u)
            p = eos.pressure(lay, u)
            mass += float((rho * J).sum())
            for d in range(lay.dim):
                mom[d] += float((u[lay.mom(d)] * J).sum())
            energy += float((u[lay.energy] * J).sum())
            rho_min = min(rho_min, float(rho.min()))
            rho_max = max(rho_max, float(rho.max()))
            p_min = min(p_min, float(p.min()))
            p_max = max(p_max, float(p.max()))
        rec = StepRecord(sim.step_count, sim.time, mass, tuple(mom), energy,
                         rho_min, rho_max, p_min, p_max)
        self.records.append(rec)
        return rec

    def series(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.records])

    def drift(self, attr: str) -> float:
        """Relative drift of a conserved quantity over the log."""
        s = self.series(attr)
        if len(s) < 2 or s[0] == 0:
            return 0.0
        return float(abs(s[-1] - s[0]) / abs(s[0]))


def shock_position(crocco, y_frac: float = 0.9, comp: int = 0) -> float:
    """x-location of the strongest gradient along a y = const line.

    For the DMR, sampling near the top boundary (before the reflected
    system arrives) isolates the incident shock, whose trace speed should
    equal M / sin(beta) = 10 / sin(60 deg).
    """
    lay = crocco.case.layout
    best_x, best_g = None, -1.0
    for i, fab in crocco.state[0]:
        coords = crocco.coords[0].fab(i).valid()
        u = fab.valid()
        # pick the j row closest to the requested height
        y = coords[1]
        j = int(np.argmin(np.abs(y[0, :] - y_frac * crocco.case.prob_extent[1])))
        line = u[comp][:, j] if u.ndim == 3 else u[comp][:, j, u.shape[3] // 2]
        x = coords[0][:, j] if coords.ndim == 3 else coords[0][:, j, 0]
        if len(line) < 3:
            continue
        g = np.abs(np.diff(line))
        k = int(np.argmax(g))
        if g[k] > best_g:
            best_g = float(g[k])
            best_x = float(0.5 * (x[k] + x[k + 1]))
    if best_x is None:
        raise ValueError("no shock found on the sampling line")
    return best_x


def measure_shock_speed(crocco, nsteps: int = 20, y_frac: float = 0.9) -> float:
    """Advance the run and return the measured shock-trace speed dx/dt."""
    x0, t0 = shock_position(crocco, y_frac), crocco.time
    for _ in range(nsteps):
        crocco.step()
    x1, t1 = shock_position(crocco, y_frac), crocco.time
    if t1 == t0:
        raise ValueError("no time elapsed")
    return (x1 - x0) / (t1 - t0)
