"""Correctness validation: L2-norm comparisons between code versions.

The paper validates the Fortran -> C++ translation and the GPU port by
comparing the L2-norm of the difference in each flow variable of interest
(velocity, density, temperature); the value plateaued at ~1e-7, within
machine-precision accumulation for the operation count involved
(Sec. IV-A, IV-C).  This module reproduces that validation procedure.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def l2_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square difference (the paper's L2-norm criterion)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.sqrt(np.mean((a - b) ** 2)))


def flow_variables(crocco, lev: int = 0) -> Dict[str, np.ndarray]:
    """Assemble per-variable arrays (rho, u_i, T) over one level's patches.

    Patches are concatenated in box order; both runs must share the level's
    BoxArray for a comparison to be meaningful.
    """
    lay = crocco.case.layout
    eos = crocco.case.eos
    rho_parts, vel_parts, T_parts = [], [], []
    for i, fab in crocco.state[lev]:
        u = fab.valid()
        rho_parts.append(lay.density(u).ravel())
        vel_parts.append(lay.velocity(u).reshape(lay.dim, -1))
        T_parts.append(eos.temperature(lay, u).ravel())
    out = {
        "rho": np.concatenate(rho_parts),
        "T": np.concatenate(T_parts),
    }
    vel = np.concatenate(vel_parts, axis=1)
    for d in range(lay.dim):
        out[f"u{d}"] = vel[d]
    return out


def compare_states(run_a, run_b, lev: int = 0) -> Dict[str, float]:
    """Per-flow-variable L2 differences between two runs (same case/grid)."""
    va = flow_variables(run_a, lev)
    vb = flow_variables(run_b, lev)
    if set(va) != set(vb):
        raise ValueError("runs expose different flow variables")
    return {k: l2_difference(va[k], vb[k]) for k in sorted(va)}


def error_norms(crocco, case=None, lev: int = 0) -> Dict[str, Dict[str, float]]:
    """L1/L2/Linf density/velocity/temperature errors vs the exact solution.

    Requires the case to implement ``exact_solution``.  Errors are computed
    over every patch of one level at the run's current time.
    """
    c = case if case is not None else crocco.case
    lay = c.layout
    eos = c.eos
    acc: Dict[str, list] = {}
    for i, fab in crocco.state[lev]:
        coords = crocco.coords[lev].fab(i).valid()
        exact = c.exact_solution(coords, crocco.time)
        if exact is None:
            raise ValueError(f"case {c.name!r} provides no exact solution")
        u = fab.valid()
        pairs = {
            "rho": (lay.density(u), lay.density(exact)),
            "T": (eos.temperature(lay, u), eos.temperature(lay, exact)),
        }
        vel_n = lay.velocity(u)
        vel_e = lay.velocity(exact)
        for d in range(lay.dim):
            pairs[f"u{d}"] = (vel_n[d], vel_e[d])
        for name, (num, ex) in pairs.items():
            acc.setdefault(name, []).append((num - ex).ravel())
    out: Dict[str, Dict[str, float]] = {}
    for name, parts in acc.items():
        e = np.concatenate(parts)
        out[name] = {
            "L1": float(np.mean(np.abs(e))),
            "L2": float(np.sqrt(np.mean(e**2))),
            "Linf": float(np.abs(e).max()),
        }
    return out


def observed_order(errors: "list[float]", refinement: float = 2.0) -> "list[float]":
    """Observed convergence orders log_r(e_k / e_{k+1}) between levels."""
    if len(errors) < 2:
        raise ValueError("need at least two resolutions")
    out = []
    for a, b in zip(errors, errors[1:]):
        if a <= 0 or b <= 0:
            raise ValueError("errors must be positive")
        out.append(float(np.log(a / b) / np.log(refinement)))
    return out
