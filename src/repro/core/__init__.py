"""CRoCCo driver: the paper's Algorithm 1/2 over the AMR substrate."""

from repro.core.versions import VersionConfig, VERSIONS
from repro.core.crocco import Crocco, CroccoConfig
from repro.core.validation import l2_difference, compare_states

__all__ = [
    "Crocco",
    "CroccoConfig",
    "VersionConfig",
    "VERSIONS",
    "l2_difference",
    "compare_states",
]
