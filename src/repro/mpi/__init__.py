"""Simulated MPI substrate.

The paper runs CRoCCo with MPI across up to 1024 Summit nodes.  We have one
process, so this package implements a *simulated* SPMD model: every rank
lives in the same address space, ranks own patches through the
DistributionMapping, and communication primitives really move the data
between rank-owned arrays while recording each message (source rank,
destination rank, byte count, kind) in a :class:`~repro.mpi.ledger.CommLedger`.
The performance layer (``repro.perfmodel``) converts ledgers into time using
the fat-tree network model.
"""

from repro.mpi.comm import Communicator, SerialComm
from repro.mpi.ledger import CommLedger, Message

__all__ = ["Communicator", "SerialComm", "CommLedger", "Message"]
