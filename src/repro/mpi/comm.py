"""Communicator abstraction for the simulated SPMD model.

All ranks share one address space.  A :class:`Communicator` carries the
rank count, the node topology (ranks per node, as on Summit: 6 ranks per
node, one per GPU), and the :class:`~repro.mpi.ledger.CommLedger` that
records traffic.  Collective reductions here both compute the true value
and account for the message pattern of a binomial reduction tree, which is
what ``amrex::ParallelDescriptor::ReduceRealMin`` (used by ComputeDt)
performs.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro.mpi.ledger import CommLedger


class Communicator:
    """A simulated MPI communicator over ``nranks`` ranks."""

    def __init__(self, nranks: int, ranks_per_node: int = 6,
                 ledger: Optional[CommLedger] = None) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        self.nranks = nranks
        self.ranks_per_node = ranks_per_node
        self.ledger = ledger if ledger is not None else CommLedger(ranks_per_node)

    @property
    def nnodes(self) -> int:
        return -(-self.nranks // self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    # -- point-to-point ------------------------------------------------------
    def send_bytes(self, src: int, dst: int, nbytes: int, kind: str) -> None:
        """Account for one point-to-point message (data moved by the caller)."""
        self._check_rank(src)
        self._check_rank(dst)
        self.ledger.record(src, dst, nbytes, kind)

    # -- collectives -----------------------------------------------------
    def reduce_min(self, values: Sequence[float], itemsize: int = 8) -> float:
        """All-reduce MIN over per-rank values via a binomial tree + broadcast.

        ``values`` holds one contribution per rank.  Returns the global min
        and records the tree's messages (2 * ceil(log2(n)) rounds).
        """
        return self._tree_reduce(values, min, itemsize)

    def reduce_max(self, values: Sequence[float], itemsize: int = 8) -> float:
        return self._tree_reduce(values, max, itemsize)

    def reduce_sum(self, values: Sequence[float], itemsize: int = 8) -> float:
        return self._tree_reduce(values, lambda a, b: a + b, itemsize)

    def _tree_reduce(self, values: Sequence[float],
                     op: Callable[[float, float], float], itemsize: int) -> float:
        if len(values) != self.nranks:
            raise ValueError(
                f"expected one value per rank ({self.nranks}), got {len(values)}"
            )
        vals: List[float] = [float(v) for v in values]
        # reduce to rank 0
        stride = 1
        while stride < self.nranks:
            for r in range(0, self.nranks, 2 * stride):
                peer = r + stride
                if peer < self.nranks:
                    self.ledger.record(peer, r, itemsize, "reduce")
                    vals[r] = op(vals[r], vals[peer])
            stride *= 2
        result = vals[0]
        # broadcast back down the same tree
        stride = 1 << max(0, (self.nranks - 1).bit_length() - 1)
        while stride >= 1:
            for r in range(0, self.nranks, 2 * stride):
                peer = r + stride
                if peer < self.nranks:
                    self.ledger.record(r, peer, itemsize, "reduce")
            stride //= 2
        return result

    def barrier_rounds(self) -> int:
        """Number of message rounds in a dissemination barrier (for costing)."""
        return max(1, math.ceil(math.log2(max(2, self.nranks))))

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.nranks:
            raise ValueError(f"rank {r} out of range [0, {self.nranks})")

    def __repr__(self) -> str:
        return f"Communicator(nranks={self.nranks}, ranks_per_node={self.ranks_per_node})"


class SerialComm(Communicator):
    """A single-rank communicator (no traffic recorded for self-copies)."""

    def __init__(self) -> None:
        super().__init__(nranks=1, ranks_per_node=1)
