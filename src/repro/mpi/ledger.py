"""Message ledger: the record of simulated MPI traffic.

Every communication primitive in the substrate (FillBoundary point-to-point
exchanges, ParallelCopy global redistribution, reductions) appends
:class:`Message` records here.  The ledger is the ground truth that the
Summit network model prices: message counts, per-kind byte volumes, and
the on-node/off-node split all come from real box-intersection geometry.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Message kinds tracked by the ledger, matching the paper's profiling
#: regions (Fig. 7 splits FillPatch into FillBoundary and ParallelCopy).
KINDS = ("fillboundary", "parallelcopy", "reduce", "averagedown", "regrid")


@dataclass(frozen=True)
class Message:
    """One simulated MPI message."""

    src: int
    dst: int
    nbytes: int
    kind: str

    @property
    def local(self) -> bool:
        """True when source and destination rank coincide (a memcpy)."""
        return self.src == self.dst


class CommLedger:
    """Accumulates simulated messages and summarizes traffic."""

    def __init__(self, ranks_per_node: int = 6) -> None:
        #: ranks per node; Summit runs 6 ranks/node (one per V100 GPU)
        self.ranks_per_node = ranks_per_node
        self._messages: List[Message] = []
        self.enabled = True
        self._listeners: List[object] = []

    # -- listeners ---------------------------------------------------------
    def add_listener(self, listener: object) -> None:
        """Attach an observer whose ``on_message(msg)`` sees each record."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def record(self, src: int, dst: int, nbytes: int, kind: str) -> None:
        """Append one message; ``kind`` must be one of :data:`KINDS`."""
        if not self.enabled:
            return
        if kind not in KINDS:
            raise ValueError(f"unknown message kind {kind!r}")
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        msg = Message(src, dst, nbytes, kind)
        self._messages.append(msg)
        for listener in self._listeners:
            listener.on_message(msg)

    @contextmanager
    def paused(self) -> Iterator["CommLedger"]:
        """Suspend recording for a block (restores the prior state after)."""
        prev = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = prev

    def clear(self, kind: Optional[str] = None) -> None:
        """Drop recorded messages — all of them, or one ``kind`` only."""
        if kind is None:
            self._messages.clear()
            return
        if kind not in KINDS:
            raise ValueError(f"unknown message kind {kind!r}")
        self._messages = [m for m in self._messages if m.kind != kind]

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def messages(self, kind: Optional[str] = None) -> List[Message]:
        if kind is None:
            return list(self._messages)
        return [m for m in self._messages if m.kind == kind]

    # -- summaries --------------------------------------------------------
    def total_bytes(self, kind: Optional[str] = None, remote_only: bool = False) -> int:
        return sum(
            m.nbytes
            for m in self._messages
            if (kind is None or m.kind == kind) and not (remote_only and m.local)
        )

    def count(self, kind: Optional[str] = None, remote_only: bool = False) -> int:
        return sum(
            1
            for m in self._messages
            if (kind is None or m.kind == kind) and not (remote_only and m.local)
        )

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def off_node_bytes(self, kind: Optional[str] = None) -> int:
        """Bytes crossing node boundaries (priced at network bandwidth)."""
        return sum(
            m.nbytes
            for m in self._messages
            if (kind is None or m.kind == kind)
            and self.node_of(m.src) != self.node_of(m.dst)
        )

    def on_node_bytes(self, kind: Optional[str] = None) -> int:
        """Bytes between different ranks on the same node (NVLink/shared mem)."""
        return sum(
            m.nbytes
            for m in self._messages
            if (kind is None or m.kind == kind)
            and m.src != m.dst
            and self.node_of(m.src) == self.node_of(m.dst)
        )

    def per_rank_bytes(self, nranks: int, kind: Optional[str] = None,
                       direction: str = "send") -> List[int]:
        """Bytes sent (or received) by each rank, excluding self-messages."""
        out = [0] * nranks
        for m in self._messages:
            if kind is not None and m.kind != kind:
                continue
            if m.local:
                continue
            r = m.src if direction == "send" else m.dst
            out[r] += m.nbytes
        return out

    def by_kind(self) -> Dict[str, Tuple[int, int]]:
        """{kind: (count, bytes)} over all messages."""
        out: Dict[str, Tuple[int, int]] = {}
        counts: Dict[str, int] = defaultdict(int)
        volumes: Dict[str, int] = defaultdict(int)
        for m in self._messages:
            counts[m.kind] += 1
            volumes[m.kind] += m.nbytes
        for k in counts:
            out[k] = (counts[k], volumes[k])
        return out
