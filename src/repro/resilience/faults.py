"""Deterministic fault injection from a seeded plan.

Chaos runs must be reproducible, so faults are *planned*, not random:
a plan is a list of tokens, each firing exactly once at a named step
(and, for task-level faults, RK stage)::

    seed=42 kill_worker@2 nan@3 drop_comm@1:fb task_error@4:Box
    slow@2:1.5 kill_save@2

Token grammar: ``kind@step[.stage][:arg]`` (plus ``seed=N``).  Tokens
are separated by whitespace or ``;`` — the deck key
``resilience.faults.plan`` takes the space-separated form, the
``REPRO_FAULTS`` env var the ``;``-separated one.  Step numbers refer to
``sim.step_count`` at the start of the step (0-based); ``kill_save``'s
"step" is instead the 1-based index of the ``save_checkpoint`` call to
interrupt.

Fault kinds and where they bite:

``kill_worker@S[.G]``
    One offloaded task's worker process exits hard (``os._exit``) before
    touching any data — the stand-in for losing a Summit node mid-step.
    Detected by the supervisor's task timeout; the pool is respawned and
    the task re-submitted.
``slow@S[.G][:SECS]``
    One offloaded task stalls for ``SECS`` (default 1.0) seconds before
    doing its work — a stuck worker.  If the stall exceeds the
    supervisor's ``task_timeout`` the pool is respawned (killing the
    sleeper before it writes anything) and the task re-submitted.
``task_error@S[.G][:PREFIX]``
    One task whose name starts with ``PREFIX`` (any offloadable task by
    default) raises :class:`InjectedTaskError`.  Offloaded tasks are
    retried by the supervisor; inline tasks fail the step and are
    retried by the watchdog's rollback.
``drop_comm@S[.G][:fb|pc]``
    The matching ``comm-wait`` task (FillBoundary finish, or the coords
    ParallelCopy consumer) raises :class:`InjectedCommDrop` — a lost
    halo exchange.  The watchdog rolls the step back and retries.
``nan@S``
    One state cell is seeded with NaN after the advance of step ``S`` —
    silent corruption the watchdog's scan must catch.
``kill_save@N``
    The ``N``-th ``save_checkpoint`` call in this process raises
    :class:`InjectedCheckpointCrash` after the first level file is
    written and before the atomic rename — a kill mid-save.  The
    previous checkpoint at the destination must survive intact.

Each planned fault records a firing entry in :attr:`FaultInjector.fired`
so the run report can account for every injected fault.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

#: fault kinds that attach to tasks of one (step, stage) graph
TASK_KINDS = ("kill_worker", "slow", "task_error", "drop_comm")
KINDS = TASK_KINDS + ("nan", "kill_save")

_TOKEN = re.compile(r"^(?P<kind>[a-z_]+)@(?P<step>\d+)"
                    r"(?:\.(?P<stage>\d+))?(?::(?P<arg>[^\s;]+))?$")


class InjectedFault(RuntimeError):
    """Base class of every deliberately injected failure."""


class InjectedTaskError(InjectedFault):
    """A task made to raise by the fault plan."""


class InjectedCommDrop(InjectedFault):
    """A halo exchange whose finish half was made to fail."""


class InjectedCheckpointCrash(InjectedFault):
    """A checkpoint write interrupted mid-save by the fault plan."""


@dataclass
class FaultSpec:
    """One planned fault occurrence."""

    kind: str
    step: int
    stage: int = 0
    arg: Optional[str] = None
    fired: bool = False

    def token(self) -> str:
        out = f"{self.kind}@{self.step}"
        if self.stage:
            out += f".{self.stage}"
        if self.arg is not None:
            out += f":{self.arg}"
        return out


def parse_plan(text: str, kinds: tuple = KINDS) -> tuple:
    """Parse a plan string; returns ``(specs, seed)``.

    ``kinds`` is the vocabulary to validate against — the solver-level
    default here, or :data:`repro.serve.chaos.SERVICE_KINDS` when the
    same grammar drives the service chaos harness.
    """
    specs: List[FaultSpec] = []
    seed = 0
    for tok in re.split(r"[;\s]+", text.strip()):
        if not tok:
            continue
        if tok.startswith("seed="):
            seed = int(tok[len("seed="):])
            continue
        m = _TOKEN.match(tok)
        if m is None:
            raise ValueError(f"bad fault token {tok!r} "
                             "(expected kind@step[.stage][:arg])")
        kind = m.group("kind")
        if kind not in kinds:
            raise ValueError(f"unknown fault kind {kind!r}; options {kinds}")
        specs.append(FaultSpec(
            kind=kind,
            step=int(m.group("step")),
            stage=int(m.group("stage") or 0),
            arg=m.group("arg"),
        ))
    return specs, seed


class FaultInjector:
    """Executes a fault plan deterministically against a run."""

    def __init__(self, specs: List[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        #: firing log: {kind, step, stage, target} per injected fault
        self.fired: List[Dict] = []
        self._save_calls = 0

    @classmethod
    def from_config(cls, plan: Optional[str],
                    seed: Optional[int] = None) -> Optional["FaultInjector"]:
        """Build an injector from a plan string, or None for no plan.

        A nonzero ``seed`` argument (deck/CLI) wins over a ``seed=N``
        token embedded in the plan itself.
        """
        if not plan:
            return None
        specs, plan_seed = parse_plan(plan)
        if not specs:
            return None
        return cls(specs, seed if seed else plan_seed)

    def _rng(self, spec: FaultSpec) -> random.Random:
        return random.Random(f"{self.seed}:{spec.token()}")

    def _record(self, spec: FaultSpec, target: str) -> None:
        spec.fired = True
        self.fired.append({"kind": spec.kind, "step": spec.step,
                           "stage": spec.stage, "target": target})

    def fired_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.fired:
            out[entry["kind"]] = out.get(entry["kind"], 0) + 1
        return out

    def pending(self) -> List[FaultSpec]:
        return [s for s in self.specs if not s.fired]

    # -- task-graph instrumentation ---------------------------------------
    def instrument(self, graph, step: int, stage: int) -> None:
        """Arm this (step, stage)'s planned task faults on ``graph``.

        Called by the engine after each stage graph is built.  Specs fire
        once: a retried step rebuilds its graphs and sees them spent, so
        the retry runs clean — exactly a transient fault.
        """
        for spec in self.specs:
            if (spec.fired or spec.kind not in TASK_KINDS
                    or spec.step != step or spec.stage != stage):
                continue
            if spec.kind == "kill_worker":
                task = self._pick_offloaded(graph)
                if task is not None:
                    task.payload["_fault"] = ("kill",)
                    self._record(spec, task.name)
            elif spec.kind == "slow":
                task = self._pick_offloaded(graph)
                if task is not None:
                    task.payload["_fault"] = ("slow", float(spec.arg or 1.0))
                    self._record(spec, task.name)
            elif spec.kind == "task_error":
                cands = (
                    [t for t in graph.tasks if t.name.startswith(spec.arg)]
                    if spec.arg else
                    [t for t in graph.tasks if t.payload]
                    or [t for t in graph.tasks if t.kind == "compute"]
                )
                task = self._pick(spec, cands)
                if task is not None:
                    if task.payload is not None:
                        # arm both execution paths: the payload marker
                        # fires in a worker, the fn wrapper fires if the
                        # scheduler runs the task inline instead
                        task.payload["_fault"] = ("error",)
                    _wrap_raise(task, InjectedTaskError,
                                f"injected task error in {task.name}")
                    self._record(spec, task.name)
            elif spec.kind == "drop_comm":
                cands = [t for t in graph.tasks if t.kind == "comm-wait"
                         and (spec.arg is None
                              or (t.channel and t.channel[0] == spec.arg))]
                task = self._pick(spec, cands)
                if task is not None:
                    _wrap_raise(task, InjectedCommDrop,
                                f"injected comm drop in {task.name}")
                    self._record(spec, task.name)

    def _pick(self, spec: FaultSpec, candidates):
        if not candidates:
            return None
        return self._rng(spec).choice(sorted(candidates, key=lambda t: t.tid))

    @staticmethod
    def _pick_offloaded(graph):
        """The payload task the scheduler offloads first (lowest tid).

        Worker-level faults must actually reach a worker process: the
        scheduler saturates an empty pool with ready offloadable tasks in
        tid order before the driver runs anything inline, so the lowest-tid
        payload task is the one guaranteed to execute on a worker.
        """
        cands = [t for t in graph.tasks if t.payload is not None]
        return min(cands, key=lambda t: t.tid) if cands else None

    # -- state corruption --------------------------------------------------
    def corrupt_state(self, sim) -> None:
        """Seed a planned NaN into one state cell (end of the advance)."""
        for spec in self.specs:
            if spec.fired or spec.kind != "nan" or spec.step != sim.step_count:
                continue
            rng = self._rng(spec)
            lev = rng.randrange(sim.finest_level + 1)
            ids = [i for i, _ in sim.state[lev]]
            i = rng.choice(ids)
            valid = sim.state[lev].fab(i).valid()
            idx = tuple(rng.randrange(n) for n in valid.shape)
            valid[idx] = np.nan
            self._record(spec, f"state L{lev} b{i} cell{idx}")

    # -- checkpoint interruption -------------------------------------------
    def begin_save(self) -> int:
        """Count a ``save_checkpoint`` call; returns its 1-based index."""
        self._save_calls += 1
        return self._save_calls

    def maybe_crash_save(self, save_idx: int, path) -> None:
        """Raise mid-save if this save call is planned to be killed."""
        for spec in self.specs:
            if spec.fired or spec.kind != "kill_save" or spec.step != save_idx:
                continue
            self._record(spec, str(path))
            raise InjectedCheckpointCrash(
                f"injected kill during checkpoint save #{save_idx} to {path}"
            )


def _wrap_raise(task, exc_type, message: str) -> None:
    """Replace a task's inline body with one that raises ``exc_type``."""

    def fn():
        raise exc_type(message)

    task.fn = fn
