"""Shared resilience counters, sampled as ``resilience.*`` gauges.

One :class:`ResilienceStats` instance per simulation is shared by the
fault injector, the supervised executor and the step watchdog; the
recorder snapshots it once per timestep and the run report renders the
final totals as the "resilience" section.
"""

from __future__ import annotations

from typing import Dict

#: counters always exported (zero-valued ones included), so a recorded
#: run's resilience section is complete even when nothing went wrong
CORE_COUNTERS = (
    "step_retries",      # watchdog: step re-executions after rollback
    "rollbacks",         # watchdog: state restorations to the step snapshot
    "dt_halvings",       # watchdog: retries escalated to a halved dt
    "recovered_steps",   # watchdog: steps that completed after >=1 retry
    "nan_detections",    # watchdog: non-finite state detections
    "task_retries",      # supervisor: failed-task re-dispatches
    "task_resubmits",    # supervisor: lost-task re-dispatches after respawn
    "pool_restarts",     # supervisor: pool terminate+respawn events
    "degraded_to_serial",  # supervisor: fallbacks to inline execution
    "autocheckpoints",   # watchdog: successful periodic checkpoints
    "checkpoint_failures",  # watchdog: interrupted/failed checkpoint writes
    "restores",          # watchdog: restore-from-last-good events
)


class ResilienceStats:
    """A flat bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> int:
        value = self.counters.get(name, 0) + n
        self.counters[name] = value
        return value

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Every core counter (zeros included) plus any extras."""
        out = {name: self.counters.get(name, 0) for name in CORE_COUNTERS}
        for name, value in self.counters.items():
            out[name] = value
        return out

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in sorted(self.counters.items()) if v}
        return f"ResilienceStats({nonzero})"
