"""Solver watchdog: per-step validation, rollback/retry, last-good restore.

Production shock solvers survive blown-up steps by retrying them; this
watchdog gives the reproduction the same property.  It owns the advance
of one step:

1. compute ``dt`` and **snapshot** the state hierarchy (plain heap
   copies — shared-memory segments in pool mode stay untouched);
2. run the RK3 advance through the task runtime;
3. **validate** the completed step: a pool respawn taints the step
   (possible torn writes), the state must be free of NaN/Inf, the
   positivity guard must not have spiked, and (optionally) the realized
   CFL rate must not have blown past the configured margin;
4. on failure, **roll back** to the snapshot and retry.  The first
   ``retry_same_dt`` retries re-run the identical step — a transient
   fault retried clean reproduces the fault-free trajectory bit for bit;
   persistent *numerical* failures then escalate by **halving dt** each
   further retry, up to ``max_step_retries``;
5. every ``autocheckpoint_every`` successful steps, write a crash-safe
   checkpoint and remember it as *last good*; when a step exhausts its
   retries, **restore from last good** (at most ``max_restores`` times)
   instead of dying.

Every retry/rollback/restore increments the shared
:class:`~repro.resilience.stats.ResilienceStats` and emits a tracer
instant event on recorded runs, so the run report can account for each
injected fault end to end.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.resilience.faults import InjectedFault
from repro.resilience.stats import ResilienceStats
from repro.resilience.supervisor import TaskFailedError


class RunBudgetExceeded(RuntimeError):
    """A run hit its step or wall budget; deliberately NOT retryable.

    The serve layer maps a run's per-run budgets onto the watchdog; when
    a budget is spent this propagates out of :meth:`guarded_advance`
    unmasked (it is not in :data:`RETRYABLE`), so the driver stops at a
    step boundary with a consistent state — budget-exceeded cancellation
    rides the same path as every other watchdog-policed condition.
    """

    def __init__(self, message: str, budget: str = "steps") -> None:
        super().__init__(message)
        #: which budget tripped: ``"steps"`` or ``"wall"``
        self.budget = budget


class StepFailure(RuntimeError):
    """One step's validation failed; carries a retry classification.

    ``kind`` is ``"transient"`` (system fault — retry the identical
    step) or ``"numerical"`` (solver trouble — later retries halve dt).
    """

    def __init__(self, message: str, kind: str = "transient") -> None:
        super().__init__(message)
        self.kind = kind


class UnrecoverableStepError(RuntimeError):
    """A step failed beyond every retry and restore budget."""


#: exception types the watchdog treats as retryable step failures;
#: anything else (a genuine bug) propagates unmasked
RETRYABLE = (StepFailure, InjectedFault, TaskFailedError)


class StepWatchdog:
    """Guards the advance of a Crocco simulation, one step at a time."""

    def __init__(self, max_step_retries: int = 3, retry_same_dt: int = 1,
                 positivity_spike: Optional[int] = None,
                 cfl_margin: Optional[float] = None,
                 autocheckpoint_every: int = 0,
                 autocheckpoint_dir: str = "autochk",
                 autocheckpoint_keep: int = 2, max_restores: int = 2,
                 step_budget: Optional[int] = None,
                 wall_budget_s: Optional[float] = None,
                 stats: Optional[ResilienceStats] = None) -> None:
        self.max_step_retries = int(max_step_retries)
        self.retry_same_dt = int(retry_same_dt)
        self.positivity_spike = positivity_spike
        self.cfl_margin = cfl_margin
        self.autocheckpoint_every = int(autocheckpoint_every)
        self.autocheckpoint_dir = autocheckpoint_dir
        self.autocheckpoint_keep = int(autocheckpoint_keep)
        self.max_restores = int(max_restores)
        self.step_budget = step_budget
        self.wall_budget_s = wall_budget_s
        self.stats = stats if stats is not None else ResilienceStats()
        #: path of the most recent successfully written autocheckpoint
        self.last_good: Optional[Path] = None
        self._restores = 0
        #: wall clock anchor, set at the first guarded advance
        self._t0: Optional[float] = None

    # -- budgets -----------------------------------------------------------
    def _check_budget(self, sim) -> None:
        """Raise :class:`RunBudgetExceeded` once a budget is spent.

        Checked *before* a step, so budget overrun always surfaces at a
        step boundary with a consistent, checkpointable state.
        """
        import time as _time

        if self._t0 is None:
            self._t0 = _time.monotonic()
        if (self.step_budget is not None
                and sim.step_count >= self.step_budget):
            self.stats.inc("budget_cancellations")
            raise RunBudgetExceeded(
                f"step budget exhausted: {sim.step_count} steps "
                f"(budget {self.step_budget})", budget="steps")
        if self.wall_budget_s is not None:
            elapsed = _time.monotonic() - self._t0
            if elapsed >= self.wall_budget_s:
                self.stats.inc("budget_cancellations")
                raise RunBudgetExceeded(
                    f"wall budget exhausted: {elapsed:.1f}s elapsed "
                    f"(budget {self.wall_budget_s:g}s)", budget="wall")

    # -- the guarded advance ----------------------------------------------
    def guarded_advance(self, sim) -> None:
        """Advance ``sim`` one step, retrying/rolling back on failure."""
        self._check_budget(sim)
        dt = sim._compute_dt()
        snap = self._snapshot(sim)
        guard = getattr(sim, "guard", None)
        attempt = 0
        trial_dt = dt
        while True:
            interventions_before = (guard.total_interventions
                                    if guard is not None else 0)
            try:
                sim._advance(trial_dt)
                self._validate(sim, trial_dt, guard, interventions_before)
                break
            except RETRYABLE as exc:
                attempt += 1
                self.stats.inc("rollbacks")
                self._trace(sim, "StepRollback",
                            {"step": snap["step"], "attempt": attempt,
                             "error": str(exc)})
                if attempt > self.max_step_retries:
                    # leave a consistent pre-step state whether we restore
                    # from a checkpoint below or propagate the failure
                    self._restore(sim, snap)
                    self._unrecoverable(sim, exc)
                    return
                self._restore(sim, snap)
                self.stats.inc("step_retries")
                if (getattr(exc, "kind", "transient") == "numerical"
                        and attempt > self.retry_same_dt):
                    trial_dt *= 0.5
                    self.stats.inc("dt_halvings")
        if attempt:
            self.stats.inc("recovered_steps")
            self._trace(sim, "StepRecovered",
                        {"step": snap["step"], "retries": attempt})
        self._autocheckpoint(sim)

    # -- validation --------------------------------------------------------
    def _validate(self, sim, dt: float, guard, interventions_before) -> None:
        executor = getattr(sim.engine, "executor", None)
        consume = getattr(executor, "consume_tainted", None)
        if consume is not None and consume():
            raise StepFailure(
                "pool was respawned mid-step; state may be torn",
                kind="transient",
            )
        for lev in range(sim.finest_level + 1):
            for i, fab in sim.state[lev]:
                if not np.isfinite(fab.valid()).all():
                    self.stats.inc("nan_detections")
                    raise StepFailure(
                        f"non-finite state on level {lev} box {i}",
                        kind="numerical",
                    )
        if guard is not None and self.positivity_spike is not None:
            delta = guard.total_interventions - interventions_before
            if delta > self.positivity_spike:
                raise StepFailure(
                    f"positivity guard clamped {delta} cells "
                    f"(spike threshold {self.positivity_spike})",
                    kind="numerical",
                )
        if self.cfl_margin is not None:
            rate = self._max_rate(sim)
            cfl = (sim.config.cfl if sim.config.cfl is not None
                   else sim.case.cfl)
            if rate > 0 and dt * rate > cfl * self.cfl_margin:
                raise StepFailure(
                    f"CFL violation: dt*rate = {dt * rate:.3g} exceeds "
                    f"{self.cfl_margin:g} x cfl = {cfl * self.cfl_margin:.3g}",
                    kind="numerical",
                )

    def _max_rate(self, sim) -> float:
        rate = 0.0
        for lev in range(sim.finest_level + 1):
            mf = sim.state[lev]
            for i, fab in mf:
                rate = max(rate, sim.kernels.max_rate(
                    fab.valid(), sim.metrics[lev][i].interior(sim.ng),
                    device=sim._device_of(mf.dm[i]),
                ))
        return rate

    # -- snapshot / rollback ----------------------------------------------
    def _snapshot(self, sim) -> Dict:
        """Copy everything the advance mutates (state + scalars).

        ``du`` is not copied: the RK3 advance zeroes it before use, so a
        retry never reads stale increments.
        """
        return {
            "time": sim.time,
            "step": sim.step_count,
            "nhist": len(sim.dt_history),
            "finest": sim.finest_level,
            "state": {(lev, i): fab.whole().copy()
                      for lev in range(sim.finest_level + 1)
                      for i, fab in sim.state[lev]},
        }

    def _restore(self, sim, snap: Dict) -> None:
        """Write the snapshot back in place (shared segments preserved)."""
        sim.engine.abort_step()
        sim.time = snap["time"]
        sim.step_count = snap["step"]
        del sim.dt_history[snap["nhist"]:]
        for (lev, i), saved in snap["state"].items():
            sim.state[lev].fab(i).whole()[...] = saved

    # -- unrecoverable path ------------------------------------------------
    def _unrecoverable(self, sim, exc) -> None:
        if self.last_good is not None and self._restores < self.max_restores:
            from repro.io.checkpoint import load_checkpoint

            self._restores += 1
            self.stats.inc("restores")
            sim.engine.abort_step()
            load_checkpoint(self.last_good, sim)
            self._trace(sim, "RestoreFromCheckpoint",
                        {"checkpoint": str(self.last_good),
                         "step": sim.step_count})
            return
        raise UnrecoverableStepError(
            f"step {sim.step_count} failed after {self.max_step_retries} "
            "retries and no restorable checkpoint remains"
        ) from exc

    # -- autocheckpointing -------------------------------------------------
    def _autocheckpoint(self, sim) -> None:
        if (not self.autocheckpoint_every
                or sim.step_count % self.autocheckpoint_every):
            return
        from repro.io.checkpoint import save_checkpoint
        from repro.resilience.faults import InjectedCheckpointCrash

        base = Path(self.autocheckpoint_dir)
        path = base / f"chk_step{sim.step_count:06d}"
        try:
            save_checkpoint(path, sim)
        except (InjectedCheckpointCrash, OSError) as exc:
            # an interrupted write must not kill the run: the previous
            # last-good checkpoint is still intact (atomic publish)
            self.stats.inc("checkpoint_failures")
            self._trace(sim, "CheckpointFailed",
                        {"checkpoint": str(path), "error": str(exc)})
            return
        self.last_good = path
        self.stats.inc("autocheckpoints")
        kept = sorted(p for p in base.glob("chk_step*") if p.is_dir())
        for old in kept[:-self.autocheckpoint_keep]:
            if old != self.last_good:
                shutil.rmtree(old, ignore_errors=True)

    # -- observability -----------------------------------------------------
    def _trace(self, sim, name: str, args: Dict) -> None:
        recorder = getattr(sim, "recorder", None)
        if recorder is not None:
            recorder.tracer.instant(name, rank=0, args=args)
