"""Fault tolerance for the CRoCCo runtime.

The paper's 1024-node campaigns only complete because the production
stack tolerates transient failures — node loss, blown-up steps near
strong shocks, interrupted writes.  This package is the reproduction's
counterpart, wired through the task runtime, the driver and the I/O
layer:

- :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (seeded plans via ``resilience.faults.*`` deck keys or the
  ``REPRO_FAULTS`` env var) so chaos runs are reproducible;
- :mod:`repro.resilience.supervisor` — a supervised pool executor that
  detects dead/stuck workers, respawns the pool, re-submits lost tasks
  with capped exponential backoff and degrades to inline execution
  instead of hanging the task graph;
- :mod:`repro.resilience.watchdog` — a solver watchdog that validates
  every completed step (NaN/Inf, positivity-guard spikes, CFL blow-up),
  rolls failed steps back and retries them, and restores from the last
  good autocheckpoint when a step is unrecoverable;
- :mod:`repro.resilience.stats` — the shared counters the observability
  layer samples as ``resilience.*`` gauges.

Crash-safe checkpointing (temp dir + atomic rename, per-level SHA-256
digests) lives in :mod:`repro.io.checkpoint`.
"""

from repro.resilience.faults import (FaultInjector, InjectedCheckpointCrash,
                                     InjectedCommDrop, InjectedFault,
                                     InjectedTaskError)
from repro.resilience.stats import ResilienceStats
from repro.resilience.supervisor import SupervisedPoolExecutor, TaskFailedError
from repro.resilience.watchdog import (StepFailure, StepWatchdog,
                                       UnrecoverableStepError)

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "InjectedTaskError",
    "InjectedCommDrop",
    "InjectedCheckpointCrash",
    "ResilienceStats",
    "SupervisedPoolExecutor",
    "TaskFailedError",
    "StepWatchdog",
    "StepFailure",
    "UnrecoverableStepError",
]
