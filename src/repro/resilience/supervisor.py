"""Supervised pool executor: dead-worker detection, re-submission, fallback.

A bare :class:`~repro.runtime.executors.PoolExecutor` hangs in
``wait_one`` if a worker process dies mid-task — ``multiprocessing.Pool``
replenishes the worker but the in-flight task's completion never
arrives.  The supervisor makes the pool survivable:

- every submission carries a **deadline** (``task_timeout``); a task that
  misses it is presumed lost to a dead or stuck worker;
- on a lost task the whole pool is **terminated and respawned** (never
  joined forever).  Termination is what makes re-submission safe: the old
  workers are dead, so a merely-slow task can never complete *after* its
  replacement ran and double-apply the (non-idempotent) RK update;
- completions that did land before the respawn are drained and delivered
  first, so finished work is never re-run;
- lost and failed tasks are **re-submitted with capped exponential
  backoff** (``task_retries``, ``backoff`` knobs), with the fault
  injector's one-shot markers stripped — a transient fault retried clean;
- after ``max_pool_restarts`` respawns the executor **degrades to inline
  execution** in the driver process (the SerialExecutor behaviour) so the
  run finishes slower instead of not at all;
- any respawn sets :attr:`step_tainted`: a killed worker may have been
  interrupted mid-write, so the step watchdog conservatively rolls the
  whole step back to its pre-step snapshot and re-runs it — which is also
  what guarantees fault runs match fault-free runs bit for bit.

Every recovery action is counted in the shared
:class:`~repro.resilience.stats.ResilienceStats`.
"""

from __future__ import annotations

import pickle
import queue
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.resilience.stats import ResilienceStats
from repro.runtime.executors import (PoolExecutor, _run_payload,
                                     _run_payload_remote)


class TaskFailedError(RuntimeError):
    """A task failed (or was lost) beyond the supervisor's retry budget."""


@dataclass
class _InFlight:
    task: object
    on_done: Callable
    attempt: int
    deadline: float
    #: driver-side lifecycle metering; serialize cost accumulates across
    #: retries so the attribution charges the *total* pickling a task cost
    lifecycle: dict = field(default_factory=dict)


class SupervisedPoolExecutor(PoolExecutor):
    """A :class:`PoolExecutor` that survives worker death and stalls."""

    name = "pool"

    def __init__(self, nworkers: Optional[int] = None,
                 task_retries: int = 2, backoff: float = 0.05,
                 backoff_cap: float = 1.0, task_timeout: float = 30.0,
                 max_pool_restarts: int = 3,
                 stats: Optional[ResilienceStats] = None) -> None:
        super().__init__(nworkers)
        self.task_retries = int(task_retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.task_timeout = float(task_timeout)
        self.max_pool_restarts = int(max_pool_restarts)
        self.stats = stats if stats is not None else ResilienceStats()
        self.pool_restarts = 0
        #: set on any respawn; the watchdog consumes it and rolls the step
        #: back (a killed worker may have been interrupted mid-write)
        self.step_tainted = False
        self._inflight: Dict[int, _InFlight] = {}
        self._degraded = False

    # -- executor interface ------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self._degraded

    def can_offload(self, task) -> bool:
        return not self._degraded and task.payload is not None

    def in_flight(self) -> int:
        return len(self._inflight)

    def submit(self, task, on_done: Callable) -> None:
        entry = _InFlight(task, on_done, attempt=1, deadline=0.0)
        self._inflight[task.tid] = entry
        self._dispatch(entry)

    def consume_tainted(self) -> bool:
        """Return-and-clear the taint flag (checked once per step)."""
        tainted, self.step_tainted = self.step_tainted, False
        return tainted

    def wait_one(self, timeout: Optional[float] = None) -> None:
        """Deliver at least one completion, recovering lost tasks.

        Unlike the bare pool this can never hang: waits are sliced
        against the earliest in-flight deadline, and an expired deadline
        triggers pool respawn + re-submission (or inline execution).
        """
        if not self._inflight:
            raise RuntimeError("supervised pool has no pending tasks")
        t_end = None if timeout is None else time.monotonic() + timeout
        while self._inflight:
            now = time.monotonic()
            deadline = min(e.deadline for e in self._inflight.values())
            wait_s = max(0.005, min(deadline - now, 0.25))
            if t_end is not None:
                wait_s = min(wait_s, max(0.0, t_end - now))
            try:
                item = self._done.get(timeout=wait_s)
            except queue.Empty:
                if time.monotonic() >= deadline:
                    if self._recover_lost():
                        return
                elif t_end is not None and time.monotonic() >= t_end:
                    raise
                continue
            if self._handle(*item):
                return

    def shutdown(self) -> None:
        self._inflight.clear()
        self.cancel_pending()

    def cancel_pending(self) -> None:
        self._inflight.clear()
        super().cancel_pending()

    # -- internals ---------------------------------------------------------
    def _dispatch(self, entry: _InFlight) -> None:
        """(Re-)submit one in-flight entry to the pool, or run it inline."""
        if entry.attempt > 1:
            # one-shot injected faults don't survive a retry: the fault
            # modelled a transient failure of the *first* execution
            entry.task.payload.pop("_fault", None)
        if self._degraded:
            self._run_inline(entry)
            return
        pool = self._ensure_pool()
        entry.deadline = time.monotonic() + self.task_timeout
        tid, att = entry.task.tid, entry.attempt

        def _cb(result, tid=tid, att=att):
            self._done.put((tid, att, result, None))

        def _err(exc, tid=tid, att=att):
            self._done.put((tid, att, None, exc))

        # pickle per attempt (the payload may have changed — e.g. a fault
        # marker stripped); the serialize bucket charges the sum
        t0 = time.perf_counter()
        blob = pickle.dumps(entry.task.payload,
                            protocol=pickle.HIGHEST_PROTOCOL)
        t1 = time.perf_counter()
        lc = entry.lifecycle
        lc["serialize_s"] = lc.get("serialize_s", 0.0) + (t1 - t0)
        lc["pickle_bytes"] = len(blob)
        lc["t_dispatched"] = t1
        pool.apply_async(_run_payload_remote, (blob,),
                         callback=_cb, error_callback=_err)

    def _run_inline(self, entry: _InFlight) -> None:
        """Last-resort execution in the driver process (always completes
        or raises — never hangs)."""
        t0 = time.perf_counter()
        try:
            # the returned counter delta is deliberately discarded: inline
            # launches hit the driver's execution backend directly, so
            # merging them again would double-count
            _pid, _dur, _delta, times = _run_payload(entry.task.payload)
        except Exception as exc:
            self._inflight.pop(entry.task.tid, None)
            raise TaskFailedError(
                f"task {entry.task.name!r} failed inline after "
                f"{entry.attempt - 1} pool attempt(s): {exc}") from exc
        self._inflight.pop(entry.task.tid, None)
        lc = dict(entry.lifecycle)
        lc.update(times)
        entry.on_done(entry.task, 0, time.perf_counter() - t0, lifecycle=lc)

    def _handle(self, tid: int, att: int, result, exc) -> bool:
        """Process one completion record; True if a task finished."""
        entry = self._inflight.get(tid)
        if entry is None or entry.attempt != att:
            return False  # stale: an earlier attempt already superseded
        if exc is not None:
            if entry.attempt <= self.task_retries:
                self.stats.inc("task_retries")
                entry.attempt += 1
                time.sleep(self._backoff_delay(entry.attempt))
                self._dispatch(entry)
                return entry.task.tid not in self._inflight  # inline path
            del self._inflight[tid]
            raise TaskFailedError(
                f"task {entry.task.name!r} failed after {entry.attempt} "
                f"attempt(s): {exc}") from exc
        del self._inflight[tid]
        pid, dur, delta, times = result
        self._merge_delta(delta)
        lc = dict(entry.lifecycle)
        lc.update(times)
        worker = self._worker_ids.setdefault(pid, len(self._worker_ids) + 1)
        entry.on_done(entry.task, worker, dur, lifecycle=lc)
        return True

    def _backoff_delay(self, attempt: int) -> float:
        return min(self.backoff * (2 ** max(0, attempt - 2)), self.backoff_cap)

    def _recover_lost(self) -> int:
        """A deadline expired: respawn the pool, re-submit survivors.

        Returns the number of completions delivered while recovering
        (drained pre-respawn results plus inline last-resort runs).
        """
        # kill the pool first: after terminate+join no callback thread is
        # alive, so the queue drain below sees every completion that will
        # ever arrive — anything still in flight is definitively lost
        self._terminate_pool()
        drained = []
        while True:
            try:
                drained.append(self._done.get_nowait())
            except queue.Empty:
                break
        self.pool_restarts += 1
        self.stats.inc("pool_restarts")
        self.step_tainted = True
        if not self._degraded and self.pool_restarts > self.max_pool_restarts:
            self._degraded = True
            self.stats.inc("degraded_to_serial")
        delivered = 0
        for item in drained:
            if self._handle(*item):
                delivered += 1
        lost = list(self._inflight.values())
        for entry in lost:
            entry.attempt += 1
            self.stats.inc("task_resubmits")
            if entry.attempt > self.task_retries + 1 and not self._degraded:
                # out of pool retries: finish it inline rather than loop
                self._run_inline(entry)
                delivered += 1
                continue
            time.sleep(self._backoff_delay(entry.attempt))
            before = len(self._inflight)
            self._dispatch(entry)
            if len(self._inflight) < before:  # degraded inline completion
                delivered += 1
        return delivered
