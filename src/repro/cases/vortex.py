"""Isentropic vortex advection: a smooth, exact-solution 2D test.

A compressible vortex superposed on a uniform stream advects without
change of shape; the exact solution at time t is the initial condition
shifted by (u0 t, v0 t) (periodically wrapped).  This is the standard
order-of-accuracy test for high-order schemes like WENO-SYMBO.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cases.base import Case


class IsentropicVortex(Case):
    """Periodic vortex advection on [0, 10]^2."""

    name = "vortex"
    domain_cells: Tuple[int, ...] = (64, 64)
    prob_extent: Tuple[float, ...] = (10.0, 10.0)
    periodic: Tuple[bool, ...] = (True, True)
    tag_threshold = 0.05
    cfl = 0.5

    def __init__(self, ncells: int = 64, strength: float = 5.0,
                 u0: float = 1.0, v0: float = 0.5) -> None:
        self.domain_cells = (ncells, ncells)
        self.strength = strength
        self.u0 = u0
        self.v0 = v0
        super().__init__()

    def initial_condition(self, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        g = self.eos.gamma
        beta = self.strength
        Lx, Ly = self.prob_extent
        # periodic wrap of the vortex center trajectory
        xc = (Lx / 2 + self.u0 * time) % Lx
        yc = (Ly / 2 + self.v0 * time) % Ly
        # nearest periodic image distances
        dx = coords[0] - xc
        dx -= Lx * np.round(dx / Lx)
        dy = coords[1] - yc
        dy -= Ly * np.round(dy / Ly)
        r2 = dx**2 + dy**2
        f = beta / (2 * np.pi) * np.exp(0.5 * (1 - r2))
        du = -dy * f
        dv = dx * f
        dT = -(g - 1.0) * beta**2 / (8 * g * np.pi**2) * np.exp(1 - r2)
        T = 1.0 + dT
        rho = T ** (1.0 / (g - 1.0))
        p = rho * T  # nondimensionalization with R = 1 (p = rho T)
        vel = np.stack([self.u0 + du, self.v0 + dv])
        return self.eos.conservative(self.layout, rho, vel, p)

    def make_eos(self):
        from repro.numerics.eos import IdealGasEOS

        return IdealGasEOS(gamma=1.4, gas_constant=1.0)

    def exact_solution(self, coords: np.ndarray, time: float) -> np.ndarray:
        return self.initial_condition(coords, time)
